(** Banded matrices stored in LAPACK-style band storage, with an LU solver
    without pivoting (adequate for the diagonally dominant systems produced
    by finite-volume discretizations of Poisson and continuity equations).

    A matrix of order [n] with [kl] sub-diagonals and [ku] super-diagonals
    stores entry (i, j) for |i - j| within the band. *)

type t

val create : n:int -> kl:int -> ku:int -> t
(** A zero banded matrix. *)

val order : t -> int

val bandwidths : t -> int * int
(** [(kl, ku)]. *)

val get : t -> int -> int -> float
(** [get a i j] is A(i,j); zero outside the band. *)

val set : t -> int -> int -> float -> unit
(** Raises [Invalid_argument] if (i, j) lies outside the band. *)

val add_to : t -> int -> int -> float -> unit
(** [add_to a i j v] adds [v] to A(i,j) (stamping). *)

val clear : t -> unit
(** Reset all entries to zero, keeping the storage. *)

val mat_vec : t -> Vec.t -> Vec.t

val solve_in_place : t -> Vec.t -> Vec.t
(** [solve_in_place a b] solves [A x = b], destroying [a]'s contents (the
    factorization overwrites the band).  Returns the solution.  Raises
    [Failure] on a (near-)zero pivot. *)
