let golden_ratio = 0.5 *. (sqrt 5.0 -. 1.0)

let golden_section ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let c = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let d = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > tol *. (1.0 +. Float.abs !a +. Float.abs !b) && !iter < max_iter do
    incr iter;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (golden_ratio *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (golden_ratio *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

(* Brent's minimizer (Numerical Recipes brent). *)
let brent ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let cgold = 0.3819660 in
  let zeps = 1e-18 in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0.0 and e = ref 0.0 in
  let result = ref None in
  let iter = ref 0 in
  while Option.is_none !result && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then result := Some (!x, !fx)
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm -. !x >= 0.0 then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a -. !x else !b -. !x);
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        w := !x;
        x := u;
        fv := !fw;
        fw := !fx;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || Float.equal !w !x then begin
          v := !w;
          w := u;
          fv := !fw;
          fw := fu
        end
        else if fu <= !fv || Float.equal !v !x || Float.equal !v !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !result with Some r -> r | None -> (!x, !fx)

let grid_then_golden ?(samples = 24) ?(tol = 1e-10) f a b =
  let lo = Float.min a b and hi = Float.max a b in
  if samples < 3 then invalid_arg "Minimize.grid_then_golden: need >= 3 samples";
  let xs = Vec.linspace lo hi samples in
  let best = ref 0 in
  let fbest = ref (f xs.(0)) in
  let fs = Array.make samples 0.0 in
  fs.(0) <- !fbest;
  for i = 1 to samples - 1 do
    fs.(i) <- f xs.(i);
    if fs.(i) < !fbest then begin
      fbest := fs.(i);
      best := i
    end
  done;
  let left = xs.(Int.max 0 (!best - 1)) in
  let right = xs.(Int.min (samples - 1) (!best + 1)) in
  let x, fx = golden_section ~tol f left right in
  if fx <= !fbest then (x, fx) else (xs.(!best), !fbest)

let coordinate_descent ?(sweeps = 6) ?(tol = 1e-9) ~f ~lower ~upper x0 =
  let n = Array.length x0 in
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Minimize.coordinate_descent: bound length mismatch";
  let x = Array.copy x0 in
  let fx = ref (f x) in
  for _sweep = 1 to sweeps do
    for i = 0 to n - 1 do
      let line v =
        let saved = x.(i) in
        x.(i) <- v;
        let r = f x in
        x.(i) <- saved;
        r
      in
      let xi, fxi = grid_then_golden ~samples:16 ~tol line lower.(i) upper.(i) in
      if fxi < !fx then begin
        x.(i) <- xi;
        fx := fxi
      end
    done
  done;
  (x, !fx)
