(** Non-finite guard for solver entry/exit points.

    Solvers thread state vectors through long iterations; one NaN born in a
    badly scaled exponent silently poisons every later result.  This module
    provides zero-cost-when-disabled checks that solvers call on their
    inputs and outputs.  When {!enable}d (or inside {!with_guard}), the
    first non-finite value raises {!Non_finite} carrying the origin label
    of the call site, so the failure is located instead of laundered into a
    downstream "did not converge". *)

exception Non_finite of { origin : string; index : int option; value : float }

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val with_guard : (unit -> 'a) -> 'a
(** Run a thunk with the guard enabled, restoring the previous state. *)

val float : origin:string -> float -> float
(** Identity when disabled or finite; raises {!Non_finite} otherwise. *)

val vec : origin:string -> float array -> float array
(** Identity when disabled; scans for the first non-finite element when
    enabled and raises {!Non_finite} with its index. *)

val fvec : origin:string -> Fvec.t -> Fvec.t
(** {!vec} for flat {!Fvec.t} buffers. *)

val describe : exn -> string option
(** Human-readable rendering of a {!Non_finite}; [None] on other
    exceptions. *)
