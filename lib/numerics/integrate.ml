let trapezoid_samples xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Integrate.trapezoid_samples: length mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 2 do
    s := !s +. (0.5 *. (ys.(i) +. ys.(i + 1)) *. (xs.(i + 1) -. xs.(i)))
  done;
  !s

let cumulative_trapezoid xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Integrate.cumulative_trapezoid: length mismatch";
  let out = Array.make n 0.0 in
  for i = 1 to n - 1 do
    out.(i) <- out.(i - 1) +. (0.5 *. (ys.(i) +. ys.(i - 1)) *. (xs.(i) -. xs.(i - 1)))
  done;
  out

let simpson ?(n = 128) f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let s = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let x = a +. (h *. float_of_int i) in
    s := !s +. ((if i mod 2 = 1 then 4.0 else 2.0) *. f x)
  done;
  !s *. h /. 3.0

let adaptive_simpson ?(tol = 1e-12) f a b =
  let simpson3 fa fm fb a b = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson3 fa flm fm a m in
    let right = simpson3 fm frm fb m b in
    if depth > 48 || Float.abs (left +. right -. whole) <= 15.0 *. tol then
      left +. right +. ((left +. right -. whole) /. 15.0)
    else
      go a m fa flm fm left (tol /. 2.0) (depth + 1)
      +. go m b fm frm fb right (tol /. 2.0) (depth + 1)
  in
  let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
  go a b fa fm fb (simpson3 fa fm fb a b) tol 0
