(** Quadrature over sampled data and adaptive quadrature of functions. *)

val trapezoid_samples : Vec.t -> Vec.t -> float
(** [trapezoid_samples xs ys] integrates tabulated data by the trapezoid
    rule.  Abscissae must be increasing. *)

val cumulative_trapezoid : Vec.t -> Vec.t -> Vec.t
(** Running integral; result.(0) = 0. *)

val simpson : ?n:int -> (float -> float) -> float -> float -> float
(** Composite Simpson with [n] (even, default 128) panels. *)

val adaptive_simpson : ?tol:float -> (float -> float) -> float -> float -> float
(** Recursive adaptive Simpson to absolute tolerance [tol] (default 1e-12). *)
