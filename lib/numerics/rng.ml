(* xoshiro256starstar (Blackman & Vigna), seeded via splitmix64. *)
type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64;
           mutable spare : float option }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next r =
  let open Int64 in
  let result = mul (rotl (mul r.s1 5L) 7) 9L in
  let t = shift_left r.s1 17 in
  r.s2 <- logxor r.s2 r.s0;
  r.s3 <- logxor r.s3 r.s1;
  r.s1 <- logxor r.s1 r.s2;
  r.s0 <- logxor r.s0 r.s3;
  r.s2 <- logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let float r =
  (* Top 53 bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next r) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform r ~lo ~hi = lo +. ((hi -. lo) *. float r)

let gaussian r =
  match r.spare with
  | Some v ->
    r.spare <- None;
    v
  | None ->
    let rec draw () =
      let u = float r and v = float r in
      if u <= 1e-300 then draw ()
      else begin
        let radius = sqrt (-2.0 *. log u) in
        let theta = 2.0 *. Float.pi *. v in
        r.spare <- Some (radius *. sin theta);
        radius *. cos theta
      end
    in
    draw ()

let normal r ~mean ~sigma = mean +. (sigma *. gaussian r)

let int r ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))
