type t = float array array

let create n m = Array.make_matrix n m 0.0

let identity n =
  let a = create n n in
  for i = 0 to n - 1 do
    a.(i).(i) <- 1.0
  done;
  a

let copy a = Array.map Array.copy a

let dims a = (Array.length a, if Array.length a = 0 then 0 else Array.length a.(0))

let mat_vec a x =
  let n, m = dims a in
  if m <> Array.length x then invalid_arg "Matrix.mat_vec: dimension mismatch";
  Array.init n (fun i ->
      let row = a.(i) in
      let s = ref 0.0 in
      for j = 0 to m - 1 do
        s := !s +. (row.(j) *. x.(j))
      done;
      !s)

let mat_mul a b =
  let n, k = dims a in
  let k', m = dims b in
  if k <> k' then invalid_arg "Matrix.mat_mul: dimension mismatch";
  let c = create n m in
  for i = 0 to n - 1 do
    for p = 0 to k - 1 do
      let aip = a.(i).(p) in
      if not (Float.equal aip 0.0) then
        for j = 0 to m - 1 do
          c.(i).(j) <- c.(i).(j) +. (aip *. b.(p).(j))
        done
    done
  done;
  c

let transpose a =
  let n, m = dims a in
  Array.init m (fun j -> Array.init n (fun i -> a.(i).(j)))

exception Singular of int

type lu = { lu : float array array; perm : int array }

(* Doolittle LU with partial pivoting.  Stores L (unit diagonal, below) and U
   (on and above the diagonal) in one matrix. *)
let lu_factor a =
  let n, m = dims a in
  if n <> m then invalid_arg "Matrix.lu_factor: matrix must be square";
  let lu = copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs lu.(k).(k)) in
    for i = k + 1 to n - 1 do
      let m = Float.abs lu.(i).(k) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot_row);
      lu.(!pivot_row) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tp
    end;
    let pivot = lu.(k).(k) in
    for i = k + 1 to n - 1 do
      let f = lu.(i).(k) /. pivot in
      lu.(i).(k) <- f;
      if not (Float.equal f 0.0) then
        for j = k + 1 to n - 1 do
          lu.(i).(j) <- lu.(i).(j) -. (f *. lu.(k).(j))
        done
    done
  done;
  { lu; perm }

let lu_solve { lu; perm } b =
  let n = Array.length lu in
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. lu.(i).(i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b
