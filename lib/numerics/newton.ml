type outcome = { x : Vec.t; iterations : int; residual : float; converged : bool }

let solve ?(tol = 1e-10) ?(max_iter = 100) ?(max_step = infinity) ~f ~jacobian x0 =
  let n = Array.length x0 in
  let clip dx =
    if max_step = infinity then dx
    else Array.map (fun d -> Float.max (-.max_step) (Float.min max_step d)) dx
  in
  let rec iterate x fx iter =
    let r = Vec.norm_inf fx in
    if r <= tol then { x; iterations = iter; residual = r; converged = true }
    else if iter >= max_iter then { x; iterations = iter; residual = r; converged = false }
    else begin
      match Matrix.lu_factor (jacobian x) with
      | exception Matrix.Singular _ ->
        { x; iterations = iter; residual = r; converged = false }
      | lu ->
        let rhs = Array.map (fun v -> -.v) fx in
        let dx = clip (Matrix.lu_solve lu rhs) in
        (* Backtracking line search on the residual norm. *)
        let rec backtrack t attempts =
          let x' = Array.init n (fun i -> x.(i) +. (t *. dx.(i))) in
          let fx' = f x' in
          let r' = Vec.norm_inf fx' in
          if r' < r || attempts >= 8 then (x', fx')
          else backtrack (t *. 0.5) (attempts + 1)
        in
        let x', fx' = backtrack 1.0 0 in
        iterate x' fx' (iter + 1)
    end
  in
  iterate (Array.copy x0) (f x0) 0
