let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  if Array.length lower <> n || Array.length upper <> n || Array.length rhs <> n then
    invalid_arg "Tridiag.solve: length mismatch";
  let c' = Array.make n 0.0 in
  let d' = Array.make n 0.0 in
  if Float.abs diag.(0) < 1e-300 then failwith "Tridiag.solve: zero pivot at row 0";
  c'.(0) <- upper.(0) /. diag.(0);
  d'.(0) <- rhs.(0) /. diag.(0);
  for i = 1 to n - 1 do
    let denom = diag.(i) -. (lower.(i) *. c'.(i - 1)) in
    if Float.abs denom < 1e-300 then
      failwith (Printf.sprintf "Tridiag.solve: zero pivot at row %d" i);
    c'.(i) <- upper.(i) /. denom;
    d'.(i) <- (rhs.(i) -. (lower.(i) *. d'.(i - 1))) /. denom
  done;
  let x = Array.make n 0.0 in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x
