(** Sparse matrices in compressed-sparse-row form, assembled from (i, j, v)
    triplets, with a preconditioned BiCGSTAB iterative solver.  Used as an
    alternative back end for large TCAD meshes where the band is wide. *)

type t

val of_triplets : n:int -> (int * int * float) list -> t
(** Build an [n] x [n] CSR matrix; duplicate (i, j) entries are summed. *)

val order : t -> int

val nnz : t -> int

val mat_vec : t -> Vec.t -> Vec.t

val diagonal : t -> Vec.t
(** The matrix diagonal (zeros where absent). *)

type result = { x : Vec.t; iterations : int; residual : float; converged : bool }

val bicgstab :
  ?tol:float -> ?max_iter:int -> ?x0:Vec.t -> t -> Vec.t -> result
(** [bicgstab a b] solves [A x = b] with Jacobi (diagonal) preconditioning.
    [tol] is the relative residual target (default 1e-10). *)
