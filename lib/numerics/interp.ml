let check xs ys name =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg (Printf.sprintf "Interp.%s: length mismatch" name);
  if n < 2 then invalid_arg (Printf.sprintf "Interp.%s: need at least 2 points" name);
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg (Printf.sprintf "Interp.%s: abscissae must be strictly increasing" name)
  done

let search xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear xs ys x =
  check xs ys "linear";
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = search xs x in
    let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1.0 -. t) *. ys.(i)) +. (t *. ys.(i + 1))
  end

type spline = { xs : Vec.t; ys : Vec.t; y2 : Vec.t }

(* Natural cubic spline second derivatives (NR spline). *)
let cubic_spline xs ys =
  check xs ys "cubic_spline";
  let n = Array.length xs in
  let y2 = Array.make n 0.0 in
  let u = Array.make n 0.0 in
  for i = 1 to n - 2 do
    let sig_ = (xs.(i) -. xs.(i - 1)) /. (xs.(i + 1) -. xs.(i - 1)) in
    let p = (sig_ *. y2.(i - 1)) +. 2.0 in
    y2.(i) <- (sig_ -. 1.0) /. p;
    let du =
      ((ys.(i + 1) -. ys.(i)) /. (xs.(i + 1) -. xs.(i)))
      -. ((ys.(i) -. ys.(i - 1)) /. (xs.(i) -. xs.(i - 1)))
    in
    u.(i) <- (((6.0 *. du) /. (xs.(i + 1) -. xs.(i - 1))) -. (sig_ *. u.(i - 1))) /. p
  done;
  for k = n - 2 downto 0 do
    y2.(k) <- (y2.(k) *. y2.(k + 1)) +. u.(k)
  done;
  { xs = Array.copy xs; ys = Array.copy ys; y2 }

let spline_eval { xs; ys; y2 } x =
  let i = search xs x in
  let h = xs.(i + 1) -. xs.(i) in
  let a = (xs.(i + 1) -. x) /. h in
  let b = (x -. xs.(i)) /. h in
  (a *. ys.(i)) +. (b *. ys.(i + 1))
  +. ((((a *. a *. a) -. a) *. y2.(i) +. (((b *. b *. b) -. b) *. y2.(i + 1))) *. h *. h /. 6.0)

let spline_derivative { xs; ys; y2 } x =
  let i = search xs x in
  let h = xs.(i + 1) -. xs.(i) in
  let a = (xs.(i + 1) -. x) /. h in
  let b = (x -. xs.(i)) /. h in
  ((ys.(i + 1) -. ys.(i)) /. h)
  -. (((3.0 *. a *. a) -. 1.0) *. h *. y2.(i) /. 6.0)
  +. (((3.0 *. b *. b) -. 1.0) *. h *. y2.(i + 1) /. 6.0)

let crossings xs ys level =
  check xs ys "crossings";
  let n = Array.length xs in
  let acc = ref [] in
  for i = 0 to n - 2 do
    let d0 = ys.(i) -. level and d1 = ys.(i + 1) -. level in
    if Float.equal d0 0.0 then acc := xs.(i) :: !acc
    else if d0 *. d1 < 0.0 then begin
      let t = d0 /. (d0 -. d1) in
      acc := (xs.(i) +. (t *. (xs.(i + 1) -. xs.(i)))) :: !acc
    end
  done;
  if Float.equal ys.(n - 1) level then acc := xs.(n - 1) :: !acc;
  List.rev !acc
