type t = { n : int; row_ptr : int array; col_idx : int array; values : float array }

let of_triplets ~n triplets =
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
      triplets
  in
  (* Merge duplicates. *)
  let merged =
    List.fold_left
      (fun acc (i, j, v) ->
        if i < 0 || i >= n || j < 0 || j >= n then
          invalid_arg (Printf.sprintf "Sparse.of_triplets: (%d, %d) out of range" i j);
        match acc with
        | (i', j', v') :: rest when i' = i && j' = j -> (i, j, v +. v') :: rest
        | _ -> (i, j, v) :: acc)
      [] sorted
    |> List.rev
  in
  let nnz = List.length merged in
  let row_ptr = Array.make (n + 1) 0 in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    merged;
  for i = 1 to n do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  { n; row_ptr; col_idx; values }

let order a = a.n
let nnz a = Array.length a.values

let mat_vec a x =
  if Array.length x <> a.n then invalid_arg "Sparse.mat_vec: dimension mismatch";
  let y = Array.make a.n 0.0 in
  for i = 0 to a.n - 1 do
    let s = ref 0.0 in
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      s := !s +. (a.values.(k) *. x.(a.col_idx.(k)))
    done;
    y.(i) <- !s
  done;
  y

let diagonal a =
  let d = Array.make a.n 0.0 in
  for i = 0 to a.n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      if a.col_idx.(k) = i then d.(i) <- a.values.(k)
    done
  done;
  d

type result = { x : Vec.t; iterations : int; residual : float; converged : bool }

(* Jacobi-preconditioned BiCGSTAB (van der Vorst). *)
let bicgstab ?(tol = 1e-10) ?(max_iter = 2000) ?x0 a b =
  let n = a.n in
  if Array.length b <> n then invalid_arg "Sparse.bicgstab: dimension mismatch";
  let inv_diag =
    Array.map (fun d -> if Float.abs d > 1e-300 then 1.0 /. d else 1.0) (diagonal a)
  in
  let precond v = Array.mapi (fun i vi -> vi *. inv_diag.(i)) v in
  let x = match x0 with Some v -> Array.copy v | None -> Array.make n 0.0 in
  let r = Vec.sub b (mat_vec a x) in
  let r_hat = Vec.copy r in
  let bnorm = Float.max (Vec.norm2 b) 1e-300 in
  let rho = ref 1.0 and alpha = ref 1.0 and omega = ref 1.0 in
  let v = Array.make n 0.0 and p = Array.make n 0.0 in
  let rec loop iter =
    let rnorm = Vec.norm2 r in
    if rnorm /. bnorm <= tol then { x; iterations = iter; residual = rnorm /. bnorm; converged = true }
    else if iter >= max_iter then
      { x; iterations = iter; residual = rnorm /. bnorm; converged = false }
    else begin
      let rho_new = Vec.dot r_hat r in
      if Float.abs rho_new < 1e-300 then
        { x; iterations = iter; residual = rnorm /. bnorm; converged = false }
      else begin
        let beta = rho_new /. !rho *. (!alpha /. !omega) in
        for i = 0 to n - 1 do
          p.(i) <- r.(i) +. (beta *. (p.(i) -. (!omega *. v.(i))))
        done;
        let p_hat = precond p in
        let v' = mat_vec a p_hat in
        Array.blit v' 0 v 0 n;
        alpha := rho_new /. Vec.dot r_hat v;
        let s = Array.init n (fun i -> r.(i) -. (!alpha *. v.(i))) in
        if Vec.norm2 s /. bnorm <= tol then begin
          Vec.axpy !alpha p_hat x;
          { x; iterations = iter + 1; residual = Vec.norm2 s /. bnorm; converged = true }
        end
        else begin
          let s_hat = precond s in
          let t = mat_vec a s_hat in
          let tt = Vec.dot t t in
          omega := if tt > 1e-300 then Vec.dot t s /. tt else 0.0;
          for i = 0 to n - 1 do
            x.(i) <- x.(i) +. (!alpha *. p_hat.(i)) +. (!omega *. s_hat.(i));
            r.(i) <- s.(i) -. (!omega *. t.(i))
          done;
          rho := rho_new;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0
