(** Small dense matrices with LU factorization, used for modified nodal
    analysis systems (tens of unknowns).  Row-major [float array array]. *)

type t = float array array

val create : int -> int -> t
(** [create n m] is an [n] x [m] zero matrix. *)

val identity : int -> t

val copy : t -> t

val dims : t -> int * int

val mat_vec : t -> Vec.t -> Vec.t

val mat_mul : t -> t -> t

val transpose : t -> t

exception Singular of int
(** Raised by the factorization when a pivot column is numerically zero; the
    payload is the offending column index. *)

type lu
(** An LU factorization with partial pivoting. *)

val lu_factor : t -> lu
(** Factor a square matrix (the input is not modified).
    Raises {!Singular} if the matrix is singular. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve [A x = b] given the factorization of [A]. *)

val solve : t -> Vec.t -> Vec.t
(** One-shot [solve a b]: factor then solve. *)
