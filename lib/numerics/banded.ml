(* Band storage: band.(d).(j) holds A(j + d - ku, j) for diagonal offset
   d in [0, kl + ku], i.e. row index i = j + d - ku.  Column-oriented so the
   no-pivot LU walks columns contiguously. *)
type t = { n : int; kl : int; ku : int; band : float array array }

let create ~n ~kl ~ku =
  if n <= 0 || kl < 0 || ku < 0 then invalid_arg "Banded.create";
  { n; kl; ku; band = Array.make_matrix (kl + ku + 1) n 0.0 }

let order a = a.n
let bandwidths a = (a.kl, a.ku)

let in_band a i j =
  i >= 0 && j >= 0 && i < a.n && j < a.n && i - j <= a.kl && j - i <= a.ku

let get a i j = if in_band a i j then a.band.(i - j + a.ku).(j) else 0.0

let set a i j v =
  if not (in_band a i j) then
    invalid_arg (Printf.sprintf "Banded.set: (%d, %d) outside band" i j);
  a.band.(i - j + a.ku).(j) <- v

let add_to a i j v =
  if not (in_band a i j) then
    invalid_arg (Printf.sprintf "Banded.add_to: (%d, %d) outside band" i j);
  a.band.(i - j + a.ku).(j) <- a.band.(i - j + a.ku).(j) +. v

let clear a = Array.iter (fun row -> Array.fill row 0 a.n 0.0) a.band

let mat_vec a x =
  if Array.length x <> a.n then invalid_arg "Banded.mat_vec: dimension mismatch";
  let y = Array.make a.n 0.0 in
  for j = 0 to a.n - 1 do
    let xj = x.(j) in
    if not (Float.equal xj 0.0) then
      for d = 0 to a.kl + a.ku do
        let i = j + d - a.ku in
        if i >= 0 && i < a.n then y.(i) <- y.(i) +. (a.band.(d).(j) *. xj)
      done
  done;
  y

(* LU without pivoting.  For each column k, eliminate rows k+1 .. k+kl.
   Fill stays within the original band since there is no pivoting. *)
let solve_in_place a b =
  if Array.length b <> a.n then invalid_arg "Banded.solve_in_place: dimension mismatch";
  let { n; kl; ku; band } = a in
  let x = Array.copy b in
  let idx i j = (i - j + ku, j) in
  let get_ i j =
    let d, c = idx i j in
    band.(d).(c)
  in
  let set_ i j v =
    let d, c = idx i j in
    band.(d).(c) <- v
  in
  for k = 0 to n - 1 do
    let pivot = get_ k k in
    if Float.abs pivot < 1e-300 then
      failwith (Printf.sprintf "Banded.solve_in_place: zero pivot at row %d" k);
    let imax = Int.min (k + kl) (n - 1) in
    let jmax = Int.min (k + ku) (n - 1) in
    for i = k + 1 to imax do
      let f = get_ i k /. pivot in
      if not (Float.equal f 0.0) then begin
        set_ i k f;
        for j = k + 1 to jmax do
          set_ i j (get_ i j -. (f *. get_ k j))
        done;
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    let jmax = Int.min (i + ku) (n - 1) in
    for j = i + 1 to jmax do
      s := !s -. (get_ i j *. x.(j))
    done;
    x.(i) <- !s /. get_ i i
  done;
  x
