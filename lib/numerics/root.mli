(** Scalar root finding. *)

val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [[a, b]].  Requires a sign change
    ([Invalid_argument] otherwise).  [tol] is the interval-width target
    (default 1e-12). *)

val brent : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: bisection safety with inverse-quadratic speed.  Same
    contract as {!bisect}. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) -> float -> float
(** [newton ~f ~df x0] runs Newton iteration from [x0].  Raises [Failure] if
    it fails to converge or hits a zero derivative. *)

val find_bracket :
  ?grow:float -> ?max_iter:int -> (float -> float) -> float -> float -> (float * float) option
(** [find_bracket f a b] expands the interval geometrically outward until
    [f] changes sign, returning the bracket if found. *)
