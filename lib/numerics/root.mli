(** Scalar root finding.

    Every method has a bounded iteration budget, and exhausting it is never
    silent: the exhaustion path emits an [Obs.non_converged] event and then
    either raises {!No_convergence} (the default) or, under
    [~on_fail:`Accept], returns the best iterate so far.  Callers that can
    tolerate an approximate root must say so explicitly. *)

exception
  No_convergence of {
    method_ : string;  (** ["bisect"], ["brent"] or ["newton"] *)
    a : float;  (** bracket low / last iterate *)
    b : float;  (** bracket high / last iterate *)
    best : float;  (** best iterate when the budget ran out *)
    residual : float;  (** [f best] *)
    iterations : int;
  }

type on_fail = [ `Raise | `Accept ]
(** What to do when the iteration budget is exhausted: [`Raise]
    {!No_convergence} (default), or [`Accept] the best iterate (an obs
    non-convergence event is emitted either way). *)

val bisect :
  ?tol:float -> ?max_iter:int -> ?on_fail:on_fail -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [[a, b]].  Requires a sign change
    ([Invalid_argument] otherwise).  [tol] is the interval-width target
    (default 1e-12). *)

val brent :
  ?tol:float -> ?max_iter:int -> ?on_fail:on_fail -> (float -> float) -> float -> float -> float
(** Brent's method: bisection safety with inverse-quadratic speed.  Same
    contract as {!bisect}. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  ?on_fail:on_fail ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** [newton ~f ~df x0] runs Newton iteration from [x0].  Raises
    {!No_convergence} on budget exhaustion (unless [`Accept]) and [Failure]
    on a zero derivative. *)

val find_bracket :
  ?grow:float -> ?max_iter:int -> (float -> float) -> float -> float -> (float * float) option
(** [find_bracket f a b] expands the interval geometrically outward until
    [f] changes sign, returning the bracket if found.  A candidate endpoint
    whose evaluation is non-finite (NaN or infinite — e.g. a pole or an
    overflow masquerading as a sign change) yields [None] plus an obs
    non-convergence event rather than a bogus bracket. *)
