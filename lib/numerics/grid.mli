(** 1-D mesh generators for the TCAD discretization.  All grids are strictly
    increasing float arrays of node coordinates. *)

val uniform : float -> float -> int -> Vec.t
(** [uniform a b n] — [n] nodes from [a] to [b]. *)

val geometric : float -> float -> h0:float -> ratio:float -> Vec.t
(** [geometric a b ~h0 ~ratio] starts with spacing [h0] at [a] and grows each
    step by [ratio] (>= 1) until reaching [b]; the final node is clamped to
    [b]. *)

val refined_around :
  float -> float -> centers:float list -> h_min:float -> h_max:float -> Vec.t
(** [refined_around a b ~centers ~h_min ~h_max] builds a graded grid on
    [[a, b]] whose spacing is [h_min] near each centre and grows smoothly to
    at most [h_max] away from them. *)

val concat_unique : Vec.t -> Vec.t -> Vec.t
(** Merge two sorted grids, dropping near-duplicate nodes. *)

val midpoints : Vec.t -> Vec.t

val spacings : Vec.t -> Vec.t
(** [spacings xs].(i) = xs.(i+1) - xs.(i). *)
