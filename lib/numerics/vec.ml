type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy

let check_same_length name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch (%d vs %d)" name (Array.length x) (Array.length y))

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: need at least 2 points";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. float_of_int i))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Vec.logspace: endpoints must be positive";
  Array.map exp (linspace (log a) (log b) n)

let dot x y =
  check_same_length "dot" x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let axpy a x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add x y =
  check_same_length "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_length "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let map = Array.map

let max_abs_diff x y =
  check_same_length "max_abs_diff" x y;
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m
