(** Pentadiagonal linear systems from 5-point finite-volume stencils on a
    tensor mesh with nodes ordered [k = ix * ny + iy]: nonzero diagonals
    only at offsets 0, +-1 and +-m (m = ny).

    Unlike the generic {!Banded} path — which stores and clears the full
    (2m+1)-diagonal band on every assembly — assembly here touches exactly
    the five stencil diagonals, and the LU workspace (where fill-in lives)
    is owned by the value, so a solver reusing one stencil across Newton /
    Gummel iterations allocates nothing per solve.  On the same matrix the
    solve is bit-identical to [Banded.solve_in_place] (same elimination
    order, no pivoting). *)

type t

val create : n:int -> m:int -> t
(** Zero system of order [n] with far-diagonal offset [m] (the inner mesh
    dimension).  Requires [1 <= m < n]. *)

val order : t -> int
val offset : t -> int

val rhs : t -> Fvec.t
(** The right-hand-side buffer; assembly writes it, {!clear} zeroes it,
    {!solve} reads it (and leaves it intact). *)

val clear : t -> unit
(** Zero the five diagonals and the right-hand side, keeping the storage. *)

val get : t -> int -> int -> float
(** [get a i j] is A(i,j); zero off the stencil. *)

val set : t -> int -> int -> float -> unit
(** Raises [Invalid_argument] when [j - i] is not one of 0, +-1, +-m. *)

val add : t -> int -> int -> float -> unit
(** Stamping accumulate; same domain as {!set}. *)

val set_row :
  t -> int -> west:float -> south:float -> diag:float -> north:float -> east:float ->
  rhs:float -> unit
(** Write row [i] in one shot: [west] is A(i,i-m), [south] A(i,i-1),
    [north] A(i,i+1), [east] A(i,i+m).  Entries whose column falls outside
    the matrix are ignored by {!solve}/{!mat_vec}, so pass 0.0 for them.
    An assembler that [set_row]s every row needs no prior {!clear}. *)

val mat_vec : t -> Fvec.t -> Fvec.t -> unit
(** [mat_vec a x y] writes A x into [y]. *)

val solve : t -> dst:Fvec.t -> unit
(** Solve A x = rhs into [dst], allocation-free: expands the diagonals into
    the internal band workspace, LU-factors without pivoting (adequate for
    the diagonally dominant finite-volume systems) and substitutes.  The
    diagonals and [rhs] are preserved.  Raises [Failure] on a (near-)zero
    pivot. *)
