(** Tridiagonal systems via the Thomas algorithm (no pivoting; intended for
    diagonally dominant systems such as 1-D Poisson discretizations). *)

val solve : lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> rhs:Vec.t -> Vec.t
(** [solve ~lower ~diag ~upper ~rhs] solves the [n] x [n] tridiagonal system.
    [lower] and [upper] have length [n] with [lower.(0)] and [upper.(n-1)]
    ignored.  Raises [Invalid_argument] on length mismatch and [Failure] on a
    zero pivot. *)
