(** Dense float vectors as [float array] with the usual BLAS-1 operations.
    All binary operations require equal lengths and raise [Invalid_argument]
    otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] points evenly spaced from [a] to [b] inclusive.
    Requires [n >= 2]. *)

val logspace : float -> float -> int -> t
(** [logspace a b n] is [n] points geometrically spaced from [a] to [b],
    both strictly positive. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val scale : float -> t -> unit
(** In-place scaling. *)

val add : t -> t -> t

val sub : t -> t -> t

val map : (float -> float) -> t -> t

val max_abs_diff : t -> t -> float
(** Infinity norm of the difference. *)
