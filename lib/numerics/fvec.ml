(* Flat float64 vectors: Bigarray.Array1, C layout.  The solver hot path
   (TCAD field state, pentadiagonal assembly) lives on these so inner loops
   run over one contiguous, unboxed buffer with no per-element indirection.
   [unsafe_get]/[unsafe_set] skip the bounds check — use them only in loops
   whose index range is established once at entry. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let raw n : t = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create n =
  let v = raw n in
  Bigarray.Array1.fill v 0.0;
  v

let make n x =
  let v = raw n in
  Bigarray.Array1.fill v x;
  v

let init n f =
  let v = raw n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (f i)
  done;
  v

let length = Bigarray.Array1.dim
let get (v : t) i = Bigarray.Array1.get v i
let set (v : t) i x = Bigarray.Array1.set v i x
let unsafe_get (v : t) i = Bigarray.Array1.unsafe_get v i
let unsafe_set (v : t) i x = Bigarray.Array1.unsafe_set v i x
let fill (v : t) x = Bigarray.Array1.fill v x

let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst

let copy v =
  let c = raw (length v) in
  blit v c;
  c

let of_array a = init (Array.length a) (Array.unsafe_get a)
let to_array v = Array.init (length v) (unsafe_get v)

let map f v = init (length v) (fun i -> f (unsafe_get v i))

let iteri f v =
  for i = 0 to length v - 1 do
    f i (unsafe_get v i)
  done

let for_all p v =
  let n = length v in
  let rec go i = i >= n || (p (unsafe_get v i) && go (i + 1)) in
  go 0

let max_abs_diff x y =
  if length x <> length y then
    invalid_arg
      (Printf.sprintf "Fvec.max_abs_diff: length mismatch (%d vs %d)" (length x) (length y));
  let m = ref 0.0 in
  for i = 0 to length x - 1 do
    m := Float.max !m (Float.abs (unsafe_get x i -. unsafe_get y i))
  done;
  !m
