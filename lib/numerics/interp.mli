(** Interpolation over tabulated data with strictly increasing abscissae. *)

val linear : Vec.t -> Vec.t -> float -> float
(** [linear xs ys x] linearly interpolates; clamps outside the table.
    Raises [Invalid_argument] on length mismatch or fewer than 2 points. *)

val search : Vec.t -> float -> int
(** [search xs x] is the index [i] such that [xs.(i) <= x < xs.(i+1)]
    (clamped to [[0, n-2]]). *)

type spline

val cubic_spline : Vec.t -> Vec.t -> spline
(** Natural cubic spline through the points. *)

val spline_eval : spline -> float -> float

val spline_derivative : spline -> float -> float

val crossings : Vec.t -> Vec.t -> float -> float list
(** [crossings xs ys level] returns the linearly interpolated [x] positions
    where the sampled curve crosses [level], in order. *)
