(** Flat float64 vectors ([Bigarray.Array1], C layout) for solver hot
    paths: contiguous, unboxed, and shareable across domains without the
    OCaml heap in the way.  The TCAD field state ([Tcad.Field]) and the
    pentadiagonal solver ({!Stencil5}) are built on these.

    The [.{i}] indexing syntax works on values of this type. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled vector of the given length. *)

val make : int -> float -> t
(** [make n x] is a length-[n] vector filled with [x]. *)

val init : int -> (int -> float) -> t

val length : t -> int

val get : t -> int -> float
val set : t -> int -> float -> unit

val unsafe_get : t -> int -> float
(** No bounds check — hot loops only. *)

val unsafe_set : t -> int -> float -> unit

val fill : t -> float -> unit

val blit : t -> t -> unit
(** [blit src dst]; lengths must match. *)

val copy : t -> t

val of_array : float array -> t
val to_array : t -> float array

val map : (float -> float) -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val for_all : (float -> bool) -> t -> bool

val max_abs_diff : t -> t -> float
(** Inf-norm of the difference; raises [Invalid_argument] on a length
    mismatch. *)
