let uniform a b n = Vec.linspace a b n

let geometric a b ~h0 ~ratio =
  if h0 <= 0.0 then invalid_arg "Grid.geometric: h0 must be positive";
  if ratio < 1.0 then invalid_arg "Grid.geometric: ratio must be >= 1";
  let rec collect x h acc =
    if x >= b -. (1e-6 *. h0) then List.rev (b :: acc)
    else collect (x +. h) (h *. ratio) (x :: acc)
  in
  Array.of_list (collect a h0 [])

(* Target spacing at x: h_min near any centre, growing linearly with distance
   at slope g until h_max.  Integrate dx/h(x) by stepping. *)
let refined_around a b ~centers ~h_min ~h_max =
  if h_min <= 0.0 || h_max < h_min then invalid_arg "Grid.refined_around: bad spacings";
  if b <= a then invalid_arg "Grid.refined_around: empty interval";
  let growth = 0.35 in
  let target x =
    let d =
      List.fold_left (fun acc c -> Float.min acc (Float.abs (x -. c))) infinity centers
    in
    Float.min h_max (h_min +. (growth *. d))
  in
  let rec collect x acc =
    let h = target x in
    let x' = x +. h in
    if x' >= b -. (0.3 *. h) then List.rev (b :: acc) else collect x' (x' :: acc)
  in
  Array.of_list (collect a [ a ])

let concat_unique g1 g2 =
  let all = Array.to_list g1 @ Array.to_list g2 in
  let sorted = List.sort compare all in
  let span =
    match (sorted, List.rev sorted) with
    | lo :: _, hi :: _ -> hi -. lo
    | _, _ -> 0.0
  in
  let eps = 1e-9 *. Float.max span 1e-30 in
  let rec dedup = function
    | x :: y :: rest when y -. x < eps -> dedup (x :: rest)
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  Array.of_list (dedup sorted)

let midpoints xs =
  Array.init (Array.length xs - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let spacings xs = Array.init (Array.length xs - 1) (fun i -> xs.(i + 1) -. xs.(i))
