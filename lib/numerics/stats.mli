(** Small statistics helpers used by extraction and bench reporting. *)

val mean : Vec.t -> float

val stddev : Vec.t -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. *)

val minimum : Vec.t -> float

val maximum : Vec.t -> float

val linear_regression : Vec.t -> Vec.t -> float * float
(** [linear_regression xs ys] is [(slope, intercept)] of the least-squares
    line.  Raises [Invalid_argument] on mismatch or fewer than 2 points. *)

val correlation : Vec.t -> Vec.t -> float
(** Pearson correlation coefficient. *)

val geometric_mean_ratio : Vec.t -> float
(** For a positive series y_0..y_n, the geometric mean of successive ratios
    y_{i+1}/y_i — the paper's "% per generation" figure of merit. *)

val erf : float -> float
(** Error function (rational approximation, |error| < 1.5e-7). *)

val normal_cdf : ?mean:float -> ?sigma:float -> float -> float
(** Gaussian cumulative distribution. *)
