(** Damped Newton iteration for dense nonlinear systems F(x) = 0, used by the
    circuit simulator's operating-point solver. *)

type outcome = {
  x : Vec.t;  (** final iterate *)
  iterations : int;
  residual : float;  (** infinity norm of F at the final iterate *)
  converged : bool;
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?max_step:float ->
  f:(Vec.t -> Vec.t) ->
  jacobian:(Vec.t -> Matrix.t) ->
  Vec.t ->
  outcome
(** [solve ~f ~jacobian x0] iterates x <- x + t dx with [J dx = -F] and a
    backtracking line search on |F|; each component of the raw step is also
    clipped to [max_step] (default [infinity]), which circuit solvers use to
    keep device voltages from jumping across exponentials. *)
