exception
  No_convergence of {
    method_ : string;
    a : float;
    b : float;
    best : float;
    residual : float;
    iterations : int;
  }

let () =
  Printexc.register_printer (function
    | No_convergence { method_; a; b; best; residual; iterations } ->
      Some
        (Printf.sprintf
           "Root.No_convergence(%s: %d iterations, bracket [%h, %h], best %h, residual %h)"
           method_ iterations a b best residual)
    | _ -> None)

type on_fail = [ `Raise | `Accept ]

(* Every exhaustion path funnels through here so that a solver giving up is
   never silent: the obs counter/event fires whether the caller chose to
   [`Raise] or to [`Accept] the last iterate. *)
let exhausted ~method_ ~on_fail ~a ~b ~best ~residual ~iterations =
  Obs.non_converged ~solver:"numerics.root"
    ~attrs:
      [
        ("method", Obs.Trace.S method_);
        ("a", Obs.Trace.F a);
        ("b", Obs.Trace.F b);
        ("best", Obs.Trace.F best);
        ("residual", Obs.Trace.F residual);
        ("iterations", Obs.Trace.I iterations);
      ]
    (Printf.sprintf "%s exhausted %d iterations on [%g, %g]" method_ iterations a b);
  match on_fail with
  | `Raise -> raise (No_convergence { method_; a; b; best; residual; iterations })
  | `Accept -> best

let bisect ?(tol = 1e-12) ?(max_iter = 200) ?(on_fail = `Raise) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else begin
    if fa *. fb > 0.0 then invalid_arg "Root.bisect: no sign change on [a, b]";
    (* The tolerance test comes before the budget test so that converging
       call sequences are unchanged from the pre-[on_fail] implementation
       (golden snapshots are bit-exact about this). *)
    let rec loop a b fa iter =
      let m = 0.5 *. (a +. b) in
      if (b -. a) /. 2.0 < tol then m
      else if iter >= max_iter then
        exhausted ~method_:"bisect" ~on_fail ~a ~b ~best:m ~residual:(f m) ~iterations:iter
      else
        let fm = f m in
        if Float.equal fm 0.0 then m
        else if fa *. fm < 0.0 then loop a m fa (iter + 1)
        else loop m b fm (iter + 1)
    in
    loop (Float.min a b) (Float.max a b) (if a < b then fa else fb) 0
  end

(* Brent (1973), as in Numerical Recipes zbrent. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ?(on_fail = `Raise) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else begin
    if fa *. fb > 0.0 then invalid_arg "Root.brent: no sign change on [a, b]";
    let a = ref a and b = ref b and c = ref a and fa = ref fa and fb = ref fb in
    let fc = ref !fa and d = ref (!b -. !a) and e = ref (!b -. !a) in
    c := !a;
    let result = ref None in
    let iter = ref 0 in
    while Option.is_none !result && !iter < max_iter do
      incr iter;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || Float.equal !fb 0.0 then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if Float.equal !a !c then
              let p = 2.0 *. xm *. s in
              (p, 1.0 -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
              (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := xm
          end
        end
        else begin
          d := xm;
          e := xm
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
        fb := f !b;
        if !fb *. !fc > 0.0 then begin
          c := !a;
          fc := !fa;
          d := !b -. !a;
          e := !d
        end
      end
    done;
    match !result with
    | Some r -> r
    | None ->
      exhausted ~method_:"brent" ~on_fail ~a:!a ~b:!c ~best:!b ~residual:!fb ~iterations:!iter
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ?(on_fail = `Raise) ~f ~df x0 =
  let rec loop x iter =
    if iter >= max_iter then
      exhausted ~method_:"newton" ~on_fail ~a:x ~b:x ~best:x ~residual:(f x) ~iterations:iter
    else begin
      let fx = f x in
      let dfx = df x in
      if Float.abs dfx < 1e-300 then failwith "Root.newton: zero derivative";
      let x' = x -. (fx /. dfx) in
      if Float.abs (x' -. x) < tol *. (1.0 +. Float.abs x') then x' else loop x' (iter + 1)
    end
  in
  loop x0 0

let find_bracket ?(grow = 1.6) ?(max_iter = 60) f a b =
  let non_finite who x fx =
    Obs.non_converged ~solver:"numerics.root"
      ~attrs:[ ("method", Obs.Trace.S "find_bracket"); (who, Obs.Trace.F x); ("f", Obs.Trace.F fx) ]
      (Printf.sprintf "find_bracket: non-finite f(%g) = %g" x fx);
    None
  in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let fa = ref (f !a) and fb = ref (f !b) in
  (* A sign test against a non-finite evaluation is meaningless
     (-inf *. positive < 0 would "bracket" a pole or an overflow, and any
     NaN silently fails every test); refuse such endpoints outright. *)
  let rec loop iter =
    if not (Float.is_finite !fa) then non_finite "a" !a !fa
    else if not (Float.is_finite !fb) then non_finite "b" !b !fb
    else if !fa *. !fb < 0.0 then Some (!a, !b)
    else if iter >= max_iter then None
    else begin
      if Float.abs !fa < Float.abs !fb then begin
        a := !a -. (grow *. (!b -. !a));
        fa := f !a
      end
      else begin
        b := !b +. (grow *. (!b -. !a));
        fb := f !b
      end;
      loop (iter + 1)
    end
  in
  loop 0
