let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else begin
    if fa *. fb > 0.0 then invalid_arg "Root.bisect: no sign change on [a, b]";
    let rec loop a b fa iter =
      let m = 0.5 *. (a +. b) in
      if (b -. a) /. 2.0 < tol || iter >= max_iter then m
      else
        let fm = f m in
        if fm = 0.0 then m
        else if fa *. fm < 0.0 then loop a m fa (iter + 1)
        else loop m b fm (iter + 1)
    in
    loop (Float.min a b) (Float.max a b) (if a < b then fa else fb) 0
  end

(* Brent (1973), as in Numerical Recipes zbrent. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else begin
    if fa *. fb > 0.0 then invalid_arg "Root.brent: no sign change on [a, b]";
    let a = ref a and b = ref b and c = ref a and fa = ref fa and fb = ref fb in
    let fc = ref !fa and d = ref (!b -. !a) and e = ref (!b -. !a) in
    c := !a;
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0.0 then result := Some !b
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2.0 *. xm *. s in
              (p, 1.0 -. s)
            else begin
              let q = !fa /. !fc and r = !fb /. !fc in
              let p = s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0))) in
              (p, (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0))
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := xm
          end
        end
        else begin
          d := xm;
          e := xm
        end;
        a := !b;
        fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
        fb := f !b;
        if !fb *. !fc > 0.0 then begin
          c := !a;
          fc := !fa;
          d := !b -. !a;
          e := !d
        end
      end
    done;
    match !result with Some r -> r | None -> !b
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x iter =
    if iter >= max_iter then failwith "Root.newton: no convergence";
    let fx = f x in
    let dfx = df x in
    if Float.abs dfx < 1e-300 then failwith "Root.newton: zero derivative";
    let x' = x -. (fx /. dfx) in
    if Float.abs (x' -. x) < tol *. (1.0 +. Float.abs x') then x' else loop x' (iter + 1)
  in
  loop x0 0

let find_bracket ?(grow = 1.6) ?(max_iter = 60) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let fa = ref (f !a) and fb = ref (f !b) in
  let rec loop iter =
    if !fa *. !fb < 0.0 then Some (!a, !b)
    else if iter >= max_iter then None
    else begin
      if Float.abs !fa < Float.abs !fb then begin
        a := !a -. (grow *. (!b -. !a));
        fa := f !a
      end
      else begin
        b := !b +. (grow *. (!b -. !a));
        fb := f !b
      end;
      loop (iter + 1)
    end
  in
  loop 0
