(* Non-finite guard.  Disabled by default: every check is a single flag
   load on the fast path.  When enabled, the first NaN/infinity seen is
   reported with its origin (solver entry/exit point) and element index,
   which turns a silent NaN propagating through a Gummel loop or an MNA
   solve into an immediate, located failure. *)

exception Non_finite of { origin : string; index : int option; value : float }

let () =
  Printexc.register_printer (function
    | Non_finite { origin; index; value } ->
      let where =
        match index with None -> origin | Some i -> Printf.sprintf "%s[%d]" origin i
      in
      Some (Printf.sprintf "Numerics.Guard.Non_finite(%s = %h)" where value)
    | _ -> None)

let enabled = ref false

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let with_guard f =
  let previous = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := previous) f

let float ~origin v =
  if !enabled && not (Float.is_finite v) then
    raise (Non_finite { origin; index = None; value = v });
  v

let vec ~origin v =
  if !enabled then begin
    let n = Array.length v in
    for i = 0 to n - 1 do
      if not (Float.is_finite v.(i)) then
        raise (Non_finite { origin; index = Some i; value = v.(i) })
    done
  end;
  v

let fvec ~origin (v : Fvec.t) =
  if !enabled then begin
    let n = Fvec.length v in
    for i = 0 to n - 1 do
      let x = Fvec.unsafe_get v i in
      if not (Float.is_finite x) then
        raise (Non_finite { origin; index = Some i; value = x })
    done
  end;
  v

let describe = function
  | Non_finite { origin; index; value } ->
    let where =
      match index with None -> origin | Some i -> Printf.sprintf "%s, element %d" origin i
    in
    Some (Printf.sprintf "non-finite value (%h) at %s" value where)
  | _ -> None
