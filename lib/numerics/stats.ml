let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left Float.max xs.(0) xs

let linear_regression xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_regression: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) ** 2.0)
  done;
  if Float.equal !sxx 0.0 then invalid_arg "Stats.linear_regression: degenerate abscissae";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0.0 || Float.equal !syy 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let geometric_mean_ratio ys =
  let n = Array.length ys in
  if n < 2 then invalid_arg "Stats.geometric_mean_ratio: need >= 2 points";
  Array.iter (fun y -> if y <= 0.0 then invalid_arg "Stats.geometric_mean_ratio: non-positive") ys;
  let log_sum = ref 0.0 in
  for i = 0 to n - 2 do
    log_sum := !log_sum +. log (ys.(i + 1) /. ys.(i))
  done;
  exp (!log_sum /. float_of_int (n - 1))

(* Abramowitz & Stegun 7.1.26 rational approximation, |error| < 1.5e-7. *)
let erf x =
  let sign = if x >= 0.0 then 1.0 else -1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
        +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf ?(mean = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Stats.normal_cdf: sigma must be positive";
  0.5 *. (1.0 +. erf ((x -. mean) /. (sigma *. sqrt 2.0)))
