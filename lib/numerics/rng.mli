(** Small deterministic pseudo-random generator (xoshiro256starstar) for Monte
    Carlo studies — seedable, reproducible across runs, independent of the
    global [Random] state. *)

type t

val create : seed:int -> t

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val normal : t -> mean:float -> sigma:float -> float

val int : t -> bound:int -> int
(** Uniform in [0, bound). *)
