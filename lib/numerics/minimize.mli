(** Scalar minimization, plus a coordinate-descent helper for the
    two-variable doping optimizations in the scaling strategies. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** [golden_section f a b] minimizes unimodal [f] on [[a, b]]; returns
    [(x_min, f x_min)]. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** Brent's parabolic-interpolation minimizer on a bracket [[a, b]]. *)

val grid_then_golden :
  ?samples:int -> ?tol:float -> (float -> float) -> float -> float -> float * float
(** Sample [samples] points (default 24) to locate the basin of the global
    minimum on [[a, b]], then refine with golden section.  Robust when [f] is
    not unimodal. *)

val coordinate_descent :
  ?sweeps:int ->
  ?tol:float ->
  f:(float array -> float) ->
  lower:float array ->
  upper:float array ->
  float array ->
  float array * float
(** [coordinate_descent ~f ~lower ~upper x0] minimizes [f] over a box by
    cyclic 1-D line searches ({!grid_then_golden} per coordinate).  Returns
    the best point and value. *)
