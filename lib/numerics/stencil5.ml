(* Pentadiagonal systems from 5-point stencils on an (nx * ny) tensor mesh
   with nodes ordered k = ix * ny + iy: the only nonzero diagonals are
   0, +-1 and +-m (m = ny).  Assembly writes those five flat diagonals
   directly; the solve expands them into a row-major band workspace and
   runs an LU without pivoting (the systems are diagonally dominant), with
   every inner loop a contiguous unsafe walk over one Fvec.  The workspace
   is owned by [t], so a solver that reuses one stencil across iterations
   allocates nothing per solve.

   Hot loops apply the Bigarray primitives directly (module alias [BA1])
   rather than through [Fvec]'s wrappers: without flambda, a cross-module
   call neither inlines nor specialises the primitive, costing a function
   call plus float boxing per element — a ~5x slowdown measured on the LU
   inner loop. *)

module BA1 = Bigarray.Array1

type t = {
  n : int;
  m : int;  (* far-diagonal offset: the inner (vertical) mesh dimension *)
  dl2 : Fvec.t;  (* A(i, i-m), indexed by row i *)
  dl1 : Fvec.t;  (* A(i, i-1) *)
  d0 : Fvec.t;  (* A(i, i) *)
  du1 : Fvec.t;  (* A(i, i+1) *)
  du2 : Fvec.t;  (* A(i, i+m) *)
  rhs : Fvec.t;
  band : Fvec.t;  (* n rows x (2m+1) columns, row-major LU workspace *)
}

let create ~n ~m =
  if n <= 0 || m < 1 || m >= n then
    invalid_arg
      (Printf.sprintf "Stencil5.create: invalid shape n=%d m=%d (need n > 0 and 1 <= m < n)"
         n m);
  {
    n;
    m;
    dl2 = Fvec.create n;
    dl1 = Fvec.create n;
    d0 = Fvec.create n;
    du1 = Fvec.create n;
    du2 = Fvec.create n;
    rhs = Fvec.create n;
    band = Fvec.create (n * ((2 * m) + 1));
  }

let order a = a.n
let offset a = a.m
let rhs a = a.rhs

let clear a =
  Fvec.fill a.dl2 0.0;
  Fvec.fill a.dl1 0.0;
  Fvec.fill a.d0 0.0;
  Fvec.fill a.du1 0.0;
  Fvec.fill a.du2 0.0;
  Fvec.fill a.rhs 0.0

let diag_of a i j =
  if i < 0 || j < 0 || i >= a.n || j >= a.n then None
  else
    match j - i with
    | 0 -> Some a.d0
    | -1 -> Some a.dl1
    | 1 -> Some a.du1
    | d when d = -a.m -> Some a.dl2
    | d when d = a.m -> Some a.du2
    | _ -> None

let get a i j = match diag_of a i j with Some d -> Fvec.get d i | None -> 0.0

let set a i j v =
  match diag_of a i j with
  | Some d -> Fvec.set d i v
  | None -> invalid_arg (Printf.sprintf "Stencil5.set: (%d, %d) off the stencil" i j)

let add a i j v =
  match diag_of a i j with
  | Some d -> Fvec.set d i (Fvec.get d i +. v)
  | None -> invalid_arg (Printf.sprintf "Stencil5.add: (%d, %d) off the stencil" i j)

(* Write a whole row at once; entries whose column falls outside the matrix
   (first/last rows and columns) are simply never read by [solve]/[mat_vec],
   so assembly can pass 0.0 for them unconditionally.  A full [set_row]
   sweep replaces {!clear} for assemblers that visit every row. *)
let set_row a i ~west ~south ~diag ~north ~east ~rhs:r =
  if i < 0 || i >= a.n then invalid_arg "Stencil5.set_row";
  BA1.unsafe_set a.dl2 i west;
  BA1.unsafe_set a.dl1 i south;
  BA1.unsafe_set a.d0 i diag;
  BA1.unsafe_set a.du1 i north;
  BA1.unsafe_set a.du2 i east;
  BA1.unsafe_set a.rhs i r

let mat_vec a x y =
  if Fvec.length x <> a.n || Fvec.length y <> a.n then
    invalid_arg "Stencil5.mat_vec: dimension mismatch";
  let { n; m; dl2; dl1; d0; du1; du2; _ } = a in
  for i = 0 to n - 1 do
    let s = ref (BA1.unsafe_get d0 i *. BA1.unsafe_get x i) in
    if i >= m then s := !s +. (BA1.unsafe_get dl2 i *. BA1.unsafe_get x (i - m));
    if i >= 1 then s := !s +. (BA1.unsafe_get dl1 i *. BA1.unsafe_get x (i - 1));
    if i + 1 < n then s := !s +. (BA1.unsafe_get du1 i *. BA1.unsafe_get x (i + 1));
    if i + m < n then s := !s +. (BA1.unsafe_get du2 i *. BA1.unsafe_get x (i + m));
    BA1.unsafe_set y i !s
  done

(* Expand diagonals into the band, factor (LU, no pivoting; fill stays
   within the band) and solve.  Elimination is column-by-column in the same
   order as [Banded.solve_in_place], so the float sequence — hence the
   result — matches the generic path bit for bit on the same matrix. *)
let solve a ~dst =
  if Fvec.length dst <> a.n then invalid_arg "Stencil5.solve: dst length mismatch";
  let { n; m; dl2; dl1; d0; du1; du2; rhs; band } = a in
  let w = (2 * m) + 1 in
  Fvec.fill band 0.0;
  (* band.(i*w + (j - i + m)) = A(i, j).  Off-diagonals accumulate instead
     of assign: when m = 1 (a single-row mesh) the +-1 and +-m diagonals
     coincide, and [mat_vec] sums them — plain assignment would silently
     drop whichever was expanded first.  The band is zero-filled, so for
     m > 1 accumulation is the same stores as before. *)
  let acc i v = BA1.unsafe_set band i (BA1.unsafe_get band i +. v) in
  for i = 0 to n - 1 do
    let base = (i * w) + m in
    if i >= m then acc (base - m) (BA1.unsafe_get dl2 i);
    if i >= 1 then acc (base - 1) (BA1.unsafe_get dl1 i);
    BA1.unsafe_set band base (BA1.unsafe_get d0 i);
    if i + 1 < n then acc (base + 1) (BA1.unsafe_get du1 i);
    if i + m < n then acc (base + m) (BA1.unsafe_get du2 i)
  done;
  Fvec.blit rhs dst;
  for k = 0 to n - 1 do
    let pivot = BA1.unsafe_get band ((k * w) + m) in
    if Float.abs pivot < 1e-300 then
      failwith (Printf.sprintf "Stencil5.solve: zero pivot at row %d" k);
    let imax = Int.min (k + m) (n - 1) in
    let jmax = Int.min (k + m) (n - 1) in
    (* Row k entries A(k, j) live at band.(k*w + m - k + j). *)
    let bk = (k * w) + m - k in
    for i = k + 1 to imax do
      let bi = (i * w) + m - i in
      let f = BA1.unsafe_get band (bi + k) /. pivot in
      if not (Float.equal f 0.0) then begin
        BA1.unsafe_set band (bi + k) f;
        for j = k + 1 to jmax do
          BA1.unsafe_set band (bi + j)
            (BA1.unsafe_get band (bi + j) -. (f *. BA1.unsafe_get band (bk + j)))
        done;
        BA1.unsafe_set dst i (BA1.unsafe_get dst i -. (f *. BA1.unsafe_get dst k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let bi = (i * w) + m - i in
    let s = ref (BA1.unsafe_get dst i) in
    let jmax = Int.min (i + m) (n - 1) in
    for j = i + 1 to jmax do
      s := !s -. (BA1.unsafe_get band (bi + j) *. BA1.unsafe_get dst j)
    done;
    BA1.unsafe_set dst i (!s /. BA1.unsafe_get band (bi + i))
  done
