(** Serving layer: the line-delimited JSON query protocol
    ({!Protocol}), the sweep-box coalescing planner ({!Coalesce}) and
    the socket daemon ({!Server}) behind [subscale serve]. *)

module Protocol = Protocol
module Coalesce = Coalesce
module Server = Server
