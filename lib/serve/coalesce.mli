(** Sweep-box coalescing: a pure planner that merges overlapping Id–Vg
    requests so one warm-started TCAD run serves them all.

    Requests are grouped by bit-equal drain bias, then boxes whose
    [[vg_min, vg_max]] ranges transitively overlap (or touch) are merged
    into one group.  The group's gate grid is the sorted, bit-exact
    deduplication of every member's own linspace grid, so each member's
    answer is read off the merged sweep at exactly the gate voltages it
    asked for — the values a standalone run would have swept, modulo the
    warm-continuation tolerance (see DESIGN.md). *)

type box = {
  rid : int;  (** caller's request identifier, threaded through *)
  vd : float;
  vg_min : float;
  vg_max : float;
  points : int;
}

type group = {
  vd : float;
  grid : float array;  (** strictly increasing union of member grids *)
  members : (int * int array) list;
      (** [(rid, idx)]: member [rid]'s point [i] lives at [grid.(idx.(i))] *)
}

val grid_of_box : box -> float array
(** The member's own gate grid, [linspace vg_min vg_max points] — the
    grid a standalone {!Tcad.Extract.id_vg} call would sweep.  Raises
    [Invalid_argument] when [points < 2] or [vg_min >= vg_max]. *)

val plan : box list -> group list
(** Partition boxes into merged groups.  Groups come out ordered by
    ascending [vd] (ties by first member), members in input order.
    Every input [rid] appears in exactly one group. *)
