(* The serving loop.  Single-threaded event loop over Unix.select; the
   compute itself fans out over the shared Exec pool, one task per
   coalesced job, so the daemon parallelizes across queries while each
   TCAD run stays sequential (and therefore bit-reproducible). *)

module Json = Report.Json

type config = {
  listen : [ `Unix of string | `Tcp of string * int ];
  cache_dir : string option;
}

let idvg_memo : Tcad.Extract.sweep Exec.Memo.t = Exec.Memo.create ~name:"serve.idvg" ()

let requests_counter = Obs.Metrics.counter "serve.requests"
let errors_counter = Obs.Metrics.counter "serve.errors"
let coalesced_counter = Obs.Metrics.counter "serve.coalesced"

(* --- device resolution ------------------------------------------------ *)

let select_device ~node ~strategy =
  match Scaling.Roadmap.find node with
  | exception Not_found ->
    Error (Printf.sprintf "unknown node %d (known: 130, 90, 65, 45, 32)" node)
  | n -> (
    match strategy with
    | "super" ->
      let s = Scaling.Super_vth.select_node n in
      Ok (n, Scaling.Strategy.Super_vth, s.Scaling.Super_vth.phys, s.Scaling.Super_vth.pair)
    | "sub" ->
      let s = Scaling.Sub_vth.select_node n in
      Ok (n, Scaling.Strategy.Sub_vth, s.Scaling.Sub_vth.phys, s.Scaling.Sub_vth.pair)
    | other -> Error (Printf.sprintf "unknown strategy %S (super or sub)" other))

let build_structure ~node ~strategy ~nx ~ny =
  match select_device ~node ~strategy with
  | Error _ as e -> e
  | Ok (_, _, _, pair) ->
    let desc = Device.Compact.to_tcad_description pair.Circuits.Inverter.nfet in
    Ok (Tcad.Structure.build ?nx ?ny desc)

(* --- response payloads ------------------------------------------------ *)

let num f = Json.Num f
let arr_of_floats a = Json.Arr (Array.to_list (Array.map num a))

let evaluation_fields (e : Scaling.Strategy.evaluation) =
  [ ("node", num (float_of_int e.Scaling.Strategy.node.Scaling.Roadmap.nm));
    ("strategy", Json.Str (Scaling.Strategy.kind_name e.Scaling.Strategy.kind));
    ("ss", num e.Scaling.Strategy.ss);
    ("vth_sat", num e.Scaling.Strategy.vth_sat);
    ("ioff_nominal", num e.Scaling.Strategy.ioff_nominal);
    ("ion_sub", num e.Scaling.Strategy.ion_sub);
    ("on_off_sub", num e.Scaling.Strategy.on_off_sub);
    ("snm_sub", num e.Scaling.Strategy.snm_sub);
    ("delay_sub", num e.Scaling.Strategy.delay_sub);
    ("vmin", num e.Scaling.Strategy.vmin);
    ("energy_at_vmin", num e.Scaling.Strategy.energy_at_vmin) ]

let characteristics_fields (c : Tcad.Extract.characteristics) =
  [ ("ss", num c.Tcad.Extract.ss);
    ("vth_lin", num c.Tcad.Extract.vth_lin);
    ("vth_sat", num c.Tcad.Extract.vth_sat);
    ("dibl", num c.Tcad.Extract.dibl);
    ("ioff", num c.Tcad.Extract.ioff);
    ("ion_sub", num c.Tcad.Extract.ion_sub);
    ("on_off_ratio_sub", num c.Tcad.Extract.on_off_ratio_sub);
    ("leff", num c.Tcad.Extract.leff) ]

let metric_json = function
  | Obs.Metrics.Counter n -> num (float_of_int n)
  | Obs.Metrics.Gauge g -> num g
  | Obs.Metrics.Histogram h ->
    Json.Obj
      [ ("count", num (float_of_int h.Obs.Metrics.count));
        ("sum", num h.Obs.Metrics.sum);
        ("min", num h.Obs.Metrics.min);
        ("max", num h.Obs.Metrics.max) ]

let health_fields store =
  let metrics =
    List.map (fun (name, v) -> (name, metric_json v)) (Obs.Metrics.snapshot ())
  in
  let memo =
    List.map
      (fun (s : Exec.Memo.stats) ->
        Json.Obj
          [ ("name", Json.Str s.Exec.Memo.name);
            ("hits", num (float_of_int s.Exec.Memo.hits));
            ("misses", num (float_of_int s.Exec.Memo.misses));
            ("store_hits", num (float_of_int s.Exec.Memo.store_hits));
            ("size", num (float_of_int s.Exec.Memo.size)) ])
      (Exec.Memo.stats ())
  in
  let store_fields =
    match store with
    | None -> []
    | Some s ->
      [ ( "store",
          Json.Obj
            [ ("dir", Json.Str (Exec.Store.dir s));
              ("hits", num (float_of_int (Exec.Store.hits s)));
              ("misses", num (float_of_int (Exec.Store.misses s)));
              ("writes", num (float_of_int (Exec.Store.writes s)));
              ("pending", num (float_of_int (Exec.Store.pending s)));
              ("flushes", num (float_of_int (Exec.Store.flushes s)));
              ("entries", num (float_of_int (Exec.Store.entry_count s))) ] ) ]
  in
  [ ("metrics", Json.Obj metrics); ("memo", Json.Arr memo) ] @ store_fields

(* --- compute jobs ----------------------------------------------------- *)

(* Where an answer goes: connection id plus the connection-local request
   sequence number (responses are written back in [seq] order), and the
   request's echoed id. *)
type slot = { conn_id : int; seq : int; echo : Json.t }

type job =
  | J_char of {
      node : int;
      strategy : string;
      vdd : float;
      nx : int option;
      ny : int option;
      slots : slot list; (* identical requests in the batch share one solve *)
    }
  | J_sweep of {
      node : int;
      strategy : string;
      nx : int option;
      ny : int option;
      vd : float;
      grid : float array;
      members : (slot * int array) list;
    }

let sweep_key dev ~vd grid =
  Exec.Key.(
    fields "serve.idvg"
      [ ("desc", Tcad.Structure.description_key dev.Tcad.Structure.desc);
        ("nx", int dev.Tcad.Structure.mesh.Tcad.Mesh.nx);
        ("ny", int dev.Tcad.Structure.mesh.Tcad.Mesh.ny);
        ("vd", float vd);
        ( "vgs",
          String.concat "," (List.map float (Array.to_list grid)) ) ])

let job_slots = function
  | J_char { slots; _ } -> slots
  | J_sweep { members; _ } -> List.map fst members

let run_job_exn job : (slot * string) list =
  match job with
  | J_char { node; strategy; vdd; nx; ny; slots } ->
    let answer =
      match build_structure ~node ~strategy ~nx ~ny with
      | Error msg -> fun slot -> Protocol.error_response ~id:slot.echo msg
      | Ok dev ->
        let ch = Tcad.Extract.characterize_cached ~vdd dev in
        fun slot -> Protocol.ok_response ~id:slot.echo (characteristics_fields ch)
    in
    List.map (fun slot -> (slot, answer slot)) slots
  | J_sweep { node; strategy; nx; ny; vd; grid; members } ->
    let answer =
      match build_structure ~node ~strategy ~nx ~ny with
      | Error msg -> fun slot _ -> Protocol.error_response ~id:slot.echo msg
      | Ok dev ->
        let sweep =
          Exec.Memo.find_or_compute idvg_memo ~key:(sweep_key dev ~vd grid) (fun () ->
              Tcad.Extract.id_vg_at dev ~vd ~vgs:grid)
        in
        fun slot idx ->
          Protocol.ok_response ~id:slot.echo
            [ ("vd", num vd);
              ("vgs", arr_of_floats (Array.map (fun i -> sweep.Tcad.Extract.vgs.(i)) idx));
              ("ids", arr_of_floats (Array.map (fun i -> sweep.Tcad.Extract.ids.(i)) idx)) ]
    in
    List.map (fun (slot, idx) -> (slot, answer slot idx)) members

(* One catch-all around the WHOLE per-job body: any failure — structure
   build (mesher guards), solver non-convergence, slope-extraction
   window, guard trips — must become an error response on every slot
   the job owns.  [Exec.map] propagates exceptions like [List.map], so
   a job that leaks one kills the daemon for all its clients. *)
let run_job job : (slot * string) list =
  match run_job_exn job with
  | results -> results
  | exception e ->
    let msg = Printexc.to_string e in
    List.map (fun slot -> (slot, Protocol.error_response ~id:slot.echo msg)) (job_slots job)

(* Batch planning: identical characterizations collapse to one J_char;
   Id-Vg boxes coalesce per device via Coalesce.plan.  Degenerate boxes
   are rejected here, before they can reach the planner, and come back
   as ready-made error responses. *)
let plan_jobs deferred =
  let rejects = ref [] in
  let chars : (int * string * float * int option * int option, slot list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let char_order = ref [] in
  let sweeps : (int * string * int option * int option, (slot * Coalesce.box) list ref)
      Hashtbl.t =
    Hashtbl.create 8
  in
  let sweep_order = ref [] in
  List.iter
    (fun (slot, req) ->
      match req with
      | Protocol.Tcad { node; strategy; vdd; nx; ny } -> (
        let k = (node, strategy, vdd, nx, ny) in
        match Hashtbl.find_opt chars k with
        | Some l -> l := slot :: !l
        | None ->
          Hashtbl.add chars k (ref [ slot ]);
          char_order := k :: !char_order)
      | Protocol.Idvg { node; strategy; vd; vg_min; vg_max; points; nx; ny } -> (
        let k = (node, strategy, nx, ny) in
        let box = { Coalesce.rid = 0; vd; vg_min; vg_max; points } in
        match Coalesce.grid_of_box box with
        | exception Invalid_argument msg ->
          rejects := (slot, Protocol.error_response ~id:slot.echo msg) :: !rejects
        | _ -> (
          match Hashtbl.find_opt sweeps k with
          | Some l -> l := (slot, box) :: !l
          | None ->
            Hashtbl.add sweeps k (ref [ (slot, box) ]);
            sweep_order := k :: !sweep_order))
      | Protocol.Ping | Protocol.Health | Protocol.Shutdown | Protocol.Device _ ->
        (* inline ops never reach the planner *)
        ())
    deferred;
  let char_jobs =
    List.rev_map
      (fun ((node, strategy, vdd, nx, ny) as k) ->
        J_char { node; strategy; vdd; nx; ny; slots = List.rev !(Hashtbl.find chars k) })
      !char_order
  in
  let sweep_jobs =
    List.concat_map
      (fun ((node, strategy, nx, ny) as k) ->
        let entries = Array.of_list (List.rev !(Hashtbl.find sweeps k)) in
        let boxes =
          Array.to_list
            (Array.mapi (fun i (_, box) -> { box with Coalesce.rid = i }) entries)
        in
        List.map
          (fun (g : Coalesce.group) ->
            if List.length g.Coalesce.members > 1 then
              Obs.Metrics.incr ~by:(List.length g.Coalesce.members - 1) coalesced_counter;
            J_sweep
              {
                node;
                strategy;
                nx;
                ny;
                vd = g.Coalesce.vd;
                grid = g.Coalesce.grid;
                members =
                  List.map
                    (fun (rid, idx) -> (fst entries.(rid), idx))
                    g.Coalesce.members;
              })
          (Coalesce.plan boxes))
      (List.rev !sweep_order)
  in
  (List.rev !rejects, char_jobs @ sweep_jobs)

(* --- connection bookkeeping ------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  pending : Buffer.t; (* bytes read, not yet terminated by '\n' *)
  mutable next_seq : int;
  mutable alive : bool;
}

let read_chunk_size = 4096

(* A request line the parser will ever accept is tiny; a connection
   whose unterminated line outgrows this is hostile or broken, and the
   only safe answer is to drop it — buffering an unbounded line is a
   memory DoS. *)
let max_line_length = 1 lsl 20

(* Returns the complete lines newly available on [c]; leaves the final
   partial line buffered.  Marks the connection dead on EOF, on any
   read error (ECONNRESET, EIO, ETIMEDOUT, ... — to the daemon they are
   all just "this client is gone"; EINTR alone is a retry), and on an
   oversized line. *)
let read_lines c =
  let bytes = Bytes.create read_chunk_size in
  let n =
    match Unix.read c.fd bytes 0 read_chunk_size with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> -1
    | exception Unix.Unix_error (_, _, _) -> 0
  in
  if n < 0 then []
  else if n = 0 then begin
    c.alive <- false;
    []
  end
  else begin
    Buffer.add_subbytes c.pending bytes 0 n;
    let text = Buffer.contents c.pending in
    let lines = ref [] in
    let start = ref 0 in
    String.iteri
      (fun i ch ->
        if ch = '\n' then begin
          lines := String.sub text !start (i - !start) :: !lines;
          start := i + 1
        end)
      text;
    Buffer.clear c.pending;
    Buffer.add_substring c.pending text !start (String.length text - !start);
    if Buffer.length c.pending > max_line_length then c.alive <- false;
    List.rev !lines
  end

let write_all c s =
  let data = s ^ "\n" in
  let len = String.length data in
  let off = ref 0 in
  (* EINTR is a retry; any other write error (EPIPE, ECONNRESET, EIO,
     ...) means this client is gone — and that must never take the
     daemon with it. *)
  (try
     while !off < len do
       match Unix.write_substring c.fd data !off (len - !off) with
       | n -> off := !off + n
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error (_, _, _) -> c.alive <- false);
  ()

(* --- the loop --------------------------------------------------------- *)

(* A stale socket file from a crashed daemon is replaced; anything else
   at the path is refused.  Deleting blindly would turn a typo'd
   [--socket] into data loss (an unrelated regular file) or a
   denial-of-service (a live daemon's socket yanked out from under
   it). *)
let prepare_unix_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    Unix.close probe;
    if live then
      failwith (Printf.sprintf "subscale serve: a daemon is already listening on %s" path);
    Sys.remove path
  | _ ->
    failwith
      (Printf.sprintf "subscale serve: %s already exists and is not a socket; refusing to delete it"
         path)

let bind_listener = function
  | `Unix path ->
    prepare_unix_path path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    (fd, fun () -> if Sys.file_exists path then Sys.remove path)
  | `Tcp (host, port) ->
    let addr =
      if host = "" || host = "localhost" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    (fd, fun () -> ())

let run ?on_ready config =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ ->
    (* some platforms have no SIGPIPE; writes already handle EPIPE *)
    ());
  let listen_fd, cleanup = bind_listener config.listen in
  Unix.listen listen_fd 16;
  let store =
    Option.map (fun dir -> Exec.Store.open_store ~dir ()) config.cache_dir
  in
  (match store with
  | Some s ->
    Exec.Memo.attach_store Tcad.Extract.characterize_memo ~store:s
      ~codec:Tcad.Extract.characteristics_codec;
    Exec.Memo.attach_store idvg_memo ~store:s ~codec:Tcad.Extract.sweep_codec
  | None -> ());
  (match on_ready with Some f -> f (Unix.getsockname listen_fd) | None -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_conn_id = ref 0 in
  let running = ref true in
  while !running do
    let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    let readable =
      match Unix.select fds [] [] (-1.0) with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    (* 1. Accept and read: drain every complete line into one batch. *)
    let batch = ref [] in
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          match Unix.accept listen_fd with
          | cfd, _ ->
            incr next_conn_id;
            Hashtbl.replace conns cfd
              {
                fd = cfd;
                conn_id = !next_conn_id;
                pending = Buffer.create 256;
                next_seq = 0;
                alive = true;
              }
          | exception Unix.Unix_error (_, _, _) ->
            (* EINTR, ECONNABORTED, and fd exhaustion (EMFILE/ENFILE)
               are all transient accept failures: skip this round rather
               than kill the daemon for every connected client. *)
            ()
        end
        else
          match Hashtbl.find_opt conns fd with
          | None -> ()
          | Some c ->
            List.iter
              (fun line ->
                let seq = c.next_seq in
                c.next_seq <- seq + 1;
                batch := (c, seq, line) :: !batch)
              (read_lines c))
      readable;
    let batch = List.rev !batch in
    (* 2. Parse; answer inline ops; queue compute ops. *)
    let responses : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
    let deferred = ref [] in
    List.iter
      (fun (c, seq, line) ->
        Obs.Metrics.incr requests_counter;
        let key = (c.conn_id, seq) in
        match Protocol.parse_request line with
        | Error msg ->
          Obs.Metrics.incr errors_counter;
          Hashtbl.replace responses key (Protocol.error_response ~id:Json.Null msg)
        | Ok { id; req } -> (
          let slot = { conn_id = c.conn_id; seq; echo = id } in
          match req with
          | Protocol.Ping ->
            Hashtbl.replace responses key (Protocol.ok_response ~id [ ("pong", Json.Bool true) ])
          | Protocol.Health ->
            Hashtbl.replace responses key (Protocol.ok_response ~id (health_fields store))
          | Protocol.Shutdown ->
            running := false;
            Hashtbl.replace responses key
              (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ])
          | Protocol.Device { node; strategy } ->
            let resp =
              match select_device ~node ~strategy with
              | Error msg ->
                Obs.Metrics.incr errors_counter;
                Protocol.error_response ~id msg
              | Ok (n, kind, phys, pair) ->
                Protocol.ok_response ~id
                  (evaluation_fields (Scaling.Strategy.evaluate kind n phys pair))
            in
            Hashtbl.replace responses key resp
          | Protocol.Tcad _ | Protocol.Idvg _ -> deferred := (slot, req) :: !deferred))
      batch;
    (* 3. Fan the compute jobs out over the pool. *)
    let rejects, jobs = plan_jobs (List.rev !deferred) in
    List.iter
      (fun ((slot : slot), resp) ->
        Hashtbl.replace responses (slot.conn_id, slot.seq) resp)
      rejects;
    List.iter
      (fun results ->
        List.iter
          (fun ((slot : slot), resp) ->
            Hashtbl.replace responses (slot.conn_id, slot.seq) resp)
          results)
      (Exec.map run_job jobs);
    (* 4. Write responses back in per-connection request order. *)
    List.iter
      (fun (c, seq, _) ->
        if c.alive then
          match Hashtbl.find_opt responses (c.conn_id, seq) with
          | Some resp -> write_all c resp
          | None -> ())
      batch;
    (match store with Some s -> Exec.Store.flush s | None -> ());
    (* 5. Reap dead connections. *)
    let dead = Hashtbl.fold (fun fd c acc -> if c.alive then acc else fd :: acc) conns [] in
    List.iter
      (fun fd ->
        Hashtbl.remove conns fd;
        match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
      dead
  done;
  (match store with
  | Some s ->
    Exec.Memo.detach_store Tcad.Extract.characterize_memo;
    Exec.Memo.detach_store idvg_memo;
    Exec.Store.close s
  | None -> ());
  Hashtbl.iter
    (fun fd _ ->
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
    conns;
  Unix.close listen_fd;
  cleanup ()
