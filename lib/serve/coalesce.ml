(* Pure sweep-box planner.  No solver calls here: the server maps the
   groups onto Exec and Tcad.Extract; this module only decides which
   requests share a run and at which grid indices each answer lives. *)

type box = { rid : int; vd : float; vg_min : float; vg_max : float; points : int }

type group = { vd : float; grid : float array; members : (int * int array) list }

let grid_of_box b =
  if b.points < 2 then
    invalid_arg (Printf.sprintf "Coalesce.grid_of_box: points = %d, need >= 2" b.points);
  if not (Float.is_finite b.vg_min && Float.is_finite b.vg_max) then
    invalid_arg
      (Printf.sprintf "Coalesce.grid_of_box: vg_min = %g, vg_max = %g, need finite"
         b.vg_min b.vg_max);
  if b.vg_min >= b.vg_max then
    invalid_arg
      (Printf.sprintf "Coalesce.grid_of_box: vg_min = %g, vg_max = %g, need vg_min < vg_max"
         b.vg_min b.vg_max);
  Numerics.Vec.linspace b.vg_min b.vg_max b.points

(* Transitively merge boxes whose [vg] ranges overlap or touch.  Input
   boxes all share one [vd]. *)
let clusters boxes =
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare a.vg_min b.vg_min with
        | 0 -> Float.compare a.vg_max b.vg_max
        | c -> c)
      boxes
  in
  match sorted with
  | [] -> []
  | first :: rest ->
    let finish cur acc = List.rev cur :: acc in
    let rec go cur cur_max acc = function
      | [] -> finish cur acc
      | b :: tl ->
        if b.vg_min <= cur_max then go (b :: cur) (Float.max cur_max b.vg_max) acc tl
        else go [ b ] b.vg_max (finish cur acc) tl
    in
    List.rev (go [ first ] first.vg_max [] rest)

(* Sorted union of member grids, deduplicated by value.  Every member
   point appears in the union verbatim (same bits), so index lookup by
   binary search is exact. *)
let union_grid grids =
  let all = Array.concat grids in
  Array.sort Float.compare all;
  let out = ref [] in
  let count = ref 0 in
  Array.iter
    (fun v ->
      match !out with
      | prev :: _ when Float.compare prev v = 0 -> ()
      | _ ->
        out := v :: !out;
        incr count)
    all;
  let grid = Array.make !count 0.0 in
  List.iteri (fun i v -> grid.(!count - 1 - i) <- v) !out;
  grid

let index_in grid v =
  let lo = ref 0 and hi = ref (Array.length grid - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare grid.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let plan boxes =
  (* Group by bit-equal vd so a P-vs-N sign flip or a -0. never lands two
     different biases in one run. *)
  let by_vd : (int64, box list ref) Hashtbl.t = Hashtbl.create 8 in
  let vd_order = ref [] in
  List.iter
    (fun (b : box) ->
      let bits = Int64.bits_of_float b.vd in
      match Hashtbl.find_opt by_vd bits with
      | Some l -> l := b :: !l
      | None ->
        Hashtbl.add by_vd bits (ref [ b ]);
        vd_order := b.vd :: !vd_order)
    boxes;
  let vds = List.sort compare (List.rev !vd_order) in
  List.concat_map
    (fun vd ->
      let boxes = List.rev !(Hashtbl.find by_vd (Int64.bits_of_float vd)) in
      List.map
        (fun cluster ->
          let grids = List.map grid_of_box cluster in
          let grid = union_grid grids in
          let members =
            List.map2
              (fun b g -> (b.rid, Array.map (fun v -> index_in grid v) g))
              cluster grids
          in
          { vd; grid; members })
        (clusters boxes))
    vds
