(** The [subscale serve] daemon: an accept/dispatch loop speaking the
    line-delimited JSON {!Protocol} over a Unix-domain or loopback TCP
    socket, answering characterization queries from the {!Exec.Memo}
    tables — optionally backed by a persistent {!Exec.Store} tier — and
    fanning compute-bound queries out over the shared {!Exec} pool.

    Each [select] round drains every complete request line from every
    connection into one batch: overlapping Id–Vg boxes in the batch are
    {!Coalesce}d into shared warm-started runs, identical
    characterization requests collapse into one solve, and responses are
    written back in per-connection request order.  A [shutdown] request
    answers, flushes the store, and returns from {!run}. *)

type config = {
  listen : [ `Unix of string | `Tcp of string * int ];
      (** [`Unix path] or [`Tcp (host, port)]; port 0 binds an ephemeral
          port.  A stale socket file left at [path] by a crashed daemon
          is replaced; binding fails (with [Failure]) if the path holds
          anything other than a socket, or if a live daemon still
          answers on it. *)
  cache_dir : string option;
      (** When set, an {!Exec.Store} opened here backs the
          characterization and sweep memo tables: queries answered on one
          run of the daemon are served bit-identically from disk by the
          next. *)
}

val idvg_memo : Tcad.Extract.sweep Exec.Memo.t
(** The in-memory tier for coalesced Id–Vg sweeps, keyed by device
    description, mesh dims, drain bias and the exact gate grid
    (["serve.idvg"] in [Exec.Memo.stats]). *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Bind, listen and serve until a [shutdown] request arrives.
    [on_ready] fires once the socket is listening (with the bound
    address — the actual port when [`Tcp] bound port 0), before the
    first [accept]; tests use it to connect from another domain. *)
