(** The wire protocol of [subscale serve]: one JSON object per line
    (newline-delimited) in each direction, parsed and rendered with the
    dependency-free {!Report.Json} subset.

    Requests carry an ["op"] field selecting the query and an optional
    ["id"] (any JSON value) that is echoed verbatim in the response, so
    pipelined clients can match answers to questions.  Responses are
    [{"ok": true, ...}] on success and [{"ok": false, "error": "..."}]
    on failure; floats are rendered with 17 significant digits, so a
    response is a bit-exact image of the computed doubles. *)

type request =
  | Ping
  | Health
  | Shutdown
  | Device of { node : int; strategy : string }
      (** compact-model evaluation of one scaled device *)
  | Tcad of {
      node : int;
      strategy : string;
      vdd : float;
      nx : int option;
      ny : int option;
    }  (** full 2-D characterization (three Id–Vg planes) *)
  | Idvg of {
      node : int;
      strategy : string;
      vd : float;
      vg_min : float;
      vg_max : float;
      points : int;
      nx : int option;
      ny : int option;
    }  (** one Id–Vg sweep; overlapping boxes are coalesced server-side *)

type envelope = { id : Report.Json.t; req : request }
(** [id] is [Json.Null] when the request carried none. *)

val max_points : int
(** Upper bound on [Idvg.points], enforced by {!parse_request}: a sweep
    request sizes a server-side allocation, so an unbounded value is a
    denial-of-service vector, not a big query. *)

val min_mesh : int

val max_mesh : int
(** Bounds on the optional [nx]/[ny] mesh overrides, enforced by
    {!parse_request} ([{!min_mesh}, {!max_mesh}] inclusive): zero would
    degenerate the mesher's minimum spacing and huge values size a 2-D
    solve quadratically. *)

val parse_request : string -> (envelope, string) result
(** Parse one request line.  Errors name the offending field (or the
    byte offset, for malformed JSON); out-of-bounds resource parameters
    ([points], [nx], [ny]) are rejected here, before anything is
    allocated or planned. *)

val render_request : ?id:Report.Json.t -> request -> string
(** The canonical request line for [req] (no trailing newline) — the
    client-side inverse of {!parse_request}, used by tests and the CLI
    smoke client. *)

val ok_response : id:Report.Json.t -> (string * Report.Json.t) list -> string
(** [{"ok": true, "id": id, <fields>}] (the [id] field is omitted when
    [Null]); no trailing newline. *)

val error_response : id:Report.Json.t -> string -> string
(** [{"ok": false, "id": id, "error": msg}]; no trailing newline. *)
