(* Wire protocol: line-delimited JSON over the Report.Json subset. *)

module Json = Report.Json

type request =
  | Ping
  | Health
  | Shutdown
  | Device of { node : int; strategy : string }
  | Tcad of {
      node : int;
      strategy : string;
      vdd : float;
      nx : int option;
      ny : int option;
    }
  | Idvg of {
      node : int;
      strategy : string;
      vd : float;
      vg_min : float;
      vg_max : float;
      points : int;
      nx : int option;
      ny : int option;
    }

type envelope = { id : Json.t; req : request }

(* --- parsing ---------------------------------------------------------- *)

(* Resource bounds, enforced at parse time.  [points] sizes a linspace
   allocation and [nx]/[ny] size a mesh (and [nx = 0] would divide the
   mesher's minimum spacing by zero), so unbounded client values are a
   daemon-killer: a hostile request must come back as an error response
   before it can allocate anything. *)
let max_points = 4096
let min_mesh = 4
let max_mesh = 512

let bounded what ~lo ~hi v =
  if v < lo || v > hi then
    raise (Json.Bad (Printf.sprintf "%s = %d out of bounds [%d, %d]" what v lo hi));
  v

let capped what ~max v =
  if v > max then
    raise (Json.Bad (Printf.sprintf "%s = %d exceeds the maximum %d" what v max));
  v

let opt_int what j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v ->
    let label = what ^ "." ^ name in
    Some (bounded label ~lo:min_mesh ~hi:max_mesh (Json.as_int label v))

let req_int j name = Json.as_int name (Json.field name j)
let req_num j name = Json.as_number name (Json.field name j)
let req_str j name = Json.as_string name (Json.field name j)

let request_of_json j =
  match Json.as_string "op" (Json.field "op" j) with
  | "ping" -> Ping
  | "health" -> Health
  | "shutdown" -> Shutdown
  | "device" -> Device { node = req_int j "node"; strategy = req_str j "strategy" }
  | "tcad" ->
    Tcad
      {
        node = req_int j "node";
        strategy = req_str j "strategy";
        vdd = (match Json.member "vdd" j with
              | None | Some Json.Null -> 0.9
              | Some v -> Json.as_number "vdd" v);
        nx = opt_int "tcad" j "nx";
        ny = opt_int "tcad" j "ny";
      }
  | "idvg" ->
    Idvg
      {
        node = req_int j "node";
        strategy = req_str j "strategy";
        vd = req_num j "vd";
        vg_min = req_num j "vg_min";
        vg_max = req_num j "vg_max";
        (* The lower bound (>= 2) stays with [Coalesce.grid_of_box], which
           also vets the vg range; only the allocation cap lives here. *)
        points = capped "points" ~max:max_points (req_int j "points");
        nx = opt_int "idvg" j "nx";
        ny = opt_int "idvg" j "ny";
      }
  | other -> raise (Json.Bad (Printf.sprintf "unknown op %S" other))

let parse_request line =
  match
    let j = Json.parse_exn line in
    let id = match Json.member "id" j with Some v -> v | None -> Json.Null in
    { id; req = request_of_json j }
  with
  | env -> Ok env
  | exception Json.Bad msg -> Error msg

(* --- rendering -------------------------------------------------------- *)

let opt_int_field name = function
  | None -> []
  | Some v -> [ (name, Json.Num (float_of_int v)) ]

let render_request ?(id = Json.Null) req =
  let fields =
    match req with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Health -> [ ("op", Json.Str "health") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
    | Device { node; strategy } ->
      [ ("op", Json.Str "device");
        ("node", Json.Num (float_of_int node));
        ("strategy", Json.Str strategy) ]
    | Tcad { node; strategy; vdd; nx; ny } ->
      [ ("op", Json.Str "tcad");
        ("node", Json.Num (float_of_int node));
        ("strategy", Json.Str strategy);
        ("vdd", Json.Num vdd) ]
      @ opt_int_field "nx" nx @ opt_int_field "ny" ny
    | Idvg { node; strategy; vd; vg_min; vg_max; points; nx; ny } ->
      [ ("op", Json.Str "idvg");
        ("node", Json.Num (float_of_int node));
        ("strategy", Json.Str strategy);
        ("vd", Json.Num vd);
        ("vg_min", Json.Num vg_min);
        ("vg_max", Json.Num vg_max);
        ("points", Json.Num (float_of_int points)) ]
      @ opt_int_field "nx" nx @ opt_int_field "ny" ny
  in
  let fields = match id with Json.Null -> fields | id -> ("id", id) :: fields in
  Json.render (Json.Obj fields)

let id_field = function Json.Null -> [] | id -> [ ("id", id) ]

let ok_response ~id fields =
  Json.render (Json.Obj ((("ok", Json.Bool true) :: id_field id) @ fields))

let error_response ~id msg =
  Json.render
    (Json.Obj ((("ok", Json.Bool false) :: id_field id) @ [ ("error", Json.Str msg) ]))
