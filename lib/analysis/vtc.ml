type curve = { vin : Numerics.Vec.t; vout : Numerics.Vec.t }

let vt = Physics.Constants.vt_room

(* I_o of Eq. 3: device current at V_gs = V_th with V_ds >> vT, per device
   width, times the width. *)
let io_of dev width =
  width *. Device.Iv_model.id dev ~vgs:(Compact_vth.vth_sub dev) ~vds:(10.0 *. vt)

(* Eq. 3(b): vin(vout).  We sweep vout densely, compute vin, and resample
   onto a uniform vin grid. *)
let analytic ?(points = 101) (pair : Circuits.Inverter.pair) ~sizing ~vdd =
  let n = pair.Circuits.Inverter.nfet and p = pair.Circuits.Inverter.pfet in
  let io_n = io_of n sizing.Circuits.Inverter.wn in
  let io_p = io_of p sizing.Circuits.Inverter.wp in
  let m_n = n.Device.Compact.m and m_p = p.Device.Compact.m in
  let vth_n = Compact_vth.vth_sub n and vth_p = Compact_vth.vth_sub p in
  let eps = 1e-4 *. vdd in
  let vout_samples = Numerics.Vec.linspace eps (vdd -. eps) (4 * points) in
  let vin_of_vout vout =
    let num =
      (m_n *. (vdd -. vth_p)) +. (m_p *. vth_n)
      +. (m_n *. m_p *. vt
          *. log (io_p /. io_n *. (1.0 -. exp ((vout -. vdd) /. vt))
                  /. (1.0 -. exp (-.vout /. vt))))
    in
    num /. (m_n +. m_p)
  in
  let vin_raw = Array.map vin_of_vout vout_samples in
  (* vin decreases as vout increases; reverse to make vin increasing. *)
  let k = Array.length vin_raw in
  let vin_sorted = Array.init k (fun i -> vin_raw.(k - 1 - i)) in
  let vout_sorted = Array.init k (fun i -> vout_samples.(k - 1 - i)) in
  (* Clamp to the rail interval and resample onto a uniform vin grid. *)
  let vin_grid = Numerics.Vec.linspace 0.0 vdd points in
  let vout_grid =
    Array.map
      (fun v ->
        Float.max 0.0 (Float.min vdd (Numerics.Interp.linear vin_sorted vout_sorted v)))
      vin_grid
  in
  { vin = vin_grid; vout = vout_grid }

let spice ?(points = 101) pair ~sizing ~vdd =
  let fx = Circuits.Inverter.dc ~sizing pair ~vdd in
  let sys = Spice.Mna.build fx.Circuits.Inverter.circuit in
  let vin = Numerics.Vec.linspace 0.0 vdd points in
  let sweep = Spice.Dcsweep.run sys ~source:fx.Circuits.Inverter.vin_name ~values:vin in
  let vout = Spice.Dcsweep.probe sys sweep ~node:fx.Circuits.Inverter.out_node in
  { vin; vout }

let gain { vin; vout } =
  let n = Array.length vin in
  Array.init n (fun i ->
      if i = 0 then (vout.(1) -. vout.(0)) /. (vin.(1) -. vin.(0))
      else if i = n - 1 then (vout.(n - 1) -. vout.(n - 2)) /. (vin.(n - 1) -. vin.(n - 2))
      else (vout.(i + 1) -. vout.(i - 1)) /. (vin.(i + 1) -. vin.(i - 1)))

let switching_threshold { vin; vout } =
  let diff = Array.mapi (fun i v -> v -. vin.(i)) vout in
  match Numerics.Interp.crossings vin diff 0.0 with
  | v :: _ -> v
  | [] -> invalid_arg "Vtc.switching_threshold: curve does not cross vout = vin"
