type assessment = {
  vdd : float;
  snm_mean : float;
  snm_sigma : float;
  p_cell_fail : float;
  yield_1kb : float;
  yield_1mb : float;
}

let array_yield ~p_cell_fail ~bits =
  if bits < 0 then invalid_arg "Yield.array_yield: negative bits";
  (* log-space to survive large arrays *)
  exp (float_of_int bits *. log1p (-.Float.min 1.0 p_cell_fail))

(* SRAM cells use near-minimum-width devices; mismatch scales as
   1/sqrt(W L), so the default assessment sizing is a 0.15 um cell, not the
   1 um logic default. *)
let default_sizing = { Circuits.Inverter.wn = 0.15e-6; wp = 0.2e-6 }

let assess ?seed ?(trials = 400) ?(sizing = default_sizing) pair ~vdd =
  let d = Variability.snm_distribution ?seed ~trials ~sizing pair ~vdd in
  let snm_mean = d.Variability.mean and snm_sigma = d.Variability.sigma in
  let p_cell_fail =
    if snm_sigma <= 0.0 then if snm_mean > 0.0 then 0.0 else 1.0
    else Numerics.Stats.normal_cdf ~mean:snm_mean ~sigma:snm_sigma 0.0
  in
  {
    vdd;
    snm_mean;
    snm_sigma;
    p_cell_fail;
    yield_1kb = array_yield ~p_cell_fail ~bits:1024;
    yield_1mb = array_yield ~p_cell_fail ~bits:(1024 * 1024);
  }

let min_vdd_for_yield ?seed ?trials ?(sizing = default_sizing) ?(lo = 0.10) ?(hi = 0.60)
    pair ~bits ~target =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Yield.min_vdd_for_yield: target must be in (0, 1)";
  let yield_at vdd =
    let a = assess ?seed ?trials ~sizing pair ~vdd in
    array_yield ~p_cell_fail:a.p_cell_fail ~bits
  in
  if yield_at hi < target then
    failwith
      (Printf.sprintf "Yield.min_vdd_for_yield: %.0f mV cannot reach %.3f yield"
         (1000.0 *. hi) target);
  if yield_at lo >= target then lo
  else begin
    let f vdd = yield_at vdd -. target in
    Numerics.Root.bisect ~tol:1e-3 f lo hi
  end
