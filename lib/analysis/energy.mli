(** Energy per cycle and the minimum-energy supply V_min — the paper's
    Sec. 2.3.4 and the workload of Figs. 6 and 12: a chain of [stages]
    inverters with activity factor alpha, clocked at its own propagation
    time.

    Analytic route (Eq. 7):
      E_dyn  = alpha N C_L V_dd^2
      E_leak = N I_off,avg V_dd T_cycle,   T_cycle = N t_p
    Measured route: transient supply-energy integration over one input
    cycle of the real 30-stage chain. *)

val default_stages : int
(** The paper's Fig. 6 chain length (30). *)

val default_alpha : float
(** The paper's activity factor (0.1). *)

val vmin_bracket_lo : float
val vmin_bracket_hi : float
(** Default search bracket of {!vmin} (80 mV .. 0.6 V); the validity
    auditor checks the lower edge stays above the Eq. 1 drain-saturation
    floor 3kT/q at the audited temperature. *)

type breakdown = {
  vdd : float;
  e_dyn : float;  (** [J] per cycle *)
  e_leak : float;  (** [J] per cycle *)
  e_total : float;
  t_cycle : float;  (** [s] *)
}

val analytic :
  ?sizing:Circuits.Inverter.sizing ->
  ?stages:int ->
  ?alpha:float ->
  Circuits.Inverter.pair ->
  vdd:float ->
  breakdown
(** Defaults: 30 stages, alpha = 0.1 (the paper's Fig. 6 settings). *)

val measured :
  ?sizing:Circuits.Inverter.sizing ->
  ?stages:int ->
  ?alpha:float ->
  ?steps:int ->
  Circuits.Inverter.pair ->
  vdd:float ->
  float
(** Transient energy per cycle [J]: supply energy integrated over one full
    input period of the chain, scaled by alpha against the chain's single
    switching event (alpha = 0.1 means one transition per 10 cycles; the
    leakage of the quiet cycles is added analytically from the measured
    static current). *)

type vmin_result = { vmin : float; e_min : float; curve : (float * breakdown) list }

val vmin :
  ?sizing:Circuits.Inverter.sizing ->
  ?stages:int ->
  ?alpha:float ->
  ?lo:float ->
  ?hi:float ->
  Circuits.Inverter.pair ->
  vmin_result
(** Locate the energy-optimal supply by golden-section refinement of the
    analytic model over [[lo, hi]] (defaults 80 mV .. 0.6 V), returning the
    sampled curve for plotting. *)

val kvmin : Circuits.Inverter.pair -> vmin_result -> float
(** K_Vmin = V_min / S_S, the proportionality the paper takes from
    refs [17][18]. *)
