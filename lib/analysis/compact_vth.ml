let vth_sub dev = Device.Compact.vth dev ~vds:(10.0 *. Physics.Constants.vt_room)
