let energy_factor pair ~sizing =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let ss = pair.Circuits.Inverter.nfet.Device.Compact.ss in
  cl *. ss *. ss

let delay_factor ?(ioff_vdd = 0.25) pair ~sizing =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let ss = pair.Circuits.Inverter.nfet.Device.Compact.ss in
  let i_n =
    sizing.Circuits.Inverter.wn *. Device.Iv_model.ioff pair.Circuits.Inverter.nfet ~vdd:ioff_vdd
  in
  let i_p =
    sizing.Circuits.Inverter.wp *. Device.Iv_model.ioff pair.Circuits.Inverter.pfet ~vdd:ioff_vdd
  in
  cl *. ss /. (0.5 *. (i_n +. i_p))

let delay_factor_const_ioff pair ~sizing =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let ss = pair.Circuits.Inverter.nfet.Device.Compact.ss in
  cl *. ss

let normalize = function
  | [] -> []
  | first :: _ as values ->
    if Float.equal first 0.0 then invalid_arg "Metrics.normalize: zero first element";
    List.map (fun v -> v /. first) values
