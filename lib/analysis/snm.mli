(** Static noise margins.

    For the inverter figures (Figs. 4, 10) the paper defines SNM "at the
    points where the gain in the voltage transfer characteristic equals
    negative one": NM_L = V_IL - V_OL and NM_H = V_OH - V_IH, with SNM their
    minimum.  For SRAM butterfly plots the standard maximum-embedded-square
    measure is provided. *)

type margins = {
  vil : float;  (** input low: first gain = -1 point *)
  vih : float;  (** input high: second gain = -1 point *)
  vol : float;  (** output low: V_out at V_in = V_IH *)
  voh : float;  (** output high: V_out at V_in = V_IL *)
  nml : float;
  nmh : float;
  snm : float;
}

val of_curve : Vtc.curve -> margins
(** Raises [Failure] if the curve does not have two gain = -1 points (i.e.
    the inverter has lost regenerative gain — itself a meaningful failure
    the tests probe at very low V_dd). *)

val inverter :
  ?engine:[ `Analytic | `Spice ] ->
  Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> vdd:float -> margins
(** SNM of a single inverter (default engine [`Analytic], matching the
    paper's Eq. 3 treatment). *)

val butterfly_snm : vin:Numerics.Vec.t -> v1:Numerics.Vec.t -> v2:Numerics.Vec.t -> float
(** Maximum-square SNM of a butterfly plot formed by curve 1 (vin -> v1) and
    the mirror of curve 2 (v2 -> vin): the side of the largest square that
    fits in the smaller lobe. *)
