(** Logical-effort driver sizing.

    With delay linear in fan-out, tp(h) = tau (p + h), the minimum-delay
    buffer chain driving a big load uses N ~ ln F stages of equal effort
    F^{1/N} — Sutherland/Sproull's classic result, which holds in the
    sub-V_th regime too because Eq. 5's delay stays linear in C_L (only tau
    blows up).  Driving large fan-outs (clock spines, bitlines) at V_min is
    a standard sub-V_th design task. *)

val tau : ?sizing:Circuits.Inverter.sizing -> Circuits.Inverter.pair -> vdd:float -> float
(** The technology's unit delay [s]: the Eq. 5 slope per unit fan-out,
    0.69 C_in V_dd / I_on,avg. *)

val parasitic_delay : Circuits.Inverter.pair -> float
(** p: the self-loading term in fan-out units (load_factor - 1 under this
    library's load model). *)

type plan = {
  stages : int;
  stage_effort : float;  (** F^{1/N} *)
  scales : float array;  (** per-stage sizing multipliers, 1 first *)
  estimated_delay : float;  (** tau (N (f + p)) [s] *)
}

val plan_driver :
  ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair ->
  vdd:float ->
  c_load:float ->
  plan
(** Integer-optimal stage count (the best of floor/ceil of the continuous
    optimum) for driving [c_load] farads from a unit-sized input.  Raises
    [Invalid_argument] if [c_load] is not positive. *)

val measured_delay :
  ?sizing:Circuits.Inverter.sizing ->
  ?steps:int ->
  Circuits.Inverter.pair ->
  vdd:float ->
  c_load:float ->
  scales:float array ->
  float
(** Transient 50 % delay through a tapered chain into the load — the
    validation path for a plan (input edge shaped like a unit-inverter
    output). *)
