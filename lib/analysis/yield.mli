(** SRAM yield under threshold mismatch — the quantitative version of the
    paper's Sec. 2.3.2 worry (and of ref [16]'s sub-200 mV SRAM): a cell
    fails when mismatch erases its static noise margin, so array yield sets
    the minimum operating voltage.

    Failure probability comes from a Gaussian fit of the Monte Carlo SNM
    distribution (the standard importance approximation); array yield is
    (1 - p_cell)^bits. *)

type assessment = {
  vdd : float;
  snm_mean : float;
  snm_sigma : float;
  p_cell_fail : float;
  yield_1kb : float;
  yield_1mb : float;
}

val default_sizing : Circuits.Inverter.sizing
(** Near-minimum-width cell devices (0.15 um N / 0.2 um P) — mismatch scales
    as 1/sqrt(W L), so memory cells see several times the logic sigma. *)

val assess :
  ?seed:int -> ?trials:int -> ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair -> vdd:float -> assessment

val array_yield : p_cell_fail:float -> bits:int -> float

val min_vdd_for_yield :
  ?seed:int -> ?trials:int -> ?sizing:Circuits.Inverter.sizing ->
  ?lo:float -> ?hi:float ->
  Circuits.Inverter.pair -> bits:int -> target:float -> float
(** Smallest supply (within [[lo, hi]], defaults 0.10 .. 0.60 V) at which an
    array of [bits] cells yields at least [target] (e.g. 0.9), found by
    bisection on the Gaussian-fit yield (monotone in V_dd).  Raises
    [Failure] if even [hi] cannot reach the target. *)
