let tau ?(sizing = Circuits.Inverter.balanced_sizing ()) pair ~vdd =
  let cin = Circuits.Inverter.gate_capacitance pair sizing in
  let i_n = sizing.Circuits.Inverter.wn *. Device.Iv_model.ion pair.Circuits.Inverter.nfet ~vdd in
  let i_p = sizing.Circuits.Inverter.wp *. Device.Iv_model.ion pair.Circuits.Inverter.pfet ~vdd in
  Delay.k_d *. cin *. vdd /. (0.5 *. (i_n +. i_p))

let parasitic_delay (pair : Circuits.Inverter.pair) =
  pair.Circuits.Inverter.nfet.Device.Compact.cal.Device.Params.load_factor -. 1.0

type plan = {
  stages : int;
  stage_effort : float;
  scales : float array;
  estimated_delay : float;
}

let plan_for ?(sizing = Circuits.Inverter.balanced_sizing ()) pair ~vdd ~c_load ~stages =
  let cin = Circuits.Inverter.gate_capacitance pair sizing in
  let f_total = c_load /. cin in
  let n = float_of_int stages in
  let stage_effort = f_total ** (1.0 /. n) in
  let scales = Array.init stages (fun i -> stage_effort ** float_of_int i) in
  let p = parasitic_delay pair in
  {
    stages;
    stage_effort;
    scales;
    estimated_delay = tau ~sizing pair ~vdd *. n *. (stage_effort +. p);
  }

let plan_driver ?(sizing = Circuits.Inverter.balanced_sizing ()) pair ~vdd ~c_load =
  if c_load <= 0.0 then invalid_arg "Logical_effort.plan_driver: load must be positive";
  let cin = Circuits.Inverter.gate_capacitance pair sizing in
  let f_total = Float.max 1.0 (c_load /. cin) in
  (* Continuous optimum: N = ln F / ln rho* with rho* solving
     rho (ln rho - 1) = p; rho* ~ 3.6-4 for p ~ 0.6-1. *)
  let n_star = Float.max 1.0 (log f_total /. log 4.0) in
  let candidates =
    List.sort_uniq compare
      [ Int.max 1 (int_of_float (floor n_star)); Int.max 1 (int_of_float (ceil n_star)) ]
  in
  List.fold_left
    (fun best n ->
      let p = plan_for ~sizing pair ~vdd ~c_load ~stages:n in
      if p.estimated_delay < best.estimated_delay then p else best)
    (plan_for ~sizing pair ~vdd ~c_load ~stages:(List.hd candidates))
    (List.tl candidates)

let measured_delay ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(steps = 900) pair ~vdd
    ~c_load ~scales =
  let t_unit = tau ~sizing pair ~vdd in
  let f_est =
    c_load /. Circuits.Inverter.gate_capacitance pair sizing /. Float.max 1.0
      (float_of_int (Array.length scales))
  in
  let window =
    20.0 *. t_unit *. float_of_int (Array.length scales) *. Float.max 1.0 f_est
  in
  let edge = 2.0 *. t_unit in
  let t0 = 0.05 *. window in
  let input = Spice.Netlist.Pwl [ (0.0, 0.0); (t0, 0.0); (t0 +. edge, vdd) ] in
  let fx =
    Circuits.Inverter.tapered_chain_fixture ~sizing ~scales pair ~vdd ~input
      ~final_load:c_load
  in
  let sys = Spice.Mna.build fx.Circuits.Inverter.circuit in
  let result = Spice.Transient.run sys ~t_stop:window ~steps in
  let times = result.Spice.Transient.times in
  let out =
    Spice.Transient.voltage_of result
      fx.Circuits.Inverter.stage_nodes.(Array.length fx.Circuits.Inverter.stage_nodes - 1)
  in
  let t_in = t0 +. (0.5 *. edge) in
  match
    Spice.Waveform.first_crossing ~after:(0.5 *. t0) ~times ~values:out ~level:(0.5 *. vdd)
      Spice.Waveform.Either
  with
  | Some t_out -> t_out -. t_in
  | None -> failwith "Logical_effort.measured_delay: load never crossed mid-rail"
