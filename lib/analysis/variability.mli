(** Threshold-voltage mismatch and its circuit-level consequences.

    The paper's introduction motivates the study with the observation that
    "timing variability grows dramatically as V_dd reduces, forcing the
    adoption of pessimistic design practices and large timing margins."
    This module quantifies that: random dopant fluctuation (RDF) gives each
    transistor a threshold offset with

      sigma_Vth = k_rdf (q/C_ox') sqrt(N_eff W_dep / (3 W L_eff)),

    (Stolk's RDF expression; [k_rdf] absorbs sub-band and profile details)
    and in weak inversion a threshold shift multiplies the drive current by
    e^{-dVth/(m vT)} — so delay spreads explode as V_dd falls into the
    subthreshold regime while staying negligible at nominal V_dd. *)

val k_rdf : float
(** Calibration constant of the sigma_Vth expression (default 1.8, landing
    a 1 um / 90 nm-class device near the published ~1.5-2 mV um A_VT
    range). *)

val sigma_vth : ?k:float -> Device.Compact.t -> width:float -> float
(** RDF threshold sigma [V] for one device of the given width [m]. *)

type distribution = {
  samples : Numerics.Vec.t;  (** sorted *)
  mean : float;
  sigma : float;
  p95 : float;  (** 95th percentile *)
  ratio_95_to_mean : float;  (** the "pessimistic margin" a designer pays *)
}

val summarize : Numerics.Vec.t -> distribution

val chain_delay_distribution :
  ?seed:int ->
  ?trials:int ->
  ?stages:int ->
  ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair ->
  vdd:float ->
  distribution
(** Monte Carlo over per-stage device mismatch (default 400 trials, 30
    stages): each stage's N and P devices get independent RDF threshold
    offsets, the stage delays follow Eq. 5 with the shifted devices, and the
    chain delay is their sum.  Reproducible for a fixed [seed] (default 42). *)

val snm_distribution :
  ?seed:int ->
  ?trials:int ->
  ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair ->
  vdd:float ->
  distribution
(** Monte Carlo inverter SNM under mismatch: each trial shifts the N and P
    thresholds independently and recomputes the analytic Eq. 3 noise
    margins (a failed margin counts as zero). *)

val delay_spread_vs_vdd :
  ?seed:int ->
  ?trials:int ->
  ?stages:int ->
  Circuits.Inverter.pair ->
  vdds:float list ->
  (float * float) list
(** [(vdd, sigma/mean of chain delay)] — the figure-of-merit trace showing
    variability growing as the supply drops (paper Sec. 1). *)
