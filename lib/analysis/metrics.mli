(** The paper's scaling metric factors (Sec. 2.3.3–2.3.4, Table 3):

    - energy factor:  C_L S_S^2        (Eq. 8 — both E_dyn and E_leak)
    - delay factor:   C_L S_S / I_off  (Eq. 6)
    - delay factor at constant I_off:  C_L S_S

    These are the objective functions of the sub-V_th scaling strategy. *)

val energy_factor :
  Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> float
(** C_L S_S^2 [F V^2/dec^2]. *)

val delay_factor :
  ?ioff_vdd:float -> Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> float
(** C_L S_S / I_off, with I_off the N/P average at supply [ioff_vdd]
    (default 250 mV, the paper's sub-V_th operating point). *)

val delay_factor_const_ioff :
  Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> float
(** C_L S_S — Table 3's delay column, valid when I_off is held constant. *)

val normalize : float list -> float list
(** Scale a series so its first element is 1.0 (Table 3's a.u. columns). *)
