(** SRAM bitline integrity in the sub-V_th regime.

    Sec. 2.3.2: "a small I_on/I_off in sub-V_th circuits already places
    tight limits on the maximum number of bits/line" (ref [16]).  During a
    read, one accessed cell discharges the bitline with I_on while the
    other N-1 cells on the line leak I_off each, possibly in the opposing
    direction; sensing needs the read current to beat the aggregate leak by
    a margin. *)

val max_bits_per_line :
  ?margin:float -> Device.Compact.t -> vdd:float -> int
(** Largest N with I_on >= margin x (N - 1) I_off (default margin 4, a
    conservative sense-amp requirement), both currents at [vdd]. *)

type swing = {
  bits : int;
  read_current : float;  (** accessed cell [A/m width] *)
  leak_current : float;  (** aggregate opposing leakage [A/m width] *)
  effective_current : float;  (** what actually discharges the line *)
  swing_time : float;  (** time to develop a 50 mV swing on the line [s] *)
}

val read_swing :
  ?bitline_cap_per_bit:float -> ?sense_margin:float ->
  Device.Compact.t -> vdd:float -> bits:int -> swing
(** Bitline discharge budget for an N-bit line: capacitance
    N x [bitline_cap_per_bit] (default 0.08 fF/um of device width per bit —
    wire plus drain junction), target differential [sense_margin]
    (default 50 mV).  Raises [Invalid_argument] if the leakage exceeds the
    read current (the line never develops the swing). *)
