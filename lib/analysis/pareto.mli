(** Energy–delay trade-off curves.

    Sweeping V_dd traces each technology's energy/delay frontier; the
    minimum-energy point (V_min) anchors one end and nominal operation the
    other.  The classic comparisons — minimum energy-delay product, energy
    at iso-delay, delay at iso-energy — all read off this curve (refs
    [17][18]'s framing of the sub-V_th design space). *)

type point = {
  vdd : float;
  delay : float;  (** FO1 chain-stage delay (Eq. 5) [s] *)
  energy : float;  (** chain energy per cycle (Eq. 7) [J] *)
}

val curve :
  ?sizing:Circuits.Inverter.sizing ->
  ?stages:int ->
  ?alpha:float ->
  ?points:int ->
  Circuits.Inverter.pair ->
  lo:float ->
  hi:float ->
  point list
(** Sampled V_dd sweep (default 30 points). *)

val pareto_front : point list -> point list
(** The non-dominated subset (no other point is faster *and* cheaper),
    sorted by delay. *)

val min_edp : point list -> point
(** The energy-delay-product optimum.  Raises [Invalid_argument] on an
    empty curve. *)

val energy_at_delay : point list -> delay:float -> float option
(** Cheapest energy achieving at most the given delay, if the curve reaches
    it. *)
