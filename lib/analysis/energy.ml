(* The paper's Fig. 6 workload settings and V_min search bracket; exposed
   so the validity auditor propagates intervals through the *same* model
   the experiments run (no drift between audited and executed constants). *)
let default_stages = 30
let default_alpha = 0.1
let vmin_bracket_lo = 0.08
let vmin_bracket_hi = 0.6

type breakdown = {
  vdd : float;
  e_dyn : float;
  e_leak : float;
  e_total : float;
  t_cycle : float;
}

let static_leak_current pair sizing ~vdd =
  (* In a static inverter exactly one device leaks per state; averaged over
     data, the mean leak is the N/P average. *)
  let i_n =
    sizing.Circuits.Inverter.wn *. Device.Iv_model.ioff pair.Circuits.Inverter.nfet ~vdd
  in
  let i_p =
    sizing.Circuits.Inverter.wp *. Device.Iv_model.ioff pair.Circuits.Inverter.pfet ~vdd
  in
  0.5 *. (i_n +. i_p)

let analytic ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(stages = default_stages)
    ?(alpha = default_alpha) pair ~vdd =
  if vdd <= 0.0 then invalid_arg "Energy.analytic: vdd must be positive";
  let n = float_of_int stages in
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let tp = Delay.eq5 pair ~sizing ~vdd in
  let t_cycle = n *. tp in
  let e_dyn = alpha *. n *. cl *. vdd *. vdd in
  let i_leak = n *. static_leak_current pair sizing ~vdd in
  let e_leak = i_leak *. vdd *. t_cycle in
  { vdd; e_dyn; e_leak; e_total = e_dyn +. e_leak; t_cycle }

let measured ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(stages = default_stages)
    ?(alpha = default_alpha) ?(steps = 900) pair ~vdd =
  let chain = Circuits.Chain.build ~sizing ~stages pair ~vdd in
  let sys = Spice.Mna.build chain.Circuits.Chain.fixture.Circuits.Inverter.circuit in
  let period = chain.Circuits.Chain.period in
  let result = Spice.Transient.run sys ~t_stop:period ~steps in
  let e_period =
    Spice.Transient.energy_from_source result ~name:"VDD" ~vdd
  in
  (* One period holds one rising and one falling chain traversal: one full
     switching event of every node.  At activity alpha, a fraction alpha of
     cycles switch; the rest only leak.  Static leak power is measured from
     the settled tail of the transient. *)
  let times = result.Spice.Transient.times in
  let i_vdd =
    match List.assoc_opt "VDD" result.Spice.Transient.source_currents with
    | Some c -> c
    | None -> failwith "Energy.measured: no VDD source"
  in
  let quiet_start = 0.9 *. period in
  let i_static =
    -.Spice.Waveform.slice_average ~times ~values:i_vdd ~t0:quiet_start ~t1:period
  in
  let p_static = vdd *. i_static in
  let e_switch = e_period -. (p_static *. period) in
  (* Cycle time: the chain clocked at its own propagation delay. *)
  let n = float_of_int stages in
  let t_cycle = n *. Delay.eq5 pair ~sizing ~vdd in
  (alpha *. e_switch) +. (p_static *. t_cycle)

type vmin_result = { vmin : float; e_min : float; curve : (float * breakdown) list }

let vmin ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(stages = default_stages)
    ?(alpha = default_alpha) ?(lo = vmin_bracket_lo) ?(hi = vmin_bracket_hi) pair =
  let energy vdd = (analytic ~sizing ~stages ~alpha pair ~vdd).e_total in
  let vmin, e_min = Numerics.Minimize.grid_then_golden ~samples:40 ~tol:1e-7 energy lo hi in
  let samples = Numerics.Vec.linspace lo hi 40 in
  let curve =
    Array.to_list (Array.map (fun v -> (v, analytic ~sizing ~stages ~alpha pair ~vdd:v)) samples)
  in
  { vmin; e_min; curve }

let kvmin pair result = result.vmin /. pair.Circuits.Inverter.nfet.Device.Compact.ss
