(** Gate delay — the paper's Sec. 2.3.3.

    Three routes of increasing fidelity:
    - Eq. 5: t_p = k_d C_L V_dd / I_on with I_on from the compact model;
    - Eq. 6: the scaling *factor* C_L K_Vmin S_S / (I_off 10^{K_Vmin ...}),
      whose proportional form C_L S_S / I_off predicts delay trends at
      V_dd = V_min without simulating anything;
    - [measured]: the 50 % propagation delay of an interior stage of an
      FO1-loaded inverter chain from the transient engine. *)

val k_d : float
(** The Eq. 4 fitting constant (0.69, the RC step-response value). *)

val eq5 :
  Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> vdd:float -> float
(** Analytic FO1 delay [s], averaging the N and P drive currents. *)

val eq6_factor : Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> float
(** C_L S_S / I_off [arbitrary units but dimensionally s], the paper's
    delay-at-V_min scaling factor; I_off is the N/P average. *)

type measured = {
  tp : float;  (** average of rising and falling propagation delays [s] *)
  tp_rise : float;
  tp_fall : float;
}

val measured :
  ?sizing:Circuits.Inverter.sizing ->
  ?stages:int ->
  ?steps:int ->
  Circuits.Inverter.pair ->
  vdd:float ->
  measured
(** Transient measurement on stage 3 of a [stages]-stage (default 4) chain,
    so the input edge has a realistic slope.  Raises [Failure] if the output
    fails to switch within the simulated window. *)
