type point = { vdd : float; delay : float; energy : float }

let curve ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(stages = 30) ?(alpha = 0.1)
    ?(points = 30) pair ~lo ~hi =
  if lo <= 0.0 || hi <= lo then invalid_arg "Pareto.curve: bad supply range";
  Array.to_list
    (Array.map
       (fun vdd ->
         let b = Energy.analytic ~sizing ~stages ~alpha pair ~vdd in
         {
           vdd;
           delay = Delay.eq5 pair ~sizing ~vdd;
           energy = b.Energy.e_total;
         })
       (Numerics.Vec.linspace lo hi points))

let pareto_front points =
  let sorted = List.sort (fun a b -> Float.compare a.delay b.delay) points in
  let rec keep best_energy = function
    | [] -> []
    | p :: rest ->
      if p.energy < best_energy then p :: keep p.energy rest else keep best_energy rest
  in
  keep infinity sorted

let min_edp = function
  | [] -> invalid_arg "Pareto.min_edp: empty curve"
  | first :: rest ->
    List.fold_left
      (fun best p -> if p.energy *. p.delay < best.energy *. best.delay then p else best)
      first rest

let energy_at_delay points ~delay =
  let feasible = List.filter (fun p -> p.delay <= delay) points in
  match feasible with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun e p -> Float.min e p.energy) first.energy rest)
