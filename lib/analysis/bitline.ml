let max_bits_per_line ?(margin = 4.0) dev ~vdd =
  if margin <= 0.0 then invalid_arg "Bitline.max_bits_per_line: margin must be positive";
  let ratio = Device.Iv_model.on_off_ratio dev ~vdd in
  Int.max 1 (1 + int_of_float (ratio /. margin))

type swing = {
  bits : int;
  read_current : float;
  leak_current : float;
  effective_current : float;
  swing_time : float;
}

let read_swing ?(bitline_cap_per_bit = 0.08e-15 /. 1e-6) ?(sense_margin = 0.05) dev ~vdd
    ~bits =
  if bits < 1 then invalid_arg "Bitline.read_swing: need at least one bit";
  let read_current = Device.Iv_model.ion dev ~vdd in
  let leak_current = float_of_int (bits - 1) *. Device.Iv_model.ioff dev ~vdd in
  let effective_current = read_current -. leak_current in
  if effective_current <= 0.0 then
    invalid_arg
      (Printf.sprintf
         "Bitline.read_swing: %d bits leak more than the read current provides" bits);
  let cap = float_of_int bits *. bitline_cap_per_bit in
  { bits; read_current; leak_current; effective_current;
    swing_time = cap *. sense_margin /. effective_current }
