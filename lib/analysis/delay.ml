let k_d = 0.69

let eq5 pair ~sizing ~vdd =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let i_n = sizing.Circuits.Inverter.wn *. Device.Iv_model.ion pair.Circuits.Inverter.nfet ~vdd in
  let i_p = sizing.Circuits.Inverter.wp *. Device.Iv_model.ion pair.Circuits.Inverter.pfet ~vdd in
  k_d *. cl *. vdd /. (0.5 *. (i_n +. i_p))

let eq6_factor pair ~sizing =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let ss = pair.Circuits.Inverter.nfet.Device.Compact.ss in
  let ioff_ref = 0.25 in
  let i_n =
    sizing.Circuits.Inverter.wn *. Device.Iv_model.ioff pair.Circuits.Inverter.nfet ~vdd:ioff_ref
  in
  let i_p =
    sizing.Circuits.Inverter.wp *. Device.Iv_model.ioff pair.Circuits.Inverter.pfet ~vdd:ioff_ref
  in
  cl *. ss /. (0.5 *. (i_n +. i_p))

type measured = { tp : float; tp_rise : float; tp_fall : float }

let measured ?(sizing = Circuits.Inverter.balanced_sizing ()) ?(stages = 4) ?(steps = 600)
    pair ~vdd =
  if stages < 4 then invalid_arg "Delay.measured: need at least 4 stages";
  let tp_est = Circuits.Chain.estimated_stage_delay pair sizing ~vdd in
  let edge = 2.0 *. tp_est in
  let settle = 8.0 *. tp_est *. float_of_int stages in
  let period = 2.0 *. settle in
  let input =
    Spice.Netlist.Pulse
      {
        low = 0.0;
        high = vdd;
        delay = 0.1 *. settle;
        rise = edge;
        fall = edge;
        width = (0.5 *. period) -. edge;
        period;
      }
  in
  let fx = Circuits.Inverter.chain_fixture ~sizing ~stages pair ~vdd ~input in
  let sys = Spice.Mna.build fx.Circuits.Inverter.circuit in
  let result = Spice.Transient.run sys ~t_stop:period ~steps in
  let times = result.Spice.Transient.times in
  let v_in_stage = Spice.Transient.voltage_of result fx.Circuits.Inverter.stage_nodes.(2) in
  let v_out_stage = Spice.Transient.voltage_of result fx.Circuits.Inverter.stage_nodes.(3) in
  let level = 0.5 *. vdd in
  let delay_for input_edge =
    match
      Spice.Waveform.propagation_delay ~times ~input:v_in_stage ~output:v_out_stage ~level
        ~input_edge
    with
    | Some d -> d
    | None -> failwith "Delay.measured: stage did not switch within the transient window"
  in
  let tp_fall = delay_for Spice.Waveform.Rising in
  let tp_rise = delay_for Spice.Waveform.Falling in
  { tp = 0.5 *. (tp_rise +. tp_fall); tp_rise; tp_fall }
