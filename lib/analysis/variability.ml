let k_rdf = 1.8

let sigma_vth ?(k = k_rdf) (dev : Device.Compact.t) ~width =
  if width <= 0.0 then invalid_arg "Variability.sigma_vth: width must be positive";
  let q = Physics.Constants.q in
  k *. q /. dev.Device.Compact.cox
  *. sqrt
       (dev.Device.Compact.neff *. dev.Device.Compact.wdep
        /. (3.0 *. width *. dev.Device.Compact.leff))

type distribution = {
  samples : Numerics.Vec.t;
  mean : float;
  sigma : float;
  p95 : float;
  ratio_95_to_mean : float;
}

let summarize samples =
  if Array.length samples = 0 then invalid_arg "Variability.summarize: empty";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let mean = Numerics.Stats.mean sorted in
  let sigma = Numerics.Stats.stddev sorted in
  let n = Array.length sorted in
  let p95 = sorted.(Int.min (n - 1) (int_of_float (0.95 *. float_of_int n))) in
  { samples = sorted; mean; sigma; p95; ratio_95_to_mean = p95 /. mean }

(* Per-stage delay with mismatched devices: Eq. 5 with the shifted pair.
   The load capacitance is mismatch-free (geometry, not doping). *)
let stage_delay (pair : Circuits.Inverter.pair) sizing ~vdd ~dvn ~dvp =
  let nfet = Device.Compact.with_vth_shift pair.Circuits.Inverter.nfet dvn in
  let pfet = Device.Compact.with_vth_shift pair.Circuits.Inverter.pfet dvp in
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let i_n = sizing.Circuits.Inverter.wn *. Device.Iv_model.ion nfet ~vdd in
  let i_p = sizing.Circuits.Inverter.wp *. Device.Iv_model.ion pfet ~vdd in
  Delay.k_d *. cl *. vdd /. (0.5 *. (i_n +. i_p))

(* Monte-Carlo fan-out recipe: every random draw happens sequentially, in
   exactly the order the original single-threaded loop drew them, and only
   the (pure) per-trial evaluation goes through [Exec.map].  The sampled
   numbers are therefore bit-identical for any --jobs setting — the
   differential harness in test/test_exec.ml holds these paths to it. *)
let chain_delay_distribution ?(seed = 42) ?(trials = 400) ?(stages = 30)
    ?(sizing = Circuits.Inverter.balanced_sizing ()) pair ~vdd =
  if trials < 2 then invalid_arg "Variability.chain_delay_distribution: need >= 2 trials";
  let rng = Numerics.Rng.create ~seed in
  let sn = sigma_vth pair.Circuits.Inverter.nfet ~width:sizing.Circuits.Inverter.wn in
  let sp = sigma_vth pair.Circuits.Inverter.pfet ~width:sizing.Circuits.Inverter.wp in
  let shifts = Array.make trials [||] in
  for trial = 0 to trials - 1 do
    let per_stage = Array.make stages (0.0, 0.0) in
    for stage = 0 to stages - 1 do
      let dvn = Numerics.Rng.normal rng ~mean:0.0 ~sigma:sn in
      let dvp = Numerics.Rng.normal rng ~mean:0.0 ~sigma:sp in
      per_stage.(stage) <- (dvn, dvp)
    done;
    shifts.(trial) <- per_stage
  done;
  let samples =
    Exec.map_array
      (fun per_stage ->
        Array.fold_left
          (fun total (dvn, dvp) -> total +. stage_delay pair sizing ~vdd ~dvn ~dvp)
          0.0 per_stage)
      shifts
  in
  summarize samples

let snm_distribution ?(seed = 42) ?(trials = 400)
    ?(sizing = Circuits.Inverter.balanced_sizing ()) (pair : Circuits.Inverter.pair) ~vdd =
  if trials < 2 then invalid_arg "Variability.snm_distribution: need >= 2 trials";
  let rng = Numerics.Rng.create ~seed in
  let sn = sigma_vth pair.Circuits.Inverter.nfet ~width:sizing.Circuits.Inverter.wn in
  let sp = sigma_vth pair.Circuits.Inverter.pfet ~width:sizing.Circuits.Inverter.wp in
  let shifts = Array.make trials (0.0, 0.0) in
  for trial = 0 to trials - 1 do
    let dvn = Numerics.Rng.normal rng ~mean:0.0 ~sigma:sn in
    let dvp = Numerics.Rng.normal rng ~mean:0.0 ~sigma:sp in
    shifts.(trial) <- (dvn, dvp)
  done;
  let samples =
    Exec.map_array
      (fun (dvn, dvp) ->
        let pair' =
          {
            Circuits.Inverter.nfet =
              Device.Compact.with_vth_shift pair.Circuits.Inverter.nfet dvn;
            pfet = Device.Compact.with_vth_shift pair.Circuits.Inverter.pfet dvp;
          }
        in
        match Snm.inverter ~engine:`Analytic pair' ~sizing ~vdd with
        | margins -> Float.max 0.0 margins.Snm.snm
        | exception Failure _ -> 0.0)
      shifts
  in
  summarize samples

let delay_spread_vs_vdd ?seed ?trials ?stages pair ~vdds =
  List.map
    (fun vdd ->
      let d = chain_delay_distribution ?seed ?trials ?stages pair ~vdd in
      (vdd, d.sigma /. d.mean))
    vdds
