type margins = {
  vil : float;
  vih : float;
  vol : float;
  voh : float;
  nml : float;
  nmh : float;
  snm : float;
}

let of_curve curve =
  let g = Vtc.gain curve in
  let crossings = Numerics.Interp.crossings curve.Vtc.vin g (-1.0) in
  match crossings with
  | vil :: rest ->
    let vih =
      match List.rev rest with
      | vih :: _ -> vih
      | [] -> failwith "Snm.of_curve: only one gain = -1 point (insufficient gain)"
    in
    let vout_at v = Numerics.Interp.linear curve.Vtc.vin curve.Vtc.vout v in
    let voh = vout_at vil and vol = vout_at vih in
    let nml = vil -. vol and nmh = voh -. vih in
    { vil; vih; vol; voh; nml; nmh; snm = Float.min nml nmh }
  | [] -> failwith "Snm.of_curve: no gain = -1 point (insufficient gain)"

let inverter ?(engine = `Analytic) pair ~sizing ~vdd =
  let curve =
    match engine with
    | `Analytic -> Vtc.analytic ~points:201 pair ~sizing ~vdd
    | `Spice -> Vtc.spice ~points:201 pair ~sizing ~vdd
  in
  of_curve curve

(* Maximum-square method.  An axis-aligned square inscribed in a butterfly
   lobe with opposite corners on the two branches has its diagonal along a
   45-degree line y = x + c, so its side is 1/sqrt(2) times the branch
   separation measured along that line.  Parametrize both branches by the
   anti-diagonal coordinate v = (y - x)/sqrt(2) — strictly monotone for any
   decreasing transfer curve — and take the largest diagonal-direction
   separation in u = (x + y)/sqrt(2).  Curve 1 is (x, v1(x)); curve 2 is the
   mirrored (v2(y), y). *)
let butterfly_snm ~vin ~v1 ~v2 =
  let n = Array.length vin in
  if Array.length v1 <> n || Array.length v2 <> n then
    invalid_arg "Snm.butterfly_snm: length mismatch";
  let s2 = sqrt 2.0 in
  let rot xs ys =
    let v = Array.init n (fun i -> (ys i -. xs i) /. s2) in
    let u = Array.init n (fun i -> (xs i +. ys i) /. s2) in
    (v, u)
  in
  let v1r, u1 = rot (fun i -> vin.(i)) (fun i -> v1.(i)) in
  let v2r, u2 = rot (fun i -> v2.(i)) (fun i -> vin.(i)) in
  (* Make the parameter increasing and drop any numerically stalled points. *)
  let ascending (v, u) =
    let k = Array.length v in
    if k >= 2 && v.(0) > v.(k - 1) then
      (Array.init k (fun i -> v.(k - 1 - i)), Array.init k (fun i -> u.(k - 1 - i)))
    else (v, u)
  in
  let dedup (v, u) =
    let vl = ref [ v.(0) ] and ul = ref [ u.(0) ] in
    for i = 1 to Array.length v - 1 do
      match !vl with
      | last :: _ when v.(i) > last +. 1e-12 ->
        vl := v.(i) :: !vl;
        ul := u.(i) :: !ul
      | _ -> ()
    done;
    (Array.of_list (List.rev !vl), Array.of_list (List.rev !ul))
  in
  let v1r, u1 = dedup (ascending (v1r, u1)) in
  let v2r, u2 = dedup (ascending (v2r, u2)) in
  let lo = Float.max v1r.(0) v2r.(0) in
  let hi = Float.min v1r.(Array.length v1r - 1) v2r.(Array.length v2r - 1) in
  if hi <= lo then 0.0
  else begin
    let samples = 400 in
    let upper_lobe = ref 0.0 and lower_lobe = ref 0.0 in
    for i = 0 to samples do
      let v = lo +. ((hi -. lo) *. float_of_int i /. float_of_int samples) in
      let d = Numerics.Interp.linear v1r u1 v -. Numerics.Interp.linear v2r u2 v in
      if d > !upper_lobe then upper_lobe := d;
      if -.d > !lower_lobe then lower_lobe := -.d
    done;
    Float.min !upper_lobe !lower_lobe /. s2
  end
