(** Small shared helper: the threshold voltage at the subthreshold operating
    point (V_ds at a representative saturation bias of a few vT), used by
    the analytic VTC/SNM/delay expressions which treat V_th as a constant. *)

val vth_sub : Device.Compact.t -> float
(** V_th evaluated at V_ds = 10 vT — deep enough in saturation that the
    (1 - e^{-V_ds/vT}) factor is negligible, low enough that DIBL stays at
    its sub-V_th operating value. *)
