(** Inverter voltage transfer characteristics, by two routes:

    - [analytic]: the paper's Eq. 3(b) — V_in as an explicit function of
      V_out from equating the NFET and PFET weak-inversion currents (Eq. 1).
      Valid in the sub-V_th regime.
    - [spice]: a DC sweep of the full nonlinear circuit, valid at any V_dd.

    Both return curves sampled as (vin, vout) arrays with vin increasing. *)

type curve = { vin : Numerics.Vec.t; vout : Numerics.Vec.t }

val analytic :
  ?points:int -> Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing ->
  vdd:float -> curve
(** Eq. 3(b), using each device's I_o (current at V_gs = V_th), m and V_th,
    with the device widths folded into the I_o ratio. *)

val spice :
  ?points:int -> Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing ->
  vdd:float -> curve

val gain : curve -> Numerics.Vec.t
(** dV_out/dV_in by central differences (forward/backward at the ends). *)

val switching_threshold : curve -> float
(** V_M where V_out = V_in. *)
