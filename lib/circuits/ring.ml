type t = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  stage_nodes : int array;
  vdd : float;
  stages : int;
}

let build ?(sizing = Inverter.balanced_sizing ()) ?(stages = 7) pair ~vdd =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Ring.build: stage count must be odd and >= 3";
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  let nodes = Array.init stages (fun i -> Spice.Netlist.node c (Printf.sprintf "r%d" i)) in
  let cl = Inverter.load_capacitance pair sizing in
  for i = 0 to stages - 1 do
    let in_node = nodes.(i) in
    let out_node = nodes.((i + 1) mod stages) in
    Spice.Netlist.add c
      (Spice.Netlist.Nmos
         { dev = pair.Inverter.nfet; width = sizing.Inverter.wn; drain = out_node;
           gate = in_node; source = Spice.Netlist.ground });
    Spice.Netlist.add c
      (Spice.Netlist.Pmos
         { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out_node;
           gate = in_node; source = vdd_node });
    Spice.Netlist.add c
      (Spice.Netlist.Capacitor
         { plus = out_node; minus = Spice.Netlist.ground; farads = cl })
  done;
  { circuit = c; vdd_name = "VDD"; stage_nodes = nodes; vdd; stages }

let kick ring sys =
  let x = Spice.Dcop.solve sys in
  (* Nudge the first ring node: node indices are 1-based in the unknown
     vector (ground eliminated). *)
  let node = ring.stage_nodes.(0) in
  x.(node - 1) <- x.(node - 1) +. (0.15 *. ring.vdd);
  x

let oscillation_period ring _sys result =
  let times = result.Spice.Transient.times in
  let values = Spice.Transient.voltage_of result ring.stage_nodes.(0) in
  let level = 0.5 *. ring.vdd in
  let rising = Spice.Waveform.crossings ~times ~values ~level Spice.Waveform.Rising in
  match List.rev rising with
  | t2 :: t1 :: _ -> Some (t2 -. t1)
  | [ _ ] | [] -> None
