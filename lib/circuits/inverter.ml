type sizing = { wn : float; wp : float }

let balanced_sizing ?(wn = 1e-6) () = { wn; wp = wn *. Device.Compact.mobility_ratio }

type pair = { nfet : Device.Compact.t; pfet : Device.Compact.t }

let pair_of_physical ?cal phys =
  { nfet = Device.Compact.nfet ?cal phys; pfet = Device.Compact.pfet ?cal phys }

let gate_capacitance pair sizing =
  (pair.nfet.Device.Compact.cg *. sizing.wn) +. (pair.pfet.Device.Compact.cg *. sizing.wp)

let load_capacitance pair sizing =
  let load_factor = Device.Params.read_load_factor pair.nfet.Device.Compact.cal in
  load_factor *. gate_capacitance pair sizing

type dc_fixture = {
  circuit : Spice.Netlist.t;
  vin_name : string;
  vdd_name : string;
  out_node : int;
  in_node : int;
}

let add_inverter c pair sizing ~vdd_node ~in_node ~out_node =
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.nfet; width = sizing.wn; drain = out_node; gate = in_node;
         source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.pfet; width = sizing.wp; drain = out_node; gate = in_node;
         source = vdd_node })

let dc ?(sizing = balanced_sizing ()) pair ~vdd =
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  let in_node = Spice.Netlist.node c "in" in
  let out_node = Spice.Netlist.node c "out" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VIN"; plus = in_node; minus = Spice.Netlist.ground; wave = Dc 0.0 });
  add_inverter c pair sizing ~vdd_node ~in_node ~out_node;
  { circuit = c; vin_name = "VIN"; vdd_name = "VDD"; out_node; in_node }

type transient_fixture = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  stage_nodes : int array;
}

let chain_fixture ?(sizing = balanced_sizing ()) ?(stages = 4) ?(extra_load = 0.0) pair ~vdd
    ~input =
  if stages < 1 then invalid_arg "Inverter.chain_fixture: need at least one stage";
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  let in_node = Spice.Netlist.node c "in" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VIN"; plus = in_node; minus = Spice.Netlist.ground; wave = input });
  let cl = load_capacitance pair sizing in
  let nodes = Array.make (stages + 1) in_node in
  let prev = ref in_node in
  for stage = 1 to stages do
    let out = Spice.Netlist.node c (Printf.sprintf "s%d" stage) in
    add_inverter c pair sizing ~vdd_node ~in_node:!prev ~out_node:out;
    let load = if stage = stages then cl +. extra_load else cl in
    Spice.Netlist.add c
      (Spice.Netlist.Capacitor { plus = out; minus = Spice.Netlist.ground; farads = load });
    nodes.(stage) <- out;
    prev := out
  done;
  { circuit = c; vdd_name = "VDD"; stage_nodes = nodes }

(* Tapered buffer chain: stage i uses the base sizing scaled by scales.(i).
   Gate capacitance is explicit (the MOSFET model carries none), so node i
   carries the next stage's input capacitance plus the driving stage's own
   parasitic, (load_factor - 1) x its gate cap; the last node carries
   [final_load] plus its driver's parasitic. *)
let tapered_chain_fixture ?(sizing = balanced_sizing ()) ~scales pair ~vdd ~input
    ~final_load =
  let stages = Array.length scales in
  if stages < 1 then invalid_arg "Inverter.tapered_chain_fixture: need at least one stage";
  Array.iter
    (fun s -> if s <= 0.0 then invalid_arg "Inverter.tapered_chain_fixture: bad scale")
    scales;
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  let in_node = Spice.Netlist.node c "in" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VIN"; plus = in_node; minus = Spice.Netlist.ground; wave = input });
  let load_factor = Device.Params.read_load_factor pair.nfet.Device.Compact.cal in
  let scaled k = { wn = sizing.wn *. scales.(k); wp = sizing.wp *. scales.(k) } in
  let nodes = Array.make (stages + 1) in_node in
  let prev = ref in_node in
  for stage = 0 to stages - 1 do
    let out = Spice.Netlist.node c (Printf.sprintf "t%d" (stage + 1)) in
    add_inverter c pair (scaled stage) ~vdd_node ~in_node:!prev ~out_node:out;
    let parasitic = (load_factor -. 1.0) *. gate_capacitance pair (scaled stage) in
    let next_gate =
      if stage < stages - 1 then gate_capacitance pair (scaled (stage + 1)) else final_load
    in
    Spice.Netlist.add c
      (Spice.Netlist.Capacitor
         { plus = out; minus = Spice.Netlist.ground; farads = parasitic +. next_gate });
    nodes.(stage + 1) <- out;
    prev := out
  done;
  { circuit = c; vdd_name = "VDD"; stage_nodes = nodes }
