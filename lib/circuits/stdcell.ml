type fixture = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  a_name : string;
  b_name : string;
  out_node : int;
}

let base ?(a_wave = Spice.Netlist.Dc 0.0) ?(b_wave = Spice.Netlist.Dc 0.0) pair vdd =
  ignore pair;
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  let a_node = Spice.Netlist.node c "a" in
  let b_node = Spice.Netlist.node c "b" in
  let out_node = Spice.Netlist.node c "out" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VA"; plus = a_node; minus = Spice.Netlist.ground; wave = a_wave });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VB"; plus = b_node; minus = Spice.Netlist.ground; wave = b_wave });
  (c, vdd_node, a_node, b_node, out_node)

let inv ?(sizing = Inverter.balanced_sizing ()) ?a_wave ?b_wave pair ~vdd =
  let c, vdd_node, a_node, b_node, out_node = base ?a_wave ?b_wave pair vdd in
  ignore b_node;
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = sizing.Inverter.wn; drain = out_node;
         gate = a_node; source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out_node;
         gate = a_node; source = vdd_node });
  { circuit = c; vdd_name = "VDD"; a_name = "VA"; b_name = "VB"; out_node }

let nand2 ?(sizing = Inverter.balanced_sizing ()) ?a_wave ?b_wave pair ~vdd =
  let c, vdd_node, a_node, b_node, out_node = base ?a_wave ?b_wave pair vdd in
  let mid = Spice.Netlist.node c "mid" in
  (* Series NFETs are double width to keep the worst-case pull-down drive. *)
  let wn2 = 2.0 *. sizing.Inverter.wn in
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = wn2; drain = out_node; gate = a_node; source = mid });
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = wn2; drain = mid; gate = b_node;
         source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out_node; gate = a_node;
         source = vdd_node });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out_node; gate = b_node;
         source = vdd_node });
  { circuit = c; vdd_name = "VDD"; a_name = "VA"; b_name = "VB"; out_node }

let nor2 ?(sizing = Inverter.balanced_sizing ()) ?a_wave ?b_wave pair ~vdd =
  let c, vdd_node, a_node, b_node, out_node = base ?a_wave ?b_wave pair vdd in
  let mid = Spice.Netlist.node c "mid" in
  let wp2 = 2.0 *. sizing.Inverter.wp in
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = wp2; drain = mid; gate = a_node; source = vdd_node });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = wp2; drain = out_node; gate = b_node; source = mid });
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = sizing.Inverter.wn; drain = out_node; gate = a_node;
         source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = sizing.Inverter.wn; drain = out_node; gate = b_node;
         source = Spice.Netlist.ground });
  { circuit = c; vdd_name = "VDD"; a_name = "VA"; b_name = "VB"; out_node }

let output_at fixture ~a ~b =
  let sys = Spice.Mna.build fixture.circuit in
  let x = Spice.Dcop.solve ~overrides:[ (fixture.a_name, a); (fixture.b_name, b) ] sys in
  Spice.Mna.voltage sys x fixture.out_node
