(** Ring oscillator: an odd chain of FO1-loaded inverters closed into a
    loop.  Frequency measurement is the classic silicon-calibration workload
    for the delay metrics of Sec. 2.3.3. *)

type t = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  stage_nodes : int array;
  vdd : float;
  stages : int;
}

val build : ?sizing:Inverter.sizing -> ?stages:int -> Inverter.pair -> vdd:float -> t
(** [stages] must be odd (default 7). *)

val kick : t -> Spice.Mna.system -> Numerics.Vec.t
(** The metastable DC solution with the first stage nudged off balance — use
    as the transient's initial condition to start oscillation. *)

val oscillation_period :
  t -> Spice.Mna.system -> Spice.Transient.result -> float option
(** Period from the last two same-direction V_dd/2 crossings of stage 0
    (None until at least two full cycles are visible). *)
