(** Two-input static CMOS gates (NAND2/NOR2), used by the examples to show
    the library drives arbitrary logic, and by tests to exercise stacked
    devices in the sub-V_th regime (where stack effect is strong). *)

type fixture = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  a_name : string;
  b_name : string;
  out_node : int;
}

val inv :
  ?sizing:Inverter.sizing ->
  ?a_wave:Spice.Netlist.waveform -> ?b_wave:Spice.Netlist.waveform ->
  Inverter.pair -> vdd:float -> fixture
(** Plain inverter on input A (the B source exists but drives nothing), so
    the three cells share one fixture shape.  [a_wave]/[b_wave] override the
    default DC-0 input sources — transient characterization uses ramps. *)

val nand2 :
  ?sizing:Inverter.sizing ->
  ?a_wave:Spice.Netlist.waveform -> ?b_wave:Spice.Netlist.waveform ->
  Inverter.pair -> vdd:float -> fixture
(** Series NFET stack, parallel PFETs; inputs are the ideal sources A and B. *)

val nor2 :
  ?sizing:Inverter.sizing ->
  ?a_wave:Spice.Netlist.waveform -> ?b_wave:Spice.Netlist.waveform ->
  Inverter.pair -> vdd:float -> fixture
(** Parallel NFETs, series PFET stack. *)

val output_at : fixture -> a:float -> b:float -> float
(** DC output voltage for the given input levels. *)
