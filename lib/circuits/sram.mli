(** 6T SRAM cell — the paper's Sec. 2.3.2 motivates SNM scaling with SRAM
    robustness (ref [16], a sub-200mV 6T SRAM).  The hold/read butterfly
    curves come from breaking the cross-coupled loop and sweeping each half
    cell. *)

type config = Hold | Read
(** Hold: access transistors off (wordline low).  Read: wordline high with
    both bitlines precharged at V_dd — the worst case for static noise
    margin. *)

type t = {
  pair : Inverter.pair;
  sizing : Inverter.sizing;  (** pull-down (wn) and pull-up (wp) widths *)
  w_access : float;  (** access (pass-gate) transistor width [m] *)
  vdd : float;
}

val make :
  ?sizing:Inverter.sizing -> ?beta:float -> Inverter.pair -> vdd:float -> t
(** [beta] is the cell ratio W_pulldown/W_access (default 1.5, a typical
    subthreshold-SRAM choice); pull-up and pull-down sizing from [sizing]. *)

val half_cell_vtc :
  t -> config -> vin:Numerics.Vec.t -> Numerics.Vec.t
(** The storage-node transfer curve of one half cell: for each input
    (opposite storage node voltage) the solved output voltage.  In Read
    config the access transistor fights the pull-down, degrading the low
    level — the classic read-SNM loss. *)

val butterfly :
  ?points:int -> t -> config -> Numerics.Vec.t * Numerics.Vec.t * Numerics.Vec.t
(** [(vin, vtc1, vtc2)] — the two (identical-device) half-cell curves with
    the second mirrored, ready for maximum-square SNM extraction. *)
