(** CMOS inverter circuit builders on top of the netlist layer.

    Widths are in metres of gate width; the default NFET width is 1 um with
    the PFET upsized by the mobility ratio, which balances I_o,N = I_o,P —
    the symmetry assumption behind the paper's Eq. 3(c). *)

type sizing = { wn : float; wp : float }

val balanced_sizing : ?wn:float -> unit -> sizing
(** [wn] defaults to 1 um; [wp = wn * mu_n/mu_p]. *)

type pair = { nfet : Device.Compact.t; pfet : Device.Compact.t }

val pair_of_physical : ?cal:Device.Params.calibration -> Device.Params.physical -> pair
(** NFET and mirror PFET from one set of physical parameters. *)

val gate_capacitance : pair -> sizing -> float
(** Input capacitance C_g,n W_n + C_g,p W_p [F]. *)

val load_capacitance : pair -> sizing -> float
(** FO1 switched load including parasitics (load_factor x gate cap) [F]. *)

type dc_fixture = {
  circuit : Spice.Netlist.t;
  vin_name : string;  (** input source to sweep *)
  vdd_name : string;
  out_node : int;
  in_node : int;
}

val dc : ?sizing:sizing -> pair -> vdd:float -> dc_fixture
(** Single inverter with ideal voltage-source input — the VTC fixture. *)

type transient_fixture = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  stage_nodes : int array;  (** input node followed by each stage output *)
}

val chain_fixture :
  ?sizing:sizing ->
  ?stages:int ->
  ?extra_load:float ->
  pair ->
  vdd:float ->
  input:Spice.Netlist.waveform ->
  transient_fixture
(** A chain of [stages] (default 4) FO1-loaded inverters driven by [input];
    every internal node carries the FO1 load (the next gate plus
    parasitics), and the last node carries the same load explicitly plus
    [extra_load] farads.  Delay is measured on an interior stage so the
    input slope is realistic. *)

val tapered_chain_fixture :
  ?sizing:sizing ->
  scales:float array ->
  pair ->
  vdd:float ->
  input:Spice.Netlist.waveform ->
  final_load:float ->
  transient_fixture
(** A buffer chain whose stage [i] is the base sizing scaled by
    [scales.(i)], terminating into [final_load] farads — the fixture
    logical-effort driver plans are validated against.  Node loads carry
    the next stage's gate capacitance explicitly plus each driver's own
    (load_factor - 1) parasitic. *)
