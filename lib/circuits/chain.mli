(** The paper's Fig. 6/Fig. 12 workload: a chain of 30 inverters clocked at
    its own speed with activity factor alpha, used to measure energy per
    cycle and locate the minimum-energy supply V_min. *)

type t = {
  fixture : Inverter.transient_fixture;
  pair : Inverter.pair;
  sizing : Inverter.sizing;
  vdd : float;
  stages : int;
  period : float;  (** input period used for the energy transient [s] *)
}

val build :
  ?sizing:Inverter.sizing ->
  ?stages:int ->
  ?period_factor:float ->
  Inverter.pair ->
  vdd:float ->
  t
(** A [stages]-inverter chain (default 30) driven by a single input pulse.
    The input period is sized to [period_factor] (default 4) times the
    estimated worst-case chain propagation time at this V_dd, so the chain
    settles fully within one cycle — the operating point of a circuit
    clocked at its natural frequency. *)

val estimated_stage_delay : Inverter.pair -> Inverter.sizing -> vdd:float -> float
(** Analytic per-stage delay estimate (paper Eq. 5 with the FO1 load), used
    to scale transient windows. *)
