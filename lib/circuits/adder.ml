type t = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  a_names : string array;
  b_names : string array;
  cin_name : string;
  sum_nodes : int array;
  cout_node : int;
  bits : int;
  vdd : float;
}

(* One NAND2 with double-width series NFETs (worst-case drive parity) and an
   FO1-equivalent output load. *)
let add_nand c (pair : Inverter.pair) (sizing : Inverter.sizing) ~vdd_node ~a ~b ~out ~load =
  let mid = Spice.Netlist.fresh_node c in
  let wn2 = 2.0 *. sizing.Inverter.wn in
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = wn2; drain = out; gate = a; source = mid });
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = pair.Inverter.nfet; width = wn2; drain = mid; gate = b;
         source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out; gate = a;
         source = vdd_node });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = pair.Inverter.pfet; width = sizing.Inverter.wp; drain = out; gate = b;
         source = vdd_node });
  Spice.Netlist.add c
    (Spice.Netlist.Capacitor { plus = out; minus = Spice.Netlist.ground; farads = load })

(* Nine-NAND full adder; returns (sum, cout). *)
let add_full_adder c pair sizing ~vdd_node ~a ~b ~cin ~load =
  let nand x y =
    let out = Spice.Netlist.fresh_node c in
    add_nand c pair sizing ~vdd_node ~a:x ~b:y ~out ~load;
    out
  in
  let n1 = nand a b in
  let n2 = nand a n1 in
  let n3 = nand b n1 in
  let xor_ab = nand n2 n3 in
  let n5 = nand xor_ab cin in
  let n6 = nand xor_ab n5 in
  let n7 = nand cin n5 in
  let sum = nand n6 n7 in
  let cout = nand n1 n5 in
  (sum, cout)

let build ?(sizing = Inverter.balanced_sizing ()) ?cin_wave ?(a_word = 0) ?(b_word = 0) pair
    ~vdd ~bits =
  if bits < 1 then invalid_arg "Adder.ripple_carry: need at least one bit";
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc vdd });
  let input name wave =
    let node = Spice.Netlist.node c name in
    Spice.Netlist.add c
      (Spice.Netlist.Voltage_source { name; plus = node; minus = Spice.Netlist.ground; wave });
    node
  in
  let a_names = Array.init bits (fun i -> Printf.sprintf "VA%d" i) in
  let b_names = Array.init bits (fun i -> Printf.sprintf "VB%d" i) in
  let level word i = if (word lsr i) land 1 = 1 then vdd else 0.0 in
  let a_nodes = Array.mapi (fun i n -> input n (Spice.Netlist.Dc (level a_word i))) a_names in
  let b_nodes = Array.mapi (fun i n -> input n (Spice.Netlist.Dc (level b_word i))) b_names in
  let cin_name = "VCIN" in
  let cin_node =
    input cin_name (Option.value cin_wave ~default:(Spice.Netlist.Dc 0.0))
  in
  let load = Inverter.load_capacitance pair sizing in
  let sum_nodes = Array.make bits 0 in
  let carry = ref cin_node in
  for i = 0 to bits - 1 do
    let sum, cout =
      add_full_adder c pair sizing ~vdd_node ~a:a_nodes.(i) ~b:b_nodes.(i) ~cin:!carry ~load
    in
    sum_nodes.(i) <- sum;
    carry := cout
  done;
  { circuit = c; vdd_name = "VDD"; a_names; b_names; cin_name; sum_nodes;
    cout_node = !carry; bits; vdd }

let ripple_carry ?sizing pair ~vdd ~bits = build ?sizing pair ~vdd ~bits

let word_overrides adder ~a ~b ~cin =
  let max_word = (1 lsl adder.bits) - 1 in
  if a < 0 || a > max_word || b < 0 || b > max_word || cin < 0 || cin > 1 then
    invalid_arg "Adder.compute: input exceeds the bit width";
  let vdd = adder.vdd in
  let bit_of word i = if (word lsr i) land 1 = 1 then vdd else 0.0 in
  let pairs = ref [ (adder.cin_name, if cin = 1 then vdd else 0.0) ] in
  for i = 0 to adder.bits - 1 do
    pairs := (adder.a_names.(i), bit_of a i) :: (adder.b_names.(i), bit_of b i) :: !pairs
  done;
  !pairs

let compute adder ~a ~b ~cin =
  let sys = Spice.Mna.build adder.circuit in
  let x = Spice.Dcop.solve ~overrides:(word_overrides adder ~a ~b ~cin) sys in
  let bit_at node = if Spice.Mna.voltage sys x node > 0.5 *. adder.vdd then 1 else 0 in
  let sum = ref 0 in
  Array.iteri (fun i node -> sum := !sum lor (bit_at node lsl i)) adder.sum_nodes;
  (!sum, bit_at adder.cout_node)

(* Worst case: A = all ones, B = 0, so every stage propagates; a carry-in
   step 0 -> vdd ripples through all [bits] stages.  The static words are
   baked into the input waveforms (the transient engine reads waveforms,
   not overrides) and the carry-in is a delayed ramp. *)
let carry_delay ?sizing ?(steps = 800) pair ~vdd ~bits =
  let tp_est = Chain.estimated_stage_delay pair (Inverter.balanced_sizing ()) ~vdd in
  (* ~3 gate delays per bit on the carry path, with a wide margin. *)
  let window = 18.0 *. tp_est *. float_of_int bits in
  let t_edge = 0.1 *. window in
  let cin_wave =
    Spice.Netlist.Pwl [ (0.0, 0.0); (t_edge, 0.0); (t_edge +. tp_est, vdd) ]
  in
  let all_ones = (1 lsl bits) - 1 in
  let adder = build ?sizing ~cin_wave ~a_word:all_ones ~b_word:0 pair ~vdd ~bits in
  let sys = Spice.Mna.build adder.circuit in
  let result = Spice.Transient.run sys ~t_stop:window ~steps in
  let times = result.Spice.Transient.times in
  let cout = Spice.Transient.voltage_of result adder.cout_node in
  let t_in = t_edge +. (0.5 *. tp_est) in
  match
    Spice.Waveform.first_crossing ~after:t_in ~times ~values:cout ~level:(0.5 *. vdd)
      Spice.Waveform.Either
  with
  | Some t_out -> t_out -. t_in
  | None -> failwith "Adder.carry_delay: carry-out did not switch within the window"
