type t = {
  fixture : Inverter.transient_fixture;
  pair : Inverter.pair;
  sizing : Inverter.sizing;
  vdd : float;
  stages : int;
  period : float;
}

(* Average of the pull-down and pull-up drive at V_gs = V_ds = V_dd, which is
   what discharges/charges the FO1 load. *)
let estimated_stage_delay pair sizing ~vdd =
  let cl = Inverter.load_capacitance pair sizing in
  let i_n = sizing.Inverter.wn *. Device.Iv_model.ion pair.Inverter.nfet ~vdd in
  let i_p = sizing.Inverter.wp *. Device.Iv_model.ion pair.Inverter.pfet ~vdd in
  let i_avg = 0.5 *. (i_n +. i_p) in
  0.69 *. cl *. vdd /. i_avg

let build ?(sizing = Inverter.balanced_sizing ()) ?(stages = 30) ?(period_factor = 4.0) pair
    ~vdd =
  if vdd <= 0.0 then invalid_arg "Chain.build: vdd must be positive";
  let tp = estimated_stage_delay pair sizing ~vdd in
  let chain_time = float_of_int stages *. tp in
  let period = period_factor *. chain_time in
  let rise = 0.05 *. period in
  let input =
    Spice.Netlist.Pulse
      {
        low = 0.0;
        high = vdd;
        delay = 0.02 *. period;
        rise;
        fall = rise;
        width = (0.5 *. period) -. rise;
        period;
      }
  in
  let fixture = Inverter.chain_fixture ~sizing ~stages pair ~vdd ~input in
  { fixture; pair; sizing; vdd; stages; period }
