(** Ripple-carry adder built from NAND2 cells — a gate-level datapath
    workload for the sub-V_th operating point (the kind of logic the
    paper's sensor-processor applications are made of).

    Each full adder is the classic nine-NAND network; every gate output
    carries an FO1-equivalent load so transient delays are realistic. *)

type t = {
  circuit : Spice.Netlist.t;
  vdd_name : string;
  a_names : string array;  (** per-bit input source names, LSB first *)
  b_names : string array;
  cin_name : string;
  sum_nodes : int array;  (** LSB first *)
  cout_node : int;
  bits : int;
  vdd : float;
}

val ripple_carry :
  ?sizing:Inverter.sizing -> Inverter.pair -> vdd:float -> bits:int -> t

val compute : t -> a:int -> b:int -> cin:int -> int * int
(** DC-solve the adder with the given input words and return
    [(sum, carry_out)], thresholding outputs at V_dd/2.  Raises
    [Invalid_argument] if an input exceeds the bit width. *)

val carry_delay :
  ?sizing:Inverter.sizing -> ?steps:int -> Inverter.pair -> vdd:float -> bits:int -> float
(** Worst-case carry-propagation delay [s]: with A = all ones and B = 0,
    a carry-in edge must ripple through every stage; measured from a
    transient as the 50 % crossing of carry-out after the input edge.
    Raises [Failure] if the output never switches in the window. *)
