type config = Hold | Read

type t = {
  pair : Inverter.pair;
  sizing : Inverter.sizing;
  w_access : float;
  vdd : float;
}

let make ?(sizing = Inverter.balanced_sizing ()) ?(beta = 1.5) pair ~vdd =
  if beta <= 0.0 then invalid_arg "Sram.make: beta must be positive";
  { pair; sizing; w_access = sizing.Inverter.wn /. beta; vdd }

(* One half cell: inverter (in -> out) plus, in Read config, an access NFET
   from the bitline (held at vdd) to the storage node, gate at vdd. *)
let half_cell_circuit cell config =
  let c = Spice.Netlist.create () in
  let vdd_node = Spice.Netlist.node c "vdd" in
  let in_node = Spice.Netlist.node c "in" in
  let out_node = Spice.Netlist.node c "out" in
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VDD"; plus = vdd_node; minus = Spice.Netlist.ground; wave = Dc cell.vdd });
  Spice.Netlist.add c
    (Spice.Netlist.Voltage_source
       { name = "VIN"; plus = in_node; minus = Spice.Netlist.ground; wave = Dc 0.0 });
  Spice.Netlist.add c
    (Spice.Netlist.Nmos
       { dev = cell.pair.Inverter.nfet; width = cell.sizing.Inverter.wn; drain = out_node;
         gate = in_node; source = Spice.Netlist.ground });
  Spice.Netlist.add c
    (Spice.Netlist.Pmos
       { dev = cell.pair.Inverter.pfet; width = cell.sizing.Inverter.wp; drain = out_node;
         gate = in_node; source = vdd_node });
  (match config with
   | Hold -> ()
   | Read ->
     (* Bitline precharged to vdd, wordline at vdd: access NFET source is the
        storage node, drain the bitline. *)
     Spice.Netlist.add c
       (Spice.Netlist.Nmos
          { dev = cell.pair.Inverter.nfet; width = cell.w_access; drain = vdd_node;
            gate = vdd_node; source = out_node }));
  (c, out_node)

let half_cell_vtc cell config ~vin =
  let c, out_node = half_cell_circuit cell config in
  let sys = Spice.Mna.build c in
  let sweep = Spice.Dcsweep.run sys ~source:"VIN" ~values:vin in
  Spice.Dcsweep.probe sys sweep ~node:out_node

let butterfly ?(points = 61) cell config =
  let vin = Numerics.Vec.linspace 0.0 cell.vdd points in
  let vtc = half_cell_vtc cell config ~vin in
  (vin, vtc, Array.copy vtc)
