(* A fixed-size pool of OCaml 5 domains with a deterministic,
   order-preserving [map].

   Scheduling is self-service over a shared bag: each call to [map]
   publishes one job (an array of indexed items); every worker — and the
   calling domain itself — repeatedly steals the next unclaimed index with
   a single atomic fetch-and-add and writes its result into a dedicated
   slot.  Because every item owns a slot, the output order is the input
   order no matter which domain ran what, and a run with N domains is
   observationally identical to [List.map].

   A [map ?order] caller can supply a permutation of the item indices:
   claim slot [i] then executes item [order.(i)].  Because results land in
   per-item slots, the output is identical for every permutation — the
   schedule-perturbation audit exploits exactly this to shake out hidden
   order dependence.

   Exception protocol: a raising task stops the distribution of further
   indices, every already-claimed item still completes, and [map] re-raises
   the exception of the *lowest* raising index — exactly the one a
   sequential [List.map] would have raised (indices are claimed in
   ascending order, so every index below a recorded raiser also ran).  The
   pool itself survives: the job is unpublished and the workers return to
   the idle queue, so the next [map] on the same pool works normally. *)

type job = {
  id : int;
  run : int -> unit;  (* executes item [i]; must never raise *)
  n : int;
  next : int Atomic.t;  (* next unclaimed index *)
  stop : bool Atomic.t;  (* a task raised: stop claiming new indices *)
  mutable inside : int;  (* workers currently executing this job's items *)
  published : float;  (* publish timestamp; 0.0 unless tracing *)
}

(* Queue-wait observations need a clock, so they are taken only while
   tracing is on — the disabled-path cost of a [map] stays two atomic
   reads.  Observation never affects claiming order or results. *)
let queue_wait_hist = Obs.Metrics.histogram "exec.pool.queue_wait_us"

let note_queue_wait job =
  if Obs.Trace.enabled () && job.published > 0.0 then
    Obs.Metrics.observe queue_wait_hist ((Unix.gettimeofday () -. job.published) *. 1e6)

type t = {
  domains : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* workers sleep here between jobs *)
  quiet : Condition.t;  (* the caller sleeps here until stragglers finish *)
  mutable current : job option;
  mutable next_id : int;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let run_items job =
  let rec loop () =
    if not (Atomic.get job.stop) then begin
      let i = Atomic.fetch_and_add job.next 1 in
      if i < job.n then begin
        job.run i;
        loop ()
      end
    end
  in
  loop ()

(* Workers remember the id of the job they last worked on so that a still-
   published job is never re-entered (re-entering would be harmless but
   would spin: every claim attempt finds the bag empty). *)
let rec worker_loop pool last_id =
  Mutex.lock pool.mutex;
  let rec await () =
    if pool.shutdown then None
    else
      match pool.current with
      | Some job when job.id <> last_id ->
        job.inside <- job.inside + 1;
        Some job
      | Some _ | None ->
        Condition.wait pool.work_ready pool.mutex;
        await ()
  in
  match await () with
  | None -> Mutex.unlock pool.mutex
  | Some job ->
    Mutex.unlock pool.mutex;
    note_queue_wait job;
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:[ ("job", Obs.Trace.I job.id) ]
      "pool.worker"
      (fun () -> run_items job);
    Mutex.lock pool.mutex;
    job.inside <- job.inside - 1;
    if job.inside = 0 then Condition.broadcast pool.quiet;
    Mutex.unlock pool.mutex;
    worker_loop pool job.id

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      quiet = Condition.create ();
      current = None;
      next_id = 1;
      shutdown = false;
      workers = [];
    }
  in
  (* The caller participates in every [map], so [domains] total lanes need
     only [domains - 1] spawned worker domains — and [~domains:1] spawns
     none at all: the pool degenerates to a pure-sequential [List.map]. *)
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let domains pool = pool.domains
let spawned pool = List.length pool.workers

let ordered_seq_map order f arr =
  let results = Array.make (Array.length arr) None in
  Array.iter (fun i -> results.(i) <- Some (f arr.(i))) order;
  Array.to_list (Array.map Option.get results)

let check_order ~n = function
  | None -> ()
  | Some o ->
    if Array.length o <> n then invalid_arg "Pool.map: order length mismatch";
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n || seen.(i) then invalid_arg "Pool.map: order is not a permutation";
        seen.(i) <- true)
      o

let map ?order pool xs f =
  let dead =
    Mutex.lock pool.mutex;
    let d = pool.shutdown in
    Mutex.unlock pool.mutex;
    d
  in
  if dead then invalid_arg "Pool.map: pool is shut down";
  check_order ~n:(List.length xs) order;
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when pool.domains = 1 ->
    (match order with
     | None -> List.map f xs
     | Some o -> ordered_seq_map o f (Array.of_list xs))
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let errors = Array.make n None in
    let stop = Atomic.make false in
    let item = match order with None -> fun i -> i | Some o -> fun i -> o.(i) in
    let run slot =
      let i = item slot in
      match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        errors.(i) <- Some e;
        Atomic.set stop true
    in
    Mutex.lock pool.mutex;
    if pool.shutdown then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if pool.current <> None then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: a job is already running on this pool"
    end;
    let published = if Obs.Trace.enabled () then Unix.gettimeofday () else 0.0 in
    let job = { id = pool.next_id; run; n; next = Atomic.make 0; stop; inside = 0; published } in
    pool.next_id <- pool.next_id + 1;
    pool.current <- Some job;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    Obs.Trace.with_span ~cat:"pool"
      ~attrs:[ ("job", Obs.Trace.I job.id); ("items", Obs.Trace.I n) ]
      "pool.map"
      (fun () -> run_items job);
    Mutex.lock pool.mutex;
    (* Unpublish before waiting: no worker can join past this point, so
       [inside] only decreases and the wait below terminates. *)
    pool.current <- None;
    while job.inside > 0 do
      Condition.wait pool.quiet pool.mutex
    done;
    Mutex.unlock pool.mutex;
    let first_error = Array.fold_left (fun acc e -> match acc with Some _ -> acc | None -> e) None errors in
    (match first_error with
     | Some e -> raise e
     | None -> Array.to_list (Array.map Option.get results))

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.shutdown in
  pool.shutdown <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if not already then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end
