(** Persistent on-disk tier behind {!Memo}: a file-backed,
    content-addressed cache keyed by the same {!Key} strings that
    identify in-memory memo entries.

    Layout: entries live under [root/<hh>/<digest>] where [<digest>] is
    the MD5 of ["<table-name>\x00<key>"] and [<hh>] its first two hex
    characters — 256 shards, each guarded by its own lock so concurrent
    domains never serialize on unrelated keys.  Records carry a
    versioned magic line ([subscale-store/1]) plus the full table name
    and key, so a hash collision reads back as a miss rather than a
    wrong answer.

    Writes are write-behind: {!add} enqueues, and the queue drains to
    disk when it reaches a small threshold, on {!flush}, and on
    {!close}.  Each record lands via write-to-temp + [rename], so a
    crash mid-write never leaves a torn record — readers see either the
    old entry or the new one.

    Values cross the disk boundary through a {!codec}.  The float
    codecs encode IEEE-754 bits as hex (same convention as
    {!Key.float}), so NaN payloads and [-0.] round-trip bit-exactly. *)

type t

type 'a codec = {
  encode : 'a -> string;
  decode : string -> 'a option;
      (** [None] on malformed or version-skewed payloads — treated as a
          cache miss, never an error. *)
}

val open_store : ?flush_threshold:int -> dir:string -> unit -> t
(** Open (creating if needed) a store rooted at [dir].  Writes a
    version stamp on first use and refuses roots stamped by an
    incompatible format with [Failure].  [flush_threshold] is the
    number of pending write-behind records that triggers a drain
    (default 16; [1] makes every {!add} synchronous). *)

val find : t -> name:string -> key:string -> string option
(** Look up the encoded payload for [key] in table [name].  Consults
    the pending write-behind queue before the disk, so a store never
    misses its own recent {!add}. *)

val add : t -> name:string -> key:string -> string -> unit
(** Enqueue [key -> payload] for table [name]; drains to disk once the
    pending queue reaches the flush threshold.  Last write wins for
    duplicate keys. *)

val flush : t -> unit
(** Drain all pending writes to disk now. *)

val close : t -> unit
(** Mark the handle closed — exactly one caller wins even under
    concurrent closes — then drain the pending queue; later
    {!add}/{!find} on a closed store raise [Failure]. *)

val dir : t -> string

val entry_count : t -> int
(** Number of records on disk (walks the shard directories). *)

(** {2 Counters} — cumulative over the handle's lifetime. *)

val hits : t -> int
val misses : t -> int

val writes : t -> int
(** Records written to disk (one per drained queue entry). *)

val flushes : t -> int
(** Write-behind batches drained to disk — by threshold, {!flush} or
    {!close}.  A growing {!pending} with a flat flush count is the
    signature of a stuck write-behind. *)

val pending : t -> int
(** Records currently queued, not yet on disk. *)

(** {2 Codecs} *)

val float_codec : float codec
(** One float, as 16 hex chars of its IEEE-754 bits. *)

val floats_codec : float array codec
(** A float array, length-prefixed, each element bit-exact. *)

val string_codec : string codec
