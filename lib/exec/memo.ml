(* Content-addressed memoization with hit/miss accounting.

   A table maps a canonical key (built with {!Key}) to a computed value.
   Tables are safe to query from any domain: lookups and insertions hold a
   per-table mutex, but the user computation runs outside it, so two
   domains that miss the same key concurrently both compute — the first
   insertion wins and, because memoized functions must be pure, the values
   are identical, so results stay deterministic either way.

   Every table registers itself in a process-wide registry so the test
   harness can reset the world ([clear_all]) and the bench can report
   cache effectiveness ([stats]).  The registry is keyed by table name:
   re-creating a table replaces its entry rather than pinning the dropped
   table forever through its closures, so a daemon that builds scoped
   tables holds the registry at a constant size.

   Audit mode ([set_audit] / [with_audit]) turns every cache hit into a
   shadow recompute: the memoized thunk runs again and its fresh value is
   compared against the cached one with the table's equality.  A mismatch
   means the key failed to capture an input the computation depends on —
   the stale-cache hazard the [subscale audit --memo] pass reports as
   AUD012.  The cached value is still returned, so behaviour under audit
   differs only in time. *)

type stats = {
  name : string;
  hits : int;
  misses : int;
  size : int;
  store_hits : int;
}

(* The persistent tier, attached after creation so the store handle's
   lifetime (open/close) stays with the daemon, not the table. *)
type 'a tier = { store : Store.t; codec : 'a Store.codec }

type 'a t = {
  name : string;
  id : int; (* unique per [create]; guards the registry against ABA *)
  tbl : (string, 'a) Hashtbl.t;
  lock : Mutex.t;
  equal : 'a -> 'a -> bool;
  mutable hits : int;
  mutable misses : int;
  mutable store_hits : int;
  mutable store : 'a tier option;
  (* Process-wide mirrors of the per-table counts above.  Two tables
     created with the same name share one mirror (the obs registry is
     keyed by name), so the per-table fields — which tests reset between
     cases — remain the source of truth for [stats]. *)
  obs_hits : Obs.Metrics.counter;
  obs_misses : Obs.Metrics.counter;
}

(* Structural equality via the polymorphic total order, except values
   containing functional components (e.g. closures captured in result
   records) compare as equal — the audit cannot inspect them, and
   flagging every such hit would drown the signal.  [compare] rather
   than [=] because [compare nan nan = 0] while [nan = nan] is false: a
   cached NaN sentinel must match its bit-identical shadow recompute
   instead of firing a spurious AUD012. *)
let default_equal a b = try compare a b = 0 with Invalid_argument _ -> true

type reg_entry = { reg_id : int; clear_fn : unit -> unit; stats_fn : unit -> stats }

let registry : (string, reg_entry) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()
let next_id = Atomic.make 0

let registry_size () =
  Mutex.lock registry_lock;
  let n = Hashtbl.length registry in
  Mutex.unlock registry_lock;
  n

(* Scoped bypass: while the depth is positive, [find_or_compute] neither
   reads nor writes any table.  Used by benches that must time the raw
   solve, not a cache hit. *)
let disabled_depth = Atomic.make 0

let disabled f =
  Atomic.incr disabled_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr disabled_depth) f

let enabled () = Atomic.get disabled_depth = 0

(* Audit mode: shadow-recompute on every hit, record mismatches.  The
   violation list is bounded — a daemon with a bad key would otherwise
   accumulate one entry per hit for the life of the process; beyond the
   cap we keep only a count of what was dropped. *)
let audit_mode = Atomic.make false
let max_violations = 256
let violations : (string * string) list ref = ref []
let violations_count = ref 0
let violations_dropped = ref 0
let violations_lock = Mutex.create ()

let set_audit on = Atomic.set audit_mode on
let auditing () = Atomic.get audit_mode

let audit_violations () =
  Mutex.lock violations_lock;
  let v = List.rev !violations in
  Mutex.unlock violations_lock;
  v

let audit_violations_dropped () =
  Mutex.lock violations_lock;
  let n = !violations_dropped in
  Mutex.unlock violations_lock;
  n

let clear_audit_violations () =
  Mutex.lock violations_lock;
  violations := [];
  violations_count := 0;
  violations_dropped := 0;
  Mutex.unlock violations_lock

let with_audit f =
  Atomic.set audit_mode true;
  Fun.protect ~finally:(fun () -> Atomic.set audit_mode false) f

let record_violation name key =
  Mutex.lock violations_lock;
  if !violations_count < max_violations then begin
    violations := (name, key) :: !violations;
    incr violations_count
  end
  else incr violations_dropped;
  Mutex.unlock violations_lock

let create ?(equal = default_equal) ~name () =
  let t =
    {
      name;
      id = Atomic.fetch_and_add next_id 1;
      tbl = Hashtbl.create 64;
      lock = Mutex.create ();
      equal;
      hits = 0;
      misses = 0;
      store_hits = 0;
      store = None;
      obs_hits = Obs.Metrics.counter ("memo." ^ name ^ ".hits");
      obs_misses = Obs.Metrics.counter ("memo." ^ name ^ ".misses");
    }
  in
  let clear_fn () =
    Mutex.lock t.lock;
    Hashtbl.reset t.tbl;
    t.hits <- 0;
    t.misses <- 0;
    t.store_hits <- 0;
    Mutex.unlock t.lock
  in
  let stats_fn () =
    Mutex.lock t.lock;
    let s =
      {
        name = t.name;
        hits = t.hits;
        misses = t.misses;
        size = Hashtbl.length t.tbl;
        store_hits = t.store_hits;
      }
    in
    Mutex.unlock t.lock;
    s
  in
  Mutex.lock registry_lock;
  (* Hashtbl.replace, not add: a re-created table takes over its name's
     slot, releasing the dropped table's closures (and the Hashtbl they
     pin) to the GC, and keeping [stats ()] one-row-per-name. *)
  Hashtbl.replace registry name { reg_id = t.id; clear_fn; stats_fn };
  Mutex.unlock registry_lock;
  t

let unregister t =
  Mutex.lock registry_lock;
  (match Hashtbl.find_opt registry t.name with
  | Some entry when entry.reg_id = t.id -> Hashtbl.remove registry t.name
  | Some _ | None ->
    (* a newer table took the name, or it's already gone: nothing to do *)
    ());
  Mutex.unlock registry_lock

let attach_store t ~store ~codec =
  Mutex.lock t.lock;
  t.store <- Some { store; codec };
  Mutex.unlock t.lock

let detach_store t =
  Mutex.lock t.lock;
  t.store <- None;
  Mutex.unlock t.lock

(* Persistent-tier lookup on memo miss.  Decode failures (format skew,
   truncated payload) are misses, never errors: the worst outcome of a
   bad cache file is a recompute. *)
let store_find : type a. a t -> a tier -> key:string -> a option =
 fun t tier ~key ->
  match Store.find tier.store ~name:t.name ~key with
  | None -> None
  | Some payload -> tier.codec.Store.decode payload

let find_or_compute t ~key f =
  if not (enabled ()) then f ()
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Obs.Metrics.incr t.obs_hits;
      if Atomic.get audit_mode then begin
        let fresh = f () in
        if not (t.equal v fresh) then record_violation t.name key
      end;
      v
    | None -> (
      let tier = t.store in
      Mutex.unlock t.lock;
      match Option.bind tier (fun tier -> store_find t tier ~key) with
      | Some v ->
        Mutex.lock t.lock;
        t.store_hits <- t.store_hits + 1;
        if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
        Mutex.unlock t.lock;
        Obs.Metrics.incr t.obs_hits;
        if Atomic.get audit_mode then begin
          let fresh = f () in
          if not (t.equal v fresh) then record_violation t.name key
        end;
        v
      | None ->
        Mutex.lock t.lock;
        t.misses <- t.misses + 1;
        Mutex.unlock t.lock;
        Obs.Metrics.incr t.obs_misses;
        (* A span per miss shows where compute time actually goes; hits are
           counter-only — a span per hit would flood the trace buffer. *)
        let v = Obs.Trace.with_span ~cat:"memo" ("memo." ^ t.name) f in
        Mutex.lock t.lock;
        if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
        Mutex.unlock t.lock;
        (match tier with
        | Some tier -> Store.add tier.store ~name:t.name ~key (tier.codec.Store.encode v)
        | None -> ());
        v)
  end

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let store_hits t =
  Mutex.lock t.lock;
  let h = t.store_hits in
  Mutex.unlock t.lock;
  h

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  t.store_hits <- 0;
  Mutex.unlock t.lock

let clear_all () =
  Mutex.lock registry_lock;
  let clears = Hashtbl.fold (fun _ e acc -> e.clear_fn :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter (fun clear -> clear ()) clears

let stats () =
  Mutex.lock registry_lock;
  let fns = Hashtbl.fold (fun _ e acc -> e.stats_fn :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a : stats) (b : stats) -> compare a.name b.name)
    (List.map (fun f -> f ()) fns)
