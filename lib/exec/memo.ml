(* Content-addressed memoization with hit/miss accounting.

   A table maps a canonical key (built with {!Key}) to a computed value.
   Tables are safe to query from any domain: lookups and insertions hold a
   per-table mutex, but the user computation runs outside it, so two
   domains that miss the same key concurrently both compute — the first
   insertion wins and, because memoized functions must be pure, the values
   are identical, so results stay deterministic either way.

   Every table registers itself in a process-wide registry so the test
   harness can reset the world ([clear_all]) and the bench can report
   cache effectiveness ([stats]).

   Audit mode ([set_audit] / [with_audit]) turns every cache hit into a
   shadow recompute: the memoized thunk runs again and its fresh value is
   compared against the cached one with the table's equality.  A mismatch
   means the key failed to capture an input the computation depends on —
   the stale-cache hazard the [subscale audit --memo] pass reports as
   AUD012.  The cached value is still returned, so behaviour under audit
   differs only in time. *)

type stats = { name : string; hits : int; misses : int; size : int }

type 'a t = {
  name : string;
  tbl : (string, 'a) Hashtbl.t;
  lock : Mutex.t;
  equal : 'a -> 'a -> bool;
  mutable hits : int;
  mutable misses : int;
  (* Process-wide mirrors of the per-table counts above.  Two tables
     created with the same name share one mirror (the obs registry is
     keyed by name), so the per-table fields — which tests reset between
     cases — remain the source of truth for [stats]. *)
  obs_hits : Obs.Metrics.counter;
  obs_misses : Obs.Metrics.counter;
}

(* Structural equality, except values containing functional components
   (e.g. closures captured in result records) compare as equal — the audit
   cannot inspect them, and flagging every such hit would drown the signal. *)
let default_equal a b = try a = b with Invalid_argument _ -> true

let registry : (unit -> unit) list ref = ref []
let registry_stats : (unit -> stats) list ref = ref []
let registry_lock = Mutex.create ()

(* Scoped bypass: while the depth is positive, [find_or_compute] neither
   reads nor writes any table.  Used by benches that must time the raw
   solve, not a cache hit. *)
let disabled_depth = Atomic.make 0

let disabled f =
  Atomic.incr disabled_depth;
  Fun.protect ~finally:(fun () -> Atomic.decr disabled_depth) f

let enabled () = Atomic.get disabled_depth = 0

(* Audit mode: shadow-recompute on every hit, record mismatches. *)
let audit_mode = Atomic.make false
let violations : (string * string) list ref = ref []
let violations_lock = Mutex.create ()

let set_audit on = Atomic.set audit_mode on
let auditing () = Atomic.get audit_mode

let audit_violations () =
  Mutex.lock violations_lock;
  let v = List.rev !violations in
  Mutex.unlock violations_lock;
  v

let clear_audit_violations () =
  Mutex.lock violations_lock;
  violations := [];
  Mutex.unlock violations_lock

let with_audit f =
  Atomic.set audit_mode true;
  Fun.protect ~finally:(fun () -> Atomic.set audit_mode false) f

let record_violation name key =
  Mutex.lock violations_lock;
  violations := (name, key) :: !violations;
  Mutex.unlock violations_lock

let create ?(equal = default_equal) ~name () =
  let t =
    {
      name;
      tbl = Hashtbl.create 64;
      lock = Mutex.create ();
      equal;
      hits = 0;
      misses = 0;
      obs_hits = Obs.Metrics.counter ("memo." ^ name ^ ".hits");
      obs_misses = Obs.Metrics.counter ("memo." ^ name ^ ".misses");
    }
  in
  let clear () =
    Mutex.lock t.lock;
    Hashtbl.reset t.tbl;
    t.hits <- 0;
    t.misses <- 0;
    Mutex.unlock t.lock
  in
  let stats () =
    Mutex.lock t.lock;
    let s = { name = t.name; hits = t.hits; misses = t.misses; size = Hashtbl.length t.tbl } in
    Mutex.unlock t.lock;
    s
  in
  Mutex.lock registry_lock;
  registry := clear :: !registry;
  registry_stats := stats :: !registry_stats;
  Mutex.unlock registry_lock;
  t

let find_or_compute t ~key f =
  if not (enabled ()) then f ()
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Obs.Metrics.incr t.obs_hits;
      if Atomic.get audit_mode then begin
        let fresh = f () in
        if not (t.equal v fresh) then record_violation t.name key
      end;
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Obs.Metrics.incr t.obs_misses;
      (* A span per miss shows where compute time actually goes; hits are
         counter-only — a span per hit would flood the trace buffer. *)
      let v = Obs.Trace.with_span ~cat:"memo" ("memo." ^ t.name) f in
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
      Mutex.unlock t.lock;
      v
  end

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock

let clear_all () =
  Mutex.lock registry_lock;
  let clears = !registry in
  Mutex.unlock registry_lock;
  List.iter (fun clear -> clear ()) clears

let stats () =
  Mutex.lock registry_lock;
  let fns = !registry_stats in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a : stats) (b : stats) -> compare a.name b.name)
    (List.map (fun f -> f ()) fns)
