(** Exec: deterministic parallel execution and content-addressed
    memoization.

    - {!Pool} — a fixed-size domain pool whose [map] preserves input order
      and propagates exceptions exactly like [List.map];
    - {!Memo} — memo tables keyed by canonical content keys, with hit/miss
      accounting, used to share device characterizations across sweep
      points and across experiments;
    - {!Key} — the canonical (bit-exact) key encodings.

    The module also owns the process-wide parallelism configuration: the
    job count comes from [set_jobs] (the CLI's [--jobs]), else from the
    [SUBSCALE_JOBS] environment variable, else from
    [Domain.recommended_domain_count ()].  [map] is a drop-in for
    [List.map] that fans out over the shared pool; with one job it *is*
    [List.map] (no domain is ever spawned), and nested calls — a mapped
    task that itself calls [map] — run sequentially instead of deadlocking
    or oversubscribing, so results never depend on nesting depth. *)

module Pool = Pool
module Memo = Memo
module Key = Key
module Store = Store

let default_jobs () =
  match Sys.getenv_opt "SUBSCALE_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let config_lock = Mutex.create ()
let configured_jobs = ref None
let shared_pool = ref None

let jobs () =
  Mutex.lock config_lock;
  let n =
    match !configured_jobs with
    | Some n -> n
    | None ->
      let n = default_jobs () in
      configured_jobs := Some n;
      n
  in
  Mutex.unlock config_lock;
  n

let set_jobs n =
  if n < 1 then invalid_arg "Exec.set_jobs: need at least one job";
  Mutex.lock config_lock;
  let old_pool =
    if !configured_jobs <> Some n then begin
      let p = !shared_pool in
      shared_pool := None;
      configured_jobs := Some n;
      p
    end
    else None
  in
  Mutex.unlock config_lock;
  Option.iter Pool.shutdown old_pool

let get_pool n =
  (* Pool.create spawns domains and can raise; Pool.shutdown joins them
     and can block.  Neither belongs inside the critical section: swap
     the pool reference under the lock, construct and tear down outside
     it. *)
  let stale = ref None in
  let pool =
    Mutex.protect config_lock (fun () ->
        match !shared_pool with
        | Some p when Pool.domains p = n -> p
        | (Some _ | None) as old ->
          let p = Pool.create ~domains:n in
          stale := old;
          shared_pool := Some p;
          p)
  in
  Option.iter Pool.shutdown !stale;
  pool

(* One fan-out at a time: a [map] issued while another is in flight (in
   particular from inside a mapped task) falls back to [List.map].  This
   keeps nesting deadlock-free and the domain count bounded at [jobs]. *)
let busy = Atomic.make false

(* Schedule perturbation (the [subscale audit --schedules] harness): with a
   seed installed, every fan-out executes its items in a deterministic
   pseudo-random permutation of the input order — in the pool (workers claim
   permuted indices) and in the sequential fallbacks alike.  Outputs must be
   bit-exact across seeds; a diff convicts hidden order dependence (shared
   mutable state, accumulation-order sensitivity) that order-preserving
   golden tests can never see. *)
let schedule_seed_ref = ref None

let set_schedule_seed s =
  Mutex.lock config_lock;
  schedule_seed_ref := s;
  Mutex.unlock config_lock

let schedule_seed () =
  Mutex.lock config_lock;
  let s = !schedule_seed_ref in
  Mutex.unlock config_lock;
  s

let permutation ~seed n =
  let st = Random.State.make [| 0x5ca1ab1e; seed; n |] in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let seq_map_ordered order f arr =
  let results = Array.make (Array.length arr) None in
  Array.iter (fun i -> results.(i) <- Some (f arr.(i))) order;
  Array.to_list (Array.map Option.get results)

(* Spans wrap only the genuine fan-outs (the pool paths); the sequential
   fallbacks — one job, nested maps — would flood the trace with List.map
   noise. *)
let fan_out ?order ~jobs:n xs f =
  Obs.Trace.with_span ~cat:"exec"
    ~attrs:[ ("items", Obs.Trace.I (List.length xs)); ("jobs", Obs.Trace.I n) ]
    "exec.map"
    (fun () -> Pool.map ?order (get_pool n) xs f)

let map f xs =
  let n = jobs () in
  match schedule_seed () with
  | None ->
    if n <= 1 then List.map f xs
    else if Atomic.compare_and_set busy false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set busy false)
        (fun () -> fan_out ~jobs:n xs f)
    else List.map f xs
  | Some seed ->
    let arr = Array.of_list xs in
    let len = Array.length arr in
    if len <= 1 then List.map f xs
    else begin
      let order = permutation ~seed len in
      if n <= 1 then seq_map_ordered order f arr
      else if Atomic.compare_and_set busy false true then
        Fun.protect
          ~finally:(fun () -> Atomic.set busy false)
          (fun () -> fan_out ~order ~jobs:n xs f)
      else seq_map_ordered order f arr
    end

let map2 f xs ys =
  if List.length xs <> List.length ys then invalid_arg "Exec.map2: length mismatch";
  map (fun (x, y) -> f x y) (List.combine xs ys)

let mapi f xs = map (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let map_array f arr = Array.of_list (map f (Array.to_list arr))
