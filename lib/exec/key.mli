(** Canonical content keys for the memo tables.

    A key is a collision-free textual encoding of a value: floats are
    rendered as the hex of their IEEE-754 bit pattern (so [0.25] and
    [0.25 +. 1e-17] produce different keys, and [-0.0] differs from
    [0.0]), and composite encodings carry field names, so two records
    that happen to hold the same floats in different fields never share
    a key. *)

val float : float -> string
(** Bit-exact: the hex of the IEEE-754 representation. *)

val int : int -> string
val bool : bool -> string

val string : string -> string
(** Length-prefixed so that embedded separators cannot alias. *)

val option : ('a -> string) -> 'a option -> string
val list : ('a -> string) -> 'a list -> string
val pair : ('a -> string) -> ('b -> string) -> 'a * 'b -> string

val fields : string -> (string * string) list -> string
(** A named record: [fields "physical" [("lpoly", ...); ...]].  The field
    names listed here are exactly what the memo-soundness auditor
    cross-checks against traced parameter reads. *)
