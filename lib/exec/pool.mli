(** A fixed-size pool of OCaml 5 domains with a deterministic,
    order-preserving [map].

    Scheduling is self-service over a shared bag: each call to [map]
    publishes one job; every worker — and the calling domain itself —
    repeatedly steals the next unclaimed index with a single atomic
    fetch-and-add and writes its result into a dedicated slot.  Because
    every item owns a slot, the output order is the input order no matter
    which domain ran what, and a run with N domains is observationally
    identical to [List.map]. *)

type t

val create : domains:int -> t
(** [domains] total lanes; the caller participates in every [map], so
    only [domains - 1] worker domains are spawned ([~domains:1] spawns
    none: the pool degenerates to a pure-sequential [List.map]). *)

val domains : t -> int
val spawned : t -> int

val map : ?order:int array -> t -> 'a list -> ('a -> 'b) -> 'b list
(** Parallel map preserving input order.  A raising task stops the
    distribution of further indices, every already-claimed item still
    completes, and the exception of the lowest raising index is
    re-raised; the pool survives for the next [map].

    [order], a permutation of [0 .. n-1], makes the claim of slot [i]
    execute item [order.(i)] instead — the schedule-perturbation audit's
    lever.  Results still land in per-item slots, so the output is
    identical for every permutation. *)

val shutdown : t -> unit
(** Join all workers.  Idempotent; a [map] on a shut-down pool raises. *)
