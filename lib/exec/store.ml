(* Persistent content-addressed tier behind Memo.  See store.mli for the
   on-disk layout and durability contract. *)

type 'a codec = { encode : 'a -> string; decode : string -> 'a option }

let magic = "subscale-store/1"
let shards = 256

type t = {
  dir : string;
  flush_threshold : int;
  locks : Mutex.t array; (* one per shard directory *)
  pending : (string * string, string) Hashtbl.t; (* (name, key) -> payload *)
  pending_lock : Mutex.t;
  closed : bool Atomic.t; (* read unlocked by check_open on every operation *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  writes : int Atomic.t;
  flushes : int Atomic.t; (* drained write-behind batches *)
}

(* Process-wide counter for unique temp-file names; the pid component
   keeps two processes sharing a cache directory from colliding. *)
let tmp_seq = Atomic.make 0

let check_open t ~ctx =
  if Atomic.get t.closed then
    failwith (Printf.sprintf "Store.%s: store %s is closed" ctx t.dir)

(* --- paths ------------------------------------------------------------ *)

let digest ~name ~key = Digest.to_hex (Digest.string (name ^ "\x00" ^ key))

let shard_of_digest hex = int_of_string ("0x" ^ String.sub hex 0 2)

let shard_dir t hex = Filename.concat t.dir (String.sub hex 0 2)

let entry_path t hex = Filename.concat (shard_dir t hex) hex

let mkdir_p path =
  if not (Sys.file_exists path) then
    match Sys.mkdir path 0o755 with
    | () -> ()
    | exception Sys_error _ when Sys.file_exists path ->
      (* lost a create race to another domain/process: fine *)
      ()

(* --- record format ---------------------------------------------------- *)

(* magic \n, then three length-prefixed sections (name, key, value):
   "<decimal length>\n<bytes>\n".  The name and key are stored in full so
   an MD5 collision decodes as a miss, never as a wrong answer. *)

let encode_record ~name ~key payload =
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf '\n';
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    [ name; key; payload ];
  Buffer.contents buf

let decode_record text =
  let n = String.length text in
  let section pos =
    match String.index_from_opt text pos '\n' with
    | None -> None
    | Some nl -> (
      match int_of_string_opt (String.sub text pos (nl - pos)) with
      | Some len when len >= 0 && nl + 1 + len < n && text.[nl + 1 + len] = '\n' ->
        Some (String.sub text (nl + 1) len, nl + 2 + len)
      | Some _ | None -> None)
  in
  let ml = String.length magic in
  if n < ml + 1 || String.sub text 0 ml <> magic || text.[ml] <> '\n' then None
  else
    match section (ml + 1) with
    | None -> None
    | Some (name, p1) -> (
      match section p1 with
      | None -> None
      | Some (key, p2) -> (
        match section p2 with
        | Some (payload, p3) when p3 = n -> Some (name, key, payload)
        | Some _ | None -> None))

(* --- disk I/O (caller holds the shard lock) --------------------------- *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Some text
  | exception Sys_error _ -> None

(* IO under the shard lock is the design: the lock serializes same-shard
   writers around the tmp-write + rename pair. *)
let[@blocking_ok] write_entry t ~name ~key payload =
  let hex = digest ~name ~key in
  let dir = shard_dir t hex in
  mkdir_p dir;
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s.tmp.%d.%d" hex (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1))
  in
  let lock = t.locks.(shard_of_digest hex) in
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc (encode_record ~name ~key payload));
      Sys.rename tmp (entry_path t hex));
  Atomic.incr t.writes

let[@blocking_ok] read_entry t ~name ~key =
  let hex = digest ~name ~key in
  let path = entry_path t hex in
  let lock = t.locks.(shard_of_digest hex) in
  Mutex.lock lock;
  let text =
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> read_file path)
  in
  match text with
  | None -> None
  | Some text -> (
    match decode_record text with
    | Some (name', key', payload) when name' = name && key' = key -> Some payload
    | Some _ | None ->
      (* hash collision or torn/foreign record: a miss, not an error *)
      None)

(* --- write-behind queue ----------------------------------------------- *)

let drain t batch =
  if batch <> [] then begin
    List.iter (fun ((name, key), payload) -> write_entry t ~name ~key payload) batch;
    Atomic.incr t.flushes
  end

let take_pending t =
  Mutex.protect t.pending_lock (fun () ->
      let batch = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pending [] in
      Hashtbl.reset t.pending;
      batch)

let flush t =
  check_open t ~ctx:"flush";
  drain t (take_pending t)

let add t ~name ~key payload =
  check_open t ~ctx:"add";
  let n =
    Mutex.protect t.pending_lock (fun () ->
        Hashtbl.replace t.pending (name, key) payload;
        Hashtbl.length t.pending)
  in
  if n >= t.flush_threshold then drain t (take_pending t)

let find t ~name ~key =
  check_open t ~ctx:"find";
  let queued =
    Mutex.protect t.pending_lock (fun () -> Hashtbl.find_opt t.pending (name, key))
  in
  let found =
    match queued with Some _ as v -> v | None -> read_entry t ~name ~key
  in
  (match found with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  found

let close t =
  (* exchange claims the close exactly once even under concurrent calls *)
  if not (Atomic.exchange t.closed true) then drain t (take_pending t)

(* --- lifecycle -------------------------------------------------------- *)

let version_path dir = Filename.concat dir "VERSION"

let stamp_version dir =
  let path = version_path dir in
  match In_channel.with_open_bin path In_channel.input_all with
  | stamp ->
    let stamp = String.trim stamp in
    if stamp <> magic then
      failwith
        (Printf.sprintf "Store.open_store: %s is stamped %S, want %S" dir stamp magic)
  | exception Sys_error _ ->
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (magic ^ "\n"))

let open_store ?(flush_threshold = 16) ~dir () =
  if flush_threshold < 1 then
    invalid_arg
      (Printf.sprintf "Store.open_store: flush_threshold = %d, need >= 1" flush_threshold);
  mkdir_p dir;
  stamp_version dir;
  let t =
    {
      dir;
      flush_threshold;
      locks = Array.init shards (fun _ -> Mutex.create ());
      pending = Hashtbl.create 32;
      pending_lock = Mutex.create ();
      closed = Atomic.make false;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      writes = Atomic.make 0;
      flushes = Atomic.make 0;
    }
  in
  (* Pending records must survive a normal exit even if the caller never
     reaches close; a failing disk at exit is not worth a crash. *)
  at_exit (fun () ->
      if not (Atomic.get t.closed) then
        match close t with () -> () | exception Sys_error _ -> ());
  t

let dir t = t.dir

let entry_count t =
  let count = ref 0 in
  let subdirs = match Sys.readdir t.dir with a -> a | exception Sys_error _ -> [||] in
  Array.iter
    (fun sub ->
      let path = Filename.concat t.dir sub in
      if String.length sub = 2 && Sys.is_directory path then
        Array.iter
          (fun entry ->
            if not (String.contains entry '.') then incr count)
          (match Sys.readdir path with a -> a | exception Sys_error _ -> [||]))
    subdirs;
  !count

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let writes t = Atomic.get t.writes
let flushes t = Atomic.get t.flushes

let pending t = Mutex.protect t.pending_lock (fun () -> Hashtbl.length t.pending)

(* --- codecs ----------------------------------------------------------- *)

(* Same convention as Key.float: 16 hex chars of the IEEE-754 bits, so
   NaN and -0. round-trip bit-exactly. *)
let float_hex f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_unhex s =
  if String.length s = 16 then
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Some (Int64.float_of_bits bits)
    | None -> None
  else None

let float_codec = { encode = float_hex; decode = float_unhex }

let floats_codec =
  {
    encode =
      (fun a ->
        let buf = Buffer.create ((Array.length a * 17) + 8) in
        Buffer.add_string buf (string_of_int (Array.length a));
        Array.iter
          (fun f ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (float_hex f))
          a;
        Buffer.contents buf);
    decode =
      (fun s ->
        match String.split_on_char ' ' s with
        | [] -> None
        | len :: rest -> (
          match int_of_string_opt len with
          | Some n when n >= 0 && n = List.length rest ->
            let out = Array.make n 0.0 in
            let ok = ref true in
            List.iteri
              (fun i hex ->
                match float_unhex hex with
                | Some f -> out.(i) <- f
                | None -> ok := false)
              rest;
            if !ok then Some out else None
          | Some _ | None -> None));
  }

let string_codec = { encode = Fun.id; decode = (fun s -> Some s) }
