(** Content-addressed memoization with hit/miss accounting.

    A table maps a canonical key (built with {!Key}) to a computed value.
    Tables are safe to query from any domain: lookups and insertions hold
    a per-table mutex, but the user computation runs outside it, so two
    domains that miss the same key concurrently both compute — the first
    insertion wins and, because memoized functions must be pure, the
    values are identical, so results stay deterministic either way. *)

type 'a t

type stats = { name : string; hits : int; misses : int; size : int }

val create : ?equal:('a -> 'a -> bool) -> name:string -> unit -> 'a t
(** A fresh table, registered process-wide for {!clear_all} / {!stats}.
    [equal] is only consulted by the audit shadow recompute; it defaults
    to structural equality, with values that cannot be compared
    structurally (captured closures) treated as equal. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached value for [key], or run the thunk, cache and return
    its result.  The thunk runs outside the table lock. *)

val hits : 'a t -> int
val misses : 'a t -> int
val size : 'a t -> int
val clear : 'a t -> unit

val clear_all : unit -> unit
(** Reset every table in the process (test/bench isolation). *)

val stats : unit -> stats list
(** Per-table counters, sorted by table name. *)

(** {2 Scoped bypass} *)

val disabled : (unit -> 'a) -> 'a
(** Run with all memoization off: [find_or_compute] neither reads nor
    writes any table.  Used by benches that must time the raw solve. *)

val enabled : unit -> bool

(** {2 Audit mode}

    With auditing on, every cache {e hit} triggers a shadow recompute:
    the memoized thunk runs again and its fresh value is compared against
    the cached one with the table's [equal].  A mismatch means the key
    failed to capture an input the computation depends on — the
    stale-cache hazard [subscale audit --memo] reports as AUD012.  The
    cached value is still returned, so behaviour under audit differs only
    in time. *)

val set_audit : bool -> unit
val auditing : unit -> bool

val with_audit : (unit -> 'a) -> 'a
(** Run with auditing on, restoring it to off afterwards. *)

val audit_violations : unit -> (string * string) list
(** [(table name, key)] of every shadow-recompute mismatch recorded since
    the last {!clear_audit_violations}, in detection order. *)

val clear_audit_violations : unit -> unit
