(** Content-addressed memoization with hit/miss accounting.

    A table maps a canonical key (built with {!Key}) to a computed value.
    Tables are safe to query from any domain: lookups and insertions hold
    a per-table mutex, but the user computation runs outside it, so two
    domains that miss the same key concurrently both compute — the first
    insertion wins and, because memoized functions must be pure, the
    values are identical, so results stay deterministic either way. *)

type 'a t

type stats = {
  name : string;
  hits : int;  (** in-memory hits *)
  misses : int;  (** full misses: computed *)
  size : int;
  store_hits : int;  (** answered from the persistent tier *)
}
(** Per-lookup accounting: every [find_or_compute] call lands in exactly
    one of [hits], [store_hits] or [misses]. *)

val create : ?equal:('a -> 'a -> bool) -> name:string -> unit -> 'a t
(** A fresh table, registered process-wide for {!clear_all} / {!stats}.
    The registry is keyed by [name]: re-creating a table replaces the
    previous entry, so dropped tables are not pinned by their
    registered closures and [stats ()] reports one row per name.
    [equal] is only consulted by the audit shadow recompute; it defaults
    to comparison via the polymorphic total order (so NaN payloads
    compare equal to themselves), with values that cannot be compared
    structurally (captured closures) treated as equal. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached value for [key] — from memory, else from the
    attached persistent tier — or run the thunk, cache (and write
    behind) and return its result.  The thunk runs outside the table
    lock. *)

val hits : 'a t -> int
val misses : 'a t -> int

val store_hits : 'a t -> int
(** Lookups answered by the persistent tier (a memory miss that the
    store satisfied). *)

val size : 'a t -> int
val clear : 'a t -> unit

val unregister : 'a t -> unit
(** Drop [t]'s registry entry so {!clear_all}/{!stats} stop seeing it.
    A no-op if a newer table has already taken over the name. *)

val clear_all : unit -> unit
(** Reset every registered table in the process (test/bench isolation). *)

val stats : unit -> stats list
(** Per-table counters, sorted by table name; one row per registered
    name. *)

val registry_size : unit -> int
(** Number of registered tables (daemon leak check). *)

(** {2 Persistent tier}

    A table may be backed by an on-disk {!Store}: memo misses consult
    the store before computing, and computed values are written behind.
    The store handle's lifetime stays with the caller — detach (or
    {!Store.close}) when done. *)

val attach_store : 'a t -> store:Store.t -> codec:'a Store.codec -> unit
val detach_store : 'a t -> unit

(** {2 Scoped bypass} *)

val disabled : (unit -> 'a) -> 'a
(** Run with all memoization off: [find_or_compute] neither reads nor
    writes any table.  Used by benches that must time the raw solve. *)

val enabled : unit -> bool

(** {2 Audit mode}

    With auditing on, every cache {e hit} triggers a shadow recompute:
    the memoized thunk runs again and its fresh value is compared against
    the cached one with the table's [equal].  A mismatch means the key
    failed to capture an input the computation depends on — the
    stale-cache hazard [subscale audit --memo] reports as AUD012.  The
    cached value is still returned, so behaviour under audit differs only
    in time. *)

val set_audit : bool -> unit
val auditing : unit -> bool

val with_audit : (unit -> 'a) -> 'a
(** Run with auditing on, restoring it to off afterwards. *)

val audit_violations : unit -> (string * string) list
(** [(table name, key)] of every shadow-recompute mismatch recorded since
    the last {!clear_audit_violations}, in detection order.  Bounded: at
    most 256 entries are kept; the overflow is counted in
    {!audit_violations_dropped}. *)

val audit_violations_dropped : unit -> int
(** Mismatches discarded because the violation list was full. *)

val clear_audit_violations : unit -> unit
(** Empty the violation list and reset the dropped count. *)
