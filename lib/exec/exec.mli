(** Exec: deterministic parallel execution and content-addressed
    memoization.

    - {!Pool} — a fixed-size domain pool whose [map] preserves input order
      and propagates exceptions exactly like [List.map];
    - {!Memo} — memo tables keyed by canonical content keys, with hit/miss
      accounting, used to share device characterizations across sweep
      points and across experiments;
    - {!Key} — the canonical (bit-exact) key encodings.

    The module also owns the process-wide parallelism configuration: the
    job count comes from [set_jobs] (the CLI's [--jobs]), else from the
    [SUBSCALE_JOBS] environment variable, else from
    [Domain.recommended_domain_count ()].  [map] is a drop-in for
    [List.map] that fans out over the shared pool; with one job it {e is}
    [List.map] (no domain is ever spawned), and nested calls — a mapped
    task that itself calls [map] — run sequentially instead of
    deadlocking or oversubscribing, so results never depend on nesting
    depth. *)

module Pool = Pool
module Memo = Memo
module Key = Key
module Store = Store

val jobs : unit -> int
(** The configured fan-out width (resolving the default on first use). *)

val set_jobs : int -> unit
(** Override the job count; shuts down any previously sized pool. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Drop-in parallel [List.map]; order-preserving, exception-faithful. *)

val map2 : ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list
val mapi : (int -> 'a -> 'b) -> 'a list -> 'b list
val map_array : ('a -> 'b) -> 'a array -> 'b array

(** {2 Schedule perturbation}

    With a seed installed, every [map] executes its items in a
    deterministic pseudo-random permutation of the input order — inside
    the pool (workers claim permuted indices) and in the sequential
    fallbacks alike.  Outputs must be bit-exact across seeds; a diff
    convicts hidden order dependence (shared mutable state,
    accumulation-order sensitivity) that order-preserving golden tests
    can never see.  [subscale audit --schedules N] sweeps N seeds. *)

val set_schedule_seed : int option -> unit
(** [Some seed] perturbs every subsequent [map]; [None] restores the
    natural ascending order. *)

val schedule_seed : unit -> int option
