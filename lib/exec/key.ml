(* Canonical content keys for the memo tables.

   A key is a collision-free textual encoding of a value: floats are
   rendered as the hex of their IEEE-754 bit pattern (so 0.25 and
   0.25 +. 1e-17 produce different keys, and -0.0 differs from 0.0),
   and composite encodings carry field names, so two records that happen
   to hold the same floats in different fields never share a key. *)

let float f = Printf.sprintf "%Lx" (Int64.bits_of_float f)
let int = string_of_int
let bool b = if b then "t" else "f"

(* Length-prefixed so that embedded separators cannot alias. *)
let string s = Printf.sprintf "%d:%s" (String.length s) s

let option enc = function None -> "-" | Some v -> "+" ^ enc v
let list enc xs = "[" ^ String.concat "," (List.map enc xs) ^ "]"
let pair enc_a enc_b (a, b) = "(" ^ enc_a a ^ "," ^ enc_b b ^ ")"

(* A named record: [fields "physical" [("lpoly", ...); ...]]. *)
let fields name kvs =
  name ^ "{" ^ String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"
