(** Column-aligned ASCII tables for experiment output. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> headers:string list -> ?notes:string list ->
  string list list -> t
(** Raises [Invalid_argument] if any row's width differs from the header's. *)

val render : t -> string
(** Multi-line rendering with a title rule, aligned columns and trailing
    notes. *)

val print : t -> unit

val fmt : ('a, unit, string) format -> 'a
(** Alias of [Printf.sprintf] for terse cell construction. *)
