type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows =
  let width = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make: row %d has %d cells, expected %d" i
             (List.length row) width))
    rows;
  { title; headers; rows; notes }

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make (Int.max ncols 1) 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row)
    (t.headers :: t.rows);
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule = String.make (Int.max total (String.length t.title)) '-' in
  let buf = Buffer.create 256 in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    ([ t.title; rule; render_row t.headers; rule ]
     @ List.map render_row t.rows
     @ List.map (fun note -> "  note: " ^ note) t.notes);
  Buffer.contents buf

let print t = print_string (render t)

let fmt = Printf.sprintf
