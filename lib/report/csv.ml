let needs_quoting cell =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell

let escape_cell cell =
  if needs_quoting cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let of_rows rows =
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map escape_cell row)) rows)
  ^ "\n"

let write ~path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_rows rows))

let of_table (t : Table.t) = of_rows (t.Table.headers :: t.Table.rows)
