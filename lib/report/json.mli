(** Dependency-free JSON subset: the value type, a recursive-descent
    parser and a compact renderer shared by the bench interchange format
    ({!Bench_json}) and the serving protocol ([Serve.Protocol]).

    The subset is exactly what those schemas contain — objects, arrays,
    strings, finite numbers, booleans and null.  Non-finite floats cannot
    be represented in JSON; {!render} emits them as [null], so writers
    that must round-trip NaN payloads encode the bits themselves (the
    persistent store does). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse_exn} and the typed accessors, with a
    human-readable reason. *)

val parse : string -> (t, string) result
(** Parse one complete document; trailing garbage is an error. *)

val parse_exn : string -> t
(** As {!parse}, raising {!Bad}. *)

val render : t -> string
(** Compact single-line rendering.  Finite numbers round-trip: integral
    values print without a fraction, everything else with 17 significant
    digits (enough to recover the exact IEEE-754 double). *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control bytes) —
    exposed for renderers that build documents with [Printf]. *)

(** {2 Typed accessors}

    Each takes a [what] label used in the {!Bad} message, so schema
    errors name the field that failed. *)

val member : string -> t -> t option
(** [member name (Obj ...)] is the field's value, [None] when absent or
    when the value is not an object. *)

val field : string -> t -> t
(** As {!member}, raising {!Bad} when missing. *)

val as_string : string -> t -> string
val as_number : string -> t -> float
val as_int : string -> t -> int
val as_list : string -> t -> t list
