(* Dependency-free JSON subset reader/writer.  The parser is a tiny
   recursive-descent reader covering exactly what the subscale schemas can
   contain (objects, arrays, strings, numbers, null, booleans) —
   lib/report links against nothing, so no JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

(* Recursion cap for the recursive-descent parser: the subscale schemas
   nest a handful of levels, so any input deeper than this is hostile or
   corrupt.  Failing with [Bad] keeps a daemon's parse step total — a
   deliberately deep line must not escape as [Stack_overflow]. *)
let max_depth = 64

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Numbers must round-trip: 17 significant digits recover the exact double.
   Integral values print without the fraction so counters stay readable. *)
let render_num f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (render_num f)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let is_hex = function
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
            | _ -> false
          in
          (* [int_of_string] accepts signs and underscores, so the digits
             are vetted first and the parse stays a [Bad], never a
             [Failure], on hostile input. *)
          if not (String.for_all is_hex hex) then fail "malformed \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "malformed \\u escape"
          in
          pos := !pos + 4;
          (* The schemas are ASCII; escapes only ever encode control bytes. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          go ()
        | _ -> fail "unsupported escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (string_lit ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse text =
  match parse_exn text with t -> Ok t | exception Bad msg -> Error msg

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected object around field %S" name))

let as_string what = function
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "%s: expected string" what))

let as_number what = function
  | Num f -> f
  | _ -> raise (Bad (Printf.sprintf "%s: expected number" what))

let as_int what j =
  let f = as_number what j in
  if Float.is_integer f then int_of_float f
  else raise (Bad (Printf.sprintf "%s: expected integer" what))

let as_list what = function
  | Arr l -> l
  | _ -> raise (Bad (Printf.sprintf "%s: expected array" what))
