(** The [subscale-bench/1] interchange format: the machine-readable perf
    trajectory the bench harness writes (BENCH_tcad.json) and CI compares
    across commits.  Rendering and parsing live together so the writer, the
    regression test and the CI comparator can never drift apart.

    The format is a flat JSON object:

    {v
    { "schema": "subscale-bench/1",
      "suite": "tcad",
      "quota_s": 0.4,
      "results": [ { "name": "...", "ns_per_run": 123.456 }, ... ],
      "memo":    [ { "name": "...", "hits": 0, "misses": 0, "size": 0 }, ... ] }
    v}

    [ns_per_run] may be JSON [null] when an estimate was unavailable. *)

type result_row = {
  bench : string;  (** series name, e.g. ["tcad/gummel-bias-point"] *)
  ns_per_run : float option;  (** OLS time per run; [None] renders as null *)
}

type memo_row = { table : string; hits : int; misses : int; size : int }

type t = {
  suite : string;
  quota_s : float;  (** Bechamel sampling quota the numbers were taken at *)
  results : result_row list;
  memo : memo_row list;
}

val schema_id : string
(** ["subscale-bench/1"]. *)

val render : t -> string
(** Serialize (always with the current {!schema_id}); [parse] of the result
    round-trips. *)

val parse : string -> (t, string) result
(** Parse and validate a [subscale-bench/1] document.  [Error] carries a
    human-readable reason: malformed JSON, wrong/missing schema tag,
    missing fields, non-finite or negative timings, or duplicate series
    names. *)

val load : string -> (t, string) result
(** [parse] of a file's contents; [Error] on unreadable files too. *)

val find : t -> string -> float option
(** [find t series] is the recorded ns-per-run, if the series is present
    with a non-null estimate. *)

val missing_series : baseline:t -> t -> string list
(** Series names the baseline records that the candidate does not emit —
    the regression CI guards against: a renamed or dropped bench would
    silently break trajectory comparisons. *)
