(* subscale-bench/1 reader/writer on top of the shared {!Json} subset
   parser — lib/report links against nothing, so no JSON dependency. *)

type result_row = { bench : string; ns_per_run : float option }
type memo_row = { table : string; hits : int; misses : int; size : int }

type t = {
  suite : string;
  quota_s : float;
  results : result_row list;
  memo : memo_row list;
}

let schema_id = "subscale-bench/1"

(* --- rendering ------------------------------------------------------- *)

let escape = Json.escape

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string buf (Printf.sprintf "  \"suite\": \"%s\",\n" (escape t.suite));
  Buffer.add_string buf (Printf.sprintf "  \"quota_s\": %.3f,\n" t.quota_s);
  Buffer.add_string buf "  \"results\": [\n";
  let n_res = List.length t.results in
  List.iteri
    (fun i r ->
      let ns =
        match r.ns_per_run with
        | Some v when Float.is_finite v -> Printf.sprintf "%.3f" v
        | Some _ | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %s }%s\n"
           (escape r.bench) ns
           (if i = n_res - 1 then "" else ",")))
    t.results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"memo\": [\n";
  let n_memo = List.length t.memo in
  List.iteri
    (fun i (m : memo_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"hits\": %d, \"misses\": %d, \"size\": %d }%s\n"
           (escape m.table) m.hits m.misses m.size
           (if i = n_memo - 1 then "" else ",")))
    t.memo;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- schema extraction + validation ---------------------------------- *)

let result_of_json j =
  let bench = Json.as_string "results[].name" (Json.field "name" j) in
  let ns_per_run =
    match Json.field "ns_per_run" j with
    | Json.Null -> None
    | Json.Num f ->
      if Float.is_finite f && f >= 0.0 then Some f
      else
        raise
          (Json.Bad
             (Printf.sprintf "series %S: ns_per_run not a finite non-negative number"
                bench))
    | _ ->
      raise (Json.Bad (Printf.sprintf "series %S: ns_per_run must be number or null" bench))
  in
  { bench; ns_per_run }

let memo_of_json j =
  let table = Json.as_string "memo[].name" (Json.field "name" j) in
  let nat what v =
    let i = Json.as_int what v in
    if i < 0 then raise (Json.Bad (what ^ ": negative count")) else i
  in
  {
    table;
    hits = nat (table ^ ".hits") (Json.field "hits" j);
    misses = nat (table ^ ".misses") (Json.field "misses" j);
    size = nat (table ^ ".size") (Json.field "size" j);
  }

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if Hashtbl.mem tbl name then
        raise (Json.Bad (Printf.sprintf "duplicate %s %S" what name));
      Hashtbl.add tbl name ())
    names

let parse text =
  match
    let j = Json.parse_exn text in
    let schema = Json.as_string "schema" (Json.field "schema" j) in
    if schema <> schema_id then
      raise (Json.Bad (Printf.sprintf "schema %S, want %S" schema schema_id));
    let t =
      {
        suite = Json.as_string "suite" (Json.field "suite" j);
        quota_s = Json.as_number "quota_s" (Json.field "quota_s" j);
        results =
          List.map result_of_json (Json.as_list "results" (Json.field "results" j));
        memo = List.map memo_of_json (Json.as_list "memo" (Json.field "memo" j));
      }
    in
    if not (Float.is_finite t.quota_s && t.quota_s > 0.0) then
      raise (Json.Bad "quota_s must be positive");
    if t.results = [] then raise (Json.Bad "results must be non-empty");
    check_unique "series" (List.map (fun r -> r.bench) t.results);
    check_unique "memo table" (List.map (fun (m : memo_row) -> m.table) t.memo);
    t
  with
  | t -> Ok t
  | exception Json.Bad msg -> Error msg

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let find t series =
  List.find_map (fun r -> if r.bench = series then r.ns_per_run else None) t.results

let missing_series ~baseline candidate =
  List.filter_map
    (fun r ->
      if List.exists (fun r' -> r'.bench = r.bench) candidate.results then None
      else Some r.bench)
    baseline.results
