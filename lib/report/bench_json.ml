(* subscale-bench/1 reader/writer.  The parser is a tiny recursive-descent
   JSON reader covering exactly what the schema can contain (objects,
   arrays, strings, numbers, null, booleans) — lib/report links against
   nothing, so no JSON dependency. *)

type result_row = { bench : string; ns_per_run : float option }
type memo_row = { table : string; hits : int; misses : int; size : int }

type t = {
  suite : string;
  quota_s : float;
  results : result_row list;
  memo : memo_row list;
}

let schema_id = "subscale-bench/1"

(* --- rendering ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema_id);
  Buffer.add_string buf (Printf.sprintf "  \"suite\": \"%s\",\n" (escape t.suite));
  Buffer.add_string buf (Printf.sprintf "  \"quota_s\": %.3f,\n" t.quota_s);
  Buffer.add_string buf "  \"results\": [\n";
  let n_res = List.length t.results in
  List.iteri
    (fun i r ->
      let ns =
        match r.ns_per_run with
        | Some v when Float.is_finite v -> Printf.sprintf "%.3f" v
        | Some _ | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %s }%s\n"
           (escape r.bench) ns
           (if i = n_res - 1 then "" else ",")))
    t.results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"memo\": [\n";
  let n_memo = List.length t.memo in
  List.iteri
    (fun i (m : memo_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": \"%s\", \"hits\": %d, \"misses\": %d, \"size\": %d }%s\n"
           (escape m.table) m.hits m.misses m.size
           (if i = n_memo - 1 then "" else ",")))
    t.memo;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --- JSON subset parser ---------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* The schema is ASCII; escapes only ever encode control bytes. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          go ()
        | _ -> fail "unsupported escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (string_lit ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- schema extraction + validation ---------------------------------- *)

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected object around field %S" name))

let as_string what = function
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "%s: expected string" what))

let as_number what = function
  | Num f -> f
  | _ -> raise (Bad (Printf.sprintf "%s: expected number" what))

let as_int what j =
  let f = as_number what j in
  if Float.is_integer f then int_of_float f
  else raise (Bad (Printf.sprintf "%s: expected integer" what))

let as_list what = function
  | Arr l -> l
  | _ -> raise (Bad (Printf.sprintf "%s: expected array" what))

let result_of_json j =
  let bench = as_string "results[].name" (field "name" j) in
  let ns_per_run =
    match field "ns_per_run" j with
    | Null -> None
    | Num f ->
      if Float.is_finite f && f >= 0.0 then Some f
      else raise (Bad (Printf.sprintf "series %S: ns_per_run not a finite non-negative number" bench))
    | _ -> raise (Bad (Printf.sprintf "series %S: ns_per_run must be number or null" bench))
  in
  { bench; ns_per_run }

let memo_of_json j =
  let table = as_string "memo[].name" (field "name" j) in
  let nat what v =
    let i = as_int what v in
    if i < 0 then raise (Bad (what ^ ": negative count")) else i
  in
  {
    table;
    hits = nat (table ^ ".hits") (field "hits" j);
    misses = nat (table ^ ".misses") (field "misses" j);
    size = nat (table ^ ".size") (field "size" j);
  }

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if Hashtbl.mem tbl name then
        raise (Bad (Printf.sprintf "duplicate %s %S" what name));
      Hashtbl.add tbl name ())
    names

let parse text =
  match
    let j = parse_json text in
    let schema = as_string "schema" (field "schema" j) in
    if schema <> schema_id then
      raise (Bad (Printf.sprintf "schema %S, want %S" schema schema_id));
    let t =
      {
        suite = as_string "suite" (field "suite" j);
        quota_s = as_number "quota_s" (field "quota_s" j);
        results = List.map result_of_json (as_list "results" (field "results" j));
        memo = List.map memo_of_json (as_list "memo" (field "memo" j));
      }
    in
    if not (Float.is_finite t.quota_s && t.quota_s > 0.0) then
      raise (Bad "quota_s must be positive");
    if t.results = [] then raise (Bad "results must be non-empty");
    check_unique "series" (List.map (fun r -> r.bench) t.results);
    check_unique "memo table" (List.map (fun (m : memo_row) -> m.table) t.memo);
    t
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let find t series =
  List.find_map (fun r -> if r.bench = series then r.ns_per_run else None) t.results

let missing_series ~baseline candidate =
  List.filter_map
    (fun r ->
      if List.exists (fun r' -> r'.bench = r.bench) candidate.results then None
      else Some r.bench)
    baseline.results
