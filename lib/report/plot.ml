type series = { name : string; points : (float * float) array }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 18) ?(x_label = "") ?(y_label = "") ~title series =
  let all_points = List.concat_map (fun s -> Array.to_list s.points) series in
  if List.is_empty all_points then invalid_arg "Plot.render: no points";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let fold f = function [] -> 0.0 | h :: t -> List.fold_left f h t in
  let x0 = fold Float.min xs and x1 = fold Float.max xs in
  let y0 = fold Float.min ys and y1 = fold Float.max ys in
  let xspan = if x1 = x0 then 1.0 else x1 -. x0 in
  let yspan = if y1 = y0 then 1.0 else y1 -. y0 in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let marker = markers.(si mod Array.length markers) in
      Array.iter
        (fun (x, y) ->
          let cx = int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1)) in
          let cy = int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1)) in
          let row = height - 1 - cy in
          if row >= 0 && row < height && cx >= 0 && cx < width then grid.(row).(cx) <- marker)
        s.points)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%11.4g +" y1);
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i row ->
      let label =
        if i = height / 2 && y_label <> "" then Printf.sprintf "%11s |" y_label
        else String.make 11 ' ' ^ " |"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun j -> row.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%11.4g +%s" y0 (String.make width '-'));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%12s%-14.4g%*s%14.4g  %s" "" x0 (width - 28) "" x1 x_label);
  Buffer.add_char buf '\n';
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" markers.(si mod Array.length markers) s.name))
    series;
  Buffer.contents buf
