(** Minimal CSV output (RFC-4180 quoting) for exporting experiment data. *)

val escape_cell : string -> string

val of_rows : string list list -> string

val write : path:string -> string list list -> unit
(** Raises [Sys_error] on I/O failure. *)

val of_table : Table.t -> string
(** Headers followed by data rows (title and notes are dropped). *)
