(** Small ASCII line plots for terminal output of figure-style experiments. *)

type series = { name : string; points : (float * float) array }

val render :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string ->
  title:string -> series list -> string
(** Scatter the series onto a [width] x [height] (default 64 x 18) character
    grid; each series uses a distinct marker listed in the legend.  Raises
    [Invalid_argument] when no series has points. *)
