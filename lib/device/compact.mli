(** The assembled compact device: every derived model quantity computed once
    from the physical parameters and calibration constants.  This record is
    what the circuit simulator, the analysis layer, and the scaling
    optimizers consume. *)

type t = {
  phys : Params.physical;
  cal : Params.calibration;
  polarity : Params.polarity;
  leff : float;  (** effective channel length [m] *)
  xj : float;  (** junction depth [m] *)
  overlap : float;  (** gate/S-D overlap [m] *)
  neff : float;  (** effective (halo-weighted) channel doping [m^-3] *)
  phi_f : float;  (** bulk Fermi potential at N_eff [V] *)
  wdep : float;  (** depletion width at 2 phi_F [m] *)
  cox : float;  (** oxide capacitance per area [F/m^2] *)
  m : float;  (** subthreshold slope factor, consistent with [ss] *)
  ss : float;  (** inverse subthreshold slope [V/dec] (Eq. 2b) *)
  vth0 : float;  (** long-channel threshold [V] *)
  vbi : float;  (** S/D junction built-in potential [V] *)
  lt : float;  (** SCE characteristic length [m] *)
  mu : float;  (** effective channel mobility [m^2/Vs] *)
  cg : float;  (** loaded gate capacitance per width, incl. fringe [F/m] *)
  cg_intrinsic : float;
      (** channel + overlap gate capacitance per width [F/m] — the C_g of
          the paper's tau = C_g V_dd / I_on metric *)
  temperature : float;
}

val sd_doping : float
(** Source/drain doping used for V_bi and the TCAD wells [m^-3] — exposed
    so the validity auditor mirrors V_bi with the same constant. *)

val nfet : ?cal:Params.calibration -> ?t:float -> Params.physical -> t
(** [t] is the lattice temperature [K] (default 300) — it scales the thermal
    voltage (and hence S_S), the intrinsic density (V_th falls with T) and
    the phonon-limited mobility. *)

val pfet : ?cal:Params.calibration -> ?t:float -> Params.physical -> t
(** The paper derives PFETs with the same methodology and near-identical
    optimal geometry; we model the PFET as the NFET's mirror with hole
    mobility.  All voltages in the PFET record are magnitudes
    (source-referenced |V_gs|, |V_ds|). *)

val vth : t -> vds:float -> float
(** V_th(V_ds) = V_th0 + Delta V_th,SCE(V_ds) + calibration offset; the halo
    roll-up is inside V_th0 via N_eff. *)

val with_vth_shift : t -> float -> t
(** [with_vth_shift dev dv] is [dev] with its threshold rigidly shifted by
    [dv] volts — the per-instance handle Monte Carlo mismatch studies use. *)

val dibl : t -> float
(** -dV_th/dV_ds [V/V]. *)

val mobility_ratio : float
(** mu_n / mu_p sizing ratio used for balanced inverters. *)

val to_tcad_description : t -> Tcad.Structure.description
(** Map the compact device onto the 2-D simulator's structure description,
    for calibration and validation runs. *)
