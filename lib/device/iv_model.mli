(** All-region drain-current model.

    An EKV-style charge-interpolation model built on the compact device: in
    weak inversion it reduces exactly to the paper's Eq. 1 (exponential in
    (V_gs - V_th)/(m vT), with the (1 - e^{-V_ds/vT}) drain factor), and in
    strong inversion to a velocity-saturation-limited square law.  All
    currents are per metre of device width [A/m]; multiply by the device
    width to get amperes.  Voltages are source-referenced and positive for
    both polarities (the circuit layer handles PFET sign flips). *)

val specific_current : Compact.t -> float
(** I_S = 2 m mu C_ox vT^2 / L_eff [A/m], the EKV normalization current. *)

val id : Compact.t -> vgs:float -> vds:float -> float
(** Drain current [A/m].  Monotone in both arguments; 0 at [vds = 0]. *)

val ioff : Compact.t -> vdd:float -> float
(** I_off = id at V_gs = 0, V_ds = [vdd]. *)

val ion : Compact.t -> vdd:float -> float
(** I_on = id at V_gs = V_ds = [vdd] (the paper's definition). *)

val on_off_ratio : Compact.t -> vdd:float -> float

val gm : Compact.t -> vgs:float -> vds:float -> float
(** Numerical transconductance dI_d/dV_gs [S/m]. *)

val gds : Compact.t -> vgs:float -> vds:float -> float
(** Numerical output conductance dI_d/dV_ds [S/m]. *)

val intrinsic_delay : Compact.t -> vdd:float -> float
(** tau = C_g V_dd / I_on [s] — Table 2's delay metric. *)

val threshold_const_current : Compact.t -> vds:float -> float
(** Constant-current threshold: V_gs where I_d crosses 1e-7 W/L_eff amps
    (the standard 100 nA x W/L criterion), found by bisection.  This is the
    V_th,sat the tables report. *)
