(** Device parameter records.

    [physical] holds the four key scaling parameters of the paper's Sec. 2.2
    (L_poly, T_ox, N_sub, N_p,halo) plus V_dd — exactly what Tables 2 and 3
    tabulate.  [calibration] holds the model constants that tie the compact
    model to 2-D behaviour; they are fitted once against the paper's 90 nm
    anchor point and the TCAD substrate, then held fixed for every node and
    both scaling strategies. *)

type physical = {
  node_nm : int;  (** technology node label, e.g. 90 *)
  lpoly : float;  (** etched gate length [m] *)
  tox : float;  (** gate oxide thickness [m] *)
  nsub : float;  (** substrate acceptor density [m^-3] *)
  np_halo : float;  (** peak halo acceptor density added to N_sub [m^-3] *)
  vdd : float;  (** nominal supply [V] *)
  xj : float option;  (** junction depth [m]; [None] scales with L_poly *)
  overlap : float option;  (** gate/S-D overlap [m]; [None] scales with L_poly *)
}

(** The optional geometry overrides matter for the sub-V_th strategy: a
    longer gate drawn in the *same* process keeps the node's junction depth
    and overlap, so L_eff grows faster than L_poly and the overlap
    capacitance does not grow.  The roadmap's own devices (where every
    dimension except T_ox shrinks with L_poly) use [None]. *)

val nhalo_net : physical -> float
(** Net halo doping N_halo = N_sub + N_p,halo, the quantity Table 2 lists. *)

type calibration = {
  xj_fraction : float;  (** default junction depth / L_poly *)
  overlap_fraction : float;  (** default gate/S-D overlap / L_poly; L_eff = L_poly - 2 overlap *)
  k_halo : float;  (** halo weight in N_eff: f = min(0.85, k_halo xj / L_eff) *)
  k_body : float;  (** multiplier on the 3 T_ox/W_dep body term of Eq. 2b *)
  k_sce : float;  (** multiplier on the 11 T_ox/W_dep SCE term of Eq. 2b *)
  k_lambda : float;  (** multiplier on the SCE decay length in Eq. 2b's exponent *)
  lambda_xj_exp : float;  (** x_j exponent in the decay length x_j^a (T_ox W_dep)^((1-a)/2) *)
  halo_sce_exp : float;
      (** halo-engineering strength: the decay length shrinks as
          (N_sub/N_halo)^halo_sce_exp — pockets exist to suppress roll-off,
          so a heavy halo dose buys channel control beyond its mean-doping
          effect *)
  ss_offset : float;  (** additive S_S correction [V/dec] *)
  k_vth_sce : float;  (** V_th roll-off strength *)
  k_dibl : float;  (** DIBL strength relative to the roll-off term *)
  vth_offset : float;  (** additive V_th correction [V] *)
  mu_factor : float;
      (** effective-mobility multiplier; the default corrects the universal
          mobility curve's pessimism at the operating vertical field so the
          nominal-V_dd I_on lands in the published LSTP range *)
  fringe_cap : float;  (** gate fringe + overlap extra capacitance [F/m width] per side *)
  load_factor : float;  (** C_L = load_factor * (C_g,n + C_g,p) for FO1 *)
}

val default_calibration : calibration
(** Fitted to anchor the super-V_th 90 nm device at the paper's reported
    S_S ~ 86 mV/dec, V_th,sat ~ 0.40 V and its 11 % S_S degradation by 32 nm
    (see EXPERIMENTS.md for the residuals). *)

type polarity = Nfet | Pfet

(** {2 Shadow tracing of parameter reads}

    The memo-soundness half of [subscale audit] must know which parameter
    fields a cached computation actually consumed.  Model code reads fields
    through the [read_*] accessors; inside {!Trace.collect} each access
    records its field name.  Tracing is for the sequential audit pass —
    with no trace active an accessor costs a single ref read. *)

module Trace : sig
  val record : string -> unit
  (** Note a field read (no-op unless a trace is active). *)

  val collect : (unit -> 'a) -> 'a * string list
  (** [collect f] runs [f] under a fresh trace and returns its result with
      the sorted, deduplicated list of field names read.  Nested collects
      restore the outer trace on exit. *)
end

val read_node_nm : physical -> int
val read_lpoly : physical -> float
val read_tox : physical -> float
val read_nsub : physical -> float
val read_np_halo : physical -> float
val read_vdd : physical -> float
val read_xj : physical -> float option
val read_overlap : physical -> float option

val read_xj_fraction : calibration -> float
val read_overlap_fraction : calibration -> float
val read_k_halo : calibration -> float
val read_k_body : calibration -> float
val read_k_sce : calibration -> float
val read_k_lambda : calibration -> float
val read_lambda_xj_exp : calibration -> float
val read_halo_sce_exp : calibration -> float
val read_ss_offset : calibration -> float
val read_k_vth_sce : calibration -> float
val read_k_dibl : calibration -> float
val read_vth_offset : calibration -> float
val read_mu_factor : calibration -> float
val read_fringe_cap : calibration -> float
val read_load_factor : calibration -> float

val physical_key : physical -> string
(** Canonical content key over every field (floats rendered as exact IEEE-754
    bit patterns), for [Exec.Memo] tables.  Two records produce the same key
    iff they are structurally equal. *)

val calibration_key : calibration -> string
(** Canonical content key over every calibration constant. *)

val polarity_key : polarity -> string

val physical_key_fields : string list
val calibration_key_fields : string list
(** Field names encoded by {!physical_key} / {!calibration_key}, in key
    order — the coverage sets the memo-soundness auditor checks traced
    read-sets against. *)

val paper_table2 : physical list
(** The paper's Table 2 NFET parameters (super-V_th strategy), verbatim. *)

val paper_table3 : physical list
(** The paper's Table 3 NFET parameters (sub-V_th strategy), verbatim;
    V_dd is not listed in Table 3 (operation is at V_min), recorded as 0. *)
