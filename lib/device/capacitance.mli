(** Gate/load capacitance model (per metre of device width).

    C_g = C_ox' L_eff + 2 (C_ox' L_ov + C_fringe), i.e. intrinsic channel
    capacitance plus two overlap/fringe terms — the paper's "gate
    capacitance including gate/drain-source overlap" used in its
    tau = C_g V_dd / I_on metric. *)

val oxide_area_capacitance : tox:float -> float
(** C_ox' = eps_ox / T_ox [F/m^2]. *)

val gate :
  ?fringe:float -> tox:float -> leff:float -> overlap:float -> unit -> float
(** Gate capacitance per width [F/m]; [fringe] is per side (default 0.25 nF/m
    = 0.25 fF/um). *)

val fo1_load : ?load_factor:float -> cg_n:float -> cg_p:float -> unit -> float
(** Switched load of an FO1 inverter: the fan-out gate pair plus local
    drain-junction and wiring parasitics folded into [load_factor]
    (default 1.6). *)
