type physical = {
  node_nm : int;
  lpoly : float;
  tox : float;
  nsub : float;
  np_halo : float;
  vdd : float;
  xj : float option;
  overlap : float option;
}

type calibration = {
  xj_fraction : float;
  overlap_fraction : float;
  k_halo : float;
  k_body : float;
  k_sce : float;
  k_lambda : float;
  lambda_xj_exp : float;
  halo_sce_exp : float;
  ss_offset : float;
  k_vth_sce : float;
  k_dibl : float;
  vth_offset : float;
  mu_factor : float;
  fringe_cap : float;
  load_factor : float;
}

let default_calibration =
  {
    xj_fraction = 0.35;
    overlap_fraction = 0.12;
    k_halo = 0.98;
    k_body = 1.0;
    k_sce = 0.40;
    k_lambda = 5.0;
    lambda_xj_exp = 0.5;
    halo_sce_exp = 0.0;
    ss_offset = 0.0;
    k_vth_sce = 0.55;
    k_dibl = 1.0;
    vth_offset = 0.0;
    mu_factor = 2.5;
    fringe_cap = 0.6e-9;
    load_factor = 1.6;
  }

type polarity = Nfet | Pfet

(* Shadow tracing of parameter-field reads.

   The memo-soundness auditor must know which fields a cached computation
   *actually* consumed, to cross-check them against the fields its
   [Exec.Key] encodes: a field that is read but not keyed is a stale-cache
   hazard.  Model code reads fields through the [read_*] accessors below;
   when a trace is active each access records its field name.  Tracing is
   meant for the (sequential) audit pass — when inactive the accessors cost
   one ref read. *)
module Trace = struct
  let lock = Mutex.create ()
  let active : (string, unit) Hashtbl.t option ref = ref None

  let record field =
    match !active with
    | None -> ()
    | Some _ ->
      Mutex.lock lock;
      (match !active with
       | Some tbl -> Hashtbl.replace tbl field ()
       | None -> ());
      Mutex.unlock lock

  let collect f =
    Mutex.lock lock;
    let saved = !active in
    let tbl = Hashtbl.create 32 in
    active := Some tbl;
    Mutex.unlock lock;
    let restore () =
      Mutex.lock lock;
      active := saved;
      Mutex.unlock lock
    in
    let v = try f () with e -> restore (); raise e in
    restore ();
    let reads = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
    (v, reads)
end

(* Traced accessors, one per field the device model consumes. *)
let read_node_nm p = Trace.record "node_nm"; p.node_nm
let read_lpoly p = Trace.record "lpoly"; p.lpoly
let read_tox p = Trace.record "tox"; p.tox
let read_nsub p = Trace.record "nsub"; p.nsub
let read_np_halo p = Trace.record "np_halo"; p.np_halo
let read_vdd p = Trace.record "vdd"; p.vdd
let read_xj p = Trace.record "xj"; p.xj
let read_overlap p = Trace.record "overlap"; p.overlap

let read_xj_fraction c = Trace.record "xj_fraction"; c.xj_fraction
let read_overlap_fraction c = Trace.record "overlap_fraction"; c.overlap_fraction
let read_k_halo c = Trace.record "k_halo"; c.k_halo
let read_k_body c = Trace.record "k_body"; c.k_body
let read_k_sce c = Trace.record "k_sce"; c.k_sce
let read_k_lambda c = Trace.record "k_lambda"; c.k_lambda
let read_lambda_xj_exp c = Trace.record "lambda_xj_exp"; c.lambda_xj_exp
let read_halo_sce_exp c = Trace.record "halo_sce_exp"; c.halo_sce_exp
let read_ss_offset c = Trace.record "ss_offset"; c.ss_offset
let read_k_vth_sce c = Trace.record "k_vth_sce"; c.k_vth_sce
let read_k_dibl c = Trace.record "k_dibl"; c.k_dibl
let read_vth_offset c = Trace.record "vth_offset"; c.vth_offset
let read_mu_factor c = Trace.record "mu_factor"; c.mu_factor
let read_fringe_cap c = Trace.record "fringe_cap"; c.fringe_cap
let read_load_factor c = Trace.record "load_factor"; c.load_factor

let nhalo_net p = read_nsub p +. read_np_halo p

(* Canonical content keys (Exec.Memo): every field participates, floats
   bit-exactly, so no two distinct parameter sets can share a cache line
   and changing any single field is guaranteed to produce a new key. *)
let physical_key (p : physical) =
  Exec.Key.(
    fields "physical"
      [ ("node_nm", int p.node_nm);
        ("lpoly", float p.lpoly);
        ("tox", float p.tox);
        ("nsub", float p.nsub);
        ("np_halo", float p.np_halo);
        ("vdd", float p.vdd);
        ("xj", option float p.xj);
        ("overlap", option float p.overlap) ])

let calibration_key (c : calibration) =
  Exec.Key.(
    fields "calibration"
      [ ("xj_fraction", float c.xj_fraction);
        ("overlap_fraction", float c.overlap_fraction);
        ("k_halo", float c.k_halo);
        ("k_body", float c.k_body);
        ("k_sce", float c.k_sce);
        ("k_lambda", float c.k_lambda);
        ("lambda_xj_exp", float c.lambda_xj_exp);
        ("halo_sce_exp", float c.halo_sce_exp);
        ("ss_offset", float c.ss_offset);
        ("k_vth_sce", float c.k_vth_sce);
        ("k_dibl", float c.k_dibl);
        ("vth_offset", float c.vth_offset);
        ("mu_factor", float c.mu_factor);
        ("fringe_cap", float c.fringe_cap);
        ("load_factor", float c.load_factor) ])

let polarity_key = function Nfet -> "nfet" | Pfet -> "pfet"

(* Kept in sync with the key builders above: the memo-soundness auditor
   cross-checks traced read-sets against these coverage lists, so a field
   added to the record but forgotten in the key shows up as AUD011. *)
let physical_key_fields =
  [ "node_nm"; "lpoly"; "tox"; "nsub"; "np_halo"; "vdd"; "xj"; "overlap" ]

let calibration_key_fields =
  [ "xj_fraction"; "overlap_fraction"; "k_halo"; "k_body"; "k_sce"; "k_lambda";
    "lambda_xj_exp"; "halo_sce_exp"; "ss_offset"; "k_vth_sce"; "k_dibl"; "vth_offset";
    "mu_factor"; "fringe_cap"; "load_factor" ]

let nm = Physics.Constants.nm
let cm3 = Physics.Constants.per_cm3

let paper_table2 =
  [
    { node_nm = 90; lpoly = nm 65.0; tox = nm 2.10; nsub = cm3 1.52e18;
      np_halo = cm3 (3.63e18 -. 1.52e18); vdd = 1.2; xj = None; overlap = None };
    { node_nm = 65; lpoly = nm 46.0; tox = nm 1.89; nsub = cm3 1.97e18;
      np_halo = cm3 (5.17e18 -. 1.97e18); vdd = 1.1; xj = None; overlap = None };
    { node_nm = 45; lpoly = nm 32.0; tox = nm 1.70; nsub = cm3 2.52e18;
      np_halo = cm3 (7.83e18 -. 2.52e18); vdd = 1.0; xj = None; overlap = None };
    { node_nm = 32; lpoly = nm 22.0; tox = nm 1.53; nsub = cm3 3.31e18;
      np_halo = cm3 (12.0e18 -. 3.31e18); vdd = 0.9; xj = None; overlap = None };
  ]

let paper_table3 =
  [
    { node_nm = 90; lpoly = nm 95.0; tox = nm 2.10; nsub = cm3 1.61e18;
      np_halo = cm3 (2.02e18 -. 1.61e18); vdd = 0.0; xj = None; overlap = None };
    { node_nm = 65; lpoly = nm 75.0; tox = nm 1.89; nsub = cm3 1.99e18;
      np_halo = cm3 (2.73e18 -. 1.99e18); vdd = 0.0; xj = None; overlap = None };
    { node_nm = 45; lpoly = nm 60.0; tox = nm 1.70; nsub = cm3 2.53e18;
      np_halo = cm3 (2.93e18 -. 2.53e18); vdd = 0.0; xj = None; overlap = None };
    { node_nm = 32; lpoly = nm 45.0; tox = nm 1.53; nsub = cm3 3.19e18;
      np_halo = cm3 (4.89e18 -. 3.19e18); vdd = 0.0; xj = None; overlap = None };
  ]
