type t = Tt | Ff | Ss | Fs | Sf

let all = [ Tt; Ff; Ss; Fs; Sf ]

let name = function Tt -> "TT" | Ff -> "FF" | Ss -> "SS" | Fs -> "FS" | Sf -> "SF"

(* Speed of each polarity at a corner: +1 fast, -1 slow, 0 typical.  The
   first letter names the NFET, the second the PFET. *)
let speed corner polarity =
  match (corner, polarity) with
  | Tt, _ -> 0.0
  | Ff, _ -> 1.0
  | Ss, _ -> -1.0
  | Fs, Params.Nfet | Sf, Params.Pfet -> 1.0
  | Fs, Params.Pfet | Sf, Params.Nfet -> -1.0

let vth_shift ?(magnitude = 0.030) corner polarity =
  -.speed corner polarity *. magnitude

let mobility_scale ?(fraction = 0.08) corner polarity =
  1.0 +. (speed corner polarity *. fraction)

let apply ?magnitude ?fraction corner (dev : Compact.t) =
  let shifted = Compact.with_vth_shift dev (vth_shift ?magnitude corner dev.Compact.polarity) in
  { shifted with Compact.mu = shifted.Compact.mu *. mobility_scale ?fraction corner dev.Compact.polarity }
