(** Threshold-voltage model: the three components of the paper's Sec. 2.2 —
    intrinsic long-channel V_th0, short-channel/DIBL roll-off, and halo
    roll-up (the roll-up is carried by the halo's contribution to the
    effective channel doping used in V_th0). *)

val long_channel :
  ?t:float -> ?gate_doping:float -> neff:float -> cox:float -> unit -> float
(** V_th0 = V_fb + 2 phi_F + sqrt(2 q eps_Si N_eff 2 phi_F)/C_ox for an
    n+-poly gate over a p-body of effective doping [neff]. *)

val characteristic_length : tox:float -> wdep:float -> float
(** The SCE decay length l_t = sqrt(eps_Si T_ox W_dep / eps_Ox). *)

val rolloff :
  ?k_vth_sce:float -> ?k_dibl:float -> vbi:float -> surface_potential:float ->
  vds:float -> leff:float -> lt:float -> unit -> float
(** Delta V_th,SCE (negative): the quasi-2-D charge-sharing roll-off
    -(k_vth_sce) (2 (V_bi - phi_s) + k_dibl V_ds) exp(-L_eff / (2 l_t)). *)
