(** The paper's subthreshold device equations.

    Eq. 1 — weak-inversion drain current; Eq. 2 — inverse subthreshold slope
    S_S = 2.3 vT m with the short-channel form 2(b):

    S_S = 2.3 vT (1 + k_body 3 T_ox/W_dep)
               (1 + k_sce 11 T_ox/W_dep exp(-pi L_eff / (2 k_lambda (W_dep + 3 T_ox))))

    The k_* constants (all 1 in the textbook form) absorb the difference
    between the idealized expression and 2-D behaviour; they are set once in
    {!Params.default_calibration}. *)

val slope_factor :
  ?k_body:float -> tox:float -> wdep:float -> unit -> float
(** Long-channel subthreshold slope factor m = 1 + k_body 3 T_ox / W_dep
    (the capacitive divider C_dep/C_ox written in the paper's form). *)

val short_channel_factor :
  ?k_sce:float -> ?k_lambda:float -> ?xj_exp:float -> ?xj:float -> tox:float -> wdep:float ->
  leff:float -> unit -> float
(** The second parenthesis of Eq. 2(b): roll-up of S_S as L_eff shrinks
    relative to T_ox and W_dep.  When a junction depth [xj] is supplied the
    decay length uses the Brews-inspired x_j^a (T_ox W_dep)^((1-a)/2) scale
    (a = [xj_exp], default 0.5) instead of Eq. 2(b)'s (W_dep + 3 T_ox) — the
    form the compact model is calibrated with (see Compact). *)

val inverse_slope :
  ?k_body:float -> ?k_sce:float -> ?k_lambda:float -> ?ss_offset:float ->
  ?t:float -> ?xj_exp:float -> ?xj:float -> tox:float -> wdep:float -> leff:float ->
  unit -> float
(** Full Eq. 2(b) in V/decade (plus the calibration offset). *)

val current :
  i0:float -> m:float -> vth:float -> ?t:float -> vgs:float -> vds:float -> unit -> float
(** Eq. 1 with the prefactor collapsed into [i0] (the current at
    V_gs = V_th, V_ds >> vT):
    I = i0 exp((V_gs - V_th)/(m vT)) (1 - exp(-V_ds/vT)). *)

val i0_of_spec : mu:float -> cox:float -> m:float -> leff:float -> ?t:float -> unit -> float
(** The Eq. 1 prefactor per metre of width:
    i0 = (1/L_eff) mu (m-1) C_ox vT^2 ... written via the depletion
    capacitance C_d = (m - 1) C_ox the paper uses. *)
