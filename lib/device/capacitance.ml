let oxide_area_capacitance ~tox = Physics.Constants.eps_ox /. tox

let gate ?(fringe = 0.25e-9) ~tox ~leff ~overlap () =
  let cox = oxide_area_capacitance ~tox in
  (cox *. leff) +. (2.0 *. ((cox *. overlap) +. fringe))

let fo1_load ?(load_factor = 1.6) ~cg_n ~cg_p () = load_factor *. (cg_n +. cg_p)
