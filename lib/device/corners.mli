(** Global process corners.

    Die-to-die variation is modeled the standard way: a rigid threshold
    shift per device polarity plus a mobility scale.  F(ast) means lower
    V_th and higher mobility.  The mixed corners (FS/SF) skew N against P —
    the ones that break ratioed circuits and shift inverter thresholds.

    Sub-V_th circuits feel corners exponentially (delay multiplies by
    e^{dVth/(m vT)}), which is why corner spread belongs next to the
    paper's variability warning. *)

type t = Tt | Ff | Ss | Fs | Sf

val all : t list

val name : t -> string

val vth_shift : ?magnitude:float -> t -> Params.polarity -> float
(** Signed threshold shift [V]; [magnitude] defaults to 30 mV (a typical
    3-sigma die-to-die budget). *)

val mobility_scale : ?fraction:float -> t -> Params.polarity -> float
(** Multiplicative mobility factor; [fraction] defaults to 0.08. *)

val apply : ?magnitude:float -> ?fraction:float -> t -> Compact.t -> Compact.t
(** A corner-shifted copy of the device (threshold and mobility moved
    together, fast = low V_th + high mu). *)
