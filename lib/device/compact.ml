type t = {
  phys : Params.physical;
  cal : Params.calibration;
  polarity : Params.polarity;
  leff : float;
  xj : float;
  overlap : float;
  neff : float;
  phi_f : float;
  wdep : float;
  cox : float;
  m : float;
  ss : float;
  vth0 : float;
  vbi : float;
  lt : float;
  mu : float;
  cg : float;
  cg_intrinsic : float;
  temperature : float;
}

let sd_doping = Physics.Constants.per_cm3 1.0e20

(* Field reads go through the [Params.read_*] traced accessors so the
   memo-soundness auditor can record the exact parameter read-set of a
   characterization and cross-check it against the memo key coverage. *)
let build ?(t = Physics.Constants.t_room) polarity cal (phys : Params.physical) =
  let vt = Physics.Constants.thermal_voltage t in
  let tox = Params.read_tox phys in
  let lpoly = Params.read_lpoly phys in
  let xj =
    match Params.read_xj phys with
    | Some v -> v
    | None -> Params.read_xj_fraction cal *. lpoly
  in
  let overlap =
    match Params.read_overlap phys with
    | Some v -> v
    | None -> Params.read_overlap_fraction cal *. lpoly
  in
  let leff = lpoly -. (2.0 *. overlap) in
  if leff <= 0.0 then invalid_arg "Compact.build: overlap consumes the whole gate";
  (* Channel-averaged halo weight: the pockets occupy a width ~ x_j on each
     side, so their share of the channel falls as the channel lengthens —
     the reason long-channel devices shed their halos (paper Sec. 3.1). *)
  let halo_fraction = Float.min 0.85 (Params.read_k_halo cal *. xj /. leff) in
  let nsub = Params.read_nsub phys in
  let nhalo = Params.nhalo_net phys in
  let neff = nsub +. (halo_fraction *. (nhalo -. nsub)) in
  let phi_f = Physics.Silicon.fermi_potential ~t neff in
  let wdep = Physics.Silicon.depletion_width ~psi:(2.0 *. phi_f) ~doping:neff in
  let cox = Capacitance.oxide_area_capacitance ~tox in
  let ss =
    Subthreshold.inverse_slope ~k_body:(Params.read_k_body cal)
      ~k_sce:(Params.read_k_sce cal) ~k_lambda:(Params.read_k_lambda cal)
      ~ss_offset:(Params.read_ss_offset cal) ~t
      ~xj_exp:(Params.read_lambda_xj_exp cal) ~xj ~tox ~wdep ~leff ()
  in
  let m = ss /. (2.3 *. vt) in
  let vth0 = Threshold.long_channel ~t ~neff ~cox () in
  let vbi = Physics.Silicon.builtin_potential ~t neff sd_doping in
  let lt = Threshold.characteristic_length ~tox ~wdep in
  let carrier =
    match polarity with
    | Params.Nfet -> Physics.Mobility.Electron
    | Params.Pfet -> Physics.Mobility.Hole
  in
  let mu = Params.read_mu_factor cal *. Physics.Mobility.channel ~t carrier neff in
  let cg = Capacitance.gate ~fringe:(Params.read_fringe_cap cal) ~tox ~leff ~overlap () in
  let cg_intrinsic = cox *. (leff +. (2.0 *. overlap)) in
  {
    phys;
    cal;
    polarity;
    leff;
    xj;
    overlap;
    neff;
    phi_f;
    wdep;
    cox;
    m;
    ss;
    vth0;
    vbi;
    lt;
    mu;
    cg;
    cg_intrinsic;
    temperature = t;
  }

let nfet ?(cal = Params.default_calibration) ?t phys = build ?t Params.Nfet cal phys
let pfet ?(cal = Params.default_calibration) ?t phys = build ?t Params.Pfet cal phys

let vth dev ~vds =
  dev.vth0
  +. Threshold.rolloff ~k_vth_sce:(Params.read_k_vth_sce dev.cal)
       ~k_dibl:(Params.read_k_dibl dev.cal) ~vbi:dev.vbi
       ~surface_potential:(2.0 *. dev.phi_f) ~vds ~leff:dev.leff ~lt:dev.lt ()
  +. Params.read_vth_offset dev.cal

let with_vth_shift dev shift =
  { dev with cal = { dev.cal with Params.vth_offset = dev.cal.Params.vth_offset +. shift } }

let dibl dev =
  Params.read_k_vth_sce dev.cal *. Params.read_k_dibl dev.cal
  *. exp (-.dev.leff /. (2.0 *. dev.lt))

let mobility_ratio =
  Physics.Mobility.channel Physics.Mobility.Electron (Physics.Constants.per_cm3 2e18)
  /. Physics.Mobility.channel Physics.Mobility.Hole (Physics.Constants.per_cm3 2e18)

let to_tcad_description dev =
  {
    Tcad.Structure.polarity =
      (match dev.polarity with
       | Params.Nfet -> Tcad.Structure.Nchannel
       | Params.Pfet -> Tcad.Structure.Pchannel);
    lpoly = dev.phys.Params.lpoly;
    tox = dev.phys.Params.tox;
    nsub = dev.phys.Params.nsub;
    np_halo = dev.phys.Params.np_halo;
    xj = dev.xj;
    nsd = sd_doping;
    overlap = dev.overlap;
    halo_depth_frac = 0.5;
    halo_sigma_frac = 0.45;
    gate_doping = Physics.Constants.per_cm3 1.0e20;
    temperature = dev.temperature;
  }
