type t = {
  phys : Params.physical;
  cal : Params.calibration;
  polarity : Params.polarity;
  leff : float;
  xj : float;
  overlap : float;
  neff : float;
  phi_f : float;
  wdep : float;
  cox : float;
  m : float;
  ss : float;
  vth0 : float;
  vbi : float;
  lt : float;
  mu : float;
  cg : float;
  cg_intrinsic : float;
  temperature : float;
}

let sd_doping = Physics.Constants.per_cm3 1.0e20

let build ?(t = Physics.Constants.t_room) polarity cal (phys : Params.physical) =
  let vt = Physics.Constants.thermal_voltage t in
  let xj =
    match phys.Params.xj with
    | Some v -> v
    | None -> cal.Params.xj_fraction *. phys.Params.lpoly
  in
  let overlap =
    match phys.Params.overlap with
    | Some v -> v
    | None -> cal.Params.overlap_fraction *. phys.Params.lpoly
  in
  let leff = phys.Params.lpoly -. (2.0 *. overlap) in
  if leff <= 0.0 then invalid_arg "Compact.build: overlap consumes the whole gate";
  (* Channel-averaged halo weight: the pockets occupy a width ~ x_j on each
     side, so their share of the channel falls as the channel lengthens —
     the reason long-channel devices shed their halos (paper Sec. 3.1). *)
  let halo_fraction = Float.min 0.85 (cal.Params.k_halo *. xj /. leff) in
  let nhalo = Params.nhalo_net phys in
  let neff = phys.Params.nsub +. (halo_fraction *. (nhalo -. phys.Params.nsub)) in
  let phi_f = Physics.Silicon.fermi_potential ~t neff in
  let wdep = Physics.Silicon.depletion_width ~psi:(2.0 *. phi_f) ~doping:neff in
  let cox = Capacitance.oxide_area_capacitance ~tox:phys.Params.tox in
  let ss =
    Subthreshold.inverse_slope ~k_body:cal.Params.k_body ~k_sce:cal.Params.k_sce
      ~k_lambda:cal.Params.k_lambda ~ss_offset:cal.Params.ss_offset ~t
      ~xj_exp:cal.Params.lambda_xj_exp ~xj
      ~tox:phys.Params.tox ~wdep ~leff ()
  in
  let m = ss /. (2.3 *. vt) in
  let vth0 = Threshold.long_channel ~t ~neff ~cox () in
  let vbi = Physics.Silicon.builtin_potential ~t neff sd_doping in
  let lt = Threshold.characteristic_length ~tox:phys.Params.tox ~wdep in
  let carrier =
    match polarity with
    | Params.Nfet -> Physics.Mobility.Electron
    | Params.Pfet -> Physics.Mobility.Hole
  in
  let mu = cal.Params.mu_factor *. Physics.Mobility.channel ~t carrier neff in
  let cg =
    Capacitance.gate ~fringe:cal.Params.fringe_cap ~tox:phys.Params.tox ~leff ~overlap ()
  in
  let cg_intrinsic = cox *. (leff +. (2.0 *. overlap)) in
  {
    phys;
    cal;
    polarity;
    leff;
    xj;
    overlap;
    neff;
    phi_f;
    wdep;
    cox;
    m;
    ss;
    vth0;
    vbi;
    lt;
    mu;
    cg;
    cg_intrinsic;
    temperature = t;
  }

let nfet ?(cal = Params.default_calibration) ?t phys = build ?t Params.Nfet cal phys
let pfet ?(cal = Params.default_calibration) ?t phys = build ?t Params.Pfet cal phys

let vth dev ~vds =
  dev.vth0
  +. Threshold.rolloff ~k_vth_sce:dev.cal.Params.k_vth_sce ~k_dibl:dev.cal.Params.k_dibl
       ~vbi:dev.vbi ~surface_potential:(2.0 *. dev.phi_f) ~vds ~leff:dev.leff ~lt:dev.lt ()
  +. dev.cal.Params.vth_offset

let with_vth_shift dev shift =
  { dev with cal = { dev.cal with Params.vth_offset = dev.cal.Params.vth_offset +. shift } }

let dibl dev =
  dev.cal.Params.k_vth_sce *. dev.cal.Params.k_dibl *. exp (-.dev.leff /. (2.0 *. dev.lt))

let mobility_ratio =
  Physics.Mobility.channel Physics.Mobility.Electron (Physics.Constants.per_cm3 2e18)
  /. Physics.Mobility.channel Physics.Mobility.Hole (Physics.Constants.per_cm3 2e18)

let to_tcad_description dev =
  {
    Tcad.Structure.polarity =
      (match dev.polarity with
       | Params.Nfet -> Tcad.Structure.Nchannel
       | Params.Pfet -> Tcad.Structure.Pchannel);
    lpoly = dev.phys.Params.lpoly;
    tox = dev.phys.Params.tox;
    nsub = dev.phys.Params.nsub;
    np_halo = dev.phys.Params.np_halo;
    xj = dev.xj;
    nsd = sd_doping;
    overlap = dev.overlap;
    halo_depth_frac = 0.5;
    halo_sigma_frac = 0.45;
    gate_doping = Physics.Constants.per_cm3 1.0e20;
    temperature = dev.temperature;
  }
