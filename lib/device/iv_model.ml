let vt_of dev = Physics.Constants.thermal_voltage dev.Compact.temperature

let softplus x = if x > 40.0 then x else log1p (exp x)

(* EKV interpolation function F(v) = ln^2(1 + e^{v/2}), v normalized to vT. *)
let big_f v =
  let l = softplus (0.5 *. v) in
  l *. l

let specific_current dev =
  let vt = vt_of dev in
  2.0 *. dev.Compact.m *. dev.Compact.mu *. dev.Compact.cox *. vt *. vt /. dev.Compact.leff

let saturation_velocity_factor dev ~uf =
  let vt = vt_of dev in
  let carrier =
    match dev.Compact.polarity with
    | Params.Nfet -> Physics.Mobility.Electron
    | Params.Pfet -> Physics.Mobility.Hole
  in
  let ec = Physics.Mobility.critical_field carrier dev.Compact.neff in
  let vgt_eff = 2.0 *. vt *. sqrt (big_f uf) in
  1.0 /. (1.0 +. (vgt_eff /. (ec *. dev.Compact.leff)))

let id dev ~vgs ~vds =
  if vds < 0.0 then invalid_arg "Iv_model.id: vds must be non-negative";
  let vt = vt_of dev in
  let vth = Compact.vth dev ~vds in
  let vp = (vgs -. vth) /. dev.Compact.m in
  let uf = vp /. vt in
  let ur = (vp -. vds) /. vt in
  let i_norm = big_f uf -. big_f ur in
  specific_current dev *. i_norm *. saturation_velocity_factor dev ~uf

let ioff dev ~vdd = id dev ~vgs:0.0 ~vds:vdd
let ion dev ~vdd = id dev ~vgs:vdd ~vds:vdd
let on_off_ratio dev ~vdd = ion dev ~vdd /. ioff dev ~vdd

let gm dev ~vgs ~vds =
  let h = 1e-5 in
  (id dev ~vgs:(vgs +. h) ~vds -. id dev ~vgs:(vgs -. h) ~vds) /. (2.0 *. h)

let gds dev ~vgs ~vds =
  let h = 1e-5 in
  let lo = Float.max 0.0 (vds -. h) in
  (id dev ~vgs ~vds:(vds +. h) -. id dev ~vgs ~vds:lo) /. (vds +. h -. lo)

let intrinsic_delay dev ~vdd = dev.Compact.cg_intrinsic *. vdd /. ion dev ~vdd

let threshold_const_current dev ~vds =
  let criterion = 1e-7 /. dev.Compact.leff in
  let f vg = id dev ~vgs:vg ~vds -. criterion in
  Numerics.Root.brent ~tol:1e-9 f (-0.5) 2.0
