let vt_at t = Physics.Constants.thermal_voltage t

let slope_factor ?(k_body = 1.0) ~tox ~wdep () =
  1.0 +. (k_body *. 3.0 *. tox /. wdep)

let short_channel_factor ?(k_sce = 1.0) ?(k_lambda = 1.0) ?(xj_exp = 0.5) ?xj ~tox ~wdep
    ~leff () =
  (* With a junction depth, the decay length is a dimensionally consistent
     weighted geometric mean x_j^a (t_ox W_dep)^((1-a)/2) — a Brews-style
     dependence through which shallower junctions preserve channel control
     in scaled devices; without one, the paper's literal Eq. 2(b) scale
     (W_dep + 3 T_ox). *)
  let lambda =
    match xj with
    | Some xj ->
      k_lambda *. (xj ** xj_exp) *. ((tox *. wdep) ** (0.5 *. (1.0 -. xj_exp)))
    | None -> k_lambda *. (wdep +. (3.0 *. tox))
  in
  1.0 +. (k_sce *. 11.0 *. tox /. wdep *. exp (-.Float.pi *. leff /. (2.0 *. lambda)))

let inverse_slope ?(k_body = 1.0) ?(k_sce = 1.0) ?(k_lambda = 1.0) ?(ss_offset = 0.0)
    ?(t = Physics.Constants.t_room) ?(xj_exp = 0.5) ?xj ~tox ~wdep ~leff () =
  (2.3 *. vt_at t
   *. slope_factor ~k_body ~tox ~wdep ()
   *. short_channel_factor ~k_sce ~k_lambda ~xj_exp ?xj ~tox ~wdep ~leff ())
  +. ss_offset

let current ~i0 ~m ~vth ?(t = Physics.Constants.t_room) ~vgs ~vds () =
  let vt = vt_at t in
  let e1 = exp (Float.min 80.0 ((vgs -. vth) /. (m *. vt))) in
  i0 *. e1 *. (1.0 -. exp (-.vds /. vt))

let i0_of_spec ~mu ~cox ~m ~leff ?(t = Physics.Constants.t_room) () =
  let vt = vt_at t in
  mu *. (m -. 1.0) *. cox *. vt *. vt /. leff
