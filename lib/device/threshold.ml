let long_channel ?(t = Physics.Constants.t_room) ?(gate_doping = Physics.Constants.per_cm3 1e20)
    ~neff ~cox () =
  let phi_f = Physics.Silicon.fermi_potential ~t neff in
  let phi_gate = Physics.Silicon.fermi_potential ~t gate_doping in
  let vfb = -.(phi_gate +. phi_f) in
  let qdep = sqrt (2.0 *. Physics.Constants.q *. Physics.Constants.eps_si *. neff *. 2.0 *. phi_f) in
  vfb +. (2.0 *. phi_f) +. (qdep /. cox)

let characteristic_length ~tox ~wdep =
  sqrt (Physics.Constants.eps_si *. tox *. wdep /. Physics.Constants.eps_ox)

let rolloff ?(k_vth_sce = 1.0) ?(k_dibl = 1.0) ~vbi ~surface_potential ~vds ~leff ~lt () =
  -.k_vth_sce
  *. ((2.0 *. (vbi -. surface_potential)) +. (k_dibl *. vds))
  *. exp (-.leff /. (2.0 *. lt))
