(* Process-wide metrics registry: counters, gauges and histograms.

   Unlike the tracer, metrics are always on — a counter bump is one atomic
   increment and a histogram observation is a short bucket scan plus a
   mutex-protected accumulate, both negligible next to the solves they
   instrument.  The registry is keyed by name with get-or-create semantics,
   so independent modules (and repeated table constructions in tests) share
   one instrument per name instead of shadowing each other.

   The Exec.Memo hit/miss accounting reports through this registry
   (counters "memo.<table>.hits"/"memo.<table>.misses"), and every solver
   non-convergence exit bumps a "<solver>.non_converged" counter — which is
   what makes a silently-stalling solver visible in the profile and
   grep-able in CI. *)

type counter = { c_name : string; c_count : int Atomic.t }

type gauge = { g_name : string; g_lock : Mutex.t; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* upper bucket bounds, strictly increasing *)
  buckets : int Atomic.t array;  (* length bounds + 1; last is overflow *)
  h_lock : Mutex.t;  (* guards the moment accumulators below *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type hist_stats = {
  count : int;
  sum : float;
  min : float;  (* +inf when empty *)
  max : float;  (* -inf when empty *)
  buckets : (float * int) list;  (* (upper bound, count) *)
  overflow : int;
}

type value = Counter of int | Gauge of float | Histogram of hist_stats

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let get_or_create name make describe =
  (* [make] is caller-supplied; Mutex.protect keeps an exception in it
     from leaking the registry lock. *)
  let m =
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some m -> m
        | None ->
          let m = make () in
          Hashtbl.add registry name m;
          m)
  in
  match describe m with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered with another type" name)

let counter name =
  get_or_create name
    (fun () -> M_counter { c_name = name; c_count = Atomic.make 0 })
    (function M_counter c -> Some c | M_gauge _ | M_histogram _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_count by : int)
let counter_value c = Atomic.get c.c_count
let reset_counter c = Atomic.set c.c_count 0
let counter_name c = c.c_name

let gauge name =
  get_or_create name
    (fun () -> M_gauge { g_name = name; g_lock = Mutex.create (); g_value = 0.0 })
    (function M_gauge g -> Some g | M_counter _ | M_histogram _ -> None)

let gauge_name g = g.g_name

let set g v =
  Mutex.lock g.g_lock;
  g.g_value <- v;
  Mutex.unlock g.g_lock

let gauge_value g =
  Mutex.lock g.g_lock;
  let v = g.g_value in
  Mutex.unlock g.g_lock;
  v

(* Suited to iteration counts and microsecond-scale waits alike. *)
let default_bounds = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0 |]

let histogram ?(bounds = default_bounds) name =
  let ok = ref (Array.length bounds > 0) in
  Array.iteri (fun i b -> if i > 0 && bounds.(i - 1) >= b then ok := false) bounds;
  if not !ok then invalid_arg "Obs.Metrics.histogram: bounds must be non-empty and increasing";
  get_or_create name
    (fun () ->
      M_histogram
        {
          h_name = name;
          bounds = Array.copy bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_lock = Mutex.create ();
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        })
    (function M_histogram h -> Some h | M_counter _ | M_gauge _ -> None)

let histogram_name h = h.h_name

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(bucket 0) 1 : int);
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  Mutex.unlock h.h_lock

let hist_stats h =
  Mutex.lock h.h_lock;
  let count = h.h_count and sum = h.h_sum and min = h.h_min and max = h.h_max in
  Mutex.unlock h.h_lock;
  let n = Array.length h.bounds in
  {
    count;
    sum;
    min;
    max;
    buckets = Array.to_list (Array.init n (fun i -> (h.bounds.(i), Atomic.get h.buckets.(i))));
    overflow = Atomic.get h.buckets.(n);
  }

let reset_histogram h =
  Mutex.lock h.h_lock;
  h.h_count <- 0;
  h.h_sum <- 0.0;
  h.h_min <- infinity;
  h.h_max <- neg_infinity;
  Mutex.unlock h.h_lock;
  Array.iter (fun b -> Atomic.set b 0) h.buckets

let snapshot () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  entries
  |> List.map (fun (name, m) ->
         match m with
         | M_counter c -> (name, Counter (counter_value c))
         | M_gauge g -> (name, Gauge (gauge_value g))
         | M_histogram h -> (name, Histogram (hist_stats h)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  Mutex.lock registry_lock;
  let m = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  Option.map
    (function
      | M_counter c -> Counter (counter_value c)
      | M_gauge g -> Gauge (gauge_value g)
      | M_histogram h -> Histogram (hist_stats h))
    m

let reset () =
  Mutex.lock registry_lock;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter
    (function
      | M_counter c -> reset_counter c
      | M_gauge g -> set g 0.0
      | M_histogram h -> reset_histogram h)
    metrics
