(** Obs: zero-dependency observability for the solver stack.

    - {!Trace} — a span tracer (near-zero overhead when disabled, Chrome
      [trace_event] JSON export);
    - {!Metrics} — an always-on process-wide registry of counters, gauges
      and histograms (solver iterations, memo hit/miss, pool queue waits);
    - {!Export} — the JSON writer and the summary tables.

    The contract that makes this safe to leave compiled into every hot
    path: observation never feeds back into computation.  No memo key, no
    pool schedule and no numeric result depends on whether tracing is on
    (DESIGN.md, "Observability"). *)

module Trace = Trace
module Metrics = Metrics
module Export = Export

let enabled = Trace.enabled

(* The one structured event every solver emits when it exits without
   meeting its tolerance: a "<solver>.non_converged" counter bump (always)
   plus an instant trace event (when tracing).  CI greps the trace for
   [non_converged]; the profile prints the counters. *)
let non_converged ~solver ?(attrs = []) detail =
  Metrics.incr (Metrics.counter (solver ^ ".non_converged"));
  Trace.instant ~cat:solver ~attrs:(("detail", Trace.S detail) :: attrs) "non_converged"

let non_converged_counters () =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Counter n
        when n > 0
             && String.length name > 14
             && String.sub name (String.length name - 14) 14 = ".non_converged" -> Some (name, n)
      | Metrics.Counter _ | Metrics.Gauge _ | Metrics.Histogram _ -> None)
    (Metrics.snapshot ())

(* --- process wiring: --trace FILE / --profile / SUBSCALE_TRACE ------- *)

let trace_path = ref None
let profile_requested = ref false
let exit_hook_installed = ref false
let config_lock = Mutex.create ()

let flush () =
  (match !trace_path with
   | Some path -> Export.write_chrome ~path (Trace.events ())
   | None -> ());
  if !profile_requested then begin
    prerr_string "--- obs: span summary -----------------------------------\n";
    prerr_string (Export.span_summary (Trace.events ()));
    prerr_string "--- obs: metrics ----------------------------------------\n";
    prerr_string (Export.metrics_summary (Metrics.snapshot ()));
    flush stderr
  end

let install_exit_hook () =
  Mutex.lock config_lock;
  let fresh = not !exit_hook_installed in
  exit_hook_installed := true;
  Mutex.unlock config_lock;
  if fresh then at_exit flush

let set_trace_file path =
  Trace.enable ();
  trace_path := Some path;
  install_exit_hook ()

let enable_profile () =
  Trace.enable ();
  profile_requested := true;
  install_exit_hook ()

let init_from_env () =
  match Sys.getenv_opt "SUBSCALE_TRACE" with
  | Some path when String.trim path <> "" -> set_trace_file (String.trim path)
  | Some _ | None -> ()
