(** Trace and metrics rendering. *)

val chrome_json : ?dropped:int -> Trace.event list -> string
(** Chrome [trace_event] JSON (the "JSON Array Format" with a
    [traceEvents] wrapper): spans as complete events ([ph:"X"], ts/dur in
    microseconds rebased to the first event), instants as [ph:"i"], the
    recording domain id as [tid].  Loadable in [chrome://tracing] and
    Perfetto.  Non-finite attribute floats are rendered as strings so the
    output is always strictly valid JSON. *)

val write_chrome : path:string -> Trace.event list -> unit
(** Write {!chrome_json} (with the tracer's current dropped-event count)
    to [path]. *)

val span_summary : Trace.event list -> string
(** Per-(category, name) table: count, total, mean, max duration, sorted
    by total time descending; instant events counted below. *)

val metrics_summary : (string * Metrics.value) list -> string
(** One line per registered metric (pass [Metrics.snapshot ()]). *)
