(** Process-wide metrics registry: counters, gauges, histograms.

    Always on (a counter is one atomic increment), domain-safe, and keyed
    by name with get-or-create semantics: [counter "x"] from two modules
    returns the same instrument.  Requesting an existing name with a
    different metric type raises [Invalid_argument].

    Naming convention: dotted lowercase paths, e.g.
    ["tcad.poisson.non_converged"], ["memo.scaling.evaluate.hits"]. *)

type counter
type gauge
type histogram

type hist_stats = {
  count : int;
  sum : float;
  min : float;  (** [+inf] when empty *)
  max : float;  (** [-inf] when empty *)
  buckets : (float * int) list;  (** (inclusive upper bound, count) *)
  overflow : int;  (** observations above the last bound *)
}

type value = Counter of int | Gauge of float | Histogram of hist_stats

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val reset_counter : counter -> unit
val counter_name : counter -> string

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val default_bounds : float array
(** [1, 2, 5, 10, ... 1000] — suited to iteration counts. *)

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are strictly-increasing inclusive upper bucket bounds; an
    extra overflow bucket catches everything above the last. *)

val observe : histogram -> float -> unit
val hist_stats : histogram -> hist_stats
val histogram_name : histogram -> string

val snapshot : unit -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val find : string -> value option

val reset : unit -> unit
(** Zero every registered metric (registrations survive).  Test harness
    use; resetting mid-run also zeroes the memo hit/miss mirrors. *)
