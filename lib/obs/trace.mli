(** Span-based tracer with string names and typed attributes.

    Disabled (the default), every entry point is a single atomic flag load,
    so instrumentation can live on solver hot paths.  Enabled, spans record
    (name, category, start, duration, domain id, attributes) into a bounded
    process-wide buffer that {!Export} renders as Chrome [trace_event] JSON
    or a summary table.

    Tracing is strictly observational: it never perturbs memo keys, pool
    schedules or numeric results (see DESIGN.md, "Observability"). *)

type attr = F of float | I of int | S of string | B of bool

type event =
  | Complete of {
      name : string;
      cat : string;
      ts : float;  (** span start, seconds since the Unix epoch *)
      dur : float;  (** seconds *)
      tid : int;  (** id of the recording domain *)
      attrs : (string * attr) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      attrs : (string * attr) list;
    }

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_tracing : (unit -> 'a) -> 'a
(** Run [f] with tracing enabled, restoring the previous state after. *)

type span

val start : ?cat:string -> string -> span
(** Begin a span.  When tracing is disabled this is a no-op returning a
    constant. *)

val stop : ?attrs:(string * attr) list -> span -> unit
(** End a span, attaching final attributes (iteration counts, residuals,
    convergence flags — values only known at the end). *)

val with_span : ?cat:string -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f] in a span.  An escaping exception still
    closes the span (with a ["raised"] attribute) and is re-raised. *)

val instant : ?cat:string -> ?attrs:(string * attr) list -> string -> unit
(** Record a point event — e.g. a solver's [non_converged] exit. *)

val events : unit -> event list
(** Everything recorded so far, in record order. *)

val dropped : unit -> int
(** Events discarded because the buffer hit its capacity. *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Buffer bound (default 1e6 events); overflow increments {!dropped}
    rather than growing without bound. *)

val event_name : event -> string
val event_cat : event -> string
val event_attrs : event -> (string * attr) list
