(* Render traces and metrics: Chrome trace_event JSON (loadable in
   chrome://tracing and Perfetto) and human-readable summary tables. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Non-finite floats have no JSON literal; render them as strings so the
   file stays parseable by any strict reader. *)
let buf_add_json_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
  else buf_add_json_string b (Printf.sprintf "%h" f)

let buf_add_attr b = function
  | Trace.F f -> buf_add_json_float b f
  | Trace.I i -> Buffer.add_string b (string_of_int i)
  | Trace.S s -> buf_add_json_string b s
  | Trace.B v -> Buffer.add_string b (if v then "true" else "false")

let buf_add_args b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_attr b v)
    attrs;
  Buffer.add_char b '}'

let us t = t *. 1e6

(* Timestamps are rebased to the earliest event so the viewer opens at
   t = 0 instead of the Unix epoch. *)
let chrome_json ?(dropped = 0) events =
  let t0 =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Trace.Complete { ts; _ } | Trace.Instant { ts; _ } -> Float.min acc ts)
      infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      match ev with
      | Trace.Complete { name; cat; ts; dur; tid; attrs } ->
        Buffer.add_string b "{\"name\":";
        buf_add_json_string b name;
        Buffer.add_string b ",\"cat\":";
        buf_add_json_string b (if cat = "" then "default" else cat);
        Buffer.add_string b ",\"ph\":\"X\",\"ts\":";
        buf_add_json_float b (us (ts -. t0));
        Buffer.add_string b ",\"dur\":";
        buf_add_json_float b (us dur);
        Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":" tid);
        buf_add_args b attrs;
        Buffer.add_char b '}'
      | Trace.Instant { name; cat; ts; tid; attrs } ->
        Buffer.add_string b "{\"name\":";
        buf_add_json_string b name;
        Buffer.add_string b ",\"cat\":";
        buf_add_json_string b (if cat = "" then "default" else cat);
        Buffer.add_string b ",\"ph\":\"i\",\"s\":\"g\",\"ts\":";
        buf_add_json_float b (us (ts -. t0));
        Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":" tid);
        buf_add_args b attrs;
        Buffer.add_char b '}')
    events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"subscale\",";
  Buffer.add_string b (Printf.sprintf "\"droppedEvents\":%d}}" dropped);
  Buffer.contents b

let write_chrome ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ~dropped:(Trace.dropped ()) events))

(* --- summary tables ------------------------------------------------- *)

let time_str s =
  if Float.abs s < 1e-3 then Printf.sprintf "%8.1f us" (s *. 1e6)
  else if Float.abs s < 1.0 then Printf.sprintf "%8.2f ms" (s *. 1e3)
  else Printf.sprintf "%8.2f s " s

(* Aggregate spans by (cat, name): count, total/mean/max duration, sorted
   by total descending — the "where did the time go" table. *)
let span_summary events =
  let tbl : (string * string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  let instants : (string * string, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Complete { name; cat; dur; _ } ->
        let n, total, mx =
          match Hashtbl.find_opt tbl (cat, name) with
          | Some r -> r
          | None ->
            let r = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.add tbl (cat, name) r;
            r
        in
        incr n;
        total := !total +. dur;
        if dur > !mx then mx := dur
      | Trace.Instant { name; cat; _ } ->
        (match Hashtbl.find_opt instants (cat, name) with
         | Some n -> incr n
         | None -> Hashtbl.add instants (cat, name) (ref 1)))
    events;
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-40s %8s %11s %11s %11s\n" "span" "count" "total" "mean" "max");
  let rows =
    Hashtbl.fold (fun (cat, name) (n, total, mx) acc -> (cat, name, !n, !total, !mx) :: acc) tbl []
    |> List.sort (fun (_, _, _, ta, _) (_, _, _, tb, _) -> Float.compare tb ta)
  in
  List.iter
    (fun (cat, name, n, total, mx) ->
      let label = if cat = "" then name else cat ^ "/" ^ name in
      Buffer.add_string b
        (Printf.sprintf "%-40s %8d %11s %11s %11s\n" label n (time_str total)
           (time_str (total /. float_of_int (max 1 n)))
           (time_str mx)))
    rows;
  let marks =
    Hashtbl.fold (fun (cat, name) n acc -> (cat, name, !n) :: acc) instants []
    |> List.sort compare
  in
  if marks <> [] then begin
    Buffer.add_string b "instant events:\n";
    List.iter
      (fun (cat, name, n) ->
        let label = if cat = "" then name else cat ^ "/" ^ name in
        Buffer.add_string b (Printf.sprintf "  %-38s %8d\n" label n))
      marks
  end;
  Buffer.contents b

let metrics_summary snapshot =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> Buffer.add_string b (Printf.sprintf "%-44s %12d\n" name n)
      | Metrics.Gauge g -> Buffer.add_string b (Printf.sprintf "%-44s %12.6g\n" name g)
      | Metrics.Histogram h ->
        if h.Metrics.count = 0 then
          Buffer.add_string b (Printf.sprintf "%-44s %12s\n" name "(empty)")
        else
          Buffer.add_string b
            (Printf.sprintf "%-44s %12d  mean %.2f  min %g  max %g\n" name h.Metrics.count
               (h.Metrics.sum /. float_of_int h.Metrics.count)
               h.Metrics.min h.Metrics.max))
    snapshot;
  Buffer.contents b
