(* Span-based tracer.

   Disabled (the default) the entire tracer is one atomic flag load per
   span — no clock read, no allocation beyond the [Off] constant — so the
   instrumented hot paths (Poisson/Gummel solves, the domain pool, the
   memo tables) cost nothing when nobody is looking.  Enabled, spans and
   instant events are appended to a mutex-protected buffer tagged with the
   recording domain's id, which is what the Chrome trace_event export uses
   as the thread lane.

   The tracer is strictly observational: it reads clocks and appends to a
   private buffer, and never feeds anything back into the computation, so
   memo keys, pool schedules and every numeric result are bit-identical
   with tracing on or off (test_obs holds a qcheck property to that
   effect). *)

type attr = F of float | I of int | S of string | B of bool

type event =
  | Complete of {
      name : string;
      cat : string;
      ts : float;  (* start, seconds (Unix epoch) *)
      dur : float;  (* seconds *)
      tid : int;  (* recording domain *)
      attrs : (string * attr) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      attrs : (string * attr) list;
    }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* Bounded buffer: a runaway sweep cannot eat the heap.  Drops are counted
   and reported by the export so truncation is visible, never silent. *)
let default_capacity = 1_000_000
let capacity = Atomic.make default_capacity
let set_capacity n = Atomic.set capacity (max 1 n)

let buffer : event list ref = ref []
let length = ref 0
let dropped_count = ref 0
let lock = Mutex.create ()

let record ev =
  Mutex.lock lock;
  if !length < Atomic.get capacity then begin
    buffer := ev :: !buffer;
    incr length
  end
  else incr dropped_count;
  Mutex.unlock lock

let events () =
  Mutex.lock lock;
  let evs = List.rev !buffer in
  Mutex.unlock lock;
  evs

let dropped () =
  Mutex.lock lock;
  let d = !dropped_count in
  Mutex.unlock lock;
  d

let clear () =
  Mutex.lock lock;
  buffer := [];
  length := 0;
  dropped_count := 0;
  Mutex.unlock lock

let now () = Unix.gettimeofday ()
let tid () = (Domain.self () :> int)

type span = Off | On of { name : string; cat : string; t0 : float; tid : int }

let start ?(cat = "") name =
  if Atomic.get enabled_flag then On { name; cat; t0 = now (); tid = tid () } else Off

let stop ?(attrs = []) span =
  match span with
  | Off -> ()
  | On { name; cat; t0; tid } -> record (Complete { name; cat; ts = t0; dur = now () -. t0; tid; attrs })

let with_span ?cat ?(attrs = []) name f =
  match start ?cat name with
  | Off -> f ()
  | On _ as s ->
    (match f () with
     | v ->
       stop ~attrs s;
       v
     | exception e ->
       stop ~attrs:(("raised", S (Printexc.to_string e)) :: attrs) s;
       raise e)

let instant ?(cat = "") ?(attrs = []) name =
  if Atomic.get enabled_flag then record (Instant { name; cat; ts = now (); tid = tid (); attrs })

let with_tracing f =
  let previous = Atomic.get enabled_flag in
  Atomic.set enabled_flag true;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag previous) f

let event_name = function Complete { name; _ } | Instant { name; _ } -> name
let event_cat = function Complete { cat; _ } | Instant { cat; _ } -> cat
let event_attrs = function Complete { attrs; _ } | Instant { attrs; _ } -> attrs
