(** Obs: tracing and metrics for the solver stack (see {!Trace},
    {!Metrics}, {!Export}).  Observation never feeds back into
    computation: results are bit-identical with tracing on or off. *)

module Trace = Trace
module Metrics = Metrics
module Export = Export

val enabled : unit -> bool
(** Whether span tracing is currently on ({!Trace.enabled}). *)

val non_converged :
  solver:string -> ?attrs:(string * Trace.attr) list -> string -> unit
(** [non_converged ~solver detail] is the canonical non-convergence exit
    event: bumps the ["<solver>.non_converged"] counter (always) and emits
    an instant ["non_converged"] trace event with a ["detail"] attribute
    (when tracing).  Every solver fallback path calls this, so a stalled
    solve is visible in the profile, the trace and CI — never silent. *)

val non_converged_counters : unit -> (string * int) list
(** Every ["*.non_converged"] counter with a positive count — the
    post-run convergence health check (see [Check.Solver_rules]). *)

val set_trace_file : string -> unit
(** Enable tracing and write a Chrome trace to the path at process exit
    (the CLI's [--trace FILE]). *)

val enable_profile : unit -> unit
(** Enable tracing and print a span summary plus the metrics registry to
    stderr at process exit (the CLI's [--profile]). *)

val init_from_env : unit -> unit
(** Honour [SUBSCALE_TRACE=FILE]: when set and non-empty, behaves like
    {!set_trace_file}. *)

val flush : unit -> unit
(** Write the trace file / print the profile now (registered via [at_exit]
    by {!set_trace_file} and {!enable_profile}; callable directly). *)
