type polarity = Nchannel | Pchannel

type description = {
  polarity : polarity;
  lpoly : float;
  tox : float;
  nsub : float;
  np_halo : float;
  xj : float;
  nsd : float;
  overlap : float;
  halo_depth_frac : float;
  halo_sigma_frac : float;
  gate_doping : float;
  temperature : float;
}

let default_description =
  let lpoly = Physics.Constants.nm 65.0 in
  {
    polarity = Nchannel;
    lpoly;
    tox = Physics.Constants.nm 2.1;
    nsub = Physics.Constants.per_cm3 1.52e18;
    np_halo = Physics.Constants.per_cm3 2.11e18;
    xj = 0.35 *. lpoly;
    nsd = Physics.Constants.per_cm3 1.0e20;
    overlap = 0.12 *. lpoly;
    halo_depth_frac = 0.5;
    halo_sigma_frac = 0.45;
    gate_doping = Physics.Constants.per_cm3 1.0e20;
    temperature = 300.0;
  }

(* Canonical content key over every field that shapes the built device:
   the mesh, doping fields and boundaries are all functions of the
   description, so memoizing a characterization on this key is exact. *)
let description_key (d : description) =
  Exec.Key.(
    fields "tcad_description"
      [ ("polarity", (match d.polarity with Nchannel -> "n" | Pchannel -> "p"));
        ("lpoly", float d.lpoly);
        ("tox", float d.tox);
        ("nsub", float d.nsub);
        ("np_halo", float d.np_halo);
        ("xj", float d.xj);
        ("nsd", float d.nsd);
        ("overlap", float d.overlap);
        ("halo_depth_frac", float d.halo_depth_frac);
        ("halo_sigma_frac", float d.halo_sigma_frac);
        ("gate_doping", float d.gate_doping);
        ("temperature", float d.temperature) ])

(* Kept in sync with [description_key] above; the memo-soundness auditor
   cross-checks this list against the fields a characterization reads. *)
let description_key_fields =
  [ "polarity"; "lpoly"; "tox"; "nsub"; "np_halo"; "xj"; "nsd"; "overlap";
    "halo_depth_frac"; "halo_sigma_frac"; "gate_doping"; "temperature" ]

let scale_description ?lpoly ?tox ?nsub ?np_halo d =
  let lpoly' = Option.value lpoly ~default:d.lpoly in
  let ratio = lpoly' /. d.lpoly in
  {
    d with
    lpoly = lpoly';
    tox = Option.value tox ~default:d.tox;
    nsub = Option.value nsub ~default:d.nsub;
    np_halo = Option.value np_halo ~default:d.np_halo;
    xj = d.xj *. ratio;
    overlap = d.overlap *. ratio;
  }

type terminal = Source | Drain | Gate | Substrate

type boundary = Interior | Ohmic of terminal | Gate_surface | Reflecting

type t = {
  desc : description;
  mesh : Mesh.t;
  net_doping : Field.t;
  total_doping : Field.t;
  boundary : boundary array;
  bmask : Field.Mask.t;
  bulk_phi : Field.t;
  mobility_n : Field.t;
  mobility_p : Field.t;
  gate_potential_offset : float;
  x_channel_mid : float;
  ni : float;
  vt : float;
}

let mask_of_boundary = function
  | Interior -> Field.Mask.interior
  | Reflecting -> Field.Mask.reflecting
  | Gate_surface -> Field.Mask.gate_surface
  | Ohmic Source -> Field.Mask.ohmic_source
  | Ohmic Drain -> Field.Mask.ohmic_drain
  | Ohmic Gate -> Field.Mask.ohmic_gate
  | Ohmic Substrate -> Field.Mask.ohmic_substrate

(* Geometry layout along x:
     [0 .. w_contact]                      source ohmic contact (top surface)
     [w_contact .. x_g0]                   source spacer (reflecting top)
     [x_g0 .. x_g1]                        gate (Robin through oxide)
     [x_g1 .. x_total - w_contact]         drain spacer
     [x_total - w_contact .. x_total]      drain ohmic contact
   The S/D metallurgical edges sit [overlap] inside the gate edges. *)
let layout d =
  let w_contact = 1.2 *. d.xj in
  let w_spacer = Float.max (1.5 *. d.xj) (0.5 *. d.lpoly) in
  let x_g0 = w_contact +. w_spacer in
  let x_g1 = x_g0 +. d.lpoly in
  let x_total = x_g1 +. w_spacer +. w_contact in
  (w_contact, x_g0, x_g1, x_total)

let depth d = Float.max (6.0 *. d.xj) (Physics.Constants.nm 80.0)

let gate_span d =
  let _, x_g0, x_g1, _ = layout d in
  (x_g0, x_g1)

let build ?(nx = 61) ?(ny = 41) d =
  if d.lpoly <= 0.0 || d.tox <= 0.0 then invalid_arg "Structure.build: bad dimensions";
  if d.nsub <= 0.0 || d.nsd <= 0.0 then invalid_arg "Structure.build: bad dopings";
  let w_contact, x_g0, x_g1, x_total = layout d in
  let y_total = depth d in
  (* Lateral grid refined near both gate edges (where halos and junctions
     live); vertical grid refined at the surface. *)
  let h_min_x = Float.max (d.lpoly /. 24.0) (x_total /. float_of_int (8 * nx)) in
  let h_max_x = x_total /. 12.0 in
  let xs =
    Numerics.Grid.refined_around 0.0 x_total
      ~centers:[ x_g0; 0.5 *. (x_g0 +. x_g1); x_g1 ]
      ~h_min:h_min_x ~h_max:h_max_x
  in
  let h_min_y = Float.max (y_total /. float_of_int (10 * ny)) (Physics.Constants.nm 0.35) in
  let h_max_y = y_total /. 8.0 in
  let ys =
    Numerics.Grid.refined_around 0.0 y_total ~centers:[ 0.0; d.halo_depth_frac *. d.xj ]
      ~h_min:h_min_y ~h_max:h_max_y
  in
  let mesh = Mesh.make ~xs ~ys in
  let n = Mesh.n_nodes mesh in
  (* Doping: uniform p substrate + two acceptor halos + donor S/D wells. *)
  let source_edge = x_g0 +. d.overlap in
  let drain_edge = x_g1 -. d.overlap in
  let lateral_sigma = 0.18 *. d.xj in
  let donors =
    Doping.sum
      [
        Doping.source_drain ~peak:d.nsd ~junction:source_edge ~side:`Source ~xj:d.xj
          ~background:d.nsub ~lateral_sigma;
        Doping.source_drain ~peak:d.nsd ~junction:drain_edge ~side:`Drain ~xj:d.xj
          ~background:d.nsub ~lateral_sigma;
      ]
  in
  let halo_y = d.halo_depth_frac *. d.xj in
  let halo_sigma = d.halo_sigma_frac *. d.xj in
  let acceptors =
    Doping.sum
      [
        Doping.uniform d.nsub;
        Doping.gaussian2d ~peak:d.np_halo ~x0:source_edge ~y0:halo_y ~sigma_x:halo_sigma
          ~sigma_y:halo_sigma;
        Doping.gaussian2d ~peak:d.np_halo ~x0:drain_edge ~y0:halo_y ~sigma_x:halo_sigma
          ~sigma_y:halo_sigma;
      ]
  in
  let net_doping = Field.create n in
  let total_doping = Field.create n in
  (* [donors]/[acceptors] above are written for the N-channel layout (donor
     wells in an acceptor body); a P-channel device is its exact mirror, so
     the net doping simply flips sign. *)
  let sign = match d.polarity with Nchannel -> 1.0 | Pchannel -> -1.0 in
  for k = 0 to n - 1 do
    let x, y = Mesh.coords mesh k in
    let nd = donors ~x ~y and na = acceptors ~x ~y in
    Field.set net_doping k (sign *. (nd -. na));
    Field.set total_doping k (nd +. na)
  done;
  (* Boundary classification. *)
  let boundary = Array.make n Interior in
  let nxm = mesh.Mesh.nx and nym = mesh.Mesh.ny in
  for ix = 0 to nxm - 1 do
    let x = xs.(ix) in
    (* Top surface. *)
    let k_top = Mesh.index mesh ~ix ~iy:0 in
    boundary.(k_top) <-
      (if x <= w_contact then Ohmic Source
       else if x >= x_total -. w_contact then Ohmic Drain
       else if x >= x_g0 && x <= x_g1 then Gate_surface
       else Reflecting);
    (* Bottom: substrate contact. *)
    boundary.(Mesh.index mesh ~ix ~iy:(nym - 1)) <- Ohmic Substrate
  done;
  for iy = 1 to nym - 2 do
    boundary.(Mesh.index mesh ~ix:0 ~iy) <- Reflecting;
    boundary.(Mesh.index mesh ~ix:(nxm - 1) ~iy) <- Reflecting
  done;
  let bmask = Field.Mask.create n in
  for k = 0 to n - 1 do
    Field.Mask.set bmask k (mask_of_boundary boundary.(k))
  done;
  (* Precomputed charge-neutral potentials: the equilibrium initial guess
     and the built-in part of every ohmic Dirichlet value. *)
  let bulk_phi =
    Field.init n (fun k ->
        Physics.Silicon.bulk_potential_of_net_doping ~t:d.temperature (Field.get net_doping k))
  in
  let mobility_n =
    Field.init n (fun k ->
        Physics.Mobility.channel ~t:d.temperature Physics.Mobility.Electron
          (Field.get total_doping k))
  in
  let mobility_p =
    Field.init n (fun k ->
        Physics.Mobility.channel ~t:d.temperature Physics.Mobility.Hole
          (Field.get total_doping k))
  in
  (* n+ poly for the N-channel device, p+ poly for the P-channel mirror. *)
  let gate_potential_offset =
    sign *. Physics.Silicon.fermi_potential ~t:d.temperature d.gate_doping
  in
  {
    desc = d;
    mesh;
    net_doping;
    total_doping;
    boundary;
    bmask;
    bulk_phi;
    mobility_n;
    mobility_p;
    gate_potential_offset;
    x_channel_mid = 0.5 *. (x_g0 +. x_g1);
    ni = Physics.Silicon.intrinsic_density d.temperature;
    vt = Physics.Constants.thermal_voltage d.temperature;
  }

let effective_channel_length dev =
  let mesh = dev.mesh in
  let nxm = mesh.Mesh.nx in
  (* Walk the surface row, find sign changes of net doping. *)
  let sign_changes = ref [] in
  for ix = 0 to nxm - 2 do
    let k0 = Mesh.index mesh ~ix ~iy:0 in
    let k1 = Mesh.index mesh ~ix:(ix + 1) ~iy:0 in
    let d0 = Field.get dev.net_doping k0 and d1 = Field.get dev.net_doping k1 in
    if d0 *. d1 < 0.0 then begin
      let t = d0 /. (d0 -. d1) in
      let x = mesh.Mesh.xs.(ix) +. (t *. (mesh.Mesh.xs.(ix + 1) -. mesh.Mesh.xs.(ix))) in
      sign_changes := x :: !sign_changes
    end
  done;
  match List.rev !sign_changes with
  | x_left :: rest ->
    let x_right = List.fold_left (fun _ x -> x) x_left rest in
    x_right -. x_left
  | [] -> 0.0

let bias_of_terminal ~source ~drain ~gate ~substrate = function
  | Source -> source
  | Drain -> drain
  | Gate -> gate
  | Substrate -> substrate
