(** Nonlinear Poisson solver: div(eps grad psi) = -q (p - n + C) with
    Boltzmann carriers at frozen quasi-Fermi potentials (one Gummel half
    step).  Finite-volume on the tensor mesh; damped Newton with a banded
    direct solver.

    Potentials are referenced to the intrinsic Fermi level, so an ohmic
    contact at applied bias V is the Dirichlet value
    V + vT asinh(C / 2 n_i), and the n+ poly gate couples through the oxide
    with potential V_g + phi_gate. *)

type biases = { source : float; drain : float; gate : float; substrate : float }

val zero_bias : biases

type solution = {
  psi : Numerics.Vec.t;
  iterations : int;
  residual : float;  (** infinity norm of the scaled residual [V] *)
  converged : bool;
}

val equilibrium_guess : Structure.t -> Numerics.Vec.t
(** Charge-neutral potential per node — the standard initial guess. *)

val contact_potential : Structure.t -> biases -> Structure.terminal -> float -> float
(** [contact_potential dev b term net] is the Dirichlet potential of an ohmic
    node of terminal [term] with local net doping [net]. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  Structure.t ->
  biases:biases ->
  phi_n:Numerics.Vec.t ->
  phi_p:Numerics.Vec.t ->
  psi0:Numerics.Vec.t ->
  solution
(** Newton iteration from [psi0]; per-node updates are clamped to a fraction
    of a volt for robustness.  [tol] (default 1e-9 V) bounds the update norm. *)
