(** Nonlinear Poisson solver: div(eps grad psi) = -q (p - n + C) with
    Boltzmann carriers at frozen quasi-Fermi potentials (one Gummel half
    step).  Finite-volume on the tensor mesh; damped Newton with a
    stencil-aware banded direct solver ({!Numerics.Stencil5}) over flat
    {!Field.t} buffers.

    Potentials are referenced to the intrinsic Fermi level, so an ohmic
    contact at applied bias V is the Dirichlet value
    V + vT asinh(C / 2 n_i), and the n+ poly gate couples through the oxide
    with potential V_g + phi_gate. *)

type biases = { source : float; drain : float; gate : float; substrate : float }

val zero_bias : biases

type solution = {
  psi : Field.t;
  iterations : int;
  residual : float;  (** infinity norm of the scaled residual [V] *)
  converged : bool;
}

type scratch = { sys : Numerics.Stencil5.t; work : Field.t }
(** Reusable assembly/solve workspace (system matrix + update buffer).
    One scratch serves every solve on meshes of the same shape — including
    the continuity solves ({!Continuity.solve}) — but must not be shared
    across concurrent domains. *)

val make_scratch : Structure.t -> scratch

val equilibrium_guess : Structure.t -> Field.t
(** Charge-neutral potential per node — the standard initial guess (a copy
    of the structure's precomputed [bulk_phi]). *)

val contact_potential : Structure.t -> biases -> Structure.terminal -> float -> float
(** [contact_potential dev b term net] is the Dirichlet potential of an ohmic
    node of terminal [term] with local net doping [net]. *)

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?quiet:bool ->
  ?scratch:scratch ->
  Structure.t ->
  biases:biases ->
  phi_n:Field.t ->
  phi_p:Field.t ->
  psi0:Field.t ->
  solution
(** Newton iteration from [psi0]; per-node updates are clamped to a fraction
    of a volt for robustness.  [tol] (default 1e-9 V) bounds the update
    norm.  [quiet] suppresses the [Obs.non_converged] event on a stall
    (for speculative warm starts that have a planned fallback); the
    returned [converged] flag is unaffected.  [scratch] reuses an assembly
    workspace across calls; one is allocated per call when omitted. *)
