(* Hot loops below read fields through [BA1] (Bigarray.Array1) directly:
   without flambda the [Field]/[Fvec] wrappers are true cross-module calls
   that box every float, which dominates assembly time on fine meshes. *)
module BA1 = Bigarray.Array1

type biases = { source : float; drain : float; gate : float; substrate : float }

let zero_bias = { source = 0.0; drain = 0.0; gate = 0.0; substrate = 0.0 }

type solution = {
  psi : Field.t;
  iterations : int;
  residual : float;
  converged : bool;
}

type scratch = { sys : Numerics.Stencil5.t; work : Field.t }

let make_scratch dev =
  let mesh = dev.Structure.mesh in
  let n = Mesh.n_nodes mesh in
  { sys = Numerics.Stencil5.create ~n ~m:mesh.Mesh.ny; work = Field.create n }

let q = Physics.Constants.q
let eps_si = Physics.Constants.eps_si
let eps_ox = Physics.Constants.eps_ox

(* Clamp Boltzmann exponents: e^200 would overflow after multiplication by
   n_i; carriers beyond this clamp are unphysical anyway. *)
let safe_exp a = exp (Float.max (-120.0) (Float.min 120.0 a))

let equilibrium_guess dev = Field.copy dev.Structure.bulk_phi

let terminal_bias (b : biases) = function
  | Structure.Source -> b.source
  | Structure.Drain -> b.drain
  | Structure.Gate -> b.gate
  | Structure.Substrate -> b.substrate

let contact_potential dev b term net =
  terminal_bias b term
  +. Physics.Silicon.bulk_potential_of_net_doping ~t:dev.Structure.desc.temperature net

let iterations_hist = Obs.Metrics.histogram "tcad.poisson.iterations"

let solve ?(tol = 1e-9) ?(max_iter = 80) ?(quiet = false) ?scratch dev ~biases ~phi_n ~phi_p
    ~psi0 =
  let mesh = dev.Structure.mesh in
  let nx = mesh.Mesh.nx and ny = mesh.Mesh.ny in
  let n = nx * ny in
  if Field.length psi0 <> n || Field.length phi_n <> n || Field.length phi_p <> n then
    invalid_arg
      (Printf.sprintf
         "Poisson.solve: state length mismatch (psi0 %d, phi_n %d, phi_p %d; %dx%d mesh \
          needs %d)"
         (Field.length psi0) (Field.length phi_n) (Field.length phi_p) nx ny n);
  let { sys = a; work = dpsi } =
    match scratch with
    | Some s ->
      if Numerics.Stencil5.order s.sys <> n || Numerics.Stencil5.offset s.sys <> ny then
        invalid_arg
          (Printf.sprintf
             "Poisson.solve: scratch shape mismatch (scratch is order %d offset %d, \
              %dx%d mesh needs order %d offset %d)"
             (Numerics.Stencil5.order s.sys)
             (Numerics.Stencil5.offset s.sys)
             nx ny n ny);
      s
    | None -> make_scratch dev
  in
  let hx = mesh.Mesh.hx and hy = mesh.Mesh.hy in
  let wxs = mesh.Mesh.wx and wys = mesh.Mesh.wy in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let psi = Field.copy psi0 in
  let bmask = dev.Structure.bmask and bulk_phi = dev.Structure.bulk_phi in
  let net_doping = dev.Structure.net_doping in
  let tox = dev.Structure.desc.Structure.tox in
  (* Applied terminal biases indexed by [mask code - first_ohmic]. *)
  let tb = [| biases.source; biases.drain; biases.gate; biases.substrate |] in
  let gate_pot = biases.gate +. dev.Structure.gate_potential_offset in
  (* Assemble residual F(psi) and Jacobian; returns residual inf-norm scaled
     by the diagonal (units of volts).  Every row is written, so no clear. *)
  let assemble () =
    let max_update_estimate = ref 0.0 in
    for ix = 0 to nx - 1 do
      let wx = Array.unsafe_get wxs ix in
      let inv_hxw = if ix > 0 then 1.0 /. Array.unsafe_get hx (ix - 1) else 0.0 in
      let inv_hxe = if ix < nx - 1 then 1.0 /. Array.unsafe_get hx ix else 0.0 in
      for iy = 0 to ny - 1 do
        let k = (ix * ny) + iy in
        let code = BA1.unsafe_get bmask k in
        if code >= Field.Mask.first_ohmic then begin
          let value =
            Array.unsafe_get tb (code - Field.Mask.first_ohmic) +. BA1.unsafe_get bulk_phi k
          in
          let r = -.(BA1.unsafe_get psi k -. value) in
          Numerics.Stencil5.set_row a k ~west:0.0 ~south:0.0 ~diag:1.0 ~north:0.0 ~east:0.0
            ~rhs:r;
          max_update_estimate := Float.max !max_update_estimate (Float.abs r)
        end
        else begin
          let wy = Array.unsafe_get wys iy in
          let psi_k = BA1.unsafe_get psi k in
          let diag = ref 0.0 and f = ref 0.0 in
          let g_w =
            if ix > 0 then begin
              let g = eps_si *. wy *. inv_hxw in
              f := !f +. (g *. (BA1.unsafe_get psi (k - ny) -. psi_k));
              diag := !diag -. g;
              g
            end
            else 0.0
          in
          let g_e =
            if ix < nx - 1 then begin
              let g = eps_si *. wy *. inv_hxe in
              f := !f +. (g *. (BA1.unsafe_get psi (k + ny) -. psi_k));
              diag := !diag -. g;
              g
            end
            else 0.0
          in
          let g_s =
            if iy > 0 then begin
              let g = eps_si *. wx /. Array.unsafe_get hy (iy - 1) in
              f := !f +. (g *. (BA1.unsafe_get psi (k - 1) -. psi_k));
              diag := !diag -. g;
              g
            end
            else 0.0
          in
          let g_n =
            if iy < ny - 1 then begin
              let g = eps_si *. wx /. Array.unsafe_get hy iy in
              f := !f +. (g *. (BA1.unsafe_get psi (k + 1) -. psi_k));
              diag := !diag -. g;
              g
            end
            else 0.0
          in
          (* Oxide Robin term on gate-surface boxes. *)
          if code = Field.Mask.gate_surface then begin
            let g_ox = eps_ox *. wx /. tox in
            f := !f +. (g_ox *. (gate_pot -. psi_k));
            diag := !diag -. g_ox
          end;
          (* Space charge. *)
          let vol = wx *. wy in
          let n_e = ni *. safe_exp ((psi_k -. BA1.unsafe_get phi_n k) /. vt) in
          let p_h = ni *. safe_exp ((BA1.unsafe_get phi_p k -. psi_k) /. vt) in
          let charge = q *. (p_h -. n_e +. BA1.unsafe_get net_doping k) *. vol in
          f := !f +. charge;
          diag := !diag -. (q *. (p_h +. n_e) /. vt *. vol);
          Numerics.Stencil5.set_row a k ~west:g_w ~south:g_s ~diag:!diag ~north:g_n ~east:g_e
            ~rhs:(-. !f);
          max_update_estimate := Float.max !max_update_estimate (Float.abs (!f /. !diag))
        end
      done
    done;
    !max_update_estimate
  in
  (* Bank–Rose style damping: each node moves at most a few thermal
     voltages per iteration, which keeps the Boltzmann terms from exploding
     while letting already-converged regions take full Newton steps. *)
  let _ = Numerics.Guard.fvec ~origin:"Poisson.solve: initial potential" psi in
  let clamp = 10.0 *. vt in
  let rec iterate iter =
    let scaled_res = assemble () in
    if scaled_res <= tol then begin
      let _ = Numerics.Guard.fvec ~origin:"Poisson.solve: converged potential" psi in
      { psi; iterations = iter; residual = scaled_res; converged = true }
    end
    else if iter >= max_iter then begin
      if not quiet then
        Obs.non_converged ~solver:"tcad.poisson"
          ~attrs:
            [
              ("gate", Obs.Trace.F biases.gate);
              ("drain", Obs.Trace.F biases.drain);
              ("residual", Obs.Trace.F scaled_res);
              ("iterations", Obs.Trace.I iter);
            ]
          (Printf.sprintf "Newton stalled at Vg=%.3f Vd=%.3f (residual %.2e after %d iterations)"
             biases.gate biases.drain scaled_res iter);
      { psi; iterations = iter; residual = scaled_res; converged = false }
    end
    else begin
      Obs.Trace.instant ~cat:"tcad"
        ~attrs:[ ("iteration", Obs.Trace.I iter); ("scaled_residual", Obs.Trace.F scaled_res) ]
        "poisson.iter";
      Numerics.Stencil5.solve a ~dst:dpsi;
      for k = 0 to n - 1 do
        let d = Float.max (-.clamp) (Float.min clamp (BA1.unsafe_get dpsi k)) in
        BA1.unsafe_set psi k (BA1.unsafe_get psi k +. d)
      done;
      iterate (iter + 1)
    end
  in
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:
      [
        ("nx", Obs.Trace.I nx);
        ("ny", Obs.Trace.I ny);
        ("gate", Obs.Trace.F biases.gate);
        ("drain", Obs.Trace.F biases.drain);
      ]
    "poisson.solve"
  @@ fun () ->
  let sol = iterate 0 in
  Obs.Metrics.observe iterations_hist (float_of_int sol.iterations);
  sol
