type biases = { source : float; drain : float; gate : float; substrate : float }

let zero_bias = { source = 0.0; drain = 0.0; gate = 0.0; substrate = 0.0 }

type solution = {
  psi : Numerics.Vec.t;
  iterations : int;
  residual : float;
  converged : bool;
}

let q = Physics.Constants.q
let eps_si = Physics.Constants.eps_si
let eps_ox = Physics.Constants.eps_ox

(* Clamp Boltzmann exponents: e^200 would overflow after multiplication by
   n_i; carriers beyond this clamp are unphysical anyway. *)
let safe_exp a = exp (Float.max (-120.0) (Float.min 120.0 a))

let equilibrium_guess dev =
  Array.map
    (fun c -> Physics.Silicon.bulk_potential_of_net_doping ~t:dev.Structure.desc.temperature c)
    dev.Structure.net_doping

let terminal_bias (b : biases) = function
  | Structure.Source -> b.source
  | Structure.Drain -> b.drain
  | Structure.Gate -> b.gate
  | Structure.Substrate -> b.substrate

let contact_potential dev b term net =
  terminal_bias b term
  +. Physics.Silicon.bulk_potential_of_net_doping ~t:dev.Structure.desc.temperature net

let iterations_hist = Obs.Metrics.histogram "tcad.poisson.iterations"

let solve ?(tol = 1e-9) ?(max_iter = 80) dev ~biases ~phi_n ~phi_p ~psi0 =
  let mesh = dev.Structure.mesh in
  let nx = mesh.Mesh.nx and ny = mesh.Mesh.ny in
  let n = nx * ny in
  if Array.length psi0 <> n || Array.length phi_n <> n || Array.length phi_p <> n then
    invalid_arg "Poisson.solve: state length mismatch";
  let xs = mesh.Mesh.xs and ys = mesh.Mesh.ys in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let psi = Array.copy psi0 in
  let a = Numerics.Banded.create ~n ~kl:ny ~ku:ny in
  let rhs = Array.make n 0.0 in
  let gate_pot = biases.gate +. dev.Structure.gate_potential_offset in
  (* Assemble residual F(psi) and Jacobian; returns residual inf-norm scaled
     by the diagonal (units of volts). *)
  let assemble () =
    Numerics.Banded.clear a;
    Array.fill rhs 0 n 0.0;
    let max_update_estimate = ref 0.0 in
    for ix = 0 to nx - 1 do
      for iy = 0 to ny - 1 do
        let k = (ix * ny) + iy in
        match dev.Structure.boundary.(k) with
        | Structure.Ohmic term ->
          let value = contact_potential dev biases term dev.Structure.net_doping.(k) in
          Numerics.Banded.set a k k 1.0;
          rhs.(k) <- -.(psi.(k) -. value);
          max_update_estimate := Float.max !max_update_estimate (Float.abs rhs.(k))
        | Structure.Interior | Structure.Reflecting | Structure.Gate_surface ->
          let wx = Mesh.dual_width_x mesh ix and wy = Mesh.dual_width_y mesh iy in
          let diag = ref 0.0 and f = ref 0.0 in
          let couple k' dist area =
            let g = eps_si *. area /. dist in
            f := !f +. (g *. (psi.(k') -. psi.(k)));
            diag := !diag -. g;
            Numerics.Banded.add_to a k k' g
          in
          if ix > 0 then couple (k - ny) (xs.(ix) -. xs.(ix - 1)) wy;
          if ix < nx - 1 then couple (k + ny) (xs.(ix + 1) -. xs.(ix)) wy;
          if iy > 0 then couple (k - 1) (ys.(iy) -. ys.(iy - 1)) wx;
          if iy < ny - 1 then couple (k + 1) (ys.(iy + 1) -. ys.(iy)) wx;
          (* Oxide Robin term on gate-surface boxes. *)
          (match dev.Structure.boundary.(k) with
           | Structure.Gate_surface ->
             let g_ox = eps_ox *. wx /. dev.Structure.desc.tox in
             f := !f +. (g_ox *. (gate_pot -. psi.(k)));
             diag := !diag -. g_ox
           | Structure.Interior | Structure.Reflecting | Structure.Ohmic _ -> ());
          (* Space charge. *)
          let vol = wx *. wy in
          let n_e = ni *. safe_exp ((psi.(k) -. phi_n.(k)) /. vt) in
          let p_h = ni *. safe_exp ((phi_p.(k) -. psi.(k)) /. vt) in
          let charge = q *. (p_h -. n_e +. dev.Structure.net_doping.(k)) *. vol in
          f := !f +. charge;
          diag := !diag -. (q *. (p_h +. n_e) /. vt *. vol);
          Numerics.Banded.add_to a k k !diag;
          rhs.(k) <- -. !f;
          max_update_estimate := Float.max !max_update_estimate (Float.abs (!f /. !diag))
      done
    done;
    !max_update_estimate
  in
  (* Bank–Rose style damping: each node moves at most a few thermal
     voltages per iteration, which keeps the Boltzmann terms from exploding
     while letting already-converged regions take full Newton steps. *)
  let _ = Numerics.Guard.vec ~origin:"Poisson.solve: initial potential" psi in
  let clamp = 10.0 *. vt in
  let rec iterate iter =
    let scaled_res = assemble () in
    if scaled_res <= tol then begin
      let _ = Numerics.Guard.vec ~origin:"Poisson.solve: converged potential" psi in
      { psi; iterations = iter; residual = scaled_res; converged = true }
    end
    else if iter >= max_iter then begin
      Obs.non_converged ~solver:"tcad.poisson"
        ~attrs:
          [
            ("gate", Obs.Trace.F biases.gate);
            ("drain", Obs.Trace.F biases.drain);
            ("residual", Obs.Trace.F scaled_res);
            ("iterations", Obs.Trace.I iter);
          ]
        (Printf.sprintf "Newton stalled at Vg=%.3f Vd=%.3f (residual %.2e after %d iterations)"
           biases.gate biases.drain scaled_res iter);
      { psi; iterations = iter; residual = scaled_res; converged = false }
    end
    else begin
      Obs.Trace.instant ~cat:"tcad"
        ~attrs:[ ("iteration", Obs.Trace.I iter); ("scaled_residual", Obs.Trace.F scaled_res) ]
        "poisson.iter";
      let dpsi = Numerics.Banded.solve_in_place a rhs in
      for k = 0 to n - 1 do
        let d = Float.max (-.clamp) (Float.min clamp dpsi.(k)) in
        psi.(k) <- psi.(k) +. d
      done;
      iterate (iter + 1)
    end
  in
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:
      [
        ("nx", Obs.Trace.I nx);
        ("ny", Obs.Trace.I ny);
        ("gate", Obs.Trace.F biases.gate);
        ("drain", Obs.Trace.F biases.drain);
      ]
    "poisson.solve"
  @@ fun () ->
  let sol = iterate 0 in
  Obs.Metrics.observe iterations_hist (float_of_int sol.iterations);
  sol
