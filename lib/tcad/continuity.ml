type carrier = Electrons | Holes

type srh = { tau_n : float; tau_p : float }

let default_srh = { tau_n = 1e-7; tau_p = 1e-7 }

type solution = {
  u : Numerics.Vec.t;
  density : Numerics.Vec.t;
  quasi_fermi : Numerics.Vec.t;
}

let q = Physics.Constants.q

let safe_exp a = exp (Float.max (-200.0) (Float.min 200.0 a))

(* Exact average of e^{s psi/vt} over an edge with linearly varying psi,
   s = +1 for electrons, -1 for holes. *)
let exp_average ~sign vt psi_i psi_j =
  let a = sign *. psi_i /. vt and b = sign *. psi_j /. vt in
  let d = b -. a in
  if Float.abs d < 1e-9 then safe_exp (0.5 *. (a +. b))
  else (safe_exp b -. safe_exp a) /. d

let carrier_sign = function Electrons -> 1.0 | Holes -> -1.0

let mobility_of dev carrier k =
  match carrier with
  | Electrons -> dev.Structure.mobility_n.(k)
  | Holes -> dev.Structure.mobility_p.(k)

let edge_mobility dev carrier k k' =
  0.5 *. (mobility_of dev carrier k +. mobility_of dev carrier k')

let terminal_bias (biases : Poisson.biases) = function
  | Structure.Source -> biases.Poisson.source
  | Structure.Drain -> biases.Poisson.drain
  | Structure.Gate -> biases.Poisson.gate
  | Structure.Substrate -> biases.Poisson.substrate

(* Ohmic-contact Slotboom value: electrons u = e^{-V/vt}, holes w = e^{V/vt}. *)
let contact_u ~sign vt biases term = safe_exp (-.sign *. terminal_bias biases term /. vt)

let solve ?recombination dev ~carrier ~biases ~psi =
  let mesh = dev.Structure.mesh in
  let nx = mesh.Mesh.nx and ny = mesh.Mesh.ny in
  let n_nodes = nx * ny in
  if Array.length psi <> n_nodes then invalid_arg "Continuity.solve: psi length mismatch";
  let xs = mesh.Mesh.xs and ys = mesh.Mesh.ys in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let sign = carrier_sign carrier in
  let a = Numerics.Banded.create ~n:n_nodes ~kl:ny ~ku:ny in
  let rhs = Array.make n_nodes 0.0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      let k = (ix * ny) + iy in
      match dev.Structure.boundary.(k) with
      | Structure.Ohmic term ->
        Numerics.Banded.set a k k 1.0;
        rhs.(k) <- contact_u ~sign vt biases term
      | Structure.Interior | Structure.Reflecting | Structure.Gate_surface ->
        let wx = Mesh.dual_width_x mesh ix and wy = Mesh.dual_width_y mesh iy in
        let diag = ref 0.0 in
        let couple k' dist area =
          let g =
            edge_mobility dev carrier k k' *. vt *. ni *. area /. dist
            *. exp_average ~sign vt psi.(k) psi.(k')
          in
          diag := !diag +. g;
          Numerics.Banded.add_to a k k' (-.g)
        in
        if ix > 0 then couple (k - ny) (xs.(ix) -. xs.(ix - 1)) wy;
        if ix < nx - 1 then couple (k + ny) (xs.(ix + 1) -. xs.(ix)) wy;
        if iy > 0 then couple (k - 1) (ys.(iy) -. ys.(iy - 1)) wx;
        if iy < ny - 1 then couple (k + 1) (ys.(iy + 1) -. ys.(iy)) wx;
        (* SRH: with the opposite carrier lagged, R is affine in the solved
           Slotboom variable; for either carrier the balance reads
           sum g (u_i - u_j) + vol a u_i = vol b,  a = ni^2 v_lag/D,
           b = ni^2/D, where v_lag is the lagged opposite Slotboom value at
           the *current* potential and D the lagged SRH denominator. *)
        (match recombination with
         | None -> ()
         | Some ({ tau_n; tau_p }, n_prev, p_prev) ->
           let vol = wx *. wy in
           let n_lag = Float.max n_prev.(k) 0.0 in
           let p_lag = Float.max p_prev.(k) 0.0 in
           let denom =
             Float.max 1e-30 ((tau_p *. (n_lag +. ni)) +. (tau_n *. (p_lag +. ni)))
           in
           let opposite = match carrier with Electrons -> p_lag | Holes -> n_lag in
           let v_lag = opposite /. ni *. safe_exp (sign *. psi.(k) /. vt) in
           diag := !diag +. (vol *. ni *. ni *. v_lag /. denom);
           rhs.(k) <- rhs.(k) +. (vol *. ni *. ni /. denom));
        let d = !diag in
        if d <= 0.0 then failwith "Continuity.solve: non-positive diagonal";
        let inv = 1.0 /. d in
        Numerics.Banded.add_to a k k d;
        (* Row scaling keeps pivots O(1) despite the e^{psi/vt} range. *)
        for off = -ny to ny do
          let k' = k + off in
          if k' >= 0 && k' < n_nodes then begin
            let v = Numerics.Banded.get a k k' in
            if not (Float.equal v 0.0) then Numerics.Banded.set a k k' (v *. inv)
          end
        done;
        rhs.(k) <- rhs.(k) *. inv
    done
  done;
  let u = Numerics.Banded.solve_in_place a rhs in
  let u = Array.map (fun v -> Float.max v 1e-300) u in
  let density = Array.mapi (fun k uk -> ni *. uk *. safe_exp (sign *. psi.(k) /. vt)) u in
  let quasi_fermi = Array.map (fun uk -> -.sign *. vt *. log uk) u in
  { u; density; quasi_fermi }

let terminal_current dev ~carrier ~psi ~u =
  let mesh = dev.Structure.mesh in
  let ny = mesh.Mesh.ny in
  let xs = mesh.Mesh.xs in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let sign = carrier_sign carrier in
  let ix = Int.min (Mesh.find_ix mesh dev.Structure.x_channel_mid) (mesh.Mesh.nx - 2) in
  let hx = xs.(ix + 1) -. xs.(ix) in
  let total = ref 0.0 in
  for iy = 0 to ny - 1 do
    let k = (ix * ny) + iy in
    let k' = ((ix + 1) * ny) + iy in
    let dy = Mesh.dual_width_y mesh iy in
    let g =
      edge_mobility dev carrier k k' *. vt *. ni
      *. exp_average ~sign vt psi.(k) psi.(k') /. hx
    in
    (* Electron particle flux i->j is proportional to (u_j - u_i) times -g;
       conventional current is opposite for electrons and aligned for holes;
       both reduce to the same signed expression via the carrier sign. *)
    total := !total +. (sign *. q *. g *. (u.(k') -. u.(k)) *. dy)
  done;
  !total

let drain_current dev ~psi ~u =
  Float.abs (terminal_current dev ~carrier:Electrons ~psi ~u)
