(* As in [Poisson], the assembly loop reads fields through [BA1]
   (Bigarray.Array1) directly so the accesses compile to inline intrinsics
   under a non-flambda compiler. *)
module BA1 = Bigarray.Array1

type carrier = Electrons | Holes

type srh = { tau_n : float; tau_p : float }

let default_srh = { tau_n = 1e-7; tau_p = 1e-7 }

type solution = {
  u : Field.t;
  density : Field.t;
  quasi_fermi : Field.t;
}

let q = Physics.Constants.q

let safe_exp a = exp (Float.max (-200.0) (Float.min 200.0 a))

(* Exact average of e^{s psi/vt} over an edge with linearly varying psi,
   s = +1 for electrons, -1 for holes. *)
let exp_average ~sign vt psi_i psi_j =
  let a = sign *. psi_i /. vt and b = sign *. psi_j /. vt in
  let d = b -. a in
  if Float.abs d < 1e-9 then safe_exp (0.5 *. (a +. b))
  else (safe_exp b -. safe_exp a) /. d

let carrier_sign = function Electrons -> 1.0 | Holes -> -1.0

let terminal_bias (biases : Poisson.biases) = function
  | Structure.Source -> biases.Poisson.source
  | Structure.Drain -> biases.Poisson.drain
  | Structure.Gate -> biases.Poisson.gate
  | Structure.Substrate -> biases.Poisson.substrate

(* Ohmic-contact Slotboom value: electrons u = e^{-V/vt}, holes w = e^{V/vt}. *)
let contact_u ~sign vt biases term = safe_exp (-.sign *. terminal_bias biases term /. vt)

let solve ?recombination ?scratch dev ~carrier ~biases ~psi =
  let mesh = dev.Structure.mesh in
  let nx = mesh.Mesh.nx and ny = mesh.Mesh.ny in
  let n_nodes = nx * ny in
  if Field.length psi <> n_nodes then
    invalid_arg
      (Printf.sprintf "Continuity.solve: psi length mismatch (psi has %d, %dx%d mesh needs %d)"
         (Field.length psi) nx ny n_nodes);
  let hx = mesh.Mesh.hx and hy = mesh.Mesh.hy in
  let wxs = mesh.Mesh.wx and wys = mesh.Mesh.wy in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let sign = carrier_sign carrier in
  let mob =
    match carrier with
    | Electrons -> dev.Structure.mobility_n
    | Holes -> dev.Structure.mobility_p
  in
  let a =
    match scratch with
    | Some (s : Poisson.scratch) ->
      if
        Numerics.Stencil5.order s.Poisson.sys <> n_nodes
        || Numerics.Stencil5.offset s.Poisson.sys <> ny
      then
        invalid_arg
          (Printf.sprintf
             "Continuity.solve: scratch shape mismatch (scratch is order %d offset %d, \
              %dx%d mesh needs order %d offset %d)"
             (Numerics.Stencil5.order s.Poisson.sys)
             (Numerics.Stencil5.offset s.Poisson.sys)
             nx ny n_nodes ny);
      s.Poisson.sys
    | None -> Numerics.Stencil5.create ~n:n_nodes ~m:ny
  in
  let bmask = dev.Structure.bmask in
  (* Applied terminal biases indexed by [mask code - first_ohmic]. *)
  let contact =
    [|
      contact_u ~sign vt biases Structure.Source;
      contact_u ~sign vt biases Structure.Drain;
      contact_u ~sign vt biases Structure.Gate;
      contact_u ~sign vt biases Structure.Substrate;
    |]
  in
  for ix = 0 to nx - 1 do
    let wx = Array.unsafe_get wxs ix in
    let inv_hxw = if ix > 0 then 1.0 /. Array.unsafe_get hx (ix - 1) else 0.0 in
    let inv_hxe = if ix < nx - 1 then 1.0 /. Array.unsafe_get hx ix else 0.0 in
    for iy = 0 to ny - 1 do
      let k = (ix * ny) + iy in
      let code = BA1.unsafe_get bmask k in
      if code >= Field.Mask.first_ohmic then
        Numerics.Stencil5.set_row a k ~west:0.0 ~south:0.0 ~diag:1.0 ~north:0.0 ~east:0.0
          ~rhs:(Array.unsafe_get contact (code - Field.Mask.first_ohmic))
      else begin
        let wy = Array.unsafe_get wys iy in
        let psi_k = BA1.unsafe_get psi k in
        let mob_k = BA1.unsafe_get mob k in
        let diag = ref 0.0 and rhs = ref 0.0 in
        let edge k' area inv_dist =
          let g =
            0.5 *. (mob_k +. BA1.unsafe_get mob k') *. vt *. ni *. area *. inv_dist
            *. exp_average ~sign vt psi_k (BA1.unsafe_get psi k')
          in
          diag := !diag +. g;
          g
        in
        let g_w = if ix > 0 then edge (k - ny) wy inv_hxw else 0.0 in
        let g_e = if ix < nx - 1 then edge (k + ny) wy inv_hxe else 0.0 in
        let g_s = if iy > 0 then edge (k - 1) (wx /. Array.unsafe_get hy (iy - 1)) 1.0 else 0.0 in
        let g_n = if iy < ny - 1 then edge (k + 1) (wx /. Array.unsafe_get hy iy) 1.0 else 0.0 in
        (* SRH: with the opposite carrier lagged, R is affine in the solved
           Slotboom variable; for either carrier the balance reads
           sum g (u_i - u_j) + vol a u_i = vol b,  a = ni^2 v_lag/D,
           b = ni^2/D, where v_lag is the lagged opposite Slotboom value at
           the *current* potential and D the lagged SRH denominator. *)
        (match recombination with
         | None -> ()
         | Some ({ tau_n; tau_p }, n_prev, p_prev) ->
           let vol = wx *. wy in
           let n_lag = Float.max (BA1.unsafe_get n_prev k) 0.0 in
           let p_lag = Float.max (BA1.unsafe_get p_prev k) 0.0 in
           let denom =
             Float.max 1e-30 ((tau_p *. (n_lag +. ni)) +. (tau_n *. (p_lag +. ni)))
           in
           let opposite = match carrier with Electrons -> p_lag | Holes -> n_lag in
           let v_lag = opposite /. ni *. safe_exp (sign *. psi_k /. vt) in
           diag := !diag +. (vol *. ni *. ni *. v_lag /. denom);
           rhs := !rhs +. (vol *. ni *. ni /. denom));
        let d = !diag in
        if d <= 0.0 then failwith "Continuity.solve: non-positive diagonal";
        (* Row scaling keeps pivots O(1) despite the e^{psi/vt} range. *)
        let inv = 1.0 /. d in
        Numerics.Stencil5.set_row a k ~west:(-.g_w *. inv) ~south:(-.g_s *. inv)
          ~diag:(d *. inv) ~north:(-.g_n *. inv) ~east:(-.g_e *. inv) ~rhs:(!rhs *. inv)
      end
    done
  done;
  let u = Field.create n_nodes in
  Numerics.Stencil5.solve a ~dst:u;
  for k = 0 to n_nodes - 1 do
    BA1.unsafe_set u k (Float.max (BA1.unsafe_get u k) 1e-300)
  done;
  let density =
    Field.init n_nodes (fun k ->
        ni *. BA1.unsafe_get u k *. safe_exp (sign *. BA1.unsafe_get psi k /. vt))
  in
  let quasi_fermi = Field.map (fun uk -> -.sign *. vt *. log uk) u in
  { u; density; quasi_fermi }

let terminal_current dev ~carrier ~psi ~u =
  let mesh = dev.Structure.mesh in
  let ny = mesh.Mesh.ny in
  let xs = mesh.Mesh.xs in
  let vt = dev.Structure.vt and ni = dev.Structure.ni in
  let sign = carrier_sign carrier in
  let mob =
    match carrier with
    | Electrons -> dev.Structure.mobility_n
    | Holes -> dev.Structure.mobility_p
  in
  let ix = Int.min (Mesh.find_ix mesh dev.Structure.x_channel_mid) (mesh.Mesh.nx - 2) in
  let hx = xs.(ix + 1) -. xs.(ix) in
  let total = ref 0.0 in
  for iy = 0 to ny - 1 do
    let k = (ix * ny) + iy in
    let k' = ((ix + 1) * ny) + iy in
    let dy = Mesh.dual_width_y mesh iy in
    let g =
      0.5 *. (Field.get mob k +. Field.get mob k') *. vt *. ni
      *. exp_average ~sign vt (Field.get psi k) (Field.get psi k') /. hx
    in
    (* Electron particle flux i->j is proportional to (u_j - u_i) times -g;
       conventional current is opposite for electrons and aligned for holes;
       both reduce to the same signed expression via the carrier sign. *)
    total := !total +. (sign *. q *. g *. (Field.get u k' -. Field.get u k) *. dy)
  done;
  !total

let drain_current dev ~psi ~u =
  Float.abs (terminal_current dev ~carrier:Electrons ~psi ~u)
