type sweep = { vd : float; vgs : Numerics.Vec.t; ids : Numerics.Vec.t }

let warm_start_counter = Obs.Metrics.counter "tcad.extract.warm_start"
let warm_fallback_counter = Obs.Metrics.counter "tcad.extract.warm_fallback"

(* Magnitude-based sweeps: for a P-channel device the applied gate and drain
   biases are negated internally, so callers reason in |V| for both
   polarities (the convention of every plot in the paper). *)
let sign_of dev =
  match dev.Structure.desc.Structure.polarity with
  | Structure.Nchannel -> 1.0
  | Structure.Pchannel -> -1.0

(* Warm-started continuation step: speculatively jump straight from the
   previous bias point's state to [target] (no ramping).  If the jump fails
   to converge, fall back to a cold start — a fresh ramp from the sweep's
   equilibrium [anchor] with the full iteration budget — and count the
   fallback so sweeps that silently degrade to cold solves show up in the
   metrics.  [max_warm_gummel] bounds only the speculative attempt. *)
let advance ?tol ?max_gummel ?max_warm_gummel ~warm ~scratch ~anchor dev prev target =
  if not warm then Gummel.solve_at ?tol ?max_gummel ~scratch dev ~from:anchor target
  else begin
    let warm_budget = match max_warm_gummel with Some _ as b -> b | None -> max_gummel in
    match
      Gummel.gummel_at ?tol ?max_gummel:warm_budget ~quiet:true ~scratch dev ~from:prev target
    with
    | s ->
      Obs.Metrics.incr warm_start_counter;
      s
    | exception Gummel.No_convergence _ ->
      Obs.Metrics.incr warm_fallback_counter;
      Gummel.solve_at ?tol ?max_gummel ~scratch dev ~from:anchor target
  end

(* Shared Id-Vg core over an arbitrary strictly-increasing gate grid.
   [anchor] is the equilibrium state cold starts ramp from; [seed] is the
   state warm continuation enters the sweep plane from (the anchor for a
   standalone sweep, the previous plane's entry state inside
   [characterize]).  Returns the sweep and the entry state so the next Vd
   plane can continue from it. *)
let check_grid vgs =
  let points = Array.length vgs in
  if points < 2 then
    invalid_arg (Printf.sprintf "Extract.id_vg: points = %d, need >= 2" points);
  for i = 0 to points - 2 do
    if vgs.(i + 1) <= vgs.(i) then
      invalid_arg
        (Printf.sprintf "Extract.id_vg: vgs.(%d) = %g >= vgs.(%d) = %g, grid must be strictly increasing"
           i vgs.(i) (i + 1) vgs.(i + 1))
  done

let id_vg_on ~vgs ~warm ?tol ?max_gummel ?max_warm_gummel ~scratch ~anchor ~seed dev ~vd
    =
  check_grid vgs;
  let points = Array.length vgs in
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:[ ("vd", Obs.Trace.F vd); ("points", Obs.Trace.I points) ]
    "extract.id_vg"
  @@ fun () ->
  let sign = sign_of dev in
  let ids = Array.make points 0.0 in
  let first_target =
    { Poisson.zero_bias with Poisson.drain = sign *. vd; gate = sign *. vgs.(0) }
  in
  (* Plane entry: ramped continuation from the seed state (which is the
     plain cold start when [seed = anchor]). *)
  let start =
    Gummel.solve_at ?tol ?max_gummel ~scratch dev
      ~from:(if warm then seed else anchor)
      first_target
  in
  if warm then begin
    ids.(0) <- start.Gummel.drain_current;
    let state = ref start in
    for i = 1 to points - 1 do
      let target = { !state.Gummel.biases with Poisson.gate = sign *. vgs.(i) } in
      state :=
        advance ?tol ?max_gummel ?max_warm_gummel ~warm ~scratch ~anchor dev !state target;
      ids.(i) <- !state.Gummel.drain_current
    done
  end
  else
    (* Cold reference path: every point restarts from equilibrium. *)
    for i = 0 to points - 1 do
      let target = { first_target with Poisson.gate = sign *. vgs.(i) } in
      let s = Gummel.solve_at ?tol ?max_gummel ~scratch dev ~from:anchor target in
      ids.(i) <- s.Gummel.drain_current
    done;
  ({ vd; vgs; ids }, start)

(* Linspace convenience over the arbitrary-grid core; the [points] guard
   runs before [linspace] so the caller sees the offending value instead
   of a degenerate step division. *)
let id_vg_from ~vg_min ~vg_max ~points ~warm ?tol ?max_gummel ?max_warm_gummel ~scratch
    ~anchor ~seed dev ~vd =
  if points < 2 then
    invalid_arg (Printf.sprintf "Extract.id_vg: points = %d, need >= 2" points);
  let vgs = Numerics.Vec.linspace vg_min vg_max points in
  id_vg_on ~vgs ~warm ?tol ?max_gummel ?max_warm_gummel ~scratch ~anchor ~seed dev ~vd

let id_vg ?(vg_min = 0.0) ?(vg_max = 0.9) ?(points = 19) ?(warm = true) ?tol ?max_gummel
    ?max_warm_gummel dev ~vd =
  if points < 2 then
    invalid_arg (Printf.sprintf "Extract.id_vg: points = %d, need >= 2" points);
  let scratch = Poisson.make_scratch dev in
  let eq = Gummel.equilibrium ~scratch dev in
  fst
    (id_vg_from ~vg_min ~vg_max ~points ~warm ?tol ?max_gummel ?max_warm_gummel ~scratch
       ~anchor:eq ~seed:eq dev ~vd)

let id_vg_at ?(warm = true) ?tol ?max_gummel ?max_warm_gummel dev ~vd ~vgs =
  check_grid vgs;
  let scratch = Poisson.make_scratch dev in
  let eq = Gummel.equilibrium ~scratch dev in
  fst
    (id_vg_on ~vgs:(Array.copy vgs) ~warm ?tol ?max_gummel ?max_warm_gummel ~scratch
       ~anchor:eq ~seed:eq dev ~vd)

(* Output characteristic: sweep the drain at fixed gate bias. *)
type output_sweep = { vg : float; vds : Numerics.Vec.t; ids : Numerics.Vec.t }

let id_vd ?(vd_min = 0.0) ?(vd_max = 0.6) ?(points = 13) ?(warm = true) ?tol ?max_gummel
    ?max_warm_gummel dev ~vg =
  if points < 2 then
    invalid_arg (Printf.sprintf "Extract.id_vd: points = %d, need >= 2" points);
  if vd_min >= vd_max then
    invalid_arg
      (Printf.sprintf "Extract.id_vd: vd_min = %g, vd_max = %g, need vd_min < vd_max"
         vd_min vd_max);
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:[ ("vg", Obs.Trace.F vg); ("points", Obs.Trace.I points) ]
    "extract.id_vd"
  @@ fun () ->
  let sign = sign_of dev in
  let vds = Numerics.Vec.linspace vd_min vd_max points in
  let ids = Array.make points 0.0 in
  let scratch = Poisson.make_scratch dev in
  let eq = Gummel.equilibrium ~scratch dev in
  let first_target =
    { Poisson.zero_bias with Poisson.gate = sign *. vg; drain = sign *. vd_min }
  in
  let start = Gummel.solve_at ?tol ?max_gummel ~scratch dev ~from:eq first_target in
  if warm then begin
    ids.(0) <- start.Gummel.drain_current;
    let state = ref start in
    for i = 1 to points - 1 do
      let target = { !state.Gummel.biases with Poisson.drain = sign *. vds.(i) } in
      state :=
        advance ?tol ?max_gummel ?max_warm_gummel ~warm ~scratch ~anchor:eq dev !state target;
      ids.(i) <- !state.Gummel.drain_current
    done
  end
  else
    for i = 0 to points - 1 do
      let target = { first_target with Poisson.drain = sign *. vds.(i) } in
      let s = Gummel.solve_at ?tol ?max_gummel ~scratch dev ~from:eq target in
      ids.(i) <- s.Gummel.drain_current
    done;
  { vg; vds; ids }

(* Gate charge per metre of width: the oxide field integrated over the gate
   footprint. *)
let gate_charge dev (state : Gummel.state) =
  let mesh = dev.Structure.mesh in
  let cox = Physics.Constants.eps_ox /. dev.Structure.desc.Structure.tox in
  let gate_pot =
    state.Gummel.biases.Poisson.gate +. dev.Structure.gate_potential_offset
  in
  let total = ref 0.0 in
  for ix = 0 to mesh.Mesh.nx - 1 do
    let k = Mesh.index mesh ~ix ~iy:0 in
    match dev.Structure.boundary.(k) with
    | Structure.Gate_surface ->
      total :=
        !total
        +. (cox *. (gate_pot -. Field.get state.Gummel.psi k) *. Mesh.dual_width_x mesh ix)
    | Structure.Interior | Structure.Reflecting | Structure.Ohmic _ -> ()
  done;
  !total

let gate_capacitance ?(dv = 5e-3) dev ~vg ~vd =
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:[ ("vg", Obs.Trace.F vg); ("vd", Obs.Trace.F vd) ]
    "extract.gate_capacitance"
  @@ fun () ->
  let scratch = Poisson.make_scratch dev in
  let eq = Gummel.equilibrium ~scratch dev in
  let s_hi =
    Gummel.solve_at ~scratch dev ~from:eq
      { Poisson.zero_bias with Poisson.drain = vd; gate = vg +. dv }
  in
  (* The second bias point is 2 dv away: a warm jump from the first. *)
  let s_lo =
    advance ~warm:true ~scratch ~anchor:eq dev s_hi
      { s_hi.Gummel.biases with Poisson.gate = vg -. dv }
  in
  (gate_charge dev s_hi -. gate_charge dev s_lo) /. (2.0 *. dv)

type cut = {
  positions : Numerics.Vec.t;
  psi : Numerics.Vec.t;
  n : Numerics.Vec.t;
  p : Numerics.Vec.t;
  net_doping : Numerics.Vec.t;
}

let vertical_cut dev (state : Gummel.state) ~x =
  let mesh = dev.Structure.mesh in
  let ix = Mesh.find_ix mesh x in
  let ny = mesh.Mesh.ny in
  let take field = Array.init ny (fun iy -> Field.get field ((ix * ny) + iy)) in
  {
    positions = Array.copy mesh.Mesh.ys;
    psi = take state.Gummel.psi;
    n = take state.Gummel.n;
    p = take state.Gummel.p;
    net_doping = take dev.Structure.net_doping;
  }

let lateral_cut dev (state : Gummel.state) ~y =
  let mesh = dev.Structure.mesh in
  let iy = Mesh.find_iy mesh y in
  let ny = mesh.Mesh.ny in
  let take field = Array.init mesh.Mesh.nx (fun ix -> Field.get field ((ix * ny) + iy)) in
  {
    positions = Array.copy mesh.Mesh.xs;
    psi = take state.Gummel.psi;
    n = take state.Gummel.n;
    p = take state.Gummel.p;
    net_doping = take dev.Structure.net_doping;
  }

let log10 x = log x /. log 10.0

let subthreshold_slope ?i_lo ?i_hi (sweep : sweep) =
  (* Default window: a 2.5-decade band starting a factor of 3 above the
     lowest simulated current, which sits safely inside weak inversion
     whatever the absolute current level of the device. *)
  let i_min = Array.fold_left Float.min infinity sweep.ids in
  let i_lo = match i_lo with Some v -> v | None -> 3.0 *. i_min in
  let i_hi = match i_hi with Some v -> v | None -> i_lo *. (10.0 ** 2.5) in
  let pairs =
    Array.to_list (Array.mapi (fun i vg -> (vg, sweep.ids.(i))) sweep.vgs)
    |> List.filter (fun (_, id) -> id >= i_lo && id <= i_hi)
  in
  if List.length pairs < 3 then
    failwith
      (Printf.sprintf "Extract.subthreshold_slope: only %d points in window [%g, %g] A/m"
         (List.length pairs) i_lo i_hi);
  let vgs = Array.of_list (List.map fst pairs) in
  let logs = Array.of_list (List.map (fun (_, id) -> log10 id) pairs) in
  let slope, _ = Numerics.Stats.linear_regression logs vgs in
  slope

let current_at (sweep : sweep) vg =
  let logs = Array.map (fun id -> log10 (Float.max id 1e-300)) sweep.ids in
  10.0 ** Numerics.Interp.linear sweep.vgs logs vg

let threshold_voltage ?(criterion = 1e-1) (sweep : sweep) =
  let target = log10 criterion in
  let logs = Array.map (fun id -> log10 (Float.max id 1e-300)) sweep.ids in
  match Numerics.Interp.crossings sweep.vgs logs target with
  | v :: _ -> v
  | [] -> failwith "Extract.threshold_voltage: criterion outside the swept range"

let dibl ~low ~high =
  let vth_low = threshold_voltage low and vth_high = threshold_voltage high in
  (vth_low -. vth_high) /. (high.vd -. low.vd)

type characteristics = {
  ss : float;
  vth_lin : float;
  vth_sat : float;
  dibl : float;
  ioff : float;
  ion_sub : float;
  on_off_ratio_sub : float;
  leff : float;
}

(* A full characterization is three Id-Vg sweeps — dozens of ramped Gummel
   solves — and depends only on the device description and the supply, so
   two sweep points sharing a device solve the TCAD system exactly once. *)
let characterize_memo : characteristics Exec.Memo.t =
  Exec.Memo.create ~name:"tcad.characterize" ()

let characterize ?(vdd = 0.9) dev =
  Obs.Trace.with_span ~cat:"tcad" ~attrs:[ ("vdd", Obs.Trace.F vdd) ] "extract.characterize"
  @@ fun () ->
  let scratch = Poisson.make_scratch dev in
  let eq = Gummel.equilibrium ~scratch dev in
  let vg_max = Float.max vdd 0.9 in
  let plane = id_vg_from ~vg_min:0.0 ~vg_max ~points:19 ~warm:true ~scratch ~anchor:eq dev in
  (* One equilibrium serves all three Vd planes; each plane's entry state
     continues from the previous plane's, in ascending drain bias. *)
  let sweep_lin, entry_lin = plane ~seed:eq ~vd:0.05 in
  let sweep_sub, entry_sub = plane ~seed:entry_lin ~vd:0.25 in
  let sweep_sat, _ = plane ~seed:entry_sub ~vd:vdd in
  let ss = subthreshold_slope sweep_lin in
  let vth_lin = threshold_voltage sweep_lin in
  let vth_sat = threshold_voltage sweep_sat in
  let ioff = current_at sweep_sat 0.0 in
  let ion_sub = current_at sweep_sub 0.25 in
  let ioff_sub = current_at sweep_sub 0.0 in
  {
    ss;
    vth_lin;
    vth_sat;
    dibl = dibl ~low:sweep_lin ~high:sweep_sat;
    ioff;
    ion_sub;
    on_off_ratio_sub = ion_sub /. Float.max ioff_sub 1e-300;
    leff = Structure.effective_channel_length dev;
  }

let characterize_cached ?(vdd = 0.9) dev =
  (* The mesh dimensions are part of the key: [Structure.build] accepts
     resolution overrides, and a coarser solve is a different result. *)
  let key =
    Exec.Key.(
      fields "characterize"
        [ ("desc", Structure.description_key dev.Structure.desc);
          ("nx", int dev.Structure.mesh.Mesh.nx);
          ("ny", int dev.Structure.mesh.Mesh.ny);
          ("vdd", float vdd) ])
  in
  Exec.Memo.find_or_compute characterize_memo ~key (fun () -> characterize ~vdd dev)

(* --- persistent-tier codecs -------------------------------------------

   Fixed-layout float vectors through Store.floats_codec, with a version
   tag so a record written by an older layout decodes as a miss instead
   of a shifted field.  Every float crosses the boundary as its IEEE-754
   bits, so restarted daemons answer bit-identically to the cold
   compute. *)

module Store = Exec.Store

let tagged tag (codec : float array Store.codec) =
  {
    Store.encode = (fun a -> tag ^ ":" ^ codec.Store.encode a);
    decode =
      (fun s ->
        let tl = String.length tag in
        if String.length s > tl + 1 && String.sub s 0 tl = tag && s.[tl] = ':' then
          codec.Store.decode (String.sub s (tl + 1) (String.length s - tl - 1))
        else None);
  }

let characteristics_codec : characteristics Store.codec =
  let floats = tagged "chars/1" Store.floats_codec in
  {
    Store.encode =
      (fun c ->
        floats.Store.encode
          [| c.ss; c.vth_lin; c.vth_sat; c.dibl; c.ioff; c.ion_sub;
             c.on_off_ratio_sub; c.leff |]);
    decode =
      (fun s ->
        match floats.Store.decode s with
        | Some [| ss; vth_lin; vth_sat; dibl; ioff; ion_sub; on_off_ratio_sub; leff |] ->
          Some { ss; vth_lin; vth_sat; dibl; ioff; ion_sub; on_off_ratio_sub; leff }
        | Some _ | None -> None);
  }

let sweep_codec : sweep Store.codec =
  let floats = tagged "sweep/1" Store.floats_codec in
  {
    Store.encode =
      (fun s ->
        let n = Array.length s.vgs in
        floats.Store.encode
          (Array.init ((2 * n) + 1) (fun i ->
               if i = 0 then s.vd
               else if i <= n then s.vgs.(i - 1)
               else s.ids.(i - n - 1))));
    decode =
      (fun text ->
        match floats.Store.decode text with
        | Some a when Array.length a >= 3 && (Array.length a - 1) mod 2 = 0 ->
          let n = (Array.length a - 1) / 2 in
          Some
            {
              vd = a.(0);
              vgs = Array.sub a 1 n;
              ids = Array.sub a (n + 1) n;
            }
        | Some _ | None -> None);
  }
