type state = {
  biases : Poisson.biases;
  psi : Field.t;
  u : Field.t;
  w : Field.t;
  n : Field.t;
  p : Field.t;
  phi_n : Field.t;
  phi_p : Field.t;
  drain_current : float;
}

exception No_convergence of string

let src = Logs.Src.create "tcad.gummel" ~doc:"Gummel iteration"

module Log = (val Logs.src_log src : Logs.LOG)

let inner_iterations_hist = Obs.Metrics.histogram "tcad.gummel.inner_iterations"
let ramp_steps_hist = Obs.Metrics.histogram "tcad.gummel.ramp_steps"

let total_drain_current dev ~psi ~u ~w =
  let i_n = Continuity.terminal_current dev ~carrier:Continuity.Electrons ~psi ~u in
  let i_p = Continuity.terminal_current dev ~carrier:Continuity.Holes ~psi ~u:w in
  Float.abs (i_n +. i_p)

let equilibrium ?scratch dev =
  let n_nodes = Mesh.n_nodes dev.Structure.mesh in
  let zeros = Field.create n_nodes in
  let psi0 = Poisson.equilibrium_guess dev in
  let sol =
    Poisson.solve ?scratch dev ~biases:Poisson.zero_bias ~phi_n:zeros ~phi_p:zeros ~psi0
  in
  if not sol.Poisson.converged then
    raise (No_convergence "equilibrium Poisson did not converge");
  let psi = sol.Poisson.psi in
  let e =
    Continuity.solve ?scratch dev ~carrier:Continuity.Electrons ~biases:Poisson.zero_bias ~psi
  in
  let h =
    Continuity.solve ?scratch dev ~carrier:Continuity.Holes ~biases:Poisson.zero_bias ~psi
  in
  {
    biases = Poisson.zero_bias;
    psi;
    u = e.Continuity.u;
    w = h.Continuity.u;
    n = e.Continuity.density;
    p = h.Continuity.density;
    phi_n = e.Continuity.quasi_fermi;
    phi_p = h.Continuity.quasi_fermi;
    drain_current = 0.0;
  }

let gummel_at ?(tol = 5e-7) ?(max_gummel = 40) ?(srh = Some Continuity.default_srh)
    ?(quiet = false) ?scratch dev ~(from : state) (biases : Poisson.biases) =
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:[ ("gate", Obs.Trace.F biases.gate); ("drain", Obs.Trace.F biases.drain) ]
    "gummel.at"
  @@ fun () ->
  (* When the outer tolerance is tightened below its default, the inner
     Newton must resolve the potential at least as finely or the outer
     delta floors at the Poisson residual; at the default outer tol this
     reduces to the Poisson default (1e-9 V). *)
  let poisson_tol = Float.min 1e-9 (0.01 *. tol) in
  let rec loop psi phi_n phi_p n_prev p_prev iter =
    let sol = Poisson.solve ~tol:poisson_tol ~quiet ?scratch dev ~biases ~phi_n ~phi_p ~psi0:psi in
    if not sol.Poisson.converged then
      raise
        (No_convergence
           (Printf.sprintf "Poisson stalled at Vg=%.3f Vd=%.3f (residual %.2e)" biases.gate
              biases.drain sol.Poisson.residual));
    let psi' =
      Numerics.Guard.fvec
        ~origin:(Printf.sprintf "Gummel.gummel_at: psi at Vg=%.3f Vd=%.3f" biases.gate
                   biases.drain)
        sol.Poisson.psi
    in
    let recombination = Option.map (fun s -> (s, n_prev, p_prev)) srh in
    let e =
      Continuity.solve ?recombination ?scratch dev ~carrier:Continuity.Electrons ~biases
        ~psi:psi'
    in
    let h =
      Continuity.solve ?recombination ?scratch dev ~carrier:Continuity.Holes ~biases ~psi:psi'
    in
    let delta = Field.max_abs_diff psi' psi in
    if delta < tol || iter >= max_gummel then begin
      if delta >= tol then begin
        (* Poisson emits its own non_converged event on its stalled exits
           above; this one covers the outer-loop stall only, so the two
           solvers never double-count a single failure. *)
        if not quiet then
          Obs.non_converged ~solver:"tcad.gummel"
            ~attrs:
              [
                ("gate", Obs.Trace.F biases.gate);
                ("drain", Obs.Trace.F biases.drain);
                ("delta", Obs.Trace.F delta);
                ("iterations", Obs.Trace.I iter);
              ]
            (Printf.sprintf "Gummel stalled at Vg=%.3f Vd=%.3f (delta %.2e V)" biases.gate
               biases.drain delta);
        raise
          (No_convergence
             (Printf.sprintf "Gummel stalled at Vg=%.3f Vd=%.3f (delta %.2e V)" biases.gate
                biases.drain delta))
      end;
      Obs.Metrics.observe inner_iterations_hist (float_of_int iter);
      {
        biases;
        psi = psi';
        u = e.Continuity.u;
        w = h.Continuity.u;
        n = e.Continuity.density;
        p = h.Continuity.density;
        phi_n = e.Continuity.quasi_fermi;
        phi_p = h.Continuity.quasi_fermi;
        drain_current =
          Numerics.Guard.float
            ~origin:(Printf.sprintf "Gummel.gummel_at: drain current at Vg=%.3f Vd=%.3f"
                       biases.gate biases.drain)
            (total_drain_current dev ~psi:psi' ~u:e.Continuity.u ~w:h.Continuity.u);
      }
    end
    else
      loop psi' e.Continuity.quasi_fermi h.Continuity.quasi_fermi e.Continuity.density
        h.Continuity.density (iter + 1)
  in
  loop from.psi from.phi_n from.phi_p from.n from.p 0

let solve_at ?(tol = 5e-7) ?(max_gummel = 40) ?(ramp_step = 0.1) ?srh ?scratch dev ~from
    target =
  let dist (a : Poisson.biases) (b : Poisson.biases) =
    Float.max
      (Float.abs (a.Poisson.gate -. b.Poisson.gate))
      (Float.max
         (Float.abs (a.Poisson.drain -. b.Poisson.drain))
         (Float.max
            (Float.abs (a.Poisson.source -. b.Poisson.source))
            (Float.abs (a.Poisson.substrate -. b.Poisson.substrate))))
  in
  let total = dist from.biases target in
  let steps = Int.max 1 (int_of_float (ceil (total /. ramp_step))) in
  Obs.Trace.with_span ~cat:"tcad"
    ~attrs:
      [
        ("gate", Obs.Trace.F target.Poisson.gate);
        ("drain", Obs.Trace.F target.Poisson.drain);
        ("steps", Obs.Trace.I steps);
      ]
    "gummel.solve_at"
  @@ fun () ->
  Obs.Metrics.observe ramp_steps_hist (float_of_int steps);
  let interp frac =
    let mix a b = a +. (frac *. (b -. a)) in
    {
      Poisson.source = mix from.biases.Poisson.source target.Poisson.source;
      drain = mix from.biases.Poisson.drain target.Poisson.drain;
      gate = mix from.biases.Poisson.gate target.Poisson.gate;
      substrate = mix from.biases.Poisson.substrate target.Poisson.substrate;
    }
  in
  let rec ramp state i =
    if i > steps then state
    else begin
      let b = interp (float_of_int i /. float_of_int steps) in
      Log.debug (fun m ->
          m "ramp step %d/%d: Vg=%.3f Vd=%.3f" i steps b.Poisson.gate b.Poisson.drain);
      let state' = gummel_at ~tol ~max_gummel ?srh ?scratch dev ~from:state b in
      ramp state' (i + 1)
    end
  in
  ramp from 1
