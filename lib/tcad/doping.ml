type profile = x:float -> y:float -> float

let uniform n ~x:_ ~y:_ = n
let zero ~x:_ ~y:_ = 0.0

let sum profiles ~x ~y = List.fold_left (fun acc p -> acc +. p ~x ~y) 0.0 profiles

let gaussian2d ~peak ~x0 ~y0 ~sigma_x ~sigma_y ~x ~y =
  let dx = (x -. x0) /. sigma_x in
  let dy = (y -. y0) /. sigma_y in
  peak *. exp (-0.5 *. ((dx *. dx) +. (dy *. dy)))

(* The vertical straggle sy is chosen so the profile falls from [peak] to
   [background] at depth [xj]; the lateral Gaussian's flat region is placed
   so the *surface* profile equals [background] exactly at [junction], which
   pins the metallurgical channel length irrespective of the straggle. *)
let source_drain ~peak ~junction ~side ~xj ~background ~lateral_sigma ~x ~y =
  if peak <= background then invalid_arg "Doping.source_drain: peak must exceed background";
  let decades = sqrt (log (peak /. background)) in
  let sy = xj /. decades in
  let flat_to_junction = lateral_sigma *. decades in
  let lateral_distance =
    match side with
    | `Source -> Float.max 0.0 (x -. (junction -. flat_to_junction))
    | `Drain -> Float.max 0.0 (junction +. flat_to_junction -. x)
  in
  let u = lateral_distance /. lateral_sigma in
  let v = y /. sy in
  peak *. exp (-.(v *. v)) *. exp (-.(u *. u))
