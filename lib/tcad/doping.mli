(** Doping-profile combinators.  A profile maps (x, y) [m] to a density
    [m^-3]; donors and acceptors are kept separate and combined into a net
    doping N_D - N_A by the device structure. *)

type profile = x:float -> y:float -> float

val uniform : float -> profile

val zero : profile

val sum : profile list -> profile

val gaussian2d :
  peak:float -> x0:float -> y0:float -> sigma_x:float -> sigma_y:float -> profile
(** A 2-D Gaussian pocket — the paper's halo model (Sec. 2.2, after
    refs [3][12]). *)

val source_drain :
  peak:float ->
  junction:float ->
  side:[ `Source | `Drain ] ->
  xj:float ->
  background:float ->
  lateral_sigma:float ->
  profile
(** Gaussian-rolloff source/drain well.  The lateral profile is flat at
    [peak] inside the well and rolls off with straggle [lateral_sigma],
    positioned so the surface profile crosses [background] exactly at
    [junction] — the surface metallurgical junction.  The vertical Gaussian
    is scaled so the profile falls to [background] at depth [xj]. *)
