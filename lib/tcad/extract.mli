(** Device characterization from simulated Id–Vg sweeps: inverse subthreshold
    slope, constant-current threshold voltage, DIBL, on/off currents.  This
    is the layer that stands in for the measurements the paper reads off its
    MEDICI decks (Figs. 2, 3, 7).

    Sweeps are warm-started by default: each bias point jumps directly from
    the previous point's converged {!Gummel.state} (and [characterize]
    threads the entry state across its Vd planes), falling back to a cold
    start — a fresh ramp from equilibrium — when a jump fails to converge.
    Successful jumps and fallbacks are counted in the
    ["tcad.extract.warm_start"] / ["tcad.extract.warm_fallback"] metrics.
    Passing [~warm:false] forces the cold path for every point — the slow
    reference implementation the equivalence suite compares against. *)

type sweep = {
  vd : float;
  vgs : Numerics.Vec.t;
  ids : Numerics.Vec.t;  (** drain current [A/m], same length as [vgs] *)
}

val id_vg :
  ?vg_min:float -> ?vg_max:float -> ?points:int -> ?warm:bool -> ?tol:float ->
  ?max_gummel:int -> ?max_warm_gummel:int -> Structure.t -> vd:float -> sweep
(** Simulate an Id–Vg sweep at fixed [vd].  Default gate range 0 .. 0.9 V in
    19 points.  Biases are magnitudes: for a P-channel device the applied
    voltages are negated internally.  [tol]/[max_gummel] tune the Gummel
    iteration at every point (defaults as {!Gummel.solve_at});
    [max_warm_gummel] bounds only the speculative warm jumps, so a lower
    value trades continuation speed for earlier fallback.  Raises
    [Invalid_argument] (naming the offending value) when [points < 2]. *)

val id_vg_at :
  ?warm:bool -> ?tol:float -> ?max_gummel:int -> ?max_warm_gummel:int ->
  Structure.t -> vd:float -> vgs:Numerics.Vec.t -> sweep
(** As {!id_vg} over an arbitrary gate grid [vgs] — the serving layer's
    entry point for coalesced sweeps, whose merged grids are unions of
    linspaces rather than a linspace.  The grid must be strictly
    increasing with at least 2 points (raises [Invalid_argument] naming
    the offending entry otherwise); it is copied, so the caller's array
    stays untouched. *)

type output_sweep = {
  vg : float;
  vds : Numerics.Vec.t;
  ids : Numerics.Vec.t;  (** drain current [A/m] *)
}

val id_vd :
  ?vd_min:float -> ?vd_max:float -> ?points:int -> ?warm:bool -> ?tol:float ->
  ?max_gummel:int -> ?max_warm_gummel:int -> Structure.t -> vg:float -> output_sweep
(** Output characteristic at fixed gate bias (magnitudes; P-channel biases
    negated internally).  The drain grid is [linspace vd_min vd_max points]
    — endpoints included — with [vd_min] defaulting to 0, so the sweep
    starts at a true near-equilibrium drain point.  Default sweep 0 .. 0.6 V
    in 13 points.  Raises [Invalid_argument] unless [vd_min < vd_max]. *)

val gate_charge : Structure.t -> Gummel.state -> float
(** Gate charge per metre of width [C/m]: the oxide displacement field
    integrated over the gate footprint at a solved bias point. *)

val gate_capacitance : ?dv:float -> Structure.t -> vg:float -> vd:float -> float
(** C_gg = dQ_g/dV_g [F/m of width] by central differencing two solves
    [dv] apart (default 5 mV) — the 2-D counterpart of the compact model's
    C_g.  The second bias point warm-starts from the first. *)

type cut = {
  positions : Numerics.Vec.t;  (** node coordinates along the cut [m] *)
  psi : Numerics.Vec.t;
  n : Numerics.Vec.t;
  p : Numerics.Vec.t;
  net_doping : Numerics.Vec.t;
}

val vertical_cut : Structure.t -> Gummel.state -> x:float -> cut
(** Depth profile at the mesh column nearest [x]. *)

val lateral_cut : Structure.t -> Gummel.state -> y:float -> cut
(** Along-channel profile at the mesh row nearest [y]. *)

val subthreshold_slope : ?i_lo:float -> ?i_hi:float -> sweep -> float
(** Inverse subthreshold slope S_S [V/decade], from the least-squares slope
    of V_g against log10(I_d) over the current window [[i_lo, i_hi]] [A/m].
    By default the window is adaptive: 2.5 decades starting a factor of 3
    above the lowest simulated current, safely inside weak inversion.
    Raises [Failure] if fewer than 3 sweep points fall in the window. *)

val threshold_voltage : ?criterion:float -> sweep -> float
(** Constant-current V_th: the gate voltage where I_d crosses [criterion]
    (default 1e-1 A/m, i.e. 100 nA/um), interpolated in log current. *)

val current_at : sweep -> float -> float
(** [current_at sweep vg], interpolating log-linearly. *)

val dibl : low:sweep -> high:sweep -> float
(** DIBL [V/V]: (V_th(low V_d) - V_th(high V_d)) / (V_d,high - V_d,low). *)

type characteristics = {
  ss : float;  (** [V/dec] *)
  vth_lin : float;  (** [V] at V_d = 50 mV *)
  vth_sat : float;  (** [V] at V_d = V_dd *)
  dibl : float;  (** [V/V] *)
  ioff : float;  (** [A/m] at V_g = 0, V_d = V_dd *)
  ion_sub : float;  (** [A/m] at V_g = V_d = 250 mV *)
  on_off_ratio_sub : float;  (** I_on/I_off with both at V_dd = 250 mV *)
  leff : float;  (** metallurgical channel length [m] *)
}

val characterize : ?vdd:float -> Structure.t -> characteristics
(** Full characterization at supply [vdd] (default 0.9 V for V_th,sat) and at
    the paper's subthreshold operating point V_dd = 250 mV.  One equilibrium
    solve seeds all three Vd planes; each plane's entry state warm-continues
    from the previous plane's. *)

val characterize_cached : ?vdd:float -> Structure.t -> characteristics
(** [characterize] behind a content-addressed memo keyed on the structure's
    description, its mesh dimensions and [vdd]: sweep points sharing
    identical device parameters solve the TCAD decks once.  Counters appear
    as ["tcad.characterize"] in [Exec.Memo.stats]. *)

val characterize_memo : characteristics Exec.Memo.t
(** The memo table behind {!characterize_cached}, exposed so a daemon can
    attach a persistent {!Exec.Store} tier
    ([Exec.Memo.attach_store characterize_memo ~store
    ~codec:characteristics_codec]). *)

(** {2 Persistent-tier codecs}

    Fixed-layout encodings for {!Exec.Store}: every float crosses the
    disk boundary as its IEEE-754 bits (hex), so a restarted daemon
    answers bit-identically to the cold compute.  Each carries a version
    tag ([chars/1], [sweep/1]); records written by a different layout
    decode as cache misses. *)

val characteristics_codec : characteristics Exec.Store.codec
val sweep_codec : sweep Exec.Store.codec
