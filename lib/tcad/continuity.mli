(** Carrier continuity in Slotboom form, for either carrier.

    Electrons: with u = n / (n_i e^{psi/vT}) (so phi_n = -vT ln u),
    steady-state continuity becomes the symmetric positive-definite problem
    div (mu_n vT n_i e^{psi/vT} grad u) = R.  Holes are the exact mirror:
    w = p / (n_i e^{-psi/vT}) (phi_p = +vT ln w) with coefficient
    e^{-psi/vT} and source -R.  Both cases produce the same M-matrix form.
    The edge coefficients use the exact exponential average of e^{+-psi/vT}
    along each edge — algebraically the Scharfetter–Gummel flux.

    Recombination R is Shockley–Read–Hall,
    R = (n p - n_i^2) / (tau_p (n + n_i) + tau_n (p + n_i)),
    linearized in the solved variable with the lagged densities of the
    previous Gummel iterate (the standard decoupled treatment). *)

type carrier = Electrons | Holes

type srh = { tau_n : float; tau_p : float }

val default_srh : srh
(** 0.1 us lifetimes — a clean-silicon value. *)

type solution = {
  u : Field.t;  (** Slotboom variable per node *)
  density : Field.t;  (** carrier density [m^-3] *)
  quasi_fermi : Field.t;  (** quasi-Fermi potential [V] *)
}

val solve :
  ?recombination:srh * Field.t * Field.t ->
  ?scratch:Poisson.scratch ->
  Structure.t ->
  carrier:carrier ->
  biases:Poisson.biases ->
  psi:Field.t ->
  solution
(** Direct stencil-banded solve for one carrier.  [recombination] carries
    the SRH lifetimes and the lagged electron and hole densities (in that
    order) from the previous Gummel iterate; omit it for the
    recombination-free problem.  [scratch] reuses the shared Poisson
    workspace's system matrix (safe: each solve re-assembles every row).
    Raises [Failure] on a singular system (cannot happen on a connected
    mesh with an ohmic contact). *)

val terminal_current :
  Structure.t -> carrier:carrier -> psi:Field.t -> u:Field.t -> float
(** Signed conventional current [A per metre of width] carried by this
    carrier through a vertical mid-channel cut, positive flowing from
    source side to drain side. *)

val drain_current : Structure.t -> psi:Field.t -> u:Field.t -> float
(** Electron-only magnitude (compatibility helper for N-channel sweeps):
    |{!terminal_current} Electrons|. *)
