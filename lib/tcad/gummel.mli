(** Gummel (decoupled) iteration: alternate the nonlinear Poisson half-step
    (frozen quasi-Fermi levels) with the two linear carrier-continuity
    solves until the potential stops moving, ramping terminal biases in
    steps small enough that each warm start converges.

    The solver is bipolar: both electron and hole continuity are solved each
    sweep (with SRH recombination coupling them), so N-channel and P-channel
    devices run through the same loop and the reported drain current is the
    total (electron + hole) current through the mid-channel cut.

    States are immutable once returned: every solve writes fresh field
    buffers, so a state can seed several later solves (warm-started sweep
    continuation in {!Extract}) and is safe to hold across them. *)

type state = {
  biases : Poisson.biases;
  psi : Field.t;
  u : Field.t;  (** electron Slotboom variable *)
  w : Field.t;  (** hole Slotboom variable *)
  n : Field.t;  (** electron density [m^-3] *)
  p : Field.t;  (** hole density [m^-3] *)
  phi_n : Field.t;
  phi_p : Field.t;
  drain_current : float;  (** total conventional current magnitude [A/m] *)
}

exception No_convergence of string

val equilibrium : ?scratch:Poisson.scratch -> Structure.t -> state
(** Thermal-equilibrium solution (all terminals grounded). *)

val gummel_at :
  ?tol:float -> ?max_gummel:int -> ?srh:Continuity.srh option -> ?quiet:bool ->
  ?scratch:Poisson.scratch -> Structure.t -> from:state -> Poisson.biases -> state
(** One Gummel iteration at exactly the target biases, warm-started from
    [from] with no ramping — the primitive {!solve_at} ramps over, exposed
    for speculative continuation jumps.  Tightening [tol] below its 5e-7
    default also tightens the inner Poisson tolerance in proportion, so the
    fixed point is resolved to [tol].  [quiet] suppresses [Obs]
    non-convergence events (counter and trace instant) on a stall — for
    attempts with a planned fallback; {!No_convergence} is raised either
    way.  [scratch] reuses one assembly workspace across the whole
    iteration. *)

val solve_at :
  ?tol:float -> ?max_gummel:int -> ?ramp_step:float -> ?srh:Continuity.srh option ->
  ?scratch:Poisson.scratch -> Structure.t -> from:state -> Poisson.biases -> state
(** [solve_at dev ~from target] ramps from the bias point of [from] to
    [target] (default step 0.1 V) and Gummel-iterates at each point.
    [srh] defaults to {!Continuity.default_srh}; pass [None] to disable
    recombination.  Raises {!No_convergence} with a diagnostic if either
    inner solver stalls. *)
