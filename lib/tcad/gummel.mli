(** Gummel (decoupled) iteration: alternate the nonlinear Poisson half-step
    (frozen quasi-Fermi levels) with the two linear carrier-continuity
    solves until the potential stops moving, ramping terminal biases in
    steps small enough that each warm start converges.

    The solver is bipolar: both electron and hole continuity are solved each
    sweep (with SRH recombination coupling them), so N-channel and P-channel
    devices run through the same loop and the reported drain current is the
    total (electron + hole) current through the mid-channel cut. *)

type state = {
  biases : Poisson.biases;
  psi : Numerics.Vec.t;
  u : Numerics.Vec.t;  (** electron Slotboom variable *)
  w : Numerics.Vec.t;  (** hole Slotboom variable *)
  n : Numerics.Vec.t;  (** electron density [m^-3] *)
  p : Numerics.Vec.t;  (** hole density [m^-3] *)
  phi_n : Numerics.Vec.t;
  phi_p : Numerics.Vec.t;
  drain_current : float;  (** total conventional current magnitude [A/m] *)
}

exception No_convergence of string

val equilibrium : Structure.t -> state
(** Thermal-equilibrium solution (all terminals grounded). *)

val solve_at :
  ?tol:float -> ?max_gummel:int -> ?ramp_step:float -> ?srh:Continuity.srh option ->
  Structure.t -> from:state -> Poisson.biases -> state
(** [solve_at dev ~from target] ramps from the bias point of [from] to
    [target] (default step 0.1 V) and Gummel-iterates at each point.
    [srh] defaults to {!Continuity.default_srh}; pass [None] to disable
    recombination.  Raises {!No_convergence} with a diagnostic if either
    inner solver stalls. *)
