(** Flat per-node field state: float64 Bigarray buffers (C layout) indexed
    by the mesh's flat node order [k = ix * ny + iy].

    [Field.t] {e is} {!Numerics.Fvec.t} — contiguous, unboxed, and usable
    with the [.{k}] indexing syntax — so solver assembly runs allocation-
    free over the same buffers the {!Gummel.state} carries between bias
    points.  {!Mask} packs the per-node boundary classification into an
    int8 buffer for branch-cheap dispatch inside assembly loops; the
    structured {!Structure.boundary} array remains the source of truth for
    non-hot-path consumers (audits, tests). *)

include module type of Numerics.Fvec

module Mask : sig
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  val interior : int
  val reflecting : int
  val gate_surface : int

  val first_ohmic : int
  (** Ohmic nodes are exactly those with code [>= first_ohmic]; the
      terminal index is [code - first_ohmic] in the order source, drain,
      gate, substrate. *)

  val ohmic_source : int
  val ohmic_drain : int
  val ohmic_gate : int
  val ohmic_substrate : int

  val create : int -> t
  (** Filled with {!interior}. *)

  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val unsafe_get : t -> int -> int
end
