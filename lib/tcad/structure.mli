(** Device structure: an NFET description compiled onto a mesh with doping,
    boundary classification, and per-node mobility.  This is the "deck" the
    solver consumes — the role a MEDICI input file plays in the paper. *)

type polarity = Nchannel | Pchannel

type description = {
  polarity : polarity;  (** NFET (p-body, n+ S/D) or PFET (mirror) *)
  lpoly : float;  (** physical gate length after etch [m] *)
  tox : float;  (** gate oxide thickness [m] *)
  nsub : float;  (** uniform body doping magnitude [m^-3] (acceptors for N-channel) *)
  np_halo : float;  (** peak halo doping added to the body [m^-3], same type as the body *)
  xj : float;  (** source/drain junction depth [m] *)
  nsd : float;  (** peak source/drain doping magnitude [m^-3], opposite type to the body *)
  overlap : float;  (** gate/source-drain overlap (lateral diffusion) [m] *)
  halo_depth_frac : float;  (** halo centre depth as a fraction of xj *)
  halo_sigma_frac : float;  (** halo Gaussian sigma as a fraction of xj *)
  gate_doping : float;  (** n+ poly doping, sets the gate contact potential [m^-3] *)
  temperature : float;  (** lattice temperature [K] *)
}

val default_description : description
(** A representative 90 nm low-power NFET (L_poly 65 nm, T_ox 2.1 nm), with
    dimensions proportioned as in the paper's Sec. 2.2 (all lengths except
    T_ox scale with L_poly). *)

val description_key : description -> string
(** Canonical content key over every description field (floats as exact
    IEEE-754 bit patterns), for memoizing characterizations.  The mesh is a
    deterministic function of the description, so this key also identifies
    the compiled structure. *)

val description_key_fields : string list
(** The field names encoded by {!description_key}, in key order — the
    coverage set the memo-soundness auditor checks characterization reads
    against. *)

val gate_span : description -> float * float
(** Lateral extent [x_g0, x_g1] of the gate in the simulated structure's
    coordinates — the window in which the mesh-resolution audit counts
    channel mesh lines. *)

val scale_description :
  ?lpoly:float -> ?tox:float -> ?nsub:float -> ?np_halo:float -> description -> description
(** Derive a new description: explicitly given fields are set, and all other
    physical dimensions (x_j, overlap, halo geometry) are rescaled in
    proportion to the L_poly change, per the paper's scaling assumption. *)

type terminal = Source | Drain | Gate | Substrate

type boundary =
  | Interior
  | Ohmic of terminal  (** Dirichlet: psi = V(term) + built-in potential *)
  | Gate_surface  (** Robin coupling through the oxide *)
  | Reflecting  (** homogeneous Neumann *)

type t = {
  desc : description;
  mesh : Mesh.t;
  net_doping : Field.t;  (** N_D - N_A per node [m^-3] *)
  total_doping : Field.t;  (** N_D + N_A per node, for mobility *)
  boundary : boundary array;  (** per node (structured view; see [bmask]) *)
  bmask : Field.Mask.t;  (** packed boundary codes for assembly loops *)
  bulk_phi : Field.t;  (** charge-neutral potential per node [V] *)
  mobility_n : Field.t;  (** electron mobility per node [m^2/Vs] *)
  mobility_p : Field.t;  (** hole mobility per node [m^2/Vs] *)
  gate_potential_offset : float;
      (** degenerate poly gate potential wrt intrinsic [V]; positive (n+)
          for N-channel, negative (p+) for P-channel *)
  x_channel_mid : float;  (** x of mid-channel, for current cuts *)
  ni : float;  (** intrinsic density at the device temperature *)
  vt : float;  (** thermal voltage at the device temperature *)
}

val build : ?nx:int -> ?ny:int -> description -> t
(** Compile a description to a simulatable structure.  [nx]/[ny] bound the
    mesh size (defaults chosen for accuracy/speed balance: refined near the
    surface, the junctions and the halos). *)

val effective_channel_length : t -> float
(** Metallurgical channel length: surface distance between the points where
    net doping changes sign. *)

val bias_of_terminal : source:float -> drain:float -> gate:float -> substrate:float ->
  terminal -> float
