(** 2-D tensor-product finite-volume mesh for the device simulator.

    Coordinates: [x] runs laterally (source to drain), [y] runs vertically
    from the Si/SiO2 interface ([y = 0]) down into the substrate.  The gate
    oxide is not meshed; it enters the Poisson problem as a Robin boundary
    term on the surface boxes under the gate (see {!Poisson}).

    Nodes are indexed [k = ix * ny + iy] so that the vertical dimension
    (the smaller one) sets the matrix bandwidth. *)

type t = {
  xs : Numerics.Vec.t;  (** lateral node coordinates [m], increasing *)
  ys : Numerics.Vec.t;  (** vertical node coordinates [m], 0 at surface *)
  nx : int;
  ny : int;
  hx : Numerics.Vec.t;  (** precomputed spacings [xs.(i+1) - xs.(i)], length nx-1 *)
  hy : Numerics.Vec.t;  (** precomputed spacings [ys.(i+1) - ys.(i)], length ny-1 *)
  wx : Numerics.Vec.t;  (** precomputed dual-box widths per column, length nx *)
  wy : Numerics.Vec.t;  (** precomputed dual-box widths per row, length ny *)
}

val make : xs:Numerics.Vec.t -> ys:Numerics.Vec.t -> t
(** Validates monotonicity and minimum size (3 x 3). *)

val n_nodes : t -> int

val index : t -> ix:int -> iy:int -> int

val coords : t -> int -> float * float
(** Node coordinates from the flat index. *)

val dual_width_x : t -> int -> float
(** [dual_width_x m ix] is the finite-volume box width around column [ix]
    (half-spacing on each interior side). *)

val dual_width_y : t -> int -> float

val box_area : t -> int -> float
(** Dual-box area (per unit device width) around a flat node index. *)

val find_ix : t -> float -> int
(** Nearest column index to a lateral coordinate. *)

val find_iy : t -> float -> int
