(* Flat per-node field state for the device simulator: a thin veneer over
   Numerics.Fvec (float64 Bigarray) plus the packed boundary mask the
   assembly loops branch on.  Everything the Poisson/continuity inner loops
   touch per node — potentials, Slotboom variables, densities, doping,
   mobilities, boundary codes — lives on these contiguous buffers. *)

include Numerics.Fvec

module Mask = struct
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  (* Codes, chosen so ohmic nodes are exactly those >= first_ohmic and the
     terminal of an ohmic node is [code - first_ohmic] indexing
     [Source; Drain; Gate; Substrate]. *)
  let interior = 0
  let reflecting = 1
  let gate_surface = 2
  let first_ohmic = 3
  let ohmic_source = 3
  let ohmic_drain = 4
  let ohmic_gate = 5
  let ohmic_substrate = 6

  let create n : t =
    let m = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n in
    Bigarray.Array1.fill m interior;
    m

  let length : t -> int = Bigarray.Array1.dim
  let get (m : t) i = Bigarray.Array1.get m i
  let set (m : t) i v = Bigarray.Array1.set m i v
  let unsafe_get (m : t) i = Bigarray.Array1.unsafe_get m i
end
