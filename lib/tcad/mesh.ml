type t = {
  xs : Numerics.Vec.t;
  ys : Numerics.Vec.t;
  nx : int;
  ny : int;
  hx : Numerics.Vec.t;
  hy : Numerics.Vec.t;
  wx : Numerics.Vec.t;
  wy : Numerics.Vec.t;
}

let check_increasing name v =
  for i = 0 to Array.length v - 2 do
    if v.(i + 1) <= v.(i) then
      invalid_arg (Printf.sprintf "Mesh.make: %s must be strictly increasing" name)
  done

let spacings axis = Array.init (Array.length axis - 1) (fun i -> axis.(i + 1) -. axis.(i))

let dual_widths axis =
  let n = Array.length axis in
  Array.init n (fun i ->
    let left = if i = 0 then 0.0 else 0.5 *. (axis.(i) -. axis.(i - 1)) in
    let right = if i = n - 1 then 0.0 else 0.5 *. (axis.(i + 1) -. axis.(i)) in
    left +. right)

let make ~xs ~ys =
  if Array.length xs < 3 || Array.length ys < 3 then
    invalid_arg "Mesh.make: need at least a 3 x 3 mesh";
  check_increasing "xs" xs;
  check_increasing "ys" ys;
  {
    xs;
    ys;
    nx = Array.length xs;
    ny = Array.length ys;
    hx = spacings xs;
    hy = spacings ys;
    wx = dual_widths xs;
    wy = dual_widths ys;
  }

let n_nodes m = m.nx * m.ny

let index m ~ix ~iy =
  if ix < 0 || ix >= m.nx || iy < 0 || iy >= m.ny then
    invalid_arg (Printf.sprintf "Mesh.index: (%d, %d) out of range" ix iy);
  (ix * m.ny) + iy

let coords m k =
  let ix = k / m.ny and iy = k mod m.ny in
  (m.xs.(ix), m.ys.(iy))

let dual_width_x m ix = m.wx.(ix)
let dual_width_y m iy = m.wy.(iy)

let box_area m k =
  let ix = k / m.ny and iy = k mod m.ny in
  m.wx.(ix) *. m.wy.(iy)

let find_nearest axis v =
  let n = Array.length axis in
  let best = ref 0 and dist = ref (Float.abs (axis.(0) -. v)) in
  for i = 1 to n - 1 do
    let d = Float.abs (axis.(i) -. v) in
    if d < !dist then begin
      dist := d;
      best := i
    end
  done;
  !best

let find_ix m x = find_nearest m.xs x
let find_iy m y = find_nearest m.ys y
