(** The declarative seed of the UNT unit-inference pass: the unit-string
    grammar and the signature tables for the dimensioned surface of the
    model chain (Physics.Constants, Silicon, Mobility, parameter records,
    Tcad accessors).  Matching is by demangled path suffix, so crafted
    fixture modules of the same shape hit the same entries.  ROADMAP items
    3–5 extend these tables rather than the pass. *)

val parse : string -> (Dimension.t, string) result
(** Parse a unit string: atoms over [{m s V A K}] plus the derived units
    (C, F, J, W, S, Ohm, Hz, eV, dec) and display units (nm, um, cm, pA),
    combined with ['*'], ['/'] and [^int] exponents — e.g. "V/dec",
    "m^-3", "F/m^2", "m^2/V/s".  Display atoms tag the result with the
    original string. *)

type arg_spec = Pos of int | Lab of string
(** [Pos n]: the n-th [Nolabel] argument (0-based); [Lab l]: the argument
    labelled (or optionally labelled) [l]. *)

type fn_sig = { fn_args : (arg_spec * Dimension.t) list; fn_result : Dimension.t }

val constant : string -> Dimension.t option
(** Dimension of a zero-argument value, by demangled path suffix. *)

val function_sig : string -> fn_sig option
(** Signature of a seeded function, by demangled path suffix. *)

val field : record:string -> name:string -> Dimension.t option
(** Dimension of a float record field, by record-type path suffix and
    field name. *)

val container_round_trip : string -> bool
(** Is this a polymorphic container function the pass cannot follow
    (List.map, Array.fold_left, ...)?  UNT005's subject. *)

val selftest : unit -> int
(** Validate table shape; returns the number of seeded entries. *)
