(** The checked-in baseline of grandfathered findings.

    Format: one [<rule> <file>:<line> — justification] entry per line
    ([#] comments and blanks ignored).  Matching ignores the column, and
    entries that no longer match anything are reported as stale. *)

type entry = { rule : string; file : string; line : int; note : string }
type t = entry list

exception Malformed of int * string
(** Line number and content of an unparseable baseline line. *)

val of_string : string -> t
val load : string -> t
(** [load path] is [[]] when the file does not exist. *)

val is_todo : entry -> bool
(** Does the entry's note start with a TODO marker ("— TODO ...", as
    written by [--update-baseline])?  [--strict] rejects such entries. *)

val todos : t -> t

val entry_to_string : entry -> string
val to_string : t -> string
(** Render with the standard header (the [--update-baseline] output). *)

val entry_of_diag : ?note:string -> Check.Diagnostic.t -> entry option

type application = {
  kept : Check.Diagnostic.t list;
  suppressed : Check.Diagnostic.t list;
  stale : entry list;
}

val apply : t -> Check.Diagnostic.t list -> application
