(** Lint: the typedtree-based source linter behind [subscale lint].

    Driven entirely by the .cmt artifacts dune already produces (compiler
    -bin-annot output) — no re-typechecking, `dune build` is the only
    prerequisite.  Rule families:

    - {!Purity} — LNT001: closures entering the domain-parallel engine
      must not capture or mutate unsanctioned mutable state;
    - {!Hygiene} — LNT002 float discipline, LNT003 exception hygiene,
      LNT005 output hygiene;
    - {!Discipline} — LNT004: rule ids minted via [Check.Rules] only;
    - {!Units} — UNT001-005: static dimensional analysis over the Eq. 1-8
      model chain, seeded from the {!Unit_sig} tables (on by default,
      disable with [~units:false] / [--no-units]);
    - {!Races} — RAC001-005: interprocedural lockset & domain-safety
      analysis over the same {!Callgraph}/{!Summary} fixpoint (on by
      default, disable with [~races:false] / [--no-races]).

    Findings are {!Check.Diagnostic}s, so reports and exit codes behave
    exactly like [subscale check]/[audit]; deliberate keeps live in the
    checked-in {!Baseline} file with a justification. *)

module Rules = Lint_rules
module Baseline = Baseline
module Purity = Purity
module Hygiene = Hygiene
module Discipline = Discipline
module Dimension = Dimension
module Unit_sig = Unit_sig
module Units = Units
module Cmt_load = Cmt_load
module Callgraph = Callgraph
module Summary = Summary
module Alias = Alias
module Lockset = Lockset
module Races = Races
module Selftest = Selftest

module D = Check.Diagnostic

type file_report = { source : string; diags : D.t list }

(* The sanctioned output layers: LNT005 does not apply to the modules whose
   whole job is producing output.  bin/ and bench/ are entry points — the
   rule's own scope is "lib/ never prints directly". *)
let output_exempt_dirs = [ "lib/report/"; "lib/obs/"; "bin/"; "bench/" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let exempt_output source =
  List.exists (fun prefix -> starts_with ~prefix source) output_exempt_dirs

(* The ALS and RAC passes need whole-tree context: summaries of callees
   live in other units.  [alias_env] carries the fixpoint computed once
   per root (or once per single unit for lint_cmt); [races_env] builds the
   lockset analysis on top of it. *)
let alias_env units = Summary.compute (Callgraph.build units)

let races_env env = Races.analyze env

let lint_unit ?(units = true) ?alias_env:env ?races_env:renv
    (u : Cmt_load.unit_info) : file_report =
  let source = u.Cmt_load.source in
  let diags =
    Purity.check ~source u.Cmt_load.structure
    @ Hygiene.check ~source ~exempt_output:(exempt_output source) u.Cmt_load.structure
    @ Discipline.check ~source u.Cmt_load.structure
    @ (if units then Units.check ~source u.Cmt_load.structure else [])
    @ (match env with Some e -> Alias.check e ~source | None -> [])
    @ (match renv with Some r -> Races.check r ~source | None -> [])
  in
  { source; diags = D.sort diags }

let lint_cmt ?units ?(alias = true) ?(races = true) path =
  match Cmt_load.load path with
  | Cmt_load.Unit u ->
    let env = if alias || races then Some (alias_env [ u ]) else None in
    let renv =
      match env with Some e when races -> Some (races_env e) | _ -> None
    in
    let env = if alias then env else None in
    Some (lint_unit ?units ?alias_env:env ?races_env:renv u)
  | Cmt_load.Skipped -> None
  | Cmt_load.Unreadable (p, msg) ->
    Some
      { source = p;
        diags =
          [ D.warning ~rule:Lint_rules.unreadable_cmt ~location:p
              (Printf.sprintf "unreadable .cmt artifact: %s" msg)
              ~hint:"stale build? re-run `dune build` and lint again" ] }

let lint_root ?units:(units_on = true) ?(alias = true) ?(races = true) root =
  let units, unreadable = Cmt_load.load_root root in
  let env = if alias || races then Some (alias_env units) else None in
  let renv =
    match env with Some e when races -> Some (races_env e) | _ -> None
  in
  let env = if alias then env else None in
  let reports =
    List.map (lint_unit ~units:units_on ?alias_env:env ?races_env:renv) units
  in
  let unreadable_reports =
    List.map
      (fun (p, msg) ->
        { source = p;
          diags =
            [ D.warning ~rule:Lint_rules.unreadable_cmt ~location:p
                (Printf.sprintf "unreadable .cmt artifact: %s" msg)
                ~hint:"stale build? re-run `dune build` and lint again" ] })
      unreadable
  in
  reports @ unreadable_reports

let all_diags reports = List.concat_map (fun r -> r.diags) reports

let rules_markdown = Lint_rules.markdown
