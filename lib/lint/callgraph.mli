(** Function-definition table for the interprocedural ALS pass.

    Records every let-bound function in the loaded units under its
    qualified source-level name ("Poisson.solve") so call sites — whose
    typedtree paths carry Stdlib prefixes and dune's wrapped-library
    mangling — resolve back to the definition they name.  Unresolved or
    ambiguous calls yield [None]: the downstream summary treats them as
    effect-free, which can only silence a finding, never invent one. *)

type param = {
  p_label : Asttypes.arg_label;
  p_idents : Ident.t list;  (** bound idents of the parameter pattern *)
}

type def = {
  qname : string;        (** "Unit.Sub.f" *)
  unit_module : string;  (** capitalized basename of the source file *)
  source : string;
  params : param list;   (** in currying order *)
  prelude : Typedtree.value_binding list;
      (** bindings crossed while unwrapping the parameter chain (optional-
          argument default unpacking) — analyzed together with [body] *)
  body : Typedtree.expression;
  def_attrs : Parsetree.attributes;
  loc : Location.t;
}

type t

val build : Cmt_load.unit_info list -> t

val defs : t -> def list

val defs_of_source : t -> string -> def list
(** Definitions recorded from one source file, in declaration order. *)

val find : ?current_unit:string -> t -> Path.t -> def option
(** Resolve a call-site path: exact qualified match first, then unique
    suffix match, then — among several suffix matches — the unique one
    defined in [current_unit].  Anything else is [None]. *)
