(** ALS001-004 — interprocedural buffer ownership/aliasing analysis over
    the Bigarray hot path.

    Convicts only on positive evidence from the {!Summary} fixpoint:
    - ALS001: a closure entering [Exec.map]/[Pool.map] mutates a flat
      buffer rooted in a capture (directly or through resolved calls);
    - ALS002: solver scratch escapes into long-lived state, or a parallel
      closure reenters the solver with one shared workspace;
    - ALS003: a call's mutated (output) buffer argument aliases another
      argument of the same call;
    - ALS004 (warning): a function returns a buffer it also retains;
      [@owned] on the binding asserts deliberate sharing.

    Unresolved roots and callees never fire.  Captures whose own type is
    directly hazardous are LNT001's findings, not ALS's. *)

val check : Summary.env -> source:string -> Check.Diagnostic.t list
(** All ALS findings for the definitions recorded from [source]. *)

val selftest : unit -> int
