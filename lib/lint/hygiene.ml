(* LNT002/LNT003/LNT005 — hygiene passes sharing one typedtree walk.

   LNT002 (float discipline): polymorphic structural equality on floats
   compiles, but bit-equality on computed floats is almost always a latent
   bug in a numerics codebase (NaN never equals itself; two mathematically
   equal expressions rarely share a bit pattern).  The pass flags
   [Stdlib.( = )]/[( <> )]/[( == )]/[( != )]/[compare] instantiated at
   float or at tuples/options/lists/arrays directly carrying floats.

   LNT003 (exception hygiene): a [try ... with _ ->] swallows
   [Root.No_convergence] and [Check.Check_failed] alike, turning a loud
   solver failure into a silently wrong number.  Catch-alls are flagged
   unless the handler re-raises.

   LNT005 (output hygiene): library code never prints to stdout/stderr
   directly; results flow through lib/report and observability through
   lib/obs, so every consumer (CLI, tests, future services) controls its
   own channels.  The two sanctioned output layers are exempted by the
   runner via [exempt_output]. *)

module D = Check.Diagnostic
open Typedtree

(* --- LNT002 ------------------------------------------------------------- *)

let poly_compare_names = [ "="; "<>"; "=="; "!="; "compare" ]

(* Only the genuine Stdlib polymorphic operators: a user-defined [compare]
   or [Float.compare] has a different (un-normalized) path. *)
let is_poly_compare p =
  let raw = Path.name p in
  let normalized = Paths.normalize raw in
  List.mem normalized poly_compare_names
  && String.length raw > 7
  && String.sub raw 0 7 = "Stdlib."

(* --- LNT003 ------------------------------------------------------------- *)

let rec value_catch_all (p : pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p', _, _) -> value_catch_all p'
  | Tpat_or (a, b, _) -> value_catch_all a || value_catch_all b
  | _ -> false

(* Does the handler body re-raise (any raise counts: [raise e] after
   cleanup is the sanctioned catch-all shape)? *)
let reraises (body : expression) =
  let found = ref false in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, _) ->
       (match Paths.applied_path fn with
        | Some p ->
          let name = Paths.path_name p in
          if
            List.mem name [ "raise"; "raise_notrace"; "Printexc.raise_with_backtrace" ]
          then found := true
        | None -> ())
     | _ -> ());
    if not !found then Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

(* --- LNT005 ------------------------------------------------------------- *)

let printer_names =
  [ "print_string"; "print_bytes"; "print_int"; "print_float"; "print_char";
    "print_endline"; "print_newline"; "prerr_string"; "prerr_bytes"; "prerr_int";
    "prerr_float"; "prerr_char"; "prerr_endline"; "prerr_newline";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline" ]

let is_direct_printer p =
  let raw = Path.name p in
  Paths.suffix_matches ~candidates:printer_names (Paths.normalize raw)
  && String.length raw > 7
  && String.sub raw 0 7 = "Stdlib."

(* --- the shared walk ---------------------------------------------------- *)

let check ~source ~exempt_output (str : structure) : D.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let flag_catch_all (case : value case) =
    if value_catch_all case.c_lhs && not (reraises case.c_rhs) then
      emit
        (D.warning ~rule:Lint_rules.lnt003
           ~location:(Srcloc.to_string ~source case.c_lhs.pat_loc)
           "catch-all exception handler does not re-raise: it can swallow \
            Root.No_convergence and checker diagnostics"
           ~hint:"name the exceptions you expect, or re-raise after cleanup")
  in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | Some p when is_poly_compare p ->
          let first_arg =
            List.find_map
              (function Asttypes.Nolabel, Some (a : expression) -> Some a | _ -> None)
              args
          in
          (match first_arg with
           | Some a when Paths.is_floatish a.exp_type ->
             emit
               (D.warning ~rule:Lint_rules.lnt002
                  ~location:(Srcloc.to_string ~source e.exp_loc)
                  (Printf.sprintf
                     "polymorphic %s on a float-carrying type"
                     (Paths.path_name p))
                  ~hint:
                    "use Float.equal / Float.compare, or an explicit tolerance \
                     (bit-equality on computed floats is almost never meant)")
           | _ -> ())
        | Some p when (not exempt_output) && is_direct_printer p ->
          emit
            (D.warning ~rule:Lint_rules.lnt005
               ~location:(Srcloc.to_string ~source e.exp_loc)
               (Printf.sprintf "direct console output via %s in library code"
                  (Paths.path_name p))
               ~hint:
                 "format into a string/Buffer and return it, or route through \
                  lib/report (results) / lib/obs (telemetry)")
        | _ -> ())
     | Texp_try (_, cases) -> List.iter flag_catch_all cases
     | Texp_match (_, cases, _) ->
       List.iter
         (fun (case : computation case) ->
           match split_pattern case.c_lhs with
           | _, Some exn_pat when value_catch_all exn_pat ->
             if not (reraises case.c_rhs) then
               emit
                 (D.warning ~rule:Lint_rules.lnt003
                    ~location:(Srcloc.to_string ~source exn_pat.pat_loc)
                    "catch-all [match ... with exception _] does not re-raise: it \
                     can swallow Root.No_convergence and checker diagnostics"
                    ~hint:"name the exceptions you expect, or re-raise after cleanup")
           | _ -> ())
         cases
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !diags
