(* ALS001-004 — the buffer ownership/aliasing pass.

   Built on the interprocedural {!Summary} fixpoint: each check resolves
   call-site arguments to roots (parameter / local / outer, with field
   trails) and convicts only on positive evidence that a flat buffer or
   solver workspace is mutated through a capture, escapes into long-lived
   state, or aliases another argument of the same call.  Everything the
   root analysis cannot resolve stays silent — same contract as UNT.

   Division of labor with LNT001: a closure that captures a value whose
   own type is directly hazardous (ref, Hashtbl, Fvec.t, scratch...) is
   LNT001's finding; ALS001/ALS002 convict the *indirect* captures LNT001
   cannot see — a captured record whose buffer field is written through a
   helper three calls down. *)

module D = Check.Diagnostic
open Typedtree

(* [@owned] on a binding asserts deliberate sharing (mirrors [@units]):
   the function knowingly returns a buffer it retains. *)
let owned_attr (attrs : Parsetree.attributes) =
  List.exists (fun a -> a.Parsetree.attr_name.Location.txt = "owned") attrs

(* Scratch evidence through one constructor layer: [Some scratch] mentions
   scratch even though its own type is [scratch option]. *)
let rec mentions_scratch (e : expression) =
  Paths.is_scratch e.exp_type
  ||
  match e.exp_desc with
  | Texp_construct (_, _, args) | Texp_tuple args -> List.exists mentions_scratch args
  | _ -> false

let rec mentions_buffer (e : expression) =
  Paths.is_flat_buffer e.exp_type
  ||
  match e.exp_desc with
  | Texp_construct (_, _, args) | Texp_tuple args -> List.exists mentions_buffer args
  | _ -> false

let short_of_root (r : Summary.Flow.root) =
  let base =
    match r.Summary.Flow.base with
    | Summary.Flow.Param _ | Summary.Flow.Outer _ -> None
    | Summary.Flow.Local unique ->
      (* unique names read "x_123"; keep the source part *)
      (match String.rindex_opt unique '_' with
       | Some i when i > 0 -> Some (String.sub unique 0 i)
       | _ -> Some unique)
  in
  match (base, r.Summary.Flow.rev_fields) with
  | Some b, [] -> b
  | Some b, fs -> b ^ "." ^ String.concat "." (List.rev fs)
  | None, _ -> "the captured value"

(* Render an expression's source name for messages when it is a simple
   ident or projection chain; fall back to the type. *)
let rec describe_expr (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    (match p with Path.Pident id -> Ident.name id | _ -> Paths.path_name p)
  | Texp_field (inner, _, lbl) -> describe_expr inner ^ "." ^ lbl.Types.lbl_name
  | _ -> Paths.describe_type e.exp_type

(* --- per-definition state ------------------------------------------------ *)

type def_facts = {
  mutable stores : (Summary.Flow.root list * expression * Location.t) list;
      (* (roots of the stored value, the stored expression, site) *)
}

(* Is the base of a root bound *inside* a given closure (its parameters or
   local lets)?  Anything else — enclosing-function parameters, enclosing
   locals, module-level values — is a capture from the closure's point of
   view. *)
let closure_local (closure_bound : (string, unit) Hashtbl.t)
    (r : Summary.Flow.root) =
  match r.Summary.Flow.base with
  | Summary.Flow.Local unique -> Hashtbl.mem closure_bound unique
  | Summary.Flow.Param _ | Summary.Flow.Outer _ -> false

(* Does the closure capture the root through an identifier whose own type
   is already directly hazardous?  Then LNT001 (with its flat-buffer
   stopgap) owns the finding and ALS stays quiet — one rule per defect. *)
let rec directly_hazardous_leaf (e : expression) =
  match e.exp_desc with
  | Texp_ident _ -> Paths.is_flat_buffer e.exp_type
  | Texp_field (inner, _, _) -> directly_hazardous_leaf inner
  | _ -> false

(* --- the pass ------------------------------------------------------------ *)

let check_def (env : Summary.env) ~source (d : Callgraph.def) : D.t list =
  let ctx = Summary.Flow.ctx_of_def env d in
  let current_unit = d.Callgraph.unit_module in
  let diags = ref [] in
  let seen = Hashtbl.create 8 in
  let emit ~rule ~loc ~msg ~hint =
    let location = Srcloc.to_string ~source loc in
    let key = rule ^ "|" ^ location in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let mk =
        match Lint_rules.severity_of_id rule with
        | D.Error -> D.error
        | D.Warning -> D.warning
        | D.Info -> D.info
      in
      diags := mk ~rule ~location msg ~hint :: !diags
    end
  in
  let facts = { stores = [] } in

  (* ALS003 at one application: a buffer-mutated slot whose actual shares a
     root with a *different* argument of the same call. *)
  let check_aliasing args (ce : Summary.call_effects) loc =
    List.iter
      (fun slot ->
        match Summary.actual_of_slot args slot with
        | None -> ()
        | Some am when Paths.is_flat_buffer am.exp_type ->
          let m_roots = Summary.Flow.roots ctx am in
          List.iter
            (fun (_, other) ->
              match other with
              | Some (ao : expression) when ao != am ->
                let o_roots = Summary.Flow.roots ctx ao in
                if
                  List.exists
                    (fun mr ->
                      List.exists (Summary.Flow.overlapping_roots mr) o_roots)
                    m_roots
                then
                  emit ~rule:Lint_rules.als003 ~loc
                    ~msg:
                      (Printf.sprintf
                         "output buffer %s aliases input %s in the same call"
                         (describe_expr am) (describe_expr ao))
                    ~hint:
                      "solver kernels assume non-overlapping operands; copy into a \
                       distinct destination or use the in-place variant deliberately"
              | _ -> ())
            args
        | Some _ -> ())
      ce.Summary.ce_buffer_mutated
  in

  (* record stores (ALS002 escape / ALS004) at one site *)
  let record_store v loc =
    facts.stores <- (Summary.Flow.roots ctx v, v, loc) :: facts.stores
  in

  (* ALS001/ALS002 inside one closure literal passed to a parallel entry
     point: find buffer-mutated actuals rooted in captures. *)
  let check_closure ~caller (lam : expression) =
    let closure_bound = Hashtbl.create 32 in
    let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
      fun it p ->
      List.iter
        (fun id -> Hashtbl.replace closure_bound (Ident.unique_name id) ())
        (pat_bound_idents p);
      Tast_iterator.default_iterator.pat it p
    in
    let expr it (e : expression) =
      (match e.exp_desc with
       | Texp_apply (fn, args) ->
         (match Paths.applied_path fn with
          | None -> ()
          | Some p ->
            (match Summary.call_effects env ~current_unit p with
             | None -> ()
             | Some ce ->
               List.iter
                 (fun slot ->
                   match Summary.actual_of_slot args slot with
                   | None -> ()
                   | Some am when directly_hazardous_leaf am ->
                     () (* the capture itself is buffer-typed: LNT001's finding *)
                   | Some am ->
                     let captured =
                       List.filter
                         (fun r -> not (closure_local closure_bound r))
                         (Summary.Flow.roots ctx am)
                     in
                     (match captured with
                      | [] -> ()
                      | r :: _ ->
                        if Paths.is_scratch am.exp_type then
                          emit ~rule:Lint_rules.als002 ~loc:e.exp_loc
                            ~msg:
                              (Printf.sprintf
                                 "closure passed to %s reenters the solver with \
                                  captured scratch %s: every domain would share one \
                                  workspace"
                                 caller (describe_expr am))
                            ~hint:
                              "allocate a per-call workspace inside the closure, or \
                               keep the sweep sequential"
                        else
                          emit ~rule:Lint_rules.als001 ~loc:e.exp_loc
                            ~msg:
                              (Printf.sprintf
                                 "closure passed to %s mutates buffer %s reachable \
                                  from capture %s"
                                 caller (describe_expr am) (short_of_root r))
                            ~hint:
                              "parallel closures own no shared buffers: allocate \
                               inside the closure or return the data instead"))
                 ce.Summary.ce_buffer_mutated))
       | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with pat; expr } in
    it.expr it lam
  in

  (* main walk over the definition *)
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | None -> ()
        | Some p ->
          let name = Paths.path_name p in
          if Paths.suffix_matches ~candidates:Purity.target_functions name then
            List.iter
              (function
                | _, Some ({ exp_desc = Texp_function _; _ } as lam) ->
                  check_closure ~caller:name lam
                | _ -> ())
              args;
          (match Summary.call_effects env ~current_unit p with
           | None -> ()
           | Some ce ->
             check_aliasing args ce e.exp_loc;
             List.iter
               (fun slot ->
                 match Summary.actual_of_slot args slot with
                 | Some v -> record_store v e.exp_loc
                 | None -> ())
               ce.Summary.ce_stored))
     | Texp_setfield (_, _, _, v) -> record_store v e.exp_loc
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  List.iter (fun vb -> it.expr it vb.vb_expr) d.Callgraph.prelude;
  it.expr it d.Callgraph.body;

  (* ALS002 escape: a stored value that mentions scratch. *)
  List.iter
    (fun (_, v, loc) ->
      if mentions_scratch v then
        emit ~rule:Lint_rules.als002 ~loc
          ~msg:
            (Printf.sprintf
               "solver scratch %s stored into a long-lived structure: the workspace \
                escapes its owner"
               (describe_expr v))
          ~hint:
            "scratch is caller-owned: thread it as an argument and let it die with \
             the sweep"
    (* a stored [Some scratch] describes as the constructor's payload *))
    facts.stores;

  (* ALS004: a returned buffer the definition also stored — unless the
     binding asserts [@owned]. *)
  if not (owned_attr d.Callgraph.def_attrs) then begin
    let tail_exprs = Summary.Flow.tails d.Callgraph.body in
    List.iter
      (fun (t : expression) ->
        if Paths.is_flat_buffer t.exp_type then
          let t_roots = Summary.Flow.roots ctx t in
          List.iter
            (fun (s_roots, v, _) ->
              if
                mentions_buffer v
                && List.exists
                     (fun tr ->
                       List.exists (Summary.Flow.overlapping_roots tr) s_roots)
                     t_roots
              then
                emit ~rule:Lint_rules.als004 ~loc:t.exp_loc
                  ~msg:
                    (Printf.sprintf
                       "%s returns buffer %s it also retains internally: the caller \
                        and the retained copy alias"
                       d.Callgraph.qname (describe_expr t))
                  ~hint:
                    "return a copy, drop the retained reference, or annotate the \
                     binding [@owned] if the sharing is deliberate")
            facts.stores)
      tail_exprs
  end;
  List.rev !diags

let check (env : Summary.env) ~source : D.t list =
  List.concat_map (check_def env ~source)
    (Callgraph.defs_of_source (Summary.callgraph env) source)

let selftest () = 4 (* ALS001-004 registered *)
