(* The lockset engine behind RAC001-005 (lib/lint/races.ml).

   Three layers, all driven by the same {!Callgraph} the ALS pass built:

   1. per-definition static info (parameter table, let-alias table, nested
      let-bound functions) mirroring Summary.Flow's collect-then-judge
      shape, plus lock *identity*: a mutex expression resolves to an
      instance root (Summary.Flow.roots) and a static class — the record
      type head plus field label ("Store.t.pending_lock"), the enclosing
      unit plus value name for module-level locks ("Memo.registry_lock"),
      or a definition-private name for locals;

   2. a bounded monotone fixpoint of per-definition summaries: may the
      body raise, may it block, which lock classes does it acquire
      (including through resolved calls), and which of those acquisitions
      are rooted in a parameter (so call sites can instantiate them
      against the actuals);

   3. a path-sensitive walk of each body threading the *held lockset* —
      which locks are held and whether each is exception-protected
      (Mutex.protect / Fun.protect ~finally) — emitting typed events the
      Races pass turns into diagnostics.  Branch joins keep a lock only
      when every non-diverging branch holds it, so the
      "unlock-then-invalid_arg" early-exit idiom stays precise; nested
      let-bound functions (a worker's [await] loop) are inlined with a
      visited set breaking recursion.

   Polarity: an unresolved call while a lock is held counts as may-raise
   (RAC002 fires on unknown) — inverted from UNT/ALS, because an
   exception-unsafe critical section is exactly where optimism ships a
   wedged process.  Lock identity keeps the conservative contract:
   unknown mutex expressions are simply not tracked. *)

module Flow = Summary.Flow
open Typedtree

type lock_kind = Kmod | Kfield | Klocal | Kparam

type lock = {
  l_cls : string option;
  l_kind : lock_kind;
  l_roots : Flow.root list;
  l_name : string;
  l_site : Location.t;
}

type hlock = { h_lock : lock; h_protected : bool }

type guard = Same_instance of string | Module_lock of string

type access_kind = Read | Write | Use

type event =
  | Reacquire of { lock : lock; site : Location.t }
  | Raise_evidence of { op : string; site : Location.t; locks : lock list }
  | Block_evidence of { op : string; site : Location.t; locks : lock list }
  | Order_edge of { held_cls : string; acq_cls : string; site : Location.t }
  | Access of {
      cls : string;
      kind : access_kind;
      guards : guard list;
      crossing : bool;
      fresh : bool;
      site : Location.t;
      descr : string;
    }
  | Torn_rmw of { name : string; site : Location.t }
  | Mod_lock_seen of string

(* --- primitive tables ---------------------------------------------------- *)

let matches cands name = Paths.suffix_matches ~candidates:cands name

(* Acquire/release/guard forms, matched before everything else. *)
let lock_names = [ "Mutex.lock" ]
let unlock_names = [ "Mutex.unlock" ]
let protect_names = [ "Mutex.protect" ]
let fun_protect_names = [ "Fun.protect" ]
let atomic_get_names = [ "Atomic.get" ]
let atomic_set_names = [ "Atomic.set" ]
let spawn_names = [ "Domain.spawn" ]
let array_get_names = [ "Array.get"; "Array.unsafe_get" ]

(* Transparent higher-order functions: literal closure arguments run
   within the call's dynamic extent, so they are walked with the current
   held lockset.  The iterators themselves never raise. *)
let hof_names =
  [ "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "List.rev_map";
    "List.filter"; "List.filter_map"; "List.concat_map"; "List.fold_left";
    "List.fold_right"; "List.exists"; "List.for_all"; "List.find_opt";
    "List.partition"; "List.sort"; "List.stable_sort"; "List.sort_uniq";
    "Array.iter"; "Array.iteri"; "Array.map"; "Array.mapi";
    "Array.fold_left"; "Array.init"; "Hashtbl.iter"; "Hashtbl.fold";
    "Hashtbl.filter_map_inplace"; "Queue.iter"; "Option.iter"; "Option.map";
    "Option.bind"; "Option.fold"; "with_span" ]

(* Never raise: the explicit floor under the "unknown may raise" polarity.
   Partial stdlib operations (Hashtbl.find, List.hd, Array.get, /, ...)
   are deliberately absent — falling through to "unknown" is the point. *)
let safe_names =
  [ "Mutex.create"; "Mutex.try_lock"; "Condition.create"; "Condition.wait";
    "Condition.signal"; "Condition.broadcast"; "Atomic.make"; "Atomic.incr";
    "Atomic.decr"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Hashtbl.create"; "Hashtbl.add";
    "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.mem"; "Hashtbl.find_opt";
    "Hashtbl.find_all"; "Hashtbl.length"; "Hashtbl.reset"; "Hashtbl.clear";
    "Hashtbl.hash"; "Queue.create"; "Queue.add"; "Queue.push";
    "Queue.is_empty"; "Queue.length"; "Queue.clear"; "Queue.transfer";
    "Buffer.create"; "Buffer.add_string"; "Buffer.add_char";
    "Buffer.add_buffer"; "Buffer.contents"; "Buffer.length"; "Buffer.clear";
    "Buffer.reset"; "Stack.create"; "Stack.push"; "Stack.is_empty";
    "Stack.length"; "Stack.clear"; "List.rev"; "List.length"; "List.mem";
    "List.memq"; "List.append"; "List.concat"; "List.rev_append";
    "List.cons"; "Array.length"; "Array.make"; "Array.copy";
    "Array.unsafe_get"; "Array.unsafe_set"; "Array.to_list"; "Array.of_list";
    "String.length"; "String.equal"; "String.compare"; "String.concat";
    "String.trim"; "String.make"; "String.lowercase_ascii";
    "String.uppercase_ascii"; "String.capitalize_ascii"; "String.contains";
    "String.starts_with"; "String.ends_with"; "String.split_on_char";
    "Bytes.length"; "Bytes.create"; "ref"; "!"; ":="; "incr"; "decr"; "not";
    "ignore"; "fst"; "snd"; "succ"; "pred"; "abs"; "abs_float"; "max"; "min";
    "compare"; "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">="; "&&"; "||";
    "+"; "-"; "*"; "+."; "-."; "*."; "/."; "~-"; "~-."; "~+"; "~+.";
    "float_of_int"; "int_of_float"; "float"; "truncate"; "ceil"; "floor";
    "sqrt"; "exp"; "log"; "log10"; "sin"; "cos"; "tan"; "atan"; "atan2";
    "land"; "lor"; "lxor"; "lnot"; "lsl"; "lsr"; "asr"; "string_of_int";
    "string_of_float"; "string_of_bool"; "int_of_string_opt";
    "float_of_string_opt"; "bool_of_string_opt"; "int_of_char";
    "Printf.sprintf"; "Format.sprintf"; "Format.asprintf"; "Float.equal";
    "Float.compare"; "Float.of_int"; "Float.to_int"; "Float.is_nan";
    "Float.is_finite"; "Float.abs"; "Float.min"; "Float.max";
    "Float.of_string_opt"; "Int.equal"; "Int.compare"; "Int.min"; "Int.max";
    "Int.abs"; "Int.to_float"; "Bool.equal"; "Char.equal"; "Char.code";
    "Option.value"; "Option.is_some"; "Option.is_none"; "Option.some";
    "Option.to_list"; "Option.equal"; "Result.is_ok"; "Result.is_error";
    "Result.ok"; "Result.error"; "Result.value"; "Sys.getenv_opt";
    "Sys.time"; "Sys.file_exists"; "Unix.gettimeofday";
    "Domain.recommended_domain_count"; "Domain.self"; "Domain.cpu_relax";
    "Fun.id"; "Fun.negate"; "Fun.const"; "Filename.concat";
    "Filename.basename"; "Filename.dirname"; "Printexc.to_string" ]

(* Calls that never return: a branch ending here drops out of the join,
   so "unlock; invalid_arg" early exits do not poison the fall-through
   path's held set. *)
let diverging_names =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit";
    "Printexc.raise_with_backtrace" ]

(* May block the calling domain (RAC005 while any lock is held).
   Condition.wait is deliberately absent: waiting releases the mutex —
   it *is* the sanctioned blocking-under-lock pattern. *)
let blocking_names =
  [ "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.select";
    "Unix.connect"; "Unix.accept"; "Unix.recv"; "Unix.send"; "Unix.sleep";
    "Unix.sleepf"; "Unix.waitpid"; "Unix.system"; "Unix.openfile";
    "In_channel.with_open_bin"; "In_channel.with_open_text";
    "In_channel.open_bin"; "In_channel.input_all"; "In_channel.input_line";
    "Out_channel.with_open_bin"; "Out_channel.with_open_text";
    "Out_channel.open_bin"; "Out_channel.output_string"; "Out_channel.flush";
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "input_line";
    "really_input"; "output_string"; "Sys.rename"; "Sys.remove";
    "Sys.readdir"; "Sys.command"; "Sys.mkdir"; "Digest.file"; "Domain.join" ]

(* Container operations that mutate their container argument, for the
   read/write split of RAC001 accesses. *)
let mutator_names =
  [ ":="; "incr"; "decr"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove";
    "Hashtbl.reset"; "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
    "Queue.add"; "Queue.push"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Queue.transfer"; "Buffer.add_string"; "Buffer.add_char";
    "Buffer.add_buffer"; "Buffer.clear"; "Buffer.reset"; "Stack.push";
    "Stack.pop"; "Stack.clear" ]

let crossing_targets = Purity.target_functions @ spawn_names

let blocking_ok (attrs : Parsetree.attributes) =
  List.exists
    (fun a -> a.Parsetree.attr_name.Location.txt = "blocking_ok")
    attrs

(* --- per-definition static info ------------------------------------------ *)

type dinfo = {
  d : Callgraph.def;
  flow : Flow.ctx;
  params : (string, int) Hashtbl.t;   (* unique_name -> param index *)
  bound : (string, unit) Hashtbl.t;
  aliases : (string, expression) Hashtbl.t;
  funs : (string, expression) Hashtbl.t;  (* let-bound Texp_function *)
  atomic_gets : (string, Flow.root list) Hashtbl.t;
      (* let x = Atomic.get a  ->  roots of a, for RAC004 *)
}

type fsum = {
  s_raise : bool;
  s_blocks : bool;
  s_acq : (string * lock_kind) list;            (* sorted classes *)
  s_pacq : (int * string list * string option) list;
      (* param-rooted acquisitions: index, projection trail, class *)
}

let empty_sum = { s_raise = false; s_blocks = false; s_acq = []; s_pacq = [] }

type t = {
  env : Summary.env;
  sums : (string, fsum) Hashtbl.t;
  cross_set : (string, unit) Hashtbl.t;
  dinfos : (string, dinfo) Hashtbl.t;
}

let crossing t qname = Hashtbl.mem t.cross_set qname

let dname p = Paths.demangle (Paths.path_name p)

let rec unwrap_fun (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when c.c_guard = None -> unwrap_fun c.c_rhs
  | _ -> e

let is_fun (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let pos_arg args i =
  let rec go n = function
    | [] -> None
    | (Asttypes.Nolabel, Some a) :: rest ->
      if n = i then Some a else go (n + 1) rest
    | _ :: rest -> go n rest
  in
  go 0 args

let lab_arg args l =
  List.find_map
    (function
      | Asttypes.Labelled l', Some a when String.equal l l' -> Some a
      | _ -> None)
    args

let mk_dinfo env (d : Callgraph.def) =
  let di =
    { d;
      flow = Flow.ctx_of_def env d;
      params = Hashtbl.create 8;
      bound = Hashtbl.create 64;
      aliases = Hashtbl.create 16;
      funs = Hashtbl.create 4;
      atomic_gets = Hashtbl.create 4 }
  in
  List.iteri
    (fun i (p : Callgraph.param) ->
      List.iter
        (fun id -> Hashtbl.replace di.params (Ident.unique_name id) i)
        p.Callgraph.p_idents)
    d.Callgraph.params;
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
    fun it p ->
    List.iter
      (fun id -> Hashtbl.replace di.bound (Ident.unique_name id) ())
      (pat_bound_idents p);
    Tast_iterator.default_iterator.pat it p
  in
  let value_binding it vb =
    (match vb.vb_pat.pat_desc with
     | Tpat_var (id, _) ->
       let key = Ident.unique_name id in
       Hashtbl.replace di.aliases key vb.vb_expr;
       (match vb.vb_expr.exp_desc with
        | Texp_function _ -> Hashtbl.replace di.funs key vb.vb_expr
        | Texp_apply (fn, args) ->
          (match Paths.applied_path fn with
           | Some p when matches atomic_get_names (dname p) ->
             (match pos_arg args 0 with
              | Some a -> Hashtbl.replace di.atomic_gets key (Flow.roots di.flow a)
              | None -> ())
           | _ -> ())
        | _ -> ())
     | _ -> ());
    Tast_iterator.default_iterator.value_binding it vb
  in
  let it = { Tast_iterator.default_iterator with pat; value_binding } in
  List.iter (fun vb -> it.value_binding it vb) d.Callgraph.prelude;
  it.expr it d.Callgraph.body;
  di

(* --- lock identity -------------------------------------------------------- *)

let strip_stamp unique =
  match String.rindex_opt unique '_' with
  | Some i when i > 0 -> String.sub unique 0 i
  | _ -> unique

let head_name (te : Types.type_expr) =
  match Paths.demangled_head te with Some (n, _) -> Some n | None -> None

(* Static class of a mutex-valued expression; [depth] caps alias chains. *)
let rec cls_of ?(depth = 0) (di : dinfo) (e : expression) :
    string option * lock_kind =
  if depth > 8 then (None, Klocal)
  else
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      let key = Ident.unique_name id in
      if Hashtbl.mem di.params key then (None, Kparam)
      else (
        match Hashtbl.find_opt di.aliases key with
        | Some rhs when not (is_fun rhs) -> (
          match cls_of ~depth:(depth + 1) di rhs with
          | (Some _, _) as r -> r
          | None, _ ->
            if Hashtbl.mem di.bound key then (Some ("local " ^ key), Klocal)
            else (None, Klocal))
        | Some _ | None ->
          if Hashtbl.mem di.bound key then (Some ("local " ^ key), Klocal)
          else
            (* module-level value of the unit under analysis *)
            (Some (di.d.Callgraph.unit_module ^ "." ^ strip_stamp key), Kmod))
    | Texp_ident (p, _, _) -> (Some (dname p), Kmod)
    | Texp_field (inner, _, lbl) ->
      let head = Option.value ~default:"?" (head_name inner.exp_type) in
      (Some (head ^ "." ^ lbl.Types.lbl_name), Kfield)
    | Texp_apply (fn, args) -> (
      match Paths.applied_path fn with
      | Some p when matches array_get_names (dname p) -> (
        match pos_arg args 0 with
        | Some arr -> cls_of ~depth:(depth + 1) di arr
        | None -> (None, Klocal))
      | _ -> (None, Klocal))
    | _ -> (None, Klocal)

let rec pname (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Ident.name id
  | Texp_ident (p, _, _) -> dname p
  | Texp_field (inner, _, lbl) -> pname inner ^ "." ^ lbl.Types.lbl_name
  | Texp_apply (_, args) -> (
    match pos_arg args 0 with Some a -> pname a ^ ".(_)" | None -> "<lock>")
  | _ -> "<lock>"

let lock_of_expr (di : dinfo) (e : expression) ~site : lock option =
  let roots = Flow.roots di.flow e in
  let cls, kind = cls_of di e in
  match (cls, roots) with
  | None, [] -> None (* unknown identity: untracked, never convicted *)
  | _ ->
    Some { l_cls = cls; l_kind = kind; l_roots = roots; l_name = pname e;
           l_site = site }

let bases_overlap (a : Flow.root) (b : Flow.root) =
  Flow.overlapping_roots
    { a with Flow.rev_fields = [] }
    { b with Flow.rev_fields = [] }

let same_lock a b =
  (match (a.l_kind, b.l_kind) with
   | Kmod, Kmod -> a.l_cls <> None && a.l_cls = b.l_cls
   | _ -> false)
  || List.exists
       (fun ra -> List.exists (Flow.overlapping_roots ra) b.l_roots)
       a.l_roots

let unprotected held =
  List.filter_map (fun h -> if h.h_protected then None else Some h.h_lock) held

let guards_for held (acc_roots : Flow.root list) =
  List.filter_map
    (fun h ->
      let l = h.h_lock in
      match l.l_kind with
      | Kmod -> Option.map (fun c -> Module_lock c) l.l_cls
      | Kfield | Klocal | Kparam -> (
        match l.l_cls with
        | Some c
          when List.exists
                 (fun lr -> List.exists (bases_overlap lr) acc_roots)
                 l.l_roots ->
          Some (Same_instance c)
        | _ -> None))
    held

(* --- guarded-record field classification (RAC001a) ------------------------ *)

let type_is name (te : Types.type_expr) =
  match head_name te with Some n -> String.equal n name | None -> false

let mutexish (te : Types.type_expr) =
  type_is "Mutex.t" te || type_is "Condition.t" te
  ||
  match Paths.demangled_head te with
  | Some ("array", [ el ]) -> type_is "Mutex.t" el
  | _ -> false

(* The record declares a mutex alongside other state: accesses to its
   mutable fields are expected to be consistently guarded. *)
let guarded_record (lbl : Types.label_description) =
  Array.exists (fun l -> mutexish l.Types.lbl_arg) lbl.Types.lbl_all

let interesting_field (lbl : Types.label_description) =
  let te = lbl.Types.lbl_arg in
  if mutexish te || type_is "Atomic.t" te then None
  else if Paths.is_mutable_container te then Some Use
  else if lbl.Types.lbl_mut = Asttypes.Mutable then Some Read
  else None

let field_cls (record : expression) (lbl : Types.label_description) =
  let head = Option.value ~default:"?" (head_name record.exp_type) in
  head ^ "." ^ lbl.Types.lbl_name

let receiver_fresh (di : dinfo) (roots : Flow.root list) =
  List.exists
    (fun (r : Flow.root) ->
      match r.Flow.base with
      | Flow.Local u -> (
        match Hashtbl.find_opt di.aliases u with
        | Some { exp_desc = Texp_record _; _ } -> true
        | _ -> false)
      | Flow.Param _ | Flow.Outer _ -> false)
    roots

(* Class of a module-level mutable container root (RAC001b). *)
let outer_container_cls (di : dinfo) (r : Flow.root) =
  match (r.Flow.base, r.Flow.rev_fields) with
  | Flow.Outer name, [] ->
    if String.contains name '.' then Some (Paths.demangle name)
    else Some (di.d.Callgraph.unit_module ^ "." ^ strip_stamp name)
  | _ -> None

(* --- call classification --------------------------------------------------- *)

type call_kind =
  | Clock
  | Cunlock
  | Cprotect
  | Cfun_protect
  | Catomic_get
  | Catomic_set
  | Cspawn
  | Ccrossing
  | Chof
  | Csafe
  | Cdiverging
  | Cblocking
  | Clocal_fun of string           (* unique name in di.funs *)
  | Cresolved of Callgraph.def
  | Cunknown

let classify t (di : dinfo) (p : Path.t) : call_kind * string =
  let name = dname p in
  let k =
    if matches lock_names name then Clock
    else if matches unlock_names name then Cunlock
    else if matches protect_names name then Cprotect
    else if matches fun_protect_names name then Cfun_protect
    else if matches atomic_get_names name then Catomic_get
    else if matches atomic_set_names name then Catomic_set
    else if matches spawn_names name then Cspawn
    else if matches crossing_targets name then Ccrossing
    else if matches hof_names name then Chof
    else if matches blocking_names name then Cblocking
    else if matches diverging_names name then Cdiverging
    else if matches safe_names name then Csafe
    else
      match p with
      | Path.Pident id when Hashtbl.mem di.funs (Ident.unique_name id) ->
        Clocal_fun (Ident.unique_name id)
      | _ -> (
        match
          Callgraph.find ~current_unit:di.d.Callgraph.unit_module
            (Summary.callgraph t.env) p
        with
        | Some d -> Cresolved d
        | None -> Cunknown)
  in
  (k, name)

(* --- effect summaries (fixpoint) ------------------------------------------ *)

type eff_acc = {
  mutable e_raise : bool;
  mutable e_blocks : bool;
  mutable e_acq : (string * lock_kind) list;
  mutable e_pacq : (int * string list * string option) list;
  mutable e_mask : int;  (* nesting depth of catch-all try bodies *)
}

let catch_all_case c =
  match c.c_lhs.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | _ -> false

let add_acq acc cls kind =
  match cls with
  | Some c when kind = Kmod || kind = Kfield ->
    if not (List.mem_assoc c acc.e_acq) then acc.e_acq <- (c, kind) :: acc.e_acq
  | _ -> ()

let record_acquire acc (l : lock) =
  add_acq acc l.l_cls l.l_kind;
  List.iter
    (fun (r : Flow.root) ->
      match r.Flow.base with
      | Flow.Param i ->
        let entry = (i, r.Flow.rev_fields, l.l_cls) in
        if not (List.mem entry acc.e_pacq) then acc.e_pacq <- entry :: acc.e_pacq
      | Flow.Local _ | Flow.Outer _ -> ())
    l.l_roots

let sum_of t qname = Option.value ~default:empty_sum (Hashtbl.find_opt t.sums qname)

(* One pass of the effects walk over a definition body (deferred closures
   skipped; transparent-HOF literal closures and local functions walked). *)
let compute_effects t (di : dinfo) : fsum =
  let acc =
    { e_raise = false; e_blocks = false; e_acq = []; e_pacq = []; e_mask = 0 }
  in
  let visited = Hashtbl.create 4 in
  let raise_hit () = if acc.e_mask = 0 then acc.e_raise <- true in
  let rec eff (e : expression) =
    match e.exp_desc with
    | Texp_function _ -> () (* deferred: its body runs on someone else's clock *)
    | Texp_assert _ -> () (* assertions are exempt from may-raise (noassert) *)
    | Texp_try (b, cases) ->
      if List.exists catch_all_case cases then begin
        acc.e_mask <- acc.e_mask + 1;
        eff b;
        acc.e_mask <- acc.e_mask - 1
      end
      else eff b;
      List.iter (fun c -> Option.iter eff c.c_guard; eff c.c_rhs) cases
    | Texp_apply (fn, args) ->
      (match fn.exp_desc with Texp_ident _ -> () | _ -> eff fn);
      let eff_args ?(closures = `Defer) () =
        List.iter
          (function
            | _, Some (a : expression) when is_fun a -> (
              match closures with
              | `Now ->
                List.iter
                  (fun c -> Option.iter eff c.c_guard; eff c.c_rhs)
                  (match a.exp_desc with
                   | Texp_function { cases; _ } -> cases
                   | _ -> [])
              | `Defer -> ())
            | _, Some a -> eff a
            | _, None -> ())
          args
      in
      (match Paths.applied_path fn with
       | None ->
         eff_args ();
         raise_hit ()
       | Some p -> (
         let kind, _name = classify t di p in
         match kind with
         | Clock | Cprotect ->
           (match pos_arg args 0 with
            | Some m ->
              Option.iter (record_acquire acc)
                (lock_of_expr di m ~site:e.exp_loc)
            | None -> ());
           if kind = Cprotect then eff_args ~closures:`Now ()
         | Cunlock | Catomic_get | Catomic_set | Csafe -> eff_args ()
         | Cfun_protect | Chof -> eff_args ~closures:`Now ()
         | Cdiverging ->
           eff_args ();
           raise_hit ()
         | Cblocking ->
           eff_args ();
           acc.e_blocks <- true;
           raise_hit ()
         | Cspawn | Ccrossing ->
           (* closure runs on another domain; the call itself waits and
              propagates the closure's exceptions *)
           eff_args ();
           acc.e_blocks <- true;
           raise_hit ()
         | Clocal_fun key ->
           eff_args ();
           if not (Hashtbl.mem visited key) then begin
             Hashtbl.add visited key ();
             (match Hashtbl.find_opt di.funs key with
              | Some { exp_desc = Texp_function _; _ } as f ->
                Option.iter
                  (fun fe ->
                    match fe.exp_desc with
                    | Texp_function { cases; _ } ->
                      List.iter
                        (fun c -> Option.iter eff c.c_guard; eff c.c_rhs)
                        cases
                    | _ -> ())
                  f
              | _ -> ())
           end
         | Cresolved d ->
           eff_args ();
           let s = sum_of t d.Callgraph.qname in
           if s.s_raise then raise_hit ();
           if s.s_blocks then acc.e_blocks <- true;
           List.iter (fun (c, k) -> add_acq acc (Some c) k) s.s_acq
         | Cunknown ->
           eff_args ();
           raise_hit ()))
    | Texp_let (_, vbs, body) ->
      List.iter (fun vb -> eff vb.vb_expr) vbs;
      eff body
    | Texp_sequence (a, b) -> eff a; eff b
    | Texp_ifthenelse (c, a, b) -> eff c; eff a; Option.iter eff b
    | Texp_match (scrut, cases, _) ->
      eff scrut;
      List.iter (fun c -> Option.iter eff c.c_guard; eff c.c_rhs) cases
    | Texp_construct (_, _, es) | Texp_tuple es | Texp_array es ->
      List.iter eff es
    | Texp_variant (_, eo) -> Option.iter eff eo
    | Texp_record { fields; extended_expression } ->
      Array.iter
        (function _, Overridden (_, fe) -> eff fe | _, Kept _ -> ())
        fields;
      Option.iter eff extended_expression
    | Texp_field (r, _, _) -> eff r
    | Texp_setfield (r, _, _, v) -> eff r; eff v
    | Texp_while (c, b) -> eff c; eff b
    | Texp_for (_, _, lo, hi, _, b) -> eff lo; eff hi; eff b
    | Texp_lazy _ -> ()
    | Texp_letmodule (_, _, _, _, b) -> eff b
    | Texp_letexception (_, b) -> eff b
    | Texp_open (_, b) -> eff b
    | _ -> ()
  in
  List.iter (fun vb -> eff vb.vb_expr) di.d.Callgraph.prelude;
  eff di.d.Callgraph.body;
  let blocks = acc.e_blocks && not (blocking_ok di.d.Callgraph.def_attrs) in
  { s_raise = acc.e_raise;
    s_blocks = blocks;
    s_acq = List.sort_uniq compare acc.e_acq;
    s_pacq = List.sort_uniq compare acc.e_pacq }

(* --- domain-crossing reachability ----------------------------------------- *)

let collect_callees t (di : dinfo) (e : expression) =
  let out = ref [] in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, _) -> (
       match Paths.applied_path fn with
       | Some p -> (
         match
           Callgraph.find ~current_unit:di.d.Callgraph.unit_module
             (Summary.callgraph t.env) p
         with
         | Some d -> out := d.Callgraph.qname :: !out
         | None -> ())
       | None -> ())
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !out

let crossing_prepass t =
  let callees : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let seeds = ref [] in
  Hashtbl.iter
    (fun qname (di : dinfo) ->
      let all = ref [] in
      let expr it (e : expression) =
        (match e.exp_desc with
         | Texp_apply (fn, args) -> (
           match Paths.applied_path fn with
           | Some p when matches crossing_targets (dname p) ->
             List.iter
               (function
                 | _, Some (a : expression) ->
                   if is_fun a then seeds := collect_callees t di a @ !seeds
                   else (
                     match Paths.applied_path a with
                     | Some ap -> (
                       match
                         Callgraph.find ~current_unit:di.d.Callgraph.unit_module
                           (Summary.callgraph t.env) ap
                       with
                       | Some d -> seeds := d.Callgraph.qname :: !seeds
                       | None -> ())
                     | None -> (
                       match a.exp_desc with
                       | Texp_ident (ap, _, _) -> (
                         match
                           Callgraph.find
                             ~current_unit:di.d.Callgraph.unit_module
                             (Summary.callgraph t.env) ap
                         with
                         | Some d -> seeds := d.Callgraph.qname :: !seeds
                         | None -> ())
                       | _ -> ()))
                 | _, None -> ())
               args
           | Some _ | None -> ())
         | _ -> ());
        Tast_iterator.default_iterator.expr it e
      in
      let it = { Tast_iterator.default_iterator with expr } in
      List.iter (fun vb -> it.expr it vb.vb_expr) di.d.Callgraph.prelude;
      it.expr it di.d.Callgraph.body;
      all := collect_callees t di di.d.Callgraph.body;
      List.iter
        (fun vb -> all := collect_callees t di vb.vb_expr @ !all)
        di.d.Callgraph.prelude;
      Hashtbl.replace callees qname !all)
    t.dinfos;
  let rec grow = function
    | [] -> ()
    | q :: rest ->
      if Hashtbl.mem t.cross_set q then grow rest
      else begin
        Hashtbl.add t.cross_set q ();
        grow (Option.value ~default:[] (Hashtbl.find_opt callees q) @ rest)
      end
  in
  grow !seeds

(* --- the held-lockset walk ------------------------------------------------ *)

type wstate = {
  t : t;
  di : dinfo;
  emit : event -> unit;
  w_blocking_ok : bool;
  mutable w_mask : int;       (* catch-all try nesting: masks raise evidence *)
  mutable w_inline : string list;  (* local functions being inlined *)
}

let emit_raise st op site held =
  if st.w_mask = 0 then
    match unprotected held with
    | [] -> ()
    | locks -> st.emit (Raise_evidence { op; site; locks })

let emit_block st op site held =
  if not st.w_blocking_ok then
    match List.map (fun h -> h.h_lock) held with
    | [] -> ()
    | locks -> st.emit (Block_evidence { op; site; locks })

let acquire st held (l : lock) ~protected ~site =
  List.iter
    (fun h -> if same_lock h.h_lock l then st.emit (Reacquire { lock = l; site }))
    held;
  (match l.l_cls with
   | Some c when l.l_kind = Kmod || l.l_kind = Kfield ->
     if l.l_kind = Kmod then st.emit (Mod_lock_seen c);
     List.iter
       (fun h ->
         match (h.h_lock.l_kind, h.h_lock.l_cls) with
         | (Kmod | Kfield), Some hc when not (String.equal hc c) ->
           st.emit (Order_edge { held_cls = hc; acq_cls = c; site })
         | _ -> ())
       held
   | _ -> ());
  held @ [ { h_lock = l; h_protected = protected } ]

let release held (l : lock) =
  let rec go = function
    | [] -> []
    | h :: rest -> if same_lock h.h_lock l then rest else h :: go rest
  in
  go held

(* Branch join: a lock stays held only if every non-diverging branch holds
   it; a diverging branch (raise/exit tail) drops out entirely. *)
let join_branches (branches : (hlock list * bool) list) entry =
  let live = List.filter_map (fun (h, d) -> if d then None else Some h) branches in
  match live with
  | [] -> (entry, true)
  | first :: rest ->
    let kept =
      List.filter
        (fun h ->
          List.for_all
            (fun other -> List.exists (fun h' -> same_lock h.h_lock h'.h_lock) other)
            rest)
        first
    in
    (kept, false)

let note_access st ~cross held ~cls ~kind ~roots ~site ~descr =
  st.emit
    (Access
       { cls;
         kind;
         guards = guards_for held roots;
         crossing = cross;
         fresh = receiver_fresh st.di roots;
         site;
         descr })

(* A module-level mutable container used as a call argument (RAC001b). *)
let note_container_arg st ~cross held op_name (a : expression) =
  if Paths.is_mutable_container a.exp_type then
    let roots = Flow.roots st.di.flow a in
    List.iter
      (fun r ->
        match outer_container_cls st.di r with
        | Some cls ->
          let kind = if matches mutator_names op_name then Write else Read in
          note_access st ~cross held ~cls ~kind ~roots:[ r ] ~site:a.exp_loc
            ~descr:(pname a)
        | None -> ())
      roots

(* RAC004: does [v] (the Atomic.set payload) read the same atomic? *)
let rec reads_atomic st (aroots : Flow.root list) (v : expression) =
  let overlap roots =
    List.exists (fun r -> List.exists (Flow.overlapping_roots r) aroots) roots
  in
  match v.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
    match Hashtbl.find_opt st.di.atomic_gets (Ident.unique_name id) with
    | Some roots -> overlap roots
    | None -> false)
  | Texp_apply (fn, args) ->
    (match Paths.applied_path fn with
     | Some p when matches atomic_get_names (dname p) -> (
       match pos_arg args 0 with
       | Some a -> overlap (Flow.roots st.di.flow a)
       | None -> false)
     | _ -> false)
    || List.exists
         (function _, Some a -> reads_atomic st aroots a | _, None -> false)
         args
  | Texp_construct (_, _, es) | Texp_tuple es -> List.exists (reads_atomic st aroots) es
  | Texp_ifthenelse (c, a, b) ->
    reads_atomic st aroots c || reads_atomic st aroots a
    || (match b with Some b -> reads_atomic st aroots b | None -> false)
  | Texp_let (_, vbs, body) ->
    List.exists (fun vb -> reads_atomic st aroots vb.vb_expr) vbs
    || reads_atomic st aroots body
  | Texp_sequence (a, b) -> reads_atomic st aroots a || reads_atomic st aroots b
  | Texp_field (r, _, _) -> reads_atomic st aroots r
  | _ -> false

let unlocks_in_finally (st : wstate) (fin : expression) : lock list =
  let out = ref [] in
  let body = unwrap_fun fin in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) -> (
       match Paths.applied_path fn with
       | Some p when matches unlock_names (dname p) -> (
         match pos_arg args 0 with
         | Some m ->
           Option.iter (fun l -> out := l :: !out)
             (lock_of_expr st.di m ~site:e.exp_loc)
         | None -> ())
       | _ -> ())
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !out

let rec walk st ~cross (held : hlock list) (e : expression) : hlock list * bool =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ -> (held, false)
  | Texp_let (_, vbs, body) ->
    let held =
      List.fold_left
        (fun h vb ->
          (* a let-bound local function is walked at its call sites with
             the lockset held *there* (inlining); walking it deferred too
             would double-report its accesses as lock-free *)
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _)
            when Hashtbl.mem st.di.funs (Ident.unique_name id) -> h
          | _ -> fst (walk st ~cross h vb.vb_expr))
        held vbs
    in
    walk st ~cross held body
  | Texp_sequence (a, b) ->
    let h1, d1 = walk st ~cross held a in
    if d1 then (h1, true) else walk st ~cross h1 b
  | Texp_ifthenelse (c, a, b) ->
    let h, dc = walk st ~cross held c in
    if dc then (h, true)
    else
      let ba = walk st ~cross h a in
      let bb =
        match b with Some b -> walk st ~cross h b | None -> (h, false)
      in
      join_branches [ ba; bb ] h
  | Texp_match (scrut, cases, _) ->
    let h, ds = walk st ~cross held scrut in
    if ds then (h, true)
    else
      let branches =
        List.map
          (fun c ->
            let h', dg =
              match c.c_guard with
              | Some g -> walk st ~cross h g
              | None -> (h, false)
            in
            if dg then (h', true) else walk st ~cross h' c.c_rhs)
          cases
      in
      join_branches branches h
  | Texp_try (b, cases) ->
    let masked = List.exists catch_all_case cases in
    if masked then st.w_mask <- st.w_mask + 1;
    let bb = walk st ~cross held b in
    if masked then st.w_mask <- st.w_mask - 1;
    let branches =
      bb :: List.map (fun c -> walk st ~cross held c.c_rhs) cases
    in
    join_branches branches held
  | Texp_function { cases; _ } ->
    (* deferred closure: runs later, with no inherited locks *)
    List.iter (fun c -> ignore (walk_case st ~cross [] c)) cases;
    (held, false)
  | Texp_apply (fn, args) -> walk_apply st ~cross held e fn args
  | Texp_field (r, _, lbl) ->
    let h, d = walk st ~cross held r in
    (if guarded_record lbl then
       match interesting_field lbl with
       | Some k ->
         (* containers report Use: touching a Hashtbl/Queue through the
            field is a consistency question regardless of direction *)
         note_access st ~cross h ~cls:(field_cls r lbl) ~kind:k
           ~roots:(Flow.roots st.di.flow r) ~site:e.exp_loc
           ~descr:(pname r ^ "." ^ lbl.Types.lbl_name)
       | None -> ());
    (h, d)
  | Texp_setfield (r, _, lbl, v) ->
    let h, _ = walk st ~cross held r in
    let h, d = walk st ~cross h v in
    (if guarded_record lbl then
       match interesting_field lbl with
       | Some _ ->
         note_access st ~cross h ~cls:(field_cls r lbl) ~kind:Write
           ~roots:(Flow.roots st.di.flow r) ~site:e.exp_loc
           ~descr:(pname r ^ "." ^ lbl.Types.lbl_name)
       | None -> ());
    (h, d)
  | Texp_construct (_, _, es) | Texp_tuple es | Texp_array es ->
    (walk_list st ~cross held es, false)
  | Texp_variant (_, eo) ->
    (Option.fold ~none:held ~some:(fun a -> fst (walk st ~cross held a)) eo, false)
  | Texp_record { fields; extended_expression } ->
    let h = ref held in
    Option.iter (fun e0 -> h := fst (walk st ~cross !h e0)) extended_expression;
    Array.iter
      (function
        | _, Overridden (_, fe) -> h := fst (walk st ~cross !h fe)
        | _, Kept _ -> ())
      fields;
    (!h, false)
  | Texp_while (c, b) ->
    let h, _ = walk st ~cross held c in
    ignore (walk st ~cross h b);
    (h, false)
  | Texp_for (_, _, lo, hi, _, b) ->
    let h, _ = walk st ~cross held lo in
    let h, _ = walk st ~cross h hi in
    ignore (walk st ~cross h b);
    (h, false)
  | Texp_assert (a, _) -> (
    (* assertions are exempt from raise evidence; [assert false] diverges *)
    match a.exp_desc with
    | Texp_construct (_, { Types.cstr_name = "false"; _ }, []) -> (held, true)
    | _ ->
      let h, _ = walk st ~cross held a in
      (h, false))
  | Texp_lazy b ->
    ignore (walk st ~cross [] b);
    (held, false)
  | Texp_letmodule (_, _, _, _, b) -> walk st ~cross held b
  | Texp_letexception (_, b) -> walk st ~cross held b
  | Texp_open (_, b) -> walk st ~cross held b
  | _ -> (held, false)

and walk_case st ~cross held c =
  let h, dg =
    match c.c_guard with Some g -> walk st ~cross held g | None -> (held, false)
  in
  if dg then (h, true) else walk st ~cross h c.c_rhs

and walk_list st ~cross held es =
  List.fold_left (fun h a -> fst (walk st ~cross h a)) held es

(* Walk argument expressions.  [closures] says what to do with literal
   closure arguments: run `Now (within the call's dynamic extent, current
   held set), `Defer (empty held), or `Cross (empty held, on another
   domain). *)
and walk_args st ~cross held ?(closures = `Defer) ?(op = "") args =
  List.fold_left
    (fun h (_, a) ->
      match a with
      | None -> h
      | Some (a : expression) ->
        if is_fun a then begin
          (match closures with
           | `Now -> (
             match a.exp_desc with
             | Texp_function { cases; _ } ->
               List.iter (fun c -> ignore (walk_case st ~cross h c)) cases
             | _ -> ())
           | `Defer -> ignore (walk st ~cross [] a)
           | `Cross -> ignore (walk st ~cross:true [] a));
          h
        end
        else begin
          if op <> "" then note_container_arg st ~cross h op a;
          fst (walk st ~cross h a)
        end)
    held args

and walk_apply st ~cross held (e : expression) fn args =
  let site = e.exp_loc in
  (match fn.exp_desc with
   | Texp_ident _ -> ()
   | _ -> ignore (walk st ~cross held fn));
  match Paths.applied_path fn with
  | None ->
    let h = walk_args st ~cross held args in
    emit_raise st "an applied function value" site h;
    (h, false)
  | Some p -> (
    let kind, name = classify st.t st.di p in
    match kind with
    | Clock -> (
      match pos_arg args 0 with
      | Some m -> (
        match lock_of_expr st.di m ~site with
        | Some l -> (acquire st held l ~protected:false ~site, false)
        | None -> (held, false))
      | None -> (held, false))
    | Cunlock -> (
      match pos_arg args 0 with
      | Some m -> (
        match lock_of_expr st.di m ~site with
        | Some l -> (release held l, false)
        | None -> (held, false))
      | None -> (held, false))
    | Cprotect -> (
      (* Mutex.protect m f: m is exception-protected for f's extent *)
      match (pos_arg args 0, pos_arg args 1) with
      | Some m, Some f -> (
        match lock_of_expr st.di m ~site with
        | Some l ->
          let h = acquire st held l ~protected:true ~site in
          (if is_fun f then
             match f.exp_desc with
             | Texp_function { cases; _ } ->
               List.iter (fun c -> ignore (walk_case st ~cross h c)) cases
             | _ -> ()
           else
             (* calling an opaque thunk under the new lock: safe for [m]
                (protect reraises after unlock) but still evidence for any
                outer unprotected lock *)
             emit_raise st (pname f) site h);
          (held, false)
        | None ->
          ignore (walk_args st ~cross held ~closures:`Now args);
          (held, false))
      | _ -> (walk_args st ~cross held ~closures:`Now args, false))
    | Cfun_protect ->
      let fin = lab_arg args "finally" in
      let unlocked =
        match fin with Some f -> unlocks_in_finally st f | None -> []
      in
      let marked =
        List.map
          (fun h ->
            if List.exists (fun l -> same_lock h.h_lock l) unlocked then
              { h with h_protected = true }
            else h)
          held
      in
      (match fin with Some f -> ignore (walk st ~cross held (unwrap_fun f)) | None -> ());
      (match pos_arg args 0 with
       | Some thunk when is_fun thunk -> (
         match thunk.exp_desc with
         | Texp_function { cases; _ } ->
           List.iter (fun c -> ignore (walk_case st ~cross marked c)) cases
         | _ -> ())
       | Some thunk -> emit_raise st (pname thunk) site marked
       | None -> ());
      (* the finally ran on every path: those locks are gone *)
      (List.fold_left release held unlocked, false)
    | Catomic_get -> (walk_args st ~cross held args, false)
    | Catomic_set ->
      (match (pos_arg args 0, pos_arg args 1) with
       | Some a, Some v ->
         let aroots = Flow.roots st.di.flow a in
         (* a payload that IS the saved get (no computation) is the
            save/restore idiom, not a read-modify-write *)
         let pure_restore =
           match v.exp_desc with
           | Texp_ident (Path.Pident id, _, _) ->
             Hashtbl.mem st.di.atomic_gets (Ident.unique_name id)
           | Texp_apply (gfn, gargs) -> (
             match Paths.applied_path gfn with
             | Some gp when matches atomic_get_names (dname gp) ->
               pos_arg gargs 0 <> None
             | _ -> false)
           | _ -> false
         in
         if aroots <> [] && (not pure_restore) && reads_atomic st aroots v then
           st.emit (Torn_rmw { name = pname a; site })
       | _ -> ());
      (walk_args st ~cross held args, false)
    | Cspawn | Ccrossing ->
      let h = walk_args st ~cross held ~closures:`Cross args in
      emit_block st name site h;
      emit_raise st name site h;
      (h, false)
    | Chof -> (walk_hof st ~cross held name args, false)
    | Csafe -> (walk_args st ~cross held ~op:name args, false)
    | Cdiverging ->
      let h = walk_args st ~cross held args in
      emit_raise st name site h;
      (h, true)
    | Cblocking ->
      let h = walk_args st ~cross held args in
      emit_block st name site h;
      emit_raise st name site h;
      (h, false)
    | Clocal_fun key ->
      let h = walk_args st ~cross held args in
      if List.mem key st.w_inline || List.length st.w_inline > 16 then (h, false)
      else begin
        st.w_inline <- key :: st.w_inline;
        let r =
          match Hashtbl.find_opt st.di.funs key with
          | Some { exp_desc = Texp_function { cases; _ }; _ } ->
            let branches = List.map (walk_case st ~cross h) cases in
            join_branches branches h
          | _ -> (h, false)
        in
        st.w_inline <- List.tl st.w_inline;
        r
      end
    | Cresolved d ->
      let h = walk_args st ~cross held ~op:name args in
      let s = sum_of st.t d.Callgraph.qname in
      if s.s_raise then emit_raise st (d.Callgraph.qname ^ " (may raise)") site h;
      if s.s_blocks then emit_block st (d.Callgraph.qname ^ " (may block)") site h;
      (* instantiate the callee's acquisitions against this call *)
      List.iter
        (fun (i, trail, cls) ->
          match pos_arg args i with
          | Some actual ->
            let roots =
              List.map
                (fun (r : Flow.root) ->
                  { r with Flow.rev_fields = trail @ r.Flow.rev_fields })
                (Flow.roots st.di.flow actual)
            in
            List.iter
              (fun hl ->
                if
                  List.exists
                    (fun r ->
                      List.exists (Flow.overlapping_roots r)
                        hl.h_lock.l_roots)
                    roots
                then
                  st.emit
                    (Reacquire
                       { lock =
                           { l_cls = cls; l_kind = Kfield; l_roots = roots;
                             l_name = d.Callgraph.qname; l_site = site };
                         site }))
              h
          | None -> ())
        s.s_pacq;
      List.iter
        (fun (c, k) ->
          (match k with Kmod -> st.emit (Mod_lock_seen c) | _ -> ());
          List.iter
            (fun hl ->
              match (hl.h_lock.l_kind, hl.h_lock.l_cls) with
              | (Kmod | Kfield), Some hc ->
                if k = Kmod && String.equal hc c then
                  st.emit
                    (Reacquire
                       { lock =
                           { l_cls = Some c; l_kind = Kmod; l_roots = [];
                             l_name = d.Callgraph.qname; l_site = site };
                         site })
                else if not (String.equal hc c) then
                  st.emit (Order_edge { held_cls = hc; acq_cls = c; site })
              | _ -> ())
            h)
        s.s_acq;
      (h, false)
    | Cunknown ->
      let h = walk_args st ~cross held ~op:name args in
      emit_raise st name site h;
      (h, false))

(* Transparent HOF: literal closures run now under the current held set;
   a named callback resolves through the callgraph; an opaque callback is
   may-raise evidence. *)
and walk_hof st ~cross held name args =
  List.fold_left
    (fun h (_, a) ->
      match a with
      | None -> h
      | Some (a : expression) ->
        if is_fun a then begin
          (match a.exp_desc with
           | Texp_function { cases; _ } ->
             List.iter (fun c -> ignore (walk_case st ~cross h c)) cases
           | _ -> ());
          h
        end
        else if
          (* a function-typed non-literal argument: the iterator will call
             it now, under the current locks *)
          match Paths.demangled_head a.exp_type with
          | Some ("->", _) -> true
          | _ -> (
            match a.exp_desc with
            | Texp_ident _ -> (
              match (Types.get_desc a.exp_type : Types.type_desc) with
              | Types.Tarrow _ -> true
              | _ -> false)
            | _ -> false)
        then begin
          (match Paths.applied_path a with
           | Some p -> (
             match classify st.t st.di p with
             | Cresolved d, _ ->
               let s = sum_of st.t d.Callgraph.qname in
               if s.s_raise then
                 emit_raise st (d.Callgraph.qname ^ " (may raise)") a.exp_loc h;
               if s.s_blocks then
                 emit_block st (d.Callgraph.qname ^ " (may block)") a.exp_loc h
             | (Csafe | Chof), _ -> ()
             | _ -> emit_raise st (name ^ " callback") a.exp_loc h)
           | None -> emit_raise st (name ^ " callback") a.exp_loc h);
          h
        end
        else begin
          note_container_arg st ~cross h name a;
          fst (walk st ~cross h a)
        end)
    held args

let walk_def t (d : Callgraph.def) ~emit =
  match Hashtbl.find_opt t.dinfos d.Callgraph.qname with
  | None -> ()
  | Some di ->
    let st =
      { t;
        di;
        emit;
        w_blocking_ok = blocking_ok d.Callgraph.def_attrs;
        w_mask = 0;
        w_inline = [] }
    in
    let cross = crossing t d.Callgraph.qname in
    List.iter (fun vb -> ignore (walk st ~cross [] vb.vb_expr)) d.Callgraph.prelude;
    ignore (walk st ~cross [] d.Callgraph.body)

(* --- analyze -------------------------------------------------------------- *)

let max_rounds = 12

let analyze env =
  let cg = Summary.callgraph env in
  let defs = Callgraph.defs cg in
  let t =
    { env;
      sums = Hashtbl.create 256;
      cross_set = Hashtbl.create 64;
      dinfos = Hashtbl.create 256 }
  in
  List.iter
    (fun (d : Callgraph.def) ->
      Hashtbl.replace t.dinfos d.Callgraph.qname (mk_dinfo env d);
      Hashtbl.replace t.sums d.Callgraph.qname empty_sum)
    defs;
  crossing_prepass t;
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < max_rounds do
    changed := false;
    incr round;
    List.iter
      (fun (d : Callgraph.def) ->
        match Hashtbl.find_opt t.dinfos d.Callgraph.qname with
        | None -> ()
        | Some di ->
          let fresh = compute_effects t di in
          if fresh <> sum_of t d.Callgraph.qname then begin
            changed := true;
            Hashtbl.replace t.sums d.Callgraph.qname fresh
          end)
      defs
  done;
  t
