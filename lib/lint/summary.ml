(* Per-function ownership summaries for the ALS pass.

   For every definition in the {!Callgraph} the fixpoint computes, per
   parameter: is it mutated (written through a buffer primitive or passed
   to a callee that mutates that position), stored (escapes into a ref,
   record field, container, or a callee that stores it), or returned
   (aliases the function's result).  Summaries propagate through the call
   graph until stable, so `Poisson.solve` inherits "scratch is mutated"
   from `Stencil5.set_row`'s Bigarray writes three calls down.

   The same module exposes the {!Flow} machinery the checking pass reuses:
   an alias context per definition and [roots] — which values an
   expression can alias, tracked through let-chains, field projections,
   single-argument constructors and callees that return a parameter.

   Everything unresolved is effect-free/rootless: a missed summary can
   silence a finding but never invent one (the UNT "unknown never fires"
   contract). *)

open Typedtree

type effect_ = { mutated : bool; buffer_mut : bool; stored : bool; returned : bool }
(* [buffer_mut]: the mutation evidence bottoms out in a flat-buffer
   primitive (Bigarray/Fvec/Stencil5), not a classic container — the ALS
   pass convicts on buffer-flavored evidence only, so container races stay
   LNT001's business. *)

let no_effect = { mutated = false; buffer_mut = false; stored = false; returned = false }

type fsum = { fdef : Callgraph.def; effects : effect_ array }

type env = { cg : Callgraph.t; sums : (string, fsum) Hashtbl.t }

(* --- the primitive effect table ----------------------------------------- *)

type slot = Pos of int | Lab of string

type call_effects = {
  ce_mutated : slot list;
  ce_buffer_mutated : slot list;  (* subset of [ce_mutated]: buffer-flavored *)
  ce_stored : slot list;
  ce_returns : slot option;       (* the result aliases this argument *)
}

(* Known in-place primitives of the hot path (and the classic containers),
   matched by path suffix so fixture-local modules with the same shape
   take the same route as the real libraries.  Positions count
   unlabelled arguments only; labelled arguments are named. *)
let buffer_ce mutated =
  { ce_mutated = mutated; ce_buffer_mutated = mutated; ce_stored = []; ce_returns = None }

let container_ce ~mutated ~stored =
  { ce_mutated = mutated; ce_buffer_mutated = []; ce_stored = stored; ce_returns = None }

let primitive_effects =
  [ (* dst-mutating buffer writes *)
    ( [ "Fvec.set"; "Fvec.unsafe_set"; "Fvec.fill";
        "Field.set"; "Field.fill"; "Mask.set";
        "Array1.set"; "Array1.unsafe_set"; "Array1.fill";
        "Stencil5.set"; "Stencil5.add"; "Stencil5.set_row"; "Stencil5.clear" ],
      buffer_ce [ Pos 0 ] );
    (* blit: source read, destination written *)
    ( [ "Fvec.blit"; "Field.blit"; "Array1.blit" ], buffer_ce [ Pos 1 ] );
    (* banded solve: LU workspace inside the system plus the labelled dst *)
    ( [ "Stencil5.solve" ], buffer_ce [ Pos 0; Lab "dst" ] );
    ( [ "Stencil5.mat_vec" ], buffer_ce [ Pos 2 ] );
    (* identity-shaped guards: the result aliases the checked buffer *)
    ( [ "Guard.fvec" ],
      { ce_mutated = []; ce_buffer_mutated = []; ce_stored = [];
        ce_returns = Some (Pos 0) } );
    (* classic containers: target mutated, payload stored — never
       buffer-flavored, so container races stay LNT001's business *)
    ( [ ":=" ], container_ce ~mutated:[ Pos 0 ] ~stored:[ Pos 1 ] );
    ( [ "Hashtbl.add"; "Hashtbl.replace" ],
      container_ce ~mutated:[ Pos 0 ] ~stored:[ Pos 2 ] );
    ( [ "Array.set"; "Array.unsafe_set" ],
      container_ce ~mutated:[ Pos 0 ] ~stored:[ Pos 2 ] );
    ( [ "Queue.push"; "Queue.add"; "Stack.push" ],
      container_ce ~mutated:[ Pos 1 ] ~stored:[ Pos 0 ] ) ]

let primitive_call_effects name =
  List.find_map
    (fun (candidates, ce) ->
      if Paths.suffix_matches ~candidates name then Some ce else None)
    primitive_effects

(* Slot of a parameter in its definition's calling convention: unlabelled
   parameters by position among unlabelled parameters, labelled ones by
   name. *)
let slot_of_param (params : Callgraph.param list) index =
  match (List.nth params index).Callgraph.p_label with
  | Asttypes.Nolabel ->
    let pos = ref 0 in
    let rec count i = function
      | [] -> !pos
      | (p : Callgraph.param) :: rest ->
        if i = index then !pos
        else begin
          (if p.Callgraph.p_label = Asttypes.Nolabel then incr pos);
          count (i + 1) rest
        end
    in
    Pos (count 0 params)
  | Asttypes.Labelled l | Asttypes.Optional l -> Lab l

let call_effects_of_sum (s : fsum) : call_effects =
  let params = s.fdef.Callgraph.params in
  let slots pred =
    Array.to_list
      (Array.mapi (fun i e -> if pred e then Some (slot_of_param params i) else None)
         s.effects)
    |> List.filter_map Fun.id
  in
  let returns =
    match
      Array.to_list (Array.mapi (fun i e -> if e.returned then Some i else None) s.effects)
      |> List.filter_map Fun.id
    with
    | [ i ] -> Some (slot_of_param params i)
    | _ -> None  (* none, or ambiguous — claim nothing *)
  in
  { ce_mutated = slots (fun e -> e.mutated);
    ce_buffer_mutated = slots (fun e -> e.buffer_mut);
    ce_stored = slots (fun e -> e.stored);
    ce_returns = returns }

(* Effects of a call through an applied path: the primitive table first
   (exact semantics for Bigarray and friends), then the fixpoint summary
   of a resolved definition. *)
let call_effects env ~current_unit (p : Path.t) : call_effects option =
  let name = Paths.path_name p in
  match primitive_call_effects name with
  | Some ce -> Some ce
  | None ->
    (match Callgraph.find ~current_unit env.cg p with
     | Some d ->
       (match Hashtbl.find_opt env.sums d.Callgraph.qname with
        | Some s -> Some (call_effects_of_sum s)
        | None -> None)
     | None -> None)

(* Match call-site arguments against effect slots. *)
let actual_of_slot (args : (Asttypes.arg_label * expression option) list) slot =
  match slot with
  | Pos i ->
    let positional =
      List.filter_map
        (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
        args
    in
    List.nth_opt positional i
  | Lab l ->
    List.find_map
      (function
        | (Asttypes.Labelled l' | Asttypes.Optional l'), Some a when l' = l -> Some a
        | _ -> None)
      args

(* --- alias/root tracking ------------------------------------------------ *)

module Flow = struct
  type base =
    | Param of int            (* parameter of the enclosing definition *)
    | Local of string         (* Ident.unique_name bound in the definition *)
    | Outer of string         (* module-level value or capture from outside *)

  type root = { base : base; rev_fields : string list }
      (* [rev_fields]: the field-projection trail, innermost first —
         [s.sys] roots at [s] with trail ["sys"].  Two roots alias when
         their bases agree and one trail is a suffix-extension of the
         other; diverging trails ([s.sys] vs [s.work]) do not. *)

  type ctx = {
    env : env;
    current_unit : string;
    params : (string, int) Hashtbl.t;   (* unique_name -> param index *)
    bound : (string, unit) Hashtbl.t;   (* every pattern ident in the def *)
    aliases : (string, expression) Hashtbl.t;  (* let x = <expr> *)
  }

  let base_ident = function Local s -> Some s | Param _ | Outer _ -> None

  let same_base a b =
    match (a, b) with
    | Param i, Param j -> i = j
    | Local x, Local y | Outer x, Outer y -> String.equal x y
    | _ -> false

  (* Aliasing of two projection trails off one base: equal, or one extends
     the other (the whole of [s] overlaps [s.sys]). *)
  let overlapping_roots a b =
    same_base a.base b.base
    &&
    let rec suffix xs ys =
      (* does [xs] end with [ys]? trails are innermost-first, so extension
         means one reversed list is a prefix of the other *)
      let la = List.length xs and lb = List.length ys in
      if la < lb then suffix ys xs
      else
        let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
        drop (la - lb) xs = ys
    in
    suffix a.rev_fields b.rev_fields

  (* Pass 1 over a definition: record every bound ident and every simple
     [let x = e] alias, so root resolution is order-independent (the same
     collect-then-judge shape as the purity pass). *)
  let ctx_of_def env (d : Callgraph.def) : ctx =
    let ctx =
      { env;
        current_unit = d.Callgraph.unit_module;
        params = Hashtbl.create 8;
        bound = Hashtbl.create 64;
        aliases = Hashtbl.create 16 }
    in
    List.iteri
      (fun i (p : Callgraph.param) ->
        List.iter
          (fun id -> Hashtbl.replace ctx.params (Ident.unique_name id) i)
          p.Callgraph.p_idents)
      d.Callgraph.params;
    let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
      fun it p ->
      List.iter
        (fun id -> Hashtbl.replace ctx.bound (Ident.unique_name id) ())
        (pat_bound_idents p);
      Tast_iterator.default_iterator.pat it p
    in
    let value_binding it vb =
      (match vb.vb_pat.pat_desc with
       | Tpat_var (id, _) ->
         Hashtbl.replace ctx.aliases (Ident.unique_name id) vb.vb_expr
       | _ -> ());
      Tast_iterator.default_iterator.value_binding it vb
    in
    let it = { Tast_iterator.default_iterator with pat; value_binding } in
    List.iter (fun vb -> it.value_binding it vb) d.Callgraph.prelude;
    it.expr it d.Callgraph.body;
    ctx

  let rec roots ?(depth = 0) ctx (e : expression) : root list =
    if depth > 8 then []
    else
      let again e' = roots ~depth:(depth + 1) ctx e' in
      match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) ->
        let key = Ident.unique_name id in
        (match Hashtbl.find_opt ctx.params key with
         | Some i -> [ { base = Param i; rev_fields = [] } ]
         | None ->
           (match Hashtbl.find_opt ctx.aliases key with
            | Some rhs ->
              (match again rhs with
               | [] ->
                 if Hashtbl.mem ctx.bound key then
                   [ { base = Local key; rev_fields = [] } ]
                 else [ { base = Outer key; rev_fields = [] } ]
               | rs -> rs)
            | None ->
              if Hashtbl.mem ctx.bound key then
                [ { base = Local key; rev_fields = [] } ]
              else [ { base = Outer key; rev_fields = [] } ]))
      | Texp_ident (p, _, _) -> [ { base = Outer (Paths.path_name p); rev_fields = [] } ]
      | Texp_field (inner, _, lbl) ->
        List.map
          (fun r -> { r with rev_fields = lbl.Types.lbl_name :: r.rev_fields })
          (again inner)
      | Texp_construct (_, _, [ inner ]) -> again inner
      | Texp_apply (fn, args) ->
        (match Paths.applied_path fn with
         | None -> []
         | Some p ->
           (match call_effects ctx.env ~current_unit:ctx.current_unit p with
            | Some { ce_returns = Some slot; _ } ->
              (match actual_of_slot args slot with
               | Some a -> again a
               | None -> [])
            | _ -> []))
      | Texp_ifthenelse (_, a, Some b) -> again a @ again b
      | Texp_ifthenelse (_, a, None) -> again a
      | Texp_sequence (_, b) | Texp_let (_, _, b) -> again b
      | _ -> []

  (* Result expressions of a body: tail positions, flattened one level
     through constructors/tuples/records so [Some v] and [{ f = v }]
     count as returning [v]. *)
  let rec tails (e : expression) : expression list =
    match e.exp_desc with
    | Texp_let (_, _, b) | Texp_sequence (_, b) -> tails b
    | Texp_ifthenelse (_, a, Some b) -> tails a @ tails b
    | Texp_ifthenelse (_, a, None) -> tails a
    | Texp_match (_, cases, _) -> List.concat_map (fun c -> tails c.c_rhs) cases
    | Texp_try (b, cases) -> tails b @ List.concat_map (fun c -> tails c.c_rhs) cases
    | Texp_construct (_, _, args) -> e :: List.concat_map tails args
    | Texp_tuple comps -> e :: List.concat_map tails comps
    | Texp_record { fields; _ } ->
      e
      :: (Array.to_list fields
          |> List.concat_map (function
               | _, Overridden (_, fe) -> tails fe
               | _, Kept _ -> []))
    | _ -> [ e ]
end

(* --- effect collection + fixpoint --------------------------------------- *)

(* One pass over a definition with the current summaries: which parameters
   are mutated / stored / returned. *)
let collect_effects env (d : Callgraph.def) : effect_ array =
  let n = List.length d.Callgraph.params in
  let effects = Array.make n no_effect in
  let ctx = Flow.ctx_of_def env d in
  let mark f roots =
    List.iter
      (fun (r : Flow.root) ->
        match r.Flow.base with
        | Flow.Param i when i < n -> effects.(i) <- f effects.(i)
        | _ -> ())
      roots
  in
  let mark_mutated = mark (fun e -> { e with mutated = true }) in
  let mark_buffer_mut = mark (fun e -> { e with buffer_mut = true }) in
  let mark_stored = mark (fun e -> { e with stored = true }) in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | None -> ()
        | Some p ->
          (match call_effects env ~current_unit:ctx.Flow.current_unit p with
           | None -> ()
           | Some ce ->
             let over slots f =
               List.iter
                 (fun slot ->
                   match actual_of_slot args slot with
                   | Some a -> f (Flow.roots ctx a)
                   | None -> ())
                 slots
             in
             over ce.ce_mutated mark_mutated;
             over ce.ce_buffer_mutated mark_buffer_mut;
             over ce.ce_stored mark_stored))
     | Texp_setfield (target, _, _, v) ->
       mark_mutated (Flow.roots ctx target);
       mark_stored (Flow.roots ctx v)
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  List.iter (fun vb -> it.expr it vb.vb_expr) d.Callgraph.prelude;
  it.expr it d.Callgraph.body;
  List.iter
    (fun t -> mark (fun e -> { e with returned = true }) (Flow.roots ctx t))
    (Flow.tails d.Callgraph.body);
  effects

let equal_effects a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : effect_) y -> x = y) a b

(* Fixpoint over the whole call graph.  Effects only ever turn on, so the
   iteration is monotone; the round cap is a backstop for call chains
   deeper than anything in this repository. *)
let max_rounds = 12

let compute (cg : Callgraph.t) : env =
  let env = { cg; sums = Hashtbl.create 256 } in
  List.iter
    (fun (d : Callgraph.def) ->
      Hashtbl.replace env.sums d.Callgraph.qname
        { fdef = d; effects = Array.make (List.length d.Callgraph.params) no_effect })
    (Callgraph.defs cg);
  let rec iterate round =
    let changed = ref false in
    List.iter
      (fun (d : Callgraph.def) ->
        let fresh = collect_effects env d in
        match Hashtbl.find_opt env.sums d.Callgraph.qname with
        | Some prev when equal_effects prev.effects fresh -> ()
        | _ ->
          changed := true;
          Hashtbl.replace env.sums d.Callgraph.qname { fdef = d; effects = fresh })
      (Callgraph.defs cg);
    if !changed && round < max_rounds then iterate (round + 1)
  in
  iterate 1;
  env

let find_sum env qname = Hashtbl.find_opt env.sums qname

let callgraph env = env.cg

let selftest () = List.length primitive_effects
