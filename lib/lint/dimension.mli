(** The dimension lattice behind the UNT unit-inference pass.

    Rational-exponent abelian group over the base quantities
    [{m, s, V, A, K}], plus two abstract elements: [Unknown] (inference
    gave up — absorbing, never fires) and [Const] (a numeric literal —
    dimension-polymorphic, adopts the other operand).  A dimension also
    carries a scale tag separating SI-internal values from display-unit
    conversions (nm, um, cm^-3 ...), which is what UNT003 checks. *)

type rat = private { num : int; den : int }
(** Exact rational, normalized: positive denominator, lowest terms. *)

val rat : int -> int -> rat
(** [rat num den] — raises [Invalid_argument] on a zero denominator. *)

val rat_of_int : int -> rat
val rat_to_string : rat -> string

type scale = Si | Display of string
(** [Display u] tags a value produced by an explicit display-unit
    conversion ([u] is the unit string, e.g. "nm"). *)

type dim = { m : rat; s : rat; v : rat; a : rat; k : rat; scale : scale }

type t = Unknown | Const | Dim of dim

val dimensionless : t
val base : ?scale:scale -> [ `M | `S | `V | `A | `K ] -> t

val is_dimensionless : t -> bool
(** True only for [Dim] with all-zero exponents ([Unknown]/[Const] are not
    provably dimensionless). *)

val equal_exponents : dim -> dim -> bool

val scale_conflict : dim -> dim -> bool
(** Do the two scale tags clash (SI vs display, or two different display
    units)? *)

val scale_label : scale -> string

val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t
val pow : t -> rat -> t
val sqrt_ : t -> t

val to_string : t -> string
(** "m^2*V/s"-style rendering; display-tagged dims append their unit. *)

type combination =
  | Ok_dim of t
  | Mismatch of dim * dim  (** incompatible exponents — UNT001 *)
  | Scale_mix of dim * dim  (** same exponents, conflicting scales — UNT003 *)

val add : t -> t -> combination
(** Additive/comparison combination judgment: [Unknown] and [Const]
    always combine (adopting the other operand's dimension), two [Dim]s
    must agree in exponents and scale. *)

val join : t -> t -> t
(** Branch join (if/match arms): agreement propagates, anything else
    degrades silently to [Unknown]. *)
