(** Lockset analysis engine for the RAC race/deadlock pass.

    Computes, over the whole {!Callgraph}, per-definition concurrency
    summaries (may-raise / may-block / locks-acquired) and walks every
    definition body with a path-sensitive *held lockset* — which mutexes
    are held, and whether each is exception-protected — emitting typed
    events the {!Races} pass turns into RAC001-005 diagnostics.

    Polarity differs deliberately from UNT/ALS: an *unresolved* call made
    while a lock is held counts as "may raise" (RAC002 evidence), because
    exception-unsafe critical sections are exactly the places where an
    optimistic default ships a wedged process.  Everything else keeps the
    conservative "unknown never fires" contract: unknown lock identities
    are not tracked, unknown aliasing convicts nothing. *)

type lock_kind =
  | Kmod    (** module-level mutex: the class names one instance *)
  | Kfield  (** record-field mutex: one class, many instances *)
  | Klocal  (** let-bound in the current definition *)
  | Kparam  (** passed in as a bare parameter *)

type lock = {
  l_cls : string option;
      (** static class: ["Store.t.pending_lock"], ["Memo.registry_lock"] *)
  l_kind : lock_kind;
  l_roots : Summary.Flow.root list;  (** instance identity within one def *)
  l_name : string;                   (** printable site name ("t.pending_lock") *)
  l_site : Location.t;               (** acquisition site *)
}

type hlock = { h_lock : lock; h_protected : bool }
(** A held lock; [h_protected] when its release is guaranteed on raise
    ([Mutex.protect] or [Fun.protect ~finally] unlocking it). *)

type guard =
  | Same_instance of string
      (** held lock rooted at the same value as the accessed state *)
  | Module_lock of string  (** held module-level lock *)

type access_kind = Read | Write | Use
(** [Use]: a mutable-container operation (counts as a write for
    conviction — consistency is the question, not direction). *)

type event =
  | Reacquire of { lock : lock; site : Location.t }
      (** acquiring a mutex provably already held: self-deadlock *)
  | Raise_evidence of { op : string; site : Location.t; locks : lock list }
      (** a may-raise operation while holding unprotected [locks] *)
  | Block_evidence of { op : string; site : Location.t; locks : lock list }
      (** a blocking operation while holding [locks] *)
  | Order_edge of { held_cls : string; acq_cls : string; site : Location.t }
  | Access of {
      cls : string;          (** "Store.t.closed", "Memo.registry" *)
      kind : access_kind;
      guards : guard list;   (** locks held at the access, instance-correlated *)
      crossing : bool;       (** site runs under another domain *)
      fresh : bool;          (** receiver built in this def (init phase) *)
      site : Location.t;
      descr : string;
    }
  | Torn_rmw of { name : string; site : Location.t }
      (** [Atomic.set a (f (Atomic.get a))]: lost-update window *)
  | Mod_lock_seen of string
      (** a module-level lock class exists (gates RAC001 on globals) *)

type t

val analyze : Summary.env -> t
(** Fixpoint of the per-definition summaries (monotone, bounded rounds)
    plus the domain-crossing reachability set seeded at
    [Exec.map*]/[Pool.map]/[Domain.spawn] call sites. *)

val crossing : t -> string -> bool
(** Is the named definition reachable from a domain-crossing closure? *)

val blocking_ok : Parsetree.attributes -> bool
(** [[@blocking_ok]] on the binding: by-design IO under a lock; suppresses
    RAC005 in the definition and stops may-block propagation to callers. *)

val walk_def : t -> Callgraph.def -> emit:(event -> unit) -> unit
(** Walk one definition with the held-lockset abstract interpretation,
    emitting events.  Branch joins keep a lock held only when every
    non-diverging branch holds it; nested let-bound functions are inlined
    (cycle-broken) so helpers like a worker's [await] loop stay precise. *)
