(** UNT001–005: static dimensional analysis by abstract interpretation
    over the typedtree, seeded from the {!Unit_sig} signature tables.
    Sound-but-conservative: [unknown] propagates silently and never
    fires; [(e [@units "V/dec"])] asserts a dimension and silences its
    subtree. *)

val check : source:string -> Typedtree.structure -> Check.Diagnostic.t list
