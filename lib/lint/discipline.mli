(** LNT004 — diagnostic discipline: [Diagnostic.error]/[warning]/[info]/
    [make] must receive a [~rule] identifier minted via [Check.Rules], never
    a string literal. *)

val check : source:string -> Typedtree.structure -> Check.Diagnostic.t list
