(* Path and type classification shared by every lint pass.

   The typedtree records fully resolved [Path.t]s, so "what function is
   being applied" and "what type does this identifier have" are exact —
   no name-based guessing beyond normalizing the [Stdlib] prefixes the
   compiler inserts ("Stdlib.ref", "Stdlib.Hashtbl.t", "Stdlib!.=" never
   appear in source but always in paths). *)

(* Strip the "Stdlib." / "Stdlib__" wrappers so matching works against the
   names a programmer writes: "Stdlib.Hashtbl.add" and "Stdlib__Hashtbl.add"
   both normalize to "Hashtbl.add". *)
let normalize name =
  let strip_component c =
    let prefix p = String.length c > String.length p && String.sub c 0 (String.length p) = p in
    if c = "Stdlib" then None
    else if prefix "Stdlib__" then
      (* "Stdlib__Hashtbl" -> "Hashtbl": undo the internal module mangling. *)
      let rest = String.sub c 8 (String.length c - 8) in
      Some (String.capitalize_ascii rest)
    else Some c
  in
  String.concat "." (List.filter_map strip_component (String.split_on_char '.' name))

let path_name p = normalize (Path.name p)

(* Undo dune's wrapped-library mangling: within (or across) wrapped
   libraries the typedtree records "Device__Params.physical" where the
   source says "Params.physical".  Each component keeps only what follows
   its last "__" separator, so signature tables can be written against the
   names programmers use. *)
let demangle name =
  let strip_component c =
    let n = String.length c in
    let rec last_sep i best =
      if i + 1 >= n then best
      else if c.[i] = '_' && c.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
      else last_sep (i + 1) best
    in
    match last_sep 0 None with
    | Some start when start < n ->
      String.capitalize_ascii (String.sub c start (n - start))
    | _ -> c
  in
  String.concat "." (List.map strip_component (String.split_on_char '.' name))

(* [suffix_matches ~candidates name] — does [name] equal a candidate or end
   with ".candidate"?  Suffix matching makes "Exec.Pool.map" hit the
   "Pool.map" target and lets fixtures define local modules with the same
   shape as the real libraries. *)
let suffix_matches ~candidates name =
  List.exists
    (fun c ->
      name = c
      || (let lc = String.length c and ln = String.length name in
          ln > lc + 1 && String.sub name (ln - lc - 1) (lc + 1) = "." ^ c))
    candidates

(* Head ident of an application: [Some path] when the applied expression is
   a plain identifier (possibly via Texp_ident under coercion extras). *)
let applied_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

(* --- type classification ------------------------------------------------ *)

(* Follow Tlink/Tsubst chains but do not expand abbreviations: an abstract
   type like [Exec.Memo.t] stays abstract, which is exactly the whitelist
   semantics we want (mutability hidden behind a sanctioned API is fine). *)
let head_constr ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> Some (path_name p, args)
  | _ -> None

(* Containers that are always a race hazard when captured by a closure that
   runs on another domain: even a read races with a writer elsewhere.
   [Atomic.t] is deliberately absent — atomics are the memory-model-sanctioned
   primitive and cannot tear; determinism abuse of atomics is what the
   dynamic schedule audit (subscale audit --schedules) convicts. *)
let mutable_container_names =
  [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

let is_mutable_container ty =
  match head_constr ty with
  | Some (name, _) -> suffix_matches ~candidates:mutable_container_names name
  | None -> false

let is_array ty =
  match head_constr ty with
  | Some (name, _) -> name = "array" || name = "bytes" || name = "floatarray"
  | None -> false

(* --- flat-buffer classification (the TCAD hot-path state) --------------- *)

(* Like [head_constr] but with dune's wrapped-library mangling undone, so
   "Tcad__Poisson.scratch" matches a table written as "Poisson.scratch". *)
let demangled_head ty =
  match head_constr ty with
  | Some (name, args) -> Some (demangle name, args)
  | None -> None

(* Caller-owned solver workspaces: one value serves a whole sweep but must
   never be shared across concurrent domains, stored into long-lived
   structures, or handed to two overlapping solves. *)
let scratch_type_names = [ "Poisson.scratch"; "Stencil5.t" ]

let is_scratch ty =
  match demangled_head ty with
  | Some (name, _) -> suffix_matches ~candidates:scratch_type_names name
  | None -> false

(* Mutable flat buffers of the Bigarray hot path.  [Array1.t] covers both
   "Bigarray.Array1.t" and any local module shaped like it; Fvec.t/Field.t
   are the repo's own aliases (Field.t *is* Fvec.t, and either path can
   appear in inferred types depending on what the compiler saw first). *)
let buffer_type_names = [ "Fvec.t"; "Field.t"; "Array1.t"; "Mask.t" ]

let is_flat_buffer ty =
  (match demangled_head ty with
   | Some (name, _) -> suffix_matches ~candidates:buffer_type_names name
   | None -> false)
  || is_scratch ty

(* Float-ish: float itself, or a float sitting directly inside a tuple,
   option, list or array.  Deeper nesting (records carrying floats, maps of
   floats) needs environment expansion and is out of scope — documented in
   DESIGN.md as an under-approximation of LNT002. *)
let rec is_floatish ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | Types.Tconstr (p, [ arg ], _) ->
    (Path.same p Predef.path_option || Path.same p Predef.path_list
    || Path.same p Predef.path_array)
    && is_floatish arg
  | Types.Ttuple comps -> List.exists is_floatish comps
  | _ -> false

(* Render a type's head constructor for messages ("ref", "Hashtbl.t", ...). *)
let describe_type ty =
  match head_constr ty with Some (name, _) -> name | None -> "<abstract>"
