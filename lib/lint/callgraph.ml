(* Function-definition discovery for the interprocedural ALS pass.

   Walks every loaded compilation unit and records each let-bound function
   (toplevel or nested in sub-modules) under a qualified source-level name:
   "Poisson.solve", "Als003_fire.Fvec.blit".  Call sites resolve against
   these names after Stdlib-prefix stripping and wrapped-library
   demangling, so "Tcad__Poisson.solve" and a fixture's local "Fvec.blit"
   both find their definitions through the same table.

   Resolution is deliberately partial: an unknown or ambiguous callee
   yields [None], and the downstream analyses treat an unresolved call as
   effect-free — the sound-but-conservative direction for a linter (a
   missed summary can only silence a finding, never invent one). *)

open Typedtree

type param = {
  p_label : Asttypes.arg_label;
  p_idents : Ident.t list;  (* bound idents of the parameter pattern *)
}

type def = {
  qname : string;          (* "Unit.Sub.f" — unit module, nested modules, name *)
  unit_module : string;    (* "Unit": capitalized basename of the source *)
  source : string;         (* the .cmt's recorded source path *)
  params : param list;     (* in currying order *)
  prelude : value_binding list;
      (* let-bindings crossed while unwrapping the parameter chain (the
         compiler's optional-argument default unpacking lands here) *)
  body : expression;
  def_attrs : Parsetree.attributes;  (* the binding's attributes ([@owned]...) *)
  loc : Location.t;
}

type t = { defs : def list; by_name : (string, def list) Hashtbl.t }

let unit_module_of_source source =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename source))

(* Unwrap a curried [fun a -> fun ?(b=...) -> body] chain into its
   parameter list.  Optional-argument defaults compile to a let between
   two Texp_function layers; those bindings are kept as [prelude] so the
   summary walk still sees their aliases and effects.  Multi-case
   [function] bodies end the chain (the scrutinee patterns are not
   parameters in the summary sense). *)
let split_params (e : expression) =
  let rec go acc prelude (e : expression) =
    match e.exp_desc with
    | Texp_function { arg_label; cases = [ c ]; _ } ->
      let p = { p_label = arg_label; p_idents = pat_bound_idents c.c_lhs } in
      go (p :: acc) prelude c.c_rhs
    | Texp_let (Asttypes.Nonrecursive, vbs, inner) when acc <> [] ->
      (* Only between parameters: a let *before* any parameter is not a
         function at all, and the chain stops at the first real body. *)
      (match chases_function inner with
       | true -> go acc (prelude @ vbs) inner
       | false -> (List.rev acc, prelude, e))
    | _ -> (List.rev acc, prelude, e)
  and chases_function (e : expression) =
    match e.exp_desc with
    | Texp_function _ -> true
    | Texp_let (_, _, inner) -> chases_function inner
    | _ -> false
  in
  go [] [] e

let is_function (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let defs_of_unit (u : Cmt_load.unit_info) : def list =
  let unit_module = unit_module_of_source u.Cmt_load.source in
  let acc = ref [] in
  let rec walk_structure prefix (str : structure) =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (walk_binding prefix) vbs
        | Tstr_module mb ->
          let name =
            match mb.mb_id with Some id -> Ident.name id | None -> "_"
          in
          walk_module (prefix ^ name ^ ".") mb.mb_expr
        | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              let name =
                match mb.mb_id with Some id -> Ident.name id | None -> "_"
              in
              walk_module (prefix ^ name ^ ".") mb.mb_expr)
            mbs
        | _ -> ())
      str.str_items
  and walk_module prefix (me : module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> walk_structure prefix s
    | Tmod_constraint (m, _, _, _) | Tmod_apply (_, m, _) -> walk_module prefix m
    | Tmod_functor (_, m) -> walk_module prefix m
    | Tmod_ident _ | Tmod_unpack _ | Tmod_apply_unit _ -> ()
  and walk_binding prefix vb =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) when is_function vb.vb_expr ->
      let params, prelude, body = split_params vb.vb_expr in
      acc :=
        { qname = prefix ^ Ident.name id;
          unit_module;
          source = u.Cmt_load.source;
          params;
          prelude;
          body;
          def_attrs = vb.vb_attributes;
          loc = vb.vb_pat.pat_loc }
        :: !acc
    | _ -> ()
  in
  walk_structure (unit_module ^ ".") u.Cmt_load.structure;
  List.rev !acc

let build (units : Cmt_load.unit_info list) : t =
  let defs = List.concat_map defs_of_unit units in
  let by_name = Hashtbl.create 256 in
  List.iter
    (fun d ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_name d.qname) in
      Hashtbl.replace by_name d.qname (d :: prev))
    defs;
  { defs; by_name }

let defs t = t.defs

let defs_of_source t source = List.filter (fun d -> d.source = source) t.defs

(* Resolve a call-site path against the table.  The recorded [qname]s are
   fully qualified; the call may be any suffix of one ("solve",
   "Poisson.solve", "Tcad__Poisson.solve").  Ambiguity resolves to the
   calling unit's own definition when there is exactly one, otherwise to
   nothing at all — a wrong summary is worse than no summary. *)
let find ?current_unit t (p : Path.t) : def option =
  let tiebreak many =
    match current_unit with
    | Some um ->
      (match List.filter (fun d -> d.unit_module = um) many with
       | [ d ] -> Some d
       | _ -> None)
    | None -> None
  in
  let name = Paths.demangle (Paths.path_name p) in
  match Hashtbl.find_opt t.by_name name with
  | Some [ d ] -> Some d
  | Some _ -> None
  | None ->
    let suffix = "." ^ name in
    let matches =
      List.filter
        (fun d ->
          let q = d.qname in
          String.length q > String.length suffix
          && String.sub q (String.length q - String.length suffix)
               (String.length suffix)
             = suffix)
        t.defs
    in
    (match matches with
     | [ d ] -> Some d
     | [] ->
       (* The call path can also be *longer* than the recorded qname: a
          library wrapper prefixes it ("Obs.Trace.enabled" for the def
          recorded as "Trace.enabled").  Drop leading components and
          retry the exact table — still a full-qname match, so the
          wrong-summary-is-worse-than-none contract holds. *)
       let rec drop name =
         match String.index_opt name '.' with
         | None -> None
         | Some i ->
           let name = String.sub name (i + 1) (String.length name - i - 1) in
           (match Hashtbl.find_opt t.by_name name with
            | Some [ d ] -> Some d
            | Some many -> tiebreak many
            | None -> drop name)
       in
       drop name
     | many -> tiebreak many)
