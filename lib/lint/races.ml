(* RAC001-005 — race, deadlock and lock-discipline diagnostics.

   The {!Lockset} engine does the heavy lifting (per-definition effect
   summaries, domain-crossing reachability, the held-lockset walk); this
   pass is the judge.  Local events (an exception-unsafe critical
   section, a re-acquired mutex, a torn atomic update, blocking under a
   lock) become diagnostics directly.  Two verdicts are global and
   resolved after every definition has been walked:

   - RAC001 convicts a state class (record field or module container) by
     Eraser-style lockset refinement: some access writes, some access
     runs on another domain, and the intersection of guard sets across
     all accesses is empty — and locks are demonstrably in play for that
     class (some access is guarded, or the unit defines a module-level
     mutex).  Code that never locks may synchronize some other way and
     stays out of scope: unknown never convicts.

   - RAC003's second half builds the global lock-order graph from
     acquired-while-holding edges and reports each pair of classes taken
     in both orders, at both sites. *)

module D = Check.Diagnostic

type spec = {
  sp_rule : string;
  sp_loc : Location.t;
  sp_msg : string;
  sp_hint : string;
}

type acc = {
  a_kind : Lockset.access_kind;
  a_guards : Lockset.guard list;
  a_crossing : bool;
  a_site : Location.t;
  a_descr : string;
  a_source : string;
}

type t = { specs : (string, spec list ref) Hashtbl.t }

let push t source sp =
  match Hashtbl.find_opt t.specs source with
  | Some l -> l := sp :: !l
  | None -> Hashtbl.replace t.specs source (ref [ sp ])

let guard_label = function
  | Lockset.Module_lock c -> c
  | Lockset.Same_instance c -> c ^ " (same instance)"

let unit_prefix cls =
  match String.index_opt cls '.' with
  | Some i -> String.sub cls 0 i
  | None -> cls

let analyze env : t =
  let ls = Lockset.analyze env in
  let t = { specs = Hashtbl.create 32 } in
  (* first raise-evidence per critical section, keyed by acquisition site *)
  let rac002_seen = Hashtbl.create 16 in
  (* lock-order edges: (held, acquired) class pair -> first witness *)
  let edges : (string * string, string * Location.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let accesses : (string, acc list ref) Hashtbl.t = Hashtbl.create 32 in
  let mod_units = Hashtbl.create 8 in
  let handle source (ev : Lockset.event) =
    match ev with
    | Lockset.Reacquire { lock; site } ->
      push t source
        { sp_rule = Lint_rules.rac003;
          sp_loc = site;
          sp_msg =
            Printf.sprintf
              "mutex %s is acquired while already held: stdlib mutexes are \
               non-reentrant, this self-deadlocks"
              lock.Lockset.l_name;
          sp_hint =
            "release the mutex before re-acquiring it, or split the helper so \
             the locked region is entered exactly once" }
    | Lockset.Raise_evidence { op; site = _; locks } ->
      List.iter
        (fun (l : Lockset.lock) ->
          let key = source ^ "|" ^ Srcloc.to_string ~source l.Lockset.l_site in
          if not (Hashtbl.mem rac002_seen key) then begin
            Hashtbl.add rac002_seen key ();
            push t source
              { sp_rule = Lint_rules.rac002;
                sp_loc = l.Lockset.l_site;
                sp_msg =
                  Printf.sprintf
                    "critical section on %s can raise (%s) with the lock \
                     held: an exception leaks the mutex forever"
                    l.Lockset.l_name op;
                sp_hint =
                  "wrap the section in Mutex.protect, or Fun.protect \
                   ~finally:(fun () -> Mutex.unlock ...) so every exit path \
                   releases the lock" }
          end)
        locks
    | Lockset.Block_evidence { op; site; locks } ->
      let held =
        String.concat ", "
          (List.map (fun (l : Lockset.lock) -> l.Lockset.l_name) locks)
      in
      push t source
        { sp_rule = Lint_rules.rac005;
          sp_loc = site;
          sp_msg =
            Printf.sprintf
              "blocking call %s while holding %s: every other domain \
               contending for the lock stalls behind this IO"
              op held;
          sp_hint =
            "move the blocking call outside the critical section, or mark \
             the binding [@blocking_ok] if IO under this lock is by design" }
    | Lockset.Order_edge { held_cls; acq_cls; site } ->
      if not (Hashtbl.mem edges (held_cls, acq_cls)) then
        Hashtbl.replace edges (held_cls, acq_cls) (source, site)
    | Lockset.Torn_rmw { name; site } ->
      push t source
        { sp_rule = Lint_rules.rac004;
          sp_loc = site;
          sp_msg =
            Printf.sprintf
              "torn read-modify-write on atomic %s: Atomic.set of a value \
               derived from Atomic.get loses concurrent updates in between"
              name;
          sp_hint =
            "use Atomic.fetch_and_add / Atomic.incr / Atomic.decr, or a \
             compare_and_set retry loop" }
    | Lockset.Access { cls; kind; guards; crossing; fresh; site; descr } ->
      if not fresh then begin
        let entry =
          { a_kind = kind;
            a_guards = guards;
            a_crossing = crossing;
            a_site = site;
            a_descr = descr;
            a_source = source }
        in
        match Hashtbl.find_opt accesses cls with
        | Some l -> l := entry :: !l
        | None -> Hashtbl.replace accesses cls (ref [ entry ])
      end
    | Lockset.Mod_lock_seen c -> Hashtbl.replace mod_units (unit_prefix c) ()
  in
  List.iter
    (fun (d : Callgraph.def) ->
      Lockset.walk_def ls d ~emit:(handle d.Callgraph.source))
    (Callgraph.defs (Summary.callgraph env));

  (* RAC003, global half: lock-order inversions. *)
  Hashtbl.iter
    (fun (a, b) (source, site) ->
      if String.compare a b < 0 then
        match Hashtbl.find_opt edges (b, a) with
        | Some (source', site') ->
          let report src loc first second =
            push t src
              { sp_rule = Lint_rules.rac003;
                sp_loc = loc;
                sp_msg =
                  Printf.sprintf
                    "lock-order inversion: %s and %s are acquired in both \
                     orders across the program (here %s is taken while %s is \
                     held): two domains can deadlock"
                    a b second first;
                sp_hint =
                  "pick one acquisition order for this lock pair and document \
                   it in DESIGN.md's lock-order hierarchy" }
          in
          report source site a b;
          report source' site' b a
        | None -> ())
    edges;

  (* RAC001, global half: Eraser-style lockset refinement per class. *)
  Hashtbl.iter
    (fun cls accs ->
      let accs = !accs in
      let writes =
        List.exists
          (fun a -> match a.a_kind with
             | Lockset.Write | Lockset.Use -> true
             | Lockset.Read -> false)
          accs
      in
      let crossing = List.exists (fun a -> a.a_crossing) accs in
      let guarded_some = List.exists (fun a -> a.a_guards <> []) accs in
      let eligible = guarded_some || Hashtbl.mem mod_units (unit_prefix cls) in
      let common =
        match accs with
        | [] -> []
        | first :: rest ->
          List.filter
            (fun g -> List.for_all (fun a -> List.mem g a.a_guards) rest)
            first.a_guards
      in
      if writes && crossing && eligible && common = [] then begin
        let usual =
          (* the guard most accesses do hold, for the message *)
          let tally = Hashtbl.create 4 in
          List.iter
            (fun a ->
              List.iter
                (fun g ->
                  Hashtbl.replace tally g
                    (1 + Option.value ~default:0 (Hashtbl.find_opt tally g)))
                a.a_guards)
            accs;
          Hashtbl.fold
            (fun g n best ->
              match best with
              | Some (_, bn) when bn >= n -> best
              | _ -> Some (g, n))
            tally None
        in
        let sites =
          match List.filter (fun a -> a.a_guards = []) accs with
          | [] -> accs (* disjoint guard sets: every site is part of the bug *)
          | unguarded -> unguarded
        in
        let sites = List.filteri (fun i _ -> i < 3) (List.rev sites) in
        List.iter
          (fun a ->
            push t a.a_source
              { sp_rule = Lint_rules.rac001;
                sp_loc = a.a_site;
                sp_msg =
                  Printf.sprintf
                    "shared mutable state %s (class %s) is reachable from a \
                     domain-crossing closure but %s here%s"
                    a.a_descr cls
                    (match a.a_kind with
                     | Lockset.Write -> "written without its lock"
                     | Lockset.Use -> "mutated without its lock"
                     | Lockset.Read -> "read without its lock")
                    (match usual with
                     | Some (g, _) ->
                       Printf.sprintf " (guarded elsewhere by %s)"
                         (guard_label g)
                     | None -> "") ;
                sp_hint =
                  "hold the same mutex at every access to this state, or \
                   make it an Atomic.t" })
          sites
      end)
    accesses;
  t

let check t ~source : D.t list =
  match Hashtbl.find_opt t.specs source with
  | None -> []
  | Some l ->
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun sp ->
        let location = Srcloc.to_string ~source sp.sp_loc in
        let key = sp.sp_rule ^ "|" ^ location in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          let mk =
            match Lint_rules.severity_of_id sp.sp_rule with
            | D.Error -> D.error
            | D.Warning -> D.warning
            | D.Info -> D.info
          in
          Some (mk ~rule:sp.sp_rule ~location sp.sp_msg ~hint:sp.sp_hint)
        end)
      (List.rev !l)

let selftest () = 5 (* RAC001-005 registered *)
