(** The linter's own test: crafted sources compiled at runtime (ocamlc
    -bin-annot into a temp dir) must each fire exactly their LNT/UNT rule,
    the near-misses must stay clean, and the rule registry and unit
    signature table must be collision-free and well-formed. *)

type result = { name : string; ok : bool; detail : string }

val run : unit -> result list
