(* The linter's own test, mirroring `subscale check --selftest` /
   `audit --selftest`: one crafted source per rule that must fire exactly
   that rule, one near-miss per rule that must come back clean, plus the
   rule-registry collision checks.

   Crafted sources are compiled at runtime with `ocamlc -bin-annot` into a
   temp directory — the same artifact path the real lint takes, so the
   selftest exercises cmt reading, not a shortcut. *)

module D = Check.Diagnostic

type result = { name : string; ok : bool; detail : string }

(* (name, expected-rule, must-fire, source) — near-misses expect *no*
   diagnostics at all, firing cases expect only their own rule. *)
let cases =
  [ ( "LNT001 closure mutates captured ref",
      Lint_rules.lnt001,
      true,
      "module Exec = struct let map f xs = List.map f xs end\n\
       let total xs =\n\
      \  let acc = ref 0.0 in\n\
      \  let _ = Exec.map (fun x -> acc := !acc +. x; x) xs in\n\
      \  !acc\n" );
    ( "LNT001 closure captures Hashtbl via Pool.map",
      Lint_rules.lnt001,
      true,
      "module Pool = struct let map _pool f xs = List.map f xs end\n\
       let tally pool tbl xs = Pool.map pool (fun x -> Hashtbl.add tbl x x; x) xs\n" );
    ( "LNT001 near miss: immutable capture, closure-local ref",
      Lint_rules.lnt001,
      false,
      "module Exec = struct let map f xs = List.map f xs end\n\
       let scaled scale xs =\n\
      \  Exec.map (fun x -> let acc = ref (x *. scale) in acc := !acc +. 1.0; !acc) xs\n" );
    ( "LNT002 polymorphic = on floats",
      Lint_rules.lnt002,
      true,
      "let approx (a : float) (b : float) = a = b\n" );
    ( "LNT002 near miss: Float.equal and int =",
      Lint_rules.lnt002,
      false,
      "let approx (a : float) (b : float) = Float.equal a b\n\
       let same (a : int) (b : int) = a = b\n" );
    ( "LNT003 catch-all try swallows exceptions",
      Lint_rules.lnt003,
      true,
      "let safe f = try f () with _ -> 0\n" );
    ( "LNT003 near miss: named exception / re-raise",
      Lint_rules.lnt003,
      false,
      "let safe f = try f () with Not_found -> 0\n\
       let cleanup f = try f () with e -> ignore (f ()); raise e\n" );
    ( "LNT004 literal rule id bypasses the registry",
      Lint_rules.lnt004,
      true,
      "module Diagnostic = struct let error ~rule ~location m = (rule, location, m) end\n\
       let d = Diagnostic.error ~rule:\"XXX999\" ~location:\"here\" \"boom\"\n" );
    ( "LNT004 near miss: rule id via identifier",
      Lint_rules.lnt004,
      false,
      "module Diagnostic = struct let error ~rule ~location m = (rule, location, m) end\n\
       let registered = \"XXX999\"\n\
       let d = Diagnostic.error ~rule:registered ~location:\"here\" \"boom\"\n" );
    ( "LNT005 direct print_endline in library code",
      Lint_rules.lnt005,
      true,
      "let shout () = print_endline \"hello\"\n" );
    ( "LNT005 near miss: buffer + sprintf",
      Lint_rules.lnt005,
      false,
      "let shout buf = Buffer.add_string buf (Printf.sprintf \"%d\" 42)\n" );
    (* The UNT crafted sources define local modules shaped like the real
       libraries (Params, Constants, Silicon), which the signature tables
       match by path suffix — the same route the fixture corpus takes. *)
    ( "UNT001 length added to voltage",
      Lint_rules.unt001,
      true,
      "module Params = struct type physical = { lpoly : float; vdd : float } end\n\
       let bad (p : Params.physical) = p.Params.lpoly +. p.Params.vdd\n" );
    ( "UNT001 near miss: like dimensions, literals, unknowns",
      Lint_rules.unt001,
      false,
      "module Params = struct type physical = { lpoly : float; tox : float } end\n\
       let good (p : Params.physical) = p.Params.lpoly +. p.Params.tox\n\
       let offset (p : Params.physical) = p.Params.lpoly +. 1e-9\n\
       let opaque (p : Params.physical) x = p.Params.lpoly +. x\n" );
    ( "UNT002 exp of an un-normalized voltage",
      Lint_rules.unt002,
      true,
      "module Params = struct type physical = { vdd : float } end\n\
       let bad (p : Params.physical) = exp p.Params.vdd\n" );
    ( "UNT002 near miss: normalized exponent",
      Lint_rules.unt002,
      false,
      "module Params = struct type physical = { vdd : float } end\n\
       module Constants = struct let vt_room = 0.02585 end\n\
       let good (p : Params.physical) = exp (p.Params.vdd /. Constants.vt_room)\n" );
    ( "UNT003 nm-scaled length mixed with SI",
      Lint_rules.unt003,
      true,
      "module Params = struct type physical = { lpoly : float; tox : float } end\n\
       module Constants = struct let to_nm x = x *. 1e9 end\n\
       let bad (p : Params.physical) = Constants.to_nm p.Params.lpoly +. p.Params.tox\n" );
    ( "UNT003 near miss: both sides converted",
      Lint_rules.unt003,
      false,
      "module Params = struct type physical = { lpoly : float; tox : float } end\n\
       module Constants = struct let to_nm x = x *. 1e9 end\n\
       let good (p : Params.physical) =\n\
      \  Constants.to_nm p.Params.lpoly +. Constants.to_nm p.Params.tox\n" );
    ( "UNT004 voltage passed where doping belongs",
      Lint_rules.unt004,
      true,
      "module Params = struct type physical = { vdd : float } end\n\
       module Silicon = struct let fermi_potential n = n end\n\
       let bad (p : Params.physical) = Silicon.fermi_potential p.Params.vdd\n" );
    ( "UNT004 near miss: argument matches the table",
      Lint_rules.unt004,
      false,
      "module Params = struct type physical = { nsub : float } end\n\
       module Silicon = struct let fermi_potential n = n end\n\
       let good (p : Params.physical) = Silicon.fermi_potential p.Params.nsub\n" );
    ( "UNT005 dimension lost through List.map",
      Lint_rules.unt005,
      true,
      "module Params = struct type physical = { vdd : float } end\n\
       let bad (p : Params.physical) (xs : float list) =\n\
      \  List.map (fun dv -> p.Params.vdd +. dv) xs\n" );
    ( "UNT005 near miss: dimensionless closure body",
      Lint_rules.unt005,
      false,
      "let good (xs : float list) = List.map (fun dv -> dv *. 2.0) xs\n" );
    (* The ALS crafted sources define Bigarray-backed local modules shaped
       like the hot path (Fvec, Poisson.scratch); the interprocedural
       summaries resolve the helpers within the unit. *)
    ( "ALS001 closure mutates buffer via captured record and helper",
      Lint_rules.als001,
      true,
      "module Exec = struct let map f xs = List.map f xs end\n\
       type acc = { buf : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t }\n\
       let bump (a : acc) x = Bigarray.Array1.set a.buf 0 x\n\
       let run (a : acc) xs = Exec.map (fun x -> bump a x; x) xs\n" );
    ( "ALS001 near miss: closure-local buffer",
      Lint_rules.als001,
      false,
      "module Exec = struct let map f xs = List.map f xs end\n\
       type acc = { buf : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t }\n\
       let bump (a : acc) x = Bigarray.Array1.set a.buf 0 x\n\
       let run xs =\n\
      \  Exec.map\n\
      \    (fun x ->\n\
      \      let a = { buf = Bigarray.Array1.create Bigarray.float64 \
       Bigarray.c_layout 4 } in\n\
      \      bump a x; x)\n\
      \    xs\n" );
    ( "ALS002 scratch stored into a long-lived ref",
      Lint_rules.als002,
      true,
      "module Poisson = struct\n\
      \  type scratch = { sys : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t }\n\
       end\n\
       let cache : Poisson.scratch option ref = ref None\n\
       let stash (s : Poisson.scratch) = cache := Some s\n" );
    ( "ALS002 near miss: scratch threaded sequentially",
      Lint_rules.als002,
      false,
      "module Poisson = struct\n\
      \  type scratch = { sys : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t }\n\
      \  let relax (s : scratch) = Bigarray.Array1.set s.sys 0 1.0\n\
       end\n\
       let sweep (s : Poisson.scratch) = Poisson.relax s; Poisson.relax s\n" );
    ( "ALS003 blit with aliasing src and dst",
      Lint_rules.als003,
      true,
      "module Fvec = struct\n\
      \  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t\n\
      \  let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst\n\
       end\n\
       let refresh (v : Fvec.t) = Fvec.blit v v\n" );
    ( "ALS003 near miss: distinct buffers",
      Lint_rules.als003,
      false,
      "module Fvec = struct\n\
      \  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t\n\
      \  let blit (src : t) (dst : t) = Bigarray.Array1.blit src dst\n\
       end\n\
       let refresh (src : Fvec.t) (dst : Fvec.t) = Fvec.blit src dst\n" );
    ( "ALS004 returned buffer also retained in a ref",
      Lint_rules.als004,
      true,
      "let last : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t option ref = ref None\n\
       let make n =\n\
      \  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in\n\
      \  last := Some v;\n\
      \  v\n" );
    ( "ALS004 near miss: [@owned] asserts deliberate sharing",
      Lint_rules.als004,
      false,
      "let last : (float, Bigarray.float64_elt, Bigarray.c_layout) \
       Bigarray.Array1.t option ref = ref None\n\
       let[@owned] make n =\n\
      \  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in\n\
      \  last := Some v;\n\
      \  v\n" );
    (* The RAC crafted sources exercise the lockset engine end to end:
       guarded vs unguarded accesses to the same state class, protected
       vs bare critical sections, interprocedural re-acquisition through
       effect summaries, and the save/restore exemption for atomics. *)
    ( "RAC001 field read in crossing closure, guarded write elsewhere",
      Lint_rules.rac001,
      true,
      "module Exec = struct let map f xs = List.map f xs end\n\
       type t = { lock : Mutex.t; mutable count : int }\n\
       let bump (t : t) =\n\
      \  Mutex.lock t.lock; t.count <- t.count + 1; Mutex.unlock t.lock\n\
       let total (t : t) xs = Exec.map (fun x -> x + t.count) xs\n" );
    ( "RAC001 near miss: same lock at every access",
      Lint_rules.rac001,
      false,
      "module Exec = struct let map f xs = List.map f xs end\n\
       type t = { lock : Mutex.t; mutable count : int }\n\
       let bump (t : t) =\n\
      \  Mutex.lock t.lock; t.count <- t.count + 1; Mutex.unlock t.lock\n\
       let total (t : t) xs =\n\
      \  Exec.map\n\
      \    (fun x ->\n\
      \      Mutex.lock t.lock;\n\
      \      let c = t.count in\n\
      \      Mutex.unlock t.lock;\n\
      \      x + c)\n\
      \    xs\n" );
    ( "RAC002 unknown callee inside a bare critical section",
      Lint_rules.rac002,
      true,
      "let lock = Mutex.create ()\n\
       let risky f =\n\
      \  Mutex.lock lock;\n\
      \  let r = f () in\n\
      \  Mutex.unlock lock;\n\
      \  r\n" );
    ( "RAC002 near miss: Mutex.protect releases on any exit",
      Lint_rules.rac002,
      false,
      "let lock = Mutex.create ()\n\
       let safe f = Mutex.protect lock (fun () -> f ())\n" );
    ( "RAC003 helper re-acquires the caller's mutex",
      Lint_rules.rac003,
      true,
      "let lock = Mutex.create ()\n\
       let helper () = Mutex.lock lock; Mutex.unlock lock\n\
       let outer () = Mutex.lock lock; helper (); Mutex.unlock lock\n" );
    ( "RAC003 near miss: released before the helper runs",
      Lint_rules.rac003,
      false,
      "let lock = Mutex.create ()\n\
       let helper () = Mutex.lock lock; Mutex.unlock lock\n\
       let outer () = Mutex.lock lock; Mutex.unlock lock; helper ()\n" );
    ( "RAC004 Atomic.set of a value derived from Atomic.get",
      Lint_rules.rac004,
      true,
      "let hits = Atomic.make 0\n\
       let bump () = Atomic.set hits (Atomic.get hits + 1)\n" );
    ( "RAC004 near miss: fetch_and_add and pure save/restore",
      Lint_rules.rac004,
      false,
      "let hits = Atomic.make 0\n\
       let bump () = ignore (Atomic.fetch_and_add hits 1)\n\
       let with_reset f =\n\
      \  let saved = Atomic.get hits in\n\
      \  f ();\n\
      \  Atomic.set hits saved\n" );
    ( "RAC005 rename on disk while holding the lock",
      Lint_rules.rac005,
      true,
      "let lock = Mutex.create ()\n\
       let save path =\n\
      \  Mutex.protect lock (fun () -> Sys.rename path (path ^ \".bak\"))\n" );
    ( "RAC005 near miss: [@blocking_ok] sanctions IO under this lock",
      Lint_rules.rac005,
      false,
      "let lock = Mutex.create ()\n\
       let[@blocking_ok] save path =\n\
      \  Mutex.protect lock (fun () -> Sys.rename path (path ^ \".bak\"))\n" ) ]

let make_temp_dir () =
  let path = Filename.temp_file "subscale_lint_selftest" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Compile one crafted source and lint its .cmt; [Error] carries a
   human-readable reason (compiler missing, unexpected diagnostics...). *)
let lint_snippet ~dir ~index source =
  let base = Printf.sprintf "selftest_case_%d" index in
  let ml = Filename.concat dir (base ^ ".ml") in
  write_file ml source;
  let cmd =
    Filename.quote_command "ocamlc" [ "-bin-annot"; "-w"; "-a"; "-c"; ml; "-I"; dir ]
  in
  if Sys.command cmd <> 0 then Error ("compilation failed: " ^ cmd)
  else
    match Cmt_load.load (Filename.concat dir (base ^ ".cmt")) with
    | Cmt_load.Unit u ->
      (* single-unit ownership/lockset fixpoint: the crafted sources
         define their helpers locally, so the ALS and RAC summaries
         resolve within the unit *)
      let alias_env = Summary.compute (Callgraph.build [ u ]) in
      let races_env = Races.analyze alias_env in
      Ok
        (Purity.check ~source:u.Cmt_load.source u.Cmt_load.structure
         @ Hygiene.check ~source:u.Cmt_load.source ~exempt_output:false
             u.Cmt_load.structure
         @ Discipline.check ~source:u.Cmt_load.source u.Cmt_load.structure
         @ Units.check ~source:u.Cmt_load.source u.Cmt_load.structure
         @ Alias.check alias_env ~source:u.Cmt_load.source
         @ Races.check races_env ~source:u.Cmt_load.source)
    | Cmt_load.Skipped -> Error "crafted cmt skipped"
    | Cmt_load.Unreadable (_, msg) -> Error ("crafted cmt unreadable: " ^ msg)

let registry_results () =
  let collision_free =
    match Check.Rules.selftest () with
    | n -> { name = "rule-id registry"; ok = true; detail = Printf.sprintf "%d unique rule id(s)" n }
    | exception ((Check.Rules.Duplicate_rule _ | Failure _) as e) ->
      { name = "rule-id registry"; ok = false; detail = Printexc.to_string e }
  in
  let duplicate_rejected =
    match Check.Rules.register ~summary:"deliberate collision" Lint_rules.lnt001 with
    | (_ : string) ->
      { name = "duplicate LNT id rejected"; ok = false;
        detail = "re-registration of LNT001 was accepted" }
    | exception Check.Rules.Duplicate_rule _ ->
      { name = "duplicate LNT id rejected"; ok = true; detail = "Duplicate_rule" }
  in
  let unit_table =
    match Unit_sig.selftest () with
    | n ->
      { name = "unit signature table"; ok = true;
        detail = Printf.sprintf "%d seeded entr(ies)" n }
    | exception ((Failure _ | Invalid_argument _) as e) ->
      { name = "unit signature table"; ok = false; detail = Printexc.to_string e }
  in
  [ collision_free; duplicate_rejected; unit_table ]

let run () =
  let dir = make_temp_dir () in
  let case_results =
    List.mapi
      (fun index (name, rule, must_fire, source) ->
        match lint_snippet ~dir ~index source with
        | Error detail -> { name; ok = false; detail }
        | Ok diags ->
          let fired = List.exists (fun d -> d.D.rule = rule) diags in
          let isolated = List.for_all (fun d -> d.D.rule = rule) diags in
          if must_fire then
            if fired && isolated then { name; ok = true; detail = rule }
            else
              { name; ok = false;
                detail =
                  Printf.sprintf "expected only %s, got [%s]" rule
                    (String.concat "; " (List.map D.to_string diags)) }
          else if diags = [] then { name; ok = true; detail = "clean" }
          else
            { name; ok = false;
              detail =
                Printf.sprintf "expected clean, got [%s]"
                  (String.concat "; " (List.map D.to_string diags)) })
      cases
  in
  registry_results () @ case_results
