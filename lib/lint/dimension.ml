(* The dimension lattice behind the UNT unit-inference pass.

   Physical dimensions form the rational-exponent abelian group over the
   base quantities {m, s, V, A, K} — metres, seconds, volts, amperes,
   kelvins — which spans everything in the Eq. 1–8 model chain (F = A·s/V,
   J = V·A·s, W = V·A, eV reduces to V for the per-charge conventions this
   codebase uses).  Exponents are exact rationals so sqrt halves them
   without rounding: sqrt(m^2/V) = m/V^(1/2).

   On top of the group sit two abstract elements:

   - [Unknown] — the pass could not determine a dimension.  Unknown is
     absorbing under multiplication and assumed-compatible under addition;
     it never fires a rule (sound-but-conservative, like LNT001).
   - [Const] — a numeric literal.  Literals are dimension-polymorphic:
     [2.0 *. v] scales a voltage, [v +. 0.5] offsets one, so Const is the
     multiplicative identity and adopts the other side's dimension under
     addition.

   Orthogonally to the exponents, a dimension carries a [scale] tag: values
   produced by an explicit display conversion (Constants.to_nm,
   Constants.nm, per-cm^3 doping helpers) are tagged [Display] with the
   unit string that produced them.  Combining a Display-tagged length with
   an SI length is the nm-vs-cm trap UNT003 exists for. *)

(* --- exact rational exponents ------------------------------------------- *)

type rat = { num : int; den : int }
(* normalized: den > 0, gcd(|num|, den) = 1, zero is 0/1 *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let rat num den =
  if den = 0 then invalid_arg "Dimension.rat: zero denominator";
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let g = gcd (abs num) (abs den) in
    { num = s * num / g; den = s * den / g }

let rat_of_int n = { num = n; den = 1 }
let rat_zero = rat_of_int 0
let rat_add a b = rat ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let rat_neg a = { a with num = -a.num }
let rat_mul a b = rat (a.num * b.num) (a.den * b.den)
let rat_is_zero a = a.num = 0

let rat_to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

(* --- dimensions --------------------------------------------------------- *)

type scale = Si | Display of string

type dim = { m : rat; s : rat; v : rat; a : rat; k : rat; scale : scale }

type t = Unknown | Const | Dim of dim

let no_exponents = { m = rat_zero; s = rat_zero; v = rat_zero; a = rat_zero; k = rat_zero; scale = Si }

let dimensionless = Dim no_exponents

let base ?(scale = Si) which =
  let d = { no_exponents with scale } in
  Dim
    (match which with
     | `M -> { d with m = rat_of_int 1 }
     | `S -> { d with s = rat_of_int 1 }
     | `V -> { d with v = rat_of_int 1 }
     | `A -> { d with a = rat_of_int 1 }
     | `K -> { d with k = rat_of_int 1 })

let is_dimensionless = function
  | Dim d ->
    rat_is_zero d.m && rat_is_zero d.s && rat_is_zero d.v && rat_is_zero d.a
    && rat_is_zero d.k
  | Unknown | Const -> false

let equal_exponents a b =
  a.m = b.m && a.s = b.s && a.v = b.v && a.a = b.a && a.k = b.k

(* The scale of a product: display taint is sticky (nm * nm is still a
   display-scaled quantity), and a clash of two distinct display units is
   folded to the left tag — the exponent check is what matters there. *)
let combine_scale a b =
  match (a, b) with
  | Si, Si -> Si
  | Display _, _ -> a
  | Si, Display _ -> b

let scale_conflict a b =
  match (a.scale, b.scale) with
  | Si, Si -> false
  | Display da, Display db -> da <> db
  | Si, Display _ | Display _, Si ->
    (* Dimensionless values carry no length/voltage content, so their scale
       tag is vacuous; only a clash between dimensioned values matters. *)
    true

let scale_label = function Si -> "SI" | Display u -> u

(* --- group operations --------------------------------------------------- *)

let mul x y =
  match (x, y) with
  | Unknown, _ | _, Unknown -> Unknown
  | Const, d | d, Const -> d
  | Dim a, Dim b ->
    Dim
      { m = rat_add a.m b.m;
        s = rat_add a.s b.s;
        v = rat_add a.v b.v;
        a = rat_add a.a b.a;
        k = rat_add a.k b.k;
        scale = combine_scale a.scale b.scale }

let inv = function
  | Unknown -> Unknown
  | Const -> Const
  | Dim a ->
    Dim
      { a with
        m = rat_neg a.m;
        s = rat_neg a.s;
        v = rat_neg a.v;
        a = rat_neg a.a;
        k = rat_neg a.k }

let div x y = mul x (inv y)

let pow x r =
  match x with
  | Unknown -> Unknown
  | Const -> Const
  | Dim a ->
    if rat_is_zero r then dimensionless
    else
      Dim
        { a with
          m = rat_mul a.m r;
          s = rat_mul a.s r;
          v = rat_mul a.v r;
          a = rat_mul a.a r;
          k = rat_mul a.k r }

let sqrt_ x = pow x (rat 1 2)

(* --- rendering ---------------------------------------------------------- *)

(* Render "m^2*V/s" style: positive exponents first, then a "/" section for
   negatives; "1" when everything cancels. *)
let to_string = function
  | Unknown -> "unknown"
  | Const -> "numeric literal"
  | Dim d ->
    let comps = [ ("m", d.m); ("s", d.s); ("V", d.v); ("A", d.a); ("K", d.k) ] in
    let atom (n, e) =
      if e = rat_of_int 1 then n
      else if e.den = 1 then Printf.sprintf "%s^%d" n e.num
      else Printf.sprintf "%s^(%s)" n (rat_to_string e)
    in
    let pos = List.filter (fun (_, e) -> e.num > 0) comps in
    let neg =
      List.filter_map
        (fun (n, e) -> if e.num < 0 then Some (n, rat_neg e) else None)
        comps
    in
    let body =
      match (pos, neg) with
      | [], [] -> "1"
      | _, [] -> String.concat "*" (List.map atom pos)
      | [], _ -> "1/" ^ String.concat "/" (List.map atom neg)
      | _, _ ->
        String.concat "*" (List.map atom pos)
        ^ "/"
        ^ String.concat "/" (List.map atom neg)
    in
    (match d.scale with
     | Si -> body
     | Display u -> Printf.sprintf "%s [display:%s]" body u)

(* --- additive combination ----------------------------------------------- *)

(* The judgment for [+.], [-.], comparisons, Float.min/max, and if/match
   branch joins: either the two sides agree (possibly by one side adopting
   the other), or they conflict in exponents (UNT001 territory) or in
   length scale only (UNT003 territory — same physics, different unit
   system, the nm-vs-cm trap). *)
type combination =
  | Ok_dim of t
  | Mismatch of dim * dim       (* incompatible exponents *)
  | Scale_mix of dim * dim      (* same exponents, conflicting scale tags *)

(* Unknown adopts the known side: assuming the combination is correct
   (which is what "never fire on unknown" means) implies the unknown
   operand had the known operand's dimension, so the sum carries it too.
   This keeps inference alive through closure parameters and partial
   seeds without ever manufacturing a firing. *)
let add x y =
  match (x, y) with
  | Unknown, Unknown -> Ok_dim Unknown
  | Unknown, d | d, Unknown -> Ok_dim d
  | Const, d | d, Const -> Ok_dim d
  | Dim a, Dim b ->
    if not (equal_exponents a b) then Mismatch (a, b)
    else if scale_conflict a b then Scale_mix (a, b)
    else Ok_dim (Dim { a with scale = combine_scale a.scale b.scale })

(* Branch join for if/match/try: agreement propagates, disagreement (or any
   Unknown arm) degrades to Unknown rather than firing — control-flow joins
   are not arithmetic, so a mismatch there is not evidence of a bug. *)
let join x y =
  match (x, y) with
  | Const, d | d, Const -> d
  | Dim a, Dim b when equal_exponents a b && not (scale_conflict a b) ->
    Dim { a with scale = combine_scale a.scale b.scale }
  | _ -> Unknown
