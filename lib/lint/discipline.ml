(* LNT004 — diagnostic discipline.

   Every rule id in this repo is minted through [Check.Rules.register],
   which turns id collisions into a startup failure.  A literal string
   handed straight to [Diagnostic.error ~rule:"..."] bypasses that
   registry: the id is invisible to [Rules.all], absent from selftests,
   and free to collide silently.  The pass flags any [Diagnostic.error/
   warning/info/make] application whose [~rule] argument is a string
   constant — the fix is a one-liner:

     let rule = Rules.register ~summary:"..." "my-rule"  *)

module D = Check.Diagnostic
open Typedtree

let constructors =
  [ "Diagnostic.error"; "Diagnostic.warning"; "Diagnostic.info"; "Diagnostic.make" ]

let check ~source (str : structure) : D.t list =
  let diags = ref [] in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | Some p when Paths.suffix_matches ~candidates:constructors (Paths.path_name p) ->
          List.iter
            (function
              | ( Asttypes.Labelled "rule",
                  Some
                    ({ exp_desc = Texp_constant (Asttypes.Const_string (lit, _, _)); _ } as
                     arg) ) ->
                diags :=
                  D.error ~rule:Lint_rules.lnt004
                    ~location:(Srcloc.to_string ~source arg.exp_loc)
                    (Printf.sprintf
                       "diagnostic rule id %S is a literal, not minted via Check.Rules"
                       lit)
                    ~hint:
                      "bind it once: let rule = Check.Rules.register ~summary:\"...\" \
                       \"...\" and pass ~rule"
                  :: !diags
              | _ -> ())
            args
        | _ -> ())
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !diags
