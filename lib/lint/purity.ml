(* LNT001 — the purity/race pass.

   Every literal closure handed to the domain-parallel entry points
   (Exec.map/map2/mapi/map_array, Pool.map) runs concurrently on several
   domains, so it must not touch mutable state it shares with anything
   else.  The pass walks each such closure's typedtree and convicts:

   - captures of always-hazardous containers (ref, Hashtbl.t, Buffer.t,
     Queue.t, Stack.t) and of the hot path's mutable flat buffers
     (Fvec.t/Field.t/Bigarray.Array1.t, solver scratch) — even a read
     races with a writer elsewhere;
   - mutations (r := v, x.f <- v, Array.set/fill/blit, Hashtbl.add/...,
     Bytes.set, instance variables) whose target is captured, global, or
     not provably a value the closure allocated itself.

   Sanctioned escape hatches are whitelisted: identifiers reached through
   [Exec.Memo] or [Obs] (their tables/counters are domain-safe by
   construction and audited dynamically by [subscale audit]), and
   [Atomic.t] (memory-model-sanctioned, cannot tear).

   The analysis is sound-but-conservative over the constructs it models;
   the deliberate approximations (named-function arguments, aliasing
   through non-trivial bindings) are documented in DESIGN.md and
   backstopped by the dynamic schedule audit. *)

module D = Check.Diagnostic
open Typedtree

let target_functions =
  [ "Exec.map"; "Exec.map2"; "Exec.mapi"; "Exec.map_array"; "Pool.map" ]

(* Identifier paths reached through these prefixes are sanctioned shared
   state.  "Memo." covers lib/exec's own internal call sites, where the
   module is in scope unqualified. *)
let whitelisted_prefixes = [ "Exec.Memo."; "Obs."; "Memo."; "Metrics." ]

let whitelisted name =
  List.exists
    (fun p ->
      String.length name >= String.length p && String.sub name 0 (String.length p) = p)
    whitelisted_prefixes

let ref_mutators = [ ":="; "incr"; "decr" ]

let hashtbl_mutators =
  [ "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace" ]

let container_mutators = [ "Buffer.add_string"; "Buffer.add_char"; "Buffer.clear";
                           "Buffer.reset"; "Queue.push"; "Queue.add"; "Queue.pop";
                           "Queue.take"; "Queue.clear"; "Stack.push"; "Stack.pop";
                           "Stack.clear" ]

let array_mutators =
  [ "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "Float.Array.set"; "Floatarray.set" ]

(* Root identifier of an lvalue-ish expression: [r], [state.field],
   [grid.cells] all root at the identifier; anything else is opaque. *)
let rec root_path (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e', _, _) -> root_path e'
  | _ -> None

type mutation = { target : Path.t option; kind : string; mut_loc : Location.t }

type lambda_facts = {
  bound : (string, unit) Hashtbl.t;        (* Ident.unique_name of locally bound ids *)
  aliases : (string, Path.t) Hashtbl.t;    (* let x = y aliases worth tracking *)
  mutable uses : (Path.t * Types.type_expr * Location.t) list;
  mutable mutations : mutation list;
}

(* One pass over a closure body collecting bindings, identifier uses and
   mutation sites; judgement happens afterwards so alias chains resolve
   regardless of binding order. *)
let collect (lam : expression) : lambda_facts =
  let facts =
    { bound = Hashtbl.create 32; aliases = Hashtbl.create 8; uses = []; mutations = [] }
  in
  let add_mutation ?target kind loc =
    facts.mutations <- { target; kind; mut_loc = loc } :: facts.mutations
  in
  let first_positional args =
    List.find_map
      (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
    fun it p ->
    List.iter
      (fun id -> Hashtbl.replace facts.bound (Ident.unique_name id) ())
      (pat_bound_idents p);
    Tast_iterator.default_iterator.pat it p
  in
  let value_binding it vb =
    (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
     | Tpat_var (id, _), Texp_ident (p, _, vd)
       when Paths.is_mutable_container vd.Types.val_type
            || Paths.is_array vd.Types.val_type
            || Paths.is_flat_buffer vd.Types.val_type ->
       (* [let a = outer_array in ...]: a is bound, but mutating it mutates
          the aliased value — remember the chain. *)
       Hashtbl.replace facts.aliases (Ident.unique_name id) p
     | _ -> ());
    Tast_iterator.default_iterator.value_binding it vb
  in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_ident (p, _, vd) -> facts.uses <- (p, vd.Types.val_type, e.exp_loc) :: facts.uses
     | Texp_setfield (target, _, _, _) ->
       add_mutation ?target:(root_path target) "record field assignment" e.exp_loc
     | Texp_setinstvar _ -> add_mutation "instance variable assignment" e.exp_loc
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | None -> ()
        | Some p ->
          let name = Paths.path_name p in
          if List.mem name ref_mutators then
            (match first_positional args with
             | Some a -> add_mutation ?target:(root_path a) (name ^ " on ref") e.exp_loc
             | None -> ())
          else if Paths.suffix_matches ~candidates:hashtbl_mutators name
               || Paths.suffix_matches ~candidates:container_mutators name then
            (match first_positional args with
             | Some a -> add_mutation ?target:(root_path a) name e.exp_loc
             | None -> ())
          else if Paths.suffix_matches ~candidates:array_mutators name then
            (* set/fill/blit: any array/bytes argument is conservatively
               treated as mutated (blit's source included). *)
            List.iter
              (function
                | _, Some (a : expression) when Paths.is_array a.exp_type ->
                  add_mutation ?target:(root_path a) name a.exp_loc
                | _ -> ())
              args)
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with pat; value_binding; expr } in
  it.expr it lam;
  facts

(* Resolve a path to Local (bound inside the closure, transitively through
   recorded aliases) or Captured.  Module-level values (Pdot, or Pident of
   the enclosing unit's own toplevel lets) are never in [bound], so they
   resolve to Captured — which is exactly right: toplevel refs are shared
   across every domain. *)
let rec resolve facts ~depth p =
  match p with
  | Path.Pident id ->
    let key = Ident.unique_name id in
    (match Hashtbl.find_opt facts.aliases key with
     | Some p' when depth < 8 -> resolve facts ~depth:(depth + 1) p'
     | Some _ -> `Captured
     | None -> if Hashtbl.mem facts.bound key then `Local else `Captured)
  | _ -> `Captured

let short_path p =
  match p with Path.Pident id -> Ident.name id | _ -> Paths.path_name p

(* Judge one closure passed to [caller]; emits at most one diagnostic per
   (identifier, kind) so a ref used ten times reads as one finding. *)
let judge ~source ~caller (lam : expression) : D.t list =
  let facts = collect lam in
  let seen = Hashtbl.create 8 in
  let once key f = if Hashtbl.mem seen key then [] else (Hashtbl.add seen key (); f ()) in
  let captures =
    List.concat_map
      (fun (p, ty, loc) ->
        let name = Paths.path_name p in
        if whitelisted name then []
        else if not (Paths.is_mutable_container ty || Paths.is_flat_buffer ty) then []
        else
          match resolve facts ~depth:0 p with
          | `Local -> []
          | `Captured ->
            once ("cap:" ^ name) (fun () ->
                [ D.error ~rule:Lint_rules.lnt001
                    ~location:(Srcloc.to_string ~source loc)
                    (Printf.sprintf
                       "closure passed to %s captures mutable state: %s : %s" caller
                       (short_path p) (Paths.describe_type ty))
                    ~hint:
                      "pass the data immutably, or route shared state through the \
                       domain-safe Exec.Memo / Obs.Metrics APIs" ]))
      (List.rev facts.uses)
  in
  let mutations =
    List.concat_map
      (fun { target; kind; mut_loc } ->
        match target with
        | Some p ->
          let name = Paths.path_name p in
          if whitelisted name then []
          else (
            match resolve facts ~depth:0 p with
            | `Local -> []
            | `Captured ->
              once ("mut:" ^ name ^ ":" ^ kind) (fun () ->
                  [ D.error ~rule:Lint_rules.lnt001
                      ~location:(Srcloc.to_string ~source mut_loc)
                      (Printf.sprintf "closure passed to %s mutates %s (%s)" caller
                         (short_path p) kind)
                      ~hint:
                        "only state allocated inside the closure may be mutated; \
                         shared results belong in the returned value" ]))
        | None ->
          once ("mut:<opaque>:" ^ kind) (fun () ->
              [ D.error ~rule:Lint_rules.lnt001
                  ~location:(Srcloc.to_string ~source mut_loc)
                  (Printf.sprintf
                     "closure passed to %s mutates a value the purity pass cannot \
                      prove domain-local (%s)"
                     caller kind)
                  ~hint:"bind the mutated value to a name allocated inside the closure" ]))
      (List.rev facts.mutations)
  in
  captures @ mutations

(* The pass proper: find applications of the parallel entry points and
   judge every literal-closure argument. *)
let check ~source (str : structure) : D.t list =
  let diags = ref [] in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply (fn, args) ->
       (match Paths.applied_path fn with
        | Some p when Paths.suffix_matches ~candidates:target_functions (Paths.path_name p) ->
          let caller = Paths.path_name p in
          List.iter
            (function
              | _, Some ({ exp_desc = Texp_function _; _ } as lam) ->
                diags := judge ~source ~caller lam @ !diags
              | _ -> ())
            args
        | _ -> ())
     | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !diags
