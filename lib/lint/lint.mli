(** Lint: typedtree-based source linter behind [subscale lint].

    Reads the .cmt artifacts dune already produces; never re-typechecks.
    Findings are {!Check.Diagnostic}s with rule ids LNT001–LNT005,
    UNT001–UNT005, ALS001–ALS004 and RAC001–RAC005 minted through
    {!Check.Rules}. *)

module Rules = Lint_rules
module Baseline = Baseline
module Purity = Purity
module Hygiene = Hygiene
module Discipline = Discipline
module Dimension = Dimension
module Unit_sig = Unit_sig
module Units = Units
module Cmt_load = Cmt_load
module Callgraph = Callgraph
module Summary = Summary
module Alias = Alias
module Lockset = Lockset
module Races = Races
module Selftest = Selftest

type file_report = { source : string; diags : Check.Diagnostic.t list }

val exempt_output : string -> bool
(** True for the sanctioned output layers (lib/report, lib/obs), where
    LNT005 does not apply. *)

val alias_env : Cmt_load.unit_info list -> Summary.env
(** The interprocedural ownership fixpoint over a set of loaded units —
    build it once per tree and thread it to {!lint_unit}. *)

val races_env : Summary.env -> Races.t
(** The lockset/race analysis over an already-computed summary fixpoint —
    build it once per tree and thread it to {!lint_unit}. *)

val lint_unit :
  ?units:bool ->
  ?alias_env:Summary.env ->
  ?races_env:Races.t ->
  Cmt_load.unit_info ->
  file_report
(** Run every pass over one loaded unit; diagnostics come back sorted.
    [units] (default true) enables the UNT dimensional-analysis pass;
    passing [alias_env] enables the ALS buffer-ownership pass and
    [races_env] the RAC lockset pass. *)

val lint_cmt : ?units:bool -> ?alias:bool -> ?races:bool -> string -> file_report option
(** Lint one .cmt file.  [None] when the artifact holds no implementation
    typedtree (interfaces, packed or generated modules); unreadable
    artifacts yield a [lint-unreadable-cmt] warning report.  [alias] and
    [races] (default true) run ALS/RAC with summaries from this unit
    alone. *)

val lint_root : ?units:bool -> ?alias:bool -> ?races:bool -> string -> file_report list
(** Lint every .cmt under a directory tree (sorted by source path).
    [alias]/[races] (default true) compute the interprocedural fixpoint
    over the whole tree first, so ALS and RAC see cross-unit call
    chains. *)

val all_diags : file_report list -> Check.Diagnostic.t list

val rules_markdown : unit -> string
(** The [--rules] markdown table (checked in as docs/lint-rules.md). *)
