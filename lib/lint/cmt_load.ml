(* Locating and reading the .cmt typedtree artifacts dune already produces
   (dune passes -bin-annot unconditionally), so linting never re-typechecks
   anything: `dune build` is the only prerequisite.

   Under _build/default/lib the artifacts live at
   lib/<dir>/.<libname>.objs/byte/<Mangled__Module>.cmt; we scan
   recursively so the layout details never matter. *)

type unit_info = {
  cmt_path : string;
  source : string;  (* as recorded by the compiler, e.g. "lib/exec/pool.ml" *)
  structure : Typedtree.structure;
}

type load_result = Unit of unit_info | Skipped | Unreadable of string * string

(* Generated wrapper modules (exec__.ml-gen and friends) carry no source
   of ours; interfaces and partial implementations have no typedtree to
   lint. *)
let load cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e -> Unreadable (cmt_path, Printexc.to_string e)
  | cmt ->
    (match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
     | Cmt_format.Implementation structure, Some source
       when not (Filename.check_suffix source "-gen") ->
       Unit { cmt_path; source; structure }
     | _ -> Skipped)

let rec scan_dir acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then scan_dir acc path
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries

(* A multi-context _build (dune's `(context ...)` stanzas) holds one .cmt
   per context for the same source; linting all of them would duplicate
   every diagnostic.  Rank candidate paths so the `default` context wins,
   then break ties lexicographically — the choice is deterministic, not
   directory-order luck. *)
let context_rank path =
  if List.mem "default" (String.split_on_char '/' path) then 0 else 1

let better_path a b =
  let r = compare (context_rank a) (context_rank b) in
  if r <> 0 then r < 0 else String.compare a b < 0

(* The same artifact seen through two contexts has two paths that differ
   only in the segment after _build; key unreadable reports on the
   context-free remainder so one broken .cmt is reported once. *)
let context_free_key path =
  let rec strip = function
    | [] -> []
    | "_build" :: _ctx :: rest -> "_build" :: strip rest
    | seg :: rest -> seg :: strip rest
  in
  String.concat "/" (strip (String.split_on_char '/' path))

(* Every .cmt under [root], loaded, deduplicated by source file (preferring
   the default context) and sorted by source path so reports are stable
   whatever the directory order. *)
let load_root root =
  let cmts = List.rev (scan_dir [] root) in
  let chosen : (string, unit_info) Hashtbl.t = Hashtbl.create 64 in
  let unreadable : (string, string * string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun path ->
      match load path with
      | Unit u ->
        (match Hashtbl.find_opt chosen u.source with
         | None -> Hashtbl.add chosen u.source u
         | Some prev ->
           if better_path u.cmt_path prev.cmt_path then
             Hashtbl.replace chosen u.source u)
      | Skipped -> ()
      | Unreadable (p, msg) ->
        let key = context_free_key p in
        (match Hashtbl.find_opt unreadable key with
         | None -> Hashtbl.add unreadable key (p, msg)
         | Some (prev_p, _) ->
           if better_path p prev_p then Hashtbl.replace unreadable key (p, msg)))
    cmts;
  let units = Hashtbl.fold (fun _ u acc -> u :: acc) chosen [] in
  let bad = Hashtbl.fold (fun _ pm acc -> pm :: acc) unreadable [] in
  ( List.sort (fun a b -> String.compare a.source b.source) units,
    List.sort (fun (a, _) (b, _) -> String.compare a b) bad )
