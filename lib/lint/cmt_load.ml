(* Locating and reading the .cmt typedtree artifacts dune already produces
   (dune passes -bin-annot unconditionally), so linting never re-typechecks
   anything: `dune build` is the only prerequisite.

   Under _build/default/lib the artifacts live at
   lib/<dir>/.<libname>.objs/byte/<Mangled__Module>.cmt; we scan
   recursively so the layout details never matter. *)

type unit_info = {
  cmt_path : string;
  source : string;  (* as recorded by the compiler, e.g. "lib/exec/pool.ml" *)
  structure : Typedtree.structure;
}

type load_result = Unit of unit_info | Skipped | Unreadable of string * string

(* Generated wrapper modules (exec__.ml-gen and friends) carry no source
   of ours; interfaces and partial implementations have no typedtree to
   lint. *)
let load cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e -> Unreadable (cmt_path, Printexc.to_string e)
  | cmt ->
    (match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
     | Cmt_format.Implementation structure, Some source
       when not (Filename.check_suffix source "-gen") ->
       Unit { cmt_path; source; structure }
     | _ -> Skipped)

let rec scan_dir acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then scan_dir acc path
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries

(* Every .cmt under [root], loaded, deduplicated by source file and sorted
   by source path so reports are stable whatever the directory order. *)
let load_root root =
  let cmts = List.rev (scan_dir [] root) in
  let seen = Hashtbl.create 64 in
  let units, unreadable =
    List.fold_left
      (fun (units, bad) path ->
        match load path with
        | Unit u ->
          if Hashtbl.mem seen u.source then (units, bad)
          else (Hashtbl.add seen u.source (); (u :: units, bad))
        | Skipped -> (units, bad)
        | Unreadable (p, msg) -> (units, (p, msg) :: bad))
      ([], []) cmts
  in
  ( List.sort (fun a b -> String.compare a.source b.source) units,
    List.rev unreadable )
