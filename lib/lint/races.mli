(** RAC001-005 — the race/deadlock/lock-discipline pass.

    Consumes {!Lockset} events over the whole callgraph:

    - {b RAC001} (error): shared mutable state (a mutable field or module
      container living next to a mutex) reachable from a domain-crossing
      closure, accessed with an inconsistent lockset and not [Atomic.t];
    - {b RAC002} (error): a critical section that can raise between
      [Mutex.lock] and [Mutex.unlock] without [Fun.protect]/[Mutex.protect];
    - {b RAC003} (error): self-deadlock (re-acquiring a held non-reentrant
      stdlib mutex, directly or through a resolved call) and lock-order
      inversion across the program;
    - {b RAC004} (warning): torn atomic read-modify-write —
      [Atomic.set a (f (Atomic.get a))] where [fetch_and_add] /
      [compare_and_set] is required;
    - {b RAC005} (warning): a blocking syscall while holding a lock,
      [[@blocking_ok]] opting a binding out. *)

type t

val analyze : Summary.env -> t
(** Run the lockset walk over every definition and resolve the global
    verdicts (RAC001 lockset intersections, RAC003 order inversions). *)

val check : t -> source:string -> Check.Diagnostic.t list
(** Diagnostics attributed to one source file, deduplicated per site. *)

val selftest : unit -> int
