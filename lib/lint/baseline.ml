(* Grandfathered findings.

   One entry per line:

     <rule> <file>:<line> — justification

   Entries match on (rule, file, line) — the column is deliberately
   ignored so unrelated edits on the same line don't churn the file — and
   every entry must keep matching something: stale entries are reported,
   so the baseline shrinks monotonically as findings get fixed. *)

module D = Check.Diagnostic

type entry = { rule : string; file : string; line : int; note : string }
type t = entry list

let parse_location s =
  (* "file:line" or "file:line:col" *)
  match String.split_on_char ':' s with
  | [ file; line ] | [ file; line; _ ] ->
    (match int_of_string_opt line with Some l -> Some (file, l) | None -> None)
  | _ -> None

exception Malformed of int * string

let of_string text =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | None -> raise (Malformed (i + 1, line))
        | Some sp ->
          let rule = String.sub line 0 sp in
          let rest = String.trim (String.sub line sp (String.length line - sp)) in
          let loc_str, note =
            match String.index_opt rest ' ' with
            | None -> (rest, "")
            | Some sp2 ->
              ( String.sub rest 0 sp2,
                String.trim (String.sub rest sp2 (String.length rest - sp2)) )
          in
          (match parse_location loc_str with
           | Some (file, l) -> entries := { rule; file; line = l; note } :: !entries
           | None -> raise (Malformed (i + 1, line))))
    (String.split_on_char '\n' text);
  List.rev !entries

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    of_string text
  end

let header =
  "# subscale lint baseline — grandfathered findings, one per line:\n\
   #   <rule> <file>:<line> — justification\n\
   # Matching ignores the column; stale entries fail `subscale lint --strict`.\n"

(* [--update-baseline] stamps unjustified entries with a "— TODO: justify"
   note; [--strict] refuses to treat those as justified keeps, so a
   regenerated baseline cannot silently launder findings. *)
let is_todo e =
  let has_prefix p = String.length e.note >= String.length p && String.sub e.note 0 (String.length p) = p in
  has_prefix "TODO" || has_prefix "— TODO" || has_prefix "- TODO"

let todos t = List.filter is_todo t

let entry_to_string e =
  Printf.sprintf "%s %s:%d%s" e.rule e.file e.line
    (if e.note = "" then "" else " " ^ e.note)

let to_string entries =
  header ^ String.concat "" (List.map (fun e -> entry_to_string e ^ "\n") entries)

let diag_key (d : D.t) =
  match parse_location d.D.location with
  | Some (file, line) -> Some (d.D.rule, file, line)
  | None -> None

let entry_of_diag ?(note = "") (d : D.t) =
  match diag_key d with
  | Some (rule, file, line) -> Some { rule; file; line; note }
  | None -> None

type application = {
  kept : D.t list;        (* findings not covered by the baseline *)
  suppressed : D.t list;  (* findings the baseline grandfathers *)
  stale : entry list;     (* entries that matched nothing this run *)
}

let apply (baseline : t) diags =
  let matched : (entry, unit) Hashtbl.t = Hashtbl.create 16 in
  let covered d =
    match diag_key d with
    | None -> None
    | Some (rule, file, line) ->
      List.find_opt
        (fun e -> e.rule = rule && e.file = file && e.line = line)
        baseline
  in
  let kept, suppressed =
    List.partition_map
      (fun d ->
        match covered d with
        | Some e ->
          Hashtbl.replace matched e ();
          Right d
        | None -> Left d)
      diags
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem matched e)) baseline in
  { kept; suppressed; stale }
