(** Typedtree locations rendered as "file:line:col". *)

val to_string : source:string -> Location.t -> string
val line : Location.t -> int
