(* Render typedtree locations as "file:line:col" diagnostic locations.

   The file name comes from the runner (the .cmt's recorded source path,
   e.g. "lib/core/experiments.ml") so locations are stable relative paths
   whatever directory the compiler happened to run in. *)

let to_string ~source (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d:%d" source p.Lexing.pos_lnum (p.Lexing.pos_cnum - p.Lexing.pos_bol)

let line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
