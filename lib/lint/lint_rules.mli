(** The LNT rule family: ids minted through {!Check.Rules} (so a collision
    with any DRC or AUD rule fails at link time) plus the metadata behind
    [subscale lint --rules]. *)

type meta = {
  id : string;
  severity : Check.Diagnostic.severity;
  title : string;
  fires_on : string;
  stays_clean_on : string;
}

val lnt001 : string
(** Purity/race: parallel closures must not capture or mutate unsanctioned
    mutable state. *)

val lnt002 : string
(** Float discipline: no polymorphic [=]/[compare] on floats. *)

val lnt003 : string
(** Exception hygiene: no non-re-raising catch-alls. *)

val lnt004 : string
(** Diagnostic discipline: rule ids only minted via [Check.Rules]. *)

val lnt005 : string
(** Output hygiene: no direct printing in lib/. *)

val unt001 : string
(** Dimensional analysis: additive/comparison combination of incompatible
    dimensions. *)

val unt002 : string
(** Dimensional analysis: non-dimensionless argument to exp/log/log10/**. *)

val unt003 : string
(** Dimensional analysis: display-unit (nm, cm^-3) and SI values mixed. *)

val unt004 : string
(** Dimensional analysis: argument contradicts a seeded signature. *)

val unt005 : string
(** Dimensional analysis: dimension lost through a container round-trip. *)

val als001 : string
(** Buffer ownership: parallel closure mutates a captured flat buffer. *)

val als002 : string
(** Buffer ownership: solver scratch escapes or is shared by overlapping
    solves. *)

val als003 : string
(** Buffer ownership: solver output buffer aliases an input of the same
    call. *)

val als004 : string
(** Buffer ownership: function returns a buffer it also retains
    ([@owned] asserts deliberate sharing). *)

val rac001 : string
(** Lockset: shared mutable state crosses domains without a consistent
    lockset. *)

val rac002 : string
(** Lockset: critical section can raise with the mutex held. *)

val rac003 : string
(** Lockset: self-deadlock on a held mutex, or lock-order inversion. *)

val rac004 : string
(** Lockset: torn atomic read-modify-write. *)

val rac005 : string
(** Lockset: blocking syscall while holding a lock. *)

val unreadable_cmt : string
(** Infrastructure warning: a .cmt artifact could not be read. *)

val all : meta list
val find : string -> meta option
val severity_of_id : string -> Check.Diagnostic.severity

val markdown : unit -> string
(** The rule table as markdown (checked in as docs/lint-rules.md). *)
