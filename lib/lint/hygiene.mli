(** LNT002 (float discipline), LNT003 (exception hygiene) and LNT005
    (output hygiene) in one typedtree walk.

    [exempt_output] disables LNT005 for the sanctioned output layers
    (lib/report, lib/obs). *)

val check :
  source:string -> exempt_output:bool -> Typedtree.structure -> Check.Diagnostic.t list
