(** LNT001 — purity/race analysis of closures entering the domain-parallel
    engine ([Exec.map]/[map2]/[mapi]/[map_array], [Pool.map]).

    Sound-but-conservative over the constructs it models: captured
    refs/Hashtbls/Buffers/Queues/Stacks and mutations of captured, global
    or unprovably-local values are errors; [Exec.Memo] and [Obs] access is
    whitelisted; [Atomic.t] is exempt.  See DESIGN.md ("Why the purity
    pass is sound but conservative"). *)

val target_functions : string list
(** Normalized names of the parallel entry points the pass guards. *)

val check : source:string -> Typedtree.structure -> Check.Diagnostic.t list
(** All LNT001 findings in one compilation unit; [source] is the path used
    in diagnostic locations. *)
