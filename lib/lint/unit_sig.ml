(* The declarative seed of the UNT unit-inference pass: a unit-string
   grammar ("V/dec", "m^-3", "F/m^2", "A*s") and the signature tables for
   the dimensioned surface of the model chain — Physics.Constants, Silicon,
   Mobility, the compact-model parameter records, the Tcad accessors.

   The tables are written against source-level names ("Silicon.
   fermi_potential", record type "Params.physical") and matched by path
   suffix after demangling, so both real library code and the crafted
   selftest/fixture sources (which define local modules of the same shape)
   hit the same entries.

   Only what the table names is known; everything else is Unknown and the
   pass stays silent about it.  Growing the table is how ROADMAP items 3-5
   extend the checker. *)

module Dim = Dimension

(* --- unit-string grammar ------------------------------------------------ *)

(* <unit> ::= <term> ('/' <term>)*      divide successive terms
   <term> ::= <atom> ('*' <atom>)*
   <atom> ::= <name> ('^' <int>)?      e.g. "m", "cm^-3", "V", "1"

   Atoms are SI base quantities, the derived units that reduce onto them,
   or display units (nm, um, cm, pA) that carry the same exponents tagged
   with the original unit string — the tag UNT003 compares. *)

type atom = { a_dim : Dim.t; a_display : bool }

let si d = { a_dim = d; a_display = false }
let display d = { a_dim = d; a_display = true }

let atoms =
  let m = Dim.base `M and s = Dim.base `S and v = Dim.base `V in
  let a = Dim.base `A and k = Dim.base `K in
  [ ("1", si Dim.dimensionless);
    ("m", si m);
    ("s", si s);
    ("V", si v);
    ("A", si a);
    ("K", si k);
    (* derived units, reduced onto the base *)
    ("C", si (Dim.mul a s));                         (* coulomb *)
    ("F", si (Dim.div (Dim.mul a s) v));             (* farad *)
    ("J", si (Dim.mul v (Dim.mul a s)));             (* joule *)
    ("W", si (Dim.mul v a));                         (* watt *)
    ("S", si (Dim.div a v));                         (* siemens *)
    ("Ohm", si (Dim.div v a));
    ("Hz", si (Dim.inv s));
    ("eV", si v);  (* energies are per elementary charge throughout *)
    ("dec", si Dim.dimensionless);  (* decades of current: a pure count *)
    (* display units: same physics, non-SI scale *)
    ("nm", display m);
    ("um", display m);
    ("cm", display m);
    ("pA", display a) ]

let parse_exponent s =
  match String.index_opt s '^' with
  | None -> Ok (s, Dim.rat_of_int 1)
  | Some i ->
    let name = String.sub s 0 i in
    let e = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt e with
     | Some n -> Ok (name, Dim.rat_of_int n)
     | None -> Error (Printf.sprintf "bad exponent %S" e))

let parse text =
  let text = String.trim text in
  if text = "" then Error "empty unit string"
  else begin
    let any_display = ref false in
    let atom s =
      match parse_exponent (String.trim s) with
      | Error _ as e -> e
      | Ok (name, e) ->
        (match List.assoc_opt name atoms with
         | None -> Error (Printf.sprintf "unknown unit atom %S" name)
         | Some a ->
           if a.a_display then any_display := true;
           Ok (Dim.pow a.a_dim e))
    in
    let term s =
      List.fold_left
        (fun acc part ->
          match (acc, atom part) with
          | (Error _ as e), _ | _, (Error _ as e) -> e
          | Ok d, Ok d' -> Ok (Dim.mul d d'))
        (Ok Dim.dimensionless)
        (String.split_on_char '*' s)
    in
    let combined =
      match String.split_on_char '/' text with
      | [] -> Error "empty unit string"
      | first :: rest ->
        List.fold_left
          (fun acc part ->
            match (acc, term part) with
            | (Error _ as e), _ | _, (Error _ as e) -> e
            | Ok d, Ok d' -> Ok (Dim.div d d'))
          (term first) rest
    in
    match combined with
    | Error _ as e -> e
    | Ok (Dim.Dim d) when !any_display -> Ok (Dim.Dim { d with scale = Dim.Display text })
    | Ok d -> Ok d
  end

(* Table entries are our own source; a typo is a programming error caught
   by the selftest, so constructing from a malformed string is loud. *)
let u text =
  match parse text with
  | Ok d -> d
  | Error msg -> invalid_arg (Printf.sprintf "Unit_sig: bad unit %S (%s)" text msg)

(* --- signature tables --------------------------------------------------- *)

type arg_spec = Pos of int | Lab of string
(** [Pos n]: the n-th [Nolabel] argument (0-based); [Lab l]: the argument
    labelled (or optionally labelled) [l]. *)

type fn_sig = { fn_args : (arg_spec * Dim.t) list; fn_result : Dim.t }

let fn args result = { fn_args = List.map (fun (a, s) -> (a, u s)) args; fn_result = u result }

(* Zero-argument dimensioned values, by path suffix. *)
let constants =
  [ ("Constants.q", "C");
    ("Constants.k_boltzmann", "J/K");
    ("Constants.eps0", "F/m");
    ("Constants.eps_si", "F/m");
    ("Constants.eps_ox", "F/m");
    ("Constants.t_room", "K");
    ("Constants.vt_room", "V");
    ("Silicon.ni_room", "m^-3");
    ("Compact.sd_doping", "m^-3");
    ("Compact.mobility_ratio", "1") ]
  |> List.map (fun (n, s) -> (n, u s))

(* Functions with dimensioned float arguments/results, by path suffix.
   Non-float arguments (records, variants, vectors) simply have no spec:
   the pass only consults specs at float positions. *)
let functions =
  [ (* Physics.Constants conversions: the only sanctioned crossings
       between the SI core and display units. *)
    ("Constants.thermal_voltage", fn [ (Pos 0, "K") ] "V");
    ("Constants.nm", fn [ (Pos 0, "nm") ] "m");
    ("Constants.um", fn [ (Pos 0, "um") ] "m");
    ("Constants.to_nm", fn [ (Pos 0, "m") ] "nm");
    ("Constants.per_cm3", fn [ (Pos 0, "cm^-3") ] "m^-3");
    ("Constants.to_per_cm3", fn [ (Pos 0, "m^-3") ] "cm^-3");
    ("Constants.pa_per_um", fn [ (Pos 0, "pA/um") ] "A/m");
    ("Constants.to_pa_per_um", fn [ (Pos 0, "A/m") ] "pA/um");
    (* Physics.Silicon *)
    ("Silicon.bandgap", fn [ (Pos 0, "K") ] "eV");
    ("Silicon.intrinsic_density", fn [ (Pos 0, "K") ] "m^-3");
    ("Silicon.fermi_potential", fn [ (Lab "t", "K"); (Pos 0, "m^-3") ] "V");
    ("Silicon.depletion_width", fn [ (Lab "psi", "V"); (Lab "doping", "m^-3") ] "m");
    ("Silicon.max_depletion_width", fn [ (Lab "t", "K"); (Pos 0, "m^-3") ] "m");
    ("Silicon.debye_length", fn [ (Lab "t", "K"); (Pos 0, "m^-3") ] "m");
    ("Silicon.builtin_potential", fn [ (Lab "t", "K"); (Pos 0, "m^-3"); (Pos 1, "m^-3") ] "V");
    ("Silicon.bulk_potential_of_net_doping", fn [ (Lab "t", "K"); (Pos 0, "m^-3") ] "V");
    (* Physics.Mobility (Pos 0 is the carrier variant — no spec) *)
    ("Mobility.low_field", fn [ (Pos 1, "m^-3") ] "m^2/V/s");
    ("Mobility.effective_field_degradation",
     fn [ (Lab "mu0", "m^2/V/s"); (Lab "e_eff", "V/m"); (Lab "e_crit", "V/m");
          (Lab "exponent", "1") ]
       "m^2/V/s");
    ("Mobility.channel", fn [ (Lab "e_eff", "V/m"); (Lab "t", "K"); (Pos 1, "m^-3") ] "m^2/V/s");
    ("Mobility.critical_field", fn [ (Pos 1, "m^-3") ] "V/m");
    (* Device.Subthreshold — the Eq. 1-2 algebra *)
    ("Subthreshold.slope_factor", fn [ (Lab "k_body", "1"); (Lab "tox", "m"); (Lab "wdep", "m") ] "1");
    ("Subthreshold.short_channel_factor",
     fn [ (Lab "k_sce", "1"); (Lab "k_lambda", "1"); (Lab "xj_exp", "1"); (Lab "xj", "m");
          (Lab "tox", "m"); (Lab "wdep", "m"); (Lab "leff", "m") ]
       "1");
    ("Subthreshold.inverse_slope",
     fn [ (Lab "k_body", "1"); (Lab "k_sce", "1"); (Lab "k_lambda", "1");
          (Lab "ss_offset", "V/dec"); (Lab "t", "K"); (Lab "xj_exp", "1"); (Lab "xj", "m");
          (Lab "tox", "m"); (Lab "wdep", "m"); (Lab "leff", "m") ]
       "V/dec");
    ("Subthreshold.current",
     fn [ (Lab "i0", "A/m"); (Lab "m", "1"); (Lab "vth", "V"); (Lab "t", "K");
          (Lab "vgs", "V"); (Lab "vds", "V") ]
       "A/m");
    ("Subthreshold.i0_of_spec",
     fn [ (Lab "mu", "m^2/V/s"); (Lab "cox", "F/m^2"); (Lab "m", "1"); (Lab "leff", "m");
          (Lab "t", "K") ]
       "A/m");
    (* Device.Iv_model / Compact (Pos 0 is the compact record — no spec) *)
    ("Iv_model.specific_current", fn [] "A/m");
    ("Iv_model.id", fn [ (Lab "vgs", "V"); (Lab "vds", "V") ] "A/m");
    ("Iv_model.ioff", fn [ (Lab "vdd", "V") ] "A/m");
    ("Iv_model.ion", fn [ (Lab "vdd", "V") ] "A/m");
    ("Iv_model.on_off_ratio", fn [ (Lab "vdd", "V") ] "1");
    ("Iv_model.gm", fn [ (Lab "vgs", "V"); (Lab "vds", "V") ] "S/m");
    ("Iv_model.gds", fn [ (Lab "vgs", "V"); (Lab "vds", "V") ] "S/m");
    ("Iv_model.intrinsic_delay", fn [ (Lab "vdd", "V") ] "s");
    ("Iv_model.threshold_const_current", fn [ (Lab "vds", "V") ] "V");
    ("Compact.vth", fn [ (Lab "vds", "V") ] "V");
    ("Compact.dibl", fn [] "1");
    (* Tcad accessors *)
    ("Structure.effective_channel_length", fn [] "m");
    ("Mesh.dual_width_x", fn [] "m");
    ("Mesh.dual_width_y", fn [] "m");
    ("Mesh.box_area", fn [] "m^2");
    ("Extract.subthreshold_slope", fn [ (Lab "i_lo", "A/m"); (Lab "i_hi", "A/m") ] "V/dec");
    ("Extract.threshold_voltage", fn [ (Lab "criterion", "A/m") ] "V");
    ("Extract.current_at", fn [ (Pos 1, "V") ] "A/m");
    ("Extract.gate_charge", fn [] "C/m");
    ("Extract.gate_capacitance", fn [ (Lab "dv", "V") ] "F/m");
    ("Poisson.contact_potential", fn [ (Pos 3, "m^-3") ] "V");
    (* Circuits *)
    ("Inverter.gate_capacitance", fn [] "F");
    ("Inverter.load_capacitance", fn [] "F") ]

(* Record fields, keyed by (record type path suffix, field name).  Only
   float fields appear; accessing any other field stays Unknown. *)
let fields =
  [ (* Device.Params *)
    ("Params.physical",
     [ ("lpoly", "m"); ("tox", "m"); ("nsub", "m^-3"); ("np_halo", "m^-3"); ("vdd", "V") ]);
    ("Params.calibration",
     [ ("xj_fraction", "1"); ("overlap_fraction", "1"); ("k_halo", "1"); ("k_body", "1");
       ("k_sce", "1"); ("k_lambda", "1"); ("lambda_xj_exp", "1"); ("halo_sce_exp", "1");
       ("ss_offset", "V/dec"); ("k_vth_sce", "1"); ("k_dibl", "1"); ("vth_offset", "V");
       ("mu_factor", "1"); ("fringe_cap", "F/m"); ("load_factor", "1") ]);
    (* Device.Compact *)
    ("Compact.t",
     [ ("leff", "m"); ("xj", "m"); ("overlap", "m"); ("neff", "m^-3"); ("phi_f", "V");
       ("wdep", "m"); ("cox", "F/m^2"); ("m", "1"); ("ss", "V/dec"); ("vth0", "V");
       ("vbi", "V"); ("lt", "m"); ("mu", "m^2/V/s"); ("cg", "F/m"); ("cg_intrinsic", "F/m");
       ("temperature", "K") ]);
    (* Tcad.Structure *)
    ("Structure.description",
     [ ("lpoly", "m"); ("tox", "m"); ("nsub", "m^-3"); ("np_halo", "m^-3"); ("xj", "m");
       ("nsd", "m^-3"); ("overlap", "m"); ("halo_depth_frac", "1"); ("halo_sigma_frac", "1");
       ("gate_doping", "m^-3"); ("temperature", "K") ]);
    ("Structure.t",
     [ ("gate_potential_offset", "V"); ("x_channel_mid", "m"); ("ni", "m^-3"); ("vt", "V") ]);
    (* Tcad solvers and extraction *)
    ("Poisson.biases", [ ("source", "V"); ("drain", "V"); ("gate", "V"); ("substrate", "V") ]);
    ("Poisson.solution", [ ("residual", "V") ]);
    ("Gummel.state", [ ("drain_current", "A/m") ]);
    ("Extract.sweep", [ ("vd", "V") ]);
    ("Extract.output_sweep", [ ("vg", "V") ]);
    ("Extract.characteristics",
     [ ("ss", "V/dec"); ("vth_lin", "V"); ("vth_sat", "V"); ("dibl", "1"); ("ioff", "A/m");
       ("ion_sub", "A/m"); ("on_off_ratio_sub", "1"); ("leff", "m") ]);
    (* Circuits *)
    ("Inverter.sizing", [ ("wn", "m"); ("wp", "m") ]) ]
  |> List.map (fun (r, fs) -> (r, List.map (fun (f, s) -> (f, u s)) fs))

(* Polymorphic container round-trips the pass cannot follow: element
   dimensions entering these are lost (UNT005's subject). *)
let containers =
  [ "List.map"; "List.rev_map"; "List.mapi"; "List.map2"; "List.filter_map";
    "List.concat_map"; "List.fold_left"; "List.fold_right"; "Array.map"; "Array.mapi";
    "Array.fold_left"; "Array.fold_right"; "Array.map2"; "Seq.map" ]

(* --- lookups ------------------------------------------------------------ *)

let constant name =
  List.find_map
    (fun (c, d) -> if Paths.suffix_matches ~candidates:[ c ] name then Some d else None)
    constants

let function_sig name =
  List.find_map
    (fun (c, s) -> if Paths.suffix_matches ~candidates:[ c ] name then Some s else None)
    functions

let field ~record ~name =
  List.find_map
    (fun (r, fs) ->
      if Paths.suffix_matches ~candidates:[ r ] record then List.assoc_opt name fs else None)
    fields

let container_round_trip name = Paths.suffix_matches ~candidates:containers name

(* Consistency selftest: every table entry parsed (the [u] calls above ran
   at module initialization), every arg spec position is sane. *)
let selftest () =
  List.iter
    (fun (n, { fn_args; _ }) ->
      List.iter
        (function
          | Pos i, _ when i < 0 ->
            failwith (Printf.sprintf "Unit_sig: negative arg position in %s" n)
          | Lab "", _ -> failwith (Printf.sprintf "Unit_sig: empty label in %s" n)
          | _ -> ())
        fn_args)
    functions;
  List.length constants + List.length functions
  + List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 fields
