(** Path normalization and type classification shared by the lint passes.

    All matching is done on fully resolved typedtree [Path.t]s with the
    [Stdlib] prefixes stripped, so the passes see the names a programmer
    writes ("Hashtbl.add", "=", "Exec.map") regardless of how the compiler
    mangled them. *)

val normalize : string -> string
(** Strip ["Stdlib."] / ["Stdlib__"] wrappers from a dotted path name. *)

val path_name : Path.t -> string
(** [normalize (Path.name p)]. *)

val demangle : string -> string
(** Undo dune's wrapped-library mangling per component
    ("Device__Params.physical" -> "Params.physical"), so signature tables
    can be written against source-level names. *)

val suffix_matches : candidates:string list -> string -> bool
(** Does the name equal a candidate or end with [".candidate"]?  Lets
    "Exec.Pool.map" match the "Pool.map" target. *)

val applied_path : Typedtree.expression -> Path.t option
(** The applied function's path when it is a plain identifier. *)

val head_constr : Types.type_expr -> (string * Types.type_expr list) option
(** Normalized name and arguments of the type's head constructor, without
    expanding abbreviations (abstract stays abstract). *)

val mutable_container_names : string list
(** Containers whose capture is always a race hazard: ref, Hashtbl.t,
    Buffer.t, Queue.t, Stack.t.  [Atomic.t] is deliberately exempt. *)

val is_mutable_container : Types.type_expr -> bool

val is_array : Types.type_expr -> bool
(** array, bytes or floatarray: flagged only when mutated, not captured. *)

val demangled_head : Types.type_expr -> (string * Types.type_expr list) option
(** [head_constr] with dune's wrapped-library mangling undone, so
    "Tcad__Poisson.scratch" reads as "Poisson.scratch". *)

val scratch_type_names : string list
(** Caller-owned solver workspaces (Poisson.scratch, Stencil5.t): reusable
    across sequential solves, never shareable or storable. *)

val is_scratch : Types.type_expr -> bool

val buffer_type_names : string list
(** Mutable flat buffers of the TCAD hot path: Fvec.t, Field.t,
    Bigarray.Array1.t (any [Array1.t]), Field.Mask.t. *)

val is_flat_buffer : Types.type_expr -> bool
(** A flat buffer or an owned workspace: capture by a parallel closure is
    always hazardous (even a read races with a writer elsewhere). *)

val is_floatish : Types.type_expr -> bool
(** float, or float directly inside a tuple/option/list/array. *)

val describe_type : Types.type_expr -> string
(** Head-constructor name for diagnostics. *)
