(** Path normalization and type classification shared by the lint passes.

    All matching is done on fully resolved typedtree [Path.t]s with the
    [Stdlib] prefixes stripped, so the passes see the names a programmer
    writes ("Hashtbl.add", "=", "Exec.map") regardless of how the compiler
    mangled them. *)

val normalize : string -> string
(** Strip ["Stdlib."] / ["Stdlib__"] wrappers from a dotted path name. *)

val path_name : Path.t -> string
(** [normalize (Path.name p)]. *)

val demangle : string -> string
(** Undo dune's wrapped-library mangling per component
    ("Device__Params.physical" -> "Params.physical"), so signature tables
    can be written against source-level names. *)

val suffix_matches : candidates:string list -> string -> bool
(** Does the name equal a candidate or end with [".candidate"]?  Lets
    "Exec.Pool.map" match the "Pool.map" target. *)

val applied_path : Typedtree.expression -> Path.t option
(** The applied function's path when it is a plain identifier. *)

val head_constr : Types.type_expr -> (string * Types.type_expr list) option
(** Normalized name and arguments of the type's head constructor, without
    expanding abbreviations (abstract stays abstract). *)

val mutable_container_names : string list
(** Containers whose capture is always a race hazard: ref, Hashtbl.t,
    Buffer.t, Queue.t, Stack.t.  [Atomic.t] is deliberately exempt. *)

val is_mutable_container : Types.type_expr -> bool

val is_array : Types.type_expr -> bool
(** array, bytes or floatarray: flagged only when mutated, not captured. *)

val is_floatish : Types.type_expr -> bool
(** float, or float directly inside a tuple/option/list/array. *)

val describe_type : Types.type_expr -> string
(** Head-constructor name for diagnostics. *)
