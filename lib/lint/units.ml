(* UNT001-005 — static dimensional analysis by abstract interpretation
   over the typedtree.

   [infer] maps every expression to an element of the {!Dimension} lattice,
   threading an environment of let-bound dimensions.  Seeds come from the
   {!Unit_sig} tables (Physics.Constants, Silicon, Mobility, parameter
   record fields, Tcad accessors); everything unseeded is [Unknown], and
   unknown never fires — the pass is sound-but-conservative in exactly the
   LNT001 sense.  What does fire:

   - UNT001 (error): [+.]/[-.]/float comparison/min/max over operands with
     provably different exponents (a metre added to a volt);
   - UNT002 (error): exp/log/log10/expm1/log1p of a non-dimensionless
     value, or [**] with a non-integer literal exponent on one;
   - UNT003 (warning): display-scaled (nm, cm^-3, pA/um) and SI values of
     the same dimension combined without a table conversion;
   - UNT004 (error): an argument to a table-seeded function whose inferred
     exponents contradict the table;
   - UNT005 (info): a literal closure with a dimensioned result entering a
     polymorphic container round-trip — the element dimension is lost,
     reported once per site.

   Escape hatch: [(e [@units "V/dec"])] asserts a dimension and silences
   the subtree — the whitelist for deliberate unit casts. *)

module D = Check.Diagnostic
module Dim = Dimension
open Typedtree

module Env = Map.Make (String)

type ctx = {
  source : string;
  mutable diags : D.t list;
  seen : (string, unit) Hashtbl.t;  (* rule|location — once per site *)
}

let emit ctx ~rule ~severity ~loc ?hint message =
  let location = Srcloc.to_string ~source:ctx.source loc in
  let key = rule ^ "|" ^ location in
  if not (Hashtbl.mem ctx.seen key) then begin
    Hashtbl.add ctx.seen key ();
    ctx.diags <- D.make ?hint ~rule ~severity ~location message :: ctx.diags
  end

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

(* Source-level name of an applied path: Stdlib wrappers stripped, then
   dune's wrapped-library mangling undone. *)
let source_name p = Paths.demangle (Paths.normalize (Path.name p))

let from_stdlib p =
  let raw = Path.name p in
  String.length raw > 7 && String.sub raw 0 7 = "Stdlib."

(* --- Stdlib classification ---------------------------------------------- *)

let additive_ops = [ "+."; "-." ]
let multiplicative = [ "*." ]
let divisive = [ "/." ]
let identity_ops = [ "~-."; "~+."; "abs_float"; "Float.abs"; "Float.neg" ]
let sqrt_names = [ "sqrt"; "Float.sqrt" ]
let cbrt_names = [ "Float.cbrt" ]
let pow_names = [ "**"; "Float.pow" ]
let of_int_names = [ "float_of_int"; "Float.of_int" ]

(* Comparison-style combination: both operands must share a dimension.
   min/max additionally propagate it; boolean results carry none. *)
let comparison_ops = [ "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">="; "compare" ]
let minmax_ops = [ "min"; "max"; "Float.min"; "Float.max"; "Float.equal"; "Float.compare" ]

(* Transcendentals whose argument must be a pure number (Eq. 1's
   exp((Vgs - Vth)/(m vT)) is the canonical normalization). *)
let transcendental =
  [ "exp"; "expm1"; "log"; "log10"; "log1p";
    "Float.exp"; "Float.expm1"; "Float.log"; "Float.log10"; "Float.log1p";
    "Float.log2"; "Float.exp2" ]

(* --- the [@units "..."] escape hatch ------------------------------------ *)

let units_attribute (e : expression) =
  List.find_map
    (fun (attr : Parsetree.attribute) ->
      if attr.attr_name.txt <> "units" then None
      else
        match attr.attr_payload with
        | Parsetree.PStr
            [ { pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _ } ] ->
          Some s
        | _ -> None)
    e.exp_attributes

(* --- helpers ------------------------------------------------------------ *)

let rec pattern_vars : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (p', id, _) -> id :: pattern_vars p'
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
    List.concat_map pattern_vars ps
  | Tpat_record (fields, _) -> List.concat_map (fun (_, _, p') -> pattern_vars p') fields
  | Tpat_variant (_, Some p', _) | Tpat_lazy p' | Tpat_exception p' -> pattern_vars p'
  | Tpat_or (a, b, _) -> pattern_vars a @ pattern_vars b
  | Tpat_value v -> pattern_vars (v :> value general_pattern)
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

let bind_unknown env pat =
  List.fold_left
    (fun env id -> Env.add (Ident.unique_name id) Dim.Unknown env)
    env (pattern_vars pat)

(* Passing [~l:e] to an optional parameter wraps [e] in [Some]; unwrap so
   the table spec checks the value the programmer wrote. *)
let unwrap_option_arg (e : expression) =
  match e.exp_desc with
  | Texp_construct ({ txt = Longident.Lident "Some"; _ }, _, [ inner ]) -> inner
  | _ -> e

let float_literal (e : expression) =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float s) -> float_of_string_opt s
  | _ -> None

(* --- the interpreter ---------------------------------------------------- *)

let rec infer ctx env (e : expression) : Dim.t =
  match units_attribute e with
  | Some s ->
    (* Asserted dimension: trust it and do not descend — this is the
       whitelist for deliberate casts, so the subtree must stay silent. *)
    (match Unit_sig.parse s with Ok d -> d | Error _ -> Dim.Unknown)
  | None -> infer_desc ctx env e

and infer_desc ctx env (e : expression) : Dim.t =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    (match p with
     | Path.Pident id ->
       (match Env.find_opt (Ident.unique_name id) env with
        | Some d -> d
        | None -> lookup_constant p)
     | _ -> lookup_constant p)
  | Texp_constant _ -> Dim.Const
  | Texp_let (rec_flag, vbs, body) ->
    let env' = infer_bindings ctx env rec_flag vbs in
    infer ctx env' body
  | Texp_function { cases; _ } ->
    List.iter
      (fun c ->
        let env' = bind_unknown env c.c_lhs in
        Option.iter (fun g -> ignore (infer ctx env' g)) c.c_guard;
        ignore (infer ctx env' c.c_rhs))
      cases;
    Dim.Unknown
  | Texp_apply (fn, args) -> infer_apply ctx env e fn args
  | Texp_field (record, _, label) ->
    let _ = infer ctx env record in
    if not (is_float e.exp_type) then Dim.Unknown
    else
      (match Paths.head_constr record.exp_type with
       | Some (rname, _) ->
         (match Unit_sig.field ~record:(Paths.demangle rname) ~name:label.Types.lbl_name with
          | Some d -> d
          | None -> Dim.Unknown)
       | None -> Dim.Unknown)
  | Texp_record { fields; extended_expression } ->
    Option.iter (fun ext -> ignore (infer ctx env ext)) extended_expression;
    let rname =
      match Paths.head_constr e.exp_type with
      | Some (n, _) -> Some (Paths.demangle n)
      | None -> None
    in
    Array.iter
      (function
        | label, Overridden (_, expr) ->
          let inferred = infer ctx env expr in
          (match rname with
           | Some record ->
             (match Unit_sig.field ~record ~name:label.Types.lbl_name with
              | Some expected -> check_against_spec ctx ~what:(Printf.sprintf "field %s of %s" label.Types.lbl_name record) ~expected ~inferred ~loc:expr.exp_loc
              | None -> ())
           | None -> ())
        | _, Kept _ -> ())
      fields;
    Dim.Unknown
  | Texp_ifthenelse (cond, a, b) ->
    ignore (infer ctx env cond);
    let da = infer ctx env a in
    (match b with
     | Some b -> Dim.join da (infer ctx env b)
     | None -> Dim.Unknown)
  | Texp_match (scrut, cases, _) ->
    ignore (infer ctx env scrut);
    List.fold_left
      (fun acc c ->
        let env' = bind_unknown env c.c_lhs in
        Option.iter (fun g -> ignore (infer ctx env' g)) c.c_guard;
        let d = infer ctx env' c.c_rhs in
        match acc with None -> Some d | Some d' -> Some (Dim.join d' d))
      None cases
    |> Option.value ~default:Dim.Unknown
  | Texp_try (body, cases) ->
    let d0 = infer ctx env body in
    List.fold_left
      (fun acc c ->
        let env' = bind_unknown env c.c_lhs in
        Dim.join acc (infer ctx env' c.c_rhs))
      d0 cases
  | Texp_sequence (a, b) ->
    ignore (infer ctx env a);
    infer ctx env b
  | _ ->
    (* Anything else (tuples, constructors, setfield, loops, modules in
       expressions...): walk the children for their own findings; the
       value's dimension is unknown. *)
    walk_children ctx env e;
    Dim.Unknown

and lookup_constant p =
  match Unit_sig.constant (source_name p) with Some d -> d | None -> Dim.Unknown

and infer_bindings ctx env rec_flag vbs =
  match rec_flag with
  | Asttypes.Nonrecursive ->
    List.fold_left
      (fun env' vb ->
        let d = infer ctx env vb.vb_expr in
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> Env.add (Ident.unique_name id) d env'
        | _ -> bind_unknown env' vb.vb_pat)
      env vbs
  | Asttypes.Recursive ->
    let env' = List.fold_left (fun acc vb -> bind_unknown acc vb.vb_pat) env vbs in
    List.iter (fun vb -> ignore (infer ctx env' vb.vb_expr)) vbs;
    env'

and walk_children ctx env e =
  let expr _ e' = ignore (infer ctx env e') in
  let it = { Tast_iterator.default_iterator with expr } in
  Tast_iterator.default_iterator.expr it e

(* Additive/comparison combination: the one place UNT001/UNT003 fire. *)
and combine_additive ctx ~op ~loc a b =
  match Dim.add a b with
  | Dim.Ok_dim d -> d
  | Dim.Mismatch (da, db) ->
    emit ctx ~rule:Lint_rules.unt001 ~severity:D.Error ~loc
      (Printf.sprintf "%s combines incompatible dimensions: %s vs %s" op
         (Dim.to_string (Dim.Dim da)) (Dim.to_string (Dim.Dim db)))
      ~hint:
        "convert one operand (the factor algebra of Eq. 1-8 must agree \
         termwise), or assert a deliberate cast with [@units \"...\"]";
    Dim.Unknown
  | Dim.Scale_mix (da, db) ->
    emit ctx ~rule:Lint_rules.unt003 ~severity:D.Warning ~loc
      (Printf.sprintf
         "%s mixes unit scales: %s (%s) vs %s (%s) — same dimension, different unit system"
         op
         (Dim.to_string (Dim.Dim { da with Dim.scale = Dim.Si })) (Dim.scale_label da.Dim.scale)
         (Dim.to_string (Dim.Dim { db with Dim.scale = Dim.Si })) (Dim.scale_label db.Dim.scale))
      ~hint:
        "cross unit systems only through the Constants helpers \
         (nm, um, per_cm3, pa_per_um and their to_* inverses)";
    Dim.Unknown

(* An inferred argument against a table spec (function argument or record
   field): exponent contradiction is UNT004, a scale-only contradiction is
   the UNT003 display/SI mix. *)
and check_against_spec ctx ~what ~expected ~inferred ~loc =
  match (expected, inferred) with
  | Dim.Dim de, Dim.Dim di ->
    if not (Dim.equal_exponents de di) then
      emit ctx ~rule:Lint_rules.unt004 ~severity:D.Error ~loc
        (Printf.sprintf "%s expects %s, got %s" what
           (Dim.to_string expected) (Dim.to_string inferred))
        ~hint:"the signature table (lib/lint/unit_sig.ml) records the intended units"
    else if Dim.scale_conflict de di then
      emit ctx ~rule:Lint_rules.unt003 ~severity:D.Warning ~loc
        (Printf.sprintf "%s expects %s but the argument is scaled as %s" what
           (Dim.scale_label de.Dim.scale) (Dim.scale_label di.Dim.scale))
        ~hint:
          "convert through the Constants helpers instead of passing a \
           display-scaled value straight in"
  | _ -> ()

and infer_apply ctx env (e : expression) fn args =
  match Paths.applied_path fn with
  | None ->
    ignore (infer ctx env fn);
    List.iter (function _, Some a -> ignore (infer ctx env a) | _ -> ()) args;
    Dim.Unknown
  | Some p ->
    let name = source_name p in
    let stdlib = from_stdlib p in
    let positional =
      List.filter_map (function Asttypes.Nolabel, Some a -> Some a | _ -> None) args
    in
    let walk_rest () =
      List.iter (function _, Some a -> ignore (infer ctx env a) | _ -> ()) args
    in
    let binary k =
      match positional with
      | [ a; b ] when List.length args = 2 -> Some (k a b)
      | _ -> None
    in
    let unary k =
      match positional with [ a ] when List.length args = 1 -> Some (k a) | _ -> None
    in
    let handled =
      if not stdlib then None
      else if List.mem name additive_ops then
        binary (fun a b ->
            let da = infer ctx env a and db = infer ctx env b in
            combine_additive ctx ~op:name ~loc:e.exp_loc da db)
      else if List.mem name multiplicative then
        binary (fun a b -> Dim.mul (infer ctx env a) (infer ctx env b))
      else if List.mem name divisive then
        binary (fun a b -> Dim.div (infer ctx env a) (infer ctx env b))
      else if List.mem name pow_names then
        binary (fun a b ->
            let da = infer ctx env a in
            let db = infer ctx env b in
            ignore db;
            match float_literal b with
            | Some x when Float.is_integer x && Float.abs x <= 64.0 ->
              Dim.pow da (Dim.rat_of_int (int_of_float x))
            | Some x ->
              if (not (Dim.is_dimensionless da)) && da <> Dim.Unknown && da <> Dim.Const
              then
                emit ctx ~rule:Lint_rules.unt002 ~severity:D.Error ~loc:e.exp_loc
                  (Printf.sprintf
                     "raising a dimensioned value (%s) to the non-integer power %g"
                     (Dim.to_string da) x)
                  ~hint:
                    "non-integer powers of dimensioned quantities have no \
                     consistent unit; normalize first or use [@units \"...\"]";
              Dim.Unknown
            | None -> Dim.Unknown)
      else if List.mem name identity_ops then unary (fun a -> infer ctx env a)
      else if List.mem name sqrt_names then unary (fun a -> Dim.sqrt_ (infer ctx env a))
      else if List.mem name cbrt_names then
        unary (fun a -> Dim.pow (infer ctx env a) (Dim.rat 1 3))
      else if List.mem name of_int_names then
        unary (fun a ->
            ignore (infer ctx env a);
            Dim.Const)
      else if List.mem name transcendental then
        unary (fun a ->
            let da = infer ctx env a in
            (match da with
             | Dim.Dim _ when not (Dim.is_dimensionless da) ->
               emit ctx ~rule:Lint_rules.unt002 ~severity:D.Error ~loc:e.exp_loc
                 (Printf.sprintf "%s applied to a dimensioned value (%s)" name
                    (Dim.to_string da))
                 ~hint:
                   "transcendental arguments must be pure numbers — normalize \
                    as in Eq. 1's exp((Vgs - Vth)/(m vT))"
             | _ -> ());
            Dim.dimensionless)
      else if List.mem name comparison_ops && positional <> []
              && List.for_all (fun (a : expression) -> is_float a.exp_type) positional
      then
        binary (fun a b ->
            let da = infer ctx env a and db = infer ctx env b in
            ignore (combine_additive ctx ~op:name ~loc:e.exp_loc da db);
            Dim.Unknown)
      else if List.mem name minmax_ops
              && List.for_all (fun (a : expression) -> is_float a.exp_type) positional
      then
        binary (fun a b ->
            let da = infer ctx env a and db = infer ctx env b in
            combine_additive ctx ~op:name ~loc:e.exp_loc da db)
      else None
    in
    (match handled with
     | Some d -> d
     | None ->
       if stdlib && Unit_sig.container_round_trip name then begin
         List.iter
           (function
             | _, Some ({ exp_desc = Texp_function _; _ } as lam) ->
               let body = closure_body_dim ctx env lam in
               (match body with
                | Dim.Dim _ when not (Dim.is_dimensionless body) ->
                  emit ctx ~rule:Lint_rules.unt005 ~severity:D.Info ~loc:lam.exp_loc
                    (Printf.sprintf
                       "element dimension %s is lost through %s; downstream \
                        values degrade to unknown"
                       (Dim.to_string body) name)
                    ~hint:
                      "the pass does not follow containers — assert the \
                       consumer's dimension with [@units \"...\"] if it matters"
                | _ -> ())
             | _, Some a -> ignore (infer ctx env a)
             | _ -> ())
           args;
         Dim.Unknown
       end
       else begin
         match Unit_sig.function_sig name with
         | None ->
           walk_rest ();
           Dim.Unknown
         | Some { Unit_sig.fn_args; fn_result } ->
           let pos = ref 0 in
           List.iter
             (fun (label, arg) ->
               match arg with
               | None -> ()
               | Some arg ->
                 let spec =
                   match label with
                   | Asttypes.Nolabel ->
                     let i = !pos in
                     incr pos;
                     List.find_map
                       (function Unit_sig.Pos j, d when j = i -> Some d | _ -> None)
                       fn_args
                   | Asttypes.Labelled l | Asttypes.Optional l ->
                     List.find_map
                       (function Unit_sig.Lab l', d when l' = l -> Some d | _ -> None)
                       fn_args
                 in
                 let arg = unwrap_option_arg arg in
                 let inferred = infer ctx env arg in
                 (match spec with
                  | Some expected ->
                    check_against_spec ctx
                      ~what:
                        (Printf.sprintf "%s of %s"
                           (match label with
                            | Asttypes.Nolabel ->
                              Printf.sprintf "argument %d" !pos
                            | Asttypes.Labelled l | Asttypes.Optional l -> "~" ^ l)
                           name)
                      ~expected ~inferred ~loc:arg.exp_loc
                  | None -> ()))
             args;
           if is_float e.exp_type then fn_result else Dim.Unknown
       end)

(* Joined dimension of a literal closure's body — what the elements of a
   container round-trip would carry. *)
and closure_body_dim ctx env (lam : expression) : Dim.t =
  match lam.exp_desc with
  | Texp_function { cases; _ } ->
    List.fold_left
      (fun acc c ->
        let env' = bind_unknown env c.c_lhs in
        Option.iter (fun g -> ignore (infer ctx env' g)) c.c_guard;
        let d = infer ctx env' c.c_rhs in
        match acc with None -> Some d | Some d' -> Some (Dim.join d' d))
      None cases
    |> Option.value ~default:Dim.Unknown
  | _ ->
    ignore (infer ctx env lam);
    Dim.Unknown

(* --- structure walk ----------------------------------------------------- *)

let rec walk_structure ctx env (str : structure) =
  ignore
    (List.fold_left
       (fun env item ->
         match item.str_desc with
         | Tstr_value (rec_flag, vbs) -> infer_bindings ctx env rec_flag vbs
         | Tstr_eval (e, _) ->
           ignore (infer ctx env e);
           env
         | Tstr_module mb ->
           walk_module ctx env mb.mb_expr;
           env
         | Tstr_recmodule mbs ->
           List.iter (fun mb -> walk_module ctx env mb.mb_expr) mbs;
           env
         | _ ->
           (* attributes, types, exceptions, includes...: nothing to infer,
              but walk any embedded expressions for their own findings. *)
           let expr _ e = ignore (infer ctx env e) in
           let it = { Tast_iterator.default_iterator with expr } in
           it.structure_item it item;
           env)
       env str.str_items)

and walk_module ctx env (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> walk_structure ctx env s
  | Tmod_constraint (m, _, _, _) | Tmod_apply (_, m, _) -> walk_module ctx env m
  | Tmod_functor (_, m) -> walk_module ctx env m
  | Tmod_ident _ | Tmod_unpack _ | Tmod_apply_unit _ -> ()

let check ~source (str : structure) : D.t list =
  let ctx = { source; diags = []; seen = Hashtbl.create 64 } in
  walk_structure ctx Env.empty str;
  List.rev ctx.diags
