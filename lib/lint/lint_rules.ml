(* The LNT rule family: ids minted through the process-wide Check.Rules
   registry (collision with any DRC/AUD rule is a startup failure), plus
   the metadata the CLI renders as the --rules markdown table. *)

module Rules = Check.Rules
module Diagnostic = Check.Diagnostic

type meta = {
  id : string;
  severity : Diagnostic.severity;
  title : string;
  fires_on : string;
  stays_clean_on : string;
}

let lnt001 =
  Rules.register "LNT001"
    ~summary:"closure entering Exec.map/Pool.map captures or mutates unsanctioned mutable state"

let lnt002 =
  Rules.register "LNT002"
    ~summary:"polymorphic =/<>/compare on floats (use Float.equal or a tolerance)"

let lnt003 =
  Rules.register "LNT003"
    ~summary:"catch-all exception handler that can swallow Root.No_convergence"

let lnt004 =
  Rules.register "LNT004"
    ~summary:"diagnostic built from a literal rule id not minted via Check.Rules"

let lnt005 =
  Rules.register "LNT005"
    ~summary:"direct stdout/stderr printing in lib/ (route through lib/report or lib/obs)"

(* The UNT series: static dimensional analysis over float expressions
   (lib/lint/units.ml).  Sound-but-conservative — unknown never fires. *)
let unt001 =
  Rules.register "UNT001"
    ~summary:"additive/comparison combination of incompatible physical dimensions"

let unt002 =
  Rules.register "UNT002"
    ~summary:"non-dimensionless argument to exp/log/log10/** (normalize first)"

let unt003 =
  Rules.register "UNT003"
    ~summary:"display-unit value (nm, cm^-3, pA/um) combined with SI without a conversion"

let unt004 =
  Rules.register "UNT004"
    ~summary:"seeded-signature function applied to an argument of the wrong dimension"

let unt005 =
  Rules.register "UNT005"
    ~summary:"dimension lost through a polymorphic container round-trip (info)"

(* The ALS series: interprocedural buffer ownership/aliasing analysis over
   the Bigarray hot path (lib/lint/alias.ml).  Same contract as UNT:
   sound-but-conservative, unknown never fires. *)
let als001 =
  Rules.register "ALS001"
    ~summary:"flat buffer reachable from a closure entering Exec.map/Pool.map is mutated"

let als002 =
  Rules.register "ALS002"
    ~summary:"solver scratch escapes (stored long-lived) or is shared by overlapping solves"

let als003 =
  Rules.register "ALS003"
    ~summary:"solver output buffer aliases an input buffer of the same call"

let als004 =
  Rules.register "ALS004"
    ~summary:"function returns a buffer it also retains internally ([@owned] to assert)"

(* The RAC series: interprocedural lockset & domain-safety analysis over
   the concurrent exec/serve stack (lib/lint/races.ml).  Polarity differs
   from UNT/ALS in exactly one place: an unresolved call inside a
   critical section counts as may-raise (RAC002), because exception-
   unsafe locking is where optimism ships a wedged process.  Lock and
   state *identity* keeps the conservative contract. *)
let rac001 =
  Rules.register "RAC001"
    ~summary:"shared mutable state crosses domains without a consistent lockset"

let rac002 =
  Rules.register "RAC002"
    ~summary:"critical section can raise with the mutex held (no Fun.protect/Mutex.protect)"

let rac003 =
  Rules.register "RAC003"
    ~summary:"self-deadlock on a held mutex, or lock-order inversion across calls"

let rac004 =
  Rules.register "RAC004"
    ~summary:"torn atomic read-modify-write (Atomic.get then Atomic.set; use fetch_and_add/CAS)"

let rac005 =
  Rules.register "RAC005"
    ~summary:"blocking syscall while holding a lock ([@blocking_ok] to assert)"

(* Unreadable or truncated .cmt artifact: not a source defect, so it gets a
   kebab-case id outside the LNT series and only warns. *)
let unreadable_cmt =
  Rules.register "lint-unreadable-cmt"
    ~summary:"a .cmt artifact could not be read; the file was not linted"

let all : meta list =
  [ { id = lnt001;
      severity = Diagnostic.Error;
      title = "purity/race: parallel closures must not touch unsanctioned mutable state";
      fires_on =
        "a literal closure passed to `Exec.map`/`map2`/`mapi`/`map_array`/`Pool.map` that \
         captures a `ref`/`Hashtbl.t`/`Buffer.t`/`Queue.t`/`Stack.t` or a mutable flat \
         buffer (`Fvec.t`/`Field.t`/`Bigarray.Array1.t`, solver scratch), mutates a \
         captured or global array/record field, or mutates something the pass cannot \
         prove local";
      stays_clean_on =
        "closures that only read immutable captures, allocate and mutate their own local \
         state, or go through the whitelisted `Exec.Memo`/`Obs` APIs (domain-safe by \
         construction); `Atomic.t` is exempt (memory-model-sanctioned)" };
    { id = lnt002;
      severity = Diagnostic.Warning;
      title = "float discipline: no polymorphic equality on floats";
      fires_on =
        "`=`, `<>`, `==`, `!=` or `compare` from `Stdlib` instantiated at `float` (or a \
         tuple/option/list/array directly carrying floats)";
      stays_clean_on =
        "`Float.equal`, `Float.compare`, explicit tolerance helpers, ordering comparisons \
         (`<`, `<=`, ...), and polymorphic equality at non-float types" };
    { id = lnt003;
      severity = Diagnostic.Warning;
      title = "exception hygiene: no catch-alls that can swallow solver failures";
      fires_on =
        "`try ... with _ ->` / `with e ->` (and `match ... with exception _ ->`) whose \
         handler does not re-raise: it would silently swallow `Root.No_convergence` and \
         checker diagnostics";
      stays_clean_on =
        "handlers naming specific exceptions, and catch-alls that re-raise after cleanup" };
    { id = lnt004;
      severity = Diagnostic.Error;
      title = "diagnostic discipline: rule ids are minted via Check.Rules";
      fires_on =
        "`Diagnostic.error`/`warning`/`info`/`make` called with a literal string as \
         `~rule`, bypassing the collision-checked registry";
      stays_clean_on = "passing an identifier bound by `Check.Rules.register`" };
    { id = lnt005;
      severity = Diagnostic.Warning;
      title = "output hygiene: lib/ never prints directly";
      fires_on =
        "`print_*`/`prerr_*`/`Printf.printf`/`Printf.eprintf`/`Format.printf` in library \
         code outside the sanctioned output layers";
      stays_clean_on =
        "`lib/report` and `lib/obs` (the output layers themselves), `bin/` and `bench/` \
         (entry points print by design), formatting into buffers/strings \
         (`Printf.sprintf`, `Buffer`), and writing to an explicit caller-supplied \
         channel" };
    { id = unt001;
      severity = Diagnostic.Error;
      title = "dimensional analysis: additive combination of incompatible dimensions";
      fires_on =
        "`+.`, `-.`, a float comparison, or `Float.min`/`max` whose operands carry \
         provably different dimensions (a length added to a voltage, `A/m` compared \
         against `V`), per the seeded signature tables";
      stays_clean_on =
        "operands of equal dimension, numeric literals (dimension-polymorphic), and \
         anything the pass cannot infer (`unknown` never fires); `[@units \"...\"]` \
         asserts a dimension for a deliberate cast" };
    { id = unt002;
      severity = Diagnostic.Error;
      title = "dimensional analysis: transcendental of a dimensioned quantity";
      fires_on =
        "`exp`/`log`/`log10`/`expm1`/`log1p` applied to a value with a non-empty \
         inferred dimension (e.g. a raw voltage: Eq. 1 requires `(Vgs - Vth)/(m vT)` \
         first), or `**` with a non-integer literal exponent on a dimensioned base";
      stays_clean_on =
        "dimensionless arguments (voltage ratios, normalized currents), integer \
         literal exponents (which scale the dimension), `sqrt` (exponents halve), and \
         unknown-dimension arguments" };
    { id = unt003;
      severity = Diagnostic.Warning;
      title = "dimensional analysis: display-unit and SI values mixed";
      fires_on =
        "combining a value tagged with a display unit (produced by `Constants.to_nm`, \
         `to_per_cm3`, `to_pa_per_um`, or a `[@units \"nm\"]` assertion) with an \
         SI-scaled value of the same dimension without converting back";
      stays_clean_on =
        "staying inside one unit system, and crossing only through the `Constants` \
         conversion helpers (`nm`, `per_cm3`, `pa_per_um`, ...)" };
    { id = unt004;
      severity = Diagnostic.Error;
      title = "dimensional analysis: argument contradicts a seeded signature";
      fires_on =
        "calling a table-seeded function (`Silicon.fermi_potential`, \
         `Subthreshold.current`, ...) with an argument whose inferred dimension \
         differs from the table (passing a voltage where a doping density belongs)";
      stays_clean_on =
        "arguments matching the table, literals, and arguments the pass cannot \
         infer" };
    { id = unt005;
      severity = Diagnostic.Info;
      title = "dimensional analysis: dimension lost through a container round-trip";
      fires_on =
        "a literal closure with a dimensioned result passed to `List.map`/`fold`/\
         `Array.map`/... — the element dimension is not tracked through the \
         container, so everything downstream degrades to unknown (reported once per \
         site, info only)";
      stays_clean_on =
        "closures with dimensionless or unknown results, and direct (non-container) \
         dataflow" };
    { id = als001;
      severity = Diagnostic.Error;
      title = "buffer ownership: no parallel mutation of captured flat buffers";
      fires_on =
        "a literal closure passed to `Exec.map`/`Pool.map` whose body — directly or \
         through resolved calls, per the interprocedural summaries — mutates an \
         `Fvec.t`/`Field.t`/`Bigarray.Array1.t` rooted in a capture (e.g. a captured \
         record whose field is written through a helper three calls down)";
      stays_clean_on =
        "closures that only read captured buffers, mutate buffers they allocated \
         themselves, or receive the buffer as their own argument; direct captures of \
         buffer-typed values are LNT001's business" };
    { id = als002;
      severity = Diagnostic.Error;
      title = "buffer ownership: solver scratch never escapes or overlaps";
      fires_on =
        "a `Poisson.scratch`/`Stencil5.t` workspace stored into a long-lived structure \
         (ref, Hashtbl, record field) — escape — or mutated through a capture inside a \
         closure entering the parallel engine, where every domain would reenter the \
         solver with the same workspace";
      stays_clean_on =
        "scratch threaded linearly as arguments and return values (caller-owned, \
         reused across *sequential* solves), and per-call workspaces allocated inside \
         the closure" };
    { id = als003;
      severity = Diagnostic.Error;
      title = "buffer ownership: solver outputs must not alias inputs";
      fires_on =
        "a call whose mutated (output) buffer argument provably aliases another \
         argument of the same call — `Fvec.blit v v`, `Stencil5.mat_vec a x x`, or the \
         same aliasing through let-bindings and field projections";
      stays_clean_on =
        "distinct buffers, distinct record fields of one value (`s.sys` vs `s.work`), \
         and anything the root analysis cannot prove aliased (unknown never fires)" };
    { id = als004;
      severity = Diagnostic.Warning;
      title = "buffer ownership: returned buffers are not retained";
      fires_on =
        "a function that returns a flat buffer it also stored into longer-lived state \
         (a ref, container, or record field) — the caller receives a value someone \
         else can still mutate";
      stays_clean_on =
        "returning freshly allocated or argument buffers without storing them, and \
         functions annotated `[@owned]` (deliberate sharing, e.g. an interned \
         read-only table)" };
    { id = rac001;
      severity = Diagnostic.Error;
      title = "lockset: shared mutable state crosses domains under one consistent lock";
      fires_on =
        "a mutable record field (declared next to a `Mutex.t`) or a module-level \
         `ref`/`Hashtbl.t`/`Queue.t` in a unit that defines a module mutex, written \
         somewhere and reachable from a domain-crossing closure \
         (`Exec.map*`/`Pool.map`/`Domain.spawn`), where the intersection of locks \
         held across all accesses is empty — Eraser-style lockset refinement over \
         the interprocedural callgraph";
      stays_clean_on =
        "state guarded by the same mutex at every access (same instance for field \
         locks, same module lock for globals), `Atomic.t` fields \
         (memory-model-sanctioned), `Mutex.t`/`Condition.t` themselves, \
         initialization writes to a record still being constructed, and code where \
         no lock is ever in play for the class (some other synchronization may \
         exist: unknown never convicts)" };
    { id = rac002;
      severity = Diagnostic.Error;
      title = "lockset: critical sections are exception-safe";
      fires_on =
        "a `Mutex.lock` whose section can raise before the matching `Mutex.unlock` \
         — a partial stdlib call, an unresolved call (deliberately pessimistic \
         here), or a resolved callee whose summary may raise — so an exception \
         leaks the mutex forever; reported at the acquisition site with the first \
         piece of raise evidence";
      stays_clean_on =
        "`Mutex.protect`, `Fun.protect ~finally` unlocking the same mutex, \
         sections whose every operation is on the never-raises table \
         (`Hashtbl.replace`, `Queue.push`, arithmetic, ...), raise evidence \
         swallowed by a catch-all `try`, and early exits that unlock first" };
    { id = rac003;
      severity = Diagnostic.Error;
      title = "lockset: no self-deadlock, one global lock order";
      fires_on =
        "re-acquiring a mutex provably already held (stdlib mutexes are \
         non-reentrant), directly, through an inlined local helper, or through a \
         resolved call whose summary acquires the same class or the same \
         parameter-rooted lock; and any pair of lock classes acquired in both \
         orders anywhere in the program (deadlock window), reported at both sites";
      stays_clean_on =
        "distinct instances of a per-value lock class (two different shard locks), \
         release-before-reacquire, and nesting that always follows one order \
         (the DESIGN.md hierarchy)" };
    { id = rac004;
      severity = Diagnostic.Warning;
      title = "lockset: atomic updates are not torn";
      fires_on =
        "`Atomic.set a v` where `v` is derived from `Atomic.get a` (directly or \
         through a let-binding): a concurrent update between the get and the set \
         is silently lost";
      stays_clean_on =
        "`Atomic.fetch_and_add`/`incr`/`decr`/`exchange`, `compare_and_set` retry \
         loops, and get/set pairs on provably different atomics" };
    { id = rac005;
      severity = Diagnostic.Warning;
      title = "lockset: no blocking syscalls under a lock";
      fires_on =
        "`Unix.read`/`write`/`connect`/`select`/..., channel IO, `Sys.rename`, or \
         `Domain.join` reached while any lock is held (directly or via a resolved \
         callee that may block): every domain contending for the lock stalls \
         behind the IO";
      stays_clean_on =
        "IO outside critical sections, `Condition.wait` (it releases the mutex — \
         the sanctioned pattern), and bindings annotated `[@blocking_ok]` (the \
         store's by-design write-behind IO under a shard lock)" } ]

let severity_of_id id =
  match List.find_opt (fun m -> m.id = id) all with
  | Some m -> m.severity
  | None -> Diagnostic.Warning

let find id = List.find_opt (fun m -> m.id = id) all

(* The --rules markdown table; checked in under docs/lint-rules.md and
   diffed in CI so docs can never drift from the implementation. *)
let markdown () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# `subscale lint` rules\n\n";
  Buffer.add_string b
    "Generated by `subscale lint --rules`; do not edit by hand (CI diffs this file\n\
     against the command output).\n\n";
  Buffer.add_string b "| Rule | Severity | Fires on | Stays clean on |\n";
  Buffer.add_string b "|------|----------|----------|----------------|\n";
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "| **%s** — %s | %s | %s | %s |\n" m.id m.title
           (Diagnostic.severity_label m.severity)
           m.fires_on m.stays_clean_on))
    all;
  Buffer.add_string b
    "\nFindings are grandfathered by listing them in `lint.baseline` \
     (`<rule> <file>:<line> — justification`); `subscale lint --strict` fails on any\n\
     non-baselined finding, and stale baseline entries are reported so the file\n\
     shrinks monotonically.\n";
  Buffer.contents b
