(** Interprocedural ownership summaries for the ALS pass.

    A fixpoint over the {!Callgraph} computes, per function parameter,
    whether it is mutated, stored (escapes into a ref / field / container),
    or returned (aliases the result) — seeded by a primitive table for the
    Bigarray/Fvec/Stencil5 hot-path operations and propagated through
    resolved calls.  Unresolved callees are effect-free: a missing summary
    can silence a finding but never invent one. *)

type effect_ = { mutated : bool; buffer_mut : bool; stored : bool; returned : bool }
(** [buffer_mut]: the mutation evidence bottoms out in a flat-buffer
    primitive (Bigarray/Fvec/Stencil5) rather than a classic container —
    the ALS pass convicts on buffer-flavored evidence only. *)

type fsum = { fdef : Callgraph.def; effects : effect_ array }
(** One effect per parameter, in currying order. *)

type env

type slot = Pos of int | Lab of string
(** Argument slot in a calling convention: position among the unlabelled
    arguments, or a label name. *)

type call_effects = {
  ce_mutated : slot list;
  ce_buffer_mutated : slot list;  (** subset of [ce_mutated]: buffer-flavored *)
  ce_stored : slot list;
  ce_returns : slot option;       (** the result aliases this argument *)
}

val compute : Callgraph.t -> env
(** Run the fixpoint over every definition in the graph. *)

val find_sum : env -> string -> fsum option
(** Summary for a qualified definition name ("Poisson.solve"). *)

val callgraph : env -> Callgraph.t
(** The graph the summaries were computed over. *)

val call_effects : env -> current_unit:string -> Path.t -> call_effects option
(** Effects of calling the named function: the primitive table first, then
    the computed summary of a resolved definition, else [None]. *)

val actual_of_slot :
  (Asttypes.arg_label * Typedtree.expression option) list ->
  slot ->
  Typedtree.expression option
(** The call-site argument occupying a slot, if supplied. *)

(** Root/alias tracking over one definition's body, shared with the
    checking pass. *)
module Flow : sig
  type base =
    | Param of int     (** parameter of the enclosing definition *)
    | Local of string  (** [Ident.unique_name] bound inside the definition *)
    | Outer of string  (** module-level value or capture from outside *)

  type root = { base : base; rev_fields : string list }
  (** A value's origin plus its field-projection trail (innermost first):
      [s.sys] roots at [s] with trail [["sys"]]. *)

  type ctx

  val ctx_of_def : env -> Callgraph.def -> ctx
  (** Collect the definition's bound idents and [let x = e] aliases so
      root resolution is order-independent. *)

  val roots : ?depth:int -> ctx -> Typedtree.expression -> root list
  (** What an expression can alias, through let-chains, field projections,
      single-argument constructors, and callees known to return an
      argument.  Unknown shapes yield []. *)

  val base_ident : base -> string option
  (** The unique name of a [Local] base. *)

  val overlapping_roots : root -> root -> bool
  (** Same base and one projection trail extends the other: [s] overlaps
      [s.sys]; [s.sys] does not overlap [s.work]. *)

  val tails : Typedtree.expression -> Typedtree.expression list
  (** Result expressions of a body: tail positions flattened through
      constructors, tuples and records. *)
end

val selftest : unit -> int
