(** Locating and reading the .cmt typedtree artifacts dune produces; the
    linter never re-typechecks anything. *)

type unit_info = {
  cmt_path : string;
  source : string;  (** compiler-recorded source path, e.g. "lib/exec/pool.ml" *)
  structure : Typedtree.structure;
}

type load_result = Unit of unit_info | Skipped | Unreadable of string * string

val load : string -> load_result
(** Read one .cmt.  [Skipped] for interfaces, packed modules and generated
    wrapper modules ([*-gen] sources). *)

val load_root : string -> unit_info list * (string * string) list
(** All implementation units under a directory tree, deduplicated by source
    file and sorted by source path, plus any unreadable artifacts (also
    deduplicated, by context-free path).  When the same source appears
    under several dune contexts, the [default] context's artifact wins;
    ties break on the lexicographically first path, so a multi-context
    [_build] never yields duplicate diagnostics for one line. *)
