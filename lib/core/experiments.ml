type context = {
  super : Scaling.Strategy.evaluation list;
  sub : Scaling.Strategy.evaluation list;
}

(* Every selected device passes the static checker before any experiment
   simulates with it: a mis-selected doping or a broken compact model
   should fail here with a named parameter, not as a non-converging loop
   three drivers later. *)
let validate_evaluation which (e : Scaling.Strategy.evaluation) =
  let what =
    Printf.sprintf "%s %d nm device" which e.Scaling.Strategy.node.Scaling.Roadmap.nm
  in
  Check.assert_clean ~what (Check.physical e.Scaling.Strategy.phys);
  let vdd = e.Scaling.Strategy.phys.Device.Params.vdd in
  Check.assert_clean ~what
    (Check.compact e.Scaling.Strategy.pair.Circuits.Inverter.nfet ~vdd);
  Check.assert_clean ~what
    (Check.compact e.Scaling.Strategy.pair.Circuits.Inverter.pfet ~vdd)

let make_context ?cal ?(with_130 = false) () =
  Obs.Trace.with_span ~cat:"experiments" "experiments.make_context" @@ fun () ->
  let ctx =
    {
      super = Scaling.Strategy.super_vth_trajectory ?cal ~with_130 ();
      sub = Scaling.Strategy.sub_vth_trajectory ?cal ~with_130 ();
    }
  in
  List.iter (validate_evaluation "super-Vth") ctx.super;
  List.iter (validate_evaluation "sub-Vth") ctx.sub;
  ctx

let super_of c = c.super
let sub_of c = c.sub

type output = { id : string; table : Report.Table.t; plots : string list }

(* One span per paper artefact: the trace's top-level view is "which
   table/figure cost what", with solver and pool spans nested beneath. *)
let traced id f = Obs.Trace.with_span ~cat:"experiments" ("experiments." ^ id) f

let fmt = Report.Table.fmt
let nm = Physics.Constants.to_nm
let cm3 v = Physics.Constants.to_per_cm3 v /. 1e18
let pa = Physics.Constants.to_pa_per_um
let mv v = 1000.0 *. v

(* Rows without the 130 nm back-extrapolation (it only belongs in Fig. 12). *)
let roadmap_only evals =
  List.filter (fun e -> e.Scaling.Strategy.node.Scaling.Roadmap.nm <> 130) evals

let node_of e = e.Scaling.Strategy.node.Scaling.Roadmap.nm

let table1 () =
  traced "table1" @@ fun () ->
  let alpha = 1.0 /. 0.7 and epsilon = 1.1 in
  let f = Scaling.Generalized.factors ~alpha ~epsilon in
  let rows =
    [
      [ "Physical dimensions (Lpoly, Tox, ...)"; "1/alpha";
        fmt "%.3f" f.Scaling.Generalized.physical_dimension ];
      [ "N_ch"; "eps*alpha"; fmt "%.3f" f.Scaling.Generalized.channel_doping ];
      [ "V_dd"; "eps/alpha"; fmt "%.3f" f.Scaling.Generalized.vdd ];
      [ "Area"; "1/alpha^2"; fmt "%.3f" f.Scaling.Generalized.area ];
      [ "Delay"; "1/alpha"; fmt "%.3f" f.Scaling.Generalized.delay ];
      [ "Power"; "eps^2/alpha^2"; fmt "%.3f" f.Scaling.Generalized.power ];
    ]
  in
  {
    id = "table1";
    table =
      Report.Table.make ~title:"Table 1: generalized scaling (alpha = 1.43, epsilon = 1.1)"
        ~headers:[ "Parameter"; "Scaling factor"; "Per generation" ]
        ~notes:[ "paper Table 1 lists the symbolic factors; numeric column is one step" ]
        rows;
    plots = [];
  }

(* Paper values for Table 2, in row order 90/65/45/32. *)
let paper_t2 =
  [
    (65.0, 2.10, 1.52, 3.63, 1.2, 403.0, 100.0, 1.30);
    (46.0, 1.89, 1.97, 5.17, 1.1, 420.0, 125.0, 0.97);
    (32.0, 1.70, 2.52, 7.83, 1.0, 438.0, 156.0, 0.75);
    (22.0, 1.53, 3.31, 12.0, 0.9, 461.0, 195.0, 0.62);
  ]

let table2 ctx =
  traced "table2" @@ fun () ->
  let rows =
    List.concat
      (Exec.map2
         (fun e (lp, tox, nsub, nhalo, vdd, vth, ioff, tau) ->
           let phys = e.Scaling.Strategy.phys in
           let nfet = e.Scaling.Strategy.pair.Circuits.Inverter.nfet in
           let tau_ours =
             1e12 *. Device.Iv_model.intrinsic_delay nfet ~vdd:phys.Device.Params.vdd
           in
           [
             [ fmt "%d ours" (node_of e);
               fmt "%.0f" (nm phys.Device.Params.lpoly);
               fmt "%.2f" (nm phys.Device.Params.tox);
               fmt "%.2f" (cm3 phys.Device.Params.nsub);
               fmt "%.2f" (cm3 (Device.Params.nhalo_net phys));
               fmt "%.1f" phys.Device.Params.vdd;
               fmt "%.0f" (mv e.Scaling.Strategy.vth_sat);
               fmt "%.0f" (pa e.Scaling.Strategy.ioff_nominal);
               fmt "%.2f" tau_ours ];
             [ fmt "%d paper" (node_of e);
               fmt "%.0f" lp; fmt "%.2f" tox; fmt "%.2f" nsub; fmt "%.2f" nhalo;
               fmt "%.1f" vdd; fmt "%.0f" vth; fmt "%.0f" ioff; fmt "%.2f" tau ];
           ])
         (roadmap_only ctx.super) paper_t2)
  in
  {
    id = "table2";
    table =
      Report.Table.make ~title:"Table 2: NFET parameters under super-Vth scaling"
        ~headers:
          [ "node"; "Lpoly nm"; "Tox nm"; "Nsub e18"; "Nhalo e18"; "Vdd";
            "Vth_sat mV"; "Ioff pA/um"; "CgVdd/Ion ps" ]
        ~notes:
          [ "dopings are selected by the Fig. 1(c) flow against the leakage budget";
            "Ioff rows match the budget by construction" ]
        rows;
    plots = [];
  }

let paper_t3 =
  [
    (95.0, 2.10, 1.61, 2.02, 1.00, 1.00);
    (75.0, 1.89, 1.99, 2.73, 0.80, 0.80);
    (60.0, 1.70, 2.53, 2.93, 0.65, 0.65);
    (45.0, 1.53, 3.19, 4.89, 0.51, 0.50);
  ]

let table3 ctx =
  traced "table3" @@ fun () ->
  let subs = roadmap_only ctx.sub in
  let ef0 = (List.hd subs).Scaling.Strategy.energy_factor in
  let df0 = (List.hd subs).Scaling.Strategy.delay_factor in
  let rows =
    List.concat
      (Exec.map2
         (fun e (lp, tox, nsub, nhalo, clss2, clss) ->
           let phys = e.Scaling.Strategy.phys in
           [
             [ fmt "%d ours" (node_of e);
               fmt "%.0f" (nm phys.Device.Params.lpoly);
               fmt "%.2f" (nm phys.Device.Params.tox);
               fmt "%.2f" (cm3 phys.Device.Params.nsub);
               fmt "%.2f" (cm3 (Device.Params.nhalo_net phys));
               fmt "%.2f" (e.Scaling.Strategy.energy_factor /. ef0);
               fmt "%.2f" (e.Scaling.Strategy.delay_factor /. df0) ];
             [ fmt "%d paper" (node_of e);
               fmt "%.0f" lp; fmt "%.2f" tox; fmt "%.2f" nsub; fmt "%.2f" nhalo;
               fmt "%.2f" clss2; fmt "%.2f" clss ];
           ])
         subs paper_t3)
  in
  {
    id = "table3";
    table =
      Report.Table.make ~title:"Table 3: NFET parameters under sub-Vth scaling"
        ~headers:
          [ "node"; "Lpoly nm"; "Tox nm"; "Nsub e18"; "Nhalo e18";
            "CL*SS^2 a.u."; "CL*SS a.u." ]
        ~notes:
          [ "Lpoly is the energy-factor optimum at constant Ioff = 100 pA/um";
            "factor columns normalized to the 90 nm node" ]
        rows;
    plots = [];
  }

let fig2 ctx =
  traced "fig2" @@ fun () ->
  let evals = roadmap_only ctx.super in
  let rows =
    List.map
      (fun e ->
        [ fmt "%d" (node_of e);
          fmt "%.1f" (mv e.Scaling.Strategy.ss);
          fmt "%.0f" e.Scaling.Strategy.on_off_sub ])
      evals
  in
  let first = List.hd evals and last = List.nth evals (List.length evals - 1) in
  let ss_deg =
    100.0 *. ((last.Scaling.Strategy.ss /. first.Scaling.Strategy.ss) -. 1.0)
  in
  let ratio_drop =
    100.0 *. (1.0 -. (last.Scaling.Strategy.on_off_sub /. first.Scaling.Strategy.on_off_sub))
  in
  let plot =
    Report.Plot.render ~title:"Fig 2: SS (mV/dec) vs node (super-Vth)"
      ~x_label:"node nm" ~y_label:"SS"
      [
        { Report.Plot.name = "SS";
          points =
            Array.of_list
              (List.map (fun e -> (float_of_int (node_of e), mv e.Scaling.Strategy.ss)) evals) };
      ]
  in
  {
    id = "fig2";
    table =
      Report.Table.make ~title:"Fig 2: NFET SS and Ion/Ioff at Vdd = 250 mV (super-Vth)"
        ~headers:[ "node"; "SS mV/dec"; "Ion/Ioff @250mV" ]
        ~notes:
          [ fmt "SS degrades %.1f%% from 90 to 32 nm (paper: ~11%%)" ss_deg;
            fmt "Ion/Ioff drops %.0f%% from 90 to 32 nm (paper: ~60%%)" ratio_drop ]
        rows;
    plots = [ plot ];
  }

let fig3 ctx =
  traced "fig3" @@ fun () ->
  let rows =
    List.map
      (fun e ->
        let nfet = e.Scaling.Strategy.pair.Circuits.Inverter.nfet in
        let vdd = e.Scaling.Strategy.node.Scaling.Roadmap.vdd in
        let ion_nom = Device.Iv_model.ion nfet ~vdd in
        (* A/m of width is numerically uA/um. *)
        [ fmt "%d" (node_of e);
          fmt "%.0f" ion_nom;
          fmt "%.3f" e.Scaling.Strategy.ion_sub ])
      (roadmap_only ctx.super)
  in
  {
    id = "fig3";
    table =
      Report.Table.make ~title:"Fig 3: NFET Ion at nominal Vdd and at 250 mV (super-Vth)"
        ~headers:[ "node"; "Ion nom uA/um"; "Ion 250mV uA/um" ]
        ~notes:
          [ "leakage-constrained scaling reduces Ion with each generation";
            "the reduction is steeper in the sub-Vth column (paper Sec. 2.3.1)" ]
        rows;
    plots = [];
  }

let snm_at pair vdd =
  let sizing = Circuits.Inverter.balanced_sizing () in
  match Analysis.Snm.inverter ~engine:`Spice pair ~sizing ~vdd with
  | m -> m.Analysis.Snm.snm
  | exception Failure _ -> 0.0

let fig4 ctx =
  traced "fig4" @@ fun () ->
  let evals = roadmap_only ctx.super in
  let rows =
    Exec.map
      (fun e ->
        let vdd = e.Scaling.Strategy.node.Scaling.Roadmap.vdd in
        [ fmt "%d" (node_of e);
          fmt "%.0f" (mv (snm_at e.Scaling.Strategy.pair vdd));
          fmt "%.1f" (mv e.Scaling.Strategy.snm_sub) ])
      evals
  in
  let first = List.hd evals and last = List.nth evals (List.length evals - 1) in
  let deg =
    100.0 *. (1.0 -. (last.Scaling.Strategy.snm_sub /. first.Scaling.Strategy.snm_sub))
  in
  {
    id = "fig4";
    table =
      Report.Table.make ~title:"Fig 4: simulated inverter SNM (super-Vth)"
        ~headers:[ "node"; "SNM@nominal mV"; "SNM@250mV mV" ]
        ~notes:[ fmt "sub-Vth SNM degrades %.1f%% from 90 to 32 nm (paper: >10%%)" deg ]
        rows;
    plots = [];
  }

let fig5 ?(measured = true) ctx =
  traced "fig5" @@ fun () ->
  let sizing = Circuits.Inverter.balanced_sizing () in
  let rows =
    Exec.map
      (fun e ->
        let pair = e.Scaling.Strategy.pair in
        let vdd = e.Scaling.Strategy.node.Scaling.Roadmap.vdd in
        let t_nom = Analysis.Delay.eq5 pair ~sizing ~vdd in
        let t_sub = Analysis.Delay.eq5 pair ~sizing ~vdd:0.25 in
        let meas =
          if measured then
            fmt "%.1f" (1e9 *. (Analysis.Delay.measured pair ~sizing ~vdd:0.25).Analysis.Delay.tp)
          else "-"
        in
        [ fmt "%d" (node_of e);
          fmt "%.1f" (1e12 *. t_nom);
          fmt "%.1f" (1e9 *. t_sub);
          meas ])
      (roadmap_only ctx.super)
  in
  {
    id = "fig5";
    table =
      Report.Table.make ~title:"Fig 5: simulated FO1 inverter delay (super-Vth)"
        ~headers:[ "node"; "tp@nominal ps (Eq.5)"; "tp@250mV ns (Eq.5)"; "tp@250mV ns (transient)" ]
        ~notes:
          [ "nominal delay improves with scaling; 250 mV delay degrades (paper Fig. 5)" ]
        rows;
    plots = [];
  }

let fig6 ctx =
  traced "fig6" @@ fun () ->
  let evals = roadmap_only ctx.super in
  let sizing = Circuits.Inverter.balanced_sizing () in
  let e0 = List.hd evals in
  let ef0 = e0.Scaling.Strategy.energy_factor in
  let en0 = e0.Scaling.Strategy.energy_at_vmin in
  let rows =
    List.map
      (fun e ->
        [ fmt "%d" (node_of e);
          fmt "%.0f" (mv e.Scaling.Strategy.vmin);
          fmt "%.2f" (1e15 *. e.Scaling.Strategy.energy_at_vmin);
          fmt "%.2f" (e.Scaling.Strategy.energy_at_vmin /. en0);
          fmt "%.2f" (e.Scaling.Strategy.energy_factor /. ef0) ])
      evals
  in
  (* Energy-vs-Vdd curve of the 90 nm node, the figure's characteristic U. *)
  let curve = (Analysis.Energy.vmin ~sizing e0.Scaling.Strategy.pair).Analysis.Energy.curve in
  let plot =
    Report.Plot.render ~title:"Fig 6 inset: E/cycle vs Vdd, 90 nm chain (J)"
      ~x_label:"Vdd V" ~y_label:"E J"
      [
        { Report.Plot.name = "E total";
          points =
            Array.of_list
              (List.map (fun (v, b) -> (v, b.Analysis.Energy.e_total)) curve) };
      ]
  in
  let first = List.hd evals and last = List.nth evals (List.length evals - 1) in
  let dvmin = mv (last.Scaling.Strategy.vmin -. first.Scaling.Strategy.vmin) in
  {
    id = "fig6";
    table =
      Report.Table.make
        ~title:"Fig 6: energy/cycle and Vmin, 30-inverter chain, alpha = 0.1 (super-Vth)"
        ~headers:[ "node"; "Vmin mV"; "E@Vmin fJ"; "E norm"; "CL*SS^2 norm" ]
        ~notes:
          [ fmt "Vmin grows %.0f mV from 90 to 32 nm (paper: ~40 mV)" dvmin;
            "the CL*SS^2 factor tracks the measured energy (paper Eq. 8)" ]
        rows;
    plots = [ plot ];
  }

let fig7 () =
  traced "fig7" @@ fun () ->
  let node = Scaling.Roadmap.find 45 in
  let lpolys =
    Array.map Physics.Constants.nm [| 30.; 35.; 40.; 45.; 50.; 60.; 70.; 85.; 100.; 120. |]
  in
  let optimized = Scaling.Sub_vth.ss_vs_lpoly ~node ~lpolys ~fixed_doping:None () in
  let fixed_phys =
    Scaling.Sub_vth.doping_for_lpoly ~node ~lpoly:node.Scaling.Roadmap.lpoly ()
  in
  let fixed =
    Scaling.Sub_vth.ss_vs_lpoly ~node ~lpolys ~fixed_doping:(Some fixed_phys) ()
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (lp, ss_opt) ->
           [ fmt "%.0f" (nm lp); fmt "%.1f" (mv ss_opt); fmt "%.1f" (mv (snd fixed.(i))) ])
         optimized)
  in
  let plot =
    Report.Plot.render ~title:"Fig 7: SS vs Lpoly, 45 nm device (mV/dec)"
      ~x_label:"Lpoly nm" ~y_label:"SS"
      [
        { Report.Plot.name = "doping optimized per Lpoly";
          points = Array.map (fun (l, s) -> (nm l, mv s)) optimized };
        { Report.Plot.name = "fixed doping profile";
          points = Array.map (fun (l, s) -> (nm l, mv s)) fixed };
      ]
  in
  {
    id = "fig7";
    table =
      Report.Table.make ~title:"Fig 7: SS as a function of gate length (45 nm device)"
        ~headers:[ "Lpoly nm"; "SS optimized mV/dec"; "SS fixed-doping mV/dec" ]
        ~notes:[ "joint Lpoly+doping optimization beats lengthening alone (paper Sec. 3.1)" ]
        rows;
    plots = [ plot ];
  }

let fig8 () =
  traced "fig8" @@ fun () ->
  let node = Scaling.Roadmap.find 45 in
  let sel = Scaling.Sub_vth.select_node node in
  let samples = sel.Scaling.Sub_vth.lpoly_grid in
  let ef0 = List.fold_left (fun acc (_, ef, _) -> Float.min acc ef) infinity samples in
  let df0 = List.fold_left (fun acc (_, _, df) -> Float.min acc df) infinity samples in
  let rows =
    List.map
      (fun (lp, ef, df) ->
        [ fmt "%.0f" (nm lp); fmt "%.3f" (ef /. ef0); fmt "%.3f" (df /. df0) ])
      samples
  in
  let plot =
    Report.Plot.render ~title:"Fig 8: energy and delay factors vs Lpoly (45 nm, min = 1)"
      ~x_label:"Lpoly nm" ~y_label:"factor"
      [
        { Report.Plot.name = "energy factor CL*SS^2";
          points = Array.of_list (List.map (fun (l, ef, _) -> (nm l, ef /. ef0)) samples) };
        { Report.Plot.name = "delay factor CL*SS/Ioff";
          points = Array.of_list (List.map (fun (l, _, df) -> (nm l, df /. df0)) samples) };
      ]
  in
  {
    id = "fig8";
    table =
      Report.Table.make ~title:"Fig 8: energy and delay factors vs Lpoly (45 nm device)"
        ~headers:[ "Lpoly nm"; "energy factor (min=1)"; "delay factor (min=1)" ]
        ~notes:
          [ fmt "energy-optimal Lpoly = %.0f nm (paper: 60 nm)"
              (nm sel.Scaling.Sub_vth.phys.Device.Params.lpoly);
            "the delay minimum is shallow, so the energy optimum costs little (paper)" ]
        rows;
    plots = [ plot ];
  }

let fig9 ctx =
  traced "fig9" @@ fun () ->
  let rows =
    Exec.map2
      (fun sup sub ->
        [ fmt "%d" (node_of sup);
          fmt "%.0f" (nm sup.Scaling.Strategy.phys.Device.Params.lpoly);
          fmt "%.0f" (nm sub.Scaling.Strategy.phys.Device.Params.lpoly);
          fmt "%.1f" (mv sup.Scaling.Strategy.ss);
          fmt "%.1f" (mv sub.Scaling.Strategy.ss) ])
      (roadmap_only ctx.super) (roadmap_only ctx.sub)
  in
  let subs = roadmap_only ctx.sub in
  let l_first = (List.hd subs).Scaling.Strategy.phys.Device.Params.lpoly in
  let l_last =
    (List.nth subs (List.length subs - 1)).Scaling.Strategy.phys.Device.Params.lpoly
  in
  let per_gen =
    100.0 *. (1.0 -. ((l_last /. l_first) ** (1.0 /. float_of_int (List.length subs - 1))))
  in
  {
    id = "fig9";
    table =
      Report.Table.make ~title:"Fig 9: Lpoly and SS under both scaling strategies"
        ~headers:
          [ "node"; "Lpoly super nm"; "Lpoly sub nm"; "SS super mV/dec"; "SS sub mV/dec" ]
        ~notes:
          [ fmt "sub-Vth Lpoly shrinks %.0f%%/generation (paper: 20-25%%, super-Vth: 30%%)"
              per_gen;
            "sub-Vth SS stays ~80 mV/dec across nodes (paper)" ]
        rows;
    plots = [];
  }

let fig10 ctx =
  traced "fig10" @@ fun () ->
  let supers = roadmap_only ctx.super and subs = roadmap_only ctx.sub in
  let rows =
    Exec.map2
      (fun sup sub ->
        [ fmt "%d" (node_of sup);
          fmt "%.1f" (mv sup.Scaling.Strategy.snm_sub);
          fmt "%.1f" (mv sub.Scaling.Strategy.snm_sub);
          fmt "%.1f"
            (100.0
             *. ((sub.Scaling.Strategy.snm_sub /. sup.Scaling.Strategy.snm_sub) -. 1.0)) ])
      supers subs
  in
  let last_sup = List.nth supers (List.length supers - 1) in
  let last_sub = List.nth subs (List.length subs - 1) in
  let gain =
    100.0 *. ((last_sub.Scaling.Strategy.snm_sub /. last_sup.Scaling.Strategy.snm_sub) -. 1.0)
  in
  {
    id = "fig10";
    table =
      Report.Table.make ~title:"Fig 10: inverter SNM at 250 mV under both strategies"
        ~headers:[ "node"; "SNM super mV"; "SNM sub mV"; "gain %" ]
        ~notes:[ fmt "sub-Vth SNM is %.0f%% larger at 32 nm (paper: 19%%)" gain ]
        rows;
    plots = [];
  }

let fig11 ctx =
  traced "fig11" @@ fun () ->
  let supers = roadmap_only ctx.super and subs = roadmap_only ctx.sub in
  let d0_sup = (List.hd supers).Scaling.Strategy.delay_sub in
  let d0_sub = (List.hd subs).Scaling.Strategy.delay_sub in
  let rows =
    Exec.map2
      (fun sup sub ->
        [ fmt "%d" (node_of sup);
          fmt "%.2f" (sup.Scaling.Strategy.delay_sub /. d0_sup);
          fmt "%.2f" (sub.Scaling.Strategy.delay_sub /. d0_sub) ])
      supers subs
  in
  let last_sub = List.nth subs (List.length subs - 1) in
  let per_gen =
    100.0
    *. (1.0
        -. ((last_sub.Scaling.Strategy.delay_sub /. d0_sub)
            ** (1.0 /. float_of_int (List.length subs - 1))))
  in
  {
    id = "fig11";
    table =
      Report.Table.make
        ~title:"Fig 11: normalized FO1 inverter delay at Vdd = 250 mV (each strategy vs its own 90 nm)"
        ~headers:[ "node"; "delay super (norm)"; "delay sub (norm)" ]
        ~notes:
          [ fmt "sub-Vth delay improves %.0f%%/generation (paper: ~18%%)" per_gen;
            "super-Vth delay is non-monotonic/degrading at 250 mV (paper Fig. 5/11)" ]
        rows;
    plots = [];
  }

let fig12 ctx =
  traced "fig12" @@ fun () ->
  let rows =
    Exec.map2
      (fun sup sub ->
        [ fmt "%d" (node_of sup);
          fmt "%.0f" (mv sup.Scaling.Strategy.vmin);
          fmt "%.0f" (mv sub.Scaling.Strategy.vmin);
          fmt "%.2f" (1e15 *. sup.Scaling.Strategy.energy_at_vmin);
          fmt "%.2f" (1e15 *. sub.Scaling.Strategy.energy_at_vmin) ])
      ctx.super ctx.sub
  in
  let last_sup = List.nth ctx.super (List.length ctx.super - 1) in
  let last_sub = List.nth ctx.sub (List.length ctx.sub - 1) in
  let gain =
    100.0
    *. (1.0 -. (last_sub.Scaling.Strategy.energy_at_vmin /. last_sup.Scaling.Strategy.energy_at_vmin))
  in
  let subs = ctx.sub in
  let vmins = List.map (fun e -> e.Scaling.Strategy.vmin) subs in
  let vmin_span =
    mv (List.fold_left Float.max neg_infinity vmins -. List.fold_left Float.min infinity vmins)
  in
  {
    id = "fig12";
    table =
      Report.Table.make
        ~title:"Fig 12: chain energy at Vmin and Vmin under both strategies"
        ~headers:[ "node"; "Vmin super mV"; "Vmin sub mV"; "E super fJ"; "E sub fJ" ]
        ~notes:
          [ fmt "sub-Vth consumes %.0f%% less energy at 32 nm (paper: ~23%%)" gain;
            fmt "sub-Vth Vmin varies only %.0f mV across nodes (paper: 10 mV, 130-32 nm)"
              vmin_span ]
        rows;
    plots = [];
  }

let all ?(measured_delay = true) ctx =
  [
    table1 (); table2 ctx; table3 ctx; fig2 ctx; fig3 ctx; fig4 ctx;
    fig5 ~measured:measured_delay ctx; fig6 ctx; fig7 (); fig8 ();
    fig9 ctx; fig10 ctx; fig11 ctx; fig12 ctx;
  ]

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)
(* ------------------------------------------------------------------ *)

let find_eval evals ~nm =
  List.find (fun e -> node_of e = nm) evals

let ext_variability ctx =
  traced "ext_variability" @@ fun () ->
  let vdds = [ 0.9; 0.5; 0.35; 0.25; 0.2 ] in
  let trace pair = Analysis.Variability.delay_spread_vs_vdd ~trials:300 pair ~vdds in
  let sup90 = (find_eval ctx.super ~nm:90).Scaling.Strategy.pair in
  let sup32 = (find_eval ctx.super ~nm:32).Scaling.Strategy.pair in
  let sub32 = (find_eval ctx.sub ~nm:32).Scaling.Strategy.pair in
  let t90 = trace sup90 and t32 = trace sup32 and t32s = trace sub32 in
  let pct v = fmt "%.1f" (100.0 *. v) in
  let rows =
    List.map2
      (fun ((vdd, s90), (_, s32)) (_, s32s) ->
        [ fmt "%.0f" (1000.0 *. vdd); pct s90; pct s32; pct s32s ])
      (List.combine t90 t32) t32s
  in
  let last l = snd (List.nth l (List.length l - 1)) in
  {
    id = "ext-variability";
    table =
      Report.Table.make
        ~title:"Ext: RDF chain-delay variability sigma/mu [%] vs Vdd (30 stages)"
        ~headers:[ "Vdd mV"; "90nm super"; "32nm super"; "32nm sub" ]
        ~notes:
          [ "variability grows dramatically as Vdd reduces (paper Sec. 1)";
            fmt "at 200 mV the sub-Vth 32 nm device cuts sigma/mu from %.0f%% to %.0f%%"
              (100.0 *. last t32) (100.0 *. last t32s) ]
        rows;
    plots = [];
  }

let ext_multi_vth () =
  traced "ext_multi_vth" @@ fun () ->
  let node = Scaling.Roadmap.find 32 in
  let describe kind =
    let variants = Scaling.Multi_vth.for_node ~strategy:kind node in
    List.map
      (fun (v : Scaling.Multi_vth.variant) ->
        [ fmt "%s %s" (Scaling.Strategy.kind_name kind)
            (Scaling.Multi_vth.flavor_name v.Scaling.Multi_vth.flavor);
          fmt "%.0f" (mv v.Scaling.Multi_vth.vth_sat);
          fmt "%.1f" (pa v.Scaling.Multi_vth.ioff);
          fmt "%.1f" (1e9 *. v.Scaling.Multi_vth.delay_sub);
          fmt "%.0f" (mv v.Scaling.Multi_vth.vmin);
          fmt "%.2f" (1e15 *. v.Scaling.Multi_vth.energy_at_vmin) ])
      variants
  in
  {
    id = "ext-multivth";
    table =
      Report.Table.make
        ~title:"Ext: multi-Vth offering at the 32 nm node (paper Secs. 2.2/3.2)"
        ~headers:
          [ "variant"; "Vth_sat mV"; "Ioff pA/um"; "tp@250mV ns"; "Vmin mV"; "E@Vmin fJ" ]
        ~notes:
          [ "each flavor re-solves the doping for a decade-spaced Ioff budget";
            "LVT trades a decade of leakage for ~2x delay at 250 mV" ]
        (List.concat
           (Exec.map describe [ Scaling.Strategy.Super_vth; Scaling.Strategy.Sub_vth ]));
    plots = [];
  }

let ext_bitline ctx =
  traced "ext_bitline" @@ fun () ->
  let rows =
    Exec.map2
      (fun sup sub ->
        let bits pair =
          Analysis.Bitline.max_bits_per_line pair.Circuits.Inverter.nfet ~vdd:0.25
        in
        let sup_bits = bits sup.Scaling.Strategy.pair in
        let sub_bits = bits sub.Scaling.Strategy.pair in
        [ fmt "%d" (node_of sup); fmt "%d" sup_bits; fmt "%d" sub_bits ])
      (roadmap_only ctx.super) (roadmap_only ctx.sub)
  in
  {
    id = "ext-bitline";
    table =
      Report.Table.make
        ~title:"Ext: max SRAM bits per bitline at Vdd = 250 mV (margin 4x, Sec. 2.3.2)"
        ~headers:[ "node"; "super-Vth"; "sub-Vth" ]
        ~notes:
          [ "Ion/Ioff sets the bits/line budget (paper ref [16])";
            "super-Vth scaling halves the budget by 32 nm; sub-Vth scaling grows it" ]
        rows;
    plots = [];
  }

let ext_temperature () =
  traced "ext_temperature" @@ fun () ->
  let phys = List.hd Device.Params.paper_table2 in
  let sizing = Circuits.Inverter.balanced_sizing () in
  let rows =
    Exec.map
      (fun t ->
        let pair =
          {
            Circuits.Inverter.nfet = Device.Compact.nfet ~t phys;
            pfet = Device.Compact.pfet ~t phys;
          }
        in
        let nfet = pair.Circuits.Inverter.nfet in
        let vmin = Analysis.Energy.vmin ~sizing pair in
        [ fmt "%.0f" t;
          fmt "%.1f" (mv nfet.Device.Compact.ss);
          fmt "%.0f" (pa (Device.Iv_model.ioff nfet ~vdd:0.25));
          fmt "%.0f" (mv vmin.Analysis.Energy.vmin);
          fmt "%.2f" (1e15 *. vmin.Analysis.Energy.e_min) ])
      [ 250.0; 300.0; 350.0; 400.0 ]
  in
  {
    id = "ext-temperature";
    table =
      Report.Table.make
        ~title:"Ext: temperature sensitivity of the 90 nm super-Vth device"
        ~headers:[ "T K"; "SS mV/dec"; "Ioff@250mV pA/um"; "Vmin mV"; "E@Vmin fJ" ]
        ~notes:
          [ "SS ~ T through Eq. 2(a); Ioff grows exponentially with T";
            "Vmin tracks SS, so hot sub-Vth circuits must run at a higher supply" ]
        rows;
    plots = [];
  }

let ext_datapath ctx =
  traced "ext_datapath" @@ fun () ->
  let rows =
    Exec.map
      (fun e ->
        let pair = e.Scaling.Strategy.pair in
        let adder = Circuits.Adder.ripple_carry pair ~vdd:0.25 ~bits:8 in
        let s, co = Circuits.Adder.compute adder ~a:0xA5 ~b:0x5A ~cin:1 in
        let ok = if (s, co) = (0x00, 1) then "pass" else "FAIL" in
        let delay = Circuits.Adder.carry_delay pair ~vdd:0.25 ~bits:8 in
        [ fmt "%d" (node_of e); fmt "%.2f" (1e6 *. delay); ok ])
      (roadmap_only ctx.super)
  in
  {
    id = "ext-datapath";
    table =
      Report.Table.make
        ~title:"Ext: 8-bit ripple-carry adder at Vdd = 250 mV (super-Vth devices)"
        ~headers:[ "node"; "carry delay us"; "0xA5+0x5A+1" ]
        ~notes:
          [ "worst-case carry ripple, transient-measured at 50% crossings";
            "the DC column checks a full-width add against the ideal sum" ]
        rows;
    plots = [];
  }



let ext_interconnect ctx =
  traced "ext_interconnect" @@ fun () ->
  (* Wire RC per node and the wire-vs-gate balance at both operating points:
     at nominal Vdd a 1 mm wire's own RC rivals the gate delay, while at
     250 mV the gate is orders slower, so optimal repeater segments grow to
     centimetres — repeaters effectively disappear from sub-Vth design. *)
  let sizing = Circuits.Inverter.balanced_sizing () in
  let rows =
    Exec.map
      (fun e ->
        let pair = e.Scaling.Strategy.pair in
        let node_nm = node_of e in
        let vdd_nom = e.Scaling.Strategy.node.Scaling.Roadmap.vdd in
        let geometry = Interconnect.Wire.geometry_for_node node_nm in
        let r = Interconnect.Wire.resistance_per_length geometry in
        let c = Interconnect.Wire.capacitance_per_length geometry in
        let wire_1mm =
          Interconnect.Elmore.distributed_delay ~r_per_l:r ~c_per_l:c ~length:1e-3
        in
        let l_opt vdd =
          Interconnect.Repeater.optimal_segment_length pair ~sizing ~vdd ~geometry
        in
        [ fmt "%d" node_nm;
          fmt "%.1f" (r *. 1e-6);
          fmt "%.2f" (c *. 1e15 /. 1e6);
          fmt "%.0f" (1e12 *. wire_1mm);
          fmt "%.0f" (1e12 *. Analysis.Delay.eq5 pair ~sizing ~vdd:vdd_nom);
          fmt "%.1f" (1e9 *. Analysis.Delay.eq5 pair ~sizing ~vdd:0.25);
          fmt "%.2f" (1e3 *. l_opt vdd_nom);
          fmt "%.0f" (1e3 *. l_opt 0.25) ])
      (roadmap_only ctx.super)
  in
  {
    id = "ext-interconnect";
    table =
      Report.Table.make
        ~title:"Ext: wires vs gates across the supply range (intermediate-level copper)"
        ~headers:
          [ "node"; "R ohm/um"; "C fF/um"; "wire RC @1mm ps"; "tp@nom ps"; "tp@250mV ns";
            "repeater Lopt@nom mm"; "Lopt@250mV mm" ]
        ~notes:
          [ "at nominal Vdd a 1 mm wire rivals the gate delay: repeaters every ~0.5 mm";
            "at 250 mV the gate is 1000x slower, pushing optimal repeater spacing to cm";
            "sub-Vth designs are capacitance-, not resistance-, limited" ]
        rows;
    plots = [];
  }

let ext_sta ctx =
  traced "ext_sta" @@ fun () ->
  let rows =
    Exec.map
      (fun e ->
        let pair = e.Scaling.Strategy.pair in
        let lib = Sta.Cell_lib.characterize pair ~vdd:0.25 in
        let d = Sta.Design.create () in
        let bits = 8 in
        let a = Array.init bits (fun _ -> Sta.Design.fresh_net d) in
        let b = Array.init bits (fun _ -> Sta.Design.fresh_net d) in
        let cin = Sta.Design.fresh_net d in
        Array.iter (Sta.Design.mark_input d) a;
        Array.iter (Sta.Design.mark_input d) b;
        Sta.Design.mark_input d cin;
        let sums, cout = Sta.Design.ripple_carry_adder d ~a ~b ~cin in
        Array.iter (Sta.Design.mark_output d) sums;
        Sta.Design.mark_output d cout;
        let report = Sta.Engine.analyze lib d in
        let spice = Circuits.Adder.carry_delay pair ~vdd:0.25 ~bits in
        [ fmt "%d" (node_of e);
          fmt "%.2f" (1e6 *. report.Sta.Engine.critical_time);
          fmt "%d" (List.length report.Sta.Engine.critical_path);
          fmt "%.2f" (1e6 *. spice);
          fmt "%.2f" (report.Sta.Engine.critical_time /. spice) ])
      (roadmap_only ctx.super)
  in
  {
    id = "ext-sta";
    table =
      Report.Table.make
        ~title:
          "Ext: static timing analysis of the 8-bit adder at 250 mV (NLDM library per node)"
        ~headers:[ "node"; "STA path us"; "depth"; "SPICE us"; "STA/SPICE" ]
        ~notes:
          [ "cell libraries characterized by transient (3 slews x 3 loads per arc)";
            "STA is conservative (max-arrival, corner slews) as a signoff tool should be" ]
        rows;
    plots = [];
  }

let ext_yield ctx =
  traced "ext_yield" @@ fun () ->
  let sup32 = (find_eval ctx.super ~nm:32).Scaling.Strategy.pair in
  let sub32 = (find_eval ctx.sub ~nm:32).Scaling.Strategy.pair in
  let rows =
    List.concat_map
      (fun (label, pair) ->
        List.map
          (fun vdd ->
            let a = Analysis.Yield.assess ~trials:500 pair ~vdd in
            [ label;
              fmt "%.0f" (mv vdd);
              fmt "%.1f" (mv a.Analysis.Yield.snm_mean);
              fmt "%.1f" (mv a.Analysis.Yield.snm_sigma);
              fmt "%.1e" a.Analysis.Yield.p_cell_fail;
              fmt "%.3f" a.Analysis.Yield.yield_1kb ])
          [ 0.20; 0.25; 0.30 ])
      [ ("32nm super", sup32); ("32nm sub", sub32) ]
  in
  let vmin_sup =
    Analysis.Yield.min_vdd_for_yield ~trials:400 sup32 ~bits:1024 ~target:0.9
  in
  let vmin_sub =
    Analysis.Yield.min_vdd_for_yield ~trials:400 sub32 ~bits:1024 ~target:0.9
  in
  {
    id = "ext-yield";
    table =
      Report.Table.make
        ~title:"Ext: SRAM-style yield under RDF mismatch (inverter-pair SNM, 32 nm)"
        ~headers:
          [ "device"; "Vdd mV"; "SNM mean mV"; "SNM sigma mV"; "P(cell fail)"; "yield 1kb" ]
        ~notes:
          [ fmt "90%%-yield 1 kb minimum supply: super %.0f mV, sub %.0f mV" (mv vmin_sup)
              (mv vmin_sub);
            "the sub-Vth device's flatter SS buys a lower memory Vmin (ref [16])" ]
        rows;
    plots = [];
  }

let ext_projection () =
  traced "ext_projection" @@ fun () ->
  let projected = Scaling.Roadmap.project ~generations:2 in
  let rows =
    List.concat
      (Exec.map
         (fun node ->
        let sup = Scaling.Super_vth.select_node node in
        let sub = Scaling.Sub_vth.select_node node in
        let ss_of (p : Circuits.Inverter.pair) = p.Circuits.Inverter.nfet.Device.Compact.ss in
        [
          [ fmt "%d super" node.Scaling.Roadmap.nm;
            fmt "%.0f" (nm node.Scaling.Roadmap.lpoly);
            fmt "%.2f" (nm node.Scaling.Roadmap.tox);
            fmt "%.1f" (mv (ss_of sup.Scaling.Super_vth.pair));
            fmt "%.0f"
              (Device.Iv_model.on_off_ratio sup.Scaling.Super_vth.pair.Circuits.Inverter.nfet
                 ~vdd:0.25) ];
          [ fmt "%d sub" node.Scaling.Roadmap.nm;
            fmt "%.0f" (nm sub.Scaling.Sub_vth.phys.Device.Params.lpoly);
            fmt "%.2f" (nm node.Scaling.Roadmap.tox);
            fmt "%.1f" (mv (ss_of sub.Scaling.Sub_vth.pair));
            fmt "%.0f"
              (Device.Iv_model.on_off_ratio sub.Scaling.Sub_vth.pair.Circuits.Inverter.nfet
                 ~vdd:0.25) ];
        ])
         projected)
  in
  {
    id = "ext-projection";
    table =
      Report.Table.make
        ~title:"Ext: projecting both strategies past the paper (22 and 16 nm trends)"
        ~headers:[ "node"; "Lpoly nm"; "Tox nm"; "SS mV/dec"; "Ion/Ioff @250mV" ]
        ~notes:
          [ "trend continuation: Lpoly -30%/gen, Tox -10%/gen, leakage +25%/gen";
            "the super-Vth/sub-Vth gap keeps widening beyond the paper's horizon" ]
        rows;
    plots = [];
  }


let ext_corners ctx =
  traced "ext_corners" @@ fun () ->
  let sizing = Circuits.Inverter.balanced_sizing () in
  let sup32 = (find_eval ctx.super ~nm:32).Scaling.Strategy.pair in
  let sub32 = (find_eval ctx.sub ~nm:32).Scaling.Strategy.pair in
  let at_corner pair corner =
    {
      Circuits.Inverter.nfet = Device.Corners.apply corner pair.Circuits.Inverter.nfet;
      pfet = Device.Corners.apply corner pair.Circuits.Inverter.pfet;
    }
  in
  let rows =
    List.concat_map
      (fun (label, pair) ->
        Exec.map
          (fun corner ->
            let p = at_corner pair corner in
            let tp = Analysis.Delay.eq5 p ~sizing ~vdd:0.25 in
            let ioff =
              Device.Iv_model.ioff p.Circuits.Inverter.nfet ~vdd:0.25
            in
            let vm =
              Analysis.Vtc.switching_threshold (Analysis.Vtc.spice ~points:81 p ~sizing ~vdd:0.25)
            in
            [ label; Device.Corners.name corner;
              fmt "%.1f" (1e9 *. tp);
              fmt "%.0f" (pa ioff);
              fmt "%.1f" (mv vm) ])
          Device.Corners.all)
      [ ("32nm super", sup32); ("32nm sub", sub32) ]
  in
  let spread pair =
    let d c = Analysis.Delay.eq5 (at_corner pair c) ~sizing ~vdd:0.25 in
    d Device.Corners.Ss /. d Device.Corners.Ff
  in
  {
    id = "ext-corners";
    table =
      Report.Table.make
        ~title:"Ext: process corners at Vdd = 250 mV (32 nm, +-30 mV global Vth, +-8% mu)"
        ~headers:[ "device"; "corner"; "tp ns"; "Ioff pA/um"; "VM mV" ]
        ~notes:
          [ fmt "SS/FF delay spread: super %.1fx, sub %.1fx" (spread sup32) (spread sub32);
            "a fixed global dVth bites harder at the sub-Vth device's steeper slope \
             (smaller m) - the mirror image of ext-variability, where its smaller \
             sigma_Vth wins";
            "mixed corners (FS/SF) shift the inverter switching threshold VM" ]
        rows;
    plots = [];
  }

let ext_pareto ctx =
  traced "ext_pareto" @@ fun () ->
  let sup32 = (find_eval ctx.super ~nm:32).Scaling.Strategy.pair in
  let sub32 = (find_eval ctx.sub ~nm:32).Scaling.Strategy.pair in
  let describe label pair =
    (* Near/sub-threshold range: above ~0.45 V delay keeps shrinking
       exponentially and EDP trivially favours the highest supply. *)
    let curve = Analysis.Pareto.curve ~points:40 pair ~lo:0.12 ~hi:0.45 in
    let front = Analysis.Pareto.pareto_front curve in
    let edp = Analysis.Pareto.min_edp curve in
    let e_min =
      List.fold_left (fun e (p : Analysis.Pareto.point) -> Float.min e p.Analysis.Pareto.energy)
        infinity curve
    in
    let iso =
      match Analysis.Pareto.energy_at_delay curve ~delay:100e-9 with
      | Some e -> fmt "%.2f" (1e15 *. e)
      | None -> "-"
    in
    [ label;
      fmt "%d" (List.length front);
      fmt "%.2f" (1e15 *. e_min);
      fmt "%.0f" (mv edp.Analysis.Pareto.vdd);
      fmt "%.1f" (1e9 *. edp.Analysis.Pareto.delay);
      fmt "%.2f" (1e15 *. edp.Analysis.Pareto.energy);
      iso ]
  in
  {
    id = "ext-pareto";
    table =
      Report.Table.make
        ~title:"Ext: near-threshold energy-delay frontier, 30-stage chain (32 nm, 120-450 mV)"
        ~headers:
          [ "device"; "front pts"; "E@Vmin fJ"; "EDP-opt Vdd mV"; "EDP-opt tp ns";
            "EDP-opt E fJ"; "E @tp<=100ns fJ" ]
        ~notes:
          [ "the EDP optimum sits well above Vmin: speed is cheap near Vmin";
            "iso-delay column: cheapest energy meeting a 100 ns stage delay" ]
        (Exec.map2 describe [ "32nm super"; "32nm sub" ] [ sup32; sub32 ])
    ;
    plots = [];
  }

let all_extensions ctx =
  [ ext_variability ctx; ext_multi_vth (); ext_bitline ctx; ext_temperature ();
    ext_datapath ctx; ext_interconnect ctx; ext_sta ctx; ext_yield ctx;
    ext_projection (); ext_corners ctx; ext_pareto ctx ]
