(** Subscale: reproduction of "Nanometer Device Scaling in Subthreshold
    Circuits" (Hanson, Seok, Sylvester, Blaauw — DAC 2007).

    This module is the library's front door: it re-exports the substrate
    libraries under one namespace and hosts the per-table/per-figure
    experiment drivers ({!Experiments}).

    Layer map (bottom-up):
    - {!Physics} / {!Numerics} — material models and numerical kernels;
    - {!Tcad} — the 2-D drift-diffusion device simulator (MEDICI stand-in);
    - {!Device} — calibrated compact MOSFET model (paper Eqs. 1-2);
    - {!Spice} / {!Circuits} — MNA circuit simulator and circuit generators;
    - {!Analysis} — VTC/SNM, delay (Eqs. 4-6), energy and V_min (Eqs. 7-8);
    - {!Scaling} — roadmap, generalized scaling (Table 1), the two
      scaling-strategy optimizers (Tables 2-3) and multi-V_th offerings;
    - {!Interconnect} — wire RC, Elmore estimates and repeater planning;
    - {!Sta} — cell characterization and static timing analysis;
    - {!Check} — pre-solver static analysis (deck DRC, physics validation,
      STA lint, non-finite guards) with structured diagnostics;
    - {!Lint} — typedtree-based source linter (purity/race pass for the
      parallel engine, float/exception/output hygiene) over the .cmt
      artifacts dune produces;
    - {!Exec} — the domain pool ({!Exec.Pool}) every sweep fans out
      through, the content-addressed memo tables ({!Exec.Memo}) that
      share device solves across experiments, and the persistent
      on-disk cache tier behind them ({!Exec.Store});
    - {!Serve} — the [subscale serve] daemon: line-delimited JSON
      queries over a socket, answered from the memo/store tiers;
    - {!Experiments} — one driver per table and figure. *)

module Physics = Physics
module Numerics = Numerics
module Exec = Exec
module Tcad = Tcad
module Device = Device
module Spice = Spice
module Circuits = Circuits
module Analysis = Analysis
module Scaling = Scaling
module Interconnect = Interconnect
module Sta = Sta
module Report = Report
module Check = Check
module Lint = Lint
module Obs = Obs
module Serve = Serve
module Experiments = Experiments
