(** One driver per table and figure of the paper's evaluation.  Each driver
    returns a rendered {!Report.Table.t} (and optionally ASCII plots); the
    bench harness and the CLI print them.

    Building a {!context} runs both scaling strategies once; every driver
    takes the same context so a full reproduction pays for the optimizer
    trajectories a single time. *)

type context

val make_context : ?cal:Device.Params.calibration -> ?with_130:bool -> unit -> context
(** Runs the super-V_th and sub-V_th optimizers over the roadmap (and the
    130 nm back-extrapolation when [with_130], needed by Fig. 12). *)

val super_of : context -> Scaling.Strategy.evaluation list

val sub_of : context -> Scaling.Strategy.evaluation list

type output = { id : string; table : Report.Table.t; plots : string list }

val table1 : unit -> output
(** Generalized scaling factors (paper Table 1). *)

val table2 : context -> output
(** NFET parameters under super-V_th scaling, ours against the paper's. *)

val table3 : context -> output
(** NFET parameters under sub-V_th scaling, ours against the paper's. *)

val fig2 : context -> output
(** S_S and I_on/I_off at 250 mV vs node (super-V_th). *)

val fig3 : context -> output
(** I_on at nominal V_dd and at 250 mV vs node. *)

val fig4 : context -> output
(** Inverter SNM at nominal V_dd and 250 mV vs node. *)

val fig5 : ?measured:bool -> context -> output
(** FO1 inverter delay at nominal V_dd and 250 mV vs node.  With [measured]
    (default true) the 250 mV point is a transient measurement; the analytic
    Eq. 5 columns are always present. *)

val fig6 : context -> output
(** Energy/cycle and V_min of the 30-inverter chain (alpha = 0.1) under
    super-V_th scaling, with the C_L S_S^2 factor overlay. *)

val fig7 : unit -> output
(** S_S vs L_poly for the 45 nm device: fixed vs re-optimized doping. *)

val fig8 : unit -> output
(** Energy and delay factors vs L_poly for the 45 nm device. *)

val fig9 : context -> output
(** L_poly and S_S vs node for both strategies. *)

val fig10 : context -> output
(** Inverter SNM at 250 mV vs node for both strategies. *)

val fig11 : context -> output
(** Normalized FO1 delay at 250 mV for both strategies. *)

val fig12 : context -> output
(** Energy and V_min of the 30-inverter chain for both strategies
    (context must include the 130 nm node for the paper's V_min remark). *)

val all : ?measured_delay:bool -> context -> output list
(** Every table and figure, in paper order. *)

(** {2 Extensions}

    Studies the paper motivates but does not tabulate: each is built from
    the same substrates and calibration. *)

val ext_variability : context -> output
(** RDF mismatch: chain-delay sigma/mu against V_dd for the 90 nm and 32 nm
    super-V_th devices and the 32 nm sub-V_th device — quantifying the
    introduction's "timing variability grows dramatically as V_dd reduces",
    and the proposed strategy's variability advantage. *)

val ext_multi_vth : unit -> output
(** The Sec. 3 multiple-threshold offering at the 32 nm node: LVT/SVT/HVT
    variants under both strategies with their delay/leakage/energy trade. *)

val ext_bitline : context -> output
(** Sec. 2.3.2's SRAM constraint: maximum bits per bitline
    (I_on/I_off-limited) across nodes and strategies at 250 mV. *)

val ext_temperature : unit -> output
(** Subthreshold temperature sensitivity of the 90 nm device: S_S, I_off,
    V_min and chain energy from 250 K to 400 K (S_S is proportional to T —
    Eq. 2(a) — so every sub-V_th margin in the paper is implicitly a
    temperature statement). *)

val ext_datapath : context -> output
(** Gate-level workload: 8-bit ripple-carry adder carry delay and a
    DC-verified truth sample at 250 mV across nodes (super-V_th), showing
    the circuit layer scales beyond single gates. *)

val ext_interconnect : context -> output
(** Wire RC per node, the route length where wire delay overtakes gate
    delay at nominal and at 250 mV, and delay-optimal repeater counts —
    why interconnect design changes character in the sub-V_th regime. *)

val ext_sta : context -> output
(** Per-node NLDM cell characterization and static timing analysis of the
    8-bit adder, cross-checked against the transistor-level transient. *)

val ext_yield : context -> output
(** SRAM-style yield under RDF mismatch at 32 nm: SNM distributions, cell
    failure probability, and the 90 %-yield minimum supply for a 1 kb array
    under both strategies. *)

val ext_projection : unit -> output
(** Both strategies continued two generations past the paper (22/16 nm). *)

val ext_corners : context -> output
(** Global process corners (TT/FF/SS/FS/SF) at 250 mV: delay, leakage and
    switching-threshold spread — exponential in the sub-V_th regime, and
    smaller for the proposed strategy's lower slope factor. *)

val ext_pareto : context -> output
(** Energy-delay frontiers of the 30-stage chain at 32 nm: Pareto front,
    the EDP optimum, and iso-delay energy for both strategies. *)

val all_extensions : context -> output list
