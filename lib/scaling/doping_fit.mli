(** The doping-selection kernel shared by every scaling strategy: given a
    device skeleton (geometry, oxide, supply) and an off-current budget,
    pick N_sub from the long-channel device and the halo dose from the
    short-channel one — the two-step structure of the paper's Fig. 1(c). *)

val solve_for_ioff :
  ?cal:Device.Params.calibration ->
  base:Device.Params.physical ->
  ioff_vdd:float ->
  target:float ->
  unit ->
  Device.Params.physical
(** [solve_for_ioff ~base ~ioff_vdd ~target ()] returns [base] with
    [nsub]/[np_halo] set so the NFET's I_off at drain bias [ioff_vdd]
    equals [target] [A/m].  The long-channel reference device keeps [base]'s
    junction geometry.  Raises [Failure] when the budget is unreachable in
    the search window (5e16 .. 3e19 cm^-3 substrate, up to 6e19 halo). *)
