type selected = {
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
}

let cm3 = Physics.Constants.per_cm3

let select_node ?(cal = Device.Params.default_calibration) (node : Roadmap.node) =
  let base =
    {
      Device.Params.node_nm = node.Roadmap.nm;
      lpoly = node.Roadmap.lpoly;
      tox = node.Roadmap.tox;
      nsub = cm3 1e18;
      np_halo = 0.0;
      vdd = node.Roadmap.vdd;
      xj = None;
      overlap = None;
    }
  in
  (* Fig. 1(c): the leakage constraint is active at the delay optimum, so
     the doping pair is pinned by I_off at the nominal supply. *)
  let phys =
    Doping_fit.solve_for_ioff ~cal ~base ~ioff_vdd:node.Roadmap.vdd
      ~target:node.Roadmap.ileak_max ()
  in
  { node; phys; pair = Circuits.Inverter.pair_of_physical ~cal phys }

let all ?cal () = Exec.map (fun n -> select_node ?cal n) Roadmap.nodes

let all_with_130 ?cal () = Exec.map (fun n -> select_node ?cal n) Roadmap.nodes_with_130
