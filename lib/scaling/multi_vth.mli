(** Multiple threshold offerings.

    The paper (Secs. 2.2 and 3.2) notes that every technology ships several
    V_th variants ("the 65 nm technology described in [14] offers ... 3
    different V_th variants"; "different performance levels can be targeted
    by offering multiple thresholds").  Given one selected device, this
    module derives a low-/standard-/high-V_th family by re-solving the
    doping for scaled off-current budgets, and evaluates the
    delay/leakage/energy trade each variant buys. *)

type flavor = Low_vth | Standard_vth | High_vth

val flavor_name : flavor -> string

val ioff_multiplier : flavor -> float
(** 10x / 1x / 0.1x of the base budget — the decade-per-flavor spacing real
    foundry menus use. *)

type variant = {
  flavor : flavor;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  vth_sat : float;  (** [V] at the evaluation drain bias *)
  ioff : float;  (** [A/m] at the evaluation bias *)
  delay_sub : float;  (** FO1 Eq. 5 delay at 250 mV [s] *)
  energy_at_vmin : float;  (** 30-stage chain energy [J] *)
  vmin : float;
}

val family :
  ?cal:Device.Params.calibration ->
  base:Device.Params.physical ->
  ioff_vdd:float ->
  base_target:float ->
  unit ->
  variant list
(** The three variants of a device skeleton, ordered LVT/SVT/HVT.  Raises
    [Failure] if a budget is unreachable (e.g. LVT at an extreme node). *)

val for_node :
  ?cal:Device.Params.calibration ->
  strategy:Strategy.kind ->
  Roadmap.node ->
  variant list
(** Family for a roadmap node under either scaling strategy: super-V_th
    devices evaluate I_off at nominal V_dd against the roadmap budget;
    sub-V_th devices at 250 mV against the constant 100 pA/um target. *)
