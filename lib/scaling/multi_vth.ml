type flavor = Low_vth | Standard_vth | High_vth

let flavor_name = function
  | Low_vth -> "LVT"
  | Standard_vth -> "SVT"
  | High_vth -> "HVT"

let ioff_multiplier = function Low_vth -> 10.0 | Standard_vth -> 1.0 | High_vth -> 0.1

type variant = {
  flavor : flavor;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  vth_sat : float;
  ioff : float;
  delay_sub : float;
  energy_at_vmin : float;
  vmin : float;
}

let family ?(cal = Device.Params.default_calibration) ~(base : Device.Params.physical)
    ~ioff_vdd ~base_target () =
  let sizing = Circuits.Inverter.balanced_sizing () in
  List.map
    (fun flavor ->
      let target = base_target *. ioff_multiplier flavor in
      let phys = Doping_fit.solve_for_ioff ~cal ~base ~ioff_vdd ~target () in
      let pair = Circuits.Inverter.pair_of_physical ~cal phys in
      let nfet = pair.Circuits.Inverter.nfet in
      let vmin_result = Analysis.Energy.vmin ~sizing pair in
      {
        flavor;
        phys;
        pair;
        vth_sat = Device.Iv_model.threshold_const_current nfet ~vds:ioff_vdd;
        ioff = Device.Iv_model.ioff nfet ~vdd:ioff_vdd;
        delay_sub = Analysis.Delay.eq5 pair ~sizing ~vdd:0.25;
        energy_at_vmin = vmin_result.Analysis.Energy.e_min;
        vmin = vmin_result.Analysis.Energy.vmin;
      })
    [ Low_vth; Standard_vth; High_vth ]

let for_node ?cal ~strategy (node : Roadmap.node) =
  match strategy with
  | Strategy.Super_vth ->
    let sel = Super_vth.select_node ?cal node in
    family ?cal ~base:sel.Super_vth.phys ~ioff_vdd:node.Roadmap.vdd
      ~base_target:node.Roadmap.ileak_max ()
  | Strategy.Sub_vth ->
    let sel = Sub_vth.select_node ?cal node in
    family ?cal ~base:sel.Sub_vth.phys ~ioff_vdd:Sub_vth.operating_vdd
      ~base_target:Roadmap.sub_vth_ioff_target ()
