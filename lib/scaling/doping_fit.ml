let cm3 = Physics.Constants.per_cm3

let solve_doping ~ioff_of ~target ~lo ~hi ~what =
  let f log_n = log (ioff_of (10.0 ** log_n) /. target) in
  let flo = f (log10 lo) and fhi = f (log10 hi) in
  if flo < 0.0 then lo
  else if fhi > 0.0 then
    failwith (Printf.sprintf "Doping_fit: leakage budget unreachable when selecting %s" what)
  else 10.0 ** Numerics.Root.brent ~tol:1e-10 f (log10 lo) (log10 hi)

let solve_for_ioff_uncached ?(cal = Device.Params.default_calibration)
    ~(base : Device.Params.physical) ~ioff_vdd ~target () =
  (* The long-channel reference keeps the node's junction geometry (drawn
     length changes, process does not). *)
  let probe = Device.Compact.nfet ~cal base in
  let geom_xj = Some probe.Device.Compact.xj in
  let geom_ov = Some probe.Device.Compact.overlap in
  let ioff_long nsub =
    let phys =
      { base with Device.Params.nsub; np_halo = 0.0;
        lpoly = 4.0 *. base.Device.Params.lpoly; xj = geom_xj; overlap = geom_ov }
    in
    Device.Iv_model.ioff (Device.Compact.nfet ~cal phys) ~vdd:ioff_vdd
  in
  let nsub =
    solve_doping ~ioff_of:ioff_long ~target ~lo:(cm3 5e16) ~hi:(cm3 3e19) ~what:"N_sub"
  in
  let ioff_short np_halo =
    let phys = { base with Device.Params.nsub; np_halo } in
    Device.Iv_model.ioff (Device.Compact.nfet ~cal phys) ~vdd:ioff_vdd
  in
  let np_halo =
    if ioff_short 0.0 <= target then 0.0
    else
      solve_doping ~ioff_of:ioff_short ~target ~lo:(cm3 1e15) ~hi:(cm3 6e19)
        ~what:"N_p,halo"
  in
  { base with Device.Params.nsub; np_halo }

(* The doping selection is two nested root-finds over compact-model
   leakage — the single hottest call in every node-selection sweep.  The
   result depends only on (calibration, base parameters, bias, budget),
   so a content-keyed memo shares it across sweep points, across the
   sub-Vth L_poly grid and golden-section refinement, and across
   experiments re-selecting the same node. *)
let memo : Device.Params.physical Exec.Memo.t = Exec.Memo.create ~name:"scaling.doping_fit" ()

let solve_for_ioff ?(cal = Device.Params.default_calibration)
    ~(base : Device.Params.physical) ~ioff_vdd ~target () =
  let key =
    Exec.Key.(
      fields "solve_for_ioff"
        [ ("cal", Device.Params.calibration_key cal);
          ("base", Device.Params.physical_key base);
          ("ioff_vdd", float ioff_vdd);
          ("target", float target) ])
  in
  Exec.Memo.find_or_compute memo ~key (fun () ->
      solve_for_ioff_uncached ~cal ~base ~ioff_vdd ~target ())
