(** Generalized scaling theory (Baccarani/Wordeman/Dennard) — the paper's
    Table 1: how each quantity ideally scales when physical dimensions
    shrink by 1/alpha and the peak channel field is allowed to grow by
    epsilon per generation. *)

type factors = {
  physical_dimension : float;  (** 1/alpha *)
  channel_doping : float;  (** epsilon alpha *)
  vdd : float;  (** epsilon/alpha *)
  area : float;  (** 1/alpha^2 *)
  delay : float;  (** 1/alpha *)
  power : float;  (** epsilon^2/alpha^2 *)
}

val factors : alpha:float -> epsilon:float -> factors

val table1 : factors
(** The canonical generation step: alpha = 1/0.7, epsilon = 1 would be
    constant-field; the table is parameterized, so this instance uses
    alpha = 1.43, epsilon = 1.1 — a representative modern step. *)

val apply :
  generations:int -> alpha:float -> epsilon:float ->
  Device.Params.physical -> Device.Params.physical
(** Ideal generalized scaling of a device record: dimensions, doping and
    V_dd follow Table 1 for [generations] steps.  (The paper's point is that
    real scaling deviates from this — T_ox lags — which {!Roadmap} captures;
    this function provides the idealized comparison.) *)
