type factors = {
  physical_dimension : float;
  channel_doping : float;
  vdd : float;
  area : float;
  delay : float;
  power : float;
}

let factors ~alpha ~epsilon =
  if alpha <= 0.0 || epsilon <= 0.0 then invalid_arg "Generalized.factors: positive args";
  {
    physical_dimension = 1.0 /. alpha;
    channel_doping = epsilon *. alpha;
    vdd = epsilon /. alpha;
    area = 1.0 /. (alpha *. alpha);
    delay = 1.0 /. alpha;
    power = epsilon *. epsilon /. (alpha *. alpha);
  }

let table1 = factors ~alpha:(1.0 /. 0.7) ~epsilon:1.1

let apply ~generations ~alpha ~epsilon (p : Device.Params.physical) =
  if generations < 0 then invalid_arg "Generalized.apply: negative generations";
  let f = factors ~alpha ~epsilon in
  let pow x n = x ** float_of_int n in
  {
    p with
    Device.Params.lpoly = p.Device.Params.lpoly *. pow f.physical_dimension generations;
    tox = p.Device.Params.tox *. pow f.physical_dimension generations;
    nsub = p.Device.Params.nsub *. pow f.channel_doping generations;
    np_halo = p.Device.Params.np_halo *. pow f.channel_doping generations;
    vdd = p.Device.Params.vdd *. pow f.vdd generations;
  }
