(** The proposed sub-V_th scaling strategy (paper Sec. 3).

    At each node T_ox comes from the roadmap, but L_poly is free: for every
    candidate L_poly the doping is re-optimized against the constant
    I_off = 100 pA/um budget (evaluated at the 250 mV sub-V_th operating
    supply), which pins the effective channel doping; the strategy then
    picks the L_poly minimizing the energy factor C_L S_S^2 (Eq. 8) — the
    paper notes the delay factor's minimum is shallow enough that the energy
    optimum costs almost nothing (Fig. 8). *)

val operating_vdd : float
(** The 250 mV sub-V_th evaluation point. *)

type selected = {
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  lpoly_grid : (float * float * float) list;
      (** (L_poly, energy factor, delay factor) samples — Fig. 8's curves *)
}

val doping_for_lpoly :
  ?cal:Device.Params.calibration ->
  node:Roadmap.node ->
  lpoly:float ->
  unit ->
  Device.Params.physical
(** Doping solved for the I_off budget at the given gate length (long-channel
    split into N_sub, with the halo dose covering the short-channel
    shortfall, mirroring the super-V_th selection). *)

val ss_vs_lpoly :
  ?cal:Device.Params.calibration ->
  node:Roadmap.node ->
  lpolys:float array ->
  fixed_doping:Device.Params.physical option ->
  unit ->
  (float * float) array
(** S_S against L_poly, either re-optimizing the doping per point
    ([fixed_doping = None]) or holding the given profile — Fig. 7's two
    curves. *)

val select_node : ?cal:Device.Params.calibration -> Roadmap.node -> selected
(** Optimize L_poly on a grid from 0.8x to 3.5x the roadmap L_poly, refine
    with golden section, and return the chosen device. *)

val all : ?cal:Device.Params.calibration -> unit -> selected list

val all_with_130 : ?cal:Device.Params.calibration -> unit -> selected list
