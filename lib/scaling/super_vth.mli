(** The super-V_th (performance-driven) scaling strategy — the paper's
    Fig. 1(c) flow.

    At each node, L_poly, T_ox and V_dd come from the roadmap; the dopings
    are then chosen against the leakage budget:

    1. N_sub is set by the *long-channel* device: the smallest substrate
       doping whose long-channel I_off meets the budget (larger doping only
       slows the device, so the leakage constraint is active at the delay
       optimum);
    2. N_p,halo is set by the *short-channel* device: the halo dose that
       pulls the actual device's I_off back to the budget, compensating the
       V_th roll-off exactly as the paper describes
       (-Delta V_th,SCE = Delta V_th,halo).

    I_off is evaluated at the nominal V_dd (worst-case standby leakage). *)

type selected = {
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
}

val select_node : ?cal:Device.Params.calibration -> Roadmap.node -> selected
(** Run the Fig. 1(c) loop for one node.  Raises [Failure] if the leakage
    budget is unreachable in the doping search window. *)

val all : ?cal:Device.Params.calibration -> unit -> selected list
(** The full 90-to-32 nm trajectory (Table 2's reproduction). *)

val all_with_130 : ?cal:Device.Params.calibration -> unit -> selected list
