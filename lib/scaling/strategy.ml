type kind = Super_vth | Sub_vth

let kind_name = function Super_vth -> "super-Vth" | Sub_vth -> "sub-Vth"

type evaluation = {
  kind : kind;
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  ss : float;
  vth_sat : float;
  ioff_nominal : float;
  ion_sub : float;
  on_off_sub : float;
  snm_sub : float;
  delay_sub : float;
  energy_factor : float;
  delay_factor : float;
  vmin : float;
  energy_at_vmin : float;
}

let sub_vdd = 0.25

(* A full evaluation is the expensive half of every sweep point: a SPICE
   VTC + SNM solve and the V_min energy search.  It is a pure function of
   (kind, node, physical parameters, compact pair), and the pair itself is
   derived from (physical, calibration, temperature) — so that triple is
   the content key, and experiments sharing a node share the solve. *)
let evaluate_memo : evaluation Exec.Memo.t = Exec.Memo.create ~name:"scaling.evaluate" ()

let evaluation_key kind node (phys : Device.Params.physical)
    (pair : Circuits.Inverter.pair) =
  let dev_key (d : Device.Compact.t) =
    Exec.Key.(
      fields "compact"
        [ ("phys", Device.Params.physical_key d.Device.Compact.phys);
          ("cal", Device.Params.calibration_key d.Device.Compact.cal);
          ("polarity", Device.Params.polarity_key d.Device.Compact.polarity);
          ("t", float d.Device.Compact.temperature) ])
  in
  let nfet_key = dev_key pair.Circuits.Inverter.nfet in
  let pfet_key = dev_key pair.Circuits.Inverter.pfet in
  Exec.Key.fields "evaluate"
    [ ("kind", (match kind with Super_vth -> "super" | Sub_vth -> "sub"));
      ("node", Roadmap.node_key node);
      ("phys", Device.Params.physical_key phys);
      ("nfet", nfet_key);
      ("pfet", pfet_key) ]

let evaluate_uncached kind node phys pair =
  Obs.Trace.with_span ~cat:"scaling"
    ~attrs:
      [
        ("kind", Obs.Trace.S (match kind with Super_vth -> "super" | Sub_vth -> "sub"));
        ("node_nm", Obs.Trace.I node.Roadmap.nm);
      ]
    "strategy.evaluate"
  @@ fun () ->
  let sizing = Circuits.Inverter.balanced_sizing () in
  let nfet = pair.Circuits.Inverter.nfet in
  (* The SPICE engine's VTC carries the DIBL-driven output-conductance loss
     that dominates the SNM scaling trend; the analytic Eq. 3 route treats
     V_th as bias-independent and misses most of it. *)
  let snm =
    match Analysis.Snm.inverter ~engine:`Spice pair ~sizing ~vdd:sub_vdd with
    | margins -> margins.Analysis.Snm.snm
    | exception Failure _ -> 0.0
  in
  let vmin_result = Analysis.Energy.vmin ~sizing pair in
  {
    kind;
    node;
    phys;
    pair;
    ss = nfet.Device.Compact.ss;
    vth_sat = Device.Iv_model.threshold_const_current nfet ~vds:node.Roadmap.vdd;
    ioff_nominal = Device.Iv_model.ioff nfet ~vdd:node.Roadmap.vdd;
    ion_sub = Device.Iv_model.ion nfet ~vdd:sub_vdd;
    on_off_sub = Device.Iv_model.on_off_ratio nfet ~vdd:sub_vdd;
    snm_sub = snm;
    delay_sub = Analysis.Delay.eq5 pair ~sizing ~vdd:sub_vdd;
    energy_factor = Analysis.Metrics.energy_factor pair ~sizing;
    delay_factor = Analysis.Metrics.delay_factor ~ioff_vdd:sub_vdd pair ~sizing;
    vmin = vmin_result.Analysis.Energy.vmin;
    energy_at_vmin = vmin_result.Analysis.Energy.e_min;
  }

(* Bit-exact content fingerprint of an evaluation, for the audit's
   schedule-perturbation diff: two fingerprints are equal iff every float
   field carries the same IEEE-754 bits.  The embedded evaluation_key
   covers the identifying inputs (kind/node/parameters). *)
let evaluation_fingerprint (e : evaluation) =
  Exec.Key.(
    fields "evaluation"
      [ ("id", evaluation_key e.kind e.node e.phys e.pair);
        ("ss", float e.ss);
        ("vth_sat", float e.vth_sat);
        ("ioff_nominal", float e.ioff_nominal);
        ("ion_sub", float e.ion_sub);
        ("on_off_sub", float e.on_off_sub);
        ("snm_sub", float e.snm_sub);
        ("delay_sub", float e.delay_sub);
        ("energy_factor", float e.energy_factor);
        ("delay_factor", float e.delay_factor);
        ("vmin", float e.vmin);
        ("energy_at_vmin", float e.energy_at_vmin) ])

let evaluate kind node phys pair =
  Exec.Memo.find_or_compute evaluate_memo ~key:(evaluation_key kind node phys pair)
    (fun () -> evaluate_uncached kind node phys pair)

let super_vth_trajectory ?cal ?(with_130 = false) () =
  let selections = if with_130 then Super_vth.all_with_130 ?cal () else Super_vth.all ?cal () in
  Exec.map
    (fun s ->
      evaluate Super_vth s.Super_vth.node s.Super_vth.phys s.Super_vth.pair)
    selections

let sub_vth_trajectory ?cal ?(with_130 = false) () =
  let selections = if with_130 then Sub_vth.all_with_130 ?cal () else Sub_vth.all ?cal () in
  Exec.map
    (fun s -> evaluate Sub_vth s.Sub_vth.node s.Sub_vth.phys s.Sub_vth.pair)
    selections
