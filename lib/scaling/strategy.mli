(** Side-by-side evaluation of the two scaling strategies — the common
    record every Sec. 3.3 comparison figure (Figs. 9-12) reads from. *)

type kind = Super_vth | Sub_vth

val kind_name : kind -> string

type evaluation = {
  kind : kind;
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  ss : float;  (** [V/dec] *)
  vth_sat : float;  (** const-current V_th at nominal V_dd [V] *)
  ioff_nominal : float;  (** [A/m] at V_ds = nominal V_dd *)
  ion_sub : float;  (** [A/m] at V_gs = V_ds = 250 mV *)
  on_off_sub : float;  (** I_on/I_off at 250 mV *)
  snm_sub : float;  (** inverter SNM at 250 mV [V] *)
  delay_sub : float;  (** analytic FO1 delay at 250 mV [s] *)
  energy_factor : float;  (** C_L S_S^2 *)
  delay_factor : float;  (** C_L S_S / I_off *)
  vmin : float;  (** energy-optimal supply [V] *)
  energy_at_vmin : float;  (** chain energy per cycle at V_min [J] *)
}

val evaluate :
  kind -> Roadmap.node -> Device.Params.physical -> Circuits.Inverter.pair -> evaluation
(** Memoized on the (kind, node, parameters, device pair) content key. *)

val evaluate_uncached :
  kind -> Roadmap.node -> Device.Params.physical -> Circuits.Inverter.pair -> evaluation
(** The raw solve behind {!evaluate}, bypassing the memo table — the
    audit's reference when cross-checking cached results. *)

val evaluation_fingerprint : evaluation -> string
(** Bit-exact content fingerprint (every float as its IEEE-754 bits), for
    the audit's schedule-perturbation diff: outputs of a sweep replayed
    under a perturbed pool schedule must fingerprint identically. *)

val super_vth_trajectory : ?cal:Device.Params.calibration -> ?with_130:bool -> unit ->
  evaluation list

val sub_vth_trajectory : ?cal:Device.Params.calibration -> ?with_130:bool -> unit ->
  evaluation list
