let operating_vdd = 0.25

type selected = {
  node : Roadmap.node;
  phys : Device.Params.physical;
  pair : Circuits.Inverter.pair;
  lpoly_grid : (float * float * float) list;
}

let cm3 = Physics.Constants.per_cm3

let doping_for_lpoly ?(cal = Device.Params.default_calibration) ~(node : Roadmap.node)
    ~lpoly () =
  (* Drawn-length freedom within a fixed process: the junction depth and
     overlap are the node's (set by the roadmap L_poly), not the drawn
     gate's. *)
  let xj = Some (cal.Device.Params.xj_fraction *. node.Roadmap.lpoly) in
  let overlap = Some (cal.Device.Params.overlap_fraction *. node.Roadmap.lpoly) in
  let base =
    {
      Device.Params.node_nm = node.Roadmap.nm;
      lpoly;
      tox = node.Roadmap.tox;
      nsub = cm3 1e18;
      np_halo = 0.0;
      vdd = node.Roadmap.vdd;
      xj;
      overlap;
    }
  in
  Doping_fit.solve_for_ioff ~cal ~base ~ioff_vdd:operating_vdd
    ~target:Roadmap.sub_vth_ioff_target ()

let ss_vs_lpoly ?(cal = Device.Params.default_calibration) ~node ~lpolys ~fixed_doping () =
  Exec.map_array
    (fun lpoly ->
      let phys =
        match fixed_doping with
        | None -> doping_for_lpoly ~cal ~node ~lpoly ()
        | Some p -> { p with Device.Params.lpoly }
      in
      let dev = Device.Compact.nfet ~cal phys in
      (lpoly, dev.Device.Compact.ss))
    lpolys

(* The (phys, pair, factors) bundle for one candidate gate length.  The
   golden-section refinement revisits the same L_poly values the grid
   already sampled, so memoizing here halves the solve count on top of
   what the doping memo shares. *)
let factors_memo :
    (Device.Params.physical * Circuits.Inverter.pair * float * float) Exec.Memo.t =
  Exec.Memo.create ~name:"scaling.sub_vth_factors" ()

let factors_at ?(cal = Device.Params.default_calibration) ~node ~lpoly () =
  let key =
    Exec.Key.(
      fields "factors_at"
        [ ("cal", Device.Params.calibration_key cal);
          ("node", Roadmap.node_key node);
          ("lpoly", float lpoly) ])
  in
  Exec.Memo.find_or_compute factors_memo ~key (fun () ->
      let phys = doping_for_lpoly ~cal ~node ~lpoly () in
      let pair = Circuits.Inverter.pair_of_physical ~cal phys in
      let sizing = Circuits.Inverter.balanced_sizing () in
      let ef = Analysis.Metrics.energy_factor pair ~sizing in
      let df = Analysis.Metrics.delay_factor ~ioff_vdd:operating_vdd pair ~sizing in
      (phys, pair, ef, df))

let select_node ?(cal = Device.Params.default_calibration) (node : Roadmap.node) =
  let l0 = node.Roadmap.lpoly in
  let grid = Numerics.Vec.linspace (0.8 *. l0) (3.5 *. l0) 22 in
  let samples =
    Exec.map
      (fun lpoly ->
        let _, _, ef, df = factors_at ~cal ~node ~lpoly () in
        (lpoly, ef, df))
      (Array.to_list grid)
  in
  let energy_of lpoly =
    let _, _, ef, _ = factors_at ~cal ~node ~lpoly () in
    ef
  in
  (* Bracket the grid minimum and refine. *)
  let best_lpoly, _ =
    List.fold_left
      (fun (bl, be) (l, e, _) -> if e < be then (l, e) else (bl, be))
      (l0, energy_of l0) samples
  in
  let lo = Float.max (0.8 *. l0) (best_lpoly /. 1.25) in
  let hi = Float.min (3.5 *. l0) (best_lpoly *. 1.25) in
  let lpoly_opt, _ = Numerics.Minimize.golden_section ~tol:1e-4 energy_of lo hi in
  let phys, pair, _, _ = factors_at ~cal ~node ~lpoly:lpoly_opt () in
  { node; phys; pair; lpoly_grid = samples }

let all ?cal () = Exec.map (fun n -> select_node ?cal n) Roadmap.nodes

let all_with_130 ?cal () = Exec.map (fun n -> select_node ?cal n) Roadmap.nodes_with_130
