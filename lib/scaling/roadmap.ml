type node = { nm : int; lpoly : float; tox : float; vdd : float; ileak_max : float }

let nm_ = Physics.Constants.nm
let pa = Physics.Constants.pa_per_um

let nodes =
  [
    { nm = 90; lpoly = nm_ 65.0; tox = nm_ 2.10; vdd = 1.2; ileak_max = pa 100.0 };
    { nm = 65; lpoly = nm_ 46.0; tox = nm_ 1.89; vdd = 1.1; ileak_max = pa 125.0 };
    { nm = 45; lpoly = nm_ 32.0; tox = nm_ 1.70; vdd = 1.0; ileak_max = pa 156.0 };
    { nm = 32; lpoly = nm_ 22.0; tox = nm_ 1.53; vdd = 0.9; ileak_max = pa 195.0 };
  ]

let nodes_with_130 =
  { nm = 130; lpoly = nm_ 93.0; tox = nm_ 2.33; vdd = 1.3; ileak_max = pa 80.0 } :: nodes

let node_key (n : node) =
  Exec.Key.(
    fields "node"
      [ ("nm", int n.nm);
        ("lpoly", float n.lpoly);
        ("tox", float n.tox);
        ("vdd", float n.vdd);
        ("ileak_max", float n.ileak_max) ])

let find label =
  match List.find_opt (fun n -> n.nm = label) nodes_with_130 with
  | Some n -> n
  | None -> raise Not_found

let sub_vth_ioff_target = pa 100.0

(* Continue the paper's trends beyond its last node: Lpoly -30%/gen,
   Tox -10%/gen, Vdd -0.1 V/gen (floored at 0.6 V), leakage +25%/gen.
   Labels follow the ITRS cadence (22, 16, 11 nm ...). *)
let project ~generations =
  if generations < 0 then invalid_arg "Roadmap.project: negative generations";
  let labels = [| 22; 16; 11; 8 |] in
  let rec extend acc last i =
    if i >= generations then List.rev acc
    else begin
      let nm = if i < Array.length labels then labels.(i) else last.nm * 7 / 10 in
      let next =
        {
          nm;
          lpoly = 0.7 *. last.lpoly;
          tox = 0.9 *. last.tox;
          vdd = Float.max 0.6 (last.vdd -. 0.1);
          ileak_max = 1.25 *. last.ileak_max;
        }
      in
      extend (next :: acc) next (i + 1)
    end
  in
  let base = List.nth nodes (List.length nodes - 1) in
  extend [] base 0
