(** The paper's actual (non-ideal) scaling assumptions, Sec. 2.2:

    - L_poly shrinks 30 % per generation from 65 nm at the 90 nm node;
    - T_ox shrinks only 10 % per generation from 2.10 nm (the slow oxide
      scaling that drives the whole story);
    - V_dd steps 1.2 / 1.1 / 1.0 / 0.9 V;
    - the leakage budget starts at 100 pA/um and grows 25 % per generation.

    The 130 nm entry back-extrapolates one generation for Fig. 12's V_min
    observation. *)

type node = {
  nm : int;  (** node label *)
  lpoly : float;  (** [m] *)
  tox : float;  (** [m] *)
  vdd : float;  (** nominal supply [V] *)
  ileak_max : float;  (** leakage budget [A/m] *)
}

val nodes : node list
(** 90, 65, 45, 32 nm — the paper's Table 2 generations, in order. *)

val nodes_with_130 : node list
(** 130 nm prepended (used only by the Fig. 12 V_min trace). *)

val find : int -> node
(** Lookup by label; raises [Not_found]. *)

val node_key : node -> string
(** Canonical content key over every field, for [Exec.Memo] tables. *)

val sub_vth_ioff_target : float
(** The sub-V_th strategy's constant I_off: 100 pA/um [A/m] (Sec. 3.2). *)

val project : generations:int -> node list
(** Continue the paper's scaling trends past 32 nm (22, 16, 11, 8 nm ...):
    L_poly -30 %/gen, T_ox -10 %/gen, V_dd -0.1 V/gen floored at 0.6 V,
    leakage budget +25 %/gen — the "what if nothing changes" projection the
    conclusion's warning implies. *)
