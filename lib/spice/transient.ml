type result = {
  times : Numerics.Vec.t;
  node_voltages : Numerics.Vec.t array;
  source_currents : (string * Numerics.Vec.t) list;
}

(* Newton at one time point with frozen capacitor companions. *)
let newton_at sys ~time ~caps ~x0 ~tol ~max_iter =
  let n = Mna.size sys in
  let x = Array.copy x0 in
  let clamp = 0.3 in
  let rec loop iter =
    if iter >= max_iter then None
    else begin
      let f, jac = Mna.assemble sys ~time ~caps ~x () in
      match Numerics.Matrix.lu_factor jac with
      | exception Numerics.Matrix.Singular _ -> None
      | lu ->
        let dx = Numerics.Matrix.lu_solve lu (Array.map (fun v -> -.v) f) in
        let maxd = Numerics.Vec.norm_inf dx in
        let scale = if maxd > clamp then clamp /. maxd else 1.0 in
        for i = 0 to n - 1 do
          x.(i) <- x.(i) +. (scale *. dx.(i))
        done;
        if maxd *. scale < tol && Float.equal scale 1.0 then Some x else loop (iter + 1)
    end
  in
  loop 0

let backward_euler_caps sys ~h vcap =
  Array.init (Array.length vcap) (fun i ->
      let c = Mna.cap_farads sys i in
      let geq = c /. h in
      { Mna.geq; ieq = geq *. vcap.(i) })

let run ?dt ?x0 sys ~t_stop ~steps =
  if t_stop <= 0.0 then invalid_arg "Transient.run: t_stop must be positive";
  if steps <= 0 && dt = None then invalid_arg "Transient.run: need steps or dt";
  let h = match dt with Some d -> d | None -> t_stop /. float_of_int steps in
  if h <= 0.0 then invalid_arg "Transient.run: non-positive step";
  let n_steps = int_of_float (ceil ((t_stop /. h) -. 1e-9)) in
  let nc = Mna.n_caps sys in
  let x_dc = match x0 with Some x -> Array.copy x | None -> Dcop.solve sys in
  (* Capacitor state: voltage across and branch current at the last accepted
     time point. *)
  let vcap = Array.init nc (fun i -> Mna.cap_voltage sys x_dc i) in
  let icap = Array.make nc 0.0 in
  let times = Array.make (n_steps + 1) 0.0 in
  let history = Array.make (n_steps + 1) x_dc in
  let rec advance step x t =
    if step > n_steps then ()
    else begin
      let h_eff = Float.min h (t_stop -. t) in
      let t' = t +. h_eff in
      (* First step: backward Euler (damps trapezoidal start-up ringing). *)
      let trapezoidal = step > 1 in
      let caps_arr =
        if trapezoidal then
          Array.init nc (fun i ->
              let c = Mna.cap_farads sys i in
              let geq = 2.0 *. c /. h_eff in
              { Mna.geq; ieq = (geq *. vcap.(i)) +. icap.(i) })
        else backward_euler_caps sys ~h:h_eff vcap
      in
      let solved =
        match newton_at sys ~time:t' ~caps:caps_arr ~x0:x ~tol:1e-9 ~max_iter:60 with
        | Some x' -> Some (x', caps_arr)
        | None ->
          (* Retry as two half-steps of backward Euler. *)
          let half = 0.5 *. h_eff in
          (match
             newton_at sys ~time:(t +. half) ~caps:(backward_euler_caps sys ~h:half vcap)
               ~x0:x ~tol:1e-9 ~max_iter:80
           with
           | None -> None
           | Some mid ->
             let vmid = Array.init nc (fun i -> Mna.cap_voltage sys mid i) in
             let caps2 = backward_euler_caps sys ~h:half vmid in
             (match newton_at sys ~time:t' ~caps:caps2 ~x0:mid ~tol:1e-9 ~max_iter:80 with
              | Some x' -> Some (x', caps2)
              | None -> None))
      in
      match solved with
      | None -> raise (Dcop.No_convergence (Printf.sprintf "transient stuck at t=%.3e s" t'))
      | Some (x', caps_used) ->
        let _ =
          Numerics.Guard.vec ~origin:(Printf.sprintf "Transient.run: state at t=%.3e" t') x'
        in
        for i = 0 to nc - 1 do
          let v_new = Mna.cap_voltage sys x' i in
          let { Mna.geq; ieq } = caps_used.(i) in
          vcap.(i) <- v_new;
          icap.(i) <- (geq *. v_new) -. ieq
        done;
        times.(step) <- t';
        history.(step) <- x';
        advance (step + 1) x' t'
    end
  in
  times.(0) <- 0.0;
  history.(0) <- x_dc;
  advance 1 x_dc 0.0;
  let node_voltages =
    Array.init (Mna.node_count sys) (fun node ->
        Array.map (fun x -> Mna.voltage sys x node) history)
  in
  let source_currents =
    List.map
      (fun (name, _, _, _) ->
        (name, Array.map (fun x -> Mna.source_current sys x name) history))
      (Mna.source_list sys)
  in
  { times; node_voltages; source_currents }

let voltage_of result node = result.node_voltages.(node)

let energy_from_source result ~name ~vdd =
  match List.assoc_opt name result.source_currents with
  | None -> invalid_arg ("Transient.energy_from_source: unknown source " ^ name)
  | Some currents ->
    -.vdd *. Numerics.Integrate.trapezoid_samples result.times currents

type adaptive_result = {
  data : result;
  steps_taken : int;
  steps_rejected : int;
}

(* Adaptive trapezoidal integration with the classic trapezoidal/backward-
   Euler embedded error estimate: both companions are solved at each step
   and their difference bounds the local truncation error of the
   trapezoidal solution (LTE ~ |x_tr - x_be| / 3). *)
let run_adaptive ?(tol = 1e-4) ?dt_min ?dt_max ?x0 sys ~t_stop =
  if t_stop <= 0.0 then invalid_arg "Transient.run_adaptive: t_stop must be positive";
  let dt_max = Option.value dt_max ~default:(t_stop /. 20.0) in
  let dt_min = Option.value dt_min ~default:(t_stop *. 1e-9) in
  if dt_min <= 0.0 || dt_max < dt_min then invalid_arg "Transient.run_adaptive: bad bounds";
  let nc = Mna.n_caps sys in
  let x_dc = match x0 with Some x -> Array.copy x | None -> Dcop.solve sys in
  let vcap = Array.init nc (fun i -> Mna.cap_voltage sys x_dc i) in
  let icap = Array.make nc 0.0 in
  let times = ref [ 0.0 ] and history = ref [ x_dc ] in
  let taken = ref 0 and rejected = ref 0 in
  let rec advance x t h =
    if t >= t_stop -. (1e-9 *. dt_min) then ()
    else begin
      let h = Float.min h (t_stop -. t) in
      let t' = t +. h in
      let trap_caps =
        Array.init nc (fun i ->
            let cfarads = Mna.cap_farads sys i in
            let geq = 2.0 *. cfarads /. h in
            { Mna.geq; ieq = (geq *. vcap.(i)) +. icap.(i) })
      in
      let be_caps = backward_euler_caps sys ~h vcap in
      let solve caps = newton_at sys ~time:t' ~caps ~x0:x ~tol:1e-9 ~max_iter:60 in
      match (solve trap_caps, solve be_caps) with
      | Some x_tr, Some x_be ->
        let err = Numerics.Vec.max_abs_diff x_tr x_be /. 3.0 in
        if err > tol && h > dt_min *. 1.001 then begin
          incr rejected;
          advance x t (Float.max dt_min (0.5 *. h))
        end
        else begin
          let _ =
            Numerics.Guard.vec
              ~origin:(Printf.sprintf "Transient.run_adaptive: state at t=%.3e" t')
              x_tr
          in
          for i = 0 to nc - 1 do
            let v_new = Mna.cap_voltage sys x_tr i in
            let { Mna.geq; ieq } = trap_caps.(i) in
            vcap.(i) <- v_new;
            icap.(i) <- (geq *. v_new) -. ieq
          done;
          times := t' :: !times;
          history := x_tr :: !history;
          incr taken;
          let grow =
            if err <= 0.0 then 2.0 else Float.min 2.0 (0.9 *. sqrt (tol /. err))
          in
          advance x_tr t' (Float.min dt_max (Float.max dt_min (h *. grow)))
        end
      | None, _ | _, None ->
        if h > dt_min *. 1.001 then begin
          incr rejected;
          advance x t (Float.max dt_min (0.5 *. h))
        end
        else raise (Dcop.No_convergence (Printf.sprintf "adaptive transient stuck at t=%.3e" t))
    end
  in
  advance x_dc 0.0 (Float.min dt_max (t_stop /. 100.0));
  let times = Array.of_list (List.rev !times) in
  let history = Array.of_list (List.rev !history) in
  let node_voltages =
    Array.init (Mna.node_count sys) (fun node ->
        Array.map (fun x -> Mna.voltage sys x node) history)
  in
  let source_currents =
    List.map
      (fun (name, _, _, _) ->
        (name, Array.map (fun x -> Mna.source_current sys x name) history))
      (Mna.source_list sys)
  in
  {
    data = { times; node_voltages; source_currents };
    steps_taken = !taken;
    steps_rejected = !rejected;
  }
