type waveform =
  | Dc of float
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list

let pwl points =
  if List.is_empty points then invalid_arg "Netlist.pwl: empty point list";
  let rec check = function
    | (t0, _) :: ((t1, _) :: _ as rest) ->
      if t1 <= t0 then
        invalid_arg
          (Printf.sprintf "Netlist.pwl: points not strictly time-sorted (%g after %g)" t1 t0);
      check rest
    | [ _ ] | [] -> ()
  in
  check points;
  Pwl points

let waveform_value wave t =
  match wave with
  | Dc v -> v
  | Pulse { low; high; delay; rise; fall; width; period } ->
    if t <= delay then low
    else begin
      let tau = mod_float (t -. delay) period in
      if tau < rise then low +. ((high -. low) *. tau /. rise)
      else if tau < rise +. width then high
      else if tau < rise +. width +. fall then
        high -. ((high -. low) *. (tau -. rise -. width) /. fall)
      else low
    end
  | Pwl [] -> invalid_arg "Netlist.waveform_value: empty Pwl waveform"
  | Pwl points ->
    let rec walk = function
      | [] -> 0.0
      | [ (_, v) ] -> v
      | (t0, v0) :: ((t1, v1) :: _ as rest) ->
        if t <= t0 then v0
        else if t <= t1 then v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
        else walk rest
    in
    walk points

type mosfet = {
  dev : Device.Compact.t;
  width : float;
  drain : int;
  gate : int;
  source : int;
}

type element =
  | Resistor of { plus : int; minus : int; ohms : float }
  | Capacitor of { plus : int; minus : int; farads : float }
  | Voltage_source of { name : string; plus : int; minus : int; wave : waveform }
  | Current_source of { plus : int; minus : int; amps : float }
  | Nmos of mosfet
  | Pmos of mosfet

type t = {
  mutable next_node : int;
  mutable rev_elements : element list;
  names : (string, int) Hashtbl.t;
}

let create () = { next_node = 1; rev_elements = []; names = Hashtbl.create 16 }

let ground = 0

let fresh_node c =
  let n = c.next_node in
  c.next_node <- n + 1;
  n

let node c name =
  match Hashtbl.find_opt c.names name with
  | Some n -> n
  | None ->
    let n = fresh_node c in
    Hashtbl.add c.names name n;
    n

let node_name c n =
  if n = 0 then "gnd"
  else begin
    let found = Hashtbl.fold (fun k v acc -> if v = n then Some k else acc) c.names None in
    match found with Some name -> name | None -> Printf.sprintf "n%d" n
  end

let add c e = c.rev_elements <- e :: c.rev_elements

let elements c = List.rev c.rev_elements

let n_nodes c = c.next_node

let voltage_sources c =
  List.filter_map
    (function
      | Voltage_source { name; plus; minus; wave } -> Some (name, plus, minus, wave)
      | Resistor _ | Capacitor _ | Current_source _ | Nmos _ | Pmos _ -> None)
    (elements c)

let capacitors c =
  List.filter_map
    (function
      | Capacitor { plus; minus; farads } -> Some (plus, minus, farads)
      | Resistor _ | Voltage_source _ | Current_source _ | Nmos _ | Pmos _ -> None)
    (elements c)
