(** Circuit netlists.

    Nodes are small integers; node 0 is ground.  Create nodes through
    {!node} (named) or {!fresh_node}.  MOSFET elements carry a compact
    device ({!Device.Compact.t}) and a width in metres; their bulk is tied
    to their source (the configuration of every circuit in the paper). *)

type waveform =
  | Dc of float
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list
      (** piecewise linear (time, value), strictly time-sorted and non-empty;
          construct through {!pwl} to have both properties validated *)

val pwl : (float * float) list -> waveform
(** Validated [Pwl] constructor.  Raises [Invalid_argument] on an empty
    point list or points that are not strictly increasing in time. *)

val waveform_value : waveform -> float -> float
(** Value of a source waveform at a given time (DC value at [t <= 0]).
    Clamps to the first/last point of a [Pwl] outside its time span; raises
    [Invalid_argument] on [Pwl []] (an empty waveform defines no value). *)

type mosfet = {
  dev : Device.Compact.t;
  width : float;  (** device width [m] *)
  drain : int;
  gate : int;
  source : int;
}

type element =
  | Resistor of { plus : int; minus : int; ohms : float }
  | Capacitor of { plus : int; minus : int; farads : float }
  | Voltage_source of { name : string; plus : int; minus : int; wave : waveform }
  | Current_source of { plus : int; minus : int; amps : float }
  | Nmos of mosfet
  | Pmos of mosfet

type t

val create : unit -> t

val ground : int

val node : t -> string -> int
(** Return the node with this name, creating it on first use. *)

val fresh_node : t -> int

val node_name : t -> int -> string
(** Best-effort name for diagnostics ("n7" for anonymous nodes). *)

val add : t -> element -> unit

val elements : t -> element list
(** In insertion order. *)

val n_nodes : t -> int
(** Including ground. *)

val voltage_sources : t -> (string * int * int * waveform) list
(** In insertion order — the order of the MNA branch-current unknowns. *)

val capacitors : t -> (int * int * float) list
(** In insertion order — the order of transient companion state. *)
