(** Export a netlist as a standard SPICE deck (ngspice-compatible syntax).

    MOSFETs are emitted against level-1 model cards derived from each
    distinct compact device (VTO, KP, GAMMA, PHI, TOX, LAMBDA) — a
    deliberately simple mapping that reproduces the operating point within
    level-1 accuracy and gives external simulators something runnable,
    while comment lines record the exact compact parameters for tools that
    can do better. *)

val waveform : Netlist.waveform -> string
(** SPICE source syntax for a waveform (DC x / PULSE(...) / PWL(...)). *)

val deck : ?title:string -> Netlist.t -> string
(** Flat deck: title, model cards, elements, [.end]. *)

val write : path:string -> ?title:string -> Netlist.t -> unit
