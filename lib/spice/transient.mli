(** Transient analysis: fixed-step trapezoidal integration with a Newton
    solve per time point (capacitors as trapezoidal companion models).
    The first step is backward Euler to damp the trapezoidal rule's
    start-up ringing. *)

type result = {
  times : Numerics.Vec.t;
  node_voltages : Numerics.Vec.t array;  (** indexed by node, then by step *)
  source_currents : (string * Numerics.Vec.t) list;
      (** branch current of each voltage source across time; the current
          drawn from a supply is the negative of this (see {!Mna}) *)
}

val run :
  ?dt:float ->
  ?x0:Numerics.Vec.t ->
  Mna.system ->
  t_stop:float ->
  steps:int ->
  result
(** Integrate from a DC operating point at t = 0 (or from [x0]) to [t_stop]
    in [steps] equal steps (or of size [dt] if given, overriding [steps]).
    Raises {!Dcop.No_convergence} if a time-point Newton fails after step
    halving. *)

val voltage_of : result -> int -> Numerics.Vec.t

val energy_from_source : result -> name:string -> vdd:float -> float
(** Energy delivered by the named constant supply over the window:
    -V_dd Integral(i_branch dt) [J].  (Per metre of device width when the
    MOSFET widths are per-metre.) *)

type adaptive_result = {
  data : result;
  steps_taken : int;
  steps_rejected : int;
}

val run_adaptive :
  ?tol:float ->
  ?dt_min:float ->
  ?dt_max:float ->
  ?x0:Numerics.Vec.t ->
  Mna.system ->
  t_stop:float ->
  adaptive_result
(** Variable-step trapezoidal integration.  Each step also solves a
    backward-Euler companion; their difference estimates the local
    truncation error, and the step shrinks or grows (at most 2x) to hold it
    at [tol] volts (default 1e-4).  Slower per step than {!run} but far
    fewer steps on stiff waveforms with long quiet stretches. *)
