(** DC sweeps: repeated operating points against a swept voltage source,
    warm-starting each point from the last — the tool that produces voltage
    transfer characteristics. *)

type t = {
  swept : Numerics.Vec.t;  (** swept source values *)
  solutions : Numerics.Vec.t array;  (** MNA unknown vector per point *)
}

val run :
  ?overrides:(string * float) list ->
  Mna.system ->
  source:string ->
  values:Numerics.Vec.t ->
  t
(** Sweep the named voltage source through [values].  [overrides] pins other
    sources.  Raises {!Dcop.No_convergence} if any point fails. *)

val probe : Mna.system -> t -> node:int -> Numerics.Vec.t
(** Voltage of [node] across the sweep. *)
