let waveform = function
  | Netlist.Dc v -> Printf.sprintf "DC %.6g" v
  | Netlist.Pulse { low; high; delay; rise; fall; width; period } ->
    Printf.sprintf "PULSE(%.6g %.6g %.6g %.6g %.6g %.6g %.6g)" low high delay rise fall
      width period
  | Netlist.Pwl points ->
    Printf.sprintf "PWL(%s)"
      (String.concat " " (List.map (fun (t, v) -> Printf.sprintf "%.6g %.6g" t v) points))

(* Level-1 parameters from a compact device. *)
let model_card name (dev : Device.Compact.t) =
  let mtype =
    match dev.Device.Compact.polarity with
    | Device.Params.Nfet -> "NMOS"
    | Device.Params.Pfet -> "PMOS"
  in
  let vto =
    let v = Device.Compact.vth dev ~vds:0.05 in
    match dev.Device.Compact.polarity with Device.Params.Nfet -> v | Device.Params.Pfet -> -.v
  in
  let kp = dev.Device.Compact.mu *. dev.Device.Compact.cox in
  let gamma =
    sqrt (2.0 *. Physics.Constants.q *. Physics.Constants.eps_si *. dev.Device.Compact.neff)
    /. dev.Device.Compact.cox
  in
  let phi = 2.0 *. dev.Device.Compact.phi_f in
  Printf.sprintf
    "* compact: SS=%.1f mV/dec, Leff=%.1f nm, Neff=%.2e cm^-3\n\
     .model %s %s (LEVEL=1 VTO=%.4g KP=%.4g GAMMA=%.4g PHI=%.4g LAMBDA=0.05 TOX=%.3g)"
    (1000.0 *. dev.Device.Compact.ss)
    (Physics.Constants.to_nm dev.Device.Compact.leff)
    (Physics.Constants.to_per_cm3 dev.Device.Compact.neff)
    name mtype vto kp gamma phi dev.Device.Compact.phys.Device.Params.tox

let deck ?(title = "subscale export") circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  (* Collect distinct devices (by physical parameters and polarity). *)
  let models = Hashtbl.create 8 in
  let model_name (dev : Device.Compact.t) =
    let key =
      (dev.Device.Compact.phys, dev.Device.Compact.polarity, dev.Device.Compact.cal)
    in
    match Hashtbl.find_opt models key with
    | Some name -> name
    | None ->
      let prefix =
        match dev.Device.Compact.polarity with
        | Device.Params.Nfet -> "nfet"
        | Device.Params.Pfet -> "pfet"
      in
      let name = Printf.sprintf "%s_%dnm_%d" prefix dev.Device.Compact.phys.Device.Params.node_nm
          (Hashtbl.length models) in
      Hashtbl.add models key name;
      name
  in
  let node n = if n = 0 then "0" else Netlist.node_name circuit n in
  let lines = ref [] in
  let counters = Hashtbl.create 8 in
  let fresh prefix =
    let k = Option.value (Hashtbl.find_opt counters prefix) ~default:0 in
    Hashtbl.replace counters prefix (k + 1);
    Printf.sprintf "%s%d" prefix (k + 1)
  in
  List.iter
    (fun element ->
      let line =
        match element with
        | Netlist.Resistor { plus; minus; ohms } ->
          Printf.sprintf "%s %s %s %.6g" (fresh "R") (node plus) (node minus) ohms
        | Netlist.Capacitor { plus; minus; farads } ->
          Printf.sprintf "%s %s %s %.6g" (fresh "C") (node plus) (node minus) farads
        | Netlist.Voltage_source { name; plus; minus; wave } ->
          let vname =
            if String.length name > 0 && (name.[0] = 'V' || name.[0] = 'v') then name
            else "V" ^ name
          in
          Printf.sprintf "%s %s %s %s" vname (node plus) (node minus) (waveform wave)
        | Netlist.Current_source { plus; minus; amps } ->
          Printf.sprintf "%s %s %s DC %.6g" (fresh "I") (node plus) (node minus) amps
        | Netlist.Nmos { dev; width; drain; gate; source } ->
          Printf.sprintf "%s %s %s %s %s %s W=%.4g L=%.4g" (fresh "MN") (node drain)
            (node gate) (node source) (node source) (model_name dev) width
            dev.Device.Compact.phys.Device.Params.lpoly
        | Netlist.Pmos { dev; width; drain; gate; source } ->
          Printf.sprintf "%s %s %s %s %s %s W=%.4g L=%.4g" (fresh "MP") (node drain)
            (node gate) (node source) (node source) (model_name dev) width
            dev.Device.Compact.phys.Device.Params.lpoly
      in
      lines := line :: !lines)
    (Netlist.elements circuit);
  (* Model cards first (collected during the element walk). *)
  let model_lines =
    Hashtbl.fold
      (fun key name acc ->
        let phys, polarity, cal = key in
        let dev =
          match polarity with
          | Device.Params.Nfet -> Device.Compact.nfet ~cal phys
          | Device.Params.Pfet -> Device.Compact.pfet ~cal phys
        in
        model_card name dev :: acc)
      models []
  in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    model_lines;
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.rev !lines);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write ~path ?title circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (deck ?title circuit))
