(** Waveform measurements over sampled signals (time, value arrays of equal
    length) — crossings, propagation delay, rise/fall times, averages. *)

type edge = Rising | Falling | Either

val crossings : times:Numerics.Vec.t -> values:Numerics.Vec.t -> level:float -> edge ->
  float list
(** Interpolated crossing times of [level], filtered by edge direction. *)

val first_crossing :
  ?after:float -> times:Numerics.Vec.t -> values:Numerics.Vec.t -> level:float -> edge ->
  float option

val propagation_delay :
  times:Numerics.Vec.t ->
  input:Numerics.Vec.t ->
  output:Numerics.Vec.t ->
  level:float ->
  input_edge:edge ->
  float option
(** Delay from the input's first [level] crossing (of [input_edge]) to the
    output's next crossing of [level] in either direction — the standard
    50 %-to-50 % propagation delay when [level] = V_dd/2. *)

val average : times:Numerics.Vec.t -> values:Numerics.Vec.t -> float
(** Time-weighted mean. *)

val slice_average :
  times:Numerics.Vec.t -> values:Numerics.Vec.t -> t0:float -> t1:float -> float
(** Time-weighted mean over a window (endpoints clamped to the record). *)
