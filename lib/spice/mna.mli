(** Modified nodal analysis: residual and Jacobian assembly.

    Unknown vector layout: x.(i) for i < n_nodes - 1 is the voltage of node
    i+1 (ground eliminated); the remaining entries are the branch currents
    of the voltage sources, in netlist order.  The voltage-source current
    unknown is the current flowing from the + terminal through the source to
    the - terminal (i.e. a positive supply sources current out of +, so the
    current *drawn from* a supply is the negative of this unknown). *)

type system

val build : Netlist.t -> system

val size : system -> int
(** Number of unknowns. *)

val n_caps : system -> int

val voltage : system -> Numerics.Vec.t -> int -> float
(** Node voltage from an unknown vector (handles ground). *)

val source_current : system -> Numerics.Vec.t -> string -> float
(** Branch current of a named voltage source.  Raises [Invalid_argument]
    naming the missing source (and listing the known ones) for an unknown
    name. *)

type cap_companion = { geq : float; ieq : float }
(** Trapezoidal/backward-Euler companion for one capacitor: the stamped
    branch current is geq (v_p - v_m) - ieq. *)

val assemble :
  system ->
  time:float ->
  ?source_scale:float ->
  ?gmin:float ->
  ?overrides:(string * float) list ->
  ?caps:cap_companion array ->
  x:Numerics.Vec.t ->
  unit ->
  Numerics.Vec.t * Numerics.Matrix.t
(** KCL residual F(x) and Jacobian dF/dx.  [source_scale] multiplies every
    independent source value (for source-stepping homotopy).  [gmin]
    (default 1e-12 S) is a leak conductance from every node to ground.
    [overrides] replaces the waveform value of named voltage sources — how
    DC sweeps move their swept source.  Without [caps], capacitors are open
    (DC); with [caps] (length {!n_caps}), each capacitor stamps its
    companion model. *)

val cap_voltage : system -> Numerics.Vec.t -> int -> float
(** Voltage across the i-th capacitor under unknown vector [x]. *)

val cap_farads : system -> int -> float

val node_count : system -> int
(** Number of circuit nodes including ground. *)

val source_list : system -> (string * int * int * Netlist.waveform) list
(** The voltage sources in branch-unknown order. *)
