(** DC operating point: damped Newton on the MNA system, with source-stepping
    homotopy as a fallback when the direct solve fails to converge (the
    standard SPICE strategy). *)

exception No_convergence of string

val solve :
  ?x0:Numerics.Vec.t ->
  ?overrides:(string * float) list ->
  ?tol:float ->
  ?max_iter:int ->
  Mna.system ->
  Numerics.Vec.t
(** Operating point at [time = 0].  [tol] (default 1e-9) bounds the final
    Newton update's infinity norm in volts.  Raises {!No_convergence} if both
    the direct solve and 20-step source stepping fail. *)
