type system = {
  circuit : Netlist.t;
  n_nodes : int;
  vsources : (string * int * int * Netlist.waveform) array;
  caps : (int * int * float) array;
  n : int;
}

let build circuit =
  let n_nodes = Netlist.n_nodes circuit in
  let vsources = Array.of_list (Netlist.voltage_sources circuit) in
  let caps = Array.of_list (Netlist.capacitors circuit) in
  { circuit; n_nodes; vsources; caps; n = n_nodes - 1 + Array.length vsources }

let size s = s.n
let n_caps s = Array.length s.caps

let voltage _s x node = if node = 0 then 0.0 else x.(node - 1)

let source_current s x name =
  let rec find i =
    if i >= Array.length s.vsources then begin
      let known =
        s.vsources |> Array.to_list |> List.map (fun (nm, _, _, _) -> nm)
        |> String.concat ", "
      in
      invalid_arg
        (Printf.sprintf "Mna.source_current: no voltage source named %S (known: %s)" name
           (if known = "" then "<none>" else known))
    end
    else begin
      let nm, _, _, _ = s.vsources.(i) in
      if String.equal nm name then x.(s.n_nodes - 1 + i) else find (i + 1)
    end
  in
  find 0

type cap_companion = { geq : float; ieq : float }

let cap_voltage s x i =
  let p, m, _ = s.caps.(i) in
  voltage s x p -. voltage s x m

let cap_farads s i =
  let _, _, c = s.caps.(i) in
  c

let node_count s = s.n_nodes

let source_list s = Array.to_list s.vsources

(* Current of an N-channel MOSFET with bulk tied to source, drain/source
   symmetric.  Returns (i_drain, di/dvd, di/dvg, di/dvs), where i_drain is
   conventional current into the drain terminal. *)
let nmos_current dev width ~vd ~vg ~vs =
  let eval vgs vds =
    let i = Device.Iv_model.id dev ~vgs ~vds in
    let gm = Device.Iv_model.gm dev ~vgs ~vds in
    let gds = Device.Iv_model.gds dev ~vgs ~vds in
    (i, gm, gds)
  in
  if vd >= vs then begin
    let i, gm, gds = eval (vg -. vs) (vd -. vs) in
    (width *. i, width *. gds, width *. gm, -.width *. (gm +. gds))
  end
  else begin
    (* Swap roles: the terminal at lower potential acts as source. *)
    let i, gm, gds = eval (vg -. vd) (vs -. vd) in
    (-.width *. i, width *. (gm +. gds), -.width *. gm, -.width *. gds)
  end

(* P-channel: conventional current flows source -> drain inside the device
   when vsd > 0, so it *exits* at the drain terminal; the current into the
   drain is its negative. *)
let pmos_current dev width ~vd ~vg ~vs =
  let eval vsg vsd =
    let i = Device.Iv_model.id dev ~vgs:vsg ~vds:vsd in
    let gm = Device.Iv_model.gm dev ~vgs:vsg ~vds:vsd in
    let gds = Device.Iv_model.gds dev ~vgs:vsg ~vds:vsd in
    (i, gm, gds)
  in
  if vs >= vd then begin
    let i, gm, gds = eval (vs -. vg) (vs -. vd) in
    (-.width *. i, width *. gds, width *. gm, -.width *. (gm +. gds))
  end
  else begin
    (* Terminal roles swap: the nominal drain (higher potential) sources. *)
    let i, gm, gds = eval (vd -. vg) (vd -. vs) in
    (width *. i, width *. (gm +. gds), -.width *. gm, -.width *. gds)
  end

let assemble s ~time ?(source_scale = 1.0) ?(gmin = 1e-12) ?(overrides = []) ?caps ~x () =
  let n = s.n in
  if Array.length x <> n then invalid_arg "Mna.assemble: unknown vector length mismatch";
  let f = Array.make n 0.0 in
  let jac = Numerics.Matrix.create n n in
  let v node = voltage s x node in
  let row node = node - 1 in
  (* KCL convention: f.(row) accumulates currents *leaving* the node. *)
  let add_current node i =
    if node <> 0 then f.(row node) <- f.(row node) +. i
  in
  let add_jac node wrt g =
    if node <> 0 && wrt <> 0 then begin
      let r = row node and c = row wrt in
      jac.(r).(c) <- jac.(r).(c) +. g
    end
  in
  (* gmin to ground stabilizes floating nodes. *)
  for nd = 1 to s.n_nodes - 1 do
    add_current nd (gmin *. v nd);
    add_jac nd nd gmin
  done;
  let cap_index = ref 0 in
  List.iter
    (fun element ->
      match element with
      | Netlist.Resistor { plus; minus; ohms } ->
        let g = 1.0 /. ohms in
        let i = g *. (v plus -. v minus) in
        add_current plus i;
        add_current minus (-.i);
        add_jac plus plus g;
        add_jac plus minus (-.g);
        add_jac minus minus g;
        add_jac minus plus (-.g)
      | Netlist.Capacitor _ ->
        let idx = !cap_index in
        incr cap_index;
        (match caps with
         | None -> ()
         | Some companions ->
           let { geq; ieq } = companions.(idx) in
           let p, m, _ = s.caps.(idx) in
           let i = (geq *. (v p -. v m)) -. ieq in
           add_current p i;
           add_current m (-.i);
           add_jac p p geq;
           add_jac p m (-.geq);
           add_jac m m geq;
           add_jac m p (-.geq))
      | Netlist.Current_source { plus; minus; amps } ->
        let i = source_scale *. amps in
        (* Current flows from + through the external circuit to -: it leaves
           the source at -, i.e. is injected into the circuit at -. *)
        add_current plus i;
        add_current minus (-.i)
      | Netlist.Voltage_source _ -> ()
      | Netlist.Nmos { dev; width; drain; gate; source } ->
        let id, did_dvd, did_dvg, did_dvs =
          nmos_current dev width ~vd:(v drain) ~vg:(v gate) ~vs:(v source)
        in
        add_current drain id;
        add_current source (-.id);
        add_jac drain drain did_dvd;
        add_jac drain gate did_dvg;
        add_jac drain source did_dvs;
        add_jac source drain (-.did_dvd);
        add_jac source gate (-.did_dvg);
        add_jac source source (-.did_dvs)
      | Netlist.Pmos { dev; width; drain; gate; source } ->
        let id, did_dvd, did_dvg, did_dvs =
          pmos_current dev width ~vd:(v drain) ~vg:(v gate) ~vs:(v source)
        in
        add_current drain id;
        add_current source (-.id);
        add_jac drain drain did_dvd;
        add_jac drain gate did_dvg;
        add_jac drain source did_dvs;
        add_jac source drain (-.did_dvd);
        add_jac source gate (-.did_dvg);
        add_jac source source (-.did_dvs))
    (Netlist.elements s.circuit);
  (* Voltage sources: branch current unknowns and voltage constraints. *)
  Array.iteri
    (fun i (name, plus, minus, wave) ->
      let k = s.n_nodes - 1 + i in
      let ibr = x.(k) in
      (* Branch current flows + -> (through source) -> -, so it leaves the
         circuit at + and enters at -. *)
      add_current plus ibr;
      add_current minus (-.ibr);
      if plus <> 0 then jac.(row plus).(k) <- jac.(row plus).(k) +. 1.0;
      if minus <> 0 then jac.(row minus).(k) <- jac.(row minus).(k) -. 1.0;
      let value =
        match List.assoc_opt name overrides with
        | Some v -> v
        | None -> Netlist.waveform_value wave time
      in
      let target = source_scale *. value in
      f.(k) <- v plus -. v minus -. target;
      if plus <> 0 then jac.(k).(row plus) <- jac.(k).(row plus) +. 1.0;
      if minus <> 0 then jac.(k).(row minus) <- jac.(k).(row minus) -. 1.0)
    s.vsources;
  (f, jac)
