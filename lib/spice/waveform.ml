type edge = Rising | Falling | Either

let crossings ~times ~values ~level edge =
  let n = Array.length times in
  if n <> Array.length values then invalid_arg "Waveform.crossings: length mismatch";
  let acc = ref [] in
  for i = 0 to n - 2 do
    let d0 = values.(i) -. level and d1 = values.(i + 1) -. level in
    if d0 *. d1 < 0.0 || (Float.equal d0 0.0 && not (Float.equal d1 0.0)) then begin
      let direction_ok =
        match edge with
        | Rising -> d1 > d0
        | Falling -> d1 < d0
        | Either -> true
      in
      if direction_ok then begin
        let t = d0 /. (d0 -. d1) in
        acc := (times.(i) +. (t *. (times.(i + 1) -. times.(i)))) :: !acc
      end
    end
  done;
  List.rev !acc

let first_crossing ?(after = neg_infinity) ~times ~values ~level edge =
  crossings ~times ~values ~level edge |> List.find_opt (fun t -> t >= after)

let propagation_delay ~times ~input ~output ~level ~input_edge =
  match first_crossing ~times ~values:input ~level input_edge with
  | None -> None
  | Some t_in ->
    (match first_crossing ~after:t_in ~times ~values:output ~level Either with
     | None -> None
     | Some t_out -> Some (t_out -. t_in))

let average ~times ~values =
  let n = Array.length times in
  if n < 2 then invalid_arg "Waveform.average: need at least 2 samples";
  Numerics.Integrate.trapezoid_samples times values /. (times.(n - 1) -. times.(0))

let slice_average ~times ~values ~t0 ~t1 =
  let n = Array.length times in
  if n <> Array.length values then invalid_arg "Waveform.slice_average: length mismatch";
  let t0 = Float.max t0 times.(0) and t1 = Float.min t1 times.(n - 1) in
  if t1 <= t0 then invalid_arg "Waveform.slice_average: empty window";
  let value_at t = Numerics.Interp.linear times values t in
  let ts = ref [] and vs = ref [] in
  ts := [ t0 ];
  vs := [ value_at t0 ];
  for i = 0 to n - 1 do
    if times.(i) > t0 && times.(i) < t1 then begin
      ts := times.(i) :: !ts;
      vs := values.(i) :: !vs
    end
  done;
  ts := t1 :: !ts;
  vs := value_at t1 :: !vs;
  let ta = Array.of_list (List.rev !ts) and va = Array.of_list (List.rev !vs) in
  Numerics.Integrate.trapezoid_samples ta va /. (t1 -. t0)
