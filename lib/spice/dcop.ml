exception No_convergence of string

(* One damped Newton run at a fixed source scale.  Returns None on failure
   rather than raising, so the homotopy driver can retreat. *)
let newton sys ~overrides ~source_scale ~tol ~max_iter x0 =
  let n = Mna.size sys in
  let x = Array.copy x0 in
  let clamp = 0.3 in
  let rec loop iter =
    if iter >= max_iter then None
    else begin
      let f, jac = Mna.assemble sys ~time:0.0 ~source_scale ~overrides ~x () in
      match Numerics.Matrix.lu_factor jac with
      | exception Numerics.Matrix.Singular _ -> None
      | lu ->
        let dx = Numerics.Matrix.lu_solve lu (Array.map (fun v -> -.v) f) in
        let maxd = Numerics.Vec.norm_inf dx in
        let scale = if maxd > clamp then clamp /. maxd else 1.0 in
        for i = 0 to n - 1 do
          x.(i) <- x.(i) +. (scale *. dx.(i))
        done;
        if maxd *. scale < tol && Float.equal scale 1.0 then Some x else loop (iter + 1)
    end
  in
  loop 0

let solve ?x0 ?(overrides = []) ?(tol = 1e-9) ?(max_iter = 120) sys =
  let n = Mna.size sys in
  let start = match x0 with Some v -> Array.copy v | None -> Array.make n 0.0 in
  let _ = Numerics.Guard.vec ~origin:"Dcop.solve: initial guess" start in
  let guarded x = Numerics.Guard.vec ~origin:"Dcop.solve: solution" x in
  match newton sys ~overrides ~source_scale:1.0 ~tol ~max_iter start with
  | Some x -> guarded x
  | None ->
    (* Source stepping: ramp all sources from zero. *)
    let steps = 20 in
    let x = ref (Array.make n 0.0) in
    (try
       for i = 1 to steps do
         let scale = float_of_int i /. float_of_int steps in
         match newton sys ~overrides ~source_scale:scale ~tol ~max_iter !x with
         | Some sol -> x := sol
         | None ->
           raise
             (No_convergence
                (Printf.sprintf "source stepping failed at scale %.2f" scale))
       done
     with No_convergence _ as e -> raise e);
    guarded !x
