type t = { swept : Numerics.Vec.t; solutions : Numerics.Vec.t array }

let run ?(overrides = []) sys ~source ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Dcsweep.run: empty sweep";
  let solutions = Array.make n [||] in
  let prev = ref None in
  for i = 0 to n - 1 do
    let ov = (source, values.(i)) :: overrides in
    let x =
      match !prev with
      | None -> Dcop.solve ~overrides:ov sys
      | Some x0 -> Dcop.solve ~x0 ~overrides:ov sys
    in
    solutions.(i) <- x;
    prev := Some x
  done;
  { swept = Array.copy values; solutions }

let probe sys sweep ~node =
  Array.map (fun x -> Mna.voltage sys x node) sweep.solutions
