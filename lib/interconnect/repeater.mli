(** Repeater insertion for long wires.

    In super-V_th design the optimal repeater spacing is a classic result;
    in the sub-V_th regime gate delay is so large that the optimal segment
    grows enormously — most on-chip wires never need repeaters, a
    qualitative difference this module quantifies. *)

val driver_resistance :
  Circuits.Inverter.pair -> sizing:Circuits.Inverter.sizing -> vdd:float -> float
(** Equivalent switching resistance R_drv = V_dd / (2 I_on,avg) [ohm] of the
    inverter at the given supply (average of the N and P drives). *)

val optimal_segment_length :
  Circuits.Inverter.pair ->
  sizing:Circuits.Inverter.sizing ->
  vdd:float ->
  geometry:Wire.geometry ->
  float
(** L_opt = sqrt(2 R_drv (C_in + C_par) / (0.38 r c)) [m] — the spacing at
    which segment wire delay matches repeater delay. *)

type plan = {
  length : float;
  segments : int;  (** repeater count + 1 *)
  segment_length : float;
  total_delay : float;  (** [s] *)
  unrepeated_delay : float;  (** same wire, single driver [s] *)
}

val plan_route :
  Circuits.Inverter.pair ->
  sizing:Circuits.Inverter.sizing ->
  vdd:float ->
  geometry:Wire.geometry ->
  length:float ->
  plan
(** Best integer repeater count for a route (delay-minimal over the Elmore
    model, evaluated exactly for each candidate count). *)
