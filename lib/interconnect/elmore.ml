let distributed_delay ~r_per_l ~c_per_l ~length =
  0.38 *. r_per_l *. c_per_l *. length *. length

let driven_wire_delay ~r_per_l ~c_per_l ~length ~r_driver ~c_load =
  let c_wire = c_per_l *. length in
  let r_wire = r_per_l *. length in
  (0.69 *. r_driver *. (c_wire +. c_load))
  +. distributed_delay ~r_per_l ~c_per_l ~length
  +. (0.69 *. r_wire *. c_load)

let pi_ladder circuit ~segments ~r_total ~c_total ~from_node =
  if segments < 1 then invalid_arg "Elmore.pi_ladder: need at least one segment";
  if r_total <= 0.0 || c_total < 0.0 then invalid_arg "Elmore.pi_ladder: bad parasitics";
  let n = float_of_int segments in
  let r_seg = r_total /. n in
  let c_half = c_total /. (2.0 *. n) in
  let add_cap node farads =
    if farads > 0.0 then
      Spice.Netlist.add circuit
        (Spice.Netlist.Capacitor { plus = node; minus = Spice.Netlist.ground; farads })
  in
  let rec build node i =
    if i = segments then node
    else begin
      (* Caps at interior junctions merge the two adjacent half-caps. *)
      add_cap node (if i = 0 then c_half else 2.0 *. c_half);
      let next = Spice.Netlist.fresh_node circuit in
      Spice.Netlist.add circuit
        (Spice.Netlist.Resistor { plus = node; minus = next; ohms = r_seg });
      build next (i + 1)
    end
  in
  let far = build from_node 0 in
  add_cap far c_half;
  far
