(** Copper interconnect parasitics per technology node.

    Wires do not speed up with device scaling — their RC per unit length
    *worsens* as cross-sections shrink (and sub-V_th gates are so slow that
    wires only matter for long global routes; quantifying that crossover is
    the point of this module).  Geometry follows the usual
    half-pitch/aspect-ratio construction; resistivity includes a simple
    surface/grain-boundary size-effect term. *)

type geometry = {
  width : float;  (** [m] *)
  thickness : float;  (** [m] *)
  spacing : float;  (** to the neighbouring wire [m] *)
  ild_thickness : float;  (** dielectric below/above [m] *)
}

val geometry_for_node : ?aspect_ratio:float -> int -> geometry
(** Intermediate-level wire at a node label in nm: width = spacing =
    half-pitch = the node dimension, thickness = AR x width (default
    AR 1.8), ILD = width. *)

val resistivity : geometry -> float
(** Effective copper resistivity [ohm m]: bulk 17.2 nohm m divided among
    grain-boundary/surface scattering via rho_eff = rho_bulk
    (1 + lambda_mfp/width) with a 39 nm mean free path — the standard
    first-order size effect. *)

val resistance_per_length : geometry -> float
(** [ohm/m]. *)

val capacitance_per_length : ?k_dielectric:float -> geometry -> float
(** [F/m]: two parallel-plate ground components plus two lateral coupling
    components (default low-k, k = 3.0). *)

val rc_per_length2 : ?k_dielectric:float -> geometry -> float
(** r c product [s/m^2] — the figure of merit that grows as wires shrink. *)
