let driver_resistance pair ~sizing ~vdd =
  let i_n =
    sizing.Circuits.Inverter.wn *. Device.Iv_model.ion pair.Circuits.Inverter.nfet ~vdd
  in
  let i_p =
    sizing.Circuits.Inverter.wp *. Device.Iv_model.ion pair.Circuits.Inverter.pfet ~vdd
  in
  vdd /. (i_n +. i_p)

let optimal_segment_length pair ~sizing ~vdd ~geometry =
  let r_drv = driver_resistance pair ~sizing ~vdd in
  let c_gate = Circuits.Inverter.load_capacitance pair sizing in
  let rc = Wire.rc_per_length2 geometry in
  sqrt (2.0 *. r_drv *. c_gate /. (0.38 *. rc /. 0.69))

type plan = {
  length : float;
  segments : int;
  segment_length : float;
  total_delay : float;
  unrepeated_delay : float;
}

let segmented_delay pair ~sizing ~vdd ~geometry ~length ~segments =
  let r = Wire.resistance_per_length geometry in
  let c = Wire.capacitance_per_length geometry in
  let r_drv = driver_resistance pair ~sizing ~vdd in
  let c_gate = Circuits.Inverter.load_capacitance pair sizing in
  let seg = length /. float_of_int segments in
  float_of_int segments
  *. Elmore.driven_wire_delay ~r_per_l:r ~c_per_l:c ~length:seg ~r_driver:r_drv
       ~c_load:c_gate

let plan_route pair ~sizing ~vdd ~geometry ~length =
  if length <= 0.0 then invalid_arg "Repeater.plan_route: length must be positive";
  let l_opt = optimal_segment_length pair ~sizing ~vdd ~geometry in
  let candidate = Int.max 1 (int_of_float (Float.round (length /. l_opt))) in
  (* The integer optimum is within one of the continuous one; check both
     neighbours. *)
  let best =
    List.fold_left
      (fun (bn, bd) n ->
        if n < 1 then (bn, bd)
        else begin
          let d = segmented_delay pair ~sizing ~vdd ~geometry ~length ~segments:n in
          if d < bd then (n, d) else (bn, bd)
        end)
      (candidate, segmented_delay pair ~sizing ~vdd ~geometry ~length ~segments:candidate)
      [ candidate - 1; candidate + 1 ]
  in
  let segments, total_delay = best in
  {
    length;
    segments;
    segment_length = length /. float_of_int segments;
    total_delay;
    unrepeated_delay = segmented_delay pair ~sizing ~vdd ~geometry ~length ~segments:1;
  }
