(** Elmore delay estimates and SPICE pi-ladder models for RC lines. *)

val distributed_delay : r_per_l:float -> c_per_l:float -> length:float -> float
(** 0.38 r c L^2 — the distributed-RC 50 % step delay. *)

val driven_wire_delay :
  r_per_l:float -> c_per_l:float -> length:float -> r_driver:float -> c_load:float -> float
(** Elmore delay of a driver (output resistance [r_driver]) through a
    distributed line into a lumped load:
    0.69 (R_drv (C_wire + C_L) + r L (0.5 C_wire... )) — the usual
    first-order expression 0.69 R_drv (C_w + C_L) + 0.38 r c L^2
    + 0.69 r L C_L. *)

val pi_ladder :
  Spice.Netlist.t ->
  segments:int ->
  r_total:float ->
  c_total:float ->
  from_node:int ->
  int
(** Append an N-segment RC pi ladder between [from_node] and a fresh far-end
    node (returned).  Each segment is R/N with C/2N at both ends (adjacent
    halves merge), converging on the distributed line as N grows. *)
