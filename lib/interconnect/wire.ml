type geometry = {
  width : float;
  thickness : float;
  spacing : float;
  ild_thickness : float;
}

let geometry_for_node ?(aspect_ratio = 1.8) node_nm =
  if node_nm <= 0 then invalid_arg "Wire.geometry_for_node: bad node";
  let w = Physics.Constants.nm (float_of_int node_nm) in
  { width = w; thickness = aspect_ratio *. w; spacing = w; ild_thickness = w }

let rho_bulk = 17.2e-9
let mean_free_path = 39e-9

let resistivity g =
  if g.width <= 0.0 then invalid_arg "Wire.resistivity: bad geometry";
  rho_bulk *. (1.0 +. (mean_free_path /. g.width))

let resistance_per_length g = resistivity g /. (g.width *. g.thickness)

let capacitance_per_length ?(k_dielectric = 3.0) g =
  let eps = k_dielectric *. Physics.Constants.eps0 in
  (* Two vertical parallel-plate components (to the layers above/below) and
     two lateral coupling components to the neighbours. *)
  let vertical = 2.0 *. eps *. g.width /. g.ild_thickness in
  let lateral = 2.0 *. eps *. g.thickness /. g.spacing in
  vertical +. lateral

let rc_per_length2 ?k_dielectric g =
  resistance_per_length g *. capacitance_per_length ?k_dielectric g
