(** Numerics guard layer: solver entry/exit points are instrumented with
    {!Numerics.Guard} checks that are free when disabled; this module
    enables them and converts a trapped non-finite value into a
    {!Diagnostic.t} naming its origin. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val with_guard : (unit -> 'a) -> 'a
(** Run with the guard enabled, restoring the previous state; the first
    non-finite value at an instrumented point raises
    {!Numerics.Guard.Non_finite}. *)

val diagnostic_of_exn : exn -> Diagnostic.t option
(** [num-nonfinite] diagnostic for a {!Numerics.Guard.Non_finite};
    [None] otherwise. *)

val run : (unit -> 'a) -> ('a, Diagnostic.t) result
(** {!with_guard}, with the trapped failure returned as a diagnostic
    instead of an exception. *)
