(** Interval abstract interpretation of the paper's model chain — the
    validity half of [subscale audit].

    The concrete pipeline ([Device.Compact.build] → [Device.Iv_model] →
    [Analysis.Delay.eq5] → [Analysis.Energy.analytic]) is re-executed over
    the {!Interval} domain: each physical parameter becomes an interval,
    each derived quantity a guaranteed enclosure of every concrete value
    the parameter box can produce.  Soundness contract (the property the
    qcheck suite exercises): for any concrete [Params.physical] inside a
    {!box}, every concrete metric lies inside the corresponding {!derived}
    / {!circuit} interval.

    On top of the enclosures sit the regime rules, reported through
    {!Diagnostic} with stable ids:

    - [AUD001] — operating point can leave the weak-inversion domain of
      Eq. (1) (error once definitely past V_th + 2 m v_T);
    - [AUD002] — V_ds below 3 v_T breaks Eq. (1)'s drain saturation;
    - [AUD003] — division by a zero-straddling interval;
    - [AUD004] — an exp argument can exceed ln(max_float);
    - [AUD005] — a log/sqrt argument can leave the function's domain;
    - [AUD006] — propagated S_S outside the physical band of Eq. (2);
    - [AUD007] — the overlap can consume the gate (L_eff ≤ 0);
    - [AUD008] — TCAD mesh under-resolution ({!check_mesh});
    - [AUD009] — the V_min search bracket dips below the Eq. (7)–(8)
      validity floor;
    - [AUD010] — I_on/I_off too low for a regenerative VTC.

    Because the arithmetic is sound, a clean report is a proof that no
    point of the box trips the hazard. *)

type box = {
  lpoly : Interval.t;
  tox : Interval.t;
  nsub : Interval.t;
  np_halo : Interval.t;
  xj : Interval.t option;  (** [None]: defaults to xj_fraction · L_poly *)
  overlap : Interval.t option;  (** [None]: defaults to overlap_fraction · L_poly *)
}

val box_of_physical : ?widen:float -> Device.Params.physical -> box
(** Degenerate (point) box for a concrete parameter record; [widen] pushes
    every endpoint out by that relative amount, turning the audit into a
    tolerance analysis around the shipped configuration. *)

(** Enclosures of the quantities [Device.Compact.t] and [Device.Iv_model]
    derive, evaluated at the audit operating point. *)
type derived = {
  xj : Interval.t;
  overlap : Interval.t;
  leff : Interval.t;
  neff : Interval.t;
  phi_f : Interval.t;
  wdep : Interval.t;
  cox : Interval.t;
  ss : Interval.t;
  m : Interval.t;
  vth0 : Interval.t;
  vbi : Interval.t;
  lt : Interval.t;
  mu : Interval.t;
  cg : Interval.t;
  cg_intrinsic : Interval.t;
  vth : Interval.t;  (** V_th at V_ds = op_vdd *)
  ion : Interval.t;  (** I_d(op_vdd, op_vdd) per width *)
  ioff : Interval.t;  (** I_d(0, op_vdd) per width *)
  on_off : Interval.t;
}

(** Enclosures of the FO1 inverter metrics ([Analysis.Delay.eq5] and
    [Analysis.Energy.analytic] at the library defaults). *)
type circuit = {
  cl : Interval.t;
  tp : Interval.t;
  t_cycle : Interval.t;
  e_dyn : Interval.t;
  e_leak : Interval.t;
  e_total : Interval.t;
}

type report = {
  what : string;
  nfet : derived;
  pfet : derived;
  circuit : circuit;
  diags : Diagnostic.t list;
}

val audit_box :
  ?cal:Device.Params.calibration ->
  ?t:float ->
  ?what:string ->
  op_vdd:Interval.t ->
  box ->
  report
(** Propagate both polarities and the FO1 circuit through the box at the
    given operating supply, collecting every regime diagnostic. *)

val audit_physical :
  ?cal:Device.Params.calibration ->
  ?t:float ->
  ?widen:float ->
  ?op_vdd:float ->
  ?what:string ->
  Device.Params.physical ->
  report
(** {!audit_box} over {!box_of_physical}.  [op_vdd] defaults to the
    record's V_dd when positive, else 0.25 V (the sub-V_th tables leave
    V_dd unset). *)

val check_mesh : ?nx:int -> ?ny:int -> Tcad.Structure.description -> Diagnostic.t list
(** AUD008: build the mesh (cheap — no solve) and verify the resolution
    preconditions the drift-diffusion discretization relies on: enough
    lateral lines under the gate, surface spacing fine against x_j, and
    enough vertical lines within the junction depth. *)
