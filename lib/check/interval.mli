(** Sound interval arithmetic — the abstract domain of [subscale audit].

    A value is a closed non-empty interval of reals (endpoints may be
    infinite, never NaN).  Every operation over-approximates: the result
    contains the true image of the inputs, with finite endpoints pushed
    outward by a few ulps to absorb rounding.  Tightness is sacrificed for
    soundness — [sub x x] is not zero — which is exactly what a validity
    proof needs: if the propagated interval avoids a hazard, every concrete
    execution does too. *)

type t = private { lo : float; hi : float }

exception Invalid of string
(** Raised on NaN endpoints, crossed endpoints, or domain violations the
    caller was expected to screen ([log] of an entirely nonpositive
    interval, [sqrt] of a negative one). *)

val make : float -> float -> t
(** [make lo hi] with [lo <= hi]; raises {!Invalid} otherwise. *)

val point : float -> t
val of_floats : float -> float -> t
(** Like {!make} but reorders crossed endpoints instead of raising. *)

val top : t
(** The whole real line. *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val is_point : t -> bool
val mem : float -> t -> bool
val subset : t -> t -> bool
val straddles_zero : t -> bool
(** Strictly: [lo < 0 < hi]. *)

val contains_zero : t -> bool
val is_finite : t -> bool
val hull : t -> t -> t
val inter : t -> t -> t option
val to_string : t -> string

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val inv : t -> t
(** Reciprocal; a zero-straddling argument yields {!top} (the true image is
    unbounded) — check {!straddles_zero} first when that case is a
    diagnostic. *)

val div : t -> t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val pow_const : t -> float -> t
(** [pow_const x c] is x{^c} for x >= 0 (negative parts are clamped away). *)

val min_ : t -> t -> t
val max_ : t -> t -> t
val abs_ : t -> t
val clamp_lo : float -> t -> t
(** Intersect with [[floor, +inf)] (used after flagging an invalid region
    to keep propagating over the surviving part of the box). *)

val widen : rel:float -> t -> t
(** Relative outward widening: each endpoint moves out by [rel *. abs
    endpoint]. *)

val mono_incr : ?slop:int -> (float -> float) -> t -> t
(** Lift a non-decreasing function by endpoint evaluation, stepping the
    results outward by [slop] ulps (default 2). *)

val mono_decr : ?slop:int -> (float -> float) -> t -> t
val softplus : t -> t
(** The EKV [log1p (exp x)] kernel (with the model's large-x branch). *)
