(* Rule ids minted through the registry: a collision with any other
   checker is a hard failure at initialization ([Rules.Duplicate_rule]). *)
let rule_nonpositive_value = Rules.register ~summary:"a component value is zero or negative" "net-nonpositive-value"
let rule_bad_waveform = Rules.register ~summary:"a source waveform is ill-formed" "net-bad-waveform"
let rule_floating_node = Rules.register ~summary:"a node has too few connections" "net-floating-node"
let rule_no_dc_path = Rules.register ~summary:"a node has no DC path to ground" "net-no-dc-path"
let rule_vsource_loop = Rules.register ~summary:"voltage sources form a loop" "net-vsource-loop"
let rule_undriven_gate = Rules.register ~summary:"a MOSFET gate is undriven" "net-undriven-gate"
let rule_multi_driven = Rules.register ~summary:"a node is driven by multiple sources" "net-multi-driven"

(* Netlist design-rule checks.

   Everything here is topological or a plain value test: no solver is
   invoked, so the checks run in linear-ish time on any netlist the MNA
   layer would accept and catch the malformations that would otherwise
   surface as singular matrices or quiet gmin-propped nonsense.

   Rule ids (the six DRC classes of the issue, plus waveform validity):
     net-floating-node    node touched by fewer than two element terminals
     net-no-dc-path       node with no conductive path to ground
     net-vsource-loop     voltage sources closing a loop (incl. parallel/shorted)
     net-nonpositive-value  zero/negative/non-finite R, C or MOSFET width
     net-undriven-gate    MOSFET gate connected only to other gates
     net-multi-driven     net constrained by more than one voltage source +
                          terminal, or duplicate source names
     net-bad-waveform     empty or time-unsorted Pwl source waveform *)

module N = Spice.Netlist

(* Union-find over node ids, path-halving. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find uf i =
    let p = uf.(i) in
    if p = i then i
    else begin
      uf.(i) <- uf.(p);
      find uf uf.(i)
    end

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then uf.(ra) <- rb

  let same uf a b = find uf a = find uf b
end

type terminal_kind = Conductive | Gate_terminal | Cap_terminal | Isource_terminal

(* Every (node, kind) terminal of an element.  The MOSFET channel is a
   conductive path for the DC-path analysis (it always conducts at least
   leakage); the gate is not. *)
let terminals = function
  | N.Resistor { plus; minus; _ } -> [ (plus, Conductive); (minus, Conductive) ]
  | N.Capacitor { plus; minus; _ } -> [ (plus, Cap_terminal); (minus, Cap_terminal) ]
  | N.Voltage_source { plus; minus; _ } -> [ (plus, Conductive); (minus, Conductive) ]
  | N.Current_source { plus; minus; _ } ->
    [ (plus, Isource_terminal); (minus, Isource_terminal) ]
  | N.Nmos { drain; gate; source; _ } | N.Pmos { drain; gate; source; _ } ->
    [ (drain, Conductive); (source, Conductive); (gate, Gate_terminal) ]

let describe_element = function
  | N.Resistor _ -> "resistor"
  | N.Capacitor _ -> "capacitor"
  | N.Voltage_source { name; _ } -> Printf.sprintf "voltage source %s" name
  | N.Current_source _ -> "current source"
  | N.Nmos _ -> "nmos"
  | N.Pmos _ -> "pmos"

let check c =
  let elements = N.elements c in
  let n = N.n_nodes c in
  let name nd = Printf.sprintf "node %S" (N.node_name c nd) in
  let diags = ref [] in
  let emit d = diags := d :: !diags in

  (* Per-node terminal census. *)
  let degree = Array.make n 0 in
  let non_gate_degree = Array.make n 0 in
  let conductive_degree = Array.make n 0 in
  List.iter
    (fun e ->
      List.iter
        (fun (nd, kind) ->
          degree.(nd) <- degree.(nd) + 1;
          if kind <> Gate_terminal then non_gate_degree.(nd) <- non_gate_degree.(nd) + 1;
          if kind = Conductive then conductive_degree.(nd) <- conductive_degree.(nd) + 1)
        (terminals e))
    elements;

  (* net-nonpositive-value: element value sanity. *)
  let bad_value what v loc =
    emit
      (Diagnostic.error ~rule:rule_nonpositive_value ~location:loc
         ~hint:(Printf.sprintf "give the %s a positive finite value" what)
         (Printf.sprintf "%s value %g is not a positive finite number" what v))
  in
  List.iteri
    (fun i e ->
      let loc = Printf.sprintf "element %d (%s)" i (describe_element e) in
      match e with
      | N.Resistor { ohms; _ } ->
        if not (Float.is_finite ohms) || ohms <= 0.0 then bad_value "resistance" ohms loc
      | N.Capacitor { farads; _ } ->
        if not (Float.is_finite farads) || farads <= 0.0 then
          bad_value "capacitance" farads loc
      | N.Nmos { width; _ } | N.Pmos { width; _ } ->
        if not (Float.is_finite width) || width <= 0.0 then bad_value "width" width loc
      | N.Voltage_source _ | N.Current_source _ -> ())
    elements;

  (* net-bad-waveform: Pwl validity on every source. *)
  List.iter
    (fun (src, _, _, wave) ->
      match wave with
      | N.Pwl [] ->
        emit
          (Diagnostic.error ~rule:rule_bad_waveform
             ~location:(Printf.sprintf "voltage source %s" src)
             ~hint:"build Pwl waveforms with Netlist.pwl"
             "Pwl waveform has no points")
      | N.Pwl points ->
        let rec sorted = function
          | (t0, _) :: ((t1, _) :: _ as rest) -> t1 > t0 && sorted rest
          | [ _ ] | [] -> true
        in
        if not (sorted points) then
          emit
            (Diagnostic.error ~rule:rule_bad_waveform
               ~location:(Printf.sprintf "voltage source %s" src)
               ~hint:"build Pwl waveforms with Netlist.pwl"
               "Pwl points are not strictly time-sorted")
      | N.Dc _ | N.Pulse _ -> ())
    (N.voltage_sources c);

  (* net-floating-node: unused or dangling nodes.  A node held by a single
     voltage-source terminal is harmless to MNA (the source just sees no
     load) and only warned about; anything else dangling is an error. *)
  let vsource_terminal = Array.make n 0 in
  List.iter
    (fun (_, plus, minus, _) ->
      vsource_terminal.(plus) <- vsource_terminal.(plus) + 1;
      vsource_terminal.(minus) <- vsource_terminal.(minus) + 1)
    (N.voltage_sources c);
  for nd = 1 to n - 1 do
    if degree.(nd) = 0 then
      emit
        (Diagnostic.error ~rule:rule_floating_node ~location:(name nd)
           ~hint:"remove the node or connect an element to it"
           "node is connected to nothing")
    else if degree.(nd) = 1 then begin
      if vsource_terminal.(nd) = 1 then
        emit
          (Diagnostic.warning ~rule:rule_floating_node ~location:(name nd)
             ~hint:"the source sees no load; remove it if unintended"
             "voltage source terminal drives nothing")
      else
        emit
          (Diagnostic.error ~rule:rule_floating_node ~location:(name nd)
             ~hint:"every node needs at least two connections to carry current"
             "node dangles from a single element terminal")
    end
  done;

  (* net-no-dc-path: conductive connectivity to ground (union-find over
     R / V-source / MOSFET-channel edges). *)
  let uf = Uf.create n in
  List.iter
    (fun e ->
      match e with
      | N.Resistor { plus; minus; _ } | N.Voltage_source { plus; minus; _ } ->
        Uf.union uf plus minus
      | N.Nmos { drain; source; _ } | N.Pmos { drain; source; _ } ->
        Uf.union uf drain source
      | N.Capacitor _ | N.Current_source _ -> ())
    elements;
  (* A gate-only node trivially has no DC path; net-undriven-gate is the
     precise diagnosis there, so restrict this rule to nodes that touch at
     least one non-gate terminal. *)
  for nd = 1 to n - 1 do
    if non_gate_degree.(nd) > 0 && not (Uf.same uf nd N.ground) then
      emit
        (Diagnostic.error ~rule:rule_no_dc_path ~location:(name nd)
           ~hint:
             "capacitors and current sources carry no DC; add a resistive, \
              source or channel path to ground"
           "node has no DC path to ground (its operating point is undefined)")
  done;

  (* net-vsource-loop: union-find over voltage-source edges alone; an edge
     whose endpoints are already vsource-connected closes an all-source
     loop (parallel sources and plus = minus shorts included), which makes
     the MNA system singular or contradictory. *)
  let vuf = Uf.create n in
  List.iter
    (fun (src, plus, minus, _) ->
      if Uf.same vuf plus minus then
        emit
          (Diagnostic.error ~rule:rule_vsource_loop
             ~location:(Printf.sprintf "voltage source %s (%s to %s)" src
                          (N.node_name c plus) (N.node_name c minus))
             ~hint:"break the loop with a series resistance or drop one source"
             "voltage source closes a loop of voltage sources")
      else Uf.union vuf plus minus)
    (N.voltage_sources c);

  (* net-undriven-gate: gate nodes whose every terminal is a gate. *)
  List.iter
    (fun e ->
      match e with
      | N.Nmos { gate; _ } | N.Pmos { gate; _ } ->
        if gate <> N.ground && non_gate_degree.(gate) = 0 then
          emit
            (Diagnostic.error ~rule:rule_undriven_gate
               ~location:(Printf.sprintf "%s gate at %s" (describe_element e) (name gate))
               ~hint:"drive the gate from a source or another stage's output"
               "MOSFET gate is driven by nothing")
      | N.Resistor _ | N.Capacitor _ | N.Voltage_source _ | N.Current_source _ -> ())
    elements;
  (* Deduplicate: several gates on one undriven node are one defect per
     device, but identical (rule, location) pairs add nothing. *)

  (* net-multi-driven: a node held by the + terminal of two voltage
     sources is constrained twice (the - side closing a loop is caught by
     net-vsource-loop; this catches the stacked-conflict shape), and a
     duplicated source name breaks current readback and overrides. *)
  let plus_driven = Hashtbl.create 16 in
  let seen_names = Hashtbl.create 16 in
  List.iter
    (fun (src, plus, _, _) ->
      (match Hashtbl.find_opt plus_driven plus with
       | Some first when plus <> N.ground ->
         emit
           (Diagnostic.error ~rule:rule_multi_driven ~location:(name plus)
              ~hint:"a net can be forced by at most one voltage source"
              (Printf.sprintf "net is driven by voltage sources %s and %s" first src))
       | _ -> Hashtbl.replace plus_driven plus src);
      match Hashtbl.find_opt seen_names src with
      | Some () ->
        emit
          (Diagnostic.error ~rule:rule_multi_driven
             ~location:(Printf.sprintf "voltage source %s" src)
             ~hint:"give every voltage source a unique name"
             "duplicate voltage-source name (current readback and overrides \
              become ambiguous)")
      | None -> Hashtbl.replace seen_names src ())
    (N.voltage_sources c);

  Diagnostic.sort !diags
