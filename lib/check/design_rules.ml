(* Rule ids minted through the registry: a collision with any other
   checker is a hard failure at initialization ([Rules.Duplicate_rule]). *)
let rule_no_outputs = Rules.register ~summary:"the design has no outputs" "sta-no-outputs"
let rule_unconnected_pin = Rules.register ~summary:"a gate input is unconnected" "sta-unconnected-pin"
let rule_undriven_output = Rules.register ~summary:"an output net is never driven" "sta-undriven-output"
let rule_comb_loop = Rules.register ~summary:"combinational logic forms a cycle" "sta-comb-loop"
let rule_dead_logic = Rules.register ~summary:"a gate drives nothing reachable" "sta-dead-logic"

(* Gate-level design lint.

   [Design.topological_gates] fails with one blanket message on any broken
   design; these rules separate the failure modes and name the nets, so a
   generator bug is located without reading a solver backtrace.

   Rule ids:
     sta-unconnected-pin  gate input net that nothing drives
     sta-comb-loop        gates forming a combinational cycle
     sta-undriven-output  primary output with no driver
     sta-dead-logic       gate whose output reaches no primary output
     sta-no-outputs       design without primary outputs *)

module D = Sta.Design

let check (d : D.t) =
  let gates = D.gates d in
  let n = D.n_nets d in
  let diags = ref [] in
  let emit x = diags := x :: !diags in
  let net_loc net = Printf.sprintf "net %d" net in
  let inputs = D.primary_inputs d in
  let outputs = D.primary_outputs d in
  let driven = Array.make n false in
  List.iter (fun (g : D.gate) -> driven.(g.D.output) <- true) gates;
  let is_input = Array.make n false in
  List.iter (fun i -> is_input.(i) <- true) inputs;

  if outputs = [] then
    emit
      (Diagnostic.warning ~rule:rule_no_outputs ~location:"design"
         ~hint:"mark at least one net with mark_output"
         "design has no primary outputs; timing analysis has nothing to report");

  (* sta-unconnected-pin: gate inputs that are neither primary inputs nor
     driven by any gate.  Report once per offending net. *)
  let reported_undriven = Hashtbl.create 8 in
  List.iter
    (fun (g : D.gate) ->
      Array.iter
        (fun i ->
          if (not driven.(i)) && (not is_input.(i)) && not (Hashtbl.mem reported_undriven i)
          then begin
            Hashtbl.add reported_undriven i ();
            emit
              (Diagnostic.error ~rule:rule_unconnected_pin ~location:(net_loc i)
                 ~hint:"drive the net with a gate or mark it as a primary input"
                 (Printf.sprintf "input pin of a %s gate is connected to an undriven net"
                    (Sta.Cell_lib.cell_name g.D.cell)))
          end)
        g.D.inputs)
    gates;

  (* sta-undriven-output. *)
  List.iter
    (fun o ->
      if (not driven.(o)) && not is_input.(o) then
        emit
          (Diagnostic.error ~rule:rule_undriven_output ~location:(net_loc o)
             ~hint:"connect a gate output (or a primary input) to the port"
             "primary output has no driver"))
    outputs;

  (* sta-comb-loop: Kahn scheduling with undriven nets treated as ready
     (their defect is already reported above); whatever still cannot be
     scheduled sits on a cycle. *)
  let ready = Array.make n false in
  List.iter (fun i -> ready.(i) <- true) inputs;
  Hashtbl.iter (fun i () -> ready.(i) <- true) reported_undriven;
  let pending = ref gates and progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (g : D.gate) ->
        if Array.for_all (fun i -> ready.(i)) g.D.inputs then begin
          ready.(g.D.output) <- true;
          progress := true
        end
        else still := g :: !still)
      !pending;
    pending := List.rev !still
  done;
  List.iter
    (fun (g : D.gate) ->
      emit
        (Diagnostic.error ~rule:rule_comb_loop ~location:(net_loc g.D.output)
           ~hint:"break the cycle with a register or re-derive the net"
           (Printf.sprintf "%s gate sits on a combinational loop"
              (Sta.Cell_lib.cell_name g.D.cell))))
    !pending;

  (* sta-dead-logic: reverse reachability from the primary outputs. *)
  if outputs <> [] then begin
    let useful = Array.make n false in
    List.iter (fun o -> useful.(o) <- true) outputs;
    (* Gates in reverse topological-ish order: iterate to a fixed point
       (cheap; designs here are small and the loop is bounded by depth). *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (g : D.gate) ->
          if useful.(g.D.output) then
            Array.iter
              (fun i ->
                if not useful.(i) then begin
                  useful.(i) <- true;
                  changed := true
                end)
              g.D.inputs)
        gates
    done;
    List.iter
      (fun (g : D.gate) ->
        if not useful.(g.D.output) then
          emit
            (Diagnostic.warning ~rule:rule_dead_logic ~location:(net_loc g.D.output)
               ~hint:"remove the gate or route its output to a primary output"
               (Printf.sprintf "%s gate output reaches no primary output"
                  (Sta.Cell_lib.cell_name g.D.cell))))
      gates
  end;

  Diagnostic.sort !diags
