(** Solver-convergence rules ([solver-non-converged]).

    [Tcad.Poisson.solve] reports failure through a [converged] flag that a
    careless caller could ignore; {!check_poisson} converts that flag into
    a diagnostic, and {!scan_metrics} audits the obs metrics registry after
    a run so every non-convergence — wherever it happened — surfaces as a
    named rule violation. *)

val rule_non_converged : string

val check_poisson : Tcad.Poisson.solution -> Diagnostic.t list
(** Empty when the solution converged; one [solver-non-converged] error
    (with iteration count and residual) otherwise. *)

val scan_metrics : ?prefix:string -> unit -> Diagnostic.t list
(** One [solver-non-converged] error per positive ["*.non_converged"] obs
    counter.  [prefix] restricts the scan (e.g. ["tcad."]) — tests use it
    to ignore counters accumulated by unrelated suites in the same
    process. *)
