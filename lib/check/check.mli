(** Static analysis for simulation inputs.

    The paper's toolchain (MEDICI, SPICE) refuses malformed decks before
    solving; this library is that pass for ours.  Run {!netlist} /
    {!description} / {!structure} / {!design} / {!physical} / {!compact}
    on a constructed input, get a list of structured {!Diagnostic.t}s, and
    gate the solver on {!Diagnostic.has_errors} — or use {!assert_clean}
    / {!checked_netlist} / {!checked_design} to do the gating inline.

    {!Finite} adds the runtime side: solver entry/exit points are
    instrumented to trap the first non-finite value with its origin when
    the guard is enabled. *)

module Diagnostic = Diagnostic
module Rules = Rules
module Interval = Interval
module Netlist_drc = Netlist_drc
module Device_rules = Device_rules
module Structure_rules = Structure_rules
module Design_rules = Design_rules
module Finite = Finite
module Validity_rules = Validity_rules
module Memo_soundness = Memo_soundness
module Solver_rules = Solver_rules

exception Check_failed of Diagnostic.t list

val netlist : Spice.Netlist.t -> Diagnostic.t list
(** {!Netlist_drc.check}: the six netlist DRC rule classes plus waveform
    validity. *)

val physical : Device.Params.physical -> Diagnostic.t list
(** {!Device_rules.check_physical}. *)

val compact : ?points:int -> Device.Compact.t -> vdd:float -> Diagnostic.t list
(** {!Device_rules.check_compact}: I_d monotonicity/finiteness probes. *)

val description : Tcad.Structure.description -> Diagnostic.t list
(** {!Device_rules.check_description}. *)

val structure :
  ?max_growth:float ->
  ?max_aspect:float ->
  ?min_spacing:float ->
  Tcad.Structure.t ->
  Diagnostic.t list
(** {!Structure_rules.check}. *)

val design : Sta.Design.t -> Diagnostic.t list
(** {!Design_rules.check}. *)

val assert_clean : ?what:string -> Diagnostic.t list -> unit
(** Raise {!Check_failed} if any diagnostic is an error; print warnings
    (prefixed by [what]) to stderr otherwise. *)

val checked_netlist : ?what:string -> Spice.Netlist.t -> Spice.Netlist.t
(** [assert_clean (netlist c); c] — drop-in wrapper at solver call sites. *)

val checked_design : ?what:string -> Sta.Design.t -> Sta.Design.t
