(* Rule ids minted through the registry: a collision with any other
   checker is a hard failure at initialization ([Rules.Duplicate_rule]). *)
let rule_nonfinite = Rules.register ~summary:"a numeric result is NaN or infinite" "num-nonfinite"

(* Diagnostic-typed face of the numerics non-finite guard.

   The guard itself lives in [Numerics.Guard] (below every solver in the
   dependency order) so that Dcop/Transient/Poisson/Gummel can call it at
   their entry and exit points; this module owns the policy side: turning
   a trapped [Non_finite] into a structured diagnostic. *)

let enable = Numerics.Guard.enable
let disable = Numerics.Guard.disable
let is_enabled = Numerics.Guard.is_enabled
let with_guard = Numerics.Guard.with_guard

let diagnostic_of_exn = function
  | Numerics.Guard.Non_finite { origin; index; value } ->
    let location =
      match index with
      | None -> origin
      | Some i -> Printf.sprintf "%s, element %d" origin i
    in
    Some
      (Diagnostic.error ~rule:rule_nonfinite ~location
         ~hint:"run the checker on the inputs; a malformed deck is the usual cause"
         (Printf.sprintf "first non-finite value (%h) produced here" value))
  | _ -> None

let run f =
  match with_guard f with
  | v -> Ok v
  | exception e ->
    (match diagnostic_of_exn e with Some d -> Error d | None -> raise e)
