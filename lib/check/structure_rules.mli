(** Checks on a built TCAD structure (mesh + doping + boundaries).

    Rules: [tcad-mesh-spacing] (degenerate spacing, abrupt grading),
    [tcad-aspect-ratio] (over-elongated control volumes),
    [tcad-contact-coverage] (terminals without boundary nodes),
    [tcad-charge-neutrality] (ohmic contacts on near-intrinsic material or
    straddling a junction). *)

val check :
  ?max_growth:float ->
  ?max_aspect:float ->
  ?min_spacing:float ->
  Tcad.Structure.t ->
  Diagnostic.t list
(** Defaults: growth 3.5x, aspect 120, spacing floor 0.01 nm — above
    everything the shipped structure builder produces, below what breaks
    the finite-volume discretization. *)
