(** Device and physics validation: parameter records and compact models
    checked before they are handed to an optimizer or simulator.

    Rules: [dev-nonpositive-param], [dev-negative-doping],
    [dev-param-range], [dev-halo-geometry], [dev-nonmonotonic-id],
    [dev-nonfinite-id]. *)

val check_physical : Device.Params.physical -> Diagnostic.t list
(** Validate a node's physical parameter record: positivity of
    L_poly/T_ox/V_dd/dopings, unit-mistake envelopes, overlap vs channel. *)

val check_description : Tcad.Structure.description -> Diagnostic.t list
(** Validate a TCAD deck before meshing: doping positivity, halo pocket
    geometry inside the simulated box, temperature range. *)

val check_compact : ?points:int -> Device.Compact.t -> vdd:float -> Diagnostic.t list
(** Probe I_d(V_gs) at [points] points (default 5) at V_ds = 50 mV and
    V_ds = [vdd]: currents must be finite, nonnegative and strictly
    increasing in V_gs. *)
