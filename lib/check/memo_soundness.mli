(** Determinism and memo-soundness rules — the second half of
    [subscale audit].

    A memo table is sound iff its key covers everything the cached
    computation reads.  Three independent mechanisms triangulate this:
    the static read-set/key cross-check and key-sensitivity differential
    ([AUD011]), the dynamic shadow-recompute audit of [Exec.Memo]
    ([AUD012]), and the schedule-perturbation replay harness ([AUD013]). *)

val cross_check :
  what:string -> covered:string list -> reads:string list -> Diagnostic.t list
(** One [AUD011] error per field in [reads] (a traced read-set, e.g. from
    [Device.Params.Trace.collect]) that is absent from [covered] (the
    field list the memo key encodes). *)

val key_sensitivity :
  what:string -> field:string -> base_key:string -> perturbed_key:string -> Diagnostic.t list
(** [AUD011] error if perturbing [field] left the key unchanged — the
    encoder drops or collapses the field, so two distinct inputs alias. *)

val of_violations : (string * string) list -> Diagnostic.t list
(** [AUD012] errors from [Exec.Memo.audit_violations ()] — one per
    [(table, key)] whose shadow recompute disagreed with the cache. *)

val schedule_mismatch : what:string -> seed:int -> Diagnostic.t
(** [AUD013]: a sweep's output was not bit-exact under the perturbed
    schedule with this seed. *)
