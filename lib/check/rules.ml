(* Process-wide registry of static-analysis rule ids.

   Every rule id in lib/check is minted through [register] at module
   initialization, so two modules claiming the same id collide the moment
   the library is linked rather than silently shadowing each other in
   reports.  [selftest] re-validates the table (count, shape) for the
   [subscale check --selftest] / [subscale audit --selftest] paths. *)

type entry = { id : string; summary : string }

exception Duplicate_rule of string

let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []
let lock = Mutex.create ()

let register ?(summary = "") id =
  Mutex.lock lock;
  let dup = Hashtbl.mem table id in
  if not dup then begin
    Hashtbl.add table id { id; summary };
    order := id :: !order
  end;
  Mutex.unlock lock;
  if dup then raise (Duplicate_rule id);
  id

let is_registered id =
  Mutex.lock lock;
  let r = Hashtbl.mem table id in
  Mutex.unlock lock;
  r

let all () =
  (* Hashtbl.find can raise on a table someone mutated behind our back;
     protect the section so the registry lock can never leak (RAC002). *)
  Mutex.protect lock (fun () ->
      List.rev_map (fun id -> Hashtbl.find table id) !order)

(* A well-formed id is either kebab-case ("net-floating-node") or one of
   the prefixed numeric series: "AUD001" (audit), "LNT001" (source lint),
   "UNT001" (unit inference), "ALS001" (buffer ownership/aliasing) or
   "RAC001" (lockset/race analysis). *)
let well_formed id =
  let kebab =
    String.length id > 0
    && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') id
  in
  let series prefix =
    String.length id = 6
    && String.sub id 0 3 = prefix
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub id 3 3)
  in
  kebab || series "AUD" || series "LNT" || series "UNT" || series "ALS"
  || series "RAC"

let selftest () =
  let entries = all () in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.id then raise (Duplicate_rule e.id);
      Hashtbl.add seen e.id ();
      if not (well_formed e.id) then
        failwith (Printf.sprintf "Rules.selftest: malformed rule id %S" e.id))
    entries;
  List.length entries
