(** Static analysis for simulation inputs — the "deck validator" that
    MEDICI and SPICE both run before touching a solver (paper Fig. 1c flow:
    device selection only means anything on well-formed inputs).

    Every rule reports through {!Diagnostic}; nothing here invokes a
    solver, so checking is cheap enough to run on every entry point. *)

module Diagnostic = Diagnostic
module Rules = Rules
module Interval = Interval
module Netlist_drc = Netlist_drc
module Device_rules = Device_rules
module Structure_rules = Structure_rules
module Design_rules = Design_rules
module Finite = Finite
module Validity_rules = Validity_rules
module Memo_soundness = Memo_soundness
module Solver_rules = Solver_rules

exception Check_failed of Diagnostic.t list
(** Raised by {!assert_clean}; carries every diagnostic, errors first. *)

let () =
  Printexc.register_printer (function
    | Check_failed diags ->
      Some
        (Printf.sprintf "Check.Check_failed: %s\n%s" (Diagnostic.summary diags)
           (String.concat "\n" (List.map Diagnostic.to_string (Diagnostic.sort diags))))
    | _ -> None)

(* Short names for the common checks. *)
let netlist = Netlist_drc.check
let physical = Device_rules.check_physical
let compact = Device_rules.check_compact
let description = Device_rules.check_description
let structure = Structure_rules.check
let design = Design_rules.check

let assert_clean ?(what = "input") diags =
  if Diagnostic.has_errors diags then raise (Check_failed diags)
  else if diags <> [] then
    List.iter
      (fun d -> Printf.eprintf "%s: %s\n%!" what (Diagnostic.to_string d))
      (Diagnostic.sort diags)

let checked_netlist ?(what = "netlist") c =
  assert_clean ~what (netlist c);
  c

let checked_design ?(what = "design") d =
  assert_clean ~what (design d);
  d
