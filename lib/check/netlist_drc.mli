(** Netlist design-rule checks: purely topological/value analysis of a
    {!Spice.Netlist.t}, run before any solver touches it.

    Implemented rules (ids):
    - [net-floating-node] — nodes connected to nothing or dangling from a
      single terminal;
    - [net-no-dc-path] — nodes with no resistive/source/channel path to
      ground (union-find reachability);
    - [net-vsource-loop] — loops made entirely of voltage sources,
      including parallel and shorted sources;
    - [net-nonpositive-value] — zero, negative or non-finite resistance,
      capacitance or MOSFET width;
    - [net-undriven-gate] — MOSFET gates whose node touches only other
      gates;
    - [net-multi-driven] — nets forced by more than one voltage source,
      and duplicate source names;
    - [net-bad-waveform] — empty or unsorted [Pwl] source waveforms. *)

val check : Spice.Netlist.t -> Diagnostic.t list
(** All diagnostics, sorted per {!Diagnostic.compare}.  Node locations use
    {!Spice.Netlist.node_name}. *)
