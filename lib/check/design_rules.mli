(** Lint for gate-level designs ({!Sta.Design.t}).

    Rules: [sta-unconnected-pin] (undriven gate-input nets),
    [sta-comb-loop] (combinational cycles, located per gate),
    [sta-undriven-output] (primary outputs without a driver),
    [sta-dead-logic] (gates that reach no primary output),
    [sta-no-outputs] (nothing marked as an output). *)

val check : Sta.Design.t -> Diagnostic.t list
