(* Rule ids minted through the registry: a collision with any other
   checker is a hard failure at initialization ([Rules.Duplicate_rule]). *)
let rule_nonpositive_param = Rules.register ~summary:"a physical parameter is zero or negative" "dev-nonpositive-param"
let rule_negative_doping = Rules.register ~summary:"a doping density is negative" "dev-negative-doping"
let rule_param_range = Rules.register ~summary:"a parameter is outside its plausible technology range" "dev-param-range"
let rule_halo_geometry = Rules.register ~summary:"halo/overlap geometry is inconsistent with the gate" "dev-halo-geometry"
let rule_nonfinite_id = Rules.register ~summary:"the compact model produces a non-finite drain current" "dev-nonfinite-id"
let rule_nonmonotonic_id = Rules.register ~summary:"drain current is not monotone in the gate drive" "dev-nonmonotonic-id"

(* Device and physics validation.

   Rule ids:
     dev-nonpositive-param   required-positive physical parameter <= 0 / non-finite
     dev-negative-doping     negative doping magnitude
     dev-param-range         T_ox / L_poly / V_dd / doping outside the sane
                             envelope for its node
     dev-halo-geometry       halo pocket placed outside the simulated mesh,
                             or overlap consuming the channel
     dev-nonmonotonic-id     compact-model I_d not monotone in V_gs
     dev-nonfinite-id        compact-model I_d not finite/nonnegative *)

module P = Device.Params

let positive ~rule ~location what v diags =
  if not (Float.is_finite v) || v <= 0.0 then
    Diagnostic.error ~rule ~location
      ~hint:(Printf.sprintf "%s must be a positive finite number" what)
      (Printf.sprintf "%s = %g is not positive" what v)
    :: diags
  else diags

(* Generic envelopes: wide enough for every roadmap node, its sub-Vth
   re-optimization (L_poly up to 3.5x the roadmap value) and the beyond-
   roadmap projections; narrow enough to catch unit mistakes (nm fed as
   metres, cm^-3 fed as m^-3) which are the real failure mode. *)
let check_physical (phys : P.physical) =
  let loc what = Printf.sprintf "%d nm node: %s" phys.P.node_nm what in
  let diags = [] in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "L_poly") "L_poly" phys.P.lpoly diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "T_ox") "T_ox" phys.P.tox diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "V_dd") "V_dd" phys.P.vdd diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "N_sub") "N_sub" phys.P.nsub diags in
  let diags =
    if Float.is_finite phys.P.np_halo && phys.P.np_halo >= 0.0 then diags
    else
      Diagnostic.error ~rule:rule_negative_doping ~location:(loc "N_p,halo")
        ~hint:"halo doping is a magnitude added to the body; it cannot be negative"
        (Printf.sprintf "N_p,halo = %g is negative or non-finite" phys.P.np_halo)
      :: diags
  in
  if Diagnostic.has_errors diags then Diagnostic.sort diags
  else begin
    let range what v ~lo ~hi ~unit ~scale diags =
      if v < lo || v > hi then
        Diagnostic.error ~rule:rule_param_range ~location:(loc what)
          ~hint:(Printf.sprintf "expected %g..%g %s; check the unit" (scale *. lo)
                   (scale *. hi) unit)
          (Printf.sprintf "%s = %g %s is outside the physical envelope" what (scale *. v)
             unit)
        :: diags
      else diags
    in
    let diags =
      range "L_poly" phys.P.lpoly ~lo:2e-9 ~hi:2e-6 ~unit:"nm" ~scale:1e9 diags
    in
    let diags = range "T_ox" phys.P.tox ~lo:3e-10 ~hi:2e-8 ~unit:"nm" ~scale:1e9 diags in
    let diags = range "V_dd" phys.P.vdd ~lo:0.05 ~hi:1.8 ~unit:"V" ~scale:1.0 diags in
    let diags =
      range "N_sub" phys.P.nsub ~lo:1e20 ~hi:1e26 ~unit:"cm^-3"
        ~scale:(1.0 /. Physics.Constants.per_cm3 1.0) diags
    in
    let diags =
      if phys.P.tox >= phys.P.lpoly then
        Diagnostic.error ~rule:rule_param_range ~location:(loc "T_ox vs L_poly")
          ~hint:"a gate oxide thicker than the gate is a unit mistake"
          (Printf.sprintf "T_ox (%.3g nm) is not smaller than L_poly (%.3g nm)"
             (1e9 *. phys.P.tox) (1e9 *. phys.P.lpoly))
        :: diags
      else diags
    in
    let diags =
      match phys.P.overlap with
      | Some ov when 2.0 *. ov >= phys.P.lpoly ->
        Diagnostic.error ~rule:rule_halo_geometry ~location:(loc "overlap")
          ~hint:"2 x overlap must leave a positive effective channel"
          (Printf.sprintf "overlap (%.3g nm) consumes the whole %.3g nm gate"
             (1e9 *. ov) (1e9 *. phys.P.lpoly))
        :: diags
      | _ -> diags
    in
    Diagnostic.sort diags
  end

(* TCAD deck validation: the structure description a MEDICI input file
   would carry, checked before [Structure.build] meshes it. *)
let check_description (d : Tcad.Structure.description) =
  let loc what = Printf.sprintf "structure description: %s" what in
  let diags = [] in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "L_poly") "L_poly" d.Tcad.Structure.lpoly diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "T_ox") "T_ox" d.Tcad.Structure.tox diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "x_j") "x_j" d.Tcad.Structure.xj diags in
  let diags = positive ~rule:rule_nonpositive_param ~location:(loc "temperature") "temperature" d.Tcad.Structure.temperature diags in
  let neg what v diags =
    if not (Float.is_finite v) || v <= 0.0 then
      Diagnostic.error ~rule:rule_negative_doping ~location:(loc what)
        ~hint:"dopings are magnitudes; use the polarity field for the device type"
        (Printf.sprintf "%s = %g is not a positive doping magnitude" what v)
      :: diags
    else diags
  in
  let diags = neg "N_sub" d.Tcad.Structure.nsub diags in
  let diags = neg "N_sd" d.Tcad.Structure.nsd diags in
  let diags = neg "gate doping" d.Tcad.Structure.gate_doping diags in
  let diags =
    if Float.is_finite d.Tcad.Structure.np_halo && d.Tcad.Structure.np_halo >= 0.0 then
      diags
    else
      Diagnostic.error ~rule:rule_negative_doping ~location:(loc "N_p,halo")
        (Printf.sprintf "N_p,halo = %g is negative or non-finite" d.Tcad.Structure.np_halo)
      :: diags
  in
  if Diagnostic.has_errors diags then Diagnostic.sort diags
  else begin
    (* Halo geometry must land inside the simulated box: the mesh depth is
       max(6 x_j, 80 nm) and the lateral extent is tied to the gate, so the
       fractions bound where the pocket centre and spread can sit. *)
    let halo what v ~hi diags =
      if not (Float.is_finite v) || v < 0.0 || v > hi then
        Diagnostic.error ~rule:rule_halo_geometry ~location:(loc what)
          ~hint:(Printf.sprintf "%s is a fraction of x_j; expected 0..%g" what hi)
          (Printf.sprintf "%s = %g places the halo outside the mesh" what v)
        :: diags
      else diags
    in
    let diags = halo "halo_depth_frac" d.Tcad.Structure.halo_depth_frac ~hi:3.0 diags in
    let diags = halo "halo_sigma_frac" d.Tcad.Structure.halo_sigma_frac ~hi:3.0 diags in
    let diags =
      if 2.0 *. d.Tcad.Structure.overlap >= d.Tcad.Structure.lpoly then
        Diagnostic.error ~rule:rule_halo_geometry ~location:(loc "overlap")
          ~hint:"2 x overlap must leave a positive metallurgical channel"
          (Printf.sprintf "overlap (%.3g nm) consumes the whole %.3g nm gate"
             (1e9 *. d.Tcad.Structure.overlap) (1e9 *. d.Tcad.Structure.lpoly))
        :: diags
      else if d.Tcad.Structure.overlap < 0.0 then
        Diagnostic.error ~rule:rule_halo_geometry ~location:(loc "overlap")
          "overlap is negative" :: diags
      else diags
    in
    let diags =
      if d.Tcad.Structure.temperature < 77.0 || d.Tcad.Structure.temperature > 600.0 then
        Diagnostic.warning ~rule:rule_param_range ~location:(loc "temperature")
          ~hint:"the material models are calibrated for 77..600 K"
          (Printf.sprintf "temperature %g K is outside the calibrated range"
             d.Tcad.Structure.temperature)
        :: diags
      else diags
    in
    Diagnostic.sort diags
  end

(* Compact-model sanity: I_d(V_gs) probed at a few points must be finite,
   nonnegative and strictly increasing — the property every downstream
   bisection (V_th extraction, VTC solving) silently depends on. *)
let check_compact ?(points = 5) (dev : Device.Compact.t) ~vdd =
  let loc vds = Printf.sprintf "compact model I_d at V_ds = %g V" vds in
  let probe vds diags =
    let prev = ref neg_infinity and prev_vgs = ref 0.0 in
    let out = ref diags in
    for i = 0 to points - 1 do
      let vgs = vdd *. float_of_int i /. float_of_int (points - 1) in
      let id = Device.Iv_model.id dev ~vgs ~vds in
      if not (Float.is_finite id) || id < 0.0 then
        out :=
          Diagnostic.error ~rule:rule_nonfinite_id ~location:(loc vds)
            ~hint:"check the doping/geometry inputs of the compact model"
            (Printf.sprintf "I_d(V_gs = %g) = %g is not a finite nonnegative current" vgs
               id)
          :: !out
      else if id <= !prev then
        out :=
          Diagnostic.error ~rule:rule_nonmonotonic_id ~location:(loc vds)
            ~hint:"I_d must grow with V_gs; a sign error upstream is likely"
            (Printf.sprintf "I_d falls from %g to %g between V_gs = %g and %g" !prev id
               !prev_vgs vgs)
          :: !out;
      prev := id;
      prev_vgs := vgs
    done;
    !out
  in
  Diagnostic.sort (probe vdd (probe 0.05 []))
