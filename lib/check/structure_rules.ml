(* Rule ids minted through the registry: a collision with any other
   checker is a hard failure at initialization ([Rules.Duplicate_rule]). *)
let rule_mesh_spacing = Rules.register ~summary:"mesh spacing violates discretization limits" "tcad-mesh-spacing"
let rule_aspect_ratio = Rules.register ~summary:"mesh cell aspect ratio is extreme" "tcad-aspect-ratio"
let rule_contact_coverage = Rules.register ~summary:"a contact covers too little of the surface" "tcad-contact-coverage"
let rule_charge_neutrality = Rules.register ~summary:"doping violates charge-neutrality expectations" "tcad-charge-neutrality"

(* Built-structure checks: the compiled mesh + doping + boundary deck,
   validated against what the Poisson/continuity discretization can
   actually digest.

   Rule ids:
     tcad-mesh-spacing     degenerate or too-abruptly-graded mesh lines
     tcad-aspect-ratio     control volumes too elongated for the 5-point stencil
     tcad-contact-coverage terminals with no (or single-node) ohmic boundary
     tcad-charge-neutrality  ohmic contact nodes where charge-neutral carrier
                           densities are ill-defined or change type *)

module S = Tcad.Structure
module M = Tcad.Mesh

(* Thresholds sit above what the shipped 90..32 nm builders produce
   (growth <= 2.3, aspect <= 45) with enough headroom for refinement
   changes, and far below where the discretization degrades. *)
let default_max_growth = 3.5
let default_max_aspect = 120.0
let default_min_spacing = 1e-11 (* 0.01 nm *)

let axis_checks ~axis_name ~max_growth ~min_spacing axis diags =
  let n = Array.length axis in
  let out = ref diags in
  for i = 0 to n - 2 do
    let h = axis.(i + 1) -. axis.(i) in
    if h < min_spacing then
      out :=
        Diagnostic.error ~rule:rule_mesh_spacing
          ~location:(Printf.sprintf "%s axis, interval %d" axis_name i)
          ~hint:"merge the nearly coincident mesh lines"
          (Printf.sprintf "spacing %.3g nm is below the %.3g nm floor" (1e9 *. h)
             (1e9 *. min_spacing))
        :: !out
  done;
  for i = 0 to n - 3 do
    let a = axis.(i + 1) -. axis.(i) and b = axis.(i + 2) -. axis.(i + 1) in
    let r = Float.max (a /. b) (b /. a) in
    if r > max_growth then
      out :=
        Diagnostic.warning ~rule:rule_mesh_spacing
          ~location:(Printf.sprintf "%s axis, lines %d..%d" axis_name i (i + 2))
          ~hint:"grade the mesh so neighbouring intervals differ by < 3.5x"
          (Printf.sprintf "adjacent spacings differ by %.1fx (truncation error grows)" r)
        :: !out
  done;
  !out

let check ?(max_growth = default_max_growth) ?(max_aspect = default_max_aspect)
    ?(min_spacing = default_min_spacing) (dev : S.t) =
  let mesh = dev.S.mesh in
  let xs = mesh.M.xs and ys = mesh.M.ys in
  let diags = [] in
  let diags = axis_checks ~axis_name:"x" ~max_growth ~min_spacing xs diags in
  let diags = axis_checks ~axis_name:"y" ~max_growth ~min_spacing ys diags in
  (* Worst control-volume aspect ratio. *)
  let worst = ref 1.0 and wix = ref 0 and wiy = ref 0 in
  for ix = 0 to mesh.M.nx - 2 do
    for iy = 0 to mesh.M.ny - 2 do
      let dx = xs.(ix + 1) -. xs.(ix) and dy = ys.(iy + 1) -. ys.(iy) in
      if dx > 0.0 && dy > 0.0 then begin
        let r = Float.max (dx /. dy) (dy /. dx) in
        if r > !worst then begin
          worst := r;
          wix := ix;
          wiy := iy
        end
      end
    done
  done;
  let diags =
    if !worst > max_aspect then
      Diagnostic.warning ~rule:rule_aspect_ratio
        ~location:(Printf.sprintf "cell (%d, %d)" !wix !wiy)
        ~hint:"refine the coarse direction or coarsen the fine one"
        (Printf.sprintf "control volume aspect ratio %.0f exceeds %.0f" !worst max_aspect)
      :: diags
    else diags
  in
  (* Contact coverage: every terminal the bias structure names must own at
     least one boundary node, and the gate must have its Robin surface. *)
  let count_term t =
    Array.fold_left
      (fun acc b -> match b with S.Ohmic t' when t' = t -> acc + 1 | _ -> acc)
      0 dev.S.boundary
  in
  let gate_nodes =
    Array.fold_left
      (fun acc b -> match b with S.Gate_surface -> acc + 1 | _ -> acc)
      0 dev.S.boundary
  in
  let need what n diags =
    if n = 0 then
      Diagnostic.error ~rule:rule_contact_coverage
        ~location:(Printf.sprintf "%s contact" what)
        ~hint:"the bias cannot be applied without boundary nodes"
        "terminal has no boundary nodes" :: diags
    else if n = 1 then
      Diagnostic.warning ~rule:rule_contact_coverage
        ~location:(Printf.sprintf "%s contact" what)
        ~hint:"refine the mesh under the contact"
        "terminal is resolved by a single mesh node" :: diags
    else diags
  in
  let diags = need "source" (count_term S.Source) diags in
  let diags = need "drain" (count_term S.Drain) diags in
  let diags = need "substrate" (count_term S.Substrate) diags in
  let diags = need "gate" gate_nodes diags in
  (* Charge neutrality at ohmic contacts: the Dirichlet value assumes the
     contact is neutral with a well-defined majority carrier, which needs
     |net doping| >> n_i and a single doping type under each contact. *)
  let n = M.n_nodes mesh in
  let seen_sign = Hashtbl.create 4 in
  let diags = ref diags in
  for k = 0 to n - 1 do
    match dev.S.boundary.(k) with
    | S.Ohmic term ->
      let net = Tcad.Field.get dev.S.net_doping k in
      let term_name =
        match term with
        | S.Source -> "source"
        | S.Drain -> "drain"
        | S.Gate -> "gate"
        | S.Substrate -> "substrate"
      in
      if Float.abs net < 10.0 *. dev.S.ni then
        diags :=
          Diagnostic.error ~rule:rule_charge_neutrality
            ~location:(Printf.sprintf "%s contact node %d" term_name k)
            ~hint:"move the contact onto doped material"
            (Printf.sprintf
               "|net doping| = %.3g m^-3 is within 10x of n_i; the neutral \
                carrier densities are ill-defined"
               (Float.abs net))
          :: !diags
      else begin
        let sign = if net > 0.0 then 1 else -1 in
        match Hashtbl.find_opt seen_sign term_name with
        | None -> Hashtbl.add seen_sign term_name sign
        | Some s when s <> sign ->
          Hashtbl.replace seen_sign term_name sign;
          diags :=
            Diagnostic.error ~rule:rule_charge_neutrality
              ~location:(Printf.sprintf "%s contact" term_name)
              ~hint:"a contact straddling a junction shorts it"
              "contact spans both doping types" :: !diags
        | Some _ -> ()
      end
    | S.Interior | S.Reflecting | S.Gate_surface -> ()
  done;
  Diagnostic.sort !diags
