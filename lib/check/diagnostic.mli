(** Structured static-analysis diagnostics.

    Every rule in the checker reports through this one type so the CLI,
    the tests and library callers all consume the same shape: a stable
    rule id (grep-able, e.g. ["net-floating-node"]), a severity, a
    human-readable location (node/net/parameter names, not internal
    indices) and a fix hint where one is known. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule identifier, kebab-case, namespaced by layer *)
  severity : severity;
  location : string;  (** where, in user vocabulary ("node \"out\"", "gate oxide") *)
  message : string;  (** what is wrong *)
  hint : string option;  (** how to fix it, when a fix is known *)
}

val make : ?hint:string -> rule:string -> severity:severity -> location:string -> string -> t

val error : ?hint:string -> rule:string -> location:string -> string -> t
val warning : ?hint:string -> rule:string -> location:string -> string -> t
val info : ?hint:string -> rule:string -> location:string -> string -> t

val severity_label : severity -> string

val compare : t -> t -> int
(** Errors before warnings before info, then rule id, then location. *)

val sort : t list -> t list

val errors : t list -> t list
val warnings : t list -> t list

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val has_errors : t list -> bool

val to_string : t -> string
(** ["error[net-floating-node] node \"x\": ... (hint: ...)"]. *)

val pp : Format.formatter -> t -> unit

val print_all : ?out:out_channel -> t list -> unit
(** Print sorted, one per line. *)

val summary : t list -> string
(** ["clean"] or ["2 error(s), 1 warning(s), 0 info"]. *)

val exit_code : t list -> int
(** 0 when error-free (warnings allowed), 1 otherwise — the contract of
    [subscale check]. *)
