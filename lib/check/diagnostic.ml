type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  location : string;
  message : string;
  hint : string option;
}

let make ?hint ~rule ~severity ~location message =
  { rule; severity; location; message; hint }

let error ?hint ~rule ~location message = make ?hint ~rule ~severity:Error ~location message
let warning ?hint ~rule ~location message =
  make ?hint ~rule ~severity:Warning ~location message
let info ?hint ~rule ~location message = make ?hint ~rule ~severity:Info ~location message

let severity_label = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Errors first, then by rule id, then by location: stable, scriptable
   output order regardless of rule evaluation order. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else begin
    let c = String.compare a.rule b.rule in
    if c <> 0 then c else String.compare a.location b.location
  end

let sort diags = List.stable_sort compare diags

let errors diags = List.filter (fun d -> d.severity = Error) diags
let warnings diags = List.filter (fun d -> d.severity = Warning) diags

let count diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let to_string d =
  let base =
    Printf.sprintf "%s[%s] %s: %s" (severity_label d.severity) d.rule d.location d.message
  in
  match d.hint with None -> base | Some h -> base ^ " (hint: " ^ h ^ ")"

let pp ppf d = Format.pp_print_string ppf (to_string d)

let print_all ?(out = stdout) diags =
  List.iter (fun d -> Printf.fprintf out "%s\n" (to_string d)) (sort diags)

let summary diags =
  let e, w, i = count diags in
  if e = 0 && w = 0 && i = 0 then "clean"
  else Printf.sprintf "%d error(s), %d warning(s), %d info" e w i

(* Exit-code policy for the CLI: errors are fatal, warnings are not (use
   [has_errors] on warnings too if a caller wants --strict behaviour). *)
let exit_code diags = if has_errors diags then 1 else 0
