(* Interval abstract interpretation of the paper's model chain.

   The concrete pipeline (Compact.build -> Iv_model -> Delay.eq5 ->
   Energy.analytic) is re-executed over the {!Interval} domain: every
   physical parameter becomes an interval, every derived quantity a
   guaranteed enclosure of all concrete values the parameter box can
   produce.  The mirror follows the concrete formulas operation by
   operation — including their branches (W_dep clamp at psi <= 0, the
   softplus large-x branch, the halo-fraction min) — so enclosure is by
   construction, and single-variable monotone stages (phi_F, mobility,
   E_crit) are lifted by evaluating the *actual* library function at the
   interval endpoints, which keeps audited and executed code from ever
   drifting apart.

   On top of the enclosures sit the AUD regime rules: where an interval
   can leave the model's validity domain (weak inversion, Eq. 1; physical
   S_S band, Eq. 2; positive L_eff; defined log/sqrt arguments; bounded
   exp; non-zero divisors) a diagnostic names the violated equation and
   the offending interval bound.  Because the arithmetic is sound, a
   clean report is a proof: no point of the box can trip the hazard. *)

module I = Interval
module P = Device.Params
module C = Physics.Constants

(* Stable audit rule ids, minted through the registry so a collision with
   any other checker is a startup failure. *)
let rule_weak_inversion =
  Rules.register ~summary:"operating point leaves the weak-inversion domain of Eq. (1)"
    "AUD001"

let rule_small_vds =
  Rules.register ~summary:"V_ds too small for Eq. (1)'s drain-saturation premise" "AUD002"

let rule_div_zero =
  Rules.register ~summary:"division by a zero-straddling interval" "AUD003"

let rule_exp_overflow =
  Rules.register ~summary:"exp argument can overflow to infinity" "AUD004"

let rule_log_domain =
  Rules.register ~summary:"log/sqrt argument can leave the function's domain" "AUD005"

let rule_ss_band =
  Rules.register ~summary:"propagated S_S outside the physical band of Eq. (2)" "AUD006"

let rule_leff =
  Rules.register ~summary:"gate/S-D overlap can consume the gate (L_eff <= 0)" "AUD007"

let rule_mesh =
  Rules.register ~summary:"TCAD mesh under-resolves the channel or junctions" "AUD008"

let rule_vmin_bracket =
  Rules.register ~summary:"V_min search bracket below the Eq. (7)-(8) validity floor"
    "AUD009"

let rule_on_off =
  Rules.register ~summary:"on/off ratio too low for a regenerative VTC (SNM collapse)"
    "AUD010"

(* {2 Parameter boxes} *)

type box = {
  lpoly : I.t;
  tox : I.t;
  nsub : I.t;
  np_halo : I.t;
  xj : I.t option;
  overlap : I.t option;
}

let box_of_physical ?(widen = 0.0) (p : P.physical) =
  let iv v = if Float.equal widen 0.0 then I.point v else I.widen ~rel:widen (I.point v) in
  {
    lpoly = iv p.P.lpoly;
    tox = iv p.P.tox;
    nsub = iv p.P.nsub;
    np_halo = iv p.P.np_halo;
    xj = Option.map iv p.P.xj;
    overlap = Option.map iv p.P.overlap;
  }

(* {2 Diagnostic context} *)

type ctx = { what : string; mutable diags : Diagnostic.t list }

let emit ctx d = ctx.diags <- d :: ctx.diags

let checked_div ctx ~expr num den =
  if I.straddles_zero den then
    emit ctx
      (Diagnostic.error ~rule:rule_div_zero ~location:ctx.what
         (Printf.sprintf "%s: denominator interval %s straddles zero, so the quotient is unbounded"
            expr (I.to_string den)));
  I.div num den

(* exp rounds to +infinity above ln(max_float) ~ 709.78; an interval whose
   upper bound can get there convicts a guaranteed-overflow input region. *)
let exp_overflow = 709.7

let checked_exp ctx ~expr x =
  if I.hi x > exp_overflow then
    emit ctx
      (Diagnostic.error ~rule:rule_exp_overflow ~location:ctx.what
         (Printf.sprintf
            "%s: exponent upper bound %.4g exceeds ln(max_float) ~ 709.8 — exp overflows to infinity"
            expr (I.hi x)));
  I.exp x

let checked_sqrt ctx ~expr x =
  if I.lo x < 0.0 then
    emit ctx
      (Diagnostic.error ~rule:rule_log_domain ~location:ctx.what
         (Printf.sprintf "%s: sqrt argument lower bound %.4g < 0 — result is NaN" expr
            (I.lo x)));
  if I.hi x < 0.0 then I.top else I.sqrt x

(* {2 Device propagation (mirror of Compact.build + Iv_model)} *)

type derived = {
  xj : I.t;
  overlap : I.t;
  leff : I.t;
  neff : I.t;
  phi_f : I.t;
  wdep : I.t;
  cox : I.t;
  ss : I.t;
  m : I.t;
  vth0 : I.t;
  vbi : I.t;
  lt : I.t;
  mu : I.t;
  cg : I.t;
  cg_intrinsic : I.t;
  vth : I.t;
  ion : I.t;
  ioff : I.t;
  on_off : I.t;
}

(* Final relative widening absorbing the concrete pipeline's own float
   rounding (a few ulps); negligible against every rule threshold. *)
let settle = I.widen ~rel:1e-12

(* Floor used to keep propagating past a region already convicted (L_eff or
   N_eff that can reach zero): the diagnostic has fired; the clamped
   interval covers the surviving part of the box. *)
let tiny = 1e-300

let propagate_device ctx ~(cal : P.calibration) ~t ~polarity ~op_vdd (b : box) =
  let vt = C.thermal_voltage t in
  let pt = I.point in
  let xj =
    match b.xj with Some v -> v | None -> I.scale cal.P.xj_fraction b.lpoly
  in
  let overlap =
    match b.overlap with Some v -> v | None -> I.scale cal.P.overlap_fraction b.lpoly
  in
  let leff = I.sub b.lpoly (I.scale 2.0 overlap) in
  if I.lo leff <= 0.0 then
    emit ctx
      (Diagnostic.error ~rule:rule_leff ~location:ctx.what
         ~hint:"reduce the overlap fraction or lengthen L_poly"
         (Printf.sprintf
            "Eq. (2) geometry: L_eff = L_poly - 2 overlap has lower bound %.4g m <= 0 — the overlap consumes the gate (Compact.build rejects such a device)"
            (I.lo leff)));
  let leff = I.clamp_lo tiny leff in
  let halo_fraction =
    I.min_ (pt 0.85)
      (I.scale cal.P.k_halo (checked_div ctx ~expr:"halo fraction k_halo x_j/L_eff (Sec. 3.1)" xj leff))
  in
  let nhalo = I.add b.nsub b.np_halo in
  let neff = I.add b.nsub (I.mul halo_fraction (I.sub nhalo b.nsub)) in
  if I.lo neff <= 0.0 then
    emit ctx
      (Diagnostic.error ~rule:rule_log_domain ~location:ctx.what
         (Printf.sprintf
            "phi_F = v_T ln(N_eff/n_i) (Eq. 2a): N_eff lower bound %.4g m^-3 <= 0 — the Fermi potential is undefined"
            (I.lo neff)));
  let neff = I.clamp_lo 1.0 neff in
  (* Monotone single-variable stages: lift the real library functions. *)
  let phi_f = I.mono_incr (fun n -> Physics.Silicon.fermi_potential ~t n) neff in
  if I.lo phi_f <= 0.0 then
    emit ctx
      (Diagnostic.error ~rule:rule_log_domain ~location:ctx.what
         (Printf.sprintf
            "Eq. (2a): phi_F lower bound %.4g V <= 0 (N_eff can fall below n_i) — Q_dep = sqrt(4 q eps_si N_eff phi_F) is NaN there"
            (I.lo phi_f)));
  let psi = I.scale 2.0 phi_f in
  let wdep =
    if I.hi psi <= 0.0 then pt 0.0
    else
      checked_sqrt ctx ~expr:"W_dep (Eq. 2a)"
        (checked_div ctx ~expr:"W_dep^2 = 2 eps_si psi_s/(q N_eff)"
           (I.scale (2.0 *. C.eps_si /. C.q) (I.clamp_lo 0.0 psi))
           neff)
  in
  let cox = I.mono_decr (fun tox -> Device.Capacitance.oxide_area_capacitance ~tox) b.tox in
  (* S_S, Eq. (2b): body factor x short-channel factor. *)
  let tox_over_wdep = checked_div ctx ~expr:"T_ox/W_dep (Eq. 2b)" b.tox wdep in
  let body = I.add (pt 1.0) (I.scale (cal.P.k_body *. 3.0) tox_over_wdep) in
  let a = cal.P.lambda_xj_exp in
  let lambda =
    I.scale cal.P.k_lambda
      (I.mul (I.pow_const xj a) (I.pow_const (I.mul b.tox wdep) (0.5 *. (1.0 -. a))))
  in
  let sce_exp =
    checked_exp ctx ~expr:"SCE decay exp(-pi L_eff/2 lambda) (Eq. 2b)"
      (I.neg (I.scale (Float.pi /. 2.0) (checked_div ctx ~expr:"L_eff/lambda" leff lambda)))
  in
  let sce = I.add (pt 1.0) (I.mul (I.scale (cal.P.k_sce *. 11.0) tox_over_wdep) sce_exp) in
  let ss = I.add (I.scale (2.3 *. vt) (I.mul body sce)) (pt cal.P.ss_offset) in
  let m = I.scale (1.0 /. (2.3 *. vt)) ss in
  (* V_th0 (Eq. 2a) and the roll-off/DIBL geometry (Eq. 3). *)
  let phi_gate = Physics.Silicon.fermi_potential ~t (C.per_cm3 1e20) in
  let vfb = I.neg (I.add (pt phi_gate) phi_f) in
  let qdep =
    checked_sqrt ctx ~expr:"Q_dep = sqrt(4 q eps_si N_eff phi_F) (Eq. 2a)"
      (I.scale (4.0 *. C.q *. C.eps_si) (I.mul neff phi_f))
  in
  let vth0 = I.add vfb (I.add (I.scale 2.0 phi_f) (checked_div ctx ~expr:"Q_dep/C_ox" qdep cox)) in
  let vbi =
    I.mono_incr (fun n -> Physics.Silicon.builtin_potential ~t n Device.Compact.sd_doping) neff
  in
  let lt = I.sqrt (I.scale (C.eps_si /. C.eps_ox) (I.mul b.tox wdep)) in
  let carrier =
    match polarity with
    | P.Nfet -> Physics.Mobility.Electron
    | P.Pfet -> Physics.Mobility.Hole
  in
  let mu = I.scale cal.P.mu_factor (I.mono_decr (fun n -> Physics.Mobility.channel ~t carrier n) neff) in
  let cg =
    I.add (I.mul cox leff) (I.scale 2.0 (I.add (I.mul cox overlap) (pt cal.P.fringe_cap)))
  in
  let cg_intrinsic = I.mul cox (I.add leff (I.scale 2.0 overlap)) in
  let rolloff_exp =
    checked_exp ctx ~expr:"roll-off exp(-L_eff/2 l_t) (Eq. 3)"
      (I.neg (checked_div ctx ~expr:"L_eff/2 l_t" leff (I.scale 2.0 lt)))
  in
  let vth_at vds =
    let rolloff =
      I.neg
        (I.scale cal.P.k_vth_sce
           (I.mul
              (I.add (I.scale 2.0 (I.sub vbi (I.scale 2.0 phi_f))) (I.scale cal.P.k_dibl vds))
              rolloff_exp))
    in
    I.add vth0 (I.add rolloff (pt cal.P.vth_offset))
  in
  (* EKV drain current, Eq. (1) as implemented by Iv_model. *)
  let ispec =
    I.scale (2.0 *. vt *. vt)
      (checked_div ctx ~expr:"I_spec = 2 m mu C_ox v_T^2/L_eff (Eq. 1)"
         (I.mul (I.mul m mu) cox) leff)
  in
  let big_f v =
    let l = I.softplus (I.scale 0.5 v) in
    I.mul l l
  in
  let ec = I.mono_incr (fun n -> Physics.Mobility.critical_field carrier n) neff in
  let id ~vgs ~vds =
    let vp = checked_div ctx ~expr:"pinch-off (V_gs - V_th)/m (Eq. 1)" (I.sub vgs (vth_at vds)) m in
    let uf = I.scale (1.0 /. vt) vp in
    let ur = I.scale (1.0 /. vt) (I.sub vp vds) in
    let i_norm = I.sub (big_f uf) (big_f ur) in
    let vgt_eff = I.scale (2.0 *. vt) (checked_sqrt ctx ~expr:"sqrt F(u_f)" (big_f uf)) in
    let sat =
      I.inv
        (I.add (pt 1.0)
           (checked_div ctx ~expr:"velocity-saturation factor (Eq. 1)" vgt_eff (I.mul ec leff)))
    in
    I.mul (I.mul ispec i_norm) sat
  in
  let ion = id ~vgs:op_vdd ~vds:op_vdd in
  let ioff = id ~vgs:(pt 0.0) ~vds:op_vdd in
  let on_off = checked_div ctx ~expr:"I_on/I_off" ion ioff in
  {
    xj = settle xj;
    overlap = settle overlap;
    leff = settle leff;
    neff = settle neff;
    phi_f = settle phi_f;
    wdep = settle wdep;
    cox = settle cox;
    ss = settle ss;
    m = settle m;
    vth0 = settle vth0;
    vbi = settle vbi;
    lt = settle lt;
    mu = settle mu;
    cg = settle cg;
    cg_intrinsic = settle cg_intrinsic;
    vth = settle (vth_at op_vdd);
    ion = settle ion;
    ioff = settle ioff;
    on_off = settle on_off;
  }

(* {2 Regime rules on the propagated enclosures} *)

let mv_dec v = v *. 1000.0

let regime_checks ctx ~t ~op_vdd (d : derived) =
  let vt = C.thermal_voltage t in
  (* AUD001 — Eq. (1) is the weak/moderate-inversion EKV current; it is
     only trusted for gate drives below threshold.  Definitely past
     V_th + 2 m v_T (onset of strong inversion) is an error; merely able
     to cross V_th is a warning. *)
  let vth_lo = I.lo d.vth in
  if I.hi op_vdd > vth_lo +. (2.0 *. I.lo d.m *. vt) then
    emit ctx
      (Diagnostic.error ~rule:rule_weak_inversion ~location:ctx.what
         ~hint:"audit at a lower --op-vdd, or treat results as strong-inversion extrapolation"
         (Printf.sprintf
            "Eq. (1) weak-inversion premise: V_dd upper bound %.3f V exceeds V_th(V_dd) lower bound %.3f V by more than 2 m v_T = %.3f V — the device enters strong inversion"
            (I.hi op_vdd) vth_lo
            (2.0 *. I.lo d.m *. vt)))
  else if I.hi op_vdd > vth_lo then
    emit ctx
      (Diagnostic.warning ~rule:rule_weak_inversion ~location:ctx.what
         (Printf.sprintf
            "Eq. (1) weak-inversion premise: V_dd upper bound %.3f V can cross V_th(V_dd) lower bound %.3f V — moderate inversion"
            (I.hi op_vdd) vth_lo));
  (* AUD002 — Eq. (1)'s F(u_f) - F(u_r) difference needs V_ds of a few v_T
     for the drain term to saturate. *)
  if I.lo op_vdd < vt then
    emit ctx
      (Diagnostic.error ~rule:rule_small_vds ~location:ctx.what
         (Printf.sprintf
            "Eq. (1) drain saturation: V_ds lower bound %.3f V < v_T = %.4f V — I_on and I_off are no longer separable"
            (I.lo op_vdd) vt))
  else if I.lo op_vdd < 3.0 *. vt then
    emit ctx
      (Diagnostic.warning ~rule:rule_small_vds ~location:ctx.what
         (Printf.sprintf
            "Eq. (1) drain saturation: V_ds lower bound %.3f V < 3 v_T = %.4f V — the 1 - e^(-V_ds/v_T) term deviates from 1 by > 5%%"
            (I.lo op_vdd) (3.0 *. vt)));
  (* AUD006 — Eq. (2) only calibrates S_S in the physically plausible
     band; 2.3 v_T (~60 mV/dec at 300 K) is the ideal floor. *)
  if I.lo d.ss > 0.150 then
    emit ctx
      (Diagnostic.error ~rule:rule_ss_band ~location:ctx.what
         (Printf.sprintf
            "Eq. (2b): S_S lower bound %.1f mV/dec > 150 mV/dec — short-channel control is lost and the compact model is outside its calibrated band"
            (mv_dec (I.lo d.ss))))
  else begin
    if I.hi d.ss < 2.3 *. vt then
      emit ctx
        (Diagnostic.error ~rule:rule_ss_band ~location:ctx.what
           (Printf.sprintf
              "Eq. (2b): S_S upper bound %.1f mV/dec below the ideal limit 2.3 v_T = %.1f mV/dec — unphysical"
              (mv_dec (I.hi d.ss))
              (mv_dec (2.3 *. vt))));
    if I.lo d.ss > 0.120 then
      emit ctx
        (Diagnostic.warning ~rule:rule_ss_band ~location:ctx.what
           (Printf.sprintf "Eq. (2b): S_S lower bound %.1f mV/dec > 120 mV/dec"
              (mv_dec (I.lo d.ss))))
  end;
  (* AUD010 — a static CMOS gate regenerates only with enough I_on/I_off
     gain (paper Sec. 4: the functionality limit of V_dd scaling). *)
  if I.is_finite d.on_off then begin
    if I.hi d.on_off < 10.0 then
      emit ctx
        (Diagnostic.error ~rule:rule_on_off ~location:ctx.what
           (Printf.sprintf
              "I_on/I_off upper bound %.3g < 10 at V_dd = %s V — the VTC cannot regenerate (SNM collapses)"
              (I.hi d.on_off) (I.to_string op_vdd)))
    else if I.hi d.on_off < 100.0 then
      emit ctx
        (Diagnostic.warning ~rule:rule_on_off ~location:ctx.what
           (Printf.sprintf "I_on/I_off upper bound %.3g < 100 at V_dd = %s V"
              (I.hi d.on_off) (I.to_string op_vdd)))
  end

(* {2 Circuit propagation (mirror of Delay.eq5 + Energy.analytic)} *)

type circuit = {
  cl : I.t;
  tp : I.t;
  t_cycle : I.t;
  e_dyn : I.t;
  e_leak : I.t;
  e_total : I.t;
}

let propagate_circuit ctx ~(cal : P.calibration) ~op_vdd ~(nfet : derived) ~(pfet : derived) =
  let s = Circuits.Inverter.balanced_sizing () in
  let wn = s.Circuits.Inverter.wn and wp = s.Circuits.Inverter.wp in
  let cl =
    I.scale cal.P.load_factor (I.add (I.scale wn nfet.cg) (I.scale wp pfet.cg))
  in
  let drive = I.scale 0.5 (I.add (I.scale wn nfet.ion) (I.scale wp pfet.ion)) in
  let tp =
    checked_div ctx ~expr:"t_p = 0.69 C_L V_dd / I_drive (Eq. 5)"
      (I.scale Analysis.Delay.k_d (I.mul cl op_vdd))
      drive
  in
  let n = float_of_int Analysis.Energy.default_stages in
  let alpha = Analysis.Energy.default_alpha in
  let t_cycle = I.scale n tp in
  let e_dyn = I.scale (alpha *. n) (I.mul cl (I.mul op_vdd op_vdd)) in
  let i_leak = I.scale (n *. 0.5) (I.add (I.scale wn nfet.ioff) (I.scale wp pfet.ioff)) in
  let e_leak = I.mul i_leak (I.mul op_vdd t_cycle) in
  let e_total = I.add e_dyn e_leak in
  {
    cl = settle cl;
    tp = settle tp;
    t_cycle = settle t_cycle;
    e_dyn = settle e_dyn;
    e_leak = settle e_leak;
    e_total = settle e_total;
  }

let bracket_checks ctx ~t =
  (* AUD009 — the Eq. (7)-(8) energy model (and the V_min search built on
     it) assumes subthreshold conduction down to the bracket floor; below
     ~3 v_T the delay model degenerates before the optimizer ever gets
     there. *)
  let vt = C.thermal_voltage t in
  let lo = Analysis.Energy.vmin_bracket_lo in
  if lo < vt then
    emit ctx
      (Diagnostic.error ~rule:rule_vmin_bracket ~location:ctx.what
         (Printf.sprintf
            "Eq. (7)-(8): V_min bracket lower edge %.3f V < v_T = %.4f V — the energy model is evaluated outside any inversion regime"
            lo vt))
  else if lo < 3.0 *. vt then
    emit ctx
      (Diagnostic.warning ~rule:rule_vmin_bracket ~location:ctx.what
         (Printf.sprintf
            "Eq. (7)-(8): V_min bracket lower edge %.3f V < 3 v_T = %.4f V — Eq. (1) loses its drain-saturation premise inside the search bracket"
            lo (3.0 *. vt)))

(* {2 Top-level audits} *)

type report = {
  what : string;
  nfet : derived;
  pfet : derived;
  circuit : circuit;
  diags : Diagnostic.t list;
}

let audit_box ?(cal = P.default_calibration) ?(t = C.t_room) ?(what = "device") ~op_vdd box =
  let ctx_n = { what = what ^ " NFET"; diags = [] } in
  let nfet = propagate_device ctx_n ~cal ~t ~polarity:P.Nfet ~op_vdd box in
  regime_checks ctx_n ~t ~op_vdd nfet;
  let ctx_p = { what = what ^ " PFET"; diags = [] } in
  let pfet = propagate_device ctx_p ~cal ~t ~polarity:P.Pfet ~op_vdd box in
  regime_checks ctx_p ~t ~op_vdd pfet;
  let ctx_c = { what = what ^ " FO1 inverter"; diags = [] } in
  let circuit = propagate_circuit ctx_c ~cal ~op_vdd ~nfet ~pfet in
  bracket_checks ctx_c ~t;
  let diags = List.rev_append ctx_n.diags (List.rev_append ctx_p.diags (List.rev ctx_c.diags)) in
  { what; nfet; pfet; circuit; diags }

let audit_physical ?cal ?t ?(widen = 0.0) ?op_vdd ?what (p : P.physical) =
  let op =
    match op_vdd with
    | Some v -> v
    | None -> if p.P.vdd > 0.0 then p.P.vdd else 0.25
  in
  let what =
    match what with
    | Some w -> w
    | None -> Printf.sprintf "%d nm device at V_dd = %.3g V" p.P.node_nm op
  in
  audit_box ?cal ?t ~what ~op_vdd:(I.point op) (box_of_physical ~widen p)

(* {2 Mesh-resolution preconditions (AUD008)} *)

let check_mesh ?nx ?ny (desc : Tcad.Structure.description) =
  let what = Printf.sprintf "TCAD structure (L_poly = %.3g nm)" (C.to_nm desc.Tcad.Structure.lpoly) in
  let ctx = { what; diags = [] } in
  let dev = Tcad.Structure.build ?nx ?ny desc in
  let mesh = dev.Tcad.Structure.mesh in
  let xs = mesh.Tcad.Mesh.xs and ys = mesh.Tcad.Mesh.ys in
  let x_g0, x_g1 = Tcad.Structure.gate_span desc in
  let in_gate = Array.to_list xs |> List.filter (fun x -> x >= x_g0 && x <= x_g1) in
  let gate_lines = List.length in_gate in
  (* The drift-diffusion current cut integrates along the channel; fewer
     than ~8 lateral lines under the gate cannot resolve the barrier the
     subthreshold current tunnels over, and the Scharfetter–Gummel fluxes
     lose their exponential fitting advantage. *)
  if gate_lines < 6 then
    emit ctx
      (Diagnostic.error ~rule:rule_mesh ~location:what
         ~hint:"raise nx (or leave Structure.build's default)"
         (Printf.sprintf
            "channel resolution: only %d lateral mesh lines under the gate [%.3g, %.3g] nm — need >= 6 to resolve the source-drain barrier"
            gate_lines (C.to_nm x_g0) (C.to_nm x_g1)))
  else if gate_lines < 12 then
    emit ctx
      (Diagnostic.warning ~rule:rule_mesh ~location:what
         (Printf.sprintf "channel resolution: %d lateral mesh lines under the gate (>= 12 recommended)"
            gate_lines));
  (* Surface spacing against the junction depth: the inversion layer and
     the halo peak both live within x_j of the surface. *)
  let xj = desc.Tcad.Structure.xj in
  let dy_surface = ys.(1) -. ys.(0) in
  if dy_surface > xj /. 3.0 then
    emit ctx
      (Diagnostic.error ~rule:rule_mesh ~location:what
         ~hint:"raise ny (or leave Structure.build's default)"
         (Printf.sprintf
            "surface resolution: first vertical spacing %.3g nm > x_j/3 = %.3g nm — the inversion layer is unresolved"
            (C.to_nm dy_surface)
            (C.to_nm (xj /. 3.0))))
  else if dy_surface > xj /. 6.0 then
    emit ctx
      (Diagnostic.warning ~rule:rule_mesh ~location:what
         (Printf.sprintf "surface resolution: first vertical spacing %.3g nm > x_j/6 = %.3g nm"
            (C.to_nm dy_surface)
            (C.to_nm (xj /. 6.0))));
  let lines_in_xj = Array.to_list ys |> List.filter (fun y -> y <= xj) |> List.length in
  if lines_in_xj < 4 then
    emit ctx
      (Diagnostic.error ~rule:rule_mesh ~location:what
         (Printf.sprintf
            "junction resolution: only %d vertical mesh lines within x_j = %.3g nm — need >= 4 to resolve the S/D junctions and halos"
            lines_in_xj (C.to_nm xj)))
  else if lines_in_xj < 8 then
    emit ctx
      (Diagnostic.warning ~rule:rule_mesh ~location:what
         (Printf.sprintf "junction resolution: %d vertical mesh lines within x_j = %.3g nm (>= 8 recommended)"
            lines_in_xj (C.to_nm xj)));
  List.rev ctx.diags
