(* Sound interval arithmetic for the validity abstract interpreter.

   An interval is a closed, non-empty set [lo, hi] of reals (endpoints may
   be infinite).  Every operation returns an interval that CONTAINS the
   image of its inputs — soundness over tightness: dependent subexpressions
   are re-widened (x - x is not 0) and every finite endpoint is pushed
   outward by a couple of ulps, which dominates the worst-case rounding of
   the libm kernels we model (exp/log/pow are within 1-2 ulps on glibc).

   NaN never enters an interval: constructors reject it, and operations
   whose candidate endpoints would be NaN (0 * inf at a corner) widen to
   the full line instead — again sound, never silent. *)

type t = { lo : float; hi : float }

exception Invalid of string

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    raise (Invalid (Printf.sprintf "Interval.make: NaN endpoint (%h, %h)" lo hi))
  else if lo > hi then
    raise (Invalid (Printf.sprintf "Interval.make: crossed endpoints (%g > %g)" lo hi))
  else { lo; hi }

let point v = make v v
let of_floats lo hi = if lo <= hi then make lo hi else make hi lo
let top = { lo = neg_infinity; hi = infinity }

let lo i = i.lo
let hi i = i.hi
let width i = i.hi -. i.lo
let is_point i = Float.equal i.lo i.hi
let mem x i = Float.is_nan x = false && x >= i.lo && x <= i.hi
let subset a b = a.lo >= b.lo && a.hi <= b.hi
let straddles_zero i = i.lo < 0.0 && i.hi > 0.0
let contains_zero i = i.lo <= 0.0 && i.hi >= 0.0
let is_finite i = Float.is_finite i.lo && Float.is_finite i.hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let inter a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let to_string i = Printf.sprintf "[%.6g, %.6g]" i.lo i.hi

(* Outward rounding: one ulp covers correctly-rounded (+, -, *, /, sqrt);
   transcendentals get two. *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x
let down2 x = down (down x)
let up2 x = up (up x)

let neg i = { lo = -.i.hi; hi = -.i.lo }
let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = add a (neg b)

let mul a b =
  let c1 = a.lo *. b.lo and c2 = a.lo *. b.hi and c3 = a.hi *. b.lo and c4 = a.hi *. b.hi in
  if Float.is_nan c1 || Float.is_nan c2 || Float.is_nan c3 || Float.is_nan c4 then top
  else
    {
      lo = down (Float.min (Float.min c1 c2) (Float.min c3 c4));
      hi = up (Float.max (Float.max c1 c2) (Float.max c3 c4));
    }

let scale k i = mul (point k) i

(* [inv] of a zero-straddling interval is the whole line (the true image is
   two unbounded rays); callers that care distinguish the case up front via
   [straddles_zero] / [contains_zero]. *)
let inv i =
  if contains_zero i then
    if Float.equal i.lo 0.0 && Float.equal i.hi 0.0 then top
    else if Float.equal i.lo 0.0 then { lo = down (1.0 /. i.hi); hi = infinity }
    else if Float.equal i.hi 0.0 then { lo = neg_infinity; hi = up (1.0 /. i.lo) }
    else top
  else
    let c1 = 1.0 /. i.lo and c2 = 1.0 /. i.hi in
    { lo = down (Float.min c1 c2); hi = up (Float.max c1 c2) }

let div a b = mul a (inv b)

(* Monotone lifting: [f] non-decreasing over the interval's domain. *)
let mono_incr ?(slop = 2) f i =
  let rec d n x = if n = 0 then x else d (n - 1) (down x) in
  let rec u n x = if n = 0 then x else u (n - 1) (up x) in
  let lo = f i.lo and hi = f i.hi in
  if Float.is_nan lo || Float.is_nan hi then
    raise (Invalid "Interval.mono_incr: function returned NaN on an endpoint")
  else make (d slop lo) (u slop hi)

let mono_decr ?slop f i = neg (mono_incr ?slop (fun x -> -.f x) i)

let exp i = mono_incr Stdlib.exp i

(* [log]/[sqrt] on the positive part only; the caller clamps (and flags)
   nonpositive boxes first. *)
let log i =
  if i.hi <= 0.0 then raise (Invalid "Interval.log: nonpositive interval");
  let lo = if i.lo <= 0.0 then neg_infinity else down2 (Stdlib.log i.lo) in
  { lo; hi = up2 (Stdlib.log i.hi) }

let sqrt i =
  if i.hi < 0.0 then raise (Invalid "Interval.sqrt: negative interval");
  let lo = if i.lo <= 0.0 then 0.0 else down (Stdlib.sqrt i.lo) in
  { lo; hi = up (Stdlib.sqrt i.hi) }

(* x ** c for x >= 0, c a constant. *)
let pow_const i c =
  if i.hi < 0.0 then raise (Invalid "Interval.pow_const: negative base");
  let clamped = { lo = Float.max i.lo 0.0; hi = i.hi } in
  if Float.equal c 0.0 then point 1.0
  else if c > 0.0 then mono_incr (fun x -> x ** c) clamped
  else if Float.equal clamped.lo 0.0 then { lo = down2 (clamped.hi ** c); hi = infinity }
  else mono_decr (fun x -> x ** c) clamped

let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let abs_ i =
  if i.lo >= 0.0 then i
  else if i.hi <= 0.0 then neg i
  else { lo = 0.0; hi = Float.max (-.i.lo) i.hi }

let clamp_lo floor i = { lo = Float.max floor i.lo; hi = Float.max floor i.hi }

let widen ~rel i =
  let r = Float.abs rel in
  let a = i.lo -. (r *. Float.abs i.lo) and b = i.hi +. (r *. Float.abs i.hi) in
  make (down a) (up b)

(* log1p (exp x): the softplus kernel of the EKV interpolation, monotone
   increasing; mirror the concrete implementation's large-x branch so that
   endpoint evaluation agrees bit-for-bit with the model code. *)
let softplus i = mono_incr (fun x -> if x > 40.0 then x else log1p (Stdlib.exp x)) i
