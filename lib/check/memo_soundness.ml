(* Determinism and memo-soundness rules — the second half of [subscale
   audit].

   A memo table is sound iff its key covers everything the cached
   computation reads: any input that can vary between calls but is not
   encoded in the key is a stale-cache hazard (two different inputs alias
   to one cache line; whichever computes first poisons the other).  Three
   independent mechanisms triangulate this:

   - AUD011 (static): the traced read-set of a computation (collected by
     [Device.Params.Trace]) is cross-checked against the field list its
     key encodes, and each keyed field is differentially checked to
     actually move the key;
   - AUD012 (dynamic): [Exec.Memo]'s audit mode recomputes on every hit
     and records any cached-vs-fresh mismatch — catching hazards through
     inputs no trace instruments (globals, environment);
   - AUD013 (schedules): a sweep replayed under adversarial pool
     schedules ([Exec.set_schedule_seed]) must produce bit-exact output;
     a diff convicts order dependence no order-preserving golden test can
     see, because the natural schedule is exactly the one the golden run
     used. *)

let rule_key_coverage =
  Rules.register ~summary:"memo key does not cover the computation's read-set" "AUD011"

let rule_shadow_mismatch =
  Rules.register ~summary:"memo shadow recompute disagreed with the cached value" "AUD012"

let rule_schedule_mismatch =
  Rules.register ~summary:"sweep output differs under a perturbed pool schedule" "AUD013"

let cross_check ~what ~covered ~reads =
  let uncovered = List.filter (fun r -> not (List.mem r covered)) reads in
  List.map
    (fun field ->
      Diagnostic.error ~rule:rule_key_coverage ~location:what
        ~hint:"add the field to the Exec.Key encoding (and to its *_key_fields list)"
        (Printf.sprintf
           "field %S is read by the computation but not encoded in its memo key — a stale-cache hazard"
           field))
    uncovered

let key_sensitivity ~what ~field ~base_key ~perturbed_key =
  if String.equal base_key perturbed_key then
    [
      Diagnostic.error ~rule:rule_key_coverage ~location:what
        ~hint:"the key encoder drops or collapses this field"
        (Printf.sprintf
           "perturbing field %S does not change the memo key — two distinct inputs share a cache line"
           field);
    ]
  else []

let of_violations violations =
  List.map
    (fun (table, key) ->
      Diagnostic.error ~rule:rule_shadow_mismatch ~location:(Printf.sprintf "memo table %S" table)
        ~hint:"the key misses an input the thunk reads; widen the key"
        (Printf.sprintf
           "shadow recompute on a cache hit disagreed with the cached value (key %s)"
           (if String.length key > 48 then String.sub key 0 48 ^ "..." else key)))
    violations

let schedule_mismatch ~what ~seed =
  Diagnostic.error ~rule:rule_schedule_mismatch ~location:what
    ~hint:"look for shared mutable state or accumulation-order dependence in the mapped tasks"
    (Printf.sprintf
       "sweep output is not bit-exact under perturbed pool schedule (seed %d) — the parallel engine's determinism contract is broken"
       seed)
