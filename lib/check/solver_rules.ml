(* Solver-convergence rules.

   The solvers themselves make non-convergence loud — [Tcad.Gummel] raises,
   [Numerics.Root] raises (or demands an explicit [`Accept]), and every
   exhaustion path bumps an ["<solver>.non_converged"] obs counter.  The
   one remaining hole is [Tcad.Poisson.solve], whose [solution] record
   carries a [converged] flag a caller could drop on the floor.  These
   rules close that hole: [check_poisson] turns an unconverged solution
   into a diagnostic, and [scan_metrics] sweeps the obs registry after a
   run so any non-convergence that happened anywhere — including inside a
   caller that swallowed the flag — still surfaces as a named rule. *)

let rule_non_converged =
  Rules.register ~summary:"a solver exited without meeting its tolerance" "solver-non-converged"

let check_poisson (sol : Tcad.Poisson.solution) =
  if sol.Tcad.Poisson.converged then []
  else
    [
      Diagnostic.error ~rule:rule_non_converged ~location:"Poisson solve"
        ~hint:"raise max_iter, improve the initial guess, or ramp the bias in smaller steps"
        (Printf.sprintf "Newton stalled after %d iterations (scaled residual %.2e V)"
           sol.Tcad.Poisson.iterations sol.Tcad.Poisson.residual);
    ]

let scan_metrics ?prefix () =
  let keep name =
    match prefix with None -> true | Some p -> String.starts_with ~prefix:p name
  in
  List.filter_map
    (fun (name, count) ->
      if keep name then
        Some
          (Diagnostic.error ~rule:rule_non_converged ~location:name
             ~hint:"re-run with --trace to see the biases and residuals of each stalled solve"
             (Printf.sprintf "%d non-converged solver exit(s) recorded this run" count))
      else None)
    (Obs.non_converged_counters ())
