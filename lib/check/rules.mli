(** Registry of every static-analysis rule id.

    Rule ids are the stable, grep-able contract between the checker and its
    consumers (CI greps for them, tests assert on them, reports print
    them).  Minting them through {!register} makes collisions a hard
    failure at link/initialization time instead of two rules silently
    shadowing each other in reports. *)

type entry = { id : string; summary : string }

exception Duplicate_rule of string
(** Raised by {!register} when an id is minted twice, and by {!selftest}
    if the table is ever found inconsistent. *)

val register : ?summary:string -> string -> string
(** [register ~summary id] records [id] and returns it (so rule constants
    read [let rule = Rules.register "..."]).  Raises {!Duplicate_rule} on
    collision. *)

val is_registered : string -> bool

val all : unit -> entry list
(** Every registered rule, in registration order. *)

val selftest : unit -> int
(** Re-validate the registry (uniqueness, id shape: kebab-case, [AUDnnn],
    [LNTnnn] or [UNTnnn]); returns the rule count.  Raises on any
    violation. *)
