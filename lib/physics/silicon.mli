(** Bulk-silicon material models: intrinsic density, bandgap, Fermi levels,
    depletion electrostatics.  Everything SI (see {!Constants}). *)

val bandgap : float -> float
(** [bandgap t] is the silicon bandgap [eV] at temperature [t] [K]
    (Varshni fit). *)

val intrinsic_density : float -> float
(** [intrinsic_density t] is n_i [m^-3] at temperature [t] [K]
    (Misiakos–Tsamakis fit; 9.7e15 m^-3 at 300 K). *)

val ni_room : float
(** Intrinsic density at 300 K [m^-3]. *)

val fermi_potential : ?t:float -> float -> float
(** [fermi_potential n] is the bulk Fermi potential phi_F = vT ln(N/n_i) [V]
    for a doping magnitude [n] [m^-3].  Raises [Invalid_argument] on a
    non-positive doping. *)

val depletion_width : psi:float -> doping:float -> float
(** [depletion_width ~psi ~doping] is the depletion-approximation width
    W = sqrt(2 eps_si psi / (q N)) [m] under band bending [psi] [V] into a
    region doped [doping] [m^-3]. *)

val max_depletion_width : ?t:float -> float -> float
(** [max_depletion_width n] is the maximum depletion width at the onset of
    strong inversion, i.e. {!depletion_width} at psi = 2 phi_F. *)

val debye_length : ?t:float -> float -> float
(** [debye_length n] is the extrinsic Debye length
    sqrt(eps_si vT / (q N)) [m]. *)

val builtin_potential : ?t:float -> float -> float -> float
(** [builtin_potential na nd] is the built-in potential [V] of a step p-n
    junction with acceptor density [na] and donor density [nd] [m^-3]. *)

val bulk_potential_of_net_doping : ?t:float -> float -> float
(** [bulk_potential_of_net_doping d] is the equilibrium electrostatic
    potential [V] (relative to intrinsic) of a charge-neutral region with net
    doping [d] = N_D - N_A [m^-3], from exact charge neutrality:
    psi = vT asinh(d / 2 n_i).  Works for either sign of [d]. *)
