type carrier = Electron | Hole

(* Caughey–Thomas with Arora parameters; inputs cm^2/Vs and cm^-3 in the
   literature, converted to SI here. *)
let low_field c n =
  let mu_min, mu_max, n_ref, alpha =
    match c with
    | Electron -> (68.5, 1414.0, 9.20e16, 0.711)
    | Hole -> (44.9, 470.5, 2.23e17, 0.719)
  in
  let n_cm3 = Constants.to_per_cm3 (Float.max n 1.0) in
  let mu_cm2 = mu_min +. ((mu_max -. mu_min) /. (1.0 +. ((n_cm3 /. n_ref) ** alpha))) in
  mu_cm2 *. 1e-4

let effective_field_degradation ~mu0 ~e_eff ~e_crit ~exponent =
  mu0 /. (1.0 +. ((Float.max e_eff 0.0 /. e_crit) ** exponent))

(* Universal mobility curve constants (Takagi): electrons E_crit ~ 9e7 V/m
   exponent 1.6 for the E_eff^-0.3 region approximated as a power law;
   holes E_crit ~ 4.5e7, exponent 1.0.  A flat 0.55 surface factor accounts
   for surface-roughness/phonon scattering relative to bulk. *)
(* Lattice (phonon) scattering scales bulk mobility as (T/300)^-1.5. *)
let channel ?(e_eff = 5e7) ?(t = Constants.t_room) c n =
  let mu_bulk = low_field c n *. ((t /. Constants.t_room) ** -1.5) in
  let e_crit, exponent = match c with Electron -> (9e7, 1.6) | Hole -> (4.5e7, 1.0) in
  effective_field_degradation ~mu0:(0.55 *. mu_bulk) ~e_eff ~e_crit ~exponent

let saturation_velocity = function Electron -> 1.07e5 | Hole -> 8.37e4

let critical_field c n = 2.0 *. saturation_velocity c /. channel c n
