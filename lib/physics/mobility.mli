(** Carrier mobility models for bulk silicon MOSFETs.

    Low-field mobility follows the Caughey–Thomas/Arora doping-dependent fit;
    channel mobility adds vertical-field degradation; drain-current models add
    velocity saturation.  Mobilities in m^2/(V s), fields in V/m. *)

type carrier = Electron | Hole

val low_field : carrier -> float -> float
(** [low_field c n] is the doping-dependent low-field bulk mobility for
    carrier [c] at total doping [n] [m^-3]. *)

val effective_field_degradation :
  mu0:float -> e_eff:float -> e_crit:float -> exponent:float -> float
(** [effective_field_degradation ~mu0 ~e_eff ~e_crit ~exponent] is the
    universal-mobility-curve surface mobility
    mu0 / (1 + (E_eff/E_crit)^exponent). *)

val channel : ?e_eff:float -> ?t:float -> carrier -> float -> float
(** [channel c n] is the effective channel (surface) mobility at channel
    doping [n], with optional vertical effective field [e_eff] [V/m]
    (default 5e7 V/m, a typical subthreshold-bias value) and lattice
    temperature [t] [K] (default 300; phonon scattering scales the bulk
    value as (T/300)^-1.5).  Surface scattering roughly halves the bulk
    value even at low field. *)

val saturation_velocity : carrier -> float
(** Saturation drift velocity [m/s]. *)

val critical_field : carrier -> float -> float
(** [critical_field c n] is the lateral critical field E_c = 2 v_sat / mu
    [V/m] used by velocity-saturated drain-current models, at channel doping
    [n]. *)
