let bandgap t = 1.17 -. (4.73e-4 *. t *. t /. (t +. 636.0))

(* Misiakos & Tsamakis (1993): n_i in cm^-3; converted to m^-3. *)
let intrinsic_density t = 5.29e19 *. ((t /. 300.0) ** 2.54) *. exp (-6726.0 /. t) *. 1e6

let ni_room = intrinsic_density Constants.t_room

let ni_at t = if Float.equal t Constants.t_room then ni_room else intrinsic_density t

let fermi_potential ?(t = Constants.t_room) n =
  if n <= 0.0 then invalid_arg "Silicon.fermi_potential: doping must be positive";
  Constants.thermal_voltage t *. log (n /. ni_at t)

let depletion_width ~psi ~doping =
  if doping <= 0.0 then invalid_arg "Silicon.depletion_width: doping must be positive";
  if psi <= 0.0 then 0.0
  else sqrt (2.0 *. Constants.eps_si *. psi /. (Constants.q *. doping))

let max_depletion_width ?(t = Constants.t_room) n =
  depletion_width ~psi:(2.0 *. fermi_potential ~t n) ~doping:n

let debye_length ?(t = Constants.t_room) n =
  if n <= 0.0 then invalid_arg "Silicon.debye_length: doping must be positive";
  sqrt (Constants.eps_si *. Constants.thermal_voltage t /. (Constants.q *. n))

let builtin_potential ?(t = Constants.t_room) na nd =
  let ni = ni_at t in
  Constants.thermal_voltage t *. log (na *. nd /. (ni *. ni))

(* asinh in log form; computed on |x| to avoid the catastrophic cancellation
   of x + sqrt(x^2 + 1) for large negative x. *)
let bulk_potential_of_net_doping ?(t = Constants.t_room) d =
  let ni = ni_at t in
  let x = d /. (2.0 *. ni) in
  let ax = Float.abs x in
  let asinh_ax = log (ax +. sqrt ((ax *. ax) +. 1.0)) in
  Constants.thermal_voltage t *. (if x >= 0.0 then asinh_ax else -.asinh_ax)
