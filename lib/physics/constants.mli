(** Fundamental physical constants and unit conversions.

    All quantities in this code base are SI unless a name says otherwise:
    lengths in metres, potentials in volts, currents in amperes, charge in
    coulombs, capacitance in farads, doping in m^-3.  Helpers convert the
    units device engineers actually quote (nm, cm^-3, pA/um). *)

val q : float
(** Elementary charge [C]. *)

val k_boltzmann : float
(** Boltzmann constant [J/K]. *)

val eps0 : float
(** Vacuum permittivity [F/m]. *)

val eps_si : float
(** Permittivity of silicon [F/m] (11.7 eps0). *)

val eps_ox : float
(** Permittivity of SiO2 [F/m] (3.9 eps0). *)

val t_room : float
(** Reference temperature [K] used throughout the paper (300 K). *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is kT/q [V] at temperature [t] in kelvin. *)

val vt_room : float
(** Thermal voltage at 300 K, ~25.85 mV. *)

val nm : float -> float
(** [nm x] converts nanometres to metres. *)

val um : float -> float
(** [um x] converts micrometres to metres. *)

val to_nm : float -> float
(** [to_nm x] converts metres to nanometres. *)

val per_cm3 : float -> float
(** [per_cm3 n] converts a doping density from cm^-3 to m^-3. *)

val to_per_cm3 : float -> float
(** [to_per_cm3 n] converts a doping density from m^-3 to cm^-3. *)

val pa_per_um : float -> float
(** [pa_per_um i] converts a per-width current from pA/um to A/m. *)

val to_pa_per_um : float -> float
(** [to_pa_per_um i] converts a per-width current from A/m to pA/um. *)
