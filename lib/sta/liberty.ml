let cell_function = function
  | Cell_lib.Inv -> "!A"
  | Cell_lib.Nand2 -> "!(A & B)"
  | Cell_lib.Nor2 -> "!(A | B)"

let pin_name = function 0 -> "A" | 1 -> "B" | n -> Printf.sprintf "I%d" n

let ns t = t *. 1e9
let pf c = c *. 1e12

let render_values buf lut =
  let slews = Lut.slews lut and loads = Lut.loads lut in
  let axis v = String.concat ", " (Array.to_list (Array.map (fun x -> Printf.sprintf "%.6g" (ns x)) v)) in
  Buffer.add_string buf (Printf.sprintf "          index_1 (\"%s\");\n" (axis slews));
  Buffer.add_string buf
    (Printf.sprintf "          index_2 (\"%s\");\n"
       (String.concat ", "
          (Array.to_list (Array.map (fun x -> Printf.sprintf "%.6g" (pf x)) loads))));
  Buffer.add_string buf "          values ( \\\n";
  let n = Array.length slews in
  Array.iteri
    (fun i slew ->
      let row =
        String.concat ", "
          (Array.to_list
             (Array.map (fun load -> Printf.sprintf "%.6g" (ns (Lut.eval lut ~slew ~load))) loads))
      in
      Buffer.add_string buf
        (Printf.sprintf "            \"%s\"%s \\\n" row (if i = n - 1 then "" else ",")))
    (Array.init n (fun i -> slews.(i)));
  Buffer.add_string buf "          );\n"

let render_table buf kind lut =
  Buffer.add_string buf (Printf.sprintf "        %s (nldm_3x3) {\n" kind);
  render_values buf lut;
  Buffer.add_string buf "        }\n"

let state_when cell state =
  String.concat " & "
    (List.mapi
       (fun i b -> if b then pin_name i else "!" ^ pin_name i)
       (Array.to_list state))
  |> fun s -> ignore cell; s

let render_cell buf (kind, (cell : Cell_lib.cell)) =
  Buffer.add_string buf (Printf.sprintf "  cell (%s) {\n" (Cell_lib.cell_name kind));
  (* Leakage per input state (nW). *)
  List.iter
    (fun (state, amps) ->
      Buffer.add_string buf "    leakage_power () {\n";
      Buffer.add_string buf (Printf.sprintf "      when : \"%s\";\n" (state_when cell state));
      Buffer.add_string buf
        (Printf.sprintf "      value : %.6g;\n" (amps *. cell.Cell_lib.vdd *. 1e9));
      Buffer.add_string buf "    }\n")
    cell.Cell_lib.leakage;
  (* Input pins. *)
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (Printf.sprintf "    pin (%s) {\n" (pin_name i));
      Buffer.add_string buf "      direction : input;\n";
      Buffer.add_string buf
        (Printf.sprintf "      capacitance : %.6g;\n" (pf cell.Cell_lib.input_cap));
      Buffer.add_string buf "    }\n")
    cell.Cell_lib.arcs;
  (* Output pin with one timing group per arc. *)
  Buffer.add_string buf "    pin (Y) {\n";
  Buffer.add_string buf "      direction : output;\n";
  Buffer.add_string buf (Printf.sprintf "      function : \"%s\";\n" (cell_function kind));
  Array.iter
    (fun (arc : Cell_lib.arc) ->
      Buffer.add_string buf "      timing () {\n";
      Buffer.add_string buf
        (Printf.sprintf "        related_pin : \"%s\";\n" (pin_name arc.Cell_lib.pin));
      Buffer.add_string buf "        timing_sense : negative_unate;\n";
      render_table buf "cell_rise" arc.Cell_lib.delay_output_rise;
      render_table buf "rise_transition" arc.Cell_lib.slew_output_rise;
      render_table buf "cell_fall" arc.Cell_lib.delay_output_fall;
      render_table buf "fall_transition" arc.Cell_lib.slew_output_fall;
      Buffer.add_string buf "      }\n")
    cell.Cell_lib.arcs;
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  }\n"

let to_string ?(name = "subscale") (lib : Cell_lib.library) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "library (%s) {\n" name);
  Buffer.add_string buf "  delay_model : table_lookup;\n";
  Buffer.add_string buf "  time_unit : \"1ns\";\n";
  Buffer.add_string buf "  voltage_unit : \"1V\";\n";
  Buffer.add_string buf "  current_unit : \"1uA\";\n";
  Buffer.add_string buf "  capacitive_load_unit (1, pf);\n";
  Buffer.add_string buf "  leakage_power_unit : \"1nW\";\n";
  Buffer.add_string buf
    (Printf.sprintf "  nom_voltage : %.3f;\n" lib.Cell_lib.lib_vdd);
  Buffer.add_string buf "  lu_table_template (nldm_3x3) {\n";
  Buffer.add_string buf "    variable_1 : input_net_transition;\n";
  Buffer.add_string buf "    variable_2 : total_output_net_capacitance;\n";
  Buffer.add_string buf "  }\n";
  List.iter (render_cell buf) lib.Cell_lib.cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ~path ?name lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name lib))
