type edge = Rise | Fall

type arrival = { time : float; slew : float }

type report = {
  arrivals_rise : arrival array;
  arrivals_fall : arrival array;
  critical_time : float;
  critical_output : Design.net;
  critical_edge : edge;
  critical_path : (Design.gate * edge) list;
}

(* Provenance of the worst arrival at a net: the driving gate, the input pin
   and the input edge that produced it. *)
type origin = Primary | Through of Design.gate * int * edge

let analyze ?input_slew ?wire_cap ?output_load (lib : Cell_lib.library) design =
  let n = Design.n_nets design in
  if Design.primary_outputs design = [] then failwith "Engine.analyze: no primary outputs";
  let inv = Cell_lib.find lib Cell_lib.Inv in
  let default_slew =
    match input_slew with
    | Some s -> s
    | None ->
      let slews = Lut.slews (inv.Cell_lib.arcs.(0)).Cell_lib.delay_output_rise in
      slews.(0)
  in
  let out_load = Option.value output_load ~default:inv.Cell_lib.input_cap in
  let wire net = match wire_cap with Some f -> f net | None -> 0.0 in
  (* Load per net: fanout input pins + wire + primary-output load. *)
  let load = Array.make n 0.0 in
  for net = 0 to n - 1 do
    load.(net) <- wire net
  done;
  List.iter
    (fun (g : Design.gate) ->
      let cell = Cell_lib.find lib g.Design.cell in
      Array.iter
        (fun i -> load.(i) <- load.(i) +. cell.Cell_lib.input_cap)
        g.Design.inputs)
    (Design.gates design);
  List.iter (fun o -> load.(o) <- load.(o) +. out_load) (Design.primary_outputs design);
  let minus_inf = { time = neg_infinity; slew = default_slew } in
  let rise = Array.make n minus_inf and fall = Array.make n minus_inf in
  let rise_from = Array.make n Primary and fall_from = Array.make n Primary in
  List.iter
    (fun i ->
      rise.(i) <- { time = 0.0; slew = default_slew };
      fall.(i) <- { time = 0.0; slew = default_slew })
    (Design.primary_inputs design);
  let ordered = Design.topological_gates design in
  List.iter
    (fun (g : Design.gate) ->
      let cell = Cell_lib.find lib g.Design.cell in
      let out = g.Design.output in
      Array.iteri
        (fun pin input ->
          let arc = cell.Cell_lib.arcs.(pin) in
          (* Negative unate: input fall -> output rise. *)
          let propagate (src : arrival) delay_lut slew_lut =
            if Float.equal src.time neg_infinity then None
            else begin
              let d = Lut.eval delay_lut ~slew:src.slew ~load:load.(out) in
              let s = Lut.eval slew_lut ~slew:src.slew ~load:load.(out) in
              Some { time = src.time +. d; slew = s }
            end
          in
          (match
             propagate fall.(input) arc.Cell_lib.delay_output_rise
               arc.Cell_lib.slew_output_rise
           with
           | Some a when a.time > rise.(out).time ->
             rise.(out) <- a;
             rise_from.(out) <- Through (g, pin, Fall)
           | Some _ | None -> ());
          match
            propagate rise.(input) arc.Cell_lib.delay_output_fall
              arc.Cell_lib.slew_output_fall
          with
          | Some a when a.time > fall.(out).time ->
            fall.(out) <- a;
            fall_from.(out) <- Through (g, pin, Rise)
          | Some _ | None -> ())
        g.Design.inputs)
    ordered;
  (* Worst primary output. *)
  let critical_output, critical_edge, critical_time =
    List.fold_left
      (fun (bo, be, bt) o ->
        let candidates = [ (o, Rise, rise.(o).time); (o, Fall, fall.(o).time) ] in
        List.fold_left
          (fun (bo, be, bt) (o, e, t) -> if t > bt then (o, e, t) else (bo, be, bt))
          (bo, be, bt) candidates)
      (-1, Rise, neg_infinity)
      (Design.primary_outputs design)
  in
  if critical_output < 0 || Float.equal critical_time neg_infinity then
    failwith "Engine.analyze: outputs unreachable from the primary inputs";
  (* Backtrace. *)
  let rec backtrace net edge acc =
    let from = match edge with Rise -> rise_from.(net) | Fall -> fall_from.(net) in
    match from with
    | Primary -> acc
    | Through (g, pin, in_edge) ->
      backtrace g.Design.inputs.(pin) in_edge ((g, edge) :: acc)
  in
  {
    arrivals_rise = rise;
    arrivals_fall = fall;
    critical_time;
    critical_output;
    critical_edge;
    critical_path = backtrace critical_output critical_edge [];
  }
