(** Standard-cell timing characterization — a miniature NLDM library
    generator.

    For each cell and input pin, a transient run per (input slew, output
    load) grid point measures the 50 %-to-50 % propagation delay and the
    20-80 % output slew, for both output edges.  All three cells are
    negative-unate (input rise drives output fall), so each arc carries a
    table pair indexed by the *input* edge.  Leakage is tabulated per input
    state from DC supply current. *)

type cell_kind = Inv | Nand2 | Nor2

val cell_name : cell_kind -> string

val input_count : cell_kind -> int

type arc = {
  pin : int;
  delay_output_rise : Lut.t;  (** input falling -> output rising [s] *)
  delay_output_fall : Lut.t;  (** input rising -> output falling [s] *)
  slew_output_rise : Lut.t;  (** 20-80 %/0.6 equivalent ramp time [s] *)
  slew_output_fall : Lut.t;
}

type cell = {
  kind : cell_kind;
  vdd : float;
  input_cap : float;  (** per input pin [F] *)
  arcs : arc array;  (** indexed by pin *)
  leakage : (bool array * float) list;  (** input state -> supply current [A] *)
}

type library = {
  pair : Circuits.Inverter.pair;
  sizing : Circuits.Inverter.sizing;
  lib_vdd : float;
  cells : (cell_kind * cell) list;
}

val characterize_cell :
  ?slews:Numerics.Vec.t ->
  ?loads:Numerics.Vec.t ->
  ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair ->
  vdd:float ->
  cell_kind ->
  cell
(** Default grid: 3 input slews x 3 loads, scaled from the pair's own
    FO1-equivalent time constant and load capacitance. *)

val characterize :
  ?slews:Numerics.Vec.t ->
  ?loads:Numerics.Vec.t ->
  ?sizing:Circuits.Inverter.sizing ->
  Circuits.Inverter.pair ->
  vdd:float ->
  library
(** All three cells. *)

val find : library -> cell_kind -> cell
