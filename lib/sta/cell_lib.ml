type cell_kind = Inv | Nand2 | Nor2

let cell_name = function Inv -> "INV" | Nand2 -> "NAND2" | Nor2 -> "NOR2"

let input_count = function Inv -> 1 | Nand2 -> 2 | Nor2 -> 2

type arc = {
  pin : int;
  delay_output_rise : Lut.t;
  delay_output_fall : Lut.t;
  slew_output_rise : Lut.t;
  slew_output_fall : Lut.t;
}

type cell = {
  kind : cell_kind;
  vdd : float;
  input_cap : float;
  arcs : arc array;
  leakage : (bool array * float) list;
}

type library = {
  pair : Circuits.Inverter.pair;
  sizing : Circuits.Inverter.sizing;
  lib_vdd : float;
  cells : (cell_kind * cell) list;
}

(* Non-controlling value for the inactive pin: NAND needs 1, NOR needs 0. *)
let non_controlling = function Inv -> 0.0 (* unused *) | Nand2 -> 1.0 | Nor2 -> 0.0

let fixture kind ?sizing pair ~vdd ~pin ~active_wave =
  let quiet = Spice.Netlist.Dc (non_controlling kind *. vdd) in
  let a_wave, b_wave =
    if pin = 0 then (active_wave, quiet) else (quiet, active_wave)
  in
  match kind with
  | Inv -> Circuits.Stdcell.inv ?sizing ~a_wave ~b_wave pair ~vdd
  | Nand2 -> Circuits.Stdcell.nand2 ?sizing ~a_wave ~b_wave pair ~vdd
  | Nor2 -> Circuits.Stdcell.nor2 ?sizing ~a_wave ~b_wave pair ~vdd

(* One measurement: apply an input ramp of the given edge, return
   (propagation delay, output slew).  [window] bounds the transient. *)
let measure kind ?sizing pair ~vdd ~pin ~input_rising ~slew ~load ~window =
  let t0 = 0.05 *. window in
  let active_wave =
    if input_rising then Spice.Netlist.Pwl [ (0.0, 0.0); (t0, 0.0); (t0 +. slew, vdd) ]
    else Spice.Netlist.Pwl [ (0.0, vdd); (t0, vdd); (t0 +. slew, 0.0) ]
  in
  let fx = fixture kind ?sizing pair ~vdd ~pin ~active_wave in
  Spice.Netlist.add fx.Circuits.Stdcell.circuit
    (Spice.Netlist.Capacitor
       { plus = fx.Circuits.Stdcell.out_node; minus = Spice.Netlist.ground; farads = load });
  let sys = Spice.Mna.build fx.Circuits.Stdcell.circuit in
  let result = Spice.Transient.run sys ~t_stop:window ~steps:420 in
  let times = result.Spice.Transient.times in
  let vout = Spice.Transient.voltage_of result fx.Circuits.Stdcell.out_node in
  let t_in = t0 +. (0.5 *. slew) in
  let crossing level =
    Spice.Waveform.first_crossing ~after:(0.5 *. t0) ~times ~values:vout ~level
      Spice.Waveform.Either
  in
  match crossing (0.5 *. vdd) with
  | None -> None
  | Some t_out ->
    let lo = 0.2 *. vdd and hi = 0.8 *. vdd in
    let slew_out =
      match (crossing lo, crossing hi) with
      | Some ta, Some tb -> Float.abs (tb -. ta) /. 0.6
      | _, _ -> 0.0
    in
    Some (t_out -. t_in, slew_out)

let default_grids pair sizing ~vdd =
  let cl = Circuits.Inverter.load_capacitance pair sizing in
  let tp = Circuits.Chain.estimated_stage_delay pair sizing ~vdd in
  let slews = [| 0.5 *. tp; 2.0 *. tp; 8.0 *. tp |] in
  let loads = [| 0.5 *. cl; 1.5 *. cl; 5.0 *. cl |] in
  (slews, loads)

let state_vectors kind =
  match input_count kind with
  | 1 -> [ [| false |]; [| true |] ]
  | _ -> [ [| false; false |]; [| false; true |]; [| true; false |]; [| true; true |] ]

let leakage_of kind ?sizing pair ~vdd =
  let fx = fixture kind ?sizing pair ~vdd ~pin:0 ~active_wave:(Spice.Netlist.Dc 0.0) in
  let sys = Spice.Mna.build fx.Circuits.Stdcell.circuit in
  List.map
    (fun state ->
      let level i = if state.(Int.min i (Array.length state - 1)) then vdd else 0.0 in
      let overrides =
        [ (fx.Circuits.Stdcell.a_name, level 0); (fx.Circuits.Stdcell.b_name, level 1) ]
      in
      let x = Spice.Dcop.solve ~overrides sys in
      (state, Float.abs (Spice.Mna.source_current sys x fx.Circuits.Stdcell.vdd_name)))
    (state_vectors kind)

let characterize_cell ?slews ?loads ?(sizing = Circuits.Inverter.balanced_sizing ()) pair
    ~vdd kind =
  let default_slews, default_loads = default_grids pair sizing ~vdd in
  let slews = Option.value slews ~default:default_slews in
  let loads = Option.value loads ~default:default_loads in
  let ns = Array.length slews and nl = Array.length loads in
  let tp = Circuits.Chain.estimated_stage_delay pair sizing ~vdd in
  let arc_for pin =
    let grid input_rising extract =
      Array.init ns (fun i ->
          Array.init nl (fun j ->
              let slew = slews.(i) and load = loads.(j) in
              (* Window: input ramp + generous settle for the heaviest load. *)
              let window =
                (2.0 *. slew)
                +. (40.0 *. tp *. (1.0 +. (load /. Circuits.Inverter.load_capacitance pair sizing)))
              in
              match
                measure kind ~sizing pair ~vdd ~pin ~input_rising ~slew ~load ~window
              with
              | Some (d, s) -> extract d s
              | None ->
                failwith
                  (Printf.sprintf "Cell_lib: %s pin %d did not switch (slew %g, load %g)"
                     (cell_name kind) pin slew load)))
    in
    {
      pin;
      (* Negative unate: falling input -> rising output. *)
      delay_output_rise = Lut.create ~slews ~loads ~values:(grid false (fun d _ -> d));
      delay_output_fall = Lut.create ~slews ~loads ~values:(grid true (fun d _ -> d));
      slew_output_rise = Lut.create ~slews ~loads ~values:(grid false (fun _ s -> s));
      slew_output_fall = Lut.create ~slews ~loads ~values:(grid true (fun _ s -> s));
    }
  in
  {
    kind;
    vdd;
    input_cap = Circuits.Inverter.gate_capacitance pair sizing;
    arcs = Array.init (input_count kind) arc_for;
    leakage = leakage_of kind ~sizing pair ~vdd;
  }

let characterize ?slews ?loads ?(sizing = Circuits.Inverter.balanced_sizing ()) pair ~vdd =
  {
    pair;
    sizing;
    lib_vdd = vdd;
    cells =
      List.map
        (fun kind -> (kind, characterize_cell ?slews ?loads ~sizing pair ~vdd kind))
        [ Inv; Nand2; Nor2 ];
  }

let find lib kind = List.assoc kind lib.cells
