type net = int

type gate = { cell : Cell_lib.cell_kind; inputs : net array; output : net }

type t = {
  mutable next_net : int;
  mutable rev_gates : gate list;
  mutable inputs : net list;
  mutable outputs : net list;
  drivers : (net, gate) Hashtbl.t;
}

let create () =
  { next_net = 0; rev_gates = []; inputs = []; outputs = []; drivers = Hashtbl.create 64 }

let fresh_net d =
  let n = d.next_net in
  d.next_net <- n + 1;
  n

let add_gate d cell ~inputs ~output =
  if Array.length inputs <> Cell_lib.input_count cell then
    invalid_arg "Design.add_gate: input count mismatch";
  if Hashtbl.mem d.drivers output then
    invalid_arg (Printf.sprintf "Design.add_gate: net %d already driven" output);
  let gate = { cell; inputs; output } in
  Hashtbl.add d.drivers output gate;
  d.rev_gates <- gate :: d.rev_gates

let mark_input d net = if not (List.mem net d.inputs) then d.inputs <- net :: d.inputs
let mark_output d net = if not (List.mem net d.outputs) then d.outputs <- net :: d.outputs

let gates d = List.rev d.rev_gates
let n_nets d = d.next_net
let primary_inputs d = List.rev d.inputs
let primary_outputs d = List.rev d.outputs

let fanout_count d net =
  List.fold_left
    (fun acc (g : gate) ->
      acc + Array.fold_left (fun a i -> if i = net then a + 1 else a) 0 g.inputs)
    0 (gates d)

let topological_gates d =
  let all = gates d in
  let ready = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace ready n ()) d.inputs;
  let pending = ref all and ordered = ref [] in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (g : gate) ->
        if Array.for_all (fun i -> Hashtbl.mem ready i) g.inputs then begin
          Hashtbl.replace ready g.output ();
          ordered := g :: !ordered;
          progress := true
        end
        else still := g :: !still)
      !pending;
    pending := List.rev !still
  done;
  if !pending <> [] then
    failwith "Design.topological_gates: combinational loop or undriven net";
  List.rev !ordered

let inverter_chain d ~length net =
  if length < 0 then invalid_arg "Design.inverter_chain: negative length";
  let rec go net i =
    if i = length then net
    else begin
      let out = fresh_net d in
      add_gate d Cell_lib.Inv ~inputs:[| net |] ~output:out;
      go out (i + 1)
    end
  in
  go net 0

let full_adder d ~a ~b ~cin =
  let nand x y =
    let out = fresh_net d in
    add_gate d Cell_lib.Nand2 ~inputs:[| x; y |] ~output:out;
    out
  in
  let n1 = nand a b in
  let n2 = nand a n1 in
  let n3 = nand b n1 in
  let xor_ab = nand n2 n3 in
  let n5 = nand xor_ab cin in
  let n6 = nand xor_ab n5 in
  let n7 = nand cin n5 in
  let sum = nand n6 n7 in
  let cout = nand n1 n5 in
  (sum, cout)

let ripple_carry_adder d ~a ~b ~cin =
  let bits = Array.length a in
  if Array.length b <> bits || bits = 0 then
    invalid_arg "Design.ripple_carry_adder: operand width mismatch";
  let sums = Array.make bits 0 in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, c = full_adder d ~a:a.(i) ~b:b.(i) ~cin:!carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let evaluate d ~inputs =
  let values = Array.make (n_nets d) false in
  List.iter (fun n -> values.(n) <- inputs n) (primary_inputs d);
  List.iter
    (fun (g : gate) ->
      let v i = values.(g.inputs.(i)) in
      values.(g.output) <-
        (match g.cell with
         | Cell_lib.Inv -> not (v 0)
         | Cell_lib.Nand2 -> not (v 0 && v 1)
         | Cell_lib.Nor2 -> not (v 0 || v 1)))
    (topological_gates d);
  values
