(** Liberty (.lib) export of a characterized library — the interchange
    format every downstream synthesis/STA tool reads.  The output is a
    minimal but syntactically standard NLDM library: one lu_table_template,
    cells with input capacitances, negative-unate timing arcs carrying
    cell_rise/cell_fall and rise_transition/fall_transition tables, and
    per-state leakage_power groups. *)

val cell_function : Cell_lib.cell_kind -> string
(** Boolean function string, e.g. "!(A & B)" for NAND2. *)

val to_string : ?name:string -> Cell_lib.library -> string
(** Render the library (default name "subscale").  Times are exported in
    nanoseconds, capacitances in picofarads, leakage in nanowatts — the
    customary Liberty units. *)

val write : path:string -> ?name:string -> Cell_lib.library -> unit
