(** Static timing analysis: arrival-time and slew propagation over a
    combinational design against a characterized cell library, with
    critical-path extraction.

    Rise and fall arrivals are tracked separately through the negative-unate
    cells (an output-rise arrival comes from input-fall arrivals and vice
    versa).  Net loads are the sum of fanout input capacitances plus an
    optional per-net wire capacitance. *)

type edge = Rise | Fall

type arrival = {
  time : float;  (** latest arrival [s] *)
  slew : float;  (** slew accompanying that arrival [s] *)
}

type report = {
  arrivals_rise : arrival array;  (** per net *)
  arrivals_fall : arrival array;
  critical_time : float;  (** worst primary-output arrival [s] *)
  critical_output : Design.net;
  critical_edge : edge;
  critical_path : (Design.gate * edge) list;
      (** driver gates from the path's start to the critical output, with the
          output edge each contributes *)
}

val analyze :
  ?input_slew:float ->
  ?wire_cap:(Design.net -> float) ->
  ?output_load:float ->
  Cell_lib.library ->
  Design.t ->
  report
(** [input_slew] defaults to the library's fastest characterized slew;
    [wire_cap] (default none) adds capacitance per net; [output_load]
    (default one inverter input) loads the primary outputs.  Raises
    [Failure] if the design has no primary outputs or is not acyclic. *)
