(** Two-dimensional lookup tables (input slew x output load), bilinearly
    interpolated and clamped at the characterized corners — the NLDM table
    format every timing library uses. *)

type t

val create : slews:Numerics.Vec.t -> loads:Numerics.Vec.t -> values:float array array -> t
(** [values.(i).(j)] corresponds to [slews.(i)] and [loads.(j)]; both axes
    strictly increasing.  Raises [Invalid_argument] on shape mismatch. *)

val eval : t -> slew:float -> load:float -> float
(** Bilinear interpolation; queries outside the grid clamp to the edge
    (conservative corner behaviour). *)

val slews : t -> Numerics.Vec.t

val loads : t -> Numerics.Vec.t

val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination of two tables on identical axes (e.g. max of two
    arcs).  Raises [Invalid_argument] if the axes differ. *)
