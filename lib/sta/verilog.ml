let net_name n = Printf.sprintf "n%d" n

let to_verilog ?(module_name = "subscale_design") design =
  let buf = Buffer.create 4096 in
  let inputs = Design.primary_inputs design in
  let outputs = Design.primary_outputs design in
  let ports = List.map net_name (inputs @ outputs) in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" module_name (String.concat ", " ports));
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (net_name n))) inputs;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (net_name n)))
    outputs;
  (* Internal nets: driven but not ports. *)
  List.iter
    (fun (g : Design.gate) ->
      if not (List.mem g.Design.output outputs) then
        Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net_name g.Design.output)))
    (Design.gates design);
  List.iteri
    (fun i (g : Design.gate) ->
      let cell = Cell_lib.cell_name g.Design.cell in
      let pins =
        match g.Design.inputs with
        | [| a |] -> Printf.sprintf ".A(%s), .Y(%s)" (net_name a) (net_name g.Design.output)
        | [| a; b |] ->
          Printf.sprintf ".A(%s), .B(%s), .Y(%s)" (net_name a) (net_name b)
            (net_name g.Design.output)
        | _ -> invalid_arg "Verilog.to_verilog: unsupported arity"
      in
      Buffer.add_string buf (Printf.sprintf "  %s g%d (%s);\n" cell i pins))
    (Design.gates design);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

exception Parse_error of string

(* --- tokenizer ------------------------------------------------------ *)

type token = Ident of string | Sym of char

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident text.[!i] do
        incr i
      done;
      tokens := Ident (String.sub text start (!i - start)) :: !tokens
    end
    else if c = '(' || c = ')' || c = ';' || c = ',' || c = '.' then begin
      tokens := Sym c :: !tokens;
      incr i
    end
    else raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

(* --- parser --------------------------------------------------------- *)

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let next st =
  match st.tokens with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
    st.tokens <- rest;
    t

let expect_sym st c =
  match next st with
  | Sym s when s = c -> ()
  | Sym s -> raise (Parse_error (Printf.sprintf "expected %C, found %C" c s))
  | Ident id -> raise (Parse_error (Printf.sprintf "expected %C, found %S" c id))

let expect_ident st =
  match next st with
  | Ident id -> id
  | Sym s -> raise (Parse_error (Printf.sprintf "expected identifier, found %C" s))

let expect_keyword st kw =
  let id = expect_ident st in
  if id <> kw then raise (Parse_error (Printf.sprintf "expected %S, found %S" kw id))

let cell_of_name = function
  | "INV" -> Some Cell_lib.Inv
  | "NAND2" -> Some Cell_lib.Nand2
  | "NOR2" -> Some Cell_lib.Nor2
  | _ -> None

let of_verilog text =
  let st = { tokens = tokenize text } in
  expect_keyword st "module";
  let _name = expect_ident st in
  expect_sym st '(';
  (* Port list (names only). *)
  let rec ports acc =
    match next st with
    | Sym ')' -> List.rev acc
    | Sym ',' -> ports acc
    | Ident id -> ports (id :: acc)
    | Sym s -> raise (Parse_error (Printf.sprintf "unexpected %C in port list" s))
  in
  let _port_names = ports [] in
  expect_sym st ';';
  let design = Design.create () in
  let nets = Hashtbl.create 64 in
  let net_of name =
    match Hashtbl.find_opt nets name with
    | Some n -> n
    | None ->
      let n = Design.fresh_net design in
      Hashtbl.add nets name n;
      n
  in
  (* Declarations and instances until endmodule. *)
  let parse_decl keyword =
    (* input/output/wire a, b, c; *)
    let rec names () =
      let id = expect_ident st in
      let n = net_of id in
      (match keyword with
       | "input" -> Design.mark_input design n
       | "output" -> Design.mark_output design n
       | _ -> ());
      match next st with
      | Sym ';' -> ()
      | Sym ',' -> names ()
      | Sym s -> raise (Parse_error (Printf.sprintf "unexpected %C in declaration" s))
      | Ident id -> raise (Parse_error (Printf.sprintf "unexpected %S in declaration" id))
    in
    names ()
  in
  let parse_instance cell =
    let _instance_name = expect_ident st in
    expect_sym st '(';
    let pins = Hashtbl.create 4 in
    let rec connections () =
      expect_sym st '.';
      let pin = expect_ident st in
      expect_sym st '(';
      let net = expect_ident st in
      expect_sym st ')';
      Hashtbl.replace pins pin (net_of net);
      match next st with
      | Sym ',' -> connections ()
      | Sym ')' -> ()
      | Sym s -> raise (Parse_error (Printf.sprintf "unexpected %C in connections" s))
      | Ident id -> raise (Parse_error (Printf.sprintf "unexpected %S in connections" id))
    in
    connections ();
    expect_sym st ';';
    let pin name =
      match Hashtbl.find_opt pins name with
      | Some n -> n
      | None -> raise (Parse_error (Printf.sprintf "missing pin %s" name))
    in
    let inputs =
      match Cell_lib.input_count cell with
      | 1 -> [| pin "A" |]
      | _ -> [| pin "A"; pin "B" |]
    in
    Design.add_gate design cell ~inputs ~output:(pin "Y")
  in
  let rec body () =
    match peek st with
    | None -> raise (Parse_error "missing endmodule")
    | Some (Ident "endmodule") ->
      ignore (next st)
    | Some (Ident kw) when kw = "input" || kw = "output" || kw = "wire" ->
      ignore (next st);
      parse_decl kw;
      body ()
    | Some (Ident name) ->
      (match cell_of_name name with
       | Some cell ->
         ignore (next st);
         parse_instance cell;
         body ()
       | None -> raise (Parse_error (Printf.sprintf "unknown cell or keyword %S" name)))
    | Some (Sym s) -> raise (Parse_error (Printf.sprintf "unexpected %C in module body" s))
  in
  body ();
  let bindings = Hashtbl.fold (fun name net acc -> (name, net) :: acc) nets [] in
  (design, List.sort compare bindings)
