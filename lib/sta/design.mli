(** Gate-level combinational netlists for timing analysis. *)

type net = int

type gate = { cell : Cell_lib.cell_kind; inputs : net array; output : net }

type t

val create : unit -> t

val fresh_net : t -> net

val add_gate : t -> Cell_lib.cell_kind -> inputs:net array -> output:net -> unit
(** Raises [Invalid_argument] if the input count does not match the cell or
    if the output net already has a driver. *)

val mark_input : t -> net -> unit

val mark_output : t -> net -> unit

val gates : t -> gate list

val n_nets : t -> int

val primary_inputs : t -> net list

val primary_outputs : t -> net list

val fanout_count : t -> net -> int
(** Number of gate inputs the net drives. *)

val topological_gates : t -> gate list
(** Gates ordered so every gate appears after the drivers of its inputs.
    Raises [Failure] on a combinational loop or an undriven internal net
    (nets that are not primary inputs must be driven). *)

val evaluate : t -> inputs:(net -> bool) -> bool array
(** Zero-delay logic simulation: the Boolean value of every net given the
    primary-input assignment.  Raises [Failure] on cyclic designs. *)

(** {2 Generators} *)

val inverter_chain : t -> length:int -> net -> net
(** Append a chain of inverters from the given net; returns the final net. *)

val full_adder : t -> a:net -> b:net -> cin:net -> net * net
(** The nine-NAND full adder; returns (sum, cout). *)

val ripple_carry_adder : t -> a:net array -> b:net array -> cin:net -> net array * net
(** N-bit adder over existing nets; returns (sums, cout). *)
