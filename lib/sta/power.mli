(** Power analysis over a gate-level design: signal-probability propagation
    (the classic zero-delay independence model), state-weighted leakage from
    the library's per-state tables, and activity-based dynamic power. *)

type net_stats = {
  probability : float;  (** P(net = 1) *)
  activity : float;  (** toggle probability per cycle, 2 p (1 - p) *)
}

val propagate_probabilities :
  ?input_probability:(Design.net -> float) ->
  Design.t ->
  net_stats array
(** Topological signal-probability propagation assuming spatial and temporal
    independence (inputs default to P = 0.5).  INV: 1 - p; NAND2:
    1 - pa pb; NOR2: (1-pa)(1-pb). *)

type summary = {
  leakage_power : float;  (** state-probability-weighted static power [W] *)
  dynamic_power : float;  (** alpha C V^2 f switching power [W] *)
  total_power : float;
  total_switched_cap : float;  (** activity-weighted capacitance [F] *)
}

val analyze :
  ?input_probability:(Design.net -> float) ->
  ?wire_cap:(Design.net -> float) ->
  Cell_lib.library ->
  Design.t ->
  frequency:float ->
  summary
(** Leakage: for every gate, sum over its input states of
    P(state) x I_leak(state) x V_dd.  Dynamic: per net,
    activity x C_net x V_dd^2 x frequency, with C_net the fanout input pins
    plus optional wire capacitance. *)
