(** Structural Verilog interchange for gate-level designs.

    The writer emits a flat module over the three library cells; the reader
    accepts the same restricted subset (one module; [input]/[output]/[wire]
    declarations; INV/NAND2/NOR2 instances with named port connections) —
    enough to round-trip our own output and to import netlists produced by
    a synthesis tool mapped onto this library. *)

val to_verilog : ?module_name:string -> Design.t -> string
(** Nets are named [n<id>]; primary inputs/outputs become module ports. *)

exception Parse_error of string
(** Carries a human-readable message with the offending token. *)

val of_verilog : string -> Design.t * (string * Design.net) list
(** Parse a module; returns the design plus the name-to-net binding of every
    declared net.  Primary inputs/outputs are taken from the port
    declarations.  Raises {!Parse_error} on anything outside the subset. *)
