type net_stats = { probability : float; activity : float }

let gate_output_probability kind input_probs =
  match (kind, input_probs) with
  | Cell_lib.Inv, [| pa |] -> 1.0 -. pa
  | Cell_lib.Nand2, [| pa; pb |] -> 1.0 -. (pa *. pb)
  | Cell_lib.Nor2, [| pa; pb |] -> (1.0 -. pa) *. (1.0 -. pb)
  | _, _ -> invalid_arg "Power.gate_output_probability: arity mismatch"

let propagate_probabilities ?input_probability design =
  let n = Design.n_nets design in
  let p = Array.make n 0.5 in
  let input_p net =
    match input_probability with Some f -> f net | None -> 0.5
  in
  List.iter (fun net -> p.(net) <- input_p net) (Design.primary_inputs design);
  List.iter
    (fun (g : Design.gate) ->
      p.(g.Design.output) <-
        gate_output_probability g.Design.cell (Array.map (fun i -> p.(i)) g.Design.inputs))
    (Design.topological_gates design);
  Array.map (fun pi -> { probability = pi; activity = 2.0 *. pi *. (1.0 -. pi) }) p

type summary = {
  leakage_power : float;
  dynamic_power : float;
  total_power : float;
  total_switched_cap : float;
}

(* Probability of a full input state under independence. *)
let state_probability probs state =
  Array.to_list state
  |> List.mapi (fun i b -> if b then probs.(i) else 1.0 -. probs.(i))
  |> List.fold_left ( *. ) 1.0

let analyze ?input_probability ?wire_cap (lib : Cell_lib.library) design ~frequency =
  if frequency < 0.0 then invalid_arg "Power.analyze: negative frequency";
  let stats = propagate_probabilities ?input_probability design in
  let vdd = lib.Cell_lib.lib_vdd in
  (* Leakage: expectation over input states per gate. *)
  let leakage_power =
    List.fold_left
      (fun acc (g : Design.gate) ->
        let cell = Cell_lib.find lib g.Design.cell in
        let probs = Array.map (fun i -> stats.(i).probability) g.Design.inputs in
        let expected =
          List.fold_left
            (fun e (state, amps) -> e +. (state_probability probs state *. amps))
            0.0 cell.Cell_lib.leakage
        in
        acc +. (expected *. vdd))
      0.0 (Design.gates design)
  in
  (* Dynamic: per-net switched capacitance. *)
  let n = Design.n_nets design in
  let load = Array.make n 0.0 in
  (match wire_cap with
   | Some f ->
     for net = 0 to n - 1 do
       load.(net) <- f net
     done
   | None -> ());
  List.iter
    (fun (g : Design.gate) ->
      let cell = Cell_lib.find lib g.Design.cell in
      Array.iter (fun i -> load.(i) <- load.(i) +. cell.Cell_lib.input_cap) g.Design.inputs)
    (Design.gates design);
  let total_switched_cap = ref 0.0 in
  for net = 0 to n - 1 do
    total_switched_cap := !total_switched_cap +. (stats.(net).activity *. load.(net))
  done;
  (* A toggle dissipates C V^2 / 2 on average (charge on rise only). *)
  let dynamic_power = 0.5 *. !total_switched_cap *. vdd *. vdd *. frequency in
  {
    leakage_power;
    dynamic_power;
    total_power = leakage_power +. dynamic_power;
    total_switched_cap = !total_switched_cap;
  }
