type t = { slews : Numerics.Vec.t; loads : Numerics.Vec.t; values : float array array }

let check_axis name v =
  if Array.length v < 1 then invalid_arg ("Lut.create: empty " ^ name);
  for i = 0 to Array.length v - 2 do
    if v.(i + 1) <= v.(i) then invalid_arg ("Lut.create: " ^ name ^ " not increasing")
  done

let create ~slews ~loads ~values =
  check_axis "slews" slews;
  check_axis "loads" loads;
  if Array.length values <> Array.length slews then
    invalid_arg "Lut.create: row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length loads then
        invalid_arg "Lut.create: column count mismatch")
    values;
  { slews; loads; values }

let bracket axis x =
  let n = Array.length axis in
  if n = 1 then (0, 0, 0.0)
  else begin
    let x = Float.max axis.(0) (Float.min axis.(n - 1) x) in
    let i = Numerics.Interp.search axis x in
    let t = (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)) in
    (i, i + 1, t)
  end

let eval t ~slew ~load =
  let i0, i1, ti = bracket t.slews slew in
  let j0, j1, tj = bracket t.loads load in
  let v00 = t.values.(i0).(j0) and v01 = t.values.(i0).(j1) in
  let v10 = t.values.(i1).(j0) and v11 = t.values.(i1).(j1) in
  let a = ((1.0 -. tj) *. v00) +. (tj *. v01) in
  let b = ((1.0 -. tj) *. v10) +. (tj *. v11) in
  ((1.0 -. ti) *. a) +. (ti *. b)

let slews t = Array.copy t.slews
let loads t = Array.copy t.loads

let map2 f a b =
  if a.slews <> b.slews || a.loads <> b.loads then invalid_arg "Lut.map2: axis mismatch";
  {
    a with
    values =
      Array.mapi (fun i row -> Array.mapi (fun j v -> f v b.values.(i).(j)) row) a.values;
  }
