(* subscale: command-line front end.

   subcommands:
     run <ids>      reproduce tables/figures (table1..fig12 or "all")
     device         print compact-model characteristics for one node
     tcad           run the 2-D TCAD characterization for one node (slower)
     sweep          dump a compact-model Id-Vg sweep as CSV *)

open Cmdliner

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  Term.(const setup_logs $ Logs_cli.level ())

let experiment_ids =
  [ "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
    "fig8"; "fig9"; "fig10"; "fig11"; "fig12" ]

let extension_ids =
  [ "ext-variability"; "ext-multivth"; "ext-bitline"; "ext-temperature"; "ext-datapath";
    "ext-interconnect"; "ext-sta"; "ext-yield"; "ext-projection"; "ext-corners";
    "ext-pareto" ]

let print_output ~plots ~csv_dir (o : Subscale.Experiments.output) =
  Subscale.Report.Table.print o.Subscale.Experiments.table;
  print_newline ();
  if plots then
    List.iter
      (fun p ->
        print_string p;
        print_newline ())
      o.Subscale.Experiments.plots;
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (o.Subscale.Experiments.id ^ ".csv") in
    let data = Subscale.Report.Csv.of_table o.Subscale.Experiments.table in
    let oc = open_out path in
    output_string oc data;
    close_out oc;
    Printf.printf "wrote %s\n" path

let run_cmd =
  let ids =
    let doc =
      "Experiments to run: table1..table3, fig2..fig12, ext-variability, \
       ext-multivth, ext-bitline, ext-temperature, ext-datapath, 'all' \
       (paper set) or 'everything' (paper set plus extensions)."
    in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)
  in
  let no_measured =
    let doc = "Skip transient delay measurements in fig5 (faster)." in
    Arg.(value & flag & info [ "no-measured" ] ~doc)
  in
  let plots =
    let doc = "Also render ASCII plots where available." in
    Arg.(value & flag & info [ "plots" ] ~doc)
  in
  let csv_dir =
    let doc = "Directory to write per-experiment CSV files into." in
    Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let run () ids no_measured plots csv_dir =
    let ids =
      List.concat_map
        (fun id ->
          if id = "all" then experiment_ids
          else if id = "everything" then experiment_ids @ extension_ids
          else [ id ])
        ids
    in
    List.iter
      (fun id ->
        if not (List.mem id (experiment_ids @ extension_ids)) then begin
          Printf.eprintf "unknown experiment %S (known: %s, all, everything)\n" id
            (String.concat ", " (experiment_ids @ extension_ids));
          exit 2
        end)
      ids;
    let ctx_free =
      [ "table1"; "fig7"; "fig8"; "ext-multivth"; "ext-temperature"; "ext-projection" ]
    in
    let needs_ctx = List.exists (fun id -> not (List.mem id ctx_free)) ids in
    let with_130 = List.mem "fig12" ids in
    let ctx =
      if needs_ctx then Some (Subscale.Experiments.make_context ~with_130 ()) else None
    in
    let get_ctx () = Option.get ctx in
    List.iter
      (fun id ->
        let output =
          match id with
          | "table1" -> Subscale.Experiments.table1 ()
          | "table2" -> Subscale.Experiments.table2 (get_ctx ())
          | "table3" -> Subscale.Experiments.table3 (get_ctx ())
          | "fig2" -> Subscale.Experiments.fig2 (get_ctx ())
          | "fig3" -> Subscale.Experiments.fig3 (get_ctx ())
          | "fig4" -> Subscale.Experiments.fig4 (get_ctx ())
          | "fig5" -> Subscale.Experiments.fig5 ~measured:(not no_measured) (get_ctx ())
          | "fig6" -> Subscale.Experiments.fig6 (get_ctx ())
          | "fig7" -> Subscale.Experiments.fig7 ()
          | "fig8" -> Subscale.Experiments.fig8 ()
          | "fig9" -> Subscale.Experiments.fig9 (get_ctx ())
          | "fig10" -> Subscale.Experiments.fig10 (get_ctx ())
          | "fig11" -> Subscale.Experiments.fig11 (get_ctx ())
          | "fig12" -> Subscale.Experiments.fig12 (get_ctx ())
          | "ext-variability" -> Subscale.Experiments.ext_variability (get_ctx ())
          | "ext-multivth" -> Subscale.Experiments.ext_multi_vth ()
          | "ext-bitline" -> Subscale.Experiments.ext_bitline (get_ctx ())
          | "ext-temperature" -> Subscale.Experiments.ext_temperature ()
          | "ext-datapath" -> Subscale.Experiments.ext_datapath (get_ctx ())
          | "ext-interconnect" -> Subscale.Experiments.ext_interconnect (get_ctx ())
          | "ext-sta" -> Subscale.Experiments.ext_sta (get_ctx ())
          | "ext-yield" -> Subscale.Experiments.ext_yield (get_ctx ())
          | "ext-projection" -> Subscale.Experiments.ext_projection ()
          | "ext-corners" -> Subscale.Experiments.ext_corners (get_ctx ())
          | "ext-pareto" -> Subscale.Experiments.ext_pareto (get_ctx ())
          | _ -> assert false
        in
        print_output ~plots ~csv_dir output)
      ids
  in
  let doc = "Reproduce the paper's tables and figures" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ log_term $ ids $ no_measured $ plots $ csv_dir)

let node_arg =
  let doc = "Technology node (90, 65, 45 or 32; 130 for the Fig. 12 extra point)." in
  Arg.(value & opt int 90 & info [ "node" ] ~docv:"NM" ~doc)

let strategy_arg =
  let doc = "Scaling strategy: 'super' or 'sub'." in
  Arg.(value & opt string "super" & info [ "strategy" ] ~docv:"S" ~doc)

let select_device node strategy =
  let n =
    match Subscale.Scaling.Roadmap.find node with
    | n -> n
    | exception Not_found ->
      Printf.eprintf "unknown node %d (known: 130, 90, 65, 45, 32)\n" node;
      exit 2
  in
  match strategy with
  | "super" ->
    let s = Subscale.Scaling.Super_vth.select_node n in
    (n, s.Subscale.Scaling.Super_vth.phys, s.Subscale.Scaling.Super_vth.pair)
  | "sub" ->
    let s = Subscale.Scaling.Sub_vth.select_node n in
    (n, s.Subscale.Scaling.Sub_vth.phys, s.Subscale.Scaling.Sub_vth.pair)
  | other ->
    Printf.eprintf "unknown strategy %S (super or sub)\n" other;
    exit 2

let device_cmd =
  let run () node strategy =
    let roadmap_node, phys, pair = select_device node strategy in
    let e =
      Subscale.Scaling.Strategy.evaluate
        (if strategy = "super" then Subscale.Scaling.Strategy.Super_vth
         else Subscale.Scaling.Strategy.Sub_vth)
        roadmap_node phys pair
    in
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    let f = Printf.printf in
    f "node           : %d nm (%s strategy)\n" node strategy;
    f "Lpoly          : %.1f nm\n" (Subscale.Physics.Constants.to_nm phys.Subscale.Device.Params.lpoly);
    f "Tox            : %.2f nm\n" (Subscale.Physics.Constants.to_nm phys.Subscale.Device.Params.tox);
    f "Nsub           : %.2e cm^-3\n" (Subscale.Physics.Constants.to_per_cm3 phys.Subscale.Device.Params.nsub);
    f "Nhalo (net)    : %.2e cm^-3\n"
      (Subscale.Physics.Constants.to_per_cm3 (Subscale.Device.Params.nhalo_net phys));
    f "Leff           : %.1f nm\n" (Subscale.Physics.Constants.to_nm nfet.Subscale.Device.Compact.leff);
    f "SS             : %.1f mV/dec\n" (1000.0 *. nfet.Subscale.Device.Compact.ss);
    f "Vth,sat (cc)   : %.0f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.vth_sat);
    f "DIBL           : %.0f mV/V\n" (1000.0 *. Subscale.Device.Compact.dibl nfet);
    f "Ioff @nominal  : %.1f pA/um\n"
      (Subscale.Physics.Constants.to_pa_per_um e.Subscale.Scaling.Strategy.ioff_nominal);
    f "Ion/Ioff @250mV: %.0f\n" e.Subscale.Scaling.Strategy.on_off_sub;
    f "SNM @250mV     : %.1f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.snm_sub);
    f "FO1 tp @250mV  : %.1f ns\n" (1e9 *. e.Subscale.Scaling.Strategy.delay_sub);
    f "Vmin           : %.0f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.vmin);
    f "E/cycle @Vmin  : %.2f fJ (30-stage chain, alpha = 0.1)\n"
      (1e15 *. e.Subscale.Scaling.Strategy.energy_at_vmin)
  in
  let doc = "Print compact-model characteristics of one scaled device" in
  Cmd.v (Cmd.info "device" ~doc) Term.(const run $ log_term $ node_arg $ strategy_arg)

let tcad_cmd =
  let run () node strategy =
    let _, _, pair = select_device node strategy in
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    let desc = Subscale.Device.Compact.to_tcad_description nfet in
    Printf.printf "building 2-D device and running Id-Vg sweeps (this takes a few seconds)...\n%!";
    let dev = Subscale.Tcad.Structure.build desc in
    let ch = Subscale.Tcad.Extract.characterize ~vdd:0.9 dev in
    Printf.printf "mesh            : %d x %d nodes\n" dev.Subscale.Tcad.Structure.mesh.Subscale.Tcad.Mesh.nx
      dev.Subscale.Tcad.Structure.mesh.Subscale.Tcad.Mesh.ny;
    Printf.printf "Leff (2-D)      : %.1f nm\n" (Subscale.Physics.Constants.to_nm ch.Subscale.Tcad.Extract.leff);
    Printf.printf "SS (2-D)        : %.1f mV/dec (compact model: %.1f)\n"
      (1000.0 *. ch.Subscale.Tcad.Extract.ss) (1000.0 *. nfet.Subscale.Device.Compact.ss);
    Printf.printf "Vth,lin (2-D)   : %.0f mV\n" (1000.0 *. ch.Subscale.Tcad.Extract.vth_lin);
    Printf.printf "Vth,sat (2-D)   : %.0f mV\n" (1000.0 *. ch.Subscale.Tcad.Extract.vth_sat);
    Printf.printf "DIBL (2-D)      : %.0f mV/V\n" (1000.0 *. ch.Subscale.Tcad.Extract.dibl);
    Printf.printf "Ioff (2-D)      : %.2e A/m\n" ch.Subscale.Tcad.Extract.ioff;
    Printf.printf "Ion/Ioff @250mV : %.0f\n" ch.Subscale.Tcad.Extract.on_off_ratio_sub
  in
  let doc = "Characterize one scaled device with the 2-D TCAD simulator" in
  Cmd.v (Cmd.info "tcad" ~doc) Term.(const run $ log_term $ node_arg $ strategy_arg)

let sweep_cmd =
  let vd_arg =
    let doc = "Drain bias for the sweep [V]." in
    Arg.(value & opt float 0.25 & info [ "vd" ] ~docv:"V" ~doc)
  in
  let run () node strategy vd =
    let _, _, pair = select_device node strategy in
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    print_endline "vgs,id_per_um";
    Array.iter
      (fun vg ->
        Printf.printf "%.3f,%.6e\n" vg (1e-6 *. Subscale.Device.Iv_model.id nfet ~vgs:vg ~vds:vd))
      (Subscale.Numerics.Vec.linspace 0.0 0.9 46)
  in
  let doc = "Dump a compact-model Id-Vg sweep as CSV (A/um)" in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ log_term $ node_arg $ strategy_arg $ vd_arg)

let vdd_arg =
  let doc = "Supply voltage [V]." in
  Arg.(value & opt float 0.25 & info [ "vdd" ] ~docv:"V" ~doc)

let out_arg ~default =
  let doc = "Output file path." in
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let liberty_cmd =
  let run () node strategy vdd path =
    let _, _, pair = select_device node strategy in
    Printf.printf "characterizing INV/NAND2/NOR2 at %.0f mV...\n%!" (1000.0 *. vdd);
    let lib = Subscale.Sta.Cell_lib.characterize pair ~vdd in
    let name = Printf.sprintf "subscale_%dnm_%s_%.0fmv" node strategy (1000.0 *. vdd) in
    Subscale.Sta.Liberty.write ~path ~name lib;
    Printf.printf "wrote %s\n" path
  in
  let doc = "Characterize a cell library and write it as a Liberty (.lib) file" in
  Cmd.v (Cmd.info "liberty" ~doc)
    Term.(const run $ log_term $ node_arg $ strategy_arg $ vdd_arg
          $ out_arg ~default:"subscale.lib")

let export_cmd =
  let circuit_arg =
    let doc = "Circuit to export: 'inverter', 'chain' or 'adder'." in
    Arg.(value & opt string "inverter" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let run () node strategy vdd circuit path =
    let _, _, pair = select_device node strategy in
    let netlist =
      match circuit with
      | "inverter" ->
        (Subscale.Circuits.Inverter.dc pair ~vdd).Subscale.Circuits.Inverter.circuit
      | "chain" ->
        (Subscale.Circuits.Chain.build ~stages:8 pair ~vdd)
          .Subscale.Circuits.Chain.fixture.Subscale.Circuits.Inverter.circuit
      | "adder" ->
        (Subscale.Circuits.Adder.ripple_carry pair ~vdd ~bits:4)
          .Subscale.Circuits.Adder.circuit
      | other ->
        Printf.eprintf "unknown circuit %S (inverter, chain, adder)\n" other;
        exit 2
    in
    let title = Printf.sprintf "%s, %d nm %s device, Vdd=%.3f V" circuit node strategy vdd in
    Subscale.Spice.Export.write ~path ~title netlist;
    Printf.printf "wrote %s\n" path
  in
  let doc = "Export a generated circuit as a SPICE deck" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ log_term $ node_arg $ strategy_arg $ vdd_arg $ circuit_arg
          $ out_arg ~default:"subscale.sp")

let verilog_cmd =
  let bits_arg =
    let doc = "Adder width in bits." in
    Arg.(value & opt int 8 & info [ "bits" ] ~docv:"N" ~doc)
  in
  let run () bits path =
    let d = Subscale.Sta.Design.create () in
    let a = Array.init bits (fun _ -> Subscale.Sta.Design.fresh_net d) in
    let b = Array.init bits (fun _ -> Subscale.Sta.Design.fresh_net d) in
    let cin = Subscale.Sta.Design.fresh_net d in
    Array.iter (Subscale.Sta.Design.mark_input d) a;
    Array.iter (Subscale.Sta.Design.mark_input d) b;
    Subscale.Sta.Design.mark_input d cin;
    let sums, cout = Subscale.Sta.Design.ripple_carry_adder d ~a ~b ~cin in
    Array.iter (Subscale.Sta.Design.mark_output d) sums;
    Subscale.Sta.Design.mark_output d cout;
    let name = Printf.sprintf "rca%d" bits in
    let oc = open_out path in
    output_string oc (Subscale.Sta.Verilog.to_verilog ~module_name:name d);
    close_out oc;
    Printf.printf "wrote %s (%d gates)\n" path (List.length (Subscale.Sta.Design.gates d))
  in
  let doc = "Generate a gate-level ripple-carry adder as structural Verilog" in
  Cmd.v (Cmd.info "verilog" ~doc)
    Term.(const run $ log_term $ bits_arg $ out_arg ~default:"adder.v")

let main =
  let doc = "Subthreshold device-scaling study (DAC 2007 reproduction)" in
  Cmd.group (Cmd.info "subscale" ~doc ~version:"1.0.0")
    [ run_cmd; device_cmd; tcad_cmd; sweep_cmd; liberty_cmd; export_cmd; verilog_cmd ]

let () = exit (Cmd.eval main)
