(* subscale: command-line front end.

   subcommands (the four analysis/verification passes first, then the
   simulation drivers and exporters):
     check          static-analysis pass over devices, circuits and designs
     audit          interval-validity + memo/determinism audit of the engine
     lint           typedtree source linter (purity/race, float/exception/
                    output hygiene) over the .cmt artifacts dune produces
     run <ids>      reproduce tables/figures (table1..fig12 or "all")
     device         print compact-model characteristics for one node
     tcad           run the 2-D TCAD characterization for one node (slower)
     sweep          dump a compact-model Id-Vg sweep as CSV
     liberty        characterize a cell library into a Liberty file
     export         write a generated circuit as a SPICE deck
     verilog        emit a gate-level adder as structural Verilog
     serve          long-running characterization daemon (JSON over a socket)

   check/audit/lint share the same conventions: structured diagnostics
   with registry-minted rule ids, --selftest, --strict, exit 1 on
   findings. *)

open Cmdliner
module Diag = Subscale.Check.Diagnostic

(* Print the diagnostics for one target and exit 1 on errors: every
   subcommand validates its inputs through this before running a solver. *)
let gate_on_errors ~what diags =
  List.iter (fun d -> Printf.eprintf "%s: %s\n" what (Diag.to_string d)) (Diag.sort diags);
  if Diag.has_errors diags then begin
    Printf.eprintf "%s: %s -- refusing to simulate\n" what (Diag.summary diags);
    exit 1
  end

let validate_device ~what phys pair =
  gate_on_errors ~what (Subscale.Check.physical phys);
  let vdd = phys.Subscale.Device.Params.vdd in
  let nfet = pair.Subscale.Circuits.Inverter.nfet in
  let pfet = pair.Subscale.Circuits.Inverter.pfet in
  gate_on_errors ~what (Subscale.Check.compact nfet ~vdd);
  gate_on_errors ~what (Subscale.Check.compact pfet ~vdd)

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  Term.(const setup_logs $ Logs_cli.level ())

(* Parallelism: --jobs N pins the domain-pool width; without it the default
   comes from SUBSCALE_JOBS or the machine's recommended domain count.  All
   sweep results are bit-identical for every setting (see DESIGN.md). *)
let setup_jobs = function
  | None -> ()
  | Some n ->
    if n < 1 then begin
      Printf.eprintf "--jobs must be >= 1\n";
      exit 2
    end;
    Subscale.Exec.set_jobs n

let jobs_term =
  let doc =
    "Number of domains used for parallel sweeps (default: $(b,SUBSCALE_JOBS) \
     or the machine's recommended domain count).  $(b,--jobs 1) runs purely \
     sequentially and spawns no domains; outputs are bit-identical for every \
     value."
  in
  Term.(
    const setup_jobs
    $ Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc))

(* Observability: --trace FILE writes a Chrome trace_event JSON at process
   exit; --profile prints a span summary plus the metrics registry to
   stderr.  SUBSCALE_TRACE=FILE is the flag-free equivalent of --trace.
   Tracing never perturbs results (DESIGN.md, "Observability"). *)
let setup_obs trace profile =
  Subscale.Obs.init_from_env ();
  Option.iter Subscale.Obs.set_trace_file trace;
  if profile then Subscale.Obs.enable_profile ()

let obs_term =
  let trace =
    let doc =
      "Write a Chrome trace_event JSON timeline of the run to $(docv) \
       (open it at chrome://tracing or ui.perfetto.dev).  Setting \
       $(b,SUBSCALE_TRACE)=FILE is equivalent."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let profile =
    let doc =
      "Print a per-span timing summary and the metrics registry (solver \
       iteration histograms, memo hit rates, non-convergence counters) to \
       stderr when the run finishes."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  Term.(const setup_obs $ trace $ profile)

(* Any solver that gave up during the run left a counter behind; surface
   them even when the caller did not ask for a profile. *)
let warn_non_converged () =
  List.iter
    (fun (name, n) ->
      Printf.eprintf "warning: %d non-converged solver exit(s) recorded under %s\n%!" n name)
    (Subscale.Obs.non_converged_counters ())

let experiment_ids =
  [ "table1"; "table2"; "table3"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
    "fig8"; "fig9"; "fig10"; "fig11"; "fig12" ]

let extension_ids =
  [ "ext-variability"; "ext-multivth"; "ext-bitline"; "ext-temperature"; "ext-datapath";
    "ext-interconnect"; "ext-sta"; "ext-yield"; "ext-projection"; "ext-corners";
    "ext-pareto" ]

let print_output ~plots ~csv_dir (o : Subscale.Experiments.output) =
  Subscale.Report.Table.print o.Subscale.Experiments.table;
  print_newline ();
  if plots then
    List.iter
      (fun p ->
        print_string p;
        print_newline ())
      o.Subscale.Experiments.plots;
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (o.Subscale.Experiments.id ^ ".csv") in
    let data = Subscale.Report.Csv.of_table o.Subscale.Experiments.table in
    let oc = open_out path in
    output_string oc data;
    close_out oc;
    Printf.printf "wrote %s\n" path

let run_cmd =
  let ids =
    let doc =
      "Experiments to run: table1..table3, fig2..fig12, ext-variability, \
       ext-multivth, ext-bitline, ext-temperature, ext-datapath, 'all' \
       (paper set) or 'everything' (paper set plus extensions)."
    in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)
  in
  let no_measured =
    let doc = "Skip transient delay measurements in fig5 (faster)." in
    Arg.(value & flag & info [ "no-measured" ] ~doc)
  in
  let plots =
    let doc = "Also render ASCII plots where available." in
    Arg.(value & flag & info [ "plots" ] ~doc)
  in
  let csv_dir =
    let doc = "Directory to write per-experiment CSV files into." in
    Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let run () () () ids no_measured plots csv_dir =
    let ids =
      List.concat_map
        (fun id ->
          if id = "all" then experiment_ids
          else if id = "everything" then experiment_ids @ extension_ids
          else [ id ])
        ids
    in
    List.iter
      (fun id ->
        if not (List.mem id (experiment_ids @ extension_ids)) then begin
          Printf.eprintf "unknown experiment %S (known: %s, all, everything)\n" id
            (String.concat ", " (experiment_ids @ extension_ids));
          exit 2
        end)
      ids;
    let ctx_free =
      [ "table1"; "fig7"; "fig8"; "ext-multivth"; "ext-temperature"; "ext-projection" ]
    in
    let needs_ctx = List.exists (fun id -> not (List.mem id ctx_free)) ids in
    let with_130 = List.mem "fig12" ids in
    let ctx =
      if needs_ctx then Some (Subscale.Experiments.make_context ~with_130 ()) else None
    in
    let get_ctx () = Option.get ctx in
    List.iter
      (fun id ->
        let output =
          match id with
          | "table1" -> Subscale.Experiments.table1 ()
          | "table2" -> Subscale.Experiments.table2 (get_ctx ())
          | "table3" -> Subscale.Experiments.table3 (get_ctx ())
          | "fig2" -> Subscale.Experiments.fig2 (get_ctx ())
          | "fig3" -> Subscale.Experiments.fig3 (get_ctx ())
          | "fig4" -> Subscale.Experiments.fig4 (get_ctx ())
          | "fig5" -> Subscale.Experiments.fig5 ~measured:(not no_measured) (get_ctx ())
          | "fig6" -> Subscale.Experiments.fig6 (get_ctx ())
          | "fig7" -> Subscale.Experiments.fig7 ()
          | "fig8" -> Subscale.Experiments.fig8 ()
          | "fig9" -> Subscale.Experiments.fig9 (get_ctx ())
          | "fig10" -> Subscale.Experiments.fig10 (get_ctx ())
          | "fig11" -> Subscale.Experiments.fig11 (get_ctx ())
          | "fig12" -> Subscale.Experiments.fig12 (get_ctx ())
          | "ext-variability" -> Subscale.Experiments.ext_variability (get_ctx ())
          | "ext-multivth" -> Subscale.Experiments.ext_multi_vth ()
          | "ext-bitline" -> Subscale.Experiments.ext_bitline (get_ctx ())
          | "ext-temperature" -> Subscale.Experiments.ext_temperature ()
          | "ext-datapath" -> Subscale.Experiments.ext_datapath (get_ctx ())
          | "ext-interconnect" -> Subscale.Experiments.ext_interconnect (get_ctx ())
          | "ext-sta" -> Subscale.Experiments.ext_sta (get_ctx ())
          | "ext-yield" -> Subscale.Experiments.ext_yield (get_ctx ())
          | "ext-projection" -> Subscale.Experiments.ext_projection ()
          | "ext-corners" -> Subscale.Experiments.ext_corners (get_ctx ())
          | "ext-pareto" -> Subscale.Experiments.ext_pareto (get_ctx ())
          | _ -> assert false
        in
        print_output ~plots ~csv_dir output)
      ids;
    warn_non_converged ()
  in
  let doc = "Reproduce the paper's tables and figures" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ ids $ no_measured $ plots $ csv_dir)

let node_arg =
  let doc = "Technology node (90, 65, 45 or 32; 130 for the Fig. 12 extra point)." in
  Arg.(value & opt int 90 & info [ "node" ] ~docv:"NM" ~doc)

let strategy_arg =
  let doc = "Scaling strategy: 'super' or 'sub'." in
  Arg.(value & opt string "super" & info [ "strategy" ] ~docv:"S" ~doc)

let select_device node strategy =
  let n =
    match Subscale.Scaling.Roadmap.find node with
    | n -> n
    | exception Not_found ->
      Printf.eprintf "unknown node %d (known: 130, 90, 65, 45, 32)\n" node;
      exit 2
  in
  match strategy with
  | "super" ->
    let s = Subscale.Scaling.Super_vth.select_node n in
    (n, s.Subscale.Scaling.Super_vth.phys, s.Subscale.Scaling.Super_vth.pair)
  | "sub" ->
    let s = Subscale.Scaling.Sub_vth.select_node n in
    (n, s.Subscale.Scaling.Sub_vth.phys, s.Subscale.Scaling.Sub_vth.pair)
  | other ->
    Printf.eprintf "unknown strategy %S (super or sub)\n" other;
    exit 2

let device_cmd =
  let run () () () node strategy =
    let roadmap_node, phys, pair = select_device node strategy in
    validate_device ~what:(Printf.sprintf "%d nm %s device" node strategy) phys pair;
    let e =
      Subscale.Scaling.Strategy.evaluate
        (if strategy = "super" then Subscale.Scaling.Strategy.Super_vth
         else Subscale.Scaling.Strategy.Sub_vth)
        roadmap_node phys pair
    in
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    let f = Printf.printf in
    f "node           : %d nm (%s strategy)\n" node strategy;
    f "Lpoly          : %.1f nm\n" (Subscale.Physics.Constants.to_nm phys.Subscale.Device.Params.lpoly);
    f "Tox            : %.2f nm\n" (Subscale.Physics.Constants.to_nm phys.Subscale.Device.Params.tox);
    f "Nsub           : %.2e cm^-3\n" (Subscale.Physics.Constants.to_per_cm3 phys.Subscale.Device.Params.nsub);
    f "Nhalo (net)    : %.2e cm^-3\n"
      (Subscale.Physics.Constants.to_per_cm3 (Subscale.Device.Params.nhalo_net phys));
    f "Leff           : %.1f nm\n" (Subscale.Physics.Constants.to_nm nfet.Subscale.Device.Compact.leff);
    f "SS             : %.1f mV/dec\n" (1000.0 *. nfet.Subscale.Device.Compact.ss);
    f "Vth,sat (cc)   : %.0f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.vth_sat);
    f "DIBL           : %.0f mV/V\n" (1000.0 *. Subscale.Device.Compact.dibl nfet);
    f "Ioff @nominal  : %.1f pA/um\n"
      (Subscale.Physics.Constants.to_pa_per_um e.Subscale.Scaling.Strategy.ioff_nominal);
    f "Ion/Ioff @250mV: %.0f\n" e.Subscale.Scaling.Strategy.on_off_sub;
    f "SNM @250mV     : %.1f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.snm_sub);
    f "FO1 tp @250mV  : %.1f ns\n" (1e9 *. e.Subscale.Scaling.Strategy.delay_sub);
    f "Vmin           : %.0f mV\n" (1000.0 *. e.Subscale.Scaling.Strategy.vmin);
    f "E/cycle @Vmin  : %.2f fJ (30-stage chain, alpha = 0.1)\n"
      (1e15 *. e.Subscale.Scaling.Strategy.energy_at_vmin)
  in
  let doc = "Print compact-model characteristics of one scaled device" in
  Cmd.v (Cmd.info "device" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ node_arg $ strategy_arg)

let tcad_cmd =
  let run () () () node strategy =
    let _, _, pair = select_device node strategy in
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    let desc = Subscale.Device.Compact.to_tcad_description nfet in
    let what = Printf.sprintf "%d nm %s TCAD deck" node strategy in
    gate_on_errors ~what (Subscale.Check.description desc);
    Printf.printf "building 2-D device and running Id-Vg sweeps (this takes a few seconds)...\n%!";
    let dev = Subscale.Tcad.Structure.build desc in
    gate_on_errors ~what (Subscale.Check.structure dev);
    let ch = Subscale.Tcad.Extract.characterize ~vdd:0.9 dev in
    Printf.printf "mesh            : %d x %d nodes\n" dev.Subscale.Tcad.Structure.mesh.Subscale.Tcad.Mesh.nx
      dev.Subscale.Tcad.Structure.mesh.Subscale.Tcad.Mesh.ny;
    Printf.printf "Leff (2-D)      : %.1f nm\n" (Subscale.Physics.Constants.to_nm ch.Subscale.Tcad.Extract.leff);
    Printf.printf "SS (2-D)        : %.1f mV/dec (compact model: %.1f)\n"
      (1000.0 *. ch.Subscale.Tcad.Extract.ss) (1000.0 *. nfet.Subscale.Device.Compact.ss);
    Printf.printf "Vth,lin (2-D)   : %.0f mV\n" (1000.0 *. ch.Subscale.Tcad.Extract.vth_lin);
    Printf.printf "Vth,sat (2-D)   : %.0f mV\n" (1000.0 *. ch.Subscale.Tcad.Extract.vth_sat);
    Printf.printf "DIBL (2-D)      : %.0f mV/V\n" (1000.0 *. ch.Subscale.Tcad.Extract.dibl);
    Printf.printf "Ioff (2-D)      : %.2e A/m\n" ch.Subscale.Tcad.Extract.ioff;
    Printf.printf "Ion/Ioff @250mV : %.0f\n" ch.Subscale.Tcad.Extract.on_off_ratio_sub;
    warn_non_converged ()
  in
  let doc = "Characterize one scaled device with the 2-D TCAD simulator" in
  Cmd.v (Cmd.info "tcad" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ node_arg $ strategy_arg)

let sweep_cmd =
  let vd_arg =
    let doc = "Drain bias for the sweep [V]." in
    Arg.(value & opt float 0.25 & info [ "vd" ] ~docv:"V" ~doc)
  in
  let run () () () node strategy vd =
    let _, phys, pair = select_device node strategy in
    validate_device ~what:(Printf.sprintf "%d nm %s device" node strategy) phys pair;
    let nfet = pair.Subscale.Circuits.Inverter.nfet in
    print_endline "vgs,id_per_um";
    Array.iter
      (fun vg ->
        Printf.printf "%.3f,%.6e\n" vg (1e-6 *. Subscale.Device.Iv_model.id nfet ~vgs:vg ~vds:vd))
      (Subscale.Numerics.Vec.linspace 0.0 0.9 46)
  in
  let doc = "Dump a compact-model Id-Vg sweep as CSV (A/um)" in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ node_arg $ strategy_arg $ vd_arg)

let vdd_arg =
  let doc = "Supply voltage [V]." in
  Arg.(value & opt float 0.25 & info [ "vdd" ] ~docv:"V" ~doc)

let out_arg ~default =
  let doc = "Output file path." in
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let liberty_cmd =
  let run () () () node strategy vdd path =
    let _, phys, pair = select_device node strategy in
    validate_device ~what:(Printf.sprintf "%d nm %s device" node strategy) phys pair;
    Printf.printf "characterizing INV/NAND2/NOR2 at %.0f mV...\n%!" (1000.0 *. vdd);
    let lib = Subscale.Sta.Cell_lib.characterize pair ~vdd in
    let name = Printf.sprintf "subscale_%dnm_%s_%.0fmv" node strategy (1000.0 *. vdd) in
    Subscale.Sta.Liberty.write ~path ~name lib;
    Printf.printf "wrote %s\n" path
  in
  let doc = "Characterize a cell library and write it as a Liberty (.lib) file" in
  Cmd.v (Cmd.info "liberty" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ node_arg $ strategy_arg $ vdd_arg
          $ out_arg ~default:"subscale.lib")

let export_cmd =
  let circuit_arg =
    let doc = "Circuit to export: 'inverter', 'chain' or 'adder'." in
    Arg.(value & opt string "inverter" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let run () () () node strategy vdd circuit path =
    let _, _, pair = select_device node strategy in
    let netlist =
      match circuit with
      | "inverter" ->
        (Subscale.Circuits.Inverter.dc pair ~vdd).Subscale.Circuits.Inverter.circuit
      | "chain" ->
        (Subscale.Circuits.Chain.build ~stages:8 pair ~vdd)
          .Subscale.Circuits.Chain.fixture.Subscale.Circuits.Inverter.circuit
      | "adder" ->
        (Subscale.Circuits.Adder.ripple_carry pair ~vdd ~bits:4)
          .Subscale.Circuits.Adder.circuit
      | other ->
        Printf.eprintf "unknown circuit %S (inverter, chain, adder)\n" other;
        exit 2
    in
    gate_on_errors ~what:(Printf.sprintf "%s deck" circuit) (Subscale.Check.netlist netlist);
    let title = Printf.sprintf "%s, %d nm %s device, Vdd=%.3f V" circuit node strategy vdd in
    Subscale.Spice.Export.write ~path ~title netlist;
    Printf.printf "wrote %s\n" path
  in
  let doc = "Export a generated circuit as a SPICE deck" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ log_term $ jobs_term $ obs_term $ node_arg $ strategy_arg $ vdd_arg $ circuit_arg
          $ out_arg ~default:"subscale.sp")

let verilog_cmd =
  let bits_arg =
    let doc = "Adder width in bits." in
    Arg.(value & opt int 8 & info [ "bits" ] ~docv:"N" ~doc)
  in
  let run () bits path =
    let d = Subscale.Sta.Design.create () in
    let a = Array.init bits (fun _ -> Subscale.Sta.Design.fresh_net d) in
    let b = Array.init bits (fun _ -> Subscale.Sta.Design.fresh_net d) in
    let cin = Subscale.Sta.Design.fresh_net d in
    Array.iter (Subscale.Sta.Design.mark_input d) a;
    Array.iter (Subscale.Sta.Design.mark_input d) b;
    Subscale.Sta.Design.mark_input d cin;
    let sums, cout = Subscale.Sta.Design.ripple_carry_adder d ~a ~b ~cin in
    Array.iter (Subscale.Sta.Design.mark_output d) sums;
    Subscale.Sta.Design.mark_output d cout;
    let name = Printf.sprintf "rca%d" bits in
    gate_on_errors ~what:name (Subscale.Check.design d);
    let oc = open_out path in
    output_string oc (Subscale.Sta.Verilog.to_verilog ~module_name:name d);
    close_out oc;
    Printf.printf "wrote %s (%d gates)\n" path (List.length (Subscale.Sta.Design.gates d))
  in
  let doc = "Generate a gate-level ripple-carry adder as structural Verilog" in
  Cmd.v (Cmd.info "verilog" ~doc)
    Term.(const run $ log_term $ bits_arg $ out_arg ~default:"adder.v")

(* --- subscale check: the whole static-analysis pass as a subcommand --- *)

(* Run every checker over the shipped devices, generated circuits and the
   STA design; print one line per target (plus any diagnostics) and return
   the full diagnostic list for the exit code. *)
let check_targets ~with_tcad =
  let all = ref [] in
  let target what diags =
    all := diags @ !all;
    if diags = [] then Printf.printf "  ok    %s\n" what
    else begin
      let e, _, _ = Diag.count diags in
      Printf.printf "  %-5s %s (%s)\n" (if e > 0 then "FAIL" else "warn") what
        (Diag.summary diags);
      List.iter (fun d -> Printf.printf "        %s\n" (Diag.to_string d)) (Diag.sort diags)
    end
  in
  print_endline "devices:";
  List.iter
    (fun node ->
      List.iter
        (fun strategy ->
          let _, phys, pair = select_device node strategy in
          let what = Printf.sprintf "%d nm %s" node strategy in
          let vdd = phys.Subscale.Device.Params.vdd in
          let nfet = pair.Subscale.Circuits.Inverter.nfet in
          let pfet = pair.Subscale.Circuits.Inverter.pfet in
          target (what ^ " physical parameters") (Subscale.Check.physical phys);
          target (what ^ " nfet Id model") (Subscale.Check.compact nfet ~vdd);
          target (what ^ " pfet Id model") (Subscale.Check.compact pfet ~vdd);
          let desc = Subscale.Device.Compact.to_tcad_description nfet in
          target (what ^ " TCAD deck") (Subscale.Check.description desc);
          if with_tcad then
            target (what ^ " TCAD mesh")
              (Subscale.Check.structure (Subscale.Tcad.Structure.build desc)))
        [ "super"; "sub" ])
    [ 90; 65; 45; 32 ];
  print_endline "circuits (90 nm sub-Vth device):";
  let _, phys, pair = select_device 90 "sub" in
  let vdd = phys.Subscale.Device.Params.vdd in
  let net what c = target what (Subscale.Check.netlist c) in
  net "inverter VTC deck"
    (Subscale.Circuits.Inverter.dc pair ~vdd).Subscale.Circuits.Inverter.circuit;
  net "4-stage FO1 chain"
    (Subscale.Circuits.Inverter.chain_fixture pair ~vdd
       ~input:(Subscale.Spice.Netlist.Dc 0.0))
      .Subscale.Circuits.Inverter.circuit;
  net "tapered buffer chain"
    (Subscale.Circuits.Inverter.tapered_chain_fixture ~scales:[| 1.0; 2.0; 4.0 |] pair
       ~vdd ~input:(Subscale.Spice.Netlist.Dc 0.0) ~final_load:1e-15)
      .Subscale.Circuits.Inverter.circuit;
  net "7-stage ring oscillator"
    (Subscale.Circuits.Ring.build pair ~vdd).Subscale.Circuits.Ring.circuit;
  net "NAND2 cell" (Subscale.Circuits.Stdcell.nand2 pair ~vdd).Subscale.Circuits.Stdcell.circuit;
  net "NOR2 cell" (Subscale.Circuits.Stdcell.nor2 pair ~vdd).Subscale.Circuits.Stdcell.circuit;
  net "4-bit ripple-carry adder"
    (Subscale.Circuits.Adder.ripple_carry pair ~vdd ~bits:4).Subscale.Circuits.Adder.circuit;
  print_endline "designs:";
  let d = Subscale.Sta.Design.create () in
  let a = Array.init 8 (fun _ -> Subscale.Sta.Design.fresh_net d) in
  let b = Array.init 8 (fun _ -> Subscale.Sta.Design.fresh_net d) in
  let cin = Subscale.Sta.Design.fresh_net d in
  Array.iter (Subscale.Sta.Design.mark_input d) a;
  Array.iter (Subscale.Sta.Design.mark_input d) b;
  Subscale.Sta.Design.mark_input d cin;
  let sums, cout = Subscale.Sta.Design.ripple_carry_adder d ~a ~b ~cin in
  Array.iter (Subscale.Sta.Design.mark_output d) sums;
  Subscale.Sta.Design.mark_output d cout;
  target "rca8 gate-level design" (Subscale.Check.design d);
  !all

(* Crafted bad decks, one per netlist-DRC rule class: each must raise
   exactly its own rule (proving both detection and isolation), and a
   shipped inverter must come back clean. *)
let check_selftest () =
  let module N = Subscale.Spice.Netlist in
  let _, phys, pair = select_device 90 "sub" in
  let nfet = pair.Subscale.Circuits.Inverter.nfet in
  let pfet = pair.Subscale.Circuits.Inverter.pfet in
  let deck build =
    let c = N.create () in
    build c;
    c
  in
  let cases =
    [ ( "dangling resistor end", "net-floating-node",
        deck (fun c ->
            let a = N.node c "a" and b = N.node c "b" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Resistor { plus = a; minus = b; ohms = 1e3 })) );
      ( "capacitor-isolated island", "net-no-dc-path",
        deck (fun c ->
            let a = N.node c "a" and island = N.node c "island" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Capacitor { plus = a; minus = island; farads = 1e-15 });
            N.add c (N.Capacitor { plus = island; minus = N.ground; farads = 1e-15 })) );
      ( "two anti-series sources", "net-vsource-loop",
        deck (fun c ->
            let a = N.node c "a" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Voltage_source { name = "V2"; plus = N.ground; minus = a; wave = N.Dc (-1.0) })) );
      ( "negative resistance", "net-nonpositive-value",
        deck (fun c ->
            let a = N.node c "a" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Resistor { plus = a; minus = N.ground; ohms = -5.0 })) );
      ( "gate tied only to gates", "net-undriven-gate",
        deck (fun c ->
            let vdd = N.node c "vdd" and out = N.node c "out" and g = N.node c "g" in
            N.add c (N.Voltage_source { name = "VDD"; plus = vdd; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Nmos { dev = nfet; width = 1e-6; drain = out; gate = g; source = N.ground });
            N.add c (N.Pmos { dev = pfet; width = 2e-6; drain = out; gate = g; source = vdd })) );
      ( "net forced by two sources", "net-multi-driven",
        deck (fun c ->
            let a = N.node c "a" and b = N.node c "b" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Dc 1.0 });
            N.add c (N.Voltage_source { name = "V2"; plus = a; minus = b; wave = N.Dc 0.5 });
            N.add c (N.Resistor { plus = b; minus = N.ground; ohms = 1e3 })) );
      ( "empty Pwl waveform", "net-bad-waveform",
        deck (fun c ->
            let a = N.node c "a" in
            N.add c (N.Voltage_source { name = "V1"; plus = a; minus = N.ground; wave = N.Pwl [] });
            N.add c (N.Resistor { plus = a; minus = N.ground; ohms = 1e3 })) ) ]
  in
  let failures = ref 0 in
  (* Satellite of the audit work: rule ids across every lib/check table are
     minted through Rules.register, so a collision or malformed id is a hard
     selftest failure here, not a silent shadowing in reports. *)
  (match Subscale.Check.Rules.selftest () with
   | n -> Printf.printf "  ok    %-28s -> %d unique rule id(s)\n" "rule-id registry" n
   | exception e ->
     incr failures;
     Printf.printf "  FAIL  %-28s %s\n" "rule-id registry" (Printexc.to_string e));
  List.iter
    (fun (what, rule, c) ->
      let diags = Subscale.Check.netlist c in
      let fired = List.exists (fun d -> d.Diag.rule = rule) diags in
      let isolated = List.for_all (fun d -> d.Diag.rule = rule) diags in
      if fired && isolated then Printf.printf "  ok    %-28s -> %s\n" what rule
      else begin
        incr failures;
        Printf.printf "  FAIL  %-28s expected only %s, got [%s]\n" what rule
          (String.concat "; " (List.map Diag.to_string diags))
      end)
    cases;
  let clean =
    (Subscale.Circuits.Inverter.dc pair ~vdd:phys.Subscale.Device.Params.vdd)
      .Subscale.Circuits.Inverter.circuit
  in
  (match Subscale.Check.netlist clean with
   | [] -> Printf.printf "  ok    %-28s -> clean\n" "shipped inverter deck"
   | diags ->
     incr failures;
     Printf.printf "  FAIL  %-28s expected clean, got [%s]\n" "shipped inverter deck"
       (String.concat "; " (List.map Diag.to_string diags)));
  if !failures > 0 then begin
    Printf.printf "selftest: %d case(s) failed\n" !failures;
    exit 1
  end;
  print_endline "selftest: all DRC rule classes fire and the shipped deck is clean"

let check_cmd =
  let selftest =
    let doc =
      "Run the checker's own test: seven crafted bad decks (one per netlist \
       DRC rule class) must each raise exactly their rule, and a shipped \
       inverter deck must come back clean."
    in
    Arg.(value & flag & info [ "selftest" ] ~doc)
  in
  let strict =
    let doc = "Exit non-zero on warnings too, not only on errors." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let with_tcad =
    let doc = "Also build the 2-D TCAD structures and lint their meshes (slower)." in
    Arg.(value & flag & info [ "tcad" ] ~doc)
  in
  let run () () () selftest strict with_tcad =
    if selftest then check_selftest ()
    else begin
      let all = check_targets ~with_tcad in
      let _, w, _ = Diag.count all in
      Printf.printf "check: %s\n" (Diag.summary all);
      let code = Diag.exit_code all in
      exit (if code <> 0 then code else if strict && w > 0 then 1 else 0)
    end
  in
  let doc = "Static-analysis pass over shipped devices, circuits and designs" in
  let man =
    [ `S Manpage.s_description;
      `P "Runs every design-rule and invariant check (device physics, compact-model \
          monotonicity, TCAD deck/mesh, netlist DRC, STA lint) over the library's \
          shipped inputs without invoking a solver.";
      `P "Exit code 0 when no errors were found (warnings allowed unless \
          $(b,--strict)), 1 when any rule reported an error." ]
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(const run $ log_term $ jobs_term $ obs_term $ selftest $ strict $ with_tcad)

(* ------------------------------------------------------------------ *)
(* audit: interval abstract interpretation of the model chain plus the
   determinism/memo-soundness analysis of the parallel engine. *)

module VR = Subscale.Check.Validity_rules
module MS = Subscale.Check.Memo_soundness
module IV = Subscale.Check.Interval
module Pm = Subscale.Device.Params

(* All eight shipped configurations (4 nodes x both scaling strategies). *)
let audit_configs () =
  List.concat_map
    (fun node ->
      List.map
        (fun strategy ->
          let rnode, phys, pair = select_device node strategy in
          (node, strategy, rnode, phys, pair))
        [ "super"; "sub" ])
    [ 90; 65; 45; 32 ]

let audit_target all what diags =
  all := !all @ diags;
  let e, w, _ = Diag.count diags in
  if e = 0 && w = 0 then Printf.printf "  ok    %s\n" what
  else begin
    Printf.printf "  %-5s %s\n" (if e > 0 then "FAIL" else "warn") what;
    List.iter (fun d -> Printf.printf "        %s\n" (Diag.to_string d)) (Diag.sort diags)
  end

let iv_fmt ?(scale = 1.0) ?(digits = 1) i =
  Printf.sprintf "[%.*f, %.*f]" digits (scale *. IV.lo i) digits (scale *. IV.hi i)

(* Validity pass: propagate every shipped configuration through the interval
   interpreter and lint each TCAD mesh.  A clean line is a proof that no
   point of the (possibly widened) parameter box trips a hazard. *)
let audit_validity ~op_vdd ~widen =
  let all = ref [] in
  let target = audit_target all in
  Printf.printf "validity (interval abstract interpretation at V_dd = %.0f mV%s):\n"
    (1000.0 *. op_vdd)
    (if widen > 0.0 then Printf.sprintf ", box widened %g%%" (100.0 *. widen) else "");
  List.iter
    (fun (node, strategy, _, phys, _) ->
      let what = Printf.sprintf "%d nm %s" node strategy in
      let r = VR.audit_physical ~widen ~op_vdd ~what phys in
      target
        (Printf.sprintf "%-11s S_S in %s mV/dec, I_on/I_off in %s" what
           (iv_fmt ~scale:1000.0 r.VR.nfet.VR.ss)
           (iv_fmt ~digits:0 r.VR.nfet.VR.on_off))
        r.VR.diags)
    (audit_configs ());
  print_endline "mesh-resolution preconditions (AUD008):";
  List.iter
    (fun (node, strategy, _, _, pair) ->
      let desc =
        Subscale.Device.Compact.to_tcad_description pair.Subscale.Circuits.Inverter.nfet
      in
      target
        (Printf.sprintf "%d nm %s TCAD mesh" node strategy)
        (VR.check_mesh desc))
    (audit_configs ());
  !all

(* Perturbation helpers for the key-sensitivity differential: every field a
   key claims to encode must actually move the key when it changes. *)
let perturb_physical field (p : Pm.physical) =
  let bump x = (x *. (1.0 +. 1e-9)) +. 1e-30 in
  match field with
  | "node_nm" -> { p with Pm.node_nm = p.Pm.node_nm + 1 }
  | "lpoly" -> { p with Pm.lpoly = bump p.Pm.lpoly }
  | "tox" -> { p with Pm.tox = bump p.Pm.tox }
  | "nsub" -> { p with Pm.nsub = bump p.Pm.nsub }
  | "np_halo" -> { p with Pm.np_halo = bump p.Pm.np_halo }
  | "vdd" -> { p with Pm.vdd = bump p.Pm.vdd }
  | "xj" ->
    { p with Pm.xj = Some (match p.Pm.xj with Some x -> bump x | None -> 1e-8) }
  | "overlap" ->
    { p with Pm.overlap = Some (match p.Pm.overlap with Some x -> bump x | None -> 1e-9) }
  | other -> invalid_arg ("perturb_physical: " ^ other)

let perturb_calibration field (c : Pm.calibration) =
  let bump x = (x *. (1.0 +. 1e-9)) +. 1e-30 in
  match field with
  | "xj_fraction" -> { c with Pm.xj_fraction = bump c.Pm.xj_fraction }
  | "overlap_fraction" -> { c with Pm.overlap_fraction = bump c.Pm.overlap_fraction }
  | "k_halo" -> { c with Pm.k_halo = bump c.Pm.k_halo }
  | "k_body" -> { c with Pm.k_body = bump c.Pm.k_body }
  | "k_sce" -> { c with Pm.k_sce = bump c.Pm.k_sce }
  | "k_lambda" -> { c with Pm.k_lambda = bump c.Pm.k_lambda }
  | "lambda_xj_exp" -> { c with Pm.lambda_xj_exp = bump c.Pm.lambda_xj_exp }
  | "halo_sce_exp" -> { c with Pm.halo_sce_exp = bump c.Pm.halo_sce_exp }
  | "ss_offset" -> { c with Pm.ss_offset = bump c.Pm.ss_offset }
  | "k_vth_sce" -> { c with Pm.k_vth_sce = bump c.Pm.k_vth_sce }
  | "k_dibl" -> { c with Pm.k_dibl = bump c.Pm.k_dibl }
  | "vth_offset" -> { c with Pm.vth_offset = bump c.Pm.vth_offset }
  | "mu_factor" -> { c with Pm.mu_factor = bump c.Pm.mu_factor }
  | "fringe_cap" -> { c with Pm.fringe_cap = bump c.Pm.fringe_cap }
  | "load_factor" -> { c with Pm.load_factor = bump c.Pm.load_factor }
  | other -> invalid_arg ("perturb_calibration: " ^ other)

(* Memo-soundness pass (AUD011/AUD012): shadow-trace the parameter reads of
   the cached computations and cross-check against the fields their Exec.Key
   encodes; differentially check every keyed field moves the key; then replay
   the full trajectory sweep under Exec.Memo audit mode, where every cache
   hit is recomputed and compared bit-for-bit against the cached value. *)
let audit_memo () =
  let all = ref [] in
  let target = audit_target all in
  let covered = Pm.physical_key_fields @ Pm.calibration_key_fields in
  print_endline "memo soundness (traced read-set vs Exec.Key coverage, AUD011):";
  List.iter
    (fun (node, strategy, _, phys, _) ->
      let what = Printf.sprintf "%d nm %s device build" node strategy in
      let (_ : Subscale.Circuits.Inverter.pair), reads =
        Pm.Trace.collect (fun () -> Subscale.Circuits.Inverter.pair_of_physical phys)
      in
      target
        (Printf.sprintf "%-24s reads %d parameter field(s), all keyed" what
           (List.length reads))
        (MS.cross_check ~what ~covered ~reads))
    (audit_configs ());
  List.iter
    (fun (kind, node, strategy) ->
      let rnode, phys, pair = select_device node strategy in
      let what = Printf.sprintf "%d nm %s full evaluation" node strategy in
      let (_ : Subscale.Scaling.Strategy.evaluation), reads =
        Pm.Trace.collect (fun () ->
            Subscale.Scaling.Strategy.evaluate_uncached kind rnode phys pair)
      in
      target
        (Printf.sprintf "%-24s reads %d parameter field(s), all keyed" what
           (List.length reads))
        (MS.cross_check ~what ~covered ~reads))
    [ (Subscale.Scaling.Strategy.Super_vth, 90, "super");
      (Subscale.Scaling.Strategy.Sub_vth, 90, "sub") ];
  print_endline "memo key sensitivity (every keyed field must move the key):";
  let _, phys0, _ = select_device 90 "super" in
  let base_pk = Pm.physical_key phys0 in
  target
    (Printf.sprintf "physical_key    %2d field(s) differentially perturbed"
       (List.length Pm.physical_key_fields))
    (List.concat_map
       (fun field ->
         MS.key_sensitivity ~what:"Device.Params.physical_key" ~field ~base_key:base_pk
           ~perturbed_key:(Pm.physical_key (perturb_physical field phys0)))
       Pm.physical_key_fields);
  let cal0 = Pm.default_calibration in
  let base_ck = Pm.calibration_key cal0 in
  target
    (Printf.sprintf "calibration_key %2d field(s) differentially perturbed"
       (List.length Pm.calibration_key_fields))
    (List.concat_map
       (fun field ->
         MS.key_sensitivity ~what:"Device.Params.calibration_key" ~field ~base_key:base_ck
           ~perturbed_key:(Pm.calibration_key (perturb_calibration field cal0)))
       Pm.calibration_key_fields);
  print_endline "memo shadow audit (recompute on every cache hit, AUD012):";
  Subscale.Exec.Memo.clear_all ();
  Subscale.Exec.Memo.clear_audit_violations ();
  Subscale.Exec.Memo.with_audit (fun () ->
      (* First sweep fills every table; the second replays it so that every
         lookup is a hit and gets shadow-recomputed. *)
      for _ = 1 to 2 do
        let (_ : Subscale.Scaling.Strategy.evaluation list) =
          Subscale.Scaling.Strategy.super_vth_trajectory ()
        in
        let (_ : Subscale.Scaling.Strategy.evaluation list) =
          Subscale.Scaling.Strategy.sub_vth_trajectory ()
        in
        ()
      done);
  let hits =
    List.fold_left
      (fun acc (s : Subscale.Exec.Memo.stats) -> acc + s.Subscale.Exec.Memo.hits)
      0 (Subscale.Exec.Memo.stats ())
  in
  target
    (Printf.sprintf "trajectory sweep replayed: %d hit(s) shadow-recomputed, all bit-exact"
       hits)
    (MS.of_violations (Subscale.Exec.Memo.audit_violations ()));
  Subscale.Exec.Memo.clear_audit_violations ();
  !all

(* Schedule-perturbation pass (AUD013): the sweep replayed under adversarial
   pool schedules must fingerprint bit-exactly against the natural order. *)
let audit_schedules ~n =
  let all = ref [] in
  let target = audit_target all in
  Printf.printf "schedule perturbation (%d adversarial schedule(s), %d domain(s), AUD013):\n"
    n (Subscale.Exec.jobs ());
  let fingerprint () =
    (* Flush the memo tables so every replay recomputes from scratch —
       otherwise the cache would hand back the baseline values trivially. *)
    Subscale.Exec.Memo.clear_all ();
    let sup = Subscale.Scaling.Strategy.super_vth_trajectory () in
    let sub = Subscale.Scaling.Strategy.sub_vth_trajectory () in
    String.concat "\n"
      (List.map Subscale.Scaling.Strategy.evaluation_fingerprint (sup @ sub))
  in
  Subscale.Exec.set_schedule_seed None;
  let baseline = fingerprint () in
  Fun.protect
    ~finally:(fun () -> Subscale.Exec.set_schedule_seed None)
    (fun () ->
      for seed = 1 to n do
        Subscale.Exec.set_schedule_seed (Some seed);
        let fp = fingerprint () in
        target
          (Printf.sprintf "seed %d: trajectory sweep bit-exact vs natural schedule" seed)
          (if String.equal fp baseline then []
           else [ MS.schedule_mismatch ~what:"trajectory sweep" ~seed ])
      done);
  !all

(* The audit's own selftest: deliberately broken inputs must each fire their
   rule — out-of-regime supply (AUD001), a widened box whose I_off straddles
   zero (AUD003), a coarse mesh (AUD008), a dropped key field and an
   insensitive key (AUD011), an under-keyed memo table (AUD012) — and the
   rule registry must be collision-free. *)
let audit_selftest () =
  let failures = ref 0 in
  let case what ~expect diags =
    if List.exists (fun d -> d.Diag.rule = expect) diags then
      Printf.printf "  ok    %-42s -> %s\n" what expect
    else begin
      incr failures;
      Printf.printf "  FAIL  %-42s expected %s, got [%s]\n" what expect
        (String.concat "; " (List.map Diag.to_string diags))
    end
  in
  (match Subscale.Check.Rules.selftest () with
   | n -> Printf.printf "  ok    %-42s -> %d unique rule id(s)\n" "rule-id registry" n
   | exception e ->
     incr failures;
     Printf.printf "  FAIL  %-42s %s\n" "rule-id registry" (Printexc.to_string e));
  (match Subscale.Check.Rules.register ~summary:"deliberate collision" "AUD001" with
   | (_ : string) ->
     incr failures;
     Printf.printf "  FAIL  duplicate rule id accepted at registration\n"
   | exception Subscale.Check.Rules.Duplicate_rule _ ->
     Printf.printf "  ok    %-42s -> Duplicate_rule\n" "duplicate rule id rejected");
  let _, phys90, _ = select_device 90 "super" in
  case "moderate-inversion supply (V_dd = 0.6 V)" ~expect:"AUD001"
    (VR.audit_physical ~op_vdd:0.6 ~what:"selftest" phys90).VR.diags;
  case "20% box: I_off straddles zero in I_on/I_off" ~expect:"AUD003"
    (VR.audit_physical ~widen:0.2 ~op_vdd:0.25 ~what:"selftest" phys90).VR.diags;
  case "2x2 under-resolved TCAD mesh" ~expect:"AUD008"
    (VR.check_mesh ~nx:2 ~ny:2
       (Subscale.Device.Compact.to_tcad_description
          (Subscale.Device.Compact.nfet phys90)));
  let _, reads =
    Pm.Trace.collect (fun () -> Subscale.Circuits.Inverter.pair_of_physical phys90)
  in
  let covered_minus_tox =
    List.filter (fun f -> f <> "tox")
      (Pm.physical_key_fields @ Pm.calibration_key_fields)
  in
  case "key deliberately missing the tox field" ~expect:"AUD011"
    (MS.cross_check ~what:"selftest" ~covered:covered_minus_tox ~reads);
  case "key insensitive to a perturbed field" ~expect:"AUD011"
    (MS.key_sensitivity ~what:"selftest" ~field:"tox" ~base_key:"same"
       ~perturbed_key:"same");
  let tbl = Subscale.Exec.Memo.create ~name:"audit-selftest-underkeyed" () in
  let hidden = ref 1 in
  let compute () =
    Subscale.Exec.Memo.find_or_compute tbl ~key:"constant-key" (fun () -> !hidden)
  in
  Subscale.Exec.Memo.clear_audit_violations ();
  let shadow =
    Subscale.Exec.Memo.with_audit (fun () ->
        let (_ : int) = compute () in
        hidden := 2;
        let (_ : int) = compute () in
        Subscale.Exec.Memo.audit_violations ())
  in
  Subscale.Exec.Memo.clear_audit_violations ();
  Subscale.Exec.Memo.clear tbl;
  case "under-keyed memo table caught by shadow audit" ~expect:"AUD012"
    (MS.of_violations shadow);
  case "schedule-mismatch diagnostic shape" ~expect:"AUD013"
    [ MS.schedule_mismatch ~what:"selftest" ~seed:1 ];
  if !failures > 0 then begin
    Printf.printf "audit selftest: %d case(s) failed\n" !failures;
    exit 1
  end;
  print_endline "audit selftest: every AUD rule fires on its crafted violation"

let audit_cmd =
  let validity =
    let doc = "Run only the interval-validity pass (model-regime rules AUD001-AUD010)." in
    Arg.(value & flag & info [ "validity" ] ~doc)
  in
  let memo =
    let doc =
      "Run only the memo-soundness pass: read-set/key cross-check, key \
       sensitivity, and the shadow-recompute audit (AUD011-AUD012)."
    in
    Arg.(value & flag & info [ "memo" ] ~doc)
  in
  let schedules =
    let doc =
      "Replay the trajectory sweep under $(docv) adversarial pool schedules \
       and require bit-exact outputs (AUD013).  With no section flag the \
       full audit runs 2 schedules; 0 disables the pass."
    in
    Arg.(value & opt (some int) None & info [ "schedules" ] ~docv:"N" ~doc)
  in
  let strict =
    let doc = "Exit non-zero on warnings too, not only on errors." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let selftest =
    let doc =
      "Run the auditor's own test: crafted violations must each fire their \
       AUD rule, and the rule-id registry must be collision-free."
    in
    Arg.(value & flag & info [ "selftest" ] ~doc)
  in
  let op_vdd =
    let doc = "Operating supply for the validity pass [V]." in
    Arg.(value & opt float 0.25 & info [ "op-vdd" ] ~docv:"V" ~doc)
  in
  let widen =
    let doc =
      "Relative widening of every parameter box endpoint — turns the \
       validity pass into a tolerance analysis around the shipped values."
    in
    Arg.(value & opt float 0.0 & info [ "widen" ] ~docv:"REL" ~doc)
  in
  let run () () () validity memo schedules strict selftest op_vdd widen =
    if selftest then audit_selftest ()
    else begin
      let run_all = (not validity) && not memo in
      let n_schedules =
        match schedules with Some n -> max 0 n | None -> if run_all then 2 else 0
      in
      let all = ref [] in
      if validity || run_all then all := !all @ audit_validity ~op_vdd ~widen;
      if memo || run_all then all := !all @ audit_memo ();
      if n_schedules > 0 then all := !all @ audit_schedules ~n:n_schedules;
      let _, w, _ = Diag.count !all in
      Printf.printf "audit: %s\n" (Diag.summary !all);
      let code = Diag.exit_code !all in
      exit (if code <> 0 then code else if strict && w > 0 then 1 else 0)
    end
  in
  let doc = "Interval-validity and memo/determinism audit of the model chain" in
  let man =
    [ `S Manpage.s_description;
      `P "Re-executes the paper's model chain (Eqs. 1-2, 4-8) over a sound \
          interval domain, proving every shipped configuration stays inside \
          the weak-inversion validity regime, then audits the parallel \
          engine: traced parameter read-sets are cross-checked against memo \
          key coverage, every cache hit is shadow-recomputed, and the sweep \
          is replayed under adversarial pool schedules requiring bit-exact \
          output.";
      `P "Exit code 0 when no errors were found (warnings allowed unless \
          $(b,--strict)), 1 when any AUD rule reported an error." ]
  in
  Cmd.v (Cmd.info "audit" ~doc ~man)
    Term.(const run $ log_term $ jobs_term $ obs_term $ validity $ memo $ schedules $ strict
          $ selftest $ op_vdd $ widen)

(* ------------------------------------------------------------------ *)
(* lint: the typedtree-based source linter over dune's .cmt artifacts. *)

module L = Subscale.Lint

let lint_selftest () =
  let results = L.Selftest.run () in
  let failures = ref 0 in
  List.iter
    (fun (r : L.Selftest.result) ->
      if r.L.Selftest.ok then
        Printf.printf "  ok    %-48s -> %s\n" r.L.Selftest.name r.L.Selftest.detail
      else begin
        incr failures;
        Printf.printf "  FAIL  %-48s %s\n" r.L.Selftest.name r.L.Selftest.detail
      end)
    results;
  if !failures > 0 then begin
    Printf.printf "lint selftest: %d case(s) failed\n" !failures;
    exit 1
  end;
  print_endline
    "lint selftest: every LNT, UNT, ALS and RAC rule fires on its crafted source, near-misses stay clean"

let lint_update_baseline ~baseline_path (app : L.Baseline.application) old_baseline =
  (* Keep the justification of every entry that still matches; new findings
     get a TODO note so the diff shows exactly what needs justifying. *)
  let note_of d =
    match L.Baseline.entry_of_diag d with
    | None -> None
    | Some fresh ->
      let note =
        match
          List.find_opt
            (fun (e : L.Baseline.entry) ->
              e.L.Baseline.rule = fresh.L.Baseline.rule
              && e.L.Baseline.file = fresh.L.Baseline.file
              && e.L.Baseline.line = fresh.L.Baseline.line)
            old_baseline
        with
        | Some e when e.L.Baseline.note <> "" -> e.L.Baseline.note
        | _ -> "— TODO: justify"
      in
      Some { fresh with L.Baseline.note }
  in
  let entries = List.filter_map note_of (app.L.Baseline.kept @ app.L.Baseline.suppressed) in
  let entries =
    List.sort_uniq
      (fun (a : L.Baseline.entry) b ->
        compare
          (a.L.Baseline.file, a.L.Baseline.line, a.L.Baseline.rule)
          (b.L.Baseline.file, b.L.Baseline.line, b.L.Baseline.rule))
      entries
  in
  let oc = open_out baseline_path in
  output_string oc (L.Baseline.to_string entries);
  close_out oc;
  Printf.printf "lint: wrote %d baseline entr%s to %s\n" (List.length entries)
    (if List.length entries = 1 then "y" else "ies")
    baseline_path

(* --format json: one finding per line, machine-readable, matched in CI by
   .github/lint-problem-matcher.json — keep the field order in sync. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json (d : Diag.t) =
  let file, line, col =
    match String.split_on_char ':' d.Diag.location with
    | [ f; l; c ] ->
      ( f,
        Option.value ~default:0 (int_of_string_opt l),
        Option.value ~default:0 (int_of_string_opt c) )
    | [ f; l ] -> (f, Option.value ~default:0 (int_of_string_opt l), 0)
    | _ -> (d.Diag.location, 0, 0)
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"%s}"
    (json_escape d.Diag.rule)
    (Diag.severity_label d.Diag.severity)
    (json_escape file) line col
    (json_escape d.Diag.message)
    (match d.Diag.hint with
     | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h)
     | None -> "")

let lint_cmd =
  let selftest =
    let doc =
      "Run the linter's own test: crafted sources compiled on the fly must \
       each fire exactly their LNT/UNT/ALS/RAC rule, the near-misses must stay \
       clean, and the rule-id registry and unit signature table must validate."
    in
    Arg.(value & flag & info [ "selftest" ] ~doc)
  in
  let strict =
    let doc =
      "Exit non-zero on warnings, stale baseline entries, TODO-justified \
       baseline entries and advisory UNT/ALS/RAC errors too, not only LNT \
       errors."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let units =
    let on =
      "Run the UNT dimensional-analysis pass (the default).  UNT errors are \
       advisory unless $(b,--strict)."
    in
    let off = "Skip the UNT dimensional-analysis pass." in
    Arg.(value & vflag true [ (true, info [ "units" ] ~doc:on); (false, info [ "no-units" ] ~doc:off) ])
  in
  let alias =
    let on =
      "Run the ALS buffer-ownership/aliasing pass (the default): \
       interprocedural summaries over the whole --root tree.  ALS errors are \
       advisory unless $(b,--strict)."
    in
    let off = "Skip the ALS buffer-ownership pass." in
    Arg.(value & vflag true [ (true, info [ "alias" ] ~doc:on); (false, info [ "no-alias" ] ~doc:off) ])
  in
  let races =
    let on =
      "Run the RAC lockset/race-analysis pass (the default): held-lockset \
       walk and effect summaries over the whole --root tree.  RAC errors are \
       advisory unless $(b,--strict)."
    in
    let off = "Skip the RAC lockset/race-analysis pass." in
    Arg.(value & vflag true [ (true, info [ "races" ] ~doc:on); (false, info [ "no-races" ] ~doc:off) ])
  in
  let format =
    let doc =
      "Output format: $(b,text) (human-readable, the default) or $(b,json) \
       (one finding per line with rule, severity, file, line, col, message — \
       consumed by the CI problem matcher)."
    in
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rules =
    let doc = "Print the rule table as markdown (the contents of docs/lint-rules.md)." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let baseline_arg =
    let doc =
      "Baseline file of grandfathered findings ($(b,<rule> <file>:<line> — \
       justification) per line); missing file means an empty baseline."
    in
    Arg.(value & opt string "lint.baseline" & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let root_arg =
    let doc =
      "Directory scanned recursively for .cmt artifacts (run $(b,dune build) \
       first; dune puts library typedtrees under _build/default/lib)."
    in
    Arg.(value & opt string "_build/default/lib" & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let update =
    let doc =
      "Rewrite the baseline file from the current findings, keeping existing \
       justifications and marking new entries TODO."
    in
    Arg.(value & flag & info [ "update-baseline" ] ~doc)
  in
  let run () selftest strict units alias races format rules baseline_path root update =
    if rules then print_string (L.rules_markdown ())
    else if selftest then lint_selftest ()
    else begin
      if not (Sys.file_exists root && Sys.is_directory root) then begin
        Printf.eprintf
          "lint: %s does not exist — run `dune build` first, or point --root at \
           the directory holding the .cmt artifacts\n"
          root;
        exit 2
      end;
      let reports = L.lint_root ~units ~alias ~races root in
      let baseline =
        match L.Baseline.load baseline_path with
        | b -> b
        | exception L.Baseline.Malformed (line, content) ->
          Printf.eprintf "lint: malformed baseline %s:%d: %S\n" baseline_path line content;
          exit 2
      in
      let app = L.Baseline.apply baseline (L.all_diags reports) in
      if update then lint_update_baseline ~baseline_path app baseline
      else begin
        (* in json mode stdout carries only the finding lines; the human
           chrome moves to stderr so the problem matcher sees clean input *)
        let note fmt =
          match format with
          | `Text -> Printf.printf fmt
          | `Json -> Printf.eprintf fmt
        in
        note "lint: scanned %d compilation unit(s) under %s\n"
          (List.length reports) root;
        List.iter
          (fun d ->
            match format with
            | `Text -> Printf.printf "  %s\n" (Diag.to_string d)
            | `Json -> print_endline (diag_json d))
          (Diag.sort app.L.Baseline.kept);
        if app.L.Baseline.suppressed <> [] then
          note "  baseline: %d finding(s) grandfathered by %s\n"
            (List.length app.L.Baseline.suppressed)
            baseline_path;
        List.iter
          (fun (e : L.Baseline.entry) ->
            note "  stale baseline entry (fixed? remove it): %s\n"
              (L.Baseline.entry_to_string e))
          app.L.Baseline.stale;
        let todos = L.Baseline.todos baseline in
        if strict then
          List.iter
            (fun (e : L.Baseline.entry) ->
              note "  TODO justification (rejected by --strict): %s\n"
                (L.Baseline.entry_to_string e))
            todos;
        let kept = app.L.Baseline.kept in
        let _, w, _ = Diag.count kept in
        note "lint: %s\n" (Diag.summary kept);
        (* UNT dimensional, ALS ownership and RAC lockset errors are
           advisory until --strict: the passes are young and their tables
           grow with the model chain, so only the strict (CI) mode lets
           them gate. *)
        let is_advisory (d : Diag.t) =
          String.length d.Diag.rule >= 3
          && (String.sub d.Diag.rule 0 3 = "UNT" || String.sub d.Diag.rule 0 3 = "ALS"
              || String.sub d.Diag.rule 0 3 = "RAC")
        in
        let lnt_code = Diag.exit_code (List.filter (fun d -> not (is_advisory d)) kept) in
        exit
          (if lnt_code <> 0 then lnt_code
           else if
             strict
             && (Diag.has_errors kept || w > 0 || app.L.Baseline.stale <> []
                || todos <> [])
           then 1
           else 0)
      end
    end
  in
  let doc =
    "Typedtree source linter: purity/race, float, exception and output \
     hygiene, and dimensional analysis"
  in
  let man =
    [ `S Manpage.s_description;
      `P "Walks the .cmt typedtrees dune already produced (no re-typechecking) \
          and reports: closures entering the domain-parallel engine that touch \
          unsanctioned mutable state (LNT001), polymorphic equality on floats \
          (LNT002), exception-swallowing catch-alls (LNT003), diagnostic rule \
          ids minted outside Check.Rules (LNT004) and direct printing in \
          library code (LNT005).";
      `P "The UNT series (on by default, $(b,--no-units) to skip) infers \
          physical dimensions for float expressions from a signature table \
          over Physics.Constants/Silicon/Mobility, the parameter records and \
          the Tcad accessors: incompatible additive combinations (UNT001), \
          dimensioned transcendental arguments (UNT002), display/SI unit \
          mixes (UNT003), arguments contradicting the table (UNT004) and \
          dimensions lost through container round-trips (UNT005, info).  \
          Unknown dimensions never fire; $(b,[@units \"V/dec\"]) asserts a \
          deliberate cast.";
      `P "The ALS series (on by default, $(b,--no-alias) to skip) runs an \
          interprocedural buffer ownership/aliasing analysis over the \
          Bigarray hot path: per-function summaries (which parameters are \
          mutated, stored, returned) computed to fixpoint over the call \
          graph, then checked — parallel closures mutating captured buffers \
          (ALS001), solver scratch escaping or shared by overlapping solves \
          (ALS002), output buffers aliasing inputs (ALS003) and returned \
          buffers that are also retained (ALS004, $(b,[@owned]) to assert).";
      `P "The RAC series (on by default, $(b,--no-races) to skip) runs an \
          interprocedural lockset and domain-safety analysis over the \
          concurrent exec/serve stack: per-function may-raise/may-block/\
          acquires summaries to fixpoint, a held-lockset walk of every body, \
          and domain-crossing reachability from Exec.map/Pool.map/\
          Domain.spawn closures — shared state with an inconsistent lockset \
          (RAC001), exception-unsafe critical sections (RAC002), \
          self-deadlock and lock-order inversion (RAC003), torn atomic \
          read-modify-writes (RAC004) and blocking syscalls under a lock \
          (RAC005, $(b,[@blocking_ok]) to assert).";
      `P "Exit code 0 when no non-baselined LNT errors were found (warnings \
          and advisory UNT/ALS/RAC errors allowed unless $(b,--strict)), 1 \
          otherwise.  Like $(b,check) and $(b,audit), findings are structured \
          diagnostics with registry-minted rule ids; $(b,--format json) \
          emits one finding per line for the CI problem matcher." ]
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      const run $ log_term $ selftest $ strict $ units $ alias $ races $ format
      $ rules $ baseline_arg $ root_arg $ update)

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix-domain socket at $(docv). A stale socket file left by a \
       crashed daemon is replaced; if the path holds anything other than a socket, \
       or a daemon is still listening on it, serve refuses to start."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on loopback TCP port $(docv) (0 picks an ephemeral port). Ignored when --socket is given." in
    Arg.(value & opt int 7117 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let cache_arg =
    let doc =
      "Back the characterization memo tables with a persistent store rooted at $(docv): \
       queries answered on one run are served bit-identically from disk by the next."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let run () () () socket port cache =
    let listen =
      match socket with
      | Some path -> `Unix path
      | None -> `Tcp ("localhost", port)
    in
    let on_ready addr =
      (match addr with
      | Unix.ADDR_UNIX path -> Printf.printf "subscale serve: listening on %s\n%!" path
      | Unix.ADDR_INET (host, port) ->
        Printf.printf "subscale serve: listening on %s:%d\n%!"
          (Unix.string_of_inet_addr host) port);
      match cache with
      | Some dir -> Printf.printf "subscale serve: persistent cache at %s\n%!" dir
      | None -> ()
    in
    match
      Subscale.Serve.Server.run ~on_ready
        { Subscale.Serve.Server.listen; cache_dir = cache }
    with
    | () -> ()
    | exception Failure msg ->
      (* Bind refusals (non-socket at --socket path, live daemon) are
         user errors, not internal ones. *)
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let doc = "Serve characterization queries over a socket (line-delimited JSON)" in
  let man =
    [ `S Manpage.s_description;
      `P "Runs the characterization daemon: one JSON object per line in each \
          direction.  Requests carry an $(b,op) field — $(b,ping), $(b,health), \
          $(b,device), $(b,tcad), $(b,idvg) or $(b,shutdown) — plus an optional \
          $(b,id) echoed in the response.  Overlapping $(b,idvg) sweep boxes \
          arriving in one batch share a single warm-started TCAD run, and \
          $(b,--cache) adds a persistent content-addressed store tier behind \
          the in-memory memo tables, so repeated queries — even across daemon \
          restarts — are answered without recomputing.  See the Serving \
          section of the README for the protocol and a quickstart." ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run $ log_term $ jobs_term $ obs_term $ socket_arg $ port_arg $ cache_arg)

let main =
  let doc = "Subthreshold device-scaling study (DAC 2007 reproduction)" in
  Cmd.group (Cmd.info "subscale" ~doc ~version:"1.0.0")
    [ run_cmd; check_cmd; audit_cmd; lint_cmd; device_cmd; tcad_cmd; sweep_cmd;
      liberty_cmd; export_cmd; verilog_cmd; serve_cmd ]

let () = exit (Cmd.eval main)
